package kcore

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fastReplOpts() Option {
	return WithReplicationOptions(ReplicationOptions{
		Heartbeat:     20 * time.Millisecond,
		BackoffMin:    5 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
		StreamTimeout: 2 * time.Second,
		InitialSync:   5 * time.Second,
	})
}

func randomEdgeRounds(n, rounds, perRound int, seed int64) [][]Edge {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]Edge, rounds)
	for r := range out {
		var ins []Edge
		for i := 0; i < perRound; i++ {
			u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if u != v {
				ins = append(ins, Edge{U: u, V: v})
			}
		}
		out[r] = ins
	}
	return out
}

func waitForEpoch(t *testing.T, d *Decomposition, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if d.Epoch() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for epoch %d (at %d)", want, d.Epoch())
}

// expectViewParity asserts that both decompositions serve byte-identical
// coreness values from the same epoch through the public View API.
func expectViewParity(t *testing.T, primary, follower *Decomposition) {
	t.Helper()
	pv, fv := primary.View(), follower.View()
	if pv.Epoch() != fv.Epoch() {
		t.Fatalf("view epochs differ: primary %d, follower %d", pv.Epoch(), fv.Epoch())
	}
	n := primary.NumVertices()
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = uint32(i)
	}
	pk, fk := pv.CorenessMany(vs), fv.CorenessMany(vs)
	for v := range pk {
		if pk[v] != fk[v] {
			t.Fatalf("coreness of vertex %d differs at epoch %d: primary %v, follower %v",
				v, pv.Epoch(), pk[v], fk[v])
		}
	}
}

func TestReplicationPublicAPI(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(map[int]string{1: "single", 3: "sharded"}[shards], func(t *testing.T) {
			const n = 250
			primary, err := New(n, WithShards(shards), WithReplicationListen("127.0.0.1:0"), fastReplOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer primary.Close()
			rounds := randomEdgeRounds(n, 16, 30, 42)
			for _, ins := range rounds[:8] {
				primary.InsertEdges(ins)
			}

			follower, err := New(n, WithShards(shards),
				WithReplicationSource(primary.ReplicationAddr()), fastReplOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer follower.Close()
			if !follower.ReadOnly() {
				t.Fatal("follower must report ReadOnly")
			}
			if primary.ReadOnly() {
				t.Fatal("primary must not report ReadOnly")
			}
			if got, want := follower.Epoch(), primary.Epoch(); got != want {
				t.Fatalf("post-bootstrap epoch %d, want %d", got, want)
			}

			// Local writes on the follower must be rejected as no-ops.
			ep := follower.Epoch()
			if got := follower.InsertEdges([]Edge{{U: 0, V: 1}}); got != 0 {
				t.Fatalf("follower InsertEdges applied %d edges", got)
			}
			if ins, del := follower.ApplyBatch(rounds[0], rounds[0]); ins != 0 || del != 0 {
				t.Fatalf("follower ApplyBatch applied %d/%d edges", ins, del)
			}
			if got := follower.RemoveVertex(0); got != 0 {
				t.Fatalf("follower RemoveVertex removed %d edges", got)
			}
			if follower.Epoch() != ep {
				t.Fatal("follower epoch advanced on a rejected local write")
			}

			for _, ins := range rounds[8:] {
				primary.InsertEdges(ins)
			}
			waitForEpoch(t, follower, primary.Epoch())
			expectViewParity(t, primary, follower)

			ps, ok := primary.ReplicationStats()
			if !ok || ps.Role != "primary" || ps.Followers != 1 || ps.FeederBootstraps != 1 {
				t.Fatalf("unexpected primary replication stats: %+v", ps)
			}
			fs, ok := follower.ReplicationStats()
			if !ok || fs.Role != "follower" || !fs.Synced || fs.Bootstraps != 1 {
				t.Fatalf("unexpected follower replication stats: %+v", fs)
			}
		})
	}
}

func TestReplicationFeedsFromWAL(t *testing.T) {
	const n = 120
	primary, err := New(n, WithWAL(t.TempDir(), WALOptions{}),
		WithReplicationListen("127.0.0.1:0"), fastReplOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	rounds := randomEdgeRounds(n, 10, 20, 7)
	for _, ins := range rounds[:5] {
		primary.InsertEdges(ins)
	}

	follower, err := New(n, WithReplicationSource(primary.ReplicationAddr()), fastReplOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	for _, ins := range rounds[5:] {
		primary.InsertEdges(ins)
	}
	waitForEpoch(t, follower, primary.Epoch())
	expectViewParity(t, primary, follower)
	if _, ok := follower.DurabilityStats(); ok {
		t.Fatal("a follower must not report a WAL")
	}
}

// TestReplicationBounceClientMonotone models a client bouncing between the
// primary and a replica: per-endpoint view epochs are monotone, and the
// follower never runs ahead of the primary.
func TestReplicationBounceClientMonotone(t *testing.T) {
	const n = 150
	primary, err := New(n, WithShards(2), WithReplicationListen("127.0.0.1:0"), fastReplOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.InsertEdges(randomEdgeRounds(n, 1, 40, 1)[0])

	follower, err := New(n, WithShards(2),
		WithReplicationSource(primary.ReplicationAddr()), fastReplOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var bounceErr atomic.Value
	wg.Add(1)
	go func() {
		defer wg.Done()
		ends := []*Decomposition{primary, follower}
		last := make([]uint64, len(ends))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e := i % len(ends)
			ep := ends[e].View().Epoch()
			if ep < last[e] {
				bounceErr.Store("endpoint epoch went backwards")
				return
			}
			last[e] = ep
			if fe, pe := follower.Epoch(), primary.Epoch(); fe > pe {
				// Safe to compare in this order: the follower only applies
				// what the primary already committed.
				bounceErr.Store("follower ran ahead of the primary")
				return
			}
		}
	}()
	for _, ins := range randomEdgeRounds(n, 12, 30, 2) {
		primary.InsertEdges(ins)
	}
	waitForEpoch(t, follower, primary.Epoch())
	close(stop)
	wg.Wait()
	if msg, ok := bounceErr.Load().(string); ok {
		t.Fatal(msg)
	}
	expectViewParity(t, primary, follower)
}

func TestReplicationOptionValidation(t *testing.T) {
	if _, err := New(10, WithReplicationListen("127.0.0.1:0"), WithReplicationSource("127.0.0.1:1")); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("listen+source must be rejected, got %v", err)
	}
	if _, err := New(10, WithWAL(t.TempDir(), WALOptions{}), WithReplicationSource("127.0.0.1:1")); err == nil ||
		!strings.Contains(err.Error(), "follower") {
		t.Fatalf("WAL on a follower must be rejected, got %v", err)
	}
	if _, err := New(10, WithReplicationListen("256.0.0.1:bad")); err == nil {
		t.Fatal("an unusable listen address must be rejected")
	}
}
