package kcore

import (
	"strings"
	"sync"
	"testing"
	"time"

	"kcore/internal/faultfs"
)

// insertScript builds insert-only batches so one scriptOp is exactly one
// WAL record (randScript mixes in deletion sub-batches, which log as a
// second record and would break the per-record accounting these tests do).
func insertScript(n, batches, perBatch int, seed int64) []scriptOp {
	full := randScript(n, batches, perBatch, seed)
	for i := range full {
		full[i].del = nil
	}
	return full
}

// faultWAL is the WAL configuration of the deterministic fault tests: the
// injected filesystem, no retries (the first fault is the failure) and no
// background re-attach loop (transitions are driven explicitly).
func faultWAL(inj *faultfs.Injector, sync SyncPolicy, every time.Duration) WALOptions {
	return WALOptions{
		Sync:          sync,
		SyncEvery:     every,
		FS:            inj,
		AppendRetries: -1,
		ReattachEvery: -1,
	}
}

// TestWALDegradedModeAndReattachParity is the end-to-end degraded-mode
// contract, deterministically: a permanent injected fsync failure flips
// DurabilityStats.Degraded while updates and reads keep working and stay
// bit-identical to an unlogged reference engine; lifting the fault and
// re-attaching restores durability, and a post-re-attach restart recovers
// the full state — including the batches applied while degraded.
func TestWALDegradedModeAndReattachParity(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(map[int]string{1: "single", 4: "sharded"}[shards], func(t *testing.T) {
			const n = 64
			inj := faultfs.New(nil)
			dir := t.TempDir()
			d, err := New(n, WithShards(shards), WithWAL(dir, faultWAL(inj, SyncAlways, 0)))
			if err != nil {
				t.Fatal(err)
			}
			ref, err := New(n, WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			script := randScript(n, 9, 12, 7)

			applyScript(d, script[:3])
			applyScript(ref, script[:3])
			if st, _ := d.DurabilityStats(); st.Degraded {
				t.Fatal("degraded before any fault")
			}

			inj.FailSyncs(0, -1)
			applyScript(d, script[3:6])
			applyScript(ref, script[3:6])
			st, ok := d.DurabilityStats()
			if !ok || !st.Degraded {
				t.Fatalf("stats after permanent fsync failure: ok=%v %+v", ok, st)
			}
			if st.Err == "" || st.DegradedSinceUnixNano == 0 || st.DroppedBatches == 0 {
				t.Fatalf("degraded stats incomplete: %+v", st)
			}
			// Degraded is a durability statement, not an availability one:
			// the in-memory state keeps tracking the reference exactly.
			requireSameState(t, captureState(d), captureState(ref), "while degraded")

			inj.Clear()
			if err := d.Reattach(); err != nil {
				t.Fatalf("Reattach after lifting the fault: %v", err)
			}
			st, _ = d.DurabilityStats()
			if st.Degraded || st.Err != "" || st.Reattaches != 1 {
				t.Fatalf("stats after re-attach: %+v", st)
			}

			applyScript(d, script[6:])
			applyScript(ref, script[6:])
			want := captureState(ref)
			requireSameState(t, captureState(d), want, "after re-attach")
			if err := d.Close(); err != nil {
				t.Fatalf("Close after re-attach: %v", err)
			}

			// Restart: nothing applied during the outage may be lost — the
			// re-attach snapshot covered the dropped batches.
			d2, err := New(n, WithShards(shards), WithWAL(dir, WALOptions{}))
			if err != nil {
				t.Fatal(err)
			}
			defer d2.Close()
			requireSameState(t, captureState(d2), want, "recovered")
		})
	}
}

// TestWALFsyncFaultPerPolicy pins down exactly what a permanent fsync
// failure costs under each sync policy, by recovery parity with an
// unlogged reference engine applying the surviving prefix:
//
//   - SyncAlways: the failing batch is written but unsynced, later ones are
//     dropped — a clean-process reopen recovers healthy+1 batches.
//   - SyncInterval (1ns, so every append syncs): same as SyncAlways.
//   - SyncNone: appends never fsync, so the fault cannot degrade the log;
//     only Close reports it, and every batch is recovered.
func TestWALFsyncFaultPerPolicy(t *testing.T) {
	const n, total, healthy = 48, 7, 3
	cases := []struct {
		name      string
		sync      SyncPolicy
		every     time.Duration
		recovered int  // script prefix a reopen must reproduce
		degrades  bool // whether the fault flips Degraded
	}{
		{"always", SyncAlways, 0, healthy + 1, true},
		{"interval", SyncInterval, time.Nanosecond, healthy + 1, true},
		{"none", SyncNone, 0, total, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj := faultfs.New(nil)
			dir := t.TempDir()
			d, err := New(n, WithWAL(dir, faultWAL(inj, tc.sync, tc.every)))
			if err != nil {
				t.Fatal(err)
			}
			script := insertScript(n, total, 10, int64(101+tc.sync))
			applyScript(d, script[:healthy])
			inj.FailSyncs(0, -1)
			applyScript(d, script[healthy:])

			st, _ := d.DurabilityStats()
			if st.Degraded != tc.degrades {
				t.Fatalf("Degraded=%v, want %v (%+v)", st.Degraded, tc.degrades, st)
			}
			// The fault is still armed at shutdown, so Close must surface
			// it under every policy: the final sync fails for SyncNone, and
			// the degraded policies report the outstanding append error.
			if err := d.Close(); err == nil {
				t.Fatal("Close succeeded with the fsync fault still armed")
			}

			ref, refErr := New(n)
			if refErr != nil {
				t.Fatal(refErr)
			}
			applyScript(ref, script[:tc.recovered])

			d2, err := New(n, WithWAL(dir, WALOptions{}))
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer d2.Close()
			requireSameState(t, captureState(d2), captureState(ref), "recovered prefix")
		})
	}
}

// TestReattachRequiresWAL mirrors Snapshot's contract for the new method.
func TestReattachRequiresWAL(t *testing.T) {
	d, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Reattach(); err == nil || !strings.Contains(err.Error(), "WithWAL") {
		t.Fatalf("Reattach without WAL: %v", err)
	}
}

// TestCloseIdempotentAndConcurrent exercises the public Close contract:
// idempotent (every call returns the first result), and safe to race with
// Snapshot and in-flight update batches. The logged tail must survive —
// a reopen recovers a consistent prefix of what was applied.
func TestCloseIdempotentAndConcurrent(t *testing.T) {
	const n = 48
	dir := t.TempDir()
	d, err := New(n, WithWAL(dir, WALOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	script := insertScript(n, 12, 8, 23)
	applyScript(d, script[:4])

	var wg sync.WaitGroup
	closeErrs := make([]error, 4)
	for i := range closeErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			closeErrs[i] = d.Close()
		}(i)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := d.Snapshot(); err != nil && !strings.Contains(err.Error(), "close") {
			t.Errorf("racing Snapshot: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		applyScript(d, script[4:]) // updates racing the close must not panic
	}()
	wg.Wait()
	for i, err := range closeErrs {
		if err != closeErrs[0] {
			t.Fatalf("Close call %d returned %v, call 0 returned %v", i, err, closeErrs[0])
		}
	}
	if closeErrs[0] != nil {
		t.Fatalf("Close: %v", closeErrs[0])
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close after Close: %v", err)
	}

	// The decomposition stays usable after Close (unlogged), and the WAL
	// directory reopens to a consistent prefix: at least the 4 batches
	// committed before the race, at most everything applied.
	applyScript(d, script[:1])
	d2, err := New(n, WithWAL(dir, WALOptions{}))
	if err != nil {
		t.Fatalf("reopen after concurrent close: %v", err)
	}
	defer d2.Close()
	got := captureState(d2)
	if got.batches < 4 || got.batches > 12 {
		t.Fatalf("recovered %d batches, want between 4 and 12", got.batches)
	}
	ref, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	applyScript(ref, script[:got.batches])
	requireSameState(t, got, captureState(ref), "prefix after concurrent close")
}
