package kcore_test

import (
	"fmt"

	"kcore"
)

// ExampleNew demonstrates basic construction, a batch update and a read.
func ExampleNew() {
	d, err := kcore.New(100)
	if err != nil {
		panic(err)
	}
	// A triangle among vertices 0,1,2: every member has coreness 2.
	d.InsertEdges([]kcore.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	fmt.Printf("edges=%d estimate=%.1f exact=%d\n",
		d.NumEdges(), d.Coreness(0), d.ExactCoreness()[0])
	// Output: edges=3 estimate=1.0 exact=2
}

// ExampleStatic computes a one-shot exact decomposition.
func ExampleStatic() {
	core := kcore.Static(4, []kcore.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3},
	})
	fmt.Println(core)
	// Output: [2 2 2 1]
}

// ExampleDecomposition_DeleteEdges shows that estimates adapt to removals.
func ExampleDecomposition_DeleteEdges() {
	d, _ := kcore.New(10)
	edges := []kcore.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}
	d.InsertEdges(edges)
	removed := d.DeleteEdges(edges[:1])
	fmt.Printf("removed=%d exact=%d\n", removed, d.ExactCoreness()[0])
	// Output: removed=1 exact=1
}

// ExampleDecomposition_TopSpreaders ranks vertices by approximate coreness.
func ExampleDecomposition_TopSpreaders() {
	d, _ := kcore.New(50)
	// Dense cluster on 0..5, isolated elsewhere.
	var batch []kcore.Edge
	for i := uint32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			batch = append(batch, kcore.Edge{U: i, V: j})
		}
	}
	d.InsertEdges(batch)
	top := d.TopSpreaders(3)
	fmt.Println(top)
	// Output: [0 1 2]
}
