// Social-network serving: low-latency coreness reads during update storms.
//
// This example reproduces the paper's motivating scenario (§1): a social
// graph absorbs large batches of new friendships on the update path while
// the user-facing read path must stay responsive. It runs reader
// goroutines with each of the three read protocols against the same update
// storm and prints their observed latency profiles:
//
//   - Coreness (CPLDS): lock-free, linearizable — microsecond latency.
//
//   - CorenessBlocking (SyncReads): waits for the batch — latency is the
//     remaining batch time.
//
//   - CorenessNonLinearizable (NonSync): fast but may return estimates
//     with unbounded error mid-batch.
//
//     go run ./examples/socialnetwork
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"kcore"
)

const (
	numUsers  = 10000
	numEdges  = 60000
	batchSize = 15000
	readers   = 3
)

func main() {
	d, err := kcore.New(numUsers)
	if err != nil {
		panic(err)
	}
	// Preferential-attachment-flavoured friendships: active users get more.
	rng := rand.New(rand.NewSource(42))
	edges := make([]kcore.Edge, numEdges)
	for i := range edges {
		u := uint32(rng.Intn(numUsers))
		v := uint32(rng.Intn(1 + rng.Intn(numUsers)))
		edges[i] = kcore.Edge{U: u, V: v}
	}
	// Load half as the existing social graph.
	d.InsertEdges(edges[:numEdges/2])

	type mode struct {
		name string
		read func(uint32) float64
	}
	modes := []mode{
		{"Coreness (linearizable)", d.Coreness},
		{"CorenessBlocking (sync)", d.CorenessBlocking},
		{"CorenessNonLinearizable", d.CorenessNonLinearizable},
	}

	fmt.Printf("%-26s %12s %12s %12s %9s\n", "read mode", "mean", "p99", "max", "reads")
	for _, m := range modes {
		lat := storm(d, edges[numEdges/2:], m.read)
		if len(lat) == 0 {
			fmt.Printf("%-26s (no reads completed)\n", m.name)
			continue
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var total time.Duration
		for _, l := range lat {
			total += l
		}
		fmt.Printf("%-26s %12v %12v %12v %9d\n", m.name,
			total/time.Duration(len(lat)), lat[len(lat)*99/100], lat[len(lat)-1], len(lat))
	}
}

// storm replays the update batches (insert them, then delete them) while
// reader goroutines hammer the given read function, and returns all
// observed read latencies.
func storm(d *kcore.Decomposition, edges []kcore.Edge, read func(uint32) float64) []time.Duration {
	var mu sync.Mutex
	var all []time.Duration
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			local := make([]time.Duration, 0, 1<<14)
			for {
				select {
				case <-stop:
					mu.Lock()
					all = append(all, local...)
					mu.Unlock()
					return
				default:
				}
				v := uint32(rng.Intn(numUsers))
				t0 := time.Now()
				read(v)
				local = append(local, time.Since(t0))
			}
		}(r)
	}
	for lo := 0; lo < len(edges); lo += batchSize {
		hi := lo + batchSize
		if hi > len(edges) {
			hi = len(edges)
		}
		d.InsertEdges(edges[lo:hi])
	}
	for lo := 0; lo < len(edges); lo += batchSize {
		hi := lo + batchSize
		if hi > len(edges) {
			hi = len(edges)
		}
		d.DeleteEdges(edges[lo:hi])
	}
	close(stop)
	wg.Wait()
	return all
}
