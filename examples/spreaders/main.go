// Influential-spreader selection on a dynamic contact network.
//
// Epidemiology is one of the motivating applications of approximate k-core
// decomposition (§1): Kitsak et al. showed that a node's coreness predicts
// its spreading power better than its degree. This example maintains a
// dynamic contact network, selects the top-k spreaders by (approximate)
// coreness after each update wave, and compares the selection against the
// degree heuristic by simulating a simple SIR-style cascade from each seed
// set.
//
//	go run ./examples/spreaders
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"kcore"
)

const (
	people   = 4000
	contacts = 24000
	waves    = 4
	topK     = 20
)

func main() {
	// Retain enough epochs that a view pinned at the first wave stays
	// readable through every later wave's commit.
	d, err := kcore.New(people, kcore.WithRetainedEpochs(waves+1))
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(11))

	// Contact network: a few dense households/workplaces plus random
	// mixing. Heavy mixing hubs have high degree but low coreness; dense
	// cluster members have high coreness.
	var edges []kcore.Edge
	// Dense clusters of 15 (high coreness).
	for c := 0; c < 40; c++ {
		base := uint32(c * 15)
		for i := uint32(0); i < 15; i++ {
			for j := i + 1; j < 15; j++ {
				edges = append(edges, kcore.Edge{U: base + i, V: base + j})
			}
		}
	}
	// Star hubs (high degree, low coreness).
	for h := 0; h < 5; h++ {
		hub := uint32(3000 + h)
		for i := 0; i < 300; i++ {
			edges = append(edges, kcore.Edge{U: hub, V: uint32(rng.Intn(2000) + 600)})
		}
	}
	// Random mixing.
	for len(edges) < contacts {
		edges = append(edges, kcore.Edge{U: uint32(rng.Intn(people)), V: uint32(rng.Intn(people))})
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	per := len(edges) / waves
	adj := make([][]uint32, people)
	var firstWave *kcore.View // pinned at wave 1's epoch below
	for w := 0; w < waves; w++ {
		lo, hi := w*per, (w+1)*per
		if w == waves-1 {
			hi = len(edges)
		}
		batch := edges[lo:hi]
		d.InsertEdges(batch)
		for _, e := range batch {
			if e.U != e.V {
				adj[e.U] = append(adj[e.U], e.V)
				adj[e.V] = append(adj[e.V], e.U)
			}
		}

		// An epoch-pinned view ranks every vertex against one committed
		// batch boundary — per-vertex Coreness calls could straddle a
		// boundary and rank a torn mix of waves.
		view := d.View()
		coreScores := view.CorenessMany(allVertices())
		coreSeeds := topBy(func(v uint32) float64 { return coreScores[v] })
		degSeeds := topBy(func(v uint32) float64 { return float64(len(adj[v])) })
		fmt.Printf("wave %d: %7d contacts (served epoch %d) | cascade from top-%d by coreness: %5d, by degree: %5d\n",
			w+1, d.NumEdges(), view.Epoch(), topK, cascade(adj, coreSeeds, rng), cascade(adj, degSeeds, rng))

		// Pin the first wave's cut: later waves keep committing, but this
		// view keeps serving wave 1 exactly.
		if w == 0 {
			firstWave = view
			if err := firstWave.Pin(); err != nil {
				panic(err)
			}
		}
	}

	// The pinned view still serves wave 1's epoch — byte-identical — even
	// though every later wave has committed since. A health-report endpoint
	// paginating over wave 1's ranking would see one frozen cut throughout.
	defer firstWave.Release()
	oldScores := firstWave.CorenessMany(allVertices())
	oldSeeds := topBy(func(v uint32) float64 { return oldScores[v] })
	fmt.Printf("pinned view still serves epoch %d after %d later commits | wave-1 top-%d cascade now: %5d\n",
		firstWave.Epoch(), d.Epoch()-firstWave.Epoch(), topK, cascade(adj, oldSeeds, rng))
}

// allVertices returns the full vertex id range.
func allVertices() []uint32 {
	vs := make([]uint32, people)
	for i := range vs {
		vs[i] = uint32(i)
	}
	return vs
}

// topBy returns the topK vertices by the given score, ties by id.
func topBy(score func(uint32) float64) []uint32 {
	vs := make([]uint32, people)
	for i := range vs {
		vs[i] = uint32(i)
	}
	sort.Slice(vs, func(i, j int) bool {
		si, sj := score(vs[i]), score(vs[j])
		if si != sj {
			return si > sj
		}
		return vs[i] < vs[j]
	})
	return vs[:topK]
}

// cascade runs a simple independent-cascade simulation (p = 0.12, averaged
// over 20 runs) and returns the mean outbreak size.
func cascade(adj [][]uint32, seeds []uint32, rng *rand.Rand) int {
	const p = 0.12
	const runs = 20
	total := 0
	for r := 0; r < runs; r++ {
		infected := make([]bool, people)
		queue := append([]uint32(nil), seeds...)
		for _, s := range seeds {
			infected[s] = true
		}
		count := len(seeds)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if !infected[w] && rng.Float64() < p {
					infected[w] = true
					count++
					queue = append(queue, w)
				}
			}
		}
		total += count
	}
	return total / runs
}
