// Dense-community tracking on an evolving graph.
//
// k-cores give a hierarchical notion of community density: the vertices
// with coreness >= k form the k-core, and rising coreness means a vertex is
// embedding into a denser community. This example streams a graph in which
// a dense community gradually assembles inside background noise, and after
// each batch reports the size of the densest region and the coreness
// trajectory of a tracked member — using only linearizable reads, so the
// tracker could run concurrently with the update stream.
//
//	go run ./examples/communities
package main

import (
	"fmt"
	"math/rand"

	"kcore"
)

const (
	n            = 5000
	communitySz  = 60
	noisePerStep = 2000
	steps        = 6
)

func main() {
	d, err := kcore.New(n)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(7))

	// The community assembles among vertices 0..communitySz-1: each step
	// adds a growing fraction of its clique edges, plus random background.
	var communityEdges []kcore.Edge
	for i := uint32(0); i < communitySz; i++ {
		for j := i + 1; j < communitySz; j++ {
			communityEdges = append(communityEdges, kcore.Edge{U: i, V: j})
		}
	}
	rng.Shuffle(len(communityEdges), func(i, j int) {
		communityEdges[i], communityEdges[j] = communityEdges[j], communityEdges[i]
	})
	perStep := len(communityEdges) / steps

	fmt.Printf("%5s %10s %12s %16s %14s\n", "step", "edges", "tracked v=0", "max estimate", "dense members")
	for s := 0; s < steps; s++ {
		batch := make([]kcore.Edge, 0, perStep+noisePerStep)
		lo := s * perStep
		hi := lo + perStep
		if s == steps-1 {
			hi = len(communityEdges)
		}
		batch = append(batch, communityEdges[lo:hi]...)
		for i := 0; i < noisePerStep; i++ {
			batch = append(batch, kcore.Edge{
				U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n)),
			})
		}
		d.InsertEdges(batch)

		// Linearizable reads: scan for the densest region.
		maxEst, denseCount := 0.0, 0
		for v := uint32(0); v < n; v++ {
			est := d.Coreness(v)
			if est > maxEst {
				maxEst = est
			}
		}
		threshold := maxEst / d.ApproxFactor()
		for v := uint32(0); v < n; v++ {
			if d.Coreness(v) >= threshold && d.Coreness(v) > 1 {
				denseCount++
			}
		}
		fmt.Printf("%5d %10d %12.2f %16.2f %14d\n",
			s+1, d.NumEdges(), d.Coreness(0), maxEst, denseCount)
	}

	exact := d.ExactCoreness()
	maxExact := int32(0)
	for _, c := range exact {
		if c > maxExact {
			maxExact = c
		}
	}
	fmt.Printf("\nfinal: exact max coreness %d, estimate of tracked vertex %.2f (exact %d)\n",
		maxExact, d.Coreness(0), exact[0])
}
