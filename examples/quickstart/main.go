// Quickstart: build a dynamic k-core decomposition, apply batched edge
// updates, and read approximate coreness values.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"kcore"
)

func main() {
	// A decomposition over 1000 vertices with the default parameters
	// (approximation factor 2.8).
	d, err := kcore.New(1000)
	if err != nil {
		panic(err)
	}

	// Insert a batch of edges: a dense community (vertices 0..49 form a
	// clique) plus a sparse ring over the rest.
	var batch []kcore.Edge
	for i := uint32(0); i < 50; i++ {
		for j := i + 1; j < 50; j++ {
			batch = append(batch, kcore.Edge{U: i, V: j})
		}
	}
	for i := uint32(50); i < 999; i++ {
		batch = append(batch, kcore.Edge{U: i, V: i + 1})
	}
	added := d.InsertEdges(batch)
	fmt.Printf("inserted %d edges in batch #%d (committed epoch %d)\n",
		added, d.BatchNumber(), d.Epoch())

	// Read coreness estimates. Reads are lock-free and linearizable; they
	// can be issued from any goroutine, even while a batch is running.
	fmt.Printf("coreness estimate of clique vertex 7:   %.2f (exact: 49)\n", d.Coreness(7))
	fmt.Printf("coreness estimate of ring vertex 500:   %.2f (exact: 1)\n", d.Coreness(500))
	fmt.Printf("approximation factor: %.2f\n", d.ApproxFactor())

	// Multi-vertex reads go through an epoch-pinned View: every value is
	// served from one committed batch boundary (reported by Epoch), never a
	// torn mix of concurrent batches.
	view := d.View()
	many := view.CorenessMany([]uint32{7, 13, 500})
	fmt.Printf("bulk estimates served at epoch %d: %v\n", view.Epoch(), many)
	top := view.TopK(3)
	fmt.Printf("top-3 by coreness at epoch %d: %v\n", view.Epoch(), top)

	// Exact values are available as a quiescent operation.
	exact := d.ExactCoreness()
	fmt.Printf("exact coreness of vertex 7: %d, vertex 500: %d\n", exact[7], exact[500])

	// Delete the clique; estimates adapt — and the epoch advances with the
	// new batch.
	d.DeleteEdges(batch[:50*49/2])
	fmt.Printf("after deleting the clique (epoch %d), vertex 7 estimate: %.2f\n",
		d.Epoch(), d.Coreness(7))

	// Retired epochs stay readable within the retention window
	// (WithRetainedEpochs, 8 deep by default): a view fixed at the
	// pre-delete epoch still serves the clique-era values.
	old, err := d.ViewAt(view.Epoch())
	if err != nil {
		panic(err)
	}
	fmt.Printf("vertex 7 back at epoch %d: %.2f (served now, after the delete committed)\n",
		old.Epoch(), old.Coreness(7))
}
