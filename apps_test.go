package kcore

import "testing"

func ring(n int) []Edge {
	out := make([]Edge, n)
	for i := 0; i < n; i++ {
		out[i] = Edge{uint32(i), uint32((i + 1) % n)}
	}
	return out
}

func TestOrientLowOutDegreeStatic(t *testing.T) {
	o := OrientLowOutDegree(10, ring(10))
	if o.MaxOutDegree() > 2 {
		t.Fatalf("ring orientation out-degree %d, want <= degeneracy 2", o.MaxOutDegree())
	}
	total := 0
	for _, out := range o.Out {
		total += len(out)
	}
	if total != 10 {
		t.Fatalf("oriented %d edges, want 10", total)
	}
}

func TestDecompositionOrient(t *testing.T) {
	d, _ := New(60)
	d.InsertEdges(clique(20))
	o := d.Orient()
	if got := o.MaxOutDegree(); got != 19 {
		// A clique's degeneracy order gives decreasing out-degrees 19..0.
		t.Fatalf("clique orientation max out-degree %d, want 19", got)
	}
}

func TestDensestSubgraphFindsPlantedClique(t *testing.T) {
	d, _ := New(500)
	d.InsertEdges(clique(25))
	d.InsertEdges(ring(500))
	ds := d.DensestSubgraph()
	if ds.Density < 12 { // 25-clique density = 12
		t.Fatalf("density %.2f, want >= 12 (planted 25-clique)", ds.Density)
	}
	members := map[uint32]bool{}
	for _, v := range ds.Vertices {
		members[v] = true
	}
	for v := uint32(0); v < 25; v++ {
		if !members[v] {
			t.Fatalf("clique vertex %d missing from densest subgraph", v)
		}
	}
}

func TestTopSpreadersDynamic(t *testing.T) {
	d, _ := New(300)
	d.InsertEdges(clique(15)) // dense community on 0..14
	d.InsertEdges(ring(300))
	top := d.TopSpreaders(15)
	if len(top) != 15 {
		t.Fatalf("top = %d entries", len(top))
	}
	inClique := 0
	for _, v := range top {
		if v < 15 {
			inClique++
		}
	}
	if inClique != 15 {
		t.Fatalf("only %d/15 spreaders from the dense community", inClique)
	}
}

func TestColor(t *testing.T) {
	d, _ := New(50)
	d.InsertEdges(clique(8))
	colors, used := d.Color()
	if used != 8 {
		t.Fatalf("clique colors = %d, want 8", used)
	}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if colors[i] == colors[j] {
				t.Fatalf("clique vertices %d,%d share color", i, j)
			}
		}
	}
}

func TestMaximalMatchingPublic(t *testing.T) {
	d, _ := New(100)
	d.InsertEdges(ring(100))
	m := d.MaximalMatching()
	if len(m) < 33 || len(m) > 50 {
		t.Fatalf("ring matching size %d", len(m))
	}
	used := map[uint32]bool{}
	for _, e := range m {
		if used[e.U] || used[e.V] {
			t.Fatalf("vertex reused at %v", e)
		}
		used[e.U], used[e.V] = true, true
	}
}
