package kcore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestViewBasics exercises the quiescent behaviour of the View read
// surface in single-engine mode: agreement with the legacy read methods,
// epoch advancement at batch boundaries, and histogram accounting.
func TestViewBasics(t *testing.T) {
	d, err := New(40)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Epoch(); got != 0 {
		t.Fatalf("fresh Epoch = %d, want 0", got)
	}
	d.InsertEdges(clique(10))
	if got := d.Epoch(); got != 1 {
		t.Fatalf("Epoch after one batch = %d, want 1", got)
	}

	v := d.View()
	if v.Epoch() != 1 {
		t.Fatalf("view pinned at epoch %d, want 1", v.Epoch())
	}
	ids := []uint32{0, 3, 9, 20}
	many := v.CorenessMany(ids)
	for i, u := range ids {
		if want := d.Coreness(u); many[i] != want {
			t.Fatalf("CorenessMany[%d] = %v, Coreness(%d) = %v", i, many[i], u, want)
		}
		if got := v.Coreness(u); got != many[i] {
			t.Fatalf("view Coreness(%d) = %v, want %v", u, got, many[i])
		}
	}
	if v.Epoch() != 1 {
		t.Fatalf("view epoch drifted to %d with no updates", v.Epoch())
	}

	// CorenessManyInto matches and reports the epoch.
	out := make([]float64, len(ids))
	if e := v.CorenessManyInto(ids, out); e != 1 {
		t.Fatalf("CorenessManyInto epoch = %d", e)
	}
	for i := range ids {
		if out[i] != many[i] {
			t.Fatalf("CorenessManyInto[%d] = %v, want %v", i, out[i], many[i])
		}
	}

	// TopK ranks the clique first.
	top := v.TopK(10)
	if len(top) != 10 {
		t.Fatalf("TopK returned %d vertices", len(top))
	}
	for _, u := range top {
		if u >= 10 {
			t.Fatalf("non-clique vertex %d in TopK", u)
		}
	}

	// Histogram buckets are ascending and account for every vertex.
	hist := v.Histogram()
	total := 0
	for i, b := range hist {
		total += b.Count
		if i > 0 && hist[i-1].Coreness >= b.Coreness {
			t.Fatalf("histogram not strictly ascending: %v", hist)
		}
	}
	if total != d.NumVertices() {
		t.Fatalf("histogram covers %d vertices, want %d", total, d.NumVertices())
	}

	// A stale view re-pins to the newest committed epoch on its next read.
	d.DeleteEdges(clique(10))
	if got := d.Epoch(); got != 2 {
		t.Fatalf("Epoch after two batches = %d, want 2", got)
	}
	if got := v.Coreness(0); got != 1 {
		t.Fatalf("view read after delete = %v, want floor estimate 1", got)
	}
	if v.Epoch() != 2 {
		t.Fatalf("view epoch after re-pin = %d, want 2", v.Epoch())
	}
}

// TestViewEpochMatchesRecordedStates is the epoch-semantics stress test: a
// single updater walks a small graph through many distinct states,
// recording the exact per-epoch estimate vector at every batch boundary,
// while concurrent readers sample CorenessMany through fresh views. Every
// sample must be bit-identical to the recorded vector of the epoch it
// reports — a sample mixing values from two different batch boundaries
// matches no recorded vector and fails. Run with -race in CI.
func TestViewEpochMatchesRecordedStates(t *testing.T) {
	const n = 32
	d, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]uint32, n)
	for i := range all {
		all[i] = uint32(i)
	}

	// snapshots[e] is the estimate vector at epoch e, recorded by the
	// updater at the boundary (it is the only updater, so its own reads
	// between batches are the committed state).
	snapshots := make(map[uint64][]float64)
	record := func() {
		vals := make([]float64, n)
		for i, u := range all {
			vals[i] = d.Coreness(u)
		}
		snapshots[d.Epoch()] = vals
	}
	record() // epoch 0: empty graph
	d.InsertEdges(ring(n))
	record() // epoch 1: ring

	type sample struct {
		epoch uint64
		vals  []float64
	}
	const readers = 3
	samples := make([][]sample, readers)
	var counts [readers]atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var last sample
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := d.View()
				vals := v.CorenessMany(all)
				e := v.Epoch()
				if last.vals != nil && last.epoch == e {
					// Same epoch ⇒ identical committed state: check inline
					// instead of storing every redundant sample.
					for i := range vals {
						if vals[i] != last.vals[i] {
							t.Errorf("reader %d: epoch %d served %v then %v for vertex %d",
								r, e, last.vals[i], vals[i], i)
							return
						}
					}
				} else {
					last = sample{epoch: e, vals: vals}
					samples[r] = append(samples[r], last)
				}
				counts[r].Add(1)
			}
		}(r)
	}

	// Updater: slide a clique window around the ring, inserting and then
	// deleting it, so consecutive boundaries have distinct estimate
	// vectors at changing positions.
	iters := 120
	if testing.Short() {
		iters = 40
	}
	window := func(k int) []Edge {
		base := uint32((k * 5) % n)
		var out []Edge
		for i := uint32(0); i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				out = append(out, Edge{U: (base + i) % n, V: (base + j) % n})
			}
		}
		return out
	}
	for k := 0; k < iters; k++ {
		w := window(k / 2)
		if k%2 == 0 {
			d.InsertEdges(w)
		} else {
			d.DeleteEdges(w)
		}
		record()
		runtime.Gosched() // single-core schedulers: let readers sample mid-run
	}
	// Keep the final state live until every reader has sampled at least
	// once (on one core most sampling happens here; the checks still cover
	// whatever interleavings occurred during the update loop).
	for r := 0; r < readers; r++ {
		for counts[r].Load() == 0 {
			runtime.Gosched()
		}
	}
	close(stop)
	wg.Wait()

	checked := 0
	for r := range samples {
		for _, s := range samples[r] {
			want, ok := snapshots[s.epoch]
			if !ok {
				t.Fatalf("reader %d observed unrecorded epoch %d", r, s.epoch)
			}
			for i := range want {
				if s.vals[i] != want[i] {
					t.Fatalf("reader %d, epoch %d: vertex %d = %v, recorded boundary value %v (torn multi-read)",
						r, s.epoch, i, s.vals[i], want[i])
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no reader samples collected")
	}
	t.Logf("verified %d multi-reads against %d recorded boundaries", checked, len(snapshots))
}

// TestViewShardedEpochConsistency verifies the cross-shard epoch under
// concurrent batch updates: any two view reads (CorenessMany or TopK) that
// report the same epoch must have observed the identical committed state,
// and every read reports exactly one epoch. Run with -race in CI.
func TestViewShardedEpochConsistency(t *testing.T) {
	const n = 128
	d, err := New(n, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	all := make([]uint32, n)
	for i := range all {
		all[i] = uint32(i)
	}

	iters := 60
	if testing.Short() {
		iters = 20
	}

	// Concurrent writers: one grows/shrinks cliques, one churns a ring —
	// legal concurrency in sharded mode.
	var writers sync.WaitGroup
	writers.Add(2)
	go func() {
		defer writers.Done()
		for k := 0; k < iters; k++ {
			c := clique(8 + k%24)
			d.InsertEdges(c)
			d.DeleteEdges(c[:len(c)/2])
			runtime.Gosched()
		}
	}()
	go func() {
		defer writers.Done()
		for k := 0; k < iters; k++ {
			r := ring(n)
			if k%2 == 0 {
				d.InsertEdges(r)
			} else {
				d.DeleteEdges(r)
			}
			runtime.Gosched()
		}
	}()

	type sample struct {
		epoch uint64
		vals  []float64
		top   []uint32
	}
	const readers = 3
	samples := make([][]sample, readers)
	var counts [readers]atomic.Int64
	done := make(chan struct{})
	go func() {
		writers.Wait()
		// Keep reads flowing against the settled state until every reader
		// has sampled at least once (single-core schedulers can starve the
		// readers while the writers run).
		for r := 0; r < readers; r++ {
			for counts[r].Load() == 0 {
				runtime.Gosched()
			}
		}
		close(done)
	}()
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			var lastEpoch uint64
			var lastVals, lastTop sample
			for {
				select {
				case <-done:
					return
				default:
				}
				v := d.View()
				vals := v.CorenessMany(all)
				e1 := v.Epoch()
				if e1 < lastEpoch {
					t.Errorf("reader %d: epoch went backwards %d -> %d", r, lastEpoch, e1)
					return
				}
				lastEpoch = e1
				top := v.TopK(5)
				if lastVals.vals != nil && lastVals.epoch == e1 {
					// Redundant same-epoch sample: verify inline, don't store.
					for i := range vals {
						if vals[i] != lastVals.vals[i] {
							t.Errorf("reader %d: epoch %d served two values for vertex %d: %v vs %v",
								r, e1, i, lastVals.vals[i], vals[i])
							return
						}
					}
				} else {
					lastVals = sample{epoch: e1, vals: vals}
					samples[r] = append(samples[r], lastVals)
				}
				e2 := v.Epoch()
				if lastTop.top != nil && lastTop.epoch == e2 {
					for i := range top {
						if top[i] != lastTop.top[i] {
							t.Errorf("reader %d: epoch %d served two rankings: %v vs %v",
								r, e2, lastTop.top, top)
							return
						}
					}
				} else {
					lastTop = sample{epoch: e2, top: top}
					samples[r] = append(samples[r], lastTop)
				}
				counts[r].Add(1)
			}
		}(r)
	}
	rg.Wait()

	// Group by epoch: equal epochs ⇒ identical committed state ⇒ identical
	// values and rankings.
	valsByEpoch := make(map[uint64][]float64)
	topByEpoch := make(map[uint64][]uint32)
	total := 0
	for r := range samples {
		for _, s := range samples[r] {
			total++
			if s.vals != nil {
				if prev, ok := valsByEpoch[s.epoch]; ok {
					for i := range prev {
						if prev[i] != s.vals[i] {
							t.Fatalf("epoch %d served two different values for vertex %d: %v vs %v",
								s.epoch, i, prev[i], s.vals[i])
						}
					}
				} else {
					valsByEpoch[s.epoch] = s.vals
				}
			}
			if s.top != nil {
				if prev, ok := topByEpoch[s.epoch]; ok {
					for i := range prev {
						if prev[i] != s.top[i] {
							t.Fatalf("epoch %d served two different TopK rankings: %v vs %v",
								s.epoch, prev, s.top)
						}
					}
				} else {
					topByEpoch[s.epoch] = s.top
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no reader samples collected")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	t.Logf("verified %d reads over %d distinct epochs", total, len(valsByEpoch))
}

// TestShardedAppsQuiescent is the regression test for the sharded-mode
// panic: every apps-layer method must work on a sharded Decomposition by
// routing through the engine interface's global snapshot.
func TestShardedAppsQuiescent(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			d, err := New(300, WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			d.InsertEdges(clique(20))
			d.InsertEdges(ring(300))

			o := d.Orient()
			if got := o.MaxOutDegree(); got != 19 {
				t.Fatalf("Orient max out-degree = %d, want 19", got)
			}
			ds := d.DensestSubgraph()
			if ds.Density < 9 { // 20-clique density 9.5
				t.Fatalf("DensestSubgraph density = %v, want >= 9", ds.Density)
			}
			colors, used := d.Color()
			if used < 20 {
				t.Fatalf("Color used %d colors, want >= 20 (20-clique)", used)
			}
			for i := 0; i < 20; i++ {
				for j := i + 1; j < 20; j++ {
					if colors[i] == colors[j] {
						t.Fatalf("clique vertices %d,%d share color %d", i, j, colors[i])
					}
				}
			}
			m := d.MaximalMatching()
			used2 := map[uint32]bool{}
			for _, e := range m {
				if used2[e.U] || used2[e.V] {
					t.Fatalf("matching reuses a vertex at %v", e)
				}
				used2[e.U], used2[e.V] = true, true
			}
			top := d.TopSpreaders(20)
			inClique := 0
			for _, v := range top {
				if v < 20 {
					inClique++
				}
			}
			if inClique != 20 {
				t.Fatalf("only %d/20 top spreaders from the clique", inClique)
			}
		})
	}
}

// TestOptionValidation covers the New-time rejection of negative option
// values and the WithShards(0)/WithShards(1) == default equivalence.
func TestOptionValidation(t *testing.T) {
	if _, err := New(10, WithShards(-1)); err == nil {
		t.Fatal("want error for WithShards(-1)")
	}
	if _, err := New(10, WithWorkers(-2)); err == nil {
		t.Fatal("want error for WithWorkers(-2)")
	}
	for _, p := range []int{0, 1} {
		d, err := New(10, WithShards(p))
		if err != nil {
			t.Fatalf("WithShards(%d): %v", p, err)
		}
		if got := d.Shards(); got != 1 {
			t.Fatalf("WithShards(%d).Shards() = %d, want 1 (single engine)", p, got)
		}
	}
}

// BenchmarkViewCorenessMany measures the epoch-pinned bulk-read path: view
// creation plus a 64-vertex CorenessMany on a loaded structure.
func BenchmarkViewCorenessMany(b *testing.B) {
	d, err := New(10000)
	if err != nil {
		b.Fatal(err)
	}
	d.InsertEdges(clique(120))
	ids := make([]uint32, 64)
	for i := range ids {
		ids[i] = uint32(i * 150)
	}
	out := make([]float64, len(ids))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := d.View()
		v.CorenessManyInto(ids, out)
	}
}

// BenchmarkViewTopK measures a full epoch-pinned ranking pass.
func BenchmarkViewTopK(b *testing.B) {
	d, err := New(10000)
	if err != nil {
		b.Fatal(err)
	}
	d.InsertEdges(clique(120))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.View().TopK(10)
	}
}
