package kcore

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
)

// drainFeed collects every delivery already enqueued on the subscription.
// Publish is synchronous with commit, so after an update call returns all
// of its deliveries are buffered.
func drainFeed(sub *Subscription) []EventDelivery {
	var ds []EventDelivery
	for {
		select {
		case d, ok := <-sub.C():
			if !ok {
				return ds
			}
			ds = append(ds, d)
		default:
			return ds
		}
	}
}

// TestFeedEventsMatchEpochPinnedReads is the consistency acceptance test:
// in both engine modes, every delivered event's NewCore must equal the
// epoch-pinned read at its epoch, its OldCore the read at the epoch before,
// and the delivered vertex set per epoch must equal the brute-force diff of
// the two adjacent epoch-pinned full reads.
func TestFeedEventsMatchEpochPinnedReads(t *testing.T) {
	const n = 128
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			d, err := New(n, WithShards(shards), WithRetainedEpochs(64), WithEventBuffer(256))
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			sub, err := d.Subscribe(EventFilter{})
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()

			d.InsertEdges(ring(n))
			d.InsertEdges(clique(16))
			d.InsertEdges(clique(32))
			d.DeleteEdges(clique(16)[:40])

			vs := vertexRange(n)
			for _, del := range drainFeed(sub) {
				if del.Gap {
					t.Fatalf("unexpected gap with large buffer: %+v", del)
				}
				e := del.Epoch
				cur, err := d.ViewAt(e)
				if err != nil {
					t.Fatalf("ViewAt(%d): %v", e, err)
				}
				prev, err := d.ViewAt(e - 1)
				if err != nil {
					t.Fatalf("ViewAt(%d): %v", e-1, err)
				}
				now, before := cur.CorenessMany(vs), prev.CorenessMany(vs)

				// Brute-force movers between the two adjacent cuts.
				moved := make(map[uint32]struct{})
				for i := range vs {
					if math.Float64bits(now[i]) != math.Float64bits(before[i]) {
						moved[vs[i]] = struct{}{}
					}
				}
				if len(moved) != len(del.Events) {
					t.Fatalf("epoch %d: %d events delivered, brute force found %d movers",
						e, len(del.Events), len(moved))
				}
				for _, ev := range del.Events {
					if ev.Epoch != e {
						t.Fatalf("event epoch %d inside delivery for epoch %d", ev.Epoch, e)
					}
					if _, ok := moved[ev.Vertex]; !ok {
						t.Fatalf("epoch %d: event for non-mover vertex %d", e, ev.Vertex)
					}
					if got := now[ev.Vertex]; math.Float64bits(got) != math.Float64bits(ev.NewCore) {
						t.Fatalf("epoch %d vertex %d: NewCore %v, pinned read %v", e, ev.Vertex, ev.NewCore, got)
					}
					if got := before[ev.Vertex]; math.Float64bits(got) != math.Float64bits(ev.OldCore) {
						t.Fatalf("epoch %d vertex %d: OldCore %v, pinned read at %d %v",
							e, ev.Vertex, ev.OldCore, e-1, got)
					}
				}
			}
		})
	}
}

// TestFeedFilterAgainstBruteForce subscribes one filtered and one unfiltered
// stream to the same workload and checks the filtered deliveries are exactly
// the unfiltered events passed through the filter predicate.
func TestFeedFilterAgainstBruteForce(t *testing.T) {
	const n = 96
	const k = 3.0
	d, err := New(n, WithShards(2), WithRetainedEpochs(32), WithEventBuffer(256))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	all, err := d.Subscribe(EventFilter{})
	if err != nil {
		t.Fatal(err)
	}
	crossers, err := d.Subscribe(EventFilter{CrossK: k})
	if err != nil {
		t.Fatal(err)
	}

	d.InsertEdges(ring(n))
	d.InsertEdges(clique(24))
	d.DeleteEdges(clique(24)[:100])

	want := make(map[string]int)
	for _, del := range drainFeed(all) {
		for _, ev := range del.Events {
			if (ev.OldCore < k) != (ev.NewCore < k) {
				want[fmt.Sprintf("%d/%d", ev.Epoch, ev.Vertex)]++
			}
		}
	}
	got := make(map[string]int)
	for _, del := range drainFeed(crossers) {
		if del.Gap {
			t.Fatalf("unexpected gap: %+v", del)
		}
		for _, ev := range del.Events {
			got[fmt.Sprintf("%d/%d", ev.Epoch, ev.Vertex)]++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("filtered stream delivered %d crossing events, brute force found %d", len(got), len(want))
	}
	for key := range want {
		if got[key] != want[key] {
			t.Fatalf("crossing event %s: filtered %d, brute force %d", key, got[key], want[key])
		}
	}
	if len(want) == 0 {
		t.Fatal("workload produced no threshold crossings; test is vacuous")
	}
}

// TestFeedGapRecoveryViaViewAt forces a slow subscriber into a gap and then
// performs the documented recovery: an epoch-pinned read at or after GapTo
// resynchronizes with live state.
func TestFeedGapRecoveryViaViewAt(t *testing.T) {
	const n = 64
	d, err := New(n, WithRetainedEpochs(32), WithEventBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	sub, err := d.Subscribe(EventFilter{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Never drain while committing: buffer 1 forces drops on every
	// event-producing batch past the first. (The ring alone moves no
	// levels, so it publishes nothing; the cliques do.)
	d.InsertEdges(ring(n))
	d.InsertEdges(clique(8))
	d.InsertEdges(clique(12))
	d.InsertEdges(clique(16))

	if ds := drainFeed(sub); len(ds) == 0 {
		t.Fatal("no deliveries at all")
	}
	// The gap marker flushes on the next publish once the buffer has room.
	d.InsertEdges(clique(20))
	ds := drainFeed(sub)
	var gap *EventDelivery
	for i := range ds {
		if ds[i].Gap {
			gap = &ds[i]
			break
		}
	}
	if gap == nil {
		t.Fatalf("no gap marker after overrunning a 1-slot buffer: %+v", ds)
	}
	if gap.GapTo < gap.GapFrom {
		t.Fatalf("inverted gap: %+v", gap)
	}
	if st := d.FeedStats(); st.Drops == 0 {
		t.Fatalf("drops not counted: %+v", st)
	}

	// Recovery: re-read the state at (or after) the gap's end.
	v, err := d.ViewAt(gap.GapTo)
	if err != nil {
		t.Fatalf("ViewAt(GapTo=%d): %v", gap.GapTo, err)
	}
	got := v.CorenessMany(vertexRange(n))
	if v.Err() != nil {
		t.Fatalf("recovery read failed: %v", v.Err())
	}
	if gap.GapTo == d.Epoch() {
		live := make([]float64, 0, n)
		for _, u := range vertexRange(n) {
			live = append(live, d.Coreness(u))
		}
		if !equalF64(got, live) {
			t.Fatal("recovery read at the frontier diverges from live reads")
		}
	}
}

// TestFeedShardedEpochOrdering checks the publication ordering contract
// concurrently: a subscriber that issues ViewAt(e) the moment it receives
// epoch e must never see ErrFutureEpoch, and the pinned read must agree
// with the delivered NewCore values.
func TestFeedShardedEpochOrdering(t *testing.T) {
	const n = 128
	d, err := New(n, WithShards(4), WithRetainedEpochs(128), WithEventBuffer(512))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	sub, err := d.Subscribe(EventFilter{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	errc := make(chan error, 1)
	go func() {
		defer wg.Done()
		last := uint64(0)
		for del := range sub.C() {
			if del.Gap {
				errc <- fmt.Errorf("unexpected gap: %+v", del)
				return
			}
			lo := del.Epoch
			if lo <= last {
				errc <- fmt.Errorf("epochs out of order: %d after %d", lo, last)
				return
			}
			last = lo
			v, err := d.ViewAt(del.Epoch)
			if err != nil {
				errc <- fmt.Errorf("ViewAt(%d) on delivery: %w", del.Epoch, err)
				return
			}
			for _, ev := range del.Events {
				if got := v.Coreness(ev.Vertex); math.Float64bits(got) != math.Float64bits(ev.NewCore) {
					errc <- fmt.Errorf("epoch %d vertex %d: NewCore %v, immediate pinned read %v",
						del.Epoch, ev.Vertex, ev.NewCore, got)
					return
				}
			}
		}
	}()

	d.InsertEdges(ring(n))
	d.InsertEdges(clique(20))
	d.DeleteEdges(clique(20)[:60])
	d.InsertEdges(clique(32))
	sub.Close()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestFeedSubscriberCapOption checks WithMaxSubscribers end to end.
func TestFeedSubscriberCapOption(t *testing.T) {
	d, err := New(16, WithMaxSubscribers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Subscribe(EventFilter{}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe(EventFilter{}); err != ErrTooManySubscribers {
		t.Fatalf("over cap: err=%v", err)
	}
}

// feedEventsByEpoch canonicalizes a drained feed for comparison: events
// grouped per epoch, sorted by vertex within each, failing on gap markers.
func feedEventsByEpoch(t *testing.T, who string, ds []EventDelivery) map[uint64][]CoreEvent {
	t.Helper()
	byEpoch := make(map[uint64][]CoreEvent)
	for _, del := range ds {
		if del.Gap {
			t.Fatalf("%s feed gapped with a large buffer: %+v", who, del)
		}
		if _, dup := byEpoch[del.Epoch]; dup {
			t.Fatalf("%s feed delivered epoch %d twice", who, del.Epoch)
		}
		evs := append([]CoreEvent(nil), del.Events...)
		sort.Slice(evs, func(i, j int) bool { return evs[i].Vertex < evs[j].Vertex })
		byEpoch[del.Epoch] = evs
	}
	return byEpoch
}

// TestFeedParityPrimaryFollower subscribes an unfiltered feed on both ends
// of a replication link during ingest and asserts the follower's replayed
// commits emit exactly the primary's mover events, epoch for epoch. This is
// the replica-feed acceptance test: the change feed is derived from batch
// application, so replaying the same batch stream must publish the same
// events.
func TestFeedParityPrimaryFollower(t *testing.T) {
	const n = 128
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			primary, err := New(n, WithShards(shards), WithReplicationListen("127.0.0.1:0"),
				fastReplOpts(), WithRetainedEpochs(64), WithEventBuffer(512))
			if err != nil {
				t.Fatal(err)
			}
			defer primary.Close()
			// The follower attaches before any ingest so it observes every
			// epoch from 1, same as the primary's subscriber.
			follower, err := New(n, WithShards(shards),
				WithReplicationSource(primary.ReplicationAddr()),
				fastReplOpts(), WithRetainedEpochs(64), WithEventBuffer(512))
			if err != nil {
				t.Fatal(err)
			}
			defer follower.Close()

			psub, err := primary.Subscribe(EventFilter{})
			if err != nil {
				t.Fatal(err)
			}
			defer psub.Close()
			fsub, err := follower.Subscribe(EventFilter{})
			if err != nil {
				t.Fatal(err)
			}
			defer fsub.Close()

			primary.InsertEdges(ring(n))
			primary.InsertEdges(clique(16))
			primary.InsertEdges(clique(32))
			primary.DeleteEdges(clique(16)[:40])
			waitForEpoch(t, follower, primary.Epoch())

			pe := feedEventsByEpoch(t, "primary", drainFeed(psub))
			fe := feedEventsByEpoch(t, "follower", drainFeed(fsub))
			if len(pe) == 0 {
				t.Fatal("primary feed delivered nothing")
			}
			if len(pe) != len(fe) {
				t.Fatalf("primary delivered %d epochs, follower %d", len(pe), len(fe))
			}
			for e, pevs := range pe {
				fevs, ok := fe[e]
				if !ok {
					t.Fatalf("follower feed missing epoch %d", e)
				}
				if len(pevs) != len(fevs) {
					t.Fatalf("epoch %d: primary %d events, follower %d", e, len(pevs), len(fevs))
				}
				for i := range pevs {
					p, f := pevs[i], fevs[i]
					if p.Vertex != f.Vertex ||
						math.Float64bits(p.OldCore) != math.Float64bits(f.OldCore) ||
						math.Float64bits(p.NewCore) != math.Float64bits(f.NewCore) {
						t.Fatalf("epoch %d event %d differs: primary %+v, follower %+v", e, i, p, f)
					}
				}
			}
		})
	}
}
