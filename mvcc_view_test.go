package kcore

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// vertexRange returns the ids [0, n).
func vertexRange(n int) []uint32 {
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = uint32(i)
	}
	return vs
}

// equalF64 compares two float64 slices bit-for-bit.
func equalF64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestPinnedViewSurvivesCommits is the acceptance test of the multi-version
// store: a View pinned at epoch E returns byte-identical CorenessMany and
// TopK results before and after at least WithRetainedEpochs(n)-1 subsequent
// commits, in both engine modes.
func TestPinnedViewSurvivesCommits(t *testing.T) {
	const n = 96
	const retain = 6
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			d, err := New(n, WithShards(shards), WithRetainedEpochs(retain))
			if err != nil {
				t.Fatal(err)
			}
			if got := d.RetainedEpochs(); got != retain {
				t.Fatalf("RetainedEpochs = %d, want %d", got, retain)
			}
			d.InsertEdges(ring(n))
			d.InsertEdges(clique(12))

			v := d.View()
			if err := v.Pin(); err != nil {
				t.Fatalf("Pin: %v", err)
			}
			defer v.Release()
			if !v.Pinned() || !v.Fixed() {
				t.Fatal("Pin did not fix the view")
			}
			epoch := v.Epoch()
			all := vertexRange(n)
			before := v.CorenessMany(all)
			beforeTop := v.TopK(10)
			beforeHist := v.Histogram()
			if before == nil || beforeTop == nil {
				t.Fatalf("pinned read failed: %v", v.Err())
			}

			// Commit well over retain-1 batches, churning the graph hard so
			// live values definitely diverge from epoch E.
			for k := 0; k < 3*retain; k++ {
				c := clique(10 + k%20)
				if k%2 == 0 {
					d.InsertEdges(c)
				} else {
					d.DeleteEdges(c)
				}
			}
			live := d.View().CorenessMany(all)
			if equalF64(live, before) {
				t.Fatal("update churn left live values unchanged; test is vacuous")
			}

			after := v.CorenessMany(all)
			if !equalF64(before, after) {
				t.Fatalf("pinned view at epoch %d drifted:\nbefore %v\nafter  %v", epoch, before, after)
			}
			afterTop := v.TopK(10)
			for i := range beforeTop {
				if beforeTop[i] != afterTop[i] {
					t.Fatalf("pinned TopK drifted: %v vs %v", beforeTop, afterTop)
				}
			}
			afterHist := v.Histogram()
			if len(afterHist) != len(beforeHist) {
				t.Fatalf("pinned Histogram drifted: %v vs %v", beforeHist, afterHist)
			}
			for i := range beforeHist {
				if beforeHist[i] != afterHist[i] {
					t.Fatalf("pinned Histogram drifted: %v vs %v", beforeHist, afterHist)
				}
			}
			if v.Epoch() != epoch {
				t.Fatalf("pinned view epoch moved to %d", v.Epoch())
			}
			if v.Err() != nil {
				t.Fatalf("pinned view recorded error: %v", v.Err())
			}

			// ViewAt at the pinned epoch serves the same bytes.
			va, err := d.ViewAt(epoch)
			if err != nil {
				t.Fatalf("ViewAt(%d): %v", epoch, err)
			}
			if got := va.CorenessMany(all); !equalF64(got, before) {
				t.Fatalf("ViewAt(%d) disagrees with pinned view", epoch)
			}

			v.Release()
			if v.Pinned() {
				t.Fatal("Release left the view pinned")
			}
			v.Release() // idempotent
			if err := d.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestViewAtEvictionTypedErrors covers the eviction/future error surface:
// oldest-first eviction past the retention window, the typed sentinels,
// and the WithRetainedEpochs(0) legacy behavior.
func TestViewAtEvictionTypedErrors(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const retain = 3
			d, err := New(64, WithShards(shards), WithRetainedEpochs(retain))
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 10; k++ {
				d.InsertEdges(clique(8 + k))
			}
			cur := d.Epoch()
			oldest := d.OldestReadableEpoch()
			if oldest+uint64(retain) != cur {
				t.Fatalf("OldestReadableEpoch = %d with epoch %d, want %d", oldest, cur, cur-retain)
			}
			// Every retained epoch is servable; older ones are evicted.
			for e := oldest; e <= cur; e++ {
				if _, err := d.ViewAt(e); err != nil {
					t.Fatalf("ViewAt(%d): %v", e, err)
				}
			}
			_, err = d.ViewAt(oldest - 1)
			if !errors.Is(err, ErrEpochEvicted) {
				t.Fatalf("ViewAt(evicted) = %v, want ErrEpochEvicted", err)
			}
			_, err = d.ViewAt(cur + 1)
			if !errors.Is(err, ErrFutureEpoch) {
				t.Fatalf("ViewAt(future) = %v, want ErrFutureEpoch", err)
			}

			// An unpinned fixed view races eviction: age its epoch out and
			// the next read fails sticky with NaN/nil results.
			va, err := d.ViewAt(oldest)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < retain+1; k++ {
				d.InsertEdges(ring(64))
				d.DeleteEdges(ring(64))
			}
			if got := va.CorenessMany(vertexRange(8)); got != nil {
				t.Fatalf("evicted fixed read returned %v, want nil", got)
			}
			if !errors.Is(va.Err(), ErrEpochEvicted) {
				t.Fatalf("sticky Err = %v, want ErrEpochEvicted", va.Err())
			}
			if got := va.Coreness(3); !math.IsNaN(got) {
				t.Fatalf("evicted Coreness = %v, want NaN", got)
			}
			if got := va.TopK(3); got != nil {
				t.Fatalf("evicted TopK = %v, want nil", got)
			}
			if err := va.Pin(); !errors.Is(err, ErrEpochEvicted) {
				t.Fatalf("Pin of evicted epoch = %v, want ErrEpochEvicted", err)
			}
			if err := d.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRetentionDisabledLegacyBehavior verifies WithRetainedEpochs(0) is the
// pre-multi-version behavior: only the current epoch is servable and pins
// fail with the typed eviction error.
func TestRetentionDisabledLegacyBehavior(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			d, err := New(32, WithShards(shards), WithRetainedEpochs(0))
			if err != nil {
				t.Fatal(err)
			}
			if d.RetainedEpochs() != 0 {
				t.Fatalf("RetainedEpochs = %d, want 0", d.RetainedEpochs())
			}
			d.InsertEdges(clique(8))
			d.InsertEdges(ring(32))
			cur := d.Epoch()
			if got := d.OldestReadableEpoch(); got != cur {
				t.Fatalf("OldestReadableEpoch = %d, want current %d", got, cur)
			}
			va, err := d.ViewAt(cur)
			if err != nil {
				t.Fatalf("ViewAt(current): %v", err)
			}
			want := d.View().CorenessMany(vertexRange(32))
			if got := va.CorenessMany(vertexRange(32)); !equalF64(got, want) {
				t.Fatalf("ViewAt(current) = %v, want %v", got, want)
			}
			if _, err := d.ViewAt(cur - 1); !errors.Is(err, ErrEpochEvicted) {
				t.Fatalf("ViewAt(retired) = %v, want ErrEpochEvicted", err)
			}
			if err := d.View().Pin(); !errors.Is(err, ErrEpochEvicted) {
				t.Fatalf("Pin with retention disabled = %v, want ErrEpochEvicted", err)
			}
			if _, err := New(8, WithRetainedEpochs(-1)); err == nil {
				t.Fatal("want error for WithRetainedEpochs(-1)")
			}
		})
	}
}

// TestViewMultiVersionRaceStress is the -race safety net for the
// multi-version read surface: many goroutines, each with its own Views —
// floating and pinned — run against a concurrent writer and must observe
// only self-consistent epochs: floating epochs never regress and equal
// epochs serve equal bytes; a pinned view serves byte-identical results
// across the writer's commits; and a fixed view created at a floating
// read's epoch reproduces that read exactly (in sharded mode this
// cross-checks the vector log against the epochs pinned reads certify).
func TestViewMultiVersionRaceStress(t *testing.T) {
	const n = 64
	iters := 80
	if testing.Short() {
		iters = 25
	}
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			d, err := New(n, WithShards(shards), WithRetainedEpochs(64))
			if err != nil {
				t.Fatal(err)
			}
			d.InsertEdges(ring(n))
			all := vertexRange(n)

			var writers sync.WaitGroup
			writers.Add(1)
			go func() {
				defer writers.Done()
				for k := 0; k < iters; k++ {
					c := clique(8 + k%16)
					if k%2 == 0 {
						d.InsertEdges(c)
					} else {
						d.DeleteEdges(c)
					}
					runtime.Gosched()
				}
			}()

			const readers = 4
			var counts [readers]atomic.Int64
			done := make(chan struct{})
			go func() {
				writers.Wait()
				for r := 0; r < readers; r++ {
					for counts[r].Load() == 0 {
						runtime.Gosched()
					}
				}
				close(done)
			}()

			var rg sync.WaitGroup
			for r := 0; r < readers; r++ {
				rg.Add(1)
				go func(r int) {
					defer rg.Done()
					var lastEpoch uint64
					for i := 0; ; i++ {
						select {
						case <-done:
							return
						default:
						}
						// Floating read; replay it through a fixed view.
						fv := d.View()
						vals := fv.CorenessMany(all)
						e := fv.Epoch()
						if e < lastEpoch {
							t.Errorf("reader %d: epoch regressed %d -> %d", r, lastEpoch, e)
							return
						}
						lastEpoch = e
						if va, err := d.ViewAt(e); err == nil {
							if got := va.CorenessMany(all); got != nil && !equalF64(got, vals) {
								t.Errorf("reader %d: ViewAt(%d) disagrees with floating read", r, e)
								return
							}
						} else if !errors.Is(err, ErrEpochEvicted) {
							t.Errorf("reader %d: ViewAt(%d): %v", r, e, err)
							return
						}
						// Pinned view: byte-identical across writer commits.
						if i%2 == 0 {
							pv := d.View()
							if err := pv.Pin(); err != nil {
								if !errors.Is(err, ErrEpochEvicted) {
									t.Errorf("reader %d: Pin: %v", r, err)
									return
								}
								continue
							}
							first := pv.CorenessMany(all)
							for j := 0; j < 3; j++ {
								runtime.Gosched()
								if again := pv.CorenessMany(all); !equalF64(first, again) {
									t.Errorf("reader %d: pinned view at %d drifted", r, pv.Epoch())
									pv.Release()
									return
								}
							}
							if pv.Err() != nil {
								t.Errorf("reader %d: pinned view error: %v", r, pv.Err())
							}
							pv.Release()
						}
						counts[r].Add(1)
					}
				}(r)
			}
			rg.Wait()
			if err := d.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// BenchmarkViewHistogram measures the histogram pass (sort + run-length
// over the scores buffer; the per-vertex map it replaced allocated per
// distinct estimate and hashed every vertex).
func BenchmarkViewHistogram(b *testing.B) {
	d, err := New(10000)
	if err != nil {
		b.Fatal(err)
	}
	d.InsertEdges(clique(120))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.View().Histogram()
	}
}

// BenchmarkViewCorenessManyRetired measures the retired-read path: a
// pinned bulk read reconstructing a cut `depth` epochs behind the commit
// frontier through the delta overlay.
func BenchmarkViewCorenessManyRetired(b *testing.B) {
	for _, depth := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			d, err := New(10000, WithRetainedEpochs(depth+2))
			if err != nil {
				b.Fatal(err)
			}
			d.InsertEdges(clique(120))
			for k := 0; k < depth; k++ {
				c := clique(40 + k)
				if k%2 == 0 {
					d.InsertEdges(c)
				} else {
					d.DeleteEdges(c)
				}
			}
			target := d.Epoch() - uint64(depth)
			v, err := d.ViewAt(target)
			if err != nil {
				b.Fatal(err)
			}
			if err := v.Pin(); err != nil {
				b.Fatal(err)
			}
			defer v.Release()
			ids := make([]uint32, 64)
			for i := range ids {
				ids[i] = uint32(i * 150)
			}
			out := make([]float64, len(ids))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.CorenessManyInto(ids, out)
			}
			if v.Err() != nil {
				b.Fatal(v.Err())
			}
		})
	}
}

// BenchmarkInsertBatchRetention is the update-path-overhead guard: the
// same steady-state batch workload (insert a clique, delete it again) at
// retention 0 (pre-multi-version behavior), the default depth, and a deep
// window. Retention captures each batch's undo records from state the
// batch already maintains, so the three series must agree within noise.
func BenchmarkInsertBatchRetention(b *testing.B) {
	for _, retain := range []int{0, 8, 64} {
		b.Run(fmt.Sprintf("retain=%d", retain), func(b *testing.B) {
			d, err := New(10000, WithRetainedEpochs(retain))
			if err != nil {
				b.Fatal(err)
			}
			d.InsertEdges(ring(10000))
			c := clique(60)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					d.InsertEdges(c)
				} else {
					d.DeleteEdges(c)
				}
			}
		})
	}
}
