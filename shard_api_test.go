package kcore

import (
	"sync"
	"testing"
)

// TestWithShardsPublicAPI exercises the sharded decomposition through the
// public API: concurrent mixed batches from several goroutines, reads
// routed to owning shards, and the quiescent helpers.
func TestWithShardsPublicAPI(t *testing.T) {
	const n = 300
	d, err := New(n, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", d.Shards())
	}

	// Concurrent writers: each inserts a disjoint path, legal only in
	// sharded mode.
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint32(w * 100)
			edges := make([]Edge, 0, 99)
			for i := uint32(0); i < 99; i++ {
				edges = append(edges, Edge{U: base + i, V: base + i + 1})
			}
			if got := d.InsertEdges(edges); got != 99 {
				t.Errorf("writer %d inserted %d, want 99", w, got)
			}
		}(w)
	}
	wg.Wait()
	if got := d.NumEdges(); got != 297 {
		t.Fatalf("NumEdges = %d, want 297", got)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}

	// Path interiors have coreness 1; estimates must be ≥ 1 under every
	// read protocol.
	for _, v := range []uint32{1, 101, 201} {
		for name, read := range map[string]func(uint32) float64{
			"linearizable": d.Coreness,
			"nonsync":      d.CorenessNonLinearizable,
			"blocking":     d.CorenessBlocking,
		} {
			if est := read(v); est < 1 {
				t.Fatalf("%s read of %d = %v, want >= 1", name, v, est)
			}
		}
	}

	// Mixed batch with an insert+delete pair that nets out.
	ins, del := d.ApplyBatch([]Edge{{U: 0, V: 2}, {U: 10, V: 12}}, []Edge{{U: 10, V: 12}})
	if ins != 1 || del != 0 {
		t.Fatalf("ApplyBatch = (%d,%d), want (1,0)", ins, del)
	}

	// Exact coreness of the reassembled global graph: a path has max core 1,
	// plus the (0,1,2) triangle closed above has core 2.
	core := d.ExactCoreness()
	if core[1] != 2 {
		t.Fatalf("exact coreness of vertex 1 = %d, want 2", core[1])
	}

	if got := d.Degree(1); got != 2 {
		t.Fatalf("Degree(1) = %d, want 2", got)
	}
	if removed := d.RemoveVertex(1); removed != 2 {
		t.Fatalf("RemoveVertex(1) removed %d, want 2", removed)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}
