package kcore

import (
	"sync"
	"testing"
)

// TestWithShardsPublicAPI exercises the sharded decomposition through the
// public API: concurrent mixed batches from several goroutines, reads
// routed to owning shards, and the quiescent helpers.
func TestWithShardsPublicAPI(t *testing.T) {
	const n = 300
	d, err := New(n, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", d.Shards())
	}

	// Concurrent writers: each inserts a disjoint path, legal only in
	// sharded mode.
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint32(w * 100)
			edges := make([]Edge, 0, 99)
			for i := uint32(0); i < 99; i++ {
				edges = append(edges, Edge{U: base + i, V: base + i + 1})
			}
			if got := d.InsertEdges(edges); got != 99 {
				t.Errorf("writer %d inserted %d, want 99", w, got)
			}
		}(w)
	}
	wg.Wait()
	if got := d.NumEdges(); got != 297 {
		t.Fatalf("NumEdges = %d, want 297", got)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}

	// Path interiors have coreness 1; estimates must be ≥ 1 under every
	// read protocol.
	for _, v := range []uint32{1, 101, 201} {
		for name, read := range map[string]func(uint32) float64{
			"linearizable": d.Coreness,
			"nonsync":      d.CorenessNonLinearizable,
			"blocking":     d.CorenessBlocking,
		} {
			if est := read(v); est < 1 {
				t.Fatalf("%s read of %d = %v, want >= 1", name, v, est)
			}
		}
	}

	// Mixed batch with an insert+delete pair that nets out.
	ins, del := d.ApplyBatch([]Edge{{U: 0, V: 2}, {U: 10, V: 12}}, []Edge{{U: 10, V: 12}})
	if ins != 1 || del != 0 {
		t.Fatalf("ApplyBatch = (%d,%d), want (1,0)", ins, del)
	}

	// Exact coreness of the reassembled global graph: a path has max core 1,
	// plus the (0,1,2) triangle closed above has core 2.
	core := d.ExactCoreness()
	if core[1] != 2 {
		t.Fatalf("exact coreness of vertex 1 = %d, want 2", core[1])
	}

	if got := d.Degree(1); got != 2 {
		t.Fatalf("Degree(1) = %d, want 2", got)
	}
	if removed := d.RemoveVertex(1); removed != 2 {
		t.Fatalf("RemoveVertex(1) removed %d, want 2", removed)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestShardStatsPublicAPI exercises the per-shard load-stats surface in
// both engine modes.
func TestShardStatsPublicAPI(t *testing.T) {
	// Sharded mode: entries per shard, sums consistent with the globals.
	d, err := New(200, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]Edge, 0, 199)
	for i := uint32(0); i < 199; i++ {
		edges = append(edges, Edge{U: i, V: i + 1})
	}
	d.InsertEdges(edges)
	stats := d.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats has %d entries, want 4", len(stats))
	}
	var owned int
	var primary int64
	for _, s := range stats {
		owned += s.OwnedVertices
		primary += s.PrimaryEdges
	}
	if owned != d.NumVertices() {
		t.Fatalf("owned sum %d != %d", owned, d.NumVertices())
	}
	if primary != d.NumEdges() {
		t.Fatalf("primary sum %d != NumEdges %d", primary, d.NumEdges())
	}

	// Single-engine mode: one entry covering everything.
	s1, err := New(50)
	if err != nil {
		t.Fatal(err)
	}
	s1.InsertEdges([]Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	stats = s1.ShardStats()
	if len(stats) != 1 {
		t.Fatalf("single-engine ShardStats has %d entries", len(stats))
	}
	if stats[0].OwnedVertices != 50 || stats[0].LocalEdges != 2 || stats[0].Batches != 1 {
		t.Fatalf("single-engine stats %+v", stats[0])
	}
	if stats[0].Inserted != 2 || stats[0].Deleted != 0 {
		t.Fatalf("single-engine cumulative counters %+v", stats[0])
	}
	s1.DeleteEdges([]Edge{{U: 0, V: 1}})
	if got := s1.ShardStats()[0]; got.Deleted != 1 || got.LocalEdges != 1 {
		t.Fatalf("single-engine stats after delete %+v", got)
	}
}
