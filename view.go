package kcore

import (
	"math"
	"sort"

	"kcore/internal/apps"
)

// View is an epoch-pinned read handle over a Decomposition.
//
// Single-vertex Coreness reads are linearizable on their own, but two
// consecutive calls may straddle a batch boundary, so any surface that
// combines several vertices — rankings, bulk lookups, histograms — can
// observe a torn mix of batches. A View closes that gap: every read through
// a View is served from exactly one committed batch boundary (an epoch),
// and Epoch reports which one.
//
// A View operates in one of two modes:
//
//   - Floating (from Decomposition.View): each read is served from the
//     latest committed epoch and re-pins the view to it. The protocol is
//     optimistic and read-only — collect with the lock-free linearizable
//     protocol, validate that the engine's commit sequence did not change,
//     degrade to a bounded blocking read after repeated failures. Reads
//     never return a cross-batch mix and never block updates.
//
//   - Fixed (from Decomposition.ViewAt, or after Pin): every read serves
//     exactly the view's epoch, even after later batches commit, by
//     overlaying the engine's retained per-epoch deltas on the live state
//     (see WithRetainedEpochs). Fixed reads are deterministic: the same
//     epoch yields byte-identical results before and after any number of
//     subsequent commits, for as long as the epoch stays retained.
//
// An unpinned fixed view races eviction: if its epoch falls out of the
// retention window, reads return zero values (NaN for Coreness) and the
// first failure is recorded sticky in Err. Pin removes the race: a pinned
// epoch cannot be evicted, so reads through a pinned View never fail.
// Always pair Pin with Release — a leaked pin blocks delta eviction and
// grows the multi-version store for the lifetime of the process.
//
// A View is a lightweight per-request handle: creating one is a handful of
// atomic loads, so create one per request or per goroutine. A View must not
// be used from multiple goroutines concurrently (reads update the recorded
// epoch and sticky error); the Decomposition itself remains safe for any
// number of concurrent Views.
//
// In sharded mode the epoch is the cross-shard epoch (total committed
// batches over all shards); a fixed view resolves it to the per-shard
// commit vector recorded at that epoch's commit, so retired reads are one
// consistent cross-shard cut.
type View struct {
	eng    engine
	epoch  uint64
	fixed  bool
	pinned bool
	err    error

	// Scratch for single-vertex fixed reads: spares the per-call id/out
	// slices (the engine's retained-read path still allocates its own
	// level scratch internally).
	oneV   [1]uint32
	oneOut [1]float64
}

// View returns a floating read handle pinned to the latest committed epoch.
// Cheap (atomic loads only) and safe to call at any time, including
// concurrently with update batches.
func (d *Decomposition) View() *View {
	return &View{eng: d.eng, epoch: d.eng.Epoch()}
}

// ViewAt returns a fixed read handle serving exactly the given committed
// epoch — reads through it keep returning that epoch's values even after
// later batches commit, for as long as the epoch is retained (see
// WithRetainedEpochs). It fails with an error matching ErrEpochEvicted if
// the epoch already fell out of the retention window, or ErrFutureEpoch if
// it has not committed yet. The returned view races eviction until pinned;
// call Pin to hold the epoch.
func (d *Decomposition) ViewAt(epoch uint64) (*View, error) {
	if err := d.eng.CheckEpoch(epoch); err != nil {
		return nil, err
	}
	return &View{eng: d.eng, epoch: epoch, fixed: true}, nil
}

// Epoch returns the epoch of the cut served by this view: for a floating
// view, the epoch of the most recent read (initially the latest committed
// epoch at creation); for a fixed view, the epoch it serves. Equal epochs
// mean reads observed the identical committed state.
func (v *View) Epoch() uint64 { return v.epoch }

// Fixed reports whether the view serves one specific epoch (ViewAt or Pin)
// rather than floating with the latest commit.
func (v *View) Fixed() bool { return v.fixed }

// Pinned reports whether the view currently holds a pin on its epoch.
func (v *View) Pinned() bool { return v.pinned }

// Err returns the first read failure of a fixed view (an error matching
// ErrEpochEvicted once the view's epoch was evicted mid-read), or nil.
// Reads through a pinned view never fail.
func (v *View) Err() error { return v.err }

// Pin fixes the view at its current epoch and holds that epoch in the
// multi-version store: it cannot be evicted until Release, so every
// subsequent read — across any number of later commits — serves it
// byte-identically and never fails. Pin on an already-pinned view is a
// no-op. It fails with an error matching ErrEpochEvicted if the epoch was
// already evicted (always, when retention is disabled), or ErrFutureEpoch
// for an epoch ahead of the commit frontier; the view is left unpinned.
func (v *View) Pin() error {
	if v.pinned {
		return nil
	}
	if err := v.eng.PinEpoch(v.epoch); err != nil {
		return err
	}
	v.fixed, v.pinned = true, true
	return nil
}

// Release drops the pin taken by Pin. The view stays fixed at its epoch
// but no longer holds it: the epoch remains readable until it ages out of
// the retention window, after which reads fail (see Err). Release on an
// unpinned view is a no-op; a pinned View must be released exactly once.
func (v *View) Release() {
	if v.pinned {
		v.eng.UnpinEpoch(v.epoch)
		v.pinned = false
	}
}

// fail records the first fixed-read failure sticky.
func (v *View) fail(err error) {
	if v.err == nil {
		v.err = err
	}
}

// Coreness returns the linearizable coreness estimate of u from one
// committed cut: the view's fixed epoch, or — for a floating view — the
// latest one, re-pinning the view to it. On a fixed view whose epoch was
// evicted it returns NaN and records the error in Err.
func (v *View) Coreness(u uint32) float64 {
	if v.fixed {
		v.oneV[0] = u
		if err := v.eng.ReadManyAt(v.oneV[:], v.oneOut[:], v.epoch); err != nil {
			v.fail(err)
			return math.NaN()
		}
		return v.oneOut[0]
	}
	est, epoch := v.eng.ReadPinned(u)
	v.epoch = epoch
	return est
}

// CorenessMany returns the coreness estimates of us, all served from one
// committed batch boundary (never a torn mix of batches): the view's fixed
// epoch, or the latest one (re-pinning a floating view to it). Safe to call
// concurrently with update batches; lock-free in the common regime. On a
// fixed view whose epoch was evicted it returns nil and records the error
// in Err.
func (v *View) CorenessMany(us []uint32) []float64 {
	out := make([]float64, len(us))
	if v.fixed {
		if err := v.eng.ReadManyAt(us, out, v.epoch); err != nil {
			v.fail(err)
			return nil
		}
		return out
	}
	v.epoch = v.eng.ReadManyPinned(us, out)
	return out
}

// CorenessManyInto is CorenessMany without the allocation: it fills
// out[i] with the estimate of us[i] (len(out) must equal len(us)) and
// returns the epoch served. On a fixed view whose epoch was evicted, out
// is left unspecified and the error is recorded in Err.
func (v *View) CorenessManyInto(us []uint32, out []float64) uint64 {
	if v.fixed {
		if err := v.eng.ReadManyAt(us, out, v.epoch); err != nil {
			v.fail(err)
		}
		return v.epoch
	}
	v.epoch = v.eng.ReadManyPinned(us, out)
	return v.epoch
}

// readAll collects every vertex's estimate at the view's cut, or nil after
// a fixed-read failure.
func (v *View) readAll() []float64 {
	scores := make([]float64, v.eng.NumVertices())
	if v.fixed {
		if err := v.eng.ReadAllAt(scores, v.epoch); err != nil {
			v.fail(err)
			return nil
		}
		return scores
	}
	v.epoch = v.eng.ReadAllPinned(scores)
	return scores
}

// TopK returns the k vertices with the highest coreness estimates, ranked
// over one committed cut (ties broken by vertex id): the view's fixed
// epoch, or the latest one (re-pinning a floating view to it). On a fixed
// view whose epoch was evicted it returns nil and records the error in
// Err.
func (v *View) TopK(k int) []uint32 {
	scores := v.readAll()
	if scores == nil {
		return nil
	}
	return apps.TopSpreaders(scores, k)
}

// CoreBucket is one bar of a coreness histogram: Count vertices whose
// estimate equals Coreness at the served epoch.
type CoreBucket struct {
	Coreness float64
	Count    int
}

// Histogram returns the distribution of coreness estimates over all
// vertices — one bucket per distinct estimate, ascending — computed from
// one committed cut (the view's fixed epoch, or the latest one). Estimates
// take few distinct values (one per level group), so the buckets are built
// by sorting the scores buffer in place and run-length encoding it — no
// per-vertex map insertions. On a fixed view whose epoch was evicted it
// returns nil and records the error in Err.
func (v *View) Histogram() []CoreBucket {
	scores := v.readAll()
	if scores == nil {
		return nil
	}
	sort.Float64s(scores)
	var out []CoreBucket
	for i := 0; i < len(scores); {
		j := i + 1
		for j < len(scores) && scores[j] == scores[i] {
			j++
		}
		out = append(out, CoreBucket{Coreness: scores[i], Count: j - i})
		i = j
	}
	return out
}
