package kcore

import (
	"sort"

	"kcore/internal/apps"
)

// View is an epoch-pinned read handle over a Decomposition.
//
// Single-vertex Coreness reads are linearizable on their own, but two
// consecutive calls may straddle a batch boundary, so any surface that
// combines several vertices — rankings, bulk lookups, histograms — can
// observe a torn mix of batches. A View closes that gap: every read through
// a View is served from exactly one committed batch boundary (an epoch),
// and Epoch reports which one.
//
// The protocol is optimistic and read-only. Each engine publishes a commit
// sequence that changes exactly when a batch's effects become visible to
// readers (per shard, when sharded); a View read collects its values with
// the lock-free linearizable protocol and validates that the sequence did
// not change across the collection. A failed validation means a batch
// committed meanwhile — update progress — and the collection restarts; after
// a small number of failures it degrades to a bounded blocking read under
// the engine's batch gate(s). Reads through a View therefore never return a
// cross-batch mix, stay lock-free in the common regime (batches are far
// longer than reads), and never block updates.
//
// A View is a lightweight per-request handle: creating one is a handful of
// atomic loads, so create one per request or per goroutine. A View must not
// be used from multiple goroutines concurrently (each read updates the
// recorded epoch); the Decomposition itself remains safe for any number of
// concurrent Views.
//
// In sharded mode the epoch is the cross-shard epoch (total committed
// batches over all shards). Per-shard committed counts only grow and shards
// are independent, so equal epochs imply the identical committed state, and
// every View read is one consistent cross-shard cut.
type View struct {
	eng   engine
	epoch uint64
}

// View returns a read handle pinned to the latest committed epoch. Cheap
// (atomic loads only) and safe to call at any time, including concurrently
// with update batches.
func (d *Decomposition) View() *View {
	return &View{eng: d.eng, epoch: d.eng.Epoch()}
}

// Epoch returns the epoch of the cut served by the most recent read through
// this view — initially the latest committed epoch at creation. Callers
// that need to correlate results from several reads should compare their
// epochs: equal epochs mean the reads observed the identical committed
// state.
func (v *View) Epoch() uint64 { return v.epoch }

// Coreness returns the linearizable coreness estimate of u from one
// committed cut and re-pins the view to that cut's epoch.
func (v *View) Coreness(u uint32) float64 {
	est, epoch := v.eng.ReadPinned(u)
	v.epoch = epoch
	return est
}

// CorenessMany returns the coreness estimates of us, all served from one
// committed batch boundary (never a torn mix of batches), and re-pins the
// view to that boundary's epoch. Safe to call concurrently with update
// batches; lock-free in the common regime.
func (v *View) CorenessMany(us []uint32) []float64 {
	out := make([]float64, len(us))
	v.epoch = v.eng.ReadManyPinned(us, out)
	return out
}

// CorenessManyInto is CorenessMany without the allocation: it fills
// out[i] with the estimate of us[i] (len(out) must equal len(us)) and
// returns the epoch served, re-pinning the view to it.
func (v *View) CorenessManyInto(us []uint32, out []float64) uint64 {
	v.epoch = v.eng.ReadManyPinned(us, out)
	return v.epoch
}

// TopK returns the k vertices with the highest coreness estimates, ranked
// over one committed cut (ties broken by vertex id), and re-pins the view
// to that cut's epoch.
func (v *View) TopK(k int) []uint32 {
	scores := make([]float64, v.eng.NumVertices())
	v.epoch = v.eng.ReadAllPinned(scores)
	return apps.TopSpreaders(scores, k)
}

// CoreBucket is one bar of a coreness histogram: Count vertices whose
// estimate equals Coreness at the served epoch.
type CoreBucket struct {
	Coreness float64
	Count    int
}

// Histogram returns the distribution of coreness estimates over all
// vertices — one bucket per distinct estimate, ascending — computed from
// one committed cut, and re-pins the view to that cut's epoch.
func (v *View) Histogram() []CoreBucket {
	scores := make([]float64, v.eng.NumVertices())
	v.epoch = v.eng.ReadAllPinned(scores)
	counts := make(map[float64]int)
	for _, s := range scores {
		counts[s]++
	}
	out := make([]CoreBucket, 0, len(counts))
	for c, n := range counts {
		out = append(out, CoreBucket{Coreness: c, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Coreness < out[j].Coreness })
	return out
}
