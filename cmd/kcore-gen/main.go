// Command kcore-gen generates synthetic graphs and writes them as edge
// lists. It exposes the generators used as stand-ins for the paper's
// datasets (see DESIGN.md §2) plus the raw generator families.
//
// Usage:
//
//	kcore-gen -profile dblp -o dblp.txt          # dataset stand-in
//	kcore-gen -kind er -n 10000 -m 50000 -o g.txt
//	kcore-gen -kind chunglu -n 10000 -m 50000 -exp 2.3 -o g.txt
//	kcore-gen -kind rmat -scale 14 -m 200000 -o g.txt
//	kcore-gen -kind ba -n 10000 -k 5 -o g.txt
//	kcore-gen -kind grid -rows 100 -cols 100 -o g.txt
//	kcore-gen -list                              # list dataset profiles
package main

import (
	"flag"
	"fmt"
	"os"

	"kcore/internal/gen"
	"kcore/internal/graph"
)

func main() {
	profile := flag.String("profile", "", "dataset profile name (tiny, dblp, lj, …)")
	kind := flag.String("kind", "", "generator: er, chunglu, rmat, ba, grid, clique")
	n := flag.Int("n", 10000, "vertices (er, chunglu, ba, clique)")
	m := flag.Int("m", 50000, "edges (er, chunglu, rmat)")
	expo := flag.Float64("exp", 2.3, "power-law exponent (chunglu)")
	scale := flag.Int("scale", 14, "log2 vertices (rmat)")
	k := flag.Int("k", 5, "attachment degree (ba)")
	rows := flag.Int("rows", 100, "grid rows")
	cols := flag.Int("cols", 100, "grid cols")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	list := flag.Bool("list", false, "list dataset profiles and exit")
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %-8s %10s %10s\n", "profile", "kind", "vertices", "edges")
		for _, p := range gen.Profiles {
			edges, nn, _ := gen.DatasetByName(p.Name)
			fmt.Printf("%-10s %-8s %10d %10d\n", p.Name, kindName(p.Kind), nn, len(edges))
		}
		return
	}
	edges, err := generate(*profile, *kind, *n, *m, *expo, *scale, *k, *rows, *cols, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kcore-gen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kcore-gen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, edges); err != nil {
		fmt.Fprintln(os.Stderr, "kcore-gen:", err)
		os.Exit(1)
	}
}

func kindName(k gen.Kind) string {
	switch k {
	case gen.KindSocial:
		return "social"
	case gen.KindDense:
		return "dense"
	default:
		return "road"
	}
}

func generate(profile, kind string, n, m int, expo float64, scale, k, rows, cols int, seed int64) ([]graph.Edge, error) {
	if profile != "" {
		edges, _, err := gen.DatasetByName(profile)
		return edges, err
	}
	switch kind {
	case "er":
		return gen.ErdosRenyi(n, m, seed), nil
	case "chunglu":
		return gen.ChungLu(n, m, expo, seed), nil
	case "rmat":
		return gen.RMAT(scale, m, 0.57, 0.19, 0.19, seed), nil
	case "ba":
		return gen.BarabasiAlbert(n, k, seed), nil
	case "grid":
		return gen.TriangularGrid(rows, cols), nil
	case "clique":
		return gen.Clique(n), nil
	case "":
		return nil, fmt.Errorf("one of -profile or -kind is required")
	default:
		return nil, fmt.Errorf("unknown generator kind %q", kind)
	}
}
