// Command kcore computes k-core decompositions of edge-list files.
//
// It reads a whitespace-separated edge list (one "u v" pair per line, '#'
// comments allowed) and prints per-vertex coreness values, a coreness
// histogram, or summary statistics.
//
// Usage:
//
//	kcore [-mode exact|approx] [-stats] [-hist] [-top N] <edgelist>
//	kcore -mode approx -delta 0.2 -lambda 9 graph.txt
//
// With -mode approx the graph is loaded through the dynamic CPLDS in
// batches and approximate coreness estimates are reported, demonstrating
// the dynamic path; -mode exact (default) uses static parallel peeling.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"kcore/internal/exact"
	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/plds"
)

func main() {
	mode := flag.String("mode", "exact", "decomposition mode: exact or approx")
	delta := flag.Float64("delta", 0.2, "approximation parameter delta (approx mode)")
	lambda := flag.Float64("lambda", 9, "approximation parameter lambda (approx mode)")
	batch := flag.Int("batch", 100000, "batch size for dynamic loading (approx mode)")
	stats := flag.Bool("stats", false, "print summary statistics only")
	hist := flag.Bool("hist", false, "print a coreness histogram instead of per-vertex values")
	top := flag.Int("top", 0, "print only the N vertices with the highest coreness")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kcore [flags] <edgelist-file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *mode, *delta, *lambda, *batch, *stats, *hist, *top); err != nil {
		fmt.Fprintln(os.Stderr, "kcore:", err)
		os.Exit(1)
	}
}

func run(path, mode string, delta, lambda float64, batch int, statsOnly, hist bool, top int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	edges, n, err := graph.ReadEdgeList(f)
	if err != nil {
		return err
	}
	var core []float64
	switch mode {
	case "exact":
		ex := exact.Parallel(graph.CSRFromEdges(n, edges))
		core = make([]float64, n)
		for v, c := range ex {
			core[v] = float64(c)
		}
	case "approx":
		p := plds.New(n, lds.Params{Delta: delta, Lambda: lambda}, nil)
		for lo := 0; lo < len(edges); lo += batch {
			hi := lo + batch
			if hi > len(edges) {
				hi = len(edges)
			}
			p.InsertBatch(edges[lo:hi])
		}
		core = make([]float64, n)
		for v := 0; v < n; v++ {
			core[v] = p.Estimate(uint32(v))
		}
	default:
		return fmt.Errorf("unknown mode %q (want exact or approx)", mode)
	}

	switch {
	case statsOnly:
		printStats(n, len(edges), core)
	case hist:
		printHist(core)
	case top > 0:
		printTop(core, top)
	default:
		for v, c := range core {
			fmt.Printf("%d %g\n", v, c)
		}
	}
	return nil
}

func printStats(n, m int, core []float64) {
	maxC, sum := 0.0, 0.0
	for _, c := range core {
		sum += c
		if c > maxC {
			maxC = c
		}
	}
	fmt.Printf("vertices: %d\nedges: %d\nmax coreness: %g\nmean coreness: %.3f\n",
		n, m, maxC, sum/float64(n))
}

func printHist(core []float64) {
	counts := map[float64]int{}
	for _, c := range core {
		counts[c]++
	}
	keys := make([]float64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	fmt.Printf("%-12s %s\n", "coreness", "vertices")
	for _, k := range keys {
		fmt.Printf("%-12g %d\n", k, counts[k])
	}
}

func printTop(core []float64, top int) {
	type vc struct {
		v uint32
		c float64
	}
	all := make([]vc, len(core))
	for v, c := range core {
		all[v] = vc{uint32(v), c}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].v < all[j].v
	})
	if top > len(all) {
		top = len(all)
	}
	for _, x := range all[:top] {
		fmt.Printf("%d %g\n", x.v, x.c)
	}
}
