// Command kcore-trace synthesizes, inspects and replays update/read
// workload traces against the CPLDS.
//
// Usage:
//
//	kcore-trace -gen -profile dblp -batch 5000 -reads 100 -delfrac 0.2 -o w.trace
//	kcore-trace -info w.trace
//	kcore-trace -replay w.trace [-shards 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"kcore/internal/lds"
	"kcore/internal/trace"
)

func main() {
	genFlag := flag.Bool("gen", false, "synthesize a trace")
	info := flag.String("info", "", "print statistics of a trace file")
	replay := flag.String("replay", "", "replay a trace file against the CPLDS")
	profile := flag.String("profile", "dblp", "dataset profile (gen)")
	batch := flag.Int("batch", 5000, "update batch size (gen)")
	reads := flag.Int("reads", 100, "read probes per batch (gen)")
	delFrac := flag.Float64("delfrac", 0.2, "fraction of each batch deleted later (gen)")
	seed := flag.Int64("seed", 1, "random seed (gen)")
	shards := flag.Int("shards", 1, "engine shards for -replay (1 = single CPLDS)")
	out := flag.String("o", "workload.trace", "output file (gen)")
	flag.Parse()

	var err error
	switch {
	case *genFlag:
		err = doGen(*profile, *batch, *reads, *delFrac, *seed, *out)
	case *info != "":
		err = doInfo(*info)
	case *replay != "":
		err = doReplay(*replay, *shards)
	default:
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kcore-trace:", err)
		os.Exit(1)
	}
}

func doGen(profile string, batch, reads int, delFrac float64, seed int64, out string) error {
	t, err := trace.Synthesize(profile, batch, reads, delFrac, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		return err
	}
	s := t.Summarize()
	fmt.Printf("wrote %s: %d ops (%d inserts/%d edges, %d deletes/%d edges, %d probes/%d reads)\n",
		out, len(t.Ops), s.Inserts, s.InsertEdges, s.Deletes, s.DeleteEdges, s.ReadProbes, s.Reads)
	return nil
}

func load(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadFrom(f)
}

func doInfo(path string) error {
	t, err := load(path)
	if err != nil {
		return err
	}
	s := t.Summarize()
	fmt.Printf("vertices: %d\nops: %d\ninsert batches: %d (%d edges)\ndelete batches: %d (%d edges)\nread probes: %d (%d reads)\n",
		t.NumVertices, len(t.Ops), s.Inserts, s.InsertEdges, s.Deletes, s.DeleteEdges, s.ReadProbes, s.Reads)
	return nil
}

func doReplay(path string, shards int) error {
	t, err := load(path)
	if err != nil {
		return err
	}
	var res trace.ReplayResult
	if shards > 1 {
		res, err = trace.ReplayShards(t, lds.DefaultParams(), shards)
	} else {
		res, err = trace.Replay(t, lds.DefaultParams())
	}
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d ops: %d edges applied, update time %v, final edges %d\n",
		res.Ops, res.EdgesApplied, res.UpdateTime, res.FinalEdges)
	fmt.Printf("read latency: %s\n", res.ReadLat)
	return nil
}
