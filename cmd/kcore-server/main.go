// Command kcore-server runs the HTTP k-core service: linearizable coreness
// reads concurrent with batched edge updates, over the network.
//
// Usage:
//
//	kcore-server -n 1000000 -shards 4 -addr :8080 [-load graph.txt]
//
//	curl 'localhost:8080/coreness?v=42'
//	curl 'localhost:8080/top?k=10'
//	curl 'localhost:8080/stats'
//	curl --data-binary @batch.txt 'localhost:8080/edges/insert'
//	curl --data-binary @stale.txt 'localhost:8080/edges/delete'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/server"
)

func main() {
	n := flag.Int("n", 1_000_000, "number of vertices")
	addr := flag.String("addr", ":8080", "listen address")
	load := flag.String("load", "", "optional edge-list file to load at startup")
	delta := flag.Float64("delta", 0.2, "approximation parameter delta")
	lambda := flag.Float64("lambda", 9, "approximation parameter lambda")
	batch := flag.Int("batch", 100000, "startup-load batch size")
	shards := flag.Int("shards", 1, "number of engine shards (concurrent update batches scale per shard)")
	maxBatch := flag.Int("maxbatch", server.DefaultMaxBatchEdges, "max edges accepted per /edges/batch request")
	retain := flag.Int("retain", server.DefaultRetainedEpochs,
		"retired epochs kept readable for ?epoch= reads (0 disables)")
	flag.Parse()

	srv := server.New(*n, lds.Params{Delta: *delta, Lambda: *lambda},
		server.WithShards(*shards), server.WithMaxBatchEdges(*maxBatch),
		server.WithRetainedEpochs(*retain))
	if *load != "" {
		if err := loadFile(srv, *load, *batch); err != nil {
			log.Fatalf("kcore-server: %v", err)
		}
	}
	log.Printf("kcore-server: %d vertices, %d shard(s), listening on %s", *n, *shards, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

func loadFile(srv *server.Server, path string, batch int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	edges, _, err := graph.ReadEdgeList(f)
	if err != nil {
		return err
	}
	for lo := 0; lo < len(edges); lo += batch {
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		n := srv.InsertBatch(edges[lo:hi])
		log.Printf("loaded batch %d..%d (%d applied)", lo, hi, n)
	}
	fmt.Println("load complete")
	return nil
}
