// Command kcore-server runs the HTTP k-core service: linearizable coreness
// reads concurrent with batched edge updates, over the network.
//
// Usage:
//
//	kcore-server -n 1000000 -shards 4 -addr :8080 [-load graph.txt]
//	kcore-server -n 1000000 -wal /var/lib/kcore/wal -snapshot-every 1000
//
//	curl 'localhost:8080/coreness?v=42'
//	curl 'localhost:8080/top?k=10'
//	curl 'localhost:8080/stats'
//	curl --data-binary @batch.txt 'localhost:8080/edges/insert'
//	curl --data-binary @stale.txt 'localhost:8080/edges/delete'
//
// With -wal, applied batches are write-ahead logged and the server recovers
// its pre-crash state from the directory on restart (newest valid snapshot
// plus log tail). Note that -load re-applies (and re-logs) its file on every
// start; use it to seed an empty WAL directory, not together with recovery.
//
// Overload protection: -rate-limit/-rate-burst cap each client's request
// rate (429 past the bucket), -max-inflight sheds load on the heavy
// endpoints (503 once that many requests are in flight), and
// -request-timeout bounds every request by a deadline. /healthz is
// liveness; /readyz turns 503 while the WAL is degraded (durability lost,
// reads and updates still served — see -reattach-every).
//
// Replication: -replicate-listen serves the batch-log shipping stream on a
// second listener (the primary role); -replicate-from points a read-only
// replica at that listener. A replica serves the full read surface from
// byte-identical state, answers every write with 403 "read_only", and
// honors ?min_epoch= read floors, waiting up to -min-epoch-wait before
// shedding with 412. The primary retains the newest -replicate-retain
// committed batches so a briefly disconnected replica resumes from its
// applied vector instead of re-transferring the snapshot:
//
//	kcore-server -n 1000000 -addr :8080 -replicate-listen :7070
//	kcore-server -n 1000000 -addr :8081 -replicate-from localhost:7070
//
// Change feed: GET /subscribe streams per-epoch coreness transitions over
// SSE (filters: ?vertices=, ?cross_k=, ?min_delta=). Slow subscribers get
// gap markers instead of stalling commits; -max-subscribers and
// -event-buffer bound the fan-out.
//
//	curl -N 'localhost:8080/subscribe?cross_k=3'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kcore/internal/faultfs"
	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/replica"
	"kcore/internal/server"
	"kcore/internal/wal"
)

func main() {
	n := flag.Int("n", 1_000_000, "number of vertices")
	addr := flag.String("addr", ":8080", "listen address")
	load := flag.String("load", "", "optional edge-list file to load at startup")
	delta := flag.Float64("delta", 0.2, "approximation parameter delta")
	lambda := flag.Float64("lambda", 9, "approximation parameter lambda")
	batch := flag.Int("batch", 100000, "startup-load batch size")
	shards := flag.Int("shards", 1, "number of engine shards (concurrent update batches scale per shard)")
	maxBatch := flag.Int("maxbatch", server.DefaultMaxBatchEdges, "max edges accepted per /edges/batch request")
	retain := flag.Int("retain", server.DefaultRetainedEpochs,
		"retired epochs kept readable for ?epoch= reads (0 disables)")
	walDir := flag.String("wal", "", "write-ahead log directory (empty disables durability)")
	snapEvery := flag.Uint64("snapshot-every", 0,
		"take an automatic snapshot after this many logged batches (0 = never)")
	fsync := flag.String("fsync", "none", "WAL fsync policy: none, interval or always")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond,
		"minimum spacing between fsyncs under -fsync interval")
	reattachEvery := flag.Duration("reattach-every", 5*time.Second,
		"background re-attach period while the WAL is degraded (negative disables)")
	rateLimit := flag.Float64("rate-limit", 0,
		"per-client requests per second (0 disables rate limiting)")
	rateBurst := flag.Int("rate-burst", 20, "per-client burst size under -rate-limit")
	maxInFlight := flag.Int("max-inflight", 0,
		"max concurrent update/bulk requests before shedding with 503 (0 disables)")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second,
		"per-request deadline (0 disables)")
	replListen := flag.String("replicate-listen", "",
		"serve the replication stream for followers on this address (primary role)")
	replFrom := flag.String("replicate-from", "",
		"replicate from the primary's -replicate-listen address (read-only replica role)")
	replRetain := flag.Int("replicate-retain", 0,
		"committed batches the primary retains for follower resume; a follower disconnected "+
			"for fewer batches reconnects without a snapshot transfer (0 = default 1024, negative disables)")
	minEpochWait := flag.Duration("min-epoch-wait", server.DefaultMinEpochWait,
		"how long a ?min_epoch= read may wait for the epoch floor before shedding with 412")
	maxSubs := flag.Int("max-subscribers", 0,
		"max concurrent /subscribe change-feed streams (0 = unlimited)")
	eventBuffer := flag.Int("event-buffer", 0,
		"per-subscriber change-feed buffer in epochs; slower subscribers get gap markers (0 = default 64)")
	feedHeartbeat := flag.Duration("feed-heartbeat", server.DefaultFeedHeartbeat,
		"idle /subscribe stream heartbeat period")
	faultFsync := flag.Int("fault-fsync-fail", 0,
		"TESTING ONLY: inject a failure into the next N WAL fsyncs (-1 = forever)")
	flag.Parse()

	opts := []server.Option{
		server.WithShards(*shards), server.WithMaxBatchEdges(*maxBatch),
		server.WithRetainedEpochs(*retain),
		server.WithRequestTimeout(*reqTimeout),
		server.WithMinEpochWait(*minEpochWait),
		server.WithMaxSubscribers(*maxSubs),
		server.WithEventBuffer(*eventBuffer),
		server.WithFeedHeartbeat(*feedHeartbeat),
	}
	if *replListen != "" {
		opts = append(opts, server.WithReplicationListen(*replListen))
		if *replRetain != 0 {
			opts = append(opts, server.WithReplicationOptions(
				replica.FeederOptions{RetainBatches: *replRetain}, replica.FollowerOptions{}))
		}
	}
	if *replFrom != "" {
		opts = append(opts, server.WithReplicationSource(*replFrom))
	}
	if *rateLimit > 0 {
		opts = append(opts, server.WithRateLimit(*rateLimit, *rateBurst))
	}
	if *maxInFlight > 0 {
		opts = append(opts, server.WithMaxInFlight(*maxInFlight))
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("kcore-server: %v", err)
		}
		wo := wal.Options{
			Sync:          policy,
			SyncEvery:     *fsyncEvery,
			SnapshotEvery: *snapEvery,
			ReattachEvery: *reattachEvery,
		}
		if *faultFsync != 0 {
			// A finite schedule exhausts itself after N failures, so the
			// background re-attach loop then succeeds: the smoke test sees
			// degrade → keep serving → recover, all in one process.
			inj := faultfs.New(nil)
			inj.FailSyncs(0, *faultFsync)
			wo.FS = inj
			log.Printf("kcore-server: FAULT INJECTION armed: failing %d fsync(s)", *faultFsync)
		}
		opts = append(opts, server.WithWAL(*walDir, wo))
	}
	if *load != "" && *replFrom != "" {
		log.Fatal("kcore-server: -load on a replica would fork it from the primary; load on the primary instead")
	}
	srv, err := server.New(*n, lds.Params{Delta: *delta, Lambda: *lambda}, opts...)
	if err != nil {
		log.Fatalf("kcore-server: %v", err)
	}
	if *load != "" {
		if err := loadFile(srv, *load, *batch); err != nil {
			log.Fatalf("kcore-server: %v", err)
		}
	}
	switch {
	case *replListen != "":
		log.Printf("kcore-server: replication primary, shipping on %s", srv.ReplicationAddr())
	case *replFrom != "":
		log.Printf("kcore-server: read-only replica of %s (synced)", *replFrom)
	}
	log.Printf("kcore-server: %d vertices, %d shard(s), listening on %s", *n, *shards, *addr)

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-done
		log.Printf("kcore-server: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx) // drain in-flight updates before closing the log
		if err := srv.Close(); err != nil {
			log.Printf("kcore-server: closing WAL: %v", err)
		}
	}()
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

func loadFile(srv *server.Server, path string, batch int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	edges, _, err := graph.ReadEdgeList(f)
	if err != nil {
		return err
	}
	for lo := 0; lo < len(edges); lo += batch {
		hi := lo + batch
		if hi > len(edges) {
			hi = len(edges)
		}
		n := srv.InsertBatch(edges[lo:hi])
		log.Printf("loaded batch %d..%d (%d applied)", lo, hi, n)
	}
	fmt.Println("load complete")
	return nil
}
