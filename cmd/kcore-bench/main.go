// Command kcore-bench runs the experiment suite reproducing the paper's
// evaluation (Table 1 and Figures 3–7) on the synthetic dataset stand-ins.
//
// Usage:
//
//	kcore-bench -exp all                          # everything (minutes)
//	kcore-bench -exp table1
//	kcore-bench -exp fig3 -datasets dblp,yt,ctr
//	kcore-bench -exp fig4 -datasets yt,dblp -batchsizes 100,1000,10000,100000
//	kcore-bench -exp fig5 -datasets dblp
//	kcore-bench -exp fig6 -datasets tiny,dblp
//	kcore-bench -exp fig7 -datasets dblp,lj -threads 1,2,4,8,15
//	kcore-bench -exp shardscale -datasets dblp -shards 1,2,4,8
//	kcore-bench -exp viewreads -datasets dblp -shards 1,4
//	kcore-bench -exp mvreads -datasets dblp -shards 1,4 -depths 1,4,16
//	kcore-bench -exp wal -datasets dblp -shards 1,4
//	kcore-bench -exp replica -datasets dblp -shards 1,4
//	kcore-bench -exp feed -datasets dblp -shards 1,4
//
// Every run prints the same rows/series the paper reports, plus the
// shard-scaling and epoch-pinned view-reads experiments added by this
// repo. See EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kcore/internal/bench"
	"kcore/internal/lds"
	"kcore/internal/plds"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, fig3, fig4, fig5, fig6, fig7, shardscale, viewreads, mvreads, ablation, wal, replica, feed")
	datasets := flag.String("datasets", "", "comma-separated dataset profiles (default per experiment)")
	batchSizes := flag.String("batchsizes", "100,1000,10000,50000", "comma-separated batch sizes (fig4)")
	threads := flag.String("threads", "1,2,4,8,15", "comma-separated thread counts (fig7)")
	shards := flag.String("shards", "1,2,4,8", "comma-separated shard counts (shardscale)")
	depths := flag.String("depths", "1,4,16", "comma-separated retained-read depths (mvreads)")
	batch := flag.Int("batch", 10000, "update batch size")
	readers := flag.Int("readers", 4, "reader goroutines")
	writers := flag.Int("writers", 4, "writer (update) parallelism")
	maxBatches := flag.Int("maxbatches", 4, "measured batches per run")
	trials := flag.Int("trials", 1, "trials per configuration (paper: 11)")
	baseFrac := flag.Float64("basefrac", 0.5, "fraction of edges pre-loaded before measurement")
	delta := flag.Float64("delta", 0.2, "LDS delta")
	lambda := flag.Float64("lambda", 9, "LDS lambda")
	flag.Parse()

	cfg := bench.Config{
		Kind:       plds.Insert,
		BatchSize:  *batch,
		Readers:    *readers,
		Writers:    *writers,
		BaseFrac:   *baseFrac,
		MaxBatches: *maxBatches,
		Trials:     *trials,
		Seed:       1,
		Params:     lds.Params{Delta: *delta, Lambda: *lambda},
	}
	if err := run(*exp, splitList(*datasets), parseInts(*batchSizes), parseInts(*threads), parseInts(*shards), parseInts(*depths), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "kcore-bench:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kcore-bench: bad integer %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func run(exp string, datasets []string, batchSizes, threads, shards, depths []int, cfg bench.Config) error {
	// Default dataset lists per experiment (paper's choices, stand-ins).
	latencyDefault := []string{"dblp", "wiki", "yt", "ctr"}
	sweepDefault := []string{"yt", "dblp"}
	errorDefault := []string{"tiny", "dblp"}
	scaleDefault := []string{"dblp"}
	pick := func(def []string) []string {
		if len(datasets) > 0 {
			return datasets
		}
		return def
	}
	w := os.Stdout
	switch exp {
	case "table1":
		rows, err := bench.Table1(datasets)
		if err != nil {
			return err
		}
		bench.PrintTable1(w, rows)
		return nil
	case "fig3":
		return bench.Figure3(w, pick(latencyDefault), cfg)
	case "fig4":
		return bench.Figure4(w, pick(sweepDefault), batchSizes, cfg)
	case "fig5":
		return bench.Figure5(w, pick(latencyDefault), cfg)
	case "fig6":
		return bench.Figure6(w, pick(errorDefault), cfg)
	case "fig7":
		return bench.Figure7(w, pick(scaleDefault), threads, cfg)
	case "shardscale":
		return bench.FigureShards(w, pick(scaleDefault), shards, cfg)
	case "viewreads":
		return bench.FigureViewReads(w, pick(scaleDefault), shards, cfg)
	case "mvreads":
		return bench.FigureMVReads(w, pick(scaleDefault), shards, depths, cfg)
	case "ablation":
		return bench.Ablation(w, pick(errorDefault), cfg)
	case "wal":
		return bench.FigureWAL(w, pick(scaleDefault), shards, cfg)
	case "replica":
		return bench.FigureReplica(w, pick(scaleDefault), shards, cfg)
	case "feed":
		return bench.FigureFeed(w, pick(scaleDefault), shards, cfg)
	case "all":
		rows, err := bench.Table1(datasets)
		if err != nil {
			return err
		}
		bench.PrintTable1(w, rows)
		fmt.Fprintln(w)
		if err := bench.Figure3(w, pick(latencyDefault), cfg); err != nil {
			return err
		}
		if err := bench.Figure4(w, pick(sweepDefault), batchSizes, cfg); err != nil {
			return err
		}
		if err := bench.Figure5(w, pick(latencyDefault), cfg); err != nil {
			return err
		}
		if err := bench.Figure6(w, pick(errorDefault), cfg); err != nil {
			return err
		}
		if err := bench.Figure7(w, pick(scaleDefault), threads, cfg); err != nil {
			return err
		}
		if err := bench.FigureShards(w, pick(scaleDefault), shards, cfg); err != nil {
			return err
		}
		if err := bench.FigureViewReads(w, pick(scaleDefault), shards, cfg); err != nil {
			return err
		}
		if err := bench.FigureMVReads(w, pick(scaleDefault), shards, depths, cfg); err != nil {
			return err
		}
		if err := bench.FigureWAL(w, pick(scaleDefault), shards, cfg); err != nil {
			return err
		}
		if err := bench.FigureReplica(w, pick(scaleDefault), shards, cfg); err != nil {
			return err
		}
		if err := bench.FigureFeed(w, pick(scaleDefault), shards, cfg); err != nil {
			return err
		}
		return bench.Ablation(w, pick(errorDefault), cfg)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
