package kcore

import (
	"sync/atomic"

	"kcore/internal/cplds"
	"kcore/internal/exact"
	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/shard"
)

// engine is the single dispatch point between the two Decomposition
// backends: the single-CPLDS engine (the paper's data structure, full
// global approximation guarantee, one updater at a time) and the sharded
// engine (hash-partitioned CPLDS instances behind a batch-coalescing
// scheduler, concurrent updaters, per-shard guarantee). Every public
// Decomposition and View method routes through this interface; no method
// branches on the backend.
//
// The read triple mirrors the paper's three protocols (linearizable
// lock-free, instantaneous NonSync, blocking SyncReads); the pinned
// variants additionally certify that the returned values belong to one
// committed epoch — the consistency unit Views are built on. The quiescent
// group (Degree, IncidentEdges, Snapshot, ExactCoreness, CheckInvariants)
// must not run concurrently with update batches in either backend.
type engine interface {
	NumVertices() int
	NumShards() int
	NumEdges() int64
	ApproxFactor() float64
	Batches() uint64
	Epoch() uint64

	Insert(edges []graph.Edge) int
	Delete(edges []graph.Edge) int
	Apply(insertions, deletions []graph.Edge) (inserted, deleted int)

	Read(v uint32) float64
	ReadNonSync(v uint32) float64
	ReadSync(v uint32) float64
	ReadPinned(v uint32) (float64, uint64)
	ReadManyPinned(vs []uint32, out []float64) uint64
	ReadAllPinned(out []float64) uint64

	// The retained-read group serves exact reads at a *specific* committed
	// epoch — including retired ones, for as long as the multi-version
	// store retains (or a pin holds) their deltas. All are safe concurrent
	// with updates and deterministic per epoch; failures carry the typed
	// mvcc evicted/future errors.
	RetainedEpochs() int
	OldestReadableEpoch() uint64
	CheckEpoch(epoch uint64) error
	PinEpoch(epoch uint64) error
	UnpinEpoch(epoch uint64)
	ReadManyAt(vs []uint32, out []float64, epoch uint64) error
	ReadAllAt(out []float64, epoch uint64) error

	Degree(v uint32) int
	IncidentEdges(v uint32) []graph.Edge
	Snapshot() *graph.CSR
	ExactCoreness() []int32
	CheckInvariants() error
	Stats() []shard.Stats
}

// Both backends must satisfy the engine contract.
var (
	_ engine = (*singleEngine)(nil)
	_ engine = (*shard.Engine)(nil)
)

// singleEngine adapts one CPLDS to the engine interface. It also keeps the
// cumulative applied-edge counters the sharded engine tracks per shard, so
// Stats reports the same metrics in both modes.
type singleEngine struct {
	c        *cplds.CPLDS
	ins, del atomic.Int64
}

func newSingleEngine(n int, params lds.Params) *singleEngine {
	return &singleEngine{c: cplds.New(n, params)}
}

func (s *singleEngine) NumVertices() int      { return s.c.NumVertices() }
func (s *singleEngine) NumShards() int        { return 1 }
func (s *singleEngine) NumEdges() int64       { return s.c.Graph().NumEdges() }
func (s *singleEngine) ApproxFactor() float64 { return s.c.S.ApproxFactor() }
func (s *singleEngine) Batches() uint64       { return s.c.BatchNumber() }
func (s *singleEngine) Epoch() uint64         { return s.c.Epoch() }

func (s *singleEngine) Insert(edges []graph.Edge) int {
	applied := s.c.InsertBatch(edges)
	s.ins.Add(int64(applied))
	return applied
}

func (s *singleEngine) Delete(edges []graph.Edge) int {
	applied := s.c.DeleteBatch(edges)
	s.del.Add(int64(applied))
	return applied
}

func (s *singleEngine) Apply(insertions, deletions []graph.Edge) (inserted, deleted int) {
	if len(insertions) > 0 {
		inserted = s.Insert(insertions)
	}
	if len(deletions) > 0 {
		deleted = s.Delete(deletions)
	}
	return inserted, deleted
}

func (s *singleEngine) Read(v uint32) float64        { return s.c.Read(v) }
func (s *singleEngine) ReadNonSync(v uint32) float64 { return s.c.ReadNonSync(v) }
func (s *singleEngine) ReadSync(v uint32) float64    { return s.c.ReadSync(v) }

func (s *singleEngine) ReadPinned(v uint32) (float64, uint64) { return s.c.ReadPinned(v) }
func (s *singleEngine) ReadManyPinned(vs []uint32, out []float64) uint64 {
	return s.c.ReadManyPinned(vs, out)
}
func (s *singleEngine) ReadAllPinned(out []float64) uint64 { return s.c.ReadAllPinned(out) }

func (s *singleEngine) RetainedEpochs() int           { return s.c.RetainedEpochs() }
func (s *singleEngine) OldestReadableEpoch() uint64   { return s.c.OldestReadableEpoch() }
func (s *singleEngine) CheckEpoch(epoch uint64) error { return s.c.CheckEpoch(epoch) }
func (s *singleEngine) PinEpoch(epoch uint64) error   { return s.c.PinEpoch(epoch) }
func (s *singleEngine) UnpinEpoch(epoch uint64)       { s.c.UnpinEpoch(epoch) }

func (s *singleEngine) ReadManyAt(vs []uint32, out []float64, epoch uint64) error {
	return s.c.ReadManyAt(vs, out, epoch)
}
func (s *singleEngine) ReadAllAt(out []float64, epoch uint64) error {
	return s.c.ReadAllAt(out, epoch)
}

func (s *singleEngine) Degree(v uint32) int { return s.c.Graph().Degree(v) }

func (s *singleEngine) IncidentEdges(v uint32) []graph.Edge {
	var out []graph.Edge
	s.c.Graph().Neighbors(v, func(w uint32) bool {
		out = append(out, graph.Edge{U: v, V: w})
		return true
	})
	return out
}

func (s *singleEngine) Snapshot() *graph.CSR { return s.c.Graph().Snapshot() }

func (s *singleEngine) ExactCoreness() []int32 { return exact.Parallel(s.Snapshot()) }

func (s *singleEngine) CheckInvariants() error { return s.c.CheckInvariants() }

func (s *singleEngine) Stats() []shard.Stats {
	return []shard.Stats{{
		Shard:         0,
		OwnedVertices: s.c.NumVertices(),
		PrimaryEdges:  s.c.Graph().NumEdges(),
		LocalEdges:    s.c.Graph().NumEdges(),
		Batches:       s.c.BatchNumber(),
		Inserted:      s.ins.Load(),
		Deleted:       s.del.Load(),
	}}
}
