package kcore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kcore/internal/cplds"
	"kcore/internal/exact"
	"kcore/internal/feed"
	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/replica"
	"kcore/internal/shard"
	"kcore/internal/wal"
)

// engine is the single dispatch point between the two Decomposition
// backends: the single-CPLDS engine (the paper's data structure, full
// global approximation guarantee, one updater at a time) and the sharded
// engine (hash-partitioned CPLDS instances behind a batch-coalescing
// scheduler, concurrent updaters, per-shard guarantee). Every public
// Decomposition and View method routes through this interface; no method
// branches on the backend.
//
// The read triple mirrors the paper's three protocols (linearizable
// lock-free, instantaneous NonSync, blocking SyncReads); the pinned
// variants additionally certify that the returned values belong to one
// committed epoch — the consistency unit Views are built on. The quiescent
// group (Degree, IncidentEdges, Snapshot, ExactCoreness, CheckInvariants)
// must not run concurrently with update batches in either backend.
type engine interface {
	NumVertices() int
	NumShards() int
	NumEdges() int64
	ApproxFactor() float64
	Batches() uint64
	Epoch() uint64

	Insert(edges []graph.Edge) int
	Delete(edges []graph.Edge) int
	Apply(insertions, deletions []graph.Edge) (inserted, deleted int)

	Read(v uint32) float64
	ReadNonSync(v uint32) float64
	ReadSync(v uint32) float64
	ReadPinned(v uint32) (float64, uint64)
	ReadManyPinned(vs []uint32, out []float64) uint64
	ReadAllPinned(out []float64) uint64

	// SetRetainedEpochs configures multi-version retention; New calls it
	// exactly once, after WAL recovery (the retention logs initialize from
	// the recovered epochs). Quiescent use only.
	SetRetainedEpochs(n int)

	// SetEventHub attaches the change-feed hub: every committed batch's
	// coreness transitions are published to it, stamped with the
	// (cross-shard) epoch of the commit. nil detaches. Quiescent use only;
	// New calls it after SetRetainedEpochs.
	SetEventHub(h *feed.Hub)

	// The retained-read group serves exact reads at a *specific* committed
	// epoch — including retired ones, for as long as the multi-version
	// store retains (or a pin holds) their deltas. All are safe concurrent
	// with updates and deterministic per epoch; failures carry the typed
	// mvcc evicted/future errors.
	RetainedEpochs() int
	OldestReadableEpoch() uint64
	CheckEpoch(epoch uint64) error
	PinEpoch(epoch uint64) error
	UnpinEpoch(epoch uint64)
	ReadManyAt(vs []uint32, out []float64, epoch uint64) error
	ReadAllAt(out []float64, epoch uint64) error

	Degree(v uint32) int
	IncidentEdges(v uint32) []graph.Edge
	Snapshot() *graph.CSR
	ExactCoreness() []int32
	CheckInvariants() error
	Stats() []shard.Stats
}

// Both backends must satisfy the engine contract, and both must be
// drivable by the durability subsystem and the replication follower.
var (
	_ engine         = (*singleEngine)(nil)
	_ engine         = (*shard.Engine)(nil)
	_ wal.Engine     = (*singleEngine)(nil)
	_ wal.Engine     = (*shard.Engine)(nil)
	_ replica.Engine = (*singleEngine)(nil)
	_ replica.Engine = (*shard.Engine)(nil)
)

// singleEngine adapts one CPLDS to the engine interface. It also keeps the
// cumulative applied-edge counters the sharded engine tracks per shard, so
// Stats reports the same metrics in both modes.
type singleEngine struct {
	c        *cplds.CPLDS
	ins, del atomic.Int64

	// mu serializes update batches. The public contract already demands
	// one updater at a time; the lock exists so the durability subsystem
	// can quiesce the engine (snapshots) without a contract change, and
	// costs one uncontended lock per batch otherwise.
	mu       sync.Mutex
	batchLog func(wal.Batch)
}

func newSingleEngine(n int, params lds.Params) *singleEngine {
	return &singleEngine{c: cplds.New(n, params)}
}

func (s *singleEngine) NumVertices() int      { return s.c.NumVertices() }
func (s *singleEngine) NumShards() int        { return 1 }
func (s *singleEngine) NumEdges() int64       { return s.c.Graph().NumEdges() }
func (s *singleEngine) ApproxFactor() float64 { return s.c.S.ApproxFactor() }
func (s *singleEngine) Batches() uint64       { return s.c.BatchNumber() }
func (s *singleEngine) Epoch() uint64         { return s.c.Epoch() }

func (s *singleEngine) Insert(edges []graph.Edge) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.insertLocked(edges)
}

func (s *singleEngine) Delete(edges []graph.Edge) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteLocked(edges)
}

func (s *singleEngine) Apply(insertions, deletions []graph.Edge) (inserted, deleted int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(insertions) > 0 {
		inserted = s.insertLocked(insertions)
	}
	if len(deletions) > 0 {
		deleted = s.deleteLocked(deletions)
	}
	return inserted, deleted
}

// insertLocked applies one insertion batch and logs it. An empty batch
// still commits an epoch (the CPLDS always runs its batch protocol), so
// it is still logged — recovery must reproduce the epoch sequence
// exactly. Caller holds s.mu.
func (s *singleEngine) insertLocked(edges []graph.Edge) int {
	applied := s.c.InsertBatch(edges)
	s.ins.Add(int64(applied))
	if s.batchLog != nil {
		s.batchLog(wal.Batch{Shard: 0, Epoch: s.c.Epoch(), Ins: edges, HasIns: true})
	}
	return applied
}

func (s *singleEngine) deleteLocked(edges []graph.Edge) int {
	applied := s.c.DeleteBatch(edges)
	s.del.Add(int64(applied))
	if s.batchLog != nil {
		s.batchLog(wal.Batch{Shard: 0, Epoch: s.c.Epoch(), Del: edges, HasDel: true})
	}
	return applied
}

// --- wal.Engine (durability) ---

// SetBatchLog installs the per-batch durability hook (nil uninstalls).
// Called before the engine serves updates, or under Quiesce.
func (s *singleEngine) SetBatchLog(fn func(wal.Batch)) { s.batchLog = fn }

// Quiesce runs f with the update lock held: no batch is in flight and
// none can start until f returns.
func (s *singleEngine) Quiesce(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f()
}

// ApplyLogged re-applies one logged batch without re-logging it.
// Single-threaded recovery use only.
func (s *singleEngine) ApplyLogged(b wal.Batch) {
	if b.HasIns {
		s.ins.Add(int64(s.c.InsertBatch(b.Ins)))
	}
	if b.HasDel {
		s.del.Add(int64(s.c.DeleteBatch(b.Del)))
	}
}

// ShardDurable captures the engine's durable state (there is exactly one
// shard). Must run inside a Quiesce section.
func (s *singleEngine) ShardDurable(int) wal.ShardState {
	st := wal.ShardState{
		Graph:    s.c.Graph().Snapshot(),
		Levels:   make([]int32, s.c.NumVertices()),
		Epoch:    s.c.Epoch(),
		Batches:  s.c.BatchNumber(),
		Inserted: s.ins.Load(),
		Deleted:  s.del.Load(),
	}
	s.c.Levels(st.Levels)
	return st
}

// ShardEpoch returns the committed epoch (there is exactly one shard).
func (s *singleEngine) ShardEpoch(int) uint64 { return s.c.Epoch() }

// RestoreShard restores the engine from a captured state. Recovery calls
// it on a fresh engine; replication bootstrap calls it on a live one via
// RestoreAll (the CPLDS restore is reader-safe).
func (s *singleEngine) RestoreShard(_ int, st wal.ShardState) error {
	if err := s.c.Restore(st.Graph, st.Levels, st.Epoch); err != nil {
		return err
	}
	s.ins.Store(st.Inserted)
	s.del.Store(st.Deleted)
	return nil
}

// RestoreAll restores the engine (one shard) under the update lock. Safe
// on a live engine serving concurrent reads — the follower-side entry
// point for replication bootstrap.
func (s *singleEngine) RestoreAll(states []wal.ShardState) error {
	if len(states) != 1 {
		return fmt.Errorf("kcore: restore of %d shard states into a single engine", len(states))
	}
	var err error
	s.Quiesce(func() { err = s.RestoreShard(0, states[0]) })
	return err
}

func (s *singleEngine) SetRetainedEpochs(n int) { s.c.SetRetainedEpochs(n) }

// SetEventHub attaches the change-feed hub. A single engine's local epoch
// is the global epoch, so events go out stamped exactly as extracted.
func (s *singleEngine) SetEventHub(h *feed.Hub) {
	if h == nil {
		s.c.SetEventSink(nil, nil)
		return
	}
	s.c.SetEventSink(h.Active, func(epoch uint64, events []feed.Event) {
		h.Publish(epoch, events)
	})
}

func (s *singleEngine) Read(v uint32) float64        { return s.c.Read(v) }
func (s *singleEngine) ReadNonSync(v uint32) float64 { return s.c.ReadNonSync(v) }
func (s *singleEngine) ReadSync(v uint32) float64    { return s.c.ReadSync(v) }

func (s *singleEngine) ReadPinned(v uint32) (float64, uint64) { return s.c.ReadPinned(v) }
func (s *singleEngine) ReadManyPinned(vs []uint32, out []float64) uint64 {
	return s.c.ReadManyPinned(vs, out)
}
func (s *singleEngine) ReadAllPinned(out []float64) uint64 { return s.c.ReadAllPinned(out) }

func (s *singleEngine) RetainedEpochs() int           { return s.c.RetainedEpochs() }
func (s *singleEngine) OldestReadableEpoch() uint64   { return s.c.OldestReadableEpoch() }
func (s *singleEngine) CheckEpoch(epoch uint64) error { return s.c.CheckEpoch(epoch) }
func (s *singleEngine) PinEpoch(epoch uint64) error   { return s.c.PinEpoch(epoch) }
func (s *singleEngine) UnpinEpoch(epoch uint64)       { s.c.UnpinEpoch(epoch) }

func (s *singleEngine) ReadManyAt(vs []uint32, out []float64, epoch uint64) error {
	return s.c.ReadManyAt(vs, out, epoch)
}
func (s *singleEngine) ReadAllAt(out []float64, epoch uint64) error {
	return s.c.ReadAllAt(out, epoch)
}

func (s *singleEngine) Degree(v uint32) int { return s.c.Graph().Degree(v) }

func (s *singleEngine) IncidentEdges(v uint32) []graph.Edge {
	var out []graph.Edge
	s.c.Graph().Neighbors(v, func(w uint32) bool {
		out = append(out, graph.Edge{U: v, V: w})
		return true
	})
	return out
}

func (s *singleEngine) Snapshot() *graph.CSR { return s.c.Graph().Snapshot() }

func (s *singleEngine) ExactCoreness() []int32 { return exact.Parallel(s.Snapshot()) }

func (s *singleEngine) CheckInvariants() error { return s.c.CheckInvariants() }

func (s *singleEngine) Stats() []shard.Stats {
	return []shard.Stats{{
		Shard:         0,
		OwnedVertices: s.c.NumVertices(),
		PrimaryEdges:  s.c.Graph().NumEdges(),
		LocalEdges:    s.c.Graph().NumEdges(),
		Batches:       s.c.BatchNumber(),
		Inserted:      s.ins.Load(),
		Deleted:       s.del.Load(),
	}}
}
