package kcore

import (
	"kcore/internal/apps"
	"kcore/internal/graph"
)

// This file exposes the graph applications built on k-core decomposition
// that the paper lists as motivating use cases (§1) and future-work
// directions (§9): low out-degree orientation, densest-subgraph
// approximation, influential spreaders, coloring and maximal matching.
//
// The static functions operate on an explicit edge list. The Decomposition
// methods operate on the current dynamic graph through the engine
// interface's snapshot, so they work identically in single-engine and
// sharded mode (the sharded engine reassembles the global graph from its
// shards' primary edge copies). Except for TopSpreaders, they are quiescent
// operations: they must not run concurrently with an update batch.

// Orientation is an acyclic edge orientation with provably low out-degree:
// Out[v] lists v's out-neighbours, and the maximum out-degree is at most
// the graph degeneracy.
type Orientation struct {
	Out [][]uint32
}

// MaxOutDegree returns the largest out-degree in the orientation.
func (o *Orientation) MaxOutDegree() int {
	max := 0
	for _, out := range o.Out {
		if len(out) > max {
			max = len(out)
		}
	}
	return max
}

// OrientLowOutDegree computes a low out-degree (degeneracy-bounded)
// orientation of a static graph via the peeling order.
func OrientLowOutDegree(n int, edges []Edge) *Orientation {
	o := apps.LowOutDegreeOrientation(graph.CSRFromEdges(n, toInternal(edges)))
	return &Orientation{Out: o.Out}
}

// Orient computes a low out-degree orientation of the decomposition's
// current graph (the global graph, when sharded). Quiescent operation.
func (d *Decomposition) Orient() *Orientation {
	o := apps.LowOutDegreeOrientation(d.eng.Snapshot())
	return &Orientation{Out: o.Out}
}

// DenseSubgraph holds an approximately densest subgraph: the vertex set
// and its edge density (edges per vertex). The density is within a factor
// of 2 of the optimum.
type DenseSubgraph struct {
	Vertices []uint32
	Density  float64
}

// DensestSubgraph returns the maximum-coreness core of the current graph
// (the global graph, when sharded), a 2-approximation of the densest
// subgraph. Quiescent operation.
func (d *Decomposition) DensestSubgraph() DenseSubgraph {
	r := apps.ApproxDensestSubgraph(d.eng.Snapshot())
	return DenseSubgraph{Vertices: r.Vertices, Density: r.Density}
}

// TopSpreaders returns the k vertices with the highest approximate
// coreness (the k-shell heuristic for influential spreaders). It is served
// through an epoch-pinned View, so it is safe to call concurrently with
// update batches and the ranking reflects one committed batch boundary;
// use View.TopK directly to also learn which epoch was served.
func (d *Decomposition) TopSpreaders(k int) []uint32 {
	return d.View().TopK(k)
}

// Color greedily colors the current graph (the global graph, when sharded)
// in reverse degeneracy order, using at most degeneracy+1 colors. It
// returns the per-vertex colors and the number of colors used. Quiescent
// operation.
func (d *Decomposition) Color() ([]int32, int) {
	return apps.GreedyColoring(d.eng.Snapshot())
}

// MaximalMatching computes a maximal matching of the current graph (the
// global graph, when sharded) with parallel greedy edge claiming.
// Quiescent operation.
func (d *Decomposition) MaximalMatching() []Edge {
	m := apps.MaximalMatching(d.eng.Snapshot())
	out := make([]Edge, len(m))
	for i, e := range m {
		out[i] = Edge{U: e.U, V: e.V}
	}
	return out
}
