package kcore

import (
	"math"
	"sync"
	"testing"
)

func clique(n int) []Edge {
	var out []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, Edge{uint32(i), uint32(j)})
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Fatal("want error for negative n")
	}
	if _, err := New(10, WithParams(Params{Delta: -1, Lambda: 9})); err == nil {
		t.Fatal("want error for bad params")
	}
	d, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d", d.NumVertices())
	}
	if math.Abs(d.ApproxFactor()-2.8) > 1e-9 {
		t.Fatalf("ApproxFactor = %v", d.ApproxFactor())
	}
}

func TestInsertDeleteAndCoreness(t *testing.T) {
	d, err := New(100, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	added := d.InsertEdges(clique(20))
	if added != 190 {
		t.Fatalf("added = %d", added)
	}
	if d.NumEdges() != 190 {
		t.Fatalf("NumEdges = %d", d.NumEdges())
	}
	if d.BatchNumber() != 1 {
		t.Fatalf("BatchNumber = %d", d.BatchNumber())
	}
	// Exact coreness of a 20-clique member is 19; the estimate must be
	// within the approximation factor.
	est := d.Coreness(0)
	if est < 19/2.8/1.2 || est > 19*2.8*1.2 {
		t.Fatalf("Coreness(0) = %v, too far from 19", est)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	removed := d.DeleteEdges(clique(20))
	if removed != 190 || d.NumEdges() != 0 {
		t.Fatalf("removed = %d, left %d", removed, d.NumEdges())
	}
	if got := d.Coreness(0); got != 1 {
		t.Fatalf("Coreness in empty graph = %v, want floor estimate 1", got)
	}
}

func TestAllReadModesQuiescent(t *testing.T) {
	d, _ := New(50)
	d.InsertEdges(clique(10))
	for v := uint32(0); v < 10; v++ {
		a, b, c := d.Coreness(v), d.CorenessNonLinearizable(v), d.CorenessBlocking(v)
		if a != b || b != c {
			t.Fatalf("read modes disagree at %d: %v %v %v", v, a, b, c)
		}
	}
}

func TestExactCoreness(t *testing.T) {
	d, _ := New(30)
	d.InsertEdges(clique(10))
	core := d.ExactCoreness()
	for v := 0; v < 10; v++ {
		if core[v] != 9 {
			t.Fatalf("exact coreness of clique vertex %d = %d", v, core[v])
		}
	}
	for v := 10; v < 30; v++ {
		if core[v] != 0 {
			t.Fatalf("isolated vertex %d coreness %d", v, core[v])
		}
	}
}

func TestStatic(t *testing.T) {
	core := Static(6, []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	want := []int32{2, 2, 2, 1, 0, 0}
	for i := range want {
		if core[i] != want[i] {
			t.Fatalf("Static coreness[%d] = %d, want %d", i, core[i], want[i])
		}
	}
}

func TestDegree(t *testing.T) {
	d, _ := New(5)
	d.InsertEdges([]Edge{{0, 1}, {0, 2}})
	if d.Degree(0) != 2 || d.Degree(3) != 0 {
		t.Fatalf("degrees: %d %d", d.Degree(0), d.Degree(3))
	}
}

func TestConcurrentReadersSmoke(t *testing.T) {
	d, _ := New(200)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch r % 3 {
				case 0:
					d.Coreness(uint32(i % 200))
				case 1:
					d.CorenessNonLinearizable(uint32(i % 200))
				case 2:
					d.CorenessBlocking(uint32(i % 200))
				}
			}
		}(r)
	}
	edges := clique(60)
	for i := 0; i < len(edges); i += 200 {
		hi := i + 200
		if hi > len(edges) {
			hi = len(edges)
		}
		d.InsertEdges(edges[i:hi])
	}
	d.DeleteEdges(edges)
	close(stop)
	wg.Wait()
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatchMixed(t *testing.T) {
	d, _ := New(30)
	ins := clique(10)
	inserted, deleted := d.ApplyBatch(ins, nil)
	if inserted != 45 || deleted != 0 {
		t.Fatalf("first batch: %d/%d", inserted, deleted)
	}
	// Mixed: add a triangle elsewhere, drop part of the clique.
	tri := []Edge{{10, 11}, {11, 12}, {10, 12}}
	inserted, deleted = d.ApplyBatch(tri, ins[:20])
	if inserted != 3 || deleted != 20 {
		t.Fatalf("mixed batch: %d/%d", inserted, deleted)
	}
	if d.NumEdges() != 45-20+3 {
		t.Fatalf("NumEdges = %d", d.NumEdges())
	}
	if d.BatchNumber() != 3 {
		t.Fatalf("BatchNumber = %d (insert + mixed insert + mixed delete)", d.BatchNumber())
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangeEdgesIgnored(t *testing.T) {
	d, _ := New(3)
	if n := d.InsertEdges([]Edge{{0, 9}, {7, 8}, {0, 1}}); n != 1 {
		t.Fatalf("added = %d, want 1", n)
	}
}
