package server

// Hand-rolled Prometheus text exposition (no client library): fixed-bucket
// latency histograms and request/error counters per endpoint, plus engine,
// durability and replication-lag gauges rendered at scrape time. Recording
// is a handful of atomic adds per request — no locks on the request path;
// the endpoint set is fixed at route registration so the scrape path can
// iterate it without synchronization.

import (
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, chosen to
// straddle the paper's read-latency scale (sub-millisecond lock-free
// reads) through batch-length waits and epoch-floor stalls.
var latencyBuckets = [...]float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5,
}

// endpointMetrics is one instrumented route's counters. All fields are
// atomics: observe is called concurrently from request goroutines.
type endpointMetrics struct {
	name     string
	buckets  [len(latencyBuckets) + 1]atomic.Uint64 // +Inf last
	count    atomic.Uint64
	sumNanos atomic.Uint64
	byClass  [6]atomic.Uint64 // status/100: byClass[2] = 2xx, ...
}

func (em *endpointMetrics) observe(d time.Duration, status int) {
	secs := d.Seconds()
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if secs <= latencyBuckets[i] {
			break
		}
	}
	em.buckets[i].Add(1)
	em.count.Add(1)
	em.sumNanos.Add(uint64(d.Nanoseconds()))
	if c := status / 100; c >= 1 && c <= 5 {
		em.byClass[c].Add(1)
	}
}

// metrics owns the per-endpoint slice. Endpoints are registered once, at
// route setup (before the server serves), so reads at scrape time need no
// locking.
type metrics struct {
	endpoints []*endpointMetrics
}

func newMetrics() *metrics { return &metrics{} }

// instrument wraps a route handler to record its latency and status class
// under the given endpoint name.
func (m *metrics) instrument(name string, next http.Handler) http.Handler {
	em := &endpointMetrics{name: name}
	m.endpoints = append(m.endpoints, em)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		em.observe(time.Since(start), sw.status)
	})
}

// statusWriter captures the response status for the error counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// handleMetrics renders the exposition: HTTP histograms/counters, engine
// gauges, and the durability and replication blocks when configured.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	b.WriteString("# HELP kcore_http_requests_total HTTP requests served, by endpoint and status class.\n")
	b.WriteString("# TYPE kcore_http_requests_total counter\n")
	for _, em := range s.metrics.endpoints {
		for c := 1; c <= 5; c++ {
			if n := em.byClass[c].Load(); n > 0 {
				fmt.Fprintf(&b, "kcore_http_requests_total{endpoint=%q,class=\"%dxx\"} %d\n", em.name, c, n)
			}
		}
	}
	b.WriteString("# HELP kcore_http_request_duration_seconds HTTP request latency, by endpoint.\n")
	b.WriteString("# TYPE kcore_http_request_duration_seconds histogram\n")
	for _, em := range s.metrics.endpoints {
		if em.count.Load() == 0 {
			continue
		}
		var cum uint64
		for i, le := range latencyBuckets {
			cum += em.buckets[i].Load()
			fmt.Fprintf(&b, "kcore_http_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", em.name, le, cum)
		}
		cum += em.buckets[len(latencyBuckets)].Load()
		fmt.Fprintf(&b, "kcore_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", em.name, cum)
		fmt.Fprintf(&b, "kcore_http_request_duration_seconds_sum{endpoint=%q} %g\n",
			em.name, float64(em.sumNanos.Load())/1e9)
		fmt.Fprintf(&b, "kcore_http_request_duration_seconds_count{endpoint=%q} %d\n", em.name, em.count.Load())
	}

	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	gauge("kcore_epoch", "Committed cross-shard epoch.", s.eng.Epoch())
	gauge("kcore_edges", "Edges currently in the graph.", s.eng.NumEdges())
	gauge("kcore_vertices", "Vertex capacity.", s.eng.NumVertices())
	gauge("kcore_shards", "Engine shards.", s.eng.NumShards())

	fs := s.hub.Stats()
	gauge("kcore_feed_subscribers", "Currently attached change-feed subscribers.", fs.Subscribers)
	gauge("kcore_feed_epochs_total", "Commits published to the change feed.", fs.Epochs)
	gauge("kcore_feed_events_total", "Coreness-change events offered to the feed.", fs.Events)
	gauge("kcore_feed_deliveries_total", "Per-subscriber deliveries enqueued.", fs.Deliveries)
	gauge("kcore_feed_drops_total", "Deliveries dropped at full subscriber buffers.", fs.Drops)
	gauge("kcore_feed_gaps_total", "Gap markers delivered to slow subscribers.", fs.Gaps)

	if s.wal != nil {
		st := s.wal.Stats()
		degraded := 0
		if st.Degraded {
			degraded = 1
		}
		gauge("kcore_wal_degraded", "1 while the WAL is degraded (batches apply in memory only).", degraded)
		gauge("kcore_wal_log_bytes", "Total bytes across live WAL segments.", st.LogBytes)
	}

	switch {
	case s.feeder != nil:
		st := s.feeder.Stats()
		gauge("kcore_replication_followers", "Currently connected followers.", st.Followers)
		gauge("kcore_replication_bytes_shipped_total", "Stream bytes shipped to followers.", st.BytesShipped)
		gauge("kcore_replication_records_shipped_total", "Batch records shipped to followers.", st.RecordsShipped)
		gauge("kcore_replication_overruns_total", "Followers dropped for falling behind the tail buffer.", st.Overruns)
		gauge("kcore_replication_resumes_total", "Reconnects served from the retained ring (no snapshot transfer).", st.Resumes)
		gauge("kcore_replication_resume_rejects_total", "Resume cursors outside retention, told to re-bootstrap.", st.ResumeRejects)
	case s.follower != nil:
		st := s.follower.Stats()
		connected := 0
		if st.Connected {
			connected = 1
		}
		gauge("kcore_replication_connected", "1 while the replication stream to the primary is up.", connected)
		gauge("kcore_replication_lag_epochs", "Epochs the primary has committed beyond this replica.", st.LagEpochs)
		gauge("kcore_replication_lag_bytes", "Stream bytes received but not yet applied.", st.LagBytes)
		gauge("kcore_replication_bytes_received_total", "Stream bytes received from the primary.", st.BytesReceived)
		gauge("kcore_replication_records_applied_total", "Batch records applied from the stream.", st.RecordsApplied)
		gauge("kcore_replication_bootstraps_total", "Bootstraps applied (more than one means re-bootstraps).", st.Bootstraps)
		gauge("kcore_replication_resumes_total", "Reconnects resumed from the applied vector (no snapshot transfer).", st.Resumes)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
