package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"kcore/internal/lds"
	"kcore/internal/wal"
)

func newTestServer(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	s, err := New(100, lds.DefaultParams(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func triangleBody() string { return "0 1\n1 2\n0 2\n" }

func TestInsertAndRead(t *testing.T) {
	ts := newTestServer(t)
	resp := post(t, ts.URL+"/edges/insert", triangleBody())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	up := decode[updateResponse](t, resp)
	if up.Applied != 3 || up.Batch != 1 {
		t.Fatalf("insert response %+v", up)
	}
	resp = get(t, ts.URL+"/coreness?v=0")
	cr := decode[corenessResponse](t, resp)
	if cr.Vertex != 0 || cr.Coreness < 1 || cr.Mode != "linearizable" {
		t.Fatalf("coreness response %+v", cr)
	}
}

func TestReadModes(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/edges/insert", triangleBody())
	for _, mode := range []string{"linearizable", "nonsync", "blocking"} {
		resp := get(t, fmt.Sprintf("%s/coreness?v=1&mode=%s", ts.URL, mode))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %s status %d", mode, resp.StatusCode)
		}
		cr := decode[corenessResponse](t, resp)
		if cr.Mode != mode {
			t.Fatalf("mode echo %q", cr.Mode)
		}
	}
	if resp := get(t, ts.URL+"/coreness?v=1&mode=psychic"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mode status %d", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	if resp := get(t, ts.URL+"/coreness?v=notanumber"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status %d", resp.StatusCode)
	}
	if resp := get(t, ts.URL+"/coreness?v=5000"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range id status %d", resp.StatusCode)
	}
	if resp := get(t, ts.URL+"/top?k=0"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad k status %d", resp.StatusCode)
	}
	if resp := post(t, ts.URL+"/edges/insert", "zap\n"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad edge list status %d", resp.StatusCode)
	}
}

func TestDeleteAndStats(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/edges/insert", triangleBody())
	resp := post(t, ts.URL+"/edges/delete", "0 1\n")
	up := decode[updateResponse](t, resp)
	if up.Applied != 1 {
		t.Fatalf("delete applied %d", up.Applied)
	}
	st := decode[statsResponse](t, get(t, ts.URL+"/stats"))
	if st.Edges != 2 || st.Inserted != 3 || st.Deleted != 1 || st.Batches != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTopEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// Dense cluster on 0..4.
	var b strings.Builder
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			fmt.Fprintf(&b, "%d %d\n", i, j)
		}
	}
	post(t, ts.URL+"/edges/insert", b.String())
	top := decode[topResponse](t, get(t, ts.URL+"/top?k=5"))
	if len(top.Vertices) != 5 {
		t.Fatalf("top = %v", top)
	}
	for _, v := range top.Vertices {
		if v > 4 {
			t.Fatalf("non-cluster vertex %d in top", v)
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp := post(t, ts.URL+"/edges/batch", `{"insert":[{"u":0,"v":1},{"u":1,"v":2},{"u":0,"v":2}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch insert status %d", resp.StatusCode)
	}
	br := decode[batchResponse](t, resp)
	if br.Inserted != 3 || br.Deleted != 0 {
		t.Fatalf("batch response %+v", br)
	}
	// Mixed batch: one deletion, one fresh insertion, one insert+delete
	// pair of the same (absent) edge that must net out to nothing.
	resp = post(t, ts.URL+"/edges/batch",
		`{"insert":[{"u":2,"v":3},{"u":7,"v":8}],"delete":[{"u":0,"v":1},{"u":7,"v":8}]}`)
	br = decode[batchResponse](t, resp)
	if br.Inserted != 1 || br.Deleted != 1 {
		t.Fatalf("mixed batch response %+v", br)
	}
	st := decode[statsResponse](t, get(t, ts.URL+"/stats"))
	if st.Edges != 3 || st.Inserted != 4 || st.Deleted != 1 {
		t.Fatalf("stats after batches %+v", st)
	}
}

func TestBatchEndpointErrorPaths(t *testing.T) {
	tests := []struct {
		name       string
		body       string
		wantStatus int
		opts       []Option
	}{
		{
			name:       "malformed JSON",
			body:       `{"insert":[{"u":0,"v":1}`,
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "not JSON at all",
			body:       "0 1\n1 2\n",
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "unknown field",
			body:       `{"insertions":[{"u":0,"v":1}]}`,
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "empty batch",
			body:       `{}`,
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "empty lists",
			body:       `{"insert":[],"delete":[]}`,
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "out-of-range insert vertex",
			body:       `{"insert":[{"u":0,"v":100}]}`,
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "out-of-range delete vertex",
			body:       `{"delete":[{"u":5000,"v":1}]}`,
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "negative vertex id",
			body:       `{"insert":[{"u":-1,"v":1}]}`,
			wantStatus: http.StatusBadRequest,
		},
		{
			name:       "oversized batch",
			body:       `{"insert":[{"u":0,"v":1},{"u":1,"v":2},{"u":2,"v":3}]}`,
			wantStatus: http.StatusRequestEntityTooLarge,
			opts:       []Option{WithMaxBatchEdges(2)},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ts := newTestServer(t, tc.opts...)
			resp := post(t, ts.URL+"/edges/batch", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			// An invalid batch must not have touched the graph.
			st := decode[statsResponse](t, get(t, ts.URL+"/stats"))
			if st.Edges != 0 || st.Inserted != 0 || st.Deleted != 0 {
				t.Fatalf("rejected batch mutated state: %+v", st)
			}
		})
	}
}

func TestShardedServer(t *testing.T) {
	ts := newTestServer(t, WithShards(4))
	st := decode[statsResponse](t, get(t, ts.URL+"/stats"))
	if st.Shards != 4 {
		t.Fatalf("shards = %d, want 4", st.Shards)
	}
	post(t, ts.URL+"/edges/insert", triangleBody())
	for v := 0; v < 3; v++ {
		resp := get(t, fmt.Sprintf("%s/coreness?v=%d", ts.URL, v))
		cr := decode[corenessResponse](t, resp)
		if cr.Coreness < 1 {
			t.Fatalf("vertex %d coreness %v on sharded server", v, cr.Coreness)
		}
	}
	st = decode[statsResponse](t, get(t, ts.URL+"/stats"))
	if st.Edges != 3 || st.Inserted != 3 {
		t.Fatalf("sharded stats %+v", st)
	}
	if len(st.ShardLoad) != 4 {
		t.Fatalf("shard_load has %d entries, want 4", len(st.ShardLoad))
	}
	var owned int
	var primary int64
	for _, sl := range st.ShardLoad {
		owned += sl.OwnedVertices
		primary += sl.PrimaryEdges
	}
	if owned != st.Vertices {
		t.Fatalf("shard_load owned vertices sum %d != %d", owned, st.Vertices)
	}
	if primary != st.Edges {
		t.Fatalf("shard_load primary edges sum %d != %d", primary, st.Edges)
	}
}

func TestBulkCorenessEndpoint(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ts := newTestServer(t, WithShards(shards))
			post(t, ts.URL+"/edges/insert", triangleBody())
			resp := post(t, ts.URL+"/coreness/bulk", `{"vertices":[0,1,2,50]}`)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("bulk status %d", resp.StatusCode)
			}
			br := decode[bulkResponse](t, resp)
			if len(br.Coreness) != 4 {
				t.Fatalf("bulk returned %d values", len(br.Coreness))
			}
			for i := 0; i < 3; i++ {
				if br.Coreness[i] < 1 {
					t.Fatalf("triangle vertex %d coreness %v", i, br.Coreness[i])
				}
			}
			if br.Coreness[3] != 1 {
				t.Fatalf("isolated vertex coreness %v, want floor estimate 1", br.Coreness[3])
			}
			// One batch per touched shard committed; the bulk read reports
			// the single epoch it was served from.
			if br.Epoch == 0 {
				t.Fatal("bulk response missing epoch")
			}
		})
	}
}

func TestBulkCorenessErrorPaths(t *testing.T) {
	tests := []struct {
		name       string
		body       string
		wantStatus int
		opts       []Option
	}{
		{name: "malformed JSON", body: `{"vertices":[0`, wantStatus: http.StatusBadRequest},
		{name: "unknown field", body: `{"ids":[0]}`, wantStatus: http.StatusBadRequest},
		{name: "empty list", body: `{"vertices":[]}`, wantStatus: http.StatusBadRequest},
		{name: "missing list", body: `{}`, wantStatus: http.StatusBadRequest},
		{name: "out of range", body: `{"vertices":[0,100]}`, wantStatus: http.StatusBadRequest},
		{name: "negative id", body: `{"vertices":[-1]}`, wantStatus: http.StatusBadRequest},
		{
			name:       "oversized list",
			body:       `{"vertices":[0,1,2]}`,
			wantStatus: http.StatusRequestEntityTooLarge,
			opts:       []Option{WithMaxBatchEdges(2)},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ts := newTestServer(t, tc.opts...)
			resp := post(t, ts.URL+"/coreness/bulk", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
		})
	}
}

// TestEpochFieldsReported checks that every read surface reports the epoch
// of the cut it served: single reads, bulk reads, rankings and stats.
func TestEpochFieldsReported(t *testing.T) {
	ts := newTestServer(t, WithShards(2))
	post(t, ts.URL+"/edges/insert", triangleBody())
	post(t, ts.URL+"/edges/delete", "0 1\n")

	st := decode[statsResponse](t, get(t, ts.URL+"/stats"))
	if st.Epoch == 0 {
		t.Fatalf("stats epoch = 0 after two update batches: %+v", st)
	}
	cr := decode[corenessResponse](t, get(t, ts.URL+"/coreness?v=0"))
	if cr.Epoch == 0 {
		t.Fatalf("coreness response missing epoch: %+v", cr)
	}
	top := decode[topResponse](t, get(t, ts.URL+"/top?k=2"))
	if top.Epoch == 0 {
		t.Fatalf("top response missing epoch: %+v", top)
	}
	if len(top.Vertices) != 2 {
		t.Fatalf("top = %+v", top)
	}
}

func TestConcurrentReadsDuringUpdates(t *testing.T) {
	ts := newTestServer(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := ts.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(fmt.Sprintf("%s/coreness?v=%d", ts.URL, i%100))
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	for round := 0; round < 5; round++ {
		var b strings.Builder
		for i := 0; i < 40; i++ {
			fmt.Fprintf(&b, "%d %d\n", (round*13+i)%100, (round*7+i*3)%100)
		}
		if resp := post(t, ts.URL+"/edges/insert", b.String()); resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d insert status %d", round, resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
	st := decode[statsResponse](t, get(t, ts.URL+"/stats"))
	if st.Reads == 0 {
		t.Fatal("no reads served")
	}
}

// TestRetainedEpochReads covers the requested-epoch read forms: ?epoch= on
// /coreness and /top and the bulk "epoch" field serve the exact retired
// cut, evicted epochs answer 410 Gone, and future epochs 404.
func TestRetainedEpochReads(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ts := newTestServer(t, WithShards(shards), WithRetainedEpochs(16))
			// A clique over 0..7 lifts estimates well above the floor (in
			// every shard's local subgraph: all of 0's edges live in 0's
			// owning shard).
			var clique, star strings.Builder
			for i := 0; i < 8; i++ {
				for j := i + 1; j < 8; j++ {
					fmt.Fprintf(&clique, "%d %d\n", i, j)
				}
				if i > 0 {
					fmt.Fprintf(&star, "0 %d\n", i)
				}
			}
			post(t, ts.URL+"/edges/insert", clique.String())

			// Freeze the clique's cut, then cut vertex 0 loose (later
			// epochs). Per-shard subgraphs can legitimately sit at the floor
			// (a lone clique member's local view is a star), so the
			// above-floor precondition only holds unsharded.
			cr := decode[corenessResponse](t, get(t, ts.URL+"/coreness?v=0"))
			if shards == 1 && cr.Coreness <= 1 {
				t.Fatalf("clique estimate at the floor: %+v", cr)
			}
			frozen := cr.Epoch
			post(t, ts.URL+"/edges/delete", star.String())

			// The frozen epoch still serves the triangle value. (Only the
			// single-shard estimate is guaranteed to move here: a per-shard
			// subgraph may already sit at the floor estimate.)
			live := decode[corenessResponse](t, get(t, ts.URL+"/coreness?v=0"))
			if shards == 1 && live.Coreness >= cr.Coreness {
				t.Fatalf("deletion did not lower the live estimate: %v vs %v", live, cr)
			}
			resp := get(t, fmt.Sprintf("%s/coreness?v=0&epoch=%d", ts.URL, frozen))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("retained read status %d", resp.StatusCode)
			}
			old := decode[corenessResponse](t, resp)
			if old.Coreness != cr.Coreness || old.Epoch != frozen || old.Mode != "retained" {
				t.Fatalf("retained read %+v, want coreness %v at epoch %d", old, cr.Coreness, frozen)
			}

			// Bulk at the frozen epoch agrees with the per-vertex frozen reads.
			resp = post(t, ts.URL+"/coreness/bulk",
				fmt.Sprintf(`{"vertices":[0,1,2],"epoch":%d}`, frozen))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("bulk retained status %d", resp.StatusCode)
			}
			bulk := decode[bulkResponse](t, resp)
			if bulk.Epoch != frozen {
				t.Fatalf("bulk epoch echo %d, want %d", bulk.Epoch, frozen)
			}
			for i, v := range bulk.Vertices {
				single := decode[corenessResponse](t,
					get(t, fmt.Sprintf("%s/coreness?v=%d&epoch=%d", ts.URL, v, frozen)))
				if bulk.Coreness[i] != single.Coreness {
					t.Fatalf("bulk[%d] = %v, single frozen read %v", i, bulk.Coreness[i], single.Coreness)
				}
			}

			// Top at the frozen epoch still ranks the clique first.
			resp = get(t, fmt.Sprintf("%s/top?k=3&epoch=%d", ts.URL, frozen))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("top retained status %d", resp.StatusCode)
			}
			top := decode[topResponse](t, resp)
			if top.Epoch != frozen || len(top.Vertices) != 3 {
				t.Fatalf("top retained %+v", top)
			}
			for _, v := range top.Vertices {
				if v > 7 {
					t.Fatalf("non-clique vertex %d in frozen top: %+v", v, top)
				}
			}

			// Future epochs: 404. Incompatible mode / junk epoch: 400.
			if resp := get(t, fmt.Sprintf("%s/coreness?v=0&epoch=%d", ts.URL, frozen+100)); resp.StatusCode != http.StatusNotFound {
				t.Fatalf("future epoch status %d, want 404", resp.StatusCode)
			}
			if resp := get(t, fmt.Sprintf("%s/coreness?v=0&mode=nonsync&epoch=%d", ts.URL, frozen)); resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("mode+epoch status %d, want 400", resp.StatusCode)
			}
			if resp := get(t, ts.URL+"/coreness?v=0&epoch=banana"); resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("junk epoch status %d, want 400", resp.StatusCode)
			}

			// Stats surface the retention window.
			st := decode[statsResponse](t, get(t, ts.URL+"/stats"))
			if st.Retained != 16 || st.OldestEpoch > st.Epoch {
				t.Fatalf("stats retention %+v", st)
			}
		})
	}
}

// TestEvictedEpochGone ages an epoch out of a tiny retention window and
// expects 410 Gone from every requested-epoch form.
func TestEvictedEpochGone(t *testing.T) {
	ts := newTestServer(t, WithRetainedEpochs(1))
	post(t, ts.URL+"/edges/insert", triangleBody())
	frozen := decode[corenessResponse](t, get(t, ts.URL+"/coreness?v=0")).Epoch
	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/edges/insert", fmt.Sprintf("%d %d\n", 10+i, 20+i))
	}
	for _, url := range []string{
		fmt.Sprintf("%s/coreness?v=0&epoch=%d", ts.URL, frozen),
		fmt.Sprintf("%s/top?k=2&epoch=%d", ts.URL, frozen),
	} {
		if resp := get(t, url); resp.StatusCode != http.StatusGone {
			t.Fatalf("GET %s status %d, want 410", url, resp.StatusCode)
		}
	}
	resp := post(t, ts.URL+"/coreness/bulk", fmt.Sprintf(`{"vertices":[0],"epoch":%d}`, frozen))
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("bulk evicted status %d, want 410", resp.StatusCode)
	}
	// Retention disabled: any retired epoch is gone, but the current one is
	// still servable (unpinned, per the option's only-the-current contract).
	ts0 := newTestServer(t, WithRetainedEpochs(0))
	post(t, ts0.URL+"/edges/insert", triangleBody())
	post(t, ts0.URL+"/edges/insert", "5 6\n")
	if resp := get(t, ts0.URL+"/coreness?v=0&epoch=1"); resp.StatusCode != http.StatusGone {
		t.Fatalf("retention-disabled retired read status %d, want 410", resp.StatusCode)
	}
	cur := decode[statsResponse](t, get(t, ts0.URL+"/stats")).Epoch
	resp = get(t, fmt.Sprintf("%s/coreness?v=0&epoch=%d", ts0.URL, cur))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retention-disabled current-epoch read status %d, want 200", resp.StatusCode)
	}
	if cr := decode[corenessResponse](t, resp); cr.Epoch != cur || cr.Mode != "retained" {
		t.Fatalf("retention-disabled current-epoch read %+v", cr)
	}
}

// TestUpdateEndpointValidation pins the /edges/insert and /edges/delete
// limits to parity with /edges/batch: out-of-range vertices are rejected
// with 400, and oversized batches or bodies with 413 — previously both
// endpoints skipped validation entirely and fed arbitrary input straight
// into the engine.
func TestUpdateEndpointValidation(t *testing.T) {
	for _, ep := range []string{"/edges/insert", "/edges/delete"} {
		t.Run(ep, func(t *testing.T) {
			ts := newTestServer(t, WithMaxBatchEdges(2))
			cases := []struct {
				name, body string
				status     int
			}{
				{"valid", "0 1\n1 2\n", http.StatusOK},
				{"out-of-range vertex", "0 500\n", http.StatusBadRequest},
				{"both out of range", "7000 500\n", http.StatusBadRequest},
				{"malformed line", "zap\n", http.StatusBadRequest},
				{"too many edges", "0 1\n1 2\n2 3\n", http.StatusRequestEntityTooLarge},
				{"oversized body", strings.Repeat("# padding line\n", 300), http.StatusRequestEntityTooLarge},
			}
			for _, tc := range cases {
				resp := post(t, ts.URL+ep, tc.body)
				if resp.StatusCode != tc.status {
					t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
				}
			}
		})
	}
}

// TestRejectedUpdatesDoNotCommit verifies a rejected text update leaves no
// trace in the engine: no batch, no edges.
func TestRejectedUpdatesDoNotCommit(t *testing.T) {
	ts := newTestServer(t)
	post(t, ts.URL+"/edges/insert", triangleBody())
	before := decode[statsResponse](t, get(t, ts.URL+"/stats"))
	if resp := post(t, ts.URL+"/edges/insert", "0 5000\n"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range insert status %d", resp.StatusCode)
	}
	after := decode[statsResponse](t, get(t, ts.URL+"/stats"))
	if after.Batches != before.Batches || after.Edges != before.Edges || after.Inserted != before.Inserted {
		t.Fatalf("rejected update mutated stats: %+v -> %+v", before, after)
	}
}

// TestServerDurability drives batches over HTTP with the WAL attached,
// checks the /stats durability block, and restarts the server on the same
// directory: the recovered server must report the same epoch and serve the
// same coreness values.
func TestServerDurability(t *testing.T) {
	dir := t.TempDir()
	opts := []Option{WithShards(2), WithWAL(dir, wal.Options{})}
	s1, err := New(100, lds.DefaultParams(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s1.Handler())
	post(t, ts.URL+"/edges/insert", triangleBody())
	post(t, ts.URL+"/edges/insert", "3 4\n4 5\n3 5\n2 3\n")
	post(t, ts.URL+"/edges/delete", "2 3\n")
	st := decode[statsResponse](t, get(t, ts.URL+"/stats"))
	if st.Durability == nil || st.Durability.LoggedBatches == 0 || st.Durability.Dir != dir {
		t.Fatalf("durability stats missing or empty: %+v", st.Durability)
	}
	want := decode[corenessResponse](t, get(t, ts.URL+"/coreness?v=4"))
	ts.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(100, lds.DefaultParams(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	st2 := decode[statsResponse](t, get(t, ts2.URL+"/stats"))
	if st2.Epoch != st.Epoch || st2.Edges != st.Edges {
		t.Fatalf("recovered epoch/edges (%d,%d), want (%d,%d)", st2.Epoch, st2.Edges, st.Epoch, st.Edges)
	}
	if st2.Durability == nil || st2.Durability.RecoveredBatches == 0 {
		t.Fatalf("recovered durability stats: %+v", st2.Durability)
	}
	got := decode[corenessResponse](t, get(t, ts2.URL+"/coreness?v=4"))
	if got.Coreness != want.Coreness {
		t.Fatalf("recovered coreness %v, want %v", got.Coreness, want.Coreness)
	}

	// The durability block is absent without WithWAL.
	plain := newTestServer(t)
	if st := decode[statsResponse](t, get(t, plain.URL+"/stats")); st.Durability != nil {
		t.Fatalf("durability block present without WAL: %+v", st.Durability)
	}
}

// TestServerSnapshotRequiresWAL pins the error contract of the durability
// methods on a memory-only server.
func TestServerSnapshotRequiresWAL(t *testing.T) {
	s, err := New(10, lds.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err == nil {
		t.Fatal("Snapshot without WAL succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close without WAL: %v", err)
	}
}
