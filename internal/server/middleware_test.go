package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kcore/internal/faultfs"
	"kcore/internal/lds"
	"kcore/internal/wal"
)

// newTestService builds the Server (for direct access to gates, counters
// and the WAL) alongside its httptest frontend.
func newTestService(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(100, lds.DefaultParams(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	return s, ts
}

func decodeError(t *testing.T, resp *http.Response) errorResponse {
	t.Helper()
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body is not structured JSON: %v", err)
	}
	return e
}

func TestStructuredErrorBodies(t *testing.T) {
	_, ts := newTestService(t)
	post(t, ts.URL+"/edges/insert", triangleBody())
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
	}{
		{"bad vertex", "GET", "/coreness?v=notanumber", "", http.StatusBadRequest, codeBadRequest},
		{"vertex out of range", "GET", "/coreness?v=100", "", http.StatusBadRequest, codeBadRequest},
		{"bad epoch", "GET", "/coreness?v=0&epoch=x", "", http.StatusBadRequest, codeBadRequest},
		{"unknown mode", "GET", "/coreness?v=0&mode=psychic", "", http.StatusBadRequest, codeBadRequest},
		{"mode with epoch", "GET", "/coreness?v=0&mode=nonsync&epoch=1", "", http.StatusBadRequest, codeBadRequest},
		{"future epoch", "GET", "/coreness?v=0&epoch=999999", "", http.StatusNotFound, codeFuture},
		{"bad k", "GET", "/top?k=0", "", http.StatusBadRequest, codeBadRequest},
		{"bad bulk JSON", "POST", "/coreness/bulk", "{nope", http.StatusBadRequest, codeBadRequest},
		{"empty bulk", "POST", "/coreness/bulk", `{"vertices":[]}`, http.StatusBadRequest, codeBadRequest},
		{"bulk vertex range", "POST", "/coreness/bulk", `{"vertices":[12345]}`, http.StatusBadRequest, codeBadRequest},
		{"bad edge list", "POST", "/edges/insert", "zero one\n", http.StatusBadRequest, codeBadRequest},
		{"edge out of range", "POST", "/edges/insert", "0 12345\n", http.StatusBadRequest, codeBadRequest},
		{"bad batch JSON", "POST", "/edges/batch", "{nope", http.StatusBadRequest, codeBadRequest},
		{"empty batch", "POST", "/edges/batch", `{"insert":[],"delete":[]}`, http.StatusBadRequest, codeBadRequest},
		{"batch vertex range", "POST", "/edges/batch", `{"insert":[{"u":0,"v":12345}]}`, http.StatusBadRequest, codeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			if tc.method == "GET" {
				resp = get(t, ts.URL+tc.path)
			} else {
				resp = post(t, ts.URL+tc.path, tc.body)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			e := decodeError(t, resp)
			if e.Code != tc.wantCode {
				t.Fatalf("code %q, want %q (error %q)", e.Code, tc.wantCode, e.Error)
			}
			if e.Error == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

func TestErrorBodySizeLimits(t *testing.T) {
	_, ts := newTestService(t, WithMaxBatchEdges(2))
	resp := post(t, ts.URL+"/edges/insert", "0 1\n1 2\n2 3\n")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != codeTooLarge {
		t.Fatalf("code %q, want %q", e.Code, codeTooLarge)
	}
	resp = post(t, ts.URL+"/edges/batch", `{"insert":[{"u":0,"v":1},{"u":1,"v":2},{"u":2,"v":3}]}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("batch status %d, want 413", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != codeTooLarge {
		t.Fatalf("batch code %q, want %q", e.Code, codeTooLarge)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	s, err := New(10, lds.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	h := s.recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/coreness?v=0", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var e errorResponse
	if err := json.NewDecoder(rec.Body).Decode(&e); err != nil {
		t.Fatalf("panic body is not structured JSON: %v", err)
	}
	if e.Code != codePanic || !strings.Contains(e.Error, "handler bug") {
		t.Fatalf("panic body %+v", e)
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("panics counter %d, want 1", got)
	}
	// The recovered handler chain is reusable: a healthy handler behind the
	// same middleware still answers.
	ok := s.recoverMiddleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	rec = httptest.NewRecorder()
	ok.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("post-panic request status %d", rec.Code)
	}
}

func TestRateLimiterUnit(t *testing.T) {
	rl := newRateLimiter(1, 2) // 1 rps, burst 2
	now := time.Unix(1000, 0)
	if !rl.allow("a", now) || !rl.allow("a", now) {
		t.Fatal("burst of 2 denied")
	}
	if rl.allow("a", now) {
		t.Fatal("third instantaneous request allowed past burst")
	}
	if !rl.allow("b", now) {
		t.Fatal("fresh client denied by another client's bucket")
	}
	// 1 second refills 1 token.
	if !rl.allow("a", now.Add(time.Second)) {
		t.Fatal("refilled token denied")
	}
	if rl.allow("a", now.Add(time.Second)) {
		t.Fatal("token charged twice")
	}
}

func TestRateLimiterEvictionBound(t *testing.T) {
	rl := newRateLimiter(1, 1)
	now := time.Unix(1000, 0)
	for i := 0; i < maxTrackedClients+100; i++ {
		rl.allow(fmt.Sprintf("client-%d", i), now)
	}
	if n := len(rl.clients); n > maxTrackedClients {
		t.Fatalf("limiter tracks %d clients, cap is %d", n, maxTrackedClients)
	}
	// Stale buckets (fully refilled) are evicted in preference to live ones.
	rl.allow("live", now.Add(10*time.Second))
	for i := 0; i < maxTrackedClients; i++ {
		rl.allow(fmt.Sprintf("later-%d", i), now.Add(10*time.Second))
	}
	if n := len(rl.clients); n > maxTrackedClients {
		t.Fatalf("limiter tracks %d clients after second wave", n)
	}
}

func TestRateLimitEndToEnd(t *testing.T) {
	// 0.001 rps: refill over the test's lifetime is negligible, so exactly
	// burst requests succeed.
	s, ts := newTestService(t, WithRateLimit(0.001, 3))
	okCount, limited := 0, 0
	for i := 0; i < 6; i++ {
		resp := get(t, ts.URL+"/coreness?v=0")
		switch resp.StatusCode {
		case http.StatusOK:
			okCount++
		case http.StatusTooManyRequests:
			limited++
			if e := decodeError(t, resp); e.Code != codeRateLimited {
				t.Fatalf("429 code %q", e.Code)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if okCount != 3 || limited != 3 {
		t.Fatalf("ok=%d limited=%d, want 3/3", okCount, limited)
	}
	if got := s.rateLimited.Load(); got != 3 {
		t.Fatalf("rate-limited counter %d, want 3", got)
	}
	// Health probes bypass the limiter even for an exhausted client.
	for i := 0; i < 5; i++ {
		if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d with exhausted bucket", resp.StatusCode)
		}
		if resp := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz status %d with exhausted bucket", resp.StatusCode)
		}
	}
}

func TestMaxInFlightShedsHeavyKeepsReads(t *testing.T) {
	// Deterministic: fill the gate's semaphore directly instead of racing
	// real slow requests against each other.
	s, ts := newTestService(t, WithMaxInFlight(2))
	s.gate.sem <- struct{}{}
	s.gate.sem <- struct{}{}

	resp := post(t, ts.URL+"/edges/batch", `{"insert":[{"u":0,"v":1}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gated batch status %d, want 503", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != codeOverloaded {
		t.Fatalf("shed code %q, want %q", e.Code, codeOverloaded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if resp := post(t, ts.URL+"/edges/insert", "0 1\n"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gated insert status %d, want 503", resp.StatusCode)
	}
	// The cheap paths answer normally while the heavy ones shed.
	if resp := get(t, ts.URL+"/coreness?v=0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("single read status %d while gate full", resp.StatusCode)
	}
	if resp := get(t, ts.URL+"/stats"); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d while gate full", resp.StatusCode)
	}
	if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d while gate full", resp.StatusCode)
	}
	if got := s.loadShed.Load(); got != 2 {
		t.Fatalf("load-shed counter %d, want 2", got)
	}
	// Draining the gate restores the heavy endpoints.
	<-s.gate.sem
	<-s.gate.sem
	if resp := post(t, ts.URL+"/edges/batch", `{"insert":[{"u":0,"v":1}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d after gate drained", resp.StatusCode)
	}
}

func TestRequestTimeoutMiddleware(t *testing.T) {
	s, err := New(10, lds.DefaultParams(), WithRequestTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	slow := s.timeoutMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // block until the deadline cancels us
	}))
	rec := httptest.NewRecorder()
	slow.ServeHTTP(rec, httptest.NewRequest("GET", "/top?k=1", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("slow handler status %d, want 503", rec.Code)
	}
	var e errorResponse
	if err := json.NewDecoder(rec.Body).Decode(&e); err != nil || e.Code != codeTimeout {
		t.Fatalf("timeout body %+v (err %v)", e, err)
	}
	if got := s.timeouts.Load(); got != 1 {
		t.Fatalf("timeouts counter %d, want 1", got)
	}
	// A fast handler's buffered response flows through untouched.
	fast := s.timeoutMiddleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("X-Fast", "yes")
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, "body")
	}))
	rec = httptest.NewRecorder()
	fast.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusCreated || rec.Body.String() != "body" || rec.Header().Get("X-Fast") != "yes" {
		t.Fatalf("fast handler response mangled: %d %q", rec.Code, rec.Body.String())
	}
}

func TestReadyzDegradedThenReattach(t *testing.T) {
	// The acceptance path, deterministically: a permanent injected fsync
	// failure degrades the WAL; /readyz flips to 503 and /stats reports it
	// while reads and updates keep working; lifting the fault and calling
	// Reattach restores readiness. No sleeps — the background loop is
	// disabled and the transition is driven explicitly.
	inj := faultfs.New(nil)
	dir := t.TempDir()
	s, ts := newTestService(t, WithWAL(dir, wal.Options{
		FS:            inj,
		Sync:          wal.SyncAlways,
		AppendRetries: -1,
		ReattachEvery: -1,
	}))
	if resp := post(t, ts.URL+"/edges/insert", triangleBody()); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy insert status %d", resp.StatusCode)
	}
	if resp := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d while healthy", resp.StatusCode)
	}

	inj.FailSyncs(0, -1)
	if resp := post(t, ts.URL+"/edges/insert", "3 4\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert during fault status %d (updates must keep working)", resp.StatusCode)
	}
	resp := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d after durability loss, want 503", resp.StatusCode)
	}
	hr := decode[healthResponse](t, resp)
	if hr.Status != "degraded" || hr.Error == "" {
		t.Fatalf("readyz body %+v", hr)
	}
	// Liveness is unaffected; reads and further updates still answer.
	if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d while degraded", resp.StatusCode)
	}
	if resp := get(t, ts.URL+"/coreness?v=0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("read %d while degraded", resp.StatusCode)
	}
	if resp := post(t, ts.URL+"/edges/insert", "4 5\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert %d while degraded", resp.StatusCode)
	}
	st := decode[statsResponse](t, get(t, ts.URL+"/stats"))
	if st.Durability == nil || !st.Durability.Degraded || st.Durability.DroppedBatches == 0 {
		t.Fatalf("stats durability block %+v does not reflect degradation", st.Durability)
	}

	inj.Clear()
	if err := s.Reattach(); err != nil {
		t.Fatalf("Reattach after lifting the fault: %v", err)
	}
	if resp := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d after re-attach, want 200", resp.StatusCode)
	}
	st = decode[statsResponse](t, get(t, ts.URL+"/stats"))
	if st.Durability.Degraded || st.Durability.Reattaches != 1 || st.Durability.Err != "" {
		t.Fatalf("stats durability %+v after re-attach", st.Durability)
	}
}
