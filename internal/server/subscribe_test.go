package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kcore/internal/feed"
	"kcore/internal/lds"
)

// sseMessage is one parsed server-sent event.
type sseMessage struct {
	Event string
	Data  string
}

// readSSE reads the next SSE message, skipping comment (heartbeat) lines.
func readSSE(br *bufio.Reader) (sseMessage, error) {
	var m sseMessage
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return m, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if m.Event != "" || m.Data != "" {
				return m, nil
			}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "event: "):
			m.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			m.Data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// openStream starts a /subscribe stream and returns its reader plus a
// cancel that tears the request down.
func openStream(t *testing.T, base, params string) (*bufio.Reader, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/subscribe"+params, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("subscribe status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	t.Cleanup(func() { cancel(); resp.Body.Close() })
	return bufio.NewReader(resp.Body), cancel
}

// TestSubscribeStreamsCommittedEpochs checks the SSE happy path end to
// end: hello first, then per-epoch event messages whose values agree with
// epoch-pinned /coreness reads.
func TestSubscribeStreamsCommittedEpochs(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ts := newTestServer(t, WithShards(shards), WithRetainedEpochs(32))
			br, _ := openStream(t, ts.URL, "")

			m, err := readSSE(br)
			if err != nil || m.Event != "hello" {
				t.Fatalf("first message = %+v, err %v", m, err)
			}
			var hello sseHello
			if err := json.Unmarshal([]byte(m.Data), &hello); err != nil {
				t.Fatal(err)
			}

			post(t, ts.URL+"/edges/insert", triangleBody())
			post(t, ts.URL+"/edges/insert", "0 3\n1 3\n2 3\n")

			deadline := time.Now().Add(5 * time.Second)
			total := 0
			for total == 0 && time.Now().Before(deadline) {
				m, err := readSSE(br)
				if err != nil {
					t.Fatal(err)
				}
				if m.Event != "epoch" {
					t.Fatalf("unexpected message %+v", m)
				}
				var ep sseEpoch
				if err := json.Unmarshal([]byte(m.Data), &ep); err != nil {
					t.Fatal(err)
				}
				if ep.Epoch <= hello.Epoch {
					t.Fatalf("epoch %d not after hello epoch %d", ep.Epoch, hello.Epoch)
				}
				for _, ev := range ep.Events {
					if ev.Epoch != ep.Epoch {
						t.Fatalf("event epoch %d in message for epoch %d", ev.Epoch, ep.Epoch)
					}
					cr := decode[corenessResponse](t, get(t,
						fmt.Sprintf("%s/coreness?v=%d&epoch=%d", ts.URL, ev.Vertex, ep.Epoch)))
					if math.Float64bits(cr.Coreness) != math.Float64bits(ev.NewCore) {
						t.Fatalf("vertex %d epoch %d: stream new_core %v, pinned read %v",
							ev.Vertex, ep.Epoch, ev.NewCore, cr.Coreness)
					}
				}
				total += len(ep.Events)
			}
			if total == 0 {
				t.Fatal("no events streamed for two committed batches")
			}
		})
	}
}

// TestSubscribeFilterParams checks that a cross_k-filtered stream only
// carries threshold crossings, and that bad parameters are rejected.
func TestSubscribeFilterParams(t *testing.T) {
	ts := newTestServer(t, WithRetainedEpochs(8))
	const k = 2.0
	br, _ := openStream(t, ts.URL, fmt.Sprintf("?cross_k=%g", k))
	if m, err := readSSE(br); err != nil || m.Event != "hello" {
		t.Fatalf("hello: %+v, err %v", m, err)
	}

	// A 6-clique lifts its members' coreness well above 2.
	var b strings.Builder
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			fmt.Fprintf(&b, "%d %d\n", i, j)
		}
	}
	post(t, ts.URL+"/edges/insert", b.String())

	m, err := readSSE(br)
	if err != nil || m.Event != "epoch" {
		t.Fatalf("epoch message: %+v, err %v", m, err)
	}
	var ep sseEpoch
	if err := json.Unmarshal([]byte(m.Data), &ep); err != nil {
		t.Fatal(err)
	}
	if len(ep.Events) == 0 {
		t.Fatal("clique produced no crossing events")
	}
	for _, ev := range ep.Events {
		if (ev.OldCore < k) == (ev.NewCore < k) {
			t.Fatalf("non-crossing event leaked through cross_k: %+v", ev)
		}
	}

	for _, params := range []string{
		"?vertices=abc",
		"?vertices=100", // out of range: test server has 100 vertices
		"?vertices=,,",
		"?cross_k=-1",
		"?cross_k=nope",
		"?min_delta=0",
	} {
		resp := get(t, ts.URL+"/subscribe"+params)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", params, resp.StatusCode)
		}
	}
}

// TestSubscribeSubscriberCap checks the 503 past WithMaxSubscribers.
func TestSubscribeSubscriberCap(t *testing.T) {
	ts := newTestServer(t, WithMaxSubscribers(1))
	br, cancel := openStream(t, ts.URL, "")
	if m, err := readSSE(br); err != nil || m.Event != "hello" {
		t.Fatalf("hello: %+v, err %v", m, err)
	}
	resp := get(t, ts.URL+"/subscribe")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second stream status %d, want 503", resp.StatusCode)
	}
	var e errorResponse
	if err := jsonDecode(resp, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != codeOverloaded {
		t.Fatalf("error code %q", e.Code)
	}
	// Releasing the first stream frees the slot.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s2, err := http.Get(ts.URL + "/subscribe")
		if err != nil {
			t.Fatal(err)
		}
		if s2.StatusCode == http.StatusOK {
			s2.Body.Close()
			return
		}
		s2.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after disconnect (last status %d)", s2.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubscribeSlowClientGetsGap drives a 1-slot subscription with bursts
// published faster than the stream goroutine can drain and asserts the
// wire carries a well-formed gap message rather than stalling the
// publisher.
func TestSubscribeSlowClientGetsGap(t *testing.T) {
	s, err := New(100, lds.DefaultParams(), WithEventBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	br, _ := openStream(t, ts.URL, "")
	if m, err := readSSE(br); err != nil || m.Event != "hello" {
		t.Fatalf("hello: %+v, err %v", m, err)
	}

	// Publish bursts directly into the hub (the engine publishes the same
	// way, synchronously at commit) until the handler falls behind. Each
	// Publish returns immediately whether or not the subscriber keeps up —
	// that is the property under test.
	events := []feed.Event{{Vertex: 1, OldCore: 1, NewCore: 2}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		epoch := uint64(1000)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if st := s.hub.Stats(); st.Gaps > 0 {
				return
			}
			for i := 0; i < 100; i++ {
				epoch++
				events[0].Epoch = epoch
				s.hub.Publish(epoch, events)
			}
		}
	}()

	sawGap := false
	for !sawGap {
		m, err := readSSE(br)
		if err != nil {
			t.Fatalf("stream ended before gap: %v", err)
		}
		switch m.Event {
		case "epoch":
		case "gap":
			var g sseGap
			if err := json.Unmarshal([]byte(m.Data), &g); err != nil {
				t.Fatal(err)
			}
			if g.To < g.From || g.From == 0 {
				t.Fatalf("malformed gap %+v", g)
			}
			sawGap = true
		default:
			t.Fatalf("unexpected message %+v", m)
		}
	}
	<-done
	if st := s.hub.Stats(); st.Drops == 0 || st.Gaps == 0 {
		t.Fatalf("hub stats missed the overrun: %+v", st)
	}
}

// TestStatsMetricsFeedRaceWithLiveFollower hammers /stats and /metrics on
// both ends of a live replication pair while batches ship and a change
// feed streams — the -race proof that every stats surface those handlers
// read is safe against the apply and publish paths.
func TestStatsMetricsFeedRaceWithLiveFollower(t *testing.T) {
	primary, rep, pts, rts := newReplicatedPair(t, 200, 2)

	br, _ := openStream(t, pts.URL, "")
	if m, err := readSSE(br); err != nil || m.Event != "hello" {
		t.Fatalf("hello: %+v, err %v", m, err)
	}
	go func() {
		for {
			if _, err := readSSE(br); err != nil {
				return
			}
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, url := range []string{pts.URL + "/stats", pts.URL + "/metrics", rts.URL + "/stats", rts.URL + "/metrics"} {
		for c := 0; c < 2; c++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := http.Get(url)
					if err != nil {
						t.Error(err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}(url)
		}
	}

	applyRandomBatches(primary, 200, 30, 50, 7)
	waitReplicaEpoch(t, rep, primary.eng.Epoch())
	close(stop)
	wg.Wait()
}
