package server

// Overload protection and failure isolation for the HTTP surface: every
// error response shares one structured JSON shape, panics are contained
// to the request that caused them, hostile or runaway clients are rate
// limited per remote address, slow requests are cut off by a deadline,
// and the heavy endpoints shed load once too many requests are in
// flight. The middleware chain (outermost first) is
//
//	rate limit → deadline → panic recovery → mux (+ per-route gate)
//
// so a shed or limited request costs almost nothing, and a panic inside
// a deadline-bounded handler still produces a structured 500.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Error codes carried in the structured error body. Stable: clients and
// the smoke scripts match on these, not on the message text.
const (
	codeBadRequest  = "bad_request"
	codeTooLarge    = "too_large"
	codeEvicted     = "epoch_evicted"
	codeFuture      = "epoch_future"
	codeInternal    = "internal"
	codePanic       = "panic"
	codeRateLimited = "rate_limited"
	codeOverloaded  = "overloaded"
	codeTimeout     = "timeout"
	codeReadOnly    = "read_only"
	codeEpochBehind = "epoch_behind"
)

// errorResponse is the one JSON shape every error path answers with.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// writeError writes the structured JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = writeJSONBody(w, errorResponse{Error: msg, Code: code})
}

// --- panic recovery ---------------------------------------------------

// recoverMiddleware converts a handler panic into a structured 500 and a
// counter bump, leaving the engine and every other request untouched.
// http.ErrAbortHandler keeps its conventional meaning (abort silently).
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if err, ok := p.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(p)
			}
			s.panics.Add(1)
			// Best effort: if the handler already wrote a header this is a
			// no-op on the status, but the connection still terminates with
			// a well-formed body for the common panic-before-write case.
			writeError(w, http.StatusInternalServerError, codePanic,
				fmt.Sprintf("internal panic: %v", p))
		}()
		next.ServeHTTP(w, r)
	})
}

// --- per-client rate limiting -----------------------------------------

// maxTrackedClients bounds the rate limiter's memory: beyond this many
// distinct client addresses, stale buckets are evicted first and an
// arbitrary one second, so an address-spoofing client cannot grow the
// table without bound.
const maxTrackedClients = 4096

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a hand-rolled token-bucket limiter keyed by client
// address: tokens refill at rps up to burst, one request costs one token.
type rateLimiter struct {
	rps   float64
	burst float64

	mu      sync.Mutex
	clients map[string]*bucket
}

func newRateLimiter(rps float64, burstN int) *rateLimiter {
	burst := float64(burstN)
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rps: rps, burst: burst, clients: make(map[string]*bucket)}
}

// allow reports whether the client identified by key may proceed at time
// now, charging one token if so.
func (rl *rateLimiter) allow(key string, now time.Time) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.clients[key]
	if b == nil {
		if len(rl.clients) >= maxTrackedClients {
			rl.evictLocked(now)
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.clients[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rl.rps
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictLocked drops every bucket that has fully refilled (the client has
// been idle long enough that forgetting it changes nothing), then, if the
// table is still full, an arbitrary entry. Caller holds mu.
func (rl *rateLimiter) evictLocked(now time.Time) {
	full := time.Duration(rl.burst / rl.rps * float64(time.Second))
	for k, b := range rl.clients {
		if now.Sub(b.last) >= full {
			delete(rl.clients, k)
		}
	}
	if len(rl.clients) >= maxTrackedClients {
		for k := range rl.clients {
			delete(rl.clients, k)
			break
		}
	}
}

// clientKey extracts the rate-limit key from a request: the remote host
// without the ephemeral port, so one client is one bucket across
// connections.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// rateLimitMiddleware answers 429 with a structured body once a client
// exceeds its bucket. Health probes are exempt: an orchestrator hammering
// /readyz must never trip the limiter and mask the service as down.
func (s *Server) rateLimitMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" {
			next.ServeHTTP(w, r)
			return
		}
		if !s.rate.allow(clientKey(r), time.Now()) {
			s.rateLimited.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, codeRateLimited,
				"per-client request rate exceeded")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// --- max-in-flight load shedding --------------------------------------

// inflightGate sheds load on the heavy endpoints (updates and bulk
// reads) once more than cap(sem) requests are already in flight, so a
// saturating bulk client cannot queue unbounded work behind the engine
// while the cheap single-read path stays responsive.
type inflightGate struct {
	sem  chan struct{}
	shed func() // counter hook
}

func (g *inflightGate) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case g.sem <- struct{}{}:
			defer func() { <-g.sem }()
			next.ServeHTTP(w, r)
		default:
			g.shed()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, codeOverloaded,
				"too many requests in flight, retry later")
		}
	})
}

// --- per-request deadlines --------------------------------------------

// timeoutWriter buffers the handler's response so the timeout path can
// atomically decide who answers: the handler (buffer flushed to the real
// writer) or the deadline (structured 503, handler output discarded).
// This is http.TimeoutHandler's design with a JSON body instead of HTML.
type timeoutWriter struct {
	mu       sync.Mutex
	h        http.Header
	status   int
	buf      bytes.Buffer
	timedOut bool
}

func (tw *timeoutWriter) Header() http.Header {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.h
}

func (tw *timeoutWriter) WriteHeader(code int) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.status == 0 {
		tw.status = code
	}
}

func (tw *timeoutWriter) Write(p []byte) (int, error) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.timedOut {
		return 0, http.ErrHandlerTimeout
	}
	if tw.status == 0 {
		tw.status = http.StatusOK
	}
	return tw.buf.Write(p)
}

// flush copies the buffered response to the real writer. Returns false if
// the deadline already answered.
func (tw *timeoutWriter) flush(w http.ResponseWriter) bool {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.timedOut {
		return false
	}
	dst := w.Header()
	for k, v := range tw.h {
		dst[k] = v
	}
	if tw.status == 0 {
		tw.status = http.StatusOK
	}
	w.WriteHeader(tw.status)
	_, _ = w.Write(tw.buf.Bytes())
	return true
}

// expire marks the response as taken over by the deadline. Returns false
// if the handler finished first (flush won the race).
func (tw *timeoutWriter) expire() bool {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.status != 0 || tw.buf.Len() > 0 {
		// The handler already produced output; let it win to avoid
		// serving a 503 for work that actually completed. (flush still
		// runs when the handler goroutine finishes.)
		return false
	}
	tw.timedOut = true
	return true
}

// timeoutMiddleware bounds every request by s.reqTimeout: the handler
// runs with a context deadline and a buffered writer, and if the deadline
// fires before the handler writes anything the client gets a structured
// 503 while the handler's eventual output is discarded.
func (s *Server) timeoutMiddleware(next http.Handler) http.Handler {
	if s.reqTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/subscribe" {
			// A change-feed stream is expected to outlive any request
			// deadline, and the buffering timeoutWriter cannot flush SSE
			// frames as they are written.
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		tw := &timeoutWriter{h: make(http.Header)}
		done := make(chan struct{})
		panicChan := make(chan any, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					panicChan <- p
				}
			}()
			next.ServeHTTP(tw, r)
			close(done)
		}()
		select {
		case p := <-panicChan:
			panic(p)
		case <-done:
			tw.flush(w)
		case <-ctx.Done():
			if !tw.expire() {
				// Handler output raced the deadline and won; deliver it.
				<-done
				tw.flush(w)
				return
			}
			s.timeouts.Add(1)
			writeError(w, http.StatusServiceUnavailable, codeTimeout,
				fmt.Sprintf("request exceeded its %v deadline", s.reqTimeout))
		}
	})
}

// --- health endpoints --------------------------------------------------

// healthResponse is the JSON body of /healthz and /readyz.
type healthResponse struct {
	Status                string `json:"status"` // "ok", "ready", "degraded" or "syncing"
	Error                 string `json:"error,omitempty"`
	DegradedSinceUnixNano int64  `json:"degraded_since_unix_nano,omitempty"`
	DroppedBatches        uint64 `json:"dropped_batches,omitempty"`
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, healthResponse{Status: "ok"})
}

// handleReadyz is readiness: 200 while the service meets its durability
// contract, 503 with the failure detail while the WAL is degraded (reads
// and updates still work, but commits are not durable — an orchestrator
// should route traffic elsewhere if it can). On a replica, readiness
// additionally requires a synced replication stream: a replica that is
// bootstrapping (or cut off from the primary mid-reconnect) answers 503
// "syncing" so it is not routed read traffic while stale.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.follower != nil && !s.follower.Synced() {
		st := s.follower.Stats()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = writeJSONBody(w, healthResponse{Status: "syncing", Error: st.Err})
		return
	}
	if s.wal == nil || !s.wal.Degraded() {
		writeJSON(w, healthResponse{Status: "ready"})
		return
	}
	st := s.wal.Stats()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = writeJSONBody(w, healthResponse{
		Status:                "degraded",
		Error:                 st.Err,
		DegradedSinceUnixNano: st.DegradedSinceUnixNano,
		DroppedBatches:        st.DroppedBatches,
	})
}
