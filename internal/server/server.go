// Package server exposes a Decomposition-style k-core service over HTTP —
// the deployment shape the paper motivates in §1: a read-dominated,
// latency-sensitive query path (social networks, search) concurrent with a
// batched update path.
//
// Endpoints:
//
//	GET  /coreness?v=<id>[&mode=linearizable|nonsync|blocking]
//	GET  /top?k=<n>                  — top-k vertices by coreness estimate
//	GET  /stats                      — graph and batch counters
//	POST /edges/insert               — body: "u v" per line; one batch
//	POST /edges/delete               — body: "u v" per line; one batch
//
// Reads are served directly from the CPLDS read protocol and never block
// on updates; update requests are serialized through a single updater
// mutex, preserving the one-updater contract.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"kcore/internal/apps"
	"kcore/internal/cplds"
	"kcore/internal/graph"
	"kcore/internal/lds"
)

// Server is an HTTP k-core query/update service.
type Server struct {
	c *cplds.CPLDS

	updateMu sync.Mutex // serializes update batches (one-updater contract)

	inserted atomic.Int64
	deleted  atomic.Int64
	reads    atomic.Int64
}

// New creates a service over n vertices.
func New(n int, p lds.Params) *Server {
	return &Server{c: cplds.New(n, p)}
}

// InsertBatch applies an insertion batch directly (bulk loading at
// startup), with the same accounting as the HTTP endpoint.
func (s *Server) InsertBatch(edges []graph.Edge) int {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	applied := s.c.InsertBatch(edges)
	s.inserted.Add(int64(applied))
	return applied
}

// Handler returns the HTTP handler for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /coreness", s.handleCoreness)
	mux.HandleFunc("GET /top", s.handleTop)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /edges/insert", s.handleUpdate(true))
	mux.HandleFunc("POST /edges/delete", s.handleUpdate(false))
	return mux
}

// corenessResponse is the JSON body of /coreness.
type corenessResponse struct {
	Vertex   uint32  `json:"vertex"`
	Coreness float64 `json:"coreness"`
	Mode     string  `json:"mode"`
	Batch    uint64  `json:"batch"`
}

func (s *Server) handleCoreness(w http.ResponseWriter, r *http.Request) {
	v64, err := strconv.ParseUint(r.URL.Query().Get("v"), 10, 32)
	if err != nil || int(v64) >= s.c.NumVertices() {
		http.Error(w, "bad or out-of-range vertex id", http.StatusBadRequest)
		return
	}
	v := uint32(v64)
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "linearizable"
	}
	var est float64
	switch mode {
	case "linearizable":
		est = s.c.Read(v)
	case "nonsync":
		est = s.c.ReadNonSync(v)
	case "blocking":
		est = s.c.ReadSync(v)
	default:
		http.Error(w, "unknown mode (want linearizable, nonsync or blocking)", http.StatusBadRequest)
		return
	}
	s.reads.Add(1)
	writeJSON(w, corenessResponse{Vertex: v, Coreness: est, Mode: mode, Batch: s.c.BatchNumber()})
}

// topResponse is the JSON body of /top.
type topResponse struct {
	K        int      `json:"k"`
	Vertices []uint32 `json:"vertices"`
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 {
		http.Error(w, "bad k", http.StatusBadRequest)
		return
	}
	n := s.c.NumVertices()
	scores := make([]float64, n)
	for v := 0; v < n; v++ {
		scores[v] = s.c.Read(uint32(v))
	}
	s.reads.Add(int64(n))
	writeJSON(w, topResponse{K: k, Vertices: apps.TopSpreaders(scores, k)})
}

// statsResponse is the JSON body of /stats.
type statsResponse struct {
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	Batches  uint64 `json:"batches"`
	Inserted int64  `json:"edges_inserted"`
	Deleted  int64  `json:"edges_deleted"`
	Reads    int64  `json:"reads_served"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.updateMu.Lock() // NumEdges is quiescent-only
	edges := s.c.Graph().NumEdges()
	s.updateMu.Unlock()
	writeJSON(w, statsResponse{
		Vertices: s.c.NumVertices(),
		Edges:    edges,
		Batches:  s.c.BatchNumber(),
		Inserted: s.inserted.Load(),
		Deleted:  s.deleted.Load(),
		Reads:    s.reads.Load(),
	})
}

// updateResponse is the JSON body of the update endpoints.
type updateResponse struct {
	Applied int    `json:"applied"`
	Batch   uint64 `json:"batch"`
}

func (s *Server) handleUpdate(insert bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		edges, _, err := graph.ReadEdgeList(r.Body)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad edge list: %v", err), http.StatusBadRequest)
			return
		}
		s.updateMu.Lock()
		var applied int
		if insert {
			applied = s.c.InsertBatch(edges)
			s.inserted.Add(int64(applied))
		} else {
			applied = s.c.DeleteBatch(edges)
			s.deleted.Add(int64(applied))
		}
		batch := s.c.BatchNumber()
		s.updateMu.Unlock()
		writeJSON(w, updateResponse{Applied: applied, Batch: batch})
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
