// Package server exposes a Decomposition-style k-core service over HTTP —
// the deployment shape the paper motivates in §1: a read-dominated,
// latency-sensitive query path (social networks, search) concurrent with a
// batched update path.
//
// Endpoints:
//
//	GET  /coreness?v=<id>[&mode=...][&epoch=<e>][&min_epoch=<e>]
//	POST /coreness/bulk              — JSON vertex list, one consistent cut
//	GET  /top?k=<n>[&epoch=<e>][&min_epoch=<e>]
//	GET  /subscribe                  — SSE coreness change feed (subscribe.go)
//	GET  /stats                      — graph, batch and replication counters
//	GET  /metrics                    — Prometheus text exposition (metrics.go)
//	GET  /healthz                    — liveness (always 200 while serving)
//	GET  /readyz                     — readiness (503 while WAL degraded or
//	                                   a replica is not yet synced)
//	POST /edges/insert               — body: "u v" per line; one batch
//	POST /edges/delete               — body: "u v" per line; one batch
//	POST /edges/batch                — JSON mixed batch (see batchRequest)
//	POST /snapshot                   — trigger a durability snapshot
//
// Every error path answers with one structured JSON shape,
// {"error": <message>, "code": <stable-code>}, and the service carries
// its own overload protection (per-client rate limiting, per-request
// deadlines, a max-in-flight gate on the heavy endpoints, panic
// isolation) — see middleware.go.
//
// # Replication
//
// WithReplicationListen serves the batch-log shipping stream on a second
// listener; any number of follower servers (WithReplicationSource) each
// bootstrap from it and then apply the primary's committed batches,
// serving the full read surface from byte-identical state. On a follower
// every mutating endpoint answers 403 with the stable code "read_only".
//
// Because a follower's epochs advance exactly as the primary's did, an
// epoch observed on one server is meaningful on the other. A client that
// has seen epoch e (any response's "epoch" field) passes it as a floor —
// `?min_epoch=e` on /coreness and /top, "min_epoch" in the bulk body —
// and the server either serves at an epoch >= e or, if still behind the
// floor after WithMinEpochWait, sheds the request with 412 and the stable
// code "epoch_behind". Bouncing between primary and replicas then never
// reads time backwards.
//
// Reads are served directly from the CPLDS read protocol of the vertex's
// owning shard and never block on updates. Update requests from concurrent
// clients are handed to the sharded engine's batch-coalescing scheduler,
// which folds them into per-shard sub-batches and applies sub-batches of
// distinct shards in parallel.
//
// Every read response carries an "epoch" field: the committed batch
// boundary (cross-shard, when sharded) the response was served from.
// Multi-vertex responses (/coreness/bulk, /top) are epoch-pinned — all
// values belong to that single boundary, never a torn mix of concurrent
// batches — so two responses reporting the same epoch observed the
// identical committed state. Single-vertex /coreness responses report the
// boundary the linearizable read belongs to (for the nonsync and blocking
// modes the field is the current committed epoch, which those protocols do
// not pin).
//
// Read endpoints also accept a *requested* epoch (`?epoch=` on /coreness
// and /top, the "epoch" field on /coreness/bulk): the response is then
// served exactly at that committed boundary — even a retired one, within
// the engine's retention window (WithRetainedEpochs) — so paginated or
// multi-request clients can read a frozen cut across requests. The epoch
// is pinned for the duration of the request, so a served response is never
// torn by concurrent eviction. Requests for epochs that aged out of the
// window fail with 410 Gone; epochs not committed yet fail with 404.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"kcore/internal/apps"
	"kcore/internal/feed"
	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/mvcc"
	"kcore/internal/replica"
	"kcore/internal/shard"
	"kcore/internal/wal"
)

// DefaultMaxBatchEdges bounds the total number of edges accepted in one
// /edges/batch request unless overridden with WithMaxBatchEdges.
const DefaultMaxBatchEdges = 1 << 20

// DefaultRetainedEpochs is the default multi-version retention depth:
// how many retired epochs stay servable through the requested-epoch read
// forms. Override with WithRetainedEpochs.
const DefaultRetainedEpochs = mvcc.DefaultRetain

// Option configures a Server.
type Option func(*Server)

// WithShards sets the number of engine shards (default 1).
func WithShards(p int) Option {
	return func(s *Server) { s.shards = p }
}

// WithMaxBatchEdges caps the total edges accepted per /edges/batch request.
func WithMaxBatchEdges(max int) Option {
	return func(s *Server) { s.maxBatchEdges = max }
}

// WithRetainedEpochs sets the multi-version retention depth: the n most
// recent retired epochs stay servable through `?epoch=` / the bulk "epoch"
// field. 0 disables requested-epoch reads (only the current epoch is
// servable); negative values are clamped to 0.
func WithRetainedEpochs(n int) Option {
	return func(s *Server) { s.retained = n }
}

// WithWAL makes the service durable: applied batches are write-ahead
// logged to dir and New recovers the pre-crash state from dir before
// serving. The /stats response then carries a "durability" block.
func WithWAL(dir string, o wal.Options) Option {
	return func(s *Server) {
		s.walDir = dir
		s.walOpts = o
	}
}

// WithRateLimit enables per-client token-bucket rate limiting: each
// remote address may issue rps requests/second sustained with the given
// burst headroom; excess requests answer 429. rps <= 0 disables limiting
// (the default).
func WithRateLimit(rps float64, burst int) Option {
	return func(s *Server) {
		if rps > 0 {
			s.rate = newRateLimiter(rps, burst)
		}
	}
}

// WithMaxInFlight caps concurrently executing heavy requests (updates
// and bulk reads): request n+1 answers 503 immediately instead of
// queueing. n <= 0 disables the gate (the default). Single-vertex reads,
// stats and health probes are never gated.
func WithMaxInFlight(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.gate = &inflightGate{sem: make(chan struct{}, n)}
		}
	}
}

// WithRequestTimeout bounds every request by d: a handler that has not
// written its response within d answers 503 with code "timeout". d <= 0
// disables deadlines (the default).
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.reqTimeout = d }
}

// DefaultMinEpochWait is how long an epoch-floor read (min_epoch) waits
// for the engine to catch up before shedding with 412. Override with
// WithMinEpochWait.
const DefaultMinEpochWait = 2 * time.Second

// WithReplicationListen makes this server a replication primary: the
// batch-log shipping stream is served on its own listener at addr
// (host:port; ":0" picks a free port, see ReplicationAddr). Composes with
// WithWAL. Follower servers point WithReplicationSource here.
func WithReplicationListen(addr string) Option {
	return func(s *Server) { s.replListen = addr }
}

// WithReplicationSource makes this server a read-only replica of the
// primary whose replication listener is at addr: New blocks until the
// first bootstrap has been applied, every mutating endpoint answers 403
// "read_only", and the read surface serves the primary's replicated
// state. Incompatible with WithWAL (durability belongs to the primary; a
// restarted replica re-bootstraps).
func WithReplicationSource(addr string) Option {
	return func(s *Server) { s.replSource = addr }
}

// WithReplicationOptions overrides the replication transport tuning
// (heartbeat and tail buffer for the primary, timeouts and reconnect
// backoff for a replica).
func WithReplicationOptions(feed replica.FeederOptions, follow replica.FollowerOptions) Option {
	return func(s *Server) {
		s.replFeedOpts = feed
		s.replFolOpts = follow
	}
}

// WithMinEpochWait bounds how long an epoch-floor read (min_epoch) may
// wait for the engine to reach the floor before answering 412
// "epoch_behind". d <= 0 sheds immediately when behind.
func WithMinEpochWait(d time.Duration) Option {
	return func(s *Server) { s.minEpochWait = d }
}

// WithMaxSubscribers caps concurrent /subscribe connections: the next
// subscription answers 503 "overloaded". n <= 0 means unlimited (the
// default).
func WithMaxSubscribers(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxSubs = n
		}
	}
}

// WithEventBuffer sets the per-subscriber delivery buffer of /subscribe
// streams, in per-epoch deliveries (default feed.DefaultBuffer). A
// subscriber further behind than the buffer receives a gap marker instead
// of the missed events. n <= 0 keeps the default.
func WithEventBuffer(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.feedBuffer = n
		}
	}
}

// WithFeedHeartbeat sets how often an idle /subscribe stream emits an SSE
// comment line (default DefaultFeedHeartbeat). d <= 0 keeps the default.
func WithFeedHeartbeat(d time.Duration) Option {
	return func(s *Server) { s.feedHeartbeat = d }
}

// Server is an HTTP k-core query/update service.
type Server struct {
	eng *shard.Engine
	wal *wal.Manager // nil without WithWAL

	shards        int
	maxBatchEdges int
	retained      int
	walDir        string
	walOpts       wal.Options

	rate       *rateLimiter  // nil = no rate limiting
	gate       *inflightGate // nil = no in-flight cap
	reqTimeout time.Duration // <= 0 = no per-request deadline

	// Replication role (nil fields when off; at most one role is set).
	replListen   string
	replSource   string
	replFeedOpts replica.FeederOptions
	replFolOpts  replica.FollowerOptions
	minEpochWait time.Duration
	feeder       *replica.Feeder
	feederSrv    *http.Server
	feederLn     net.Listener
	tailSrc      *wal.TailSource // batch tee when feeding without a WAL
	follower     *replica.Follower

	// Change feed (/subscribe). The hub always exists — an idle hub costs
	// one atomic load per commit — so subscriptions work in every
	// configuration, including on a replica.
	hub           *feed.Hub
	maxSubs       int           // 0 = unlimited
	feedBuffer    int           // 0 = feed.DefaultBuffer
	feedHeartbeat time.Duration // 0 = DefaultFeedHeartbeat

	metrics *metrics

	inserted atomic.Int64
	deleted  atomic.Int64
	reads    atomic.Int64

	rateLimited atomic.Int64
	loadShed    atomic.Int64
	timeouts    atomic.Int64
	panics      atomic.Int64
}

// New creates a service over n vertices. It fails only when WithWAL is set
// and the log directory cannot be opened or recovered.
func New(n int, p lds.Params, opts ...Option) (*Server, error) {
	s := &Server{
		shards:        1,
		maxBatchEdges: DefaultMaxBatchEdges,
		retained:      DefaultRetainedEpochs,
		minEpochWait:  DefaultMinEpochWait,
		metrics:       newMetrics(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.shards < 1 {
		s.shards = 1
	}
	if s.retained < 0 {
		s.retained = 0
	}
	if s.replListen != "" && s.replSource != "" {
		return nil, errors.New("server: WithReplicationListen and WithReplicationSource are mutually exclusive")
	}
	if s.replSource != "" && s.walDir != "" {
		return nil, errors.New("server: WithWAL on a replica is unsupported (durability belongs to the primary)")
	}
	s.eng = shard.New(n, s.shards, p)
	if s.walDir != "" {
		// Recovery must precede retention setup: the multi-version vector
		// log initializes from the recovered per-shard epochs.
		m, err := wal.Open(s.walDir, s.eng, s.walOpts)
		if err != nil {
			return nil, fmt.Errorf("server: opening WAL: %w", err)
		}
		s.wal = m
	}
	s.eng.SetRetainedEpochs(s.retained)
	// Attach the change feed before the engine serves traffic. On a
	// replica the feed fires as replicated batches apply.
	s.hub = feed.NewHub(s.maxSubs)
	s.eng.SetEventHub(s.hub)
	if s.replListen != "" {
		var src wal.Source
		if s.wal != nil {
			src = s.wal
		} else {
			s.tailSrc = wal.NewTailSource(s.eng)
			src = s.tailSrc
		}
		s.feeder = replica.NewFeeder(src, s.replFeedOpts)
		ln, err := net.Listen("tcp", s.replListen)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("server: replication listener: %w", err)
		}
		s.feederLn = ln
		s.feederSrv = &http.Server{Handler: s.feeder.Handler()}
		go s.feederSrv.Serve(ln)
	}
	if s.replSource != "" {
		fol, err := replica.StartFollower(s.eng, s.replSource, s.replFolOpts)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.follower = fol
	}
	return s, nil
}

// ReadOnly reports whether this server is a replica (WithReplicationSource).
func (s *Server) ReadOnly() bool { return s.follower != nil }

// ReplicationAddr returns the bound replication listener address
// (WithReplicationListen; useful with ":0"), or "" when not a primary.
func (s *Server) ReplicationAddr() string {
	if s.feederLn == nil {
		return ""
	}
	return s.feederLn.Addr().String()
}

// Engine exposes the underlying sharded engine (tests, bulk tooling).
func (s *Server) Engine() *shard.Engine { return s.eng }

// Snapshot checkpoints the engine state to the WAL directory, truncating
// the log's replay tail. It requires WithWAL.
func (s *Server) Snapshot() error {
	if s.wal == nil {
		return errors.New("server: Snapshot requires WithWAL")
	}
	return s.wal.Snapshot()
}

// Close stops replication (either role) and flushes and closes the
// write-ahead log. Idempotent and safe to call concurrently with
// Snapshot; a closed replica keeps serving its last applied state.
func (s *Server) Close() error {
	if s.follower != nil {
		s.follower.Close()
	}
	if s.feederSrv != nil {
		s.feederSrv.Close() // also closes feederLn
	}
	if s.tailSrc != nil {
		s.tailSrc.Close()
	}
	if s.hub != nil {
		s.hub.Close() // ends every /subscribe stream
	}
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// Reattach attempts to restore durability after the WAL degraded (see
// wal.Manager.Reattach). It requires WithWAL.
func (s *Server) Reattach() error {
	if s.wal == nil {
		return errors.New("server: Reattach requires WithWAL")
	}
	return s.wal.Reattach()
}

// InsertBatch applies an insertion batch directly (bulk loading at
// startup), with the same accounting as the HTTP endpoint.
func (s *Server) InsertBatch(edges []graph.Edge) int {
	applied := s.eng.Insert(edges)
	s.inserted.Add(int64(applied))
	return applied
}

// Handler returns the HTTP handler for the service: the route mux with
// every endpoint instrumented for /metrics, the heavy endpoints behind
// the in-flight gate, the mutating endpoints behind the read-only guard,
// wrapped (innermost to outermost) in panic recovery, the per-request
// deadline and the per-client rate limiter.
func (s *Server) Handler() http.Handler {
	heavy := func(h http.Handler) http.Handler {
		if s.gate == nil {
			return h
		}
		return s.gate.wrap(h)
	}
	if s.gate != nil {
		s.gate.shed = func() { s.loadShed.Add(1) }
	}
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.Handler) {
		mux.Handle(pattern, s.metrics.instrument(name, h))
	}
	route("GET /coreness", "/coreness", http.HandlerFunc(s.handleCoreness))
	route("POST /coreness/bulk", "/coreness/bulk", heavy(http.HandlerFunc(s.handleCorenessBulk)))
	route("GET /top", "/top", heavy(http.HandlerFunc(s.handleTop)))
	route("GET /stats", "/stats", http.HandlerFunc(s.handleStats))
	route("GET /healthz", "/healthz", http.HandlerFunc(s.handleHealthz))
	route("GET /readyz", "/readyz", http.HandlerFunc(s.handleReadyz))
	route("POST /edges/insert", "/edges/insert", heavy(s.readOnlyGuard(s.handleUpdate(true))))
	route("POST /edges/delete", "/edges/delete", heavy(s.readOnlyGuard(s.handleUpdate(false))))
	route("POST /edges/batch", "/edges/batch", heavy(s.readOnlyGuard(http.HandlerFunc(s.handleBatch))))
	route("POST /snapshot", "/snapshot", s.readOnlyGuard(http.HandlerFunc(s.handleSnapshot)))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// /subscribe streams: like /metrics, registered without the metrics
	// instrumentation — its buffering statusWriter cannot flush SSE frames
	// as they are written (and a long-lived stream would skew the latency
	// histograms). The timeout middleware also exempts this path.
	mux.HandleFunc("GET /subscribe", s.handleSubscribe)
	var h http.Handler = mux
	h = s.recoverMiddleware(h)
	h = s.timeoutMiddleware(h)
	if s.rate != nil {
		h = s.rateLimitMiddleware(h)
	}
	return h
}

// readOnlyGuard rejects mutating requests on a replica with the stable
// "read_only" code: a replica's state may advance only by applying the
// primary's batch stream, never by local writes (which would fork it from
// the primary permanently — there is no reconciliation).
func (s *Server) readOnlyGuard(next http.Handler) http.Handler {
	if s.follower == nil && s.replSource == "" {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusForbidden, codeReadOnly,
			"this server is a read replica; send writes to the primary")
	})
}

// snapshotResponse is the JSON body of POST /snapshot.
type snapshotResponse struct {
	Epoch uint64 `json:"epoch"`
}

// handleSnapshot triggers a durability snapshot (an admin operation: it
// checkpoints the engine and truncates the log's replay tail).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.wal == nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "snapshots require a WAL (-wal)")
		return
	}
	if err := s.wal.Snapshot(); err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	writeJSON(w, snapshotResponse{Epoch: s.eng.Epoch()})
}

// corenessResponse is the JSON body of /coreness. Epoch is the committed
// batch boundary the value belongs to (current epoch for the unpinned
// nonsync/blocking modes; the requested boundary for retained reads).
type corenessResponse struct {
	Vertex   uint32  `json:"vertex"`
	Coreness float64 `json:"coreness"`
	Mode     string  `json:"mode"`
	Batch    uint64  `json:"batch"`
	Epoch    uint64  `json:"epoch"`
}

// writeEpochError maps a requested-epoch read failure to its HTTP status:
// 410 Gone once the epoch aged out of the retention window, 404 for an
// epoch that has not committed yet.
func writeEpochError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, mvcc.ErrEvicted):
		writeError(w, http.StatusGone, codeEvicted, err.Error())
	case errors.Is(err, mvcc.ErrFuture):
		writeError(w, http.StatusNotFound, codeFuture, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
	}
}

// epochParam extracts the optional requested epoch from the query string,
// answering 400 itself on a malformed value (bad reports that case).
func epochParam(w http.ResponseWriter, r *http.Request) (epoch uint64, present, bad bool) {
	raw := r.URL.Query().Get("epoch")
	if raw == "" {
		return 0, false, false
	}
	epoch, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad epoch")
		return 0, true, true
	}
	return epoch, true, false
}

// minEpochParam extracts the optional epoch floor from the query string,
// answering 400 itself on a malformed value (bad reports that case).
func minEpochParam(w http.ResponseWriter, r *http.Request) (floor uint64, bad bool) {
	raw := r.URL.Query().Get("min_epoch")
	if raw == "" {
		return 0, false
	}
	floor, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad min_epoch")
		return 0, true
	}
	return floor, false
}

// epochBehindResponse is the structured 412 body of an epoch-floor read
// that timed out: the client learns how far behind the server is and can
// retry here or fall back to the primary.
type epochBehindResponse struct {
	Error    string `json:"error"`
	Code     string `json:"code"`
	Epoch    uint64 `json:"epoch"`     // server's committed epoch
	MinEpoch uint64 `json:"min_epoch"` // the requested floor
}

// awaitEpochFloor blocks until the engine's committed epoch reaches
// floor, the wait budget (WithMinEpochWait) runs out, or the client goes
// away. On timeout it answers 412 "epoch_behind" and reports false. The
// fast path — floor already committed, which is always the case on a
// primary serving a floor it issued — costs one atomic load.
func (s *Server) awaitEpochFloor(w http.ResponseWriter, r *http.Request, floor uint64) bool {
	startEpoch := s.eng.Epoch()
	if floor == 0 || startEpoch >= floor {
		return true
	}
	start := time.Now()
	deadline := start.Add(s.minEpochWait)
	for s.minEpochWait > 0 {
		select {
		case <-r.Context().Done():
			return false // client gone; nothing to answer
		case <-time.After(time.Millisecond):
		}
		if s.eng.Epoch() >= floor {
			return true
		}
		if !time.Now().Before(deadline) {
			break
		}
	}
	w.Header().Set("Retry-After", retryAfterSeconds(floor, startEpoch, s.eng.Epoch(), time.Since(start), s.minEpochWait))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusPreconditionFailed)
	_ = writeJSONBody(w, epochBehindResponse{
		Error:    fmt.Sprintf("committed epoch %d is behind the requested floor %d", s.eng.Epoch(), floor),
		Code:     codeEpochBehind,
		Epoch:    s.eng.Epoch(),
		MinEpoch: floor,
	})
	return false
}

// retryAfterSeconds derives the 412 Retry-After hint from the progress
// observed during the wait: if the engine advanced at all, extrapolate the
// remaining gap at that rate; if it made no progress (a paused feed, a
// partitioned follower), fall back to the configured wait budget — the
// soonest a retry could plausibly see a different outcome. Clamped to
// [1, 60] so a stalled replica never tells routers to hammer it or to
// give up for minutes.
func retryAfterSeconds(floor, startEpoch, nowEpoch uint64, waited, budget time.Duration) string {
	if nowEpoch >= floor {
		// The floor was crossed between the wait deadline and this call;
		// the 412 is already committed, so just tell the client to retry
		// immediately (and keep the gap arithmetic below underflow-free).
		return "1"
	}
	var secs int64
	if nowEpoch > startEpoch && waited > 0 {
		gap := floor - nowEpoch
		perEpoch := waited / time.Duration(nowEpoch-startEpoch)
		secs = int64((time.Duration(gap)*perEpoch + time.Second - 1) / time.Second)
	} else {
		secs = int64((budget + time.Second - 1) / time.Second)
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.FormatInt(secs, 10)
}

// serveAt runs read against the requested epoch with the epoch pinned for
// the duration, so a response that starts serving cannot be torn by
// concurrent eviction; on failure it writes the mapped HTTP error and
// reports false. When the epoch cannot be pinned but is still the current
// one — retention disabled, where only the current epoch is servable —
// the read proceeds unpinned: ReadManyAt/ReadAllAt re-validate and fail
// with the typed errors if a commit overtakes them.
func (s *Server) serveAt(w http.ResponseWriter, epoch uint64, read func() error) bool {
	err := s.eng.PinEpoch(epoch)
	switch {
	case err == nil:
		defer s.eng.UnpinEpoch(epoch)
		err = read()
	case errors.Is(err, mvcc.ErrEvicted) && s.eng.CheckEpoch(epoch) == nil:
		err = read()
	}
	if err != nil {
		writeEpochError(w, err)
		return false
	}
	return true
}

func (s *Server) handleCoreness(w http.ResponseWriter, r *http.Request) {
	v64, err := strconv.ParseUint(r.URL.Query().Get("v"), 10, 32)
	if err != nil || int(v64) >= s.eng.NumVertices() {
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad or out-of-range vertex id")
		return
	}
	v := uint32(v64)
	if floor, bad := minEpochParam(w, r); bad {
		return
	} else if !s.awaitEpochFloor(w, r, floor) {
		return
	}
	mode := r.URL.Query().Get("mode")
	if epoch, ok, bad := epochParam(w, r); ok {
		if bad {
			return
		}
		if mode != "" && mode != "linearizable" {
			writeError(w, http.StatusBadRequest, codeBadRequest, "mode is incompatible with a requested epoch")
			return
		}
		vs, out := [1]uint32{v}, [1]float64{}
		if !s.serveAt(w, epoch, func() error {
			return s.eng.ReadManyAt(vs[:], out[:], epoch)
		}) {
			return
		}
		s.reads.Add(1)
		writeJSON(w, corenessResponse{Vertex: v, Coreness: out[0], Mode: "retained", Batch: s.eng.Batches(), Epoch: epoch})
		return
	}
	if mode == "" {
		mode = "linearizable"
	}
	var est float64
	var epoch uint64
	switch mode {
	case "linearizable":
		est, epoch = s.eng.ReadPinned(v)
	case "nonsync":
		est, epoch = s.eng.ReadNonSync(v), s.eng.Epoch()
	case "blocking":
		est, epoch = s.eng.ReadSync(v), s.eng.Epoch()
	default:
		writeError(w, http.StatusBadRequest, codeBadRequest, "unknown mode (want linearizable, nonsync or blocking)")
		return
	}
	s.reads.Add(1)
	writeJSON(w, corenessResponse{Vertex: v, Coreness: est, Mode: mode, Batch: s.eng.Batches(), Epoch: epoch})
}

// bulkRequest is the JSON body of POST /coreness/bulk: the vertices to
// read and, optionally, the committed epoch to read them at (absent =
// latest) and/or an epoch floor the server must have reached before
// serving (see the package comment's replication section). The response
// values are epoch-pinned: all estimates belong to the single committed
// batch boundary reported in the response.
type bulkRequest struct {
	Vertices []uint32 `json:"vertices"`
	Epoch    *uint64  `json:"epoch"`
	MinEpoch *uint64  `json:"min_epoch"`
}

// bulkResponse is the JSON body of the bulk coreness endpoint. Coreness[i]
// is the estimate of Vertices[i] at Epoch.
type bulkResponse struct {
	Vertices []uint32  `json:"vertices"`
	Coreness []float64 `json:"coreness"`
	Epoch    uint64    `json:"epoch"`
}

func (s *Server) handleCorenessBulk(w http.ResponseWriter, r *http.Request) {
	// The vertex-count cap also bounds decode memory, as in /edges/batch.
	body := http.MaxBytesReader(w, r.Body, int64(s.maxBatchEdges)*16+4096)
	var req bulkRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
				fmt.Sprintf("bulk body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad bulk JSON: %v", err))
		return
	}
	if len(req.Vertices) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "empty vertex list")
		return
	}
	if len(req.Vertices) > s.maxBatchEdges {
		writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
			fmt.Sprintf("bulk read of %d vertices exceeds limit %d", len(req.Vertices), s.maxBatchEdges))
		return
	}
	n := uint32(s.eng.NumVertices())
	for _, v := range req.Vertices {
		if v >= n {
			writeError(w, http.StatusBadRequest, codeBadRequest,
				fmt.Sprintf("vertex %d out of range, have %d vertices", v, n))
			return
		}
	}
	if req.MinEpoch != nil && !s.awaitEpochFloor(w, r, *req.MinEpoch) {
		return
	}
	out := make([]float64, len(req.Vertices))
	var epoch uint64
	if req.Epoch != nil {
		epoch = *req.Epoch
		if !s.serveAt(w, epoch, func() error {
			return s.eng.ReadManyAt(req.Vertices, out, epoch)
		}) {
			return
		}
	} else {
		epoch = s.eng.ReadManyPinned(req.Vertices, out)
	}
	s.reads.Add(int64(len(req.Vertices)))
	writeJSON(w, bulkResponse{Vertices: req.Vertices, Coreness: out, Epoch: epoch})
}

// topResponse is the JSON body of /top. The ranking is computed over the
// single committed cut identified by Epoch.
type topResponse struct {
	K        int      `json:"k"`
	Vertices []uint32 `json:"vertices"`
	Epoch    uint64   `json:"epoch"`
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 {
		writeError(w, http.StatusBadRequest, codeBadRequest, "bad k")
		return
	}
	if floor, bad := minEpochParam(w, r); bad {
		return
	} else if !s.awaitEpochFloor(w, r, floor) {
		return
	}
	n := s.eng.NumVertices()
	scores := make([]float64, n)
	var epoch uint64
	if e, ok, bad := epochParam(w, r); ok {
		if bad {
			return
		}
		epoch = e
		if !s.serveAt(w, epoch, func() error {
			return s.eng.ReadAllAt(scores, epoch)
		}) {
			return
		}
	} else {
		epoch = s.eng.ReadAllPinned(scores)
	}
	s.reads.Add(int64(n))
	writeJSON(w, topResponse{K: k, Vertices: apps.TopSpreaders(scores, k), Epoch: epoch})
}

// statsResponse is the JSON body of /stats. ShardLoad carries the per-shard
// load breakdown (owned vertices, edges, applied batches) that shard
// rebalancing decisions are driven by.
type statsResponse struct {
	Vertices    int           `json:"vertices"`
	Shards      int           `json:"shards"`
	Edges       int64         `json:"edges"`
	Batches     uint64        `json:"batches"`
	Epoch       uint64        `json:"epoch"`
	Retained    int           `json:"retained_epochs"`
	OldestEpoch uint64        `json:"oldest_epoch"`
	Inserted    int64         `json:"edges_inserted"`
	Deleted     int64         `json:"edges_deleted"`
	Reads       int64         `json:"reads_served"`
	ShardLoad   []shard.Stats     `json:"shard_load"`
	Feed        feed.Stats        `json:"feed"`
	Durability  *wal.Stats        `json:"durability,omitempty"`
	Replication *replicationStats `json:"replication,omitempty"`
	Overload    overloadStats     `json:"overload"`
}

// replicationStats is the /stats replication block: the feeder's counters
// on a primary, the follower's sync/lag state on a replica.
type replicationStats struct {
	Role       string                 `json:"role"` // "primary" or "replica"
	ListenAddr string                 `json:"listen_addr,omitempty"`
	Feeder     *replica.FeederStats   `json:"feeder,omitempty"`
	Follower   *replica.FollowerStats `json:"follower,omitempty"`
}

// overloadStats counts requests turned away or cut off by the protection
// layer, plus panics contained by the recovery middleware.
type overloadStats struct {
	RateLimited int64 `json:"rate_limited"`
	LoadShed    int64 `json:"load_shed"`
	Timeouts    int64 `json:"timeouts"`
	Panics      int64 `json:"panics"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Vertices:    s.eng.NumVertices(),
		Shards:      s.eng.NumShards(),
		Edges:       s.eng.NumEdges(),
		Batches:     s.eng.Batches(),
		Epoch:       s.eng.Epoch(),
		Retained:    s.eng.RetainedEpochs(),
		OldestEpoch: s.eng.OldestReadableEpoch(),
		Inserted:    s.inserted.Load(),
		Deleted:     s.deleted.Load(),
		Reads:       s.reads.Load(),
		ShardLoad:   s.eng.Stats(),
		Feed:        s.hub.Stats(),
		Overload: overloadStats{
			RateLimited: s.rateLimited.Load(),
			LoadShed:    s.loadShed.Load(),
			Timeouts:    s.timeouts.Load(),
			Panics:      s.panics.Load(),
		},
	}
	if s.wal != nil {
		st := s.wal.Stats()
		resp.Durability = &st
	}
	switch {
	case s.feeder != nil:
		fs := s.feeder.Stats()
		resp.Replication = &replicationStats{Role: "primary", ListenAddr: s.ReplicationAddr(), Feeder: &fs}
	case s.follower != nil:
		fs := s.follower.Stats()
		resp.Replication = &replicationStats{Role: "replica", Follower: &fs}
	}
	writeJSON(w, resp)
}

// updateResponse is the JSON body of the update endpoints.
type updateResponse struct {
	Applied int    `json:"applied"`
	Batch   uint64 `json:"batch"`
}

func (s *Server) handleUpdate(insert bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Same limits as /edges/batch: bound the body before parsing so
		// the edge-count cap also bounds memory (a text edge line is well
		// under 32 bytes), then enforce the count and vertex range.
		body := http.MaxBytesReader(w, r.Body, int64(s.maxBatchEdges)*32+4096)
		edges, _, err := graph.ReadEdgeList(body)
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
					fmt.Sprintf("edge list exceeds %d bytes", tooLarge.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad edge list: %v", err))
			return
		}
		if len(edges) > s.maxBatchEdges {
			writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
				fmt.Sprintf("batch of %d edges exceeds limit %d", len(edges), s.maxBatchEdges))
			return
		}
		n := uint32(s.eng.NumVertices())
		for _, e := range edges {
			if e.U >= n || e.V >= n {
				writeError(w, http.StatusBadRequest, codeBadRequest,
					fmt.Sprintf("vertex out of range: edge (%d,%d), have %d vertices", e.U, e.V, n))
				return
			}
		}
		var applied int
		if insert {
			applied = s.eng.Insert(edges)
			s.inserted.Add(int64(applied))
		} else {
			applied = s.eng.Delete(edges)
			s.deleted.Add(int64(applied))
		}
		writeJSON(w, updateResponse{Applied: applied, Batch: s.eng.Batches()})
	}
}

// batchEdge is one edge of a JSON batch request.
type batchEdge struct {
	U uint32 `json:"u"`
	V uint32 `json:"v"`
}

// batchRequest is the JSON body of POST /edges/batch: a mixed batch of
// insertions and deletions applied through the coalescing scheduler.
type batchRequest struct {
	Insert []batchEdge `json:"insert"`
	Delete []batchEdge `json:"delete"`
}

// batchResponse is the JSON body of the batch endpoint.
type batchResponse struct {
	Inserted int    `json:"inserted"`
	Deleted  int    `json:"deleted"`
	Batch    uint64 `json:"batch"`
}

// validateBatch checks a batch request against the vertex range and size
// limit. It returns an HTTP status and error for invalid batches.
func (s *Server) validateBatch(req *batchRequest) (int, error) {
	total := len(req.Insert) + len(req.Delete)
	if total == 0 {
		return http.StatusBadRequest, errors.New("empty batch: need at least one edge in insert or delete")
	}
	if total > s.maxBatchEdges {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d edges exceeds limit %d", total, s.maxBatchEdges)
	}
	n := uint32(s.eng.NumVertices())
	for _, list := range [][]batchEdge{req.Insert, req.Delete} {
		for _, e := range list {
			if e.U >= n || e.V >= n {
				return http.StatusBadRequest,
					fmt.Errorf("vertex out of range: edge (%d,%d), have %d vertices", e.U, e.V, n)
			}
		}
	}
	return http.StatusOK, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// Bound the body before decoding so the edge-count limit also bounds
	// memory: an edge object is well under 64 bytes of JSON.
	body := http.MaxBytesReader(w, r.Body, int64(s.maxBatchEdges)*64+4096)
	var req batchRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
				fmt.Sprintf("batch body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Sprintf("bad batch JSON: %v", err))
		return
	}
	if status, err := s.validateBatch(&req); err != nil {
		code := codeBadRequest
		if status == http.StatusRequestEntityTooLarge {
			code = codeTooLarge
		}
		writeError(w, status, code, err.Error())
		return
	}
	toEdges := func(in []batchEdge) []graph.Edge {
		out := make([]graph.Edge, len(in))
		for i, e := range in {
			out[i] = graph.Edge{U: e.U, V: e.V}
		}
		return out
	}
	ins, del := s.eng.Apply(toEdges(req.Insert), toEdges(req.Delete))
	s.inserted.Add(int64(ins))
	s.deleted.Add(int64(del))
	writeJSON(w, batchResponse{Inserted: ins, Deleted: del, Batch: s.eng.Batches()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = writeJSONBody(w, v)
}

// writeJSONBody encodes v to w without touching headers (the caller has
// already committed the status line).
func writeJSONBody(w http.ResponseWriter, v any) error {
	return json.NewEncoder(w).Encode(v)
}
