package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"kcore/internal/feed"
)

// DefaultFeedHeartbeat is how often an idle /subscribe stream sends an
// SSE comment line so clients and intermediaries can tell a quiet feed
// from a dead connection. Override with WithFeedHeartbeat.
const DefaultFeedHeartbeat = 15 * time.Second

// This file implements GET /subscribe: the server-sent-events transport
// of the change feed. Wire format (SSE):
//
//	event: hello                       — once, on connect
//	data: {"epoch": <current epoch>}
//
//	event: epoch                       — one message per committed batch
//	data: {"epoch": e, "events": [{"epoch":e,"vertex":v,
//	       "old_core":x,"new_core":y}, ...]}
//
//	event: gap                         — the subscriber was too slow
//	data: {"from": a, "to": b}           (missed epochs [a, b]; recover
//	                                      with a ?epoch=b read)
//
//	: heartbeat                        — comment line while idle
//
// Query parameters select the filter (all events by default):
//
//	vertices=1,2,3    only these vertices
//	cross_k=5         only transitions crossing coreness 5
//	min_delta=0.5     only |new-old| >= 0.5
//
// The endpoint deliberately bypasses the metrics instrumentation and the
// request-timeout middleware: both buffer the response through writers
// that cannot flush a live stream, and a subscription is expected to
// outlive any request deadline. The rate limiter still applies (the
// subscription handshake is one request).

// sseHello is the first message of a /subscribe stream.
type sseHello struct {
	Epoch uint64 `json:"epoch"`
}

// sseEpoch is one committed batch's matching events.
type sseEpoch struct {
	Epoch  uint64       `json:"epoch"`
	Events []feed.Event `json:"events"`
}

// sseGap tells the subscriber it missed epochs [From, To].
type sseGap struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// parseFeedFilter builds the subscription filter from query parameters.
func (s *Server) parseFeedFilter(r *http.Request) (feed.Filter, error) {
	var f feed.Filter
	q := r.URL.Query()
	if raw := q.Get("vertices"); raw != "" {
		n := uint64(s.eng.NumVertices())
		for _, part := range strings.Split(raw, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			v, err := strconv.ParseUint(part, 10, 32)
			if err != nil {
				return f, fmt.Errorf("bad vertex %q", part)
			}
			if v >= n {
				return f, fmt.Errorf("vertex %d out of range (have %d vertices)", v, n)
			}
			f.Vertices = append(f.Vertices, uint32(v))
		}
		if len(f.Vertices) == 0 {
			return f, errors.New("empty vertices list")
		}
	}
	if raw := q.Get("cross_k"); raw != "" {
		k, err := strconv.ParseFloat(raw, 64)
		if err != nil || k <= 0 {
			return f, fmt.Errorf("bad cross_k %q (want a positive number)", raw)
		}
		f.CrossK = k
	}
	if raw := q.Get("min_delta"); raw != "" {
		d, err := strconv.ParseFloat(raw, 64)
		if err != nil || d <= 0 {
			return f, fmt.Errorf("bad min_delta %q (want a positive number)", raw)
		}
		f.MinDelta = d
	}
	return f, nil
}

// handleSubscribe serves one SSE change-feed subscription until the
// client disconnects or the server shuts down.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	filter, err := s.parseFeedFilter(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, codeInternal, "response writer cannot stream")
		return
	}
	sub, err := s.hub.Subscribe(filter, s.feedBuffer)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, codeOverloaded, err.Error())
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	send := func(event string, payload any) bool {
		data, err := json.Marshal(payload)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !send("hello", sseHello{Epoch: s.eng.Epoch()}) {
		return
	}

	heartbeat := s.feedHeartbeat
	if heartbeat <= 0 {
		heartbeat = DefaultFeedHeartbeat
	}
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case d, ok := <-sub.C():
			if !ok {
				return // hub closed (server shutdown)
			}
			if d.Gap {
				if !send("gap", sseGap{From: d.GapFrom, To: d.GapTo}) {
					return
				}
				continue
			}
			if !send("epoch", sseEpoch{Epoch: d.Epoch, Events: d.Events}) {
				return
			}
		}
	}
}
