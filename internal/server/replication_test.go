package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/replica"
	"kcore/internal/wal"
)

// jsonDecode is the goroutine-safe decode helper (no testing.T).
func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func fastReplicationOptions() Option {
	return WithReplicationOptions(
		replica.FeederOptions{Heartbeat: 15 * time.Millisecond},
		replica.FollowerOptions{
			BackoffMin:    5 * time.Millisecond,
			BackoffMax:    50 * time.Millisecond,
			StreamTimeout: 2 * time.Second,
			InitialSync:   5 * time.Second,
		})
}

// newReplicatedPair starts a primary serving a replication stream and a
// replica synced to it, both with their HTTP surfaces up.
func newReplicatedPair(t *testing.T, n, shards int) (primary, rep *Server, pts, rts *httptest.Server) {
	t.Helper()
	var err error
	primary, err = New(n, lds.DefaultParams(), WithShards(shards),
		WithReplicationListen("127.0.0.1:0"), fastReplicationOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	rep, err = New(n, lds.DefaultParams(), WithShards(shards),
		WithReplicationSource(primary.ReplicationAddr()), fastReplicationOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	pts = httptest.NewServer(primary.Handler())
	t.Cleanup(pts.Close)
	rts = httptest.NewServer(rep.Handler())
	t.Cleanup(rts.Close)
	return primary, rep, pts, rts
}

func applyRandomBatches(s *Server, n, rounds, perRound int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < rounds; r++ {
		var ins []graph.Edge
		for i := 0; i < perRound; i++ {
			u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if u != v {
				ins = append(ins, graph.Edge{U: u, V: v})
			}
		}
		s.InsertBatch(ins)
	}
}

func waitReplicaEpoch(t *testing.T, rep *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if rep.eng.Epoch() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica stuck at epoch %d, want %d", rep.eng.Epoch(), want)
}

func TestReplicaServesParityAndRejectsWrites(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const n = 120
			primary, rep, pts, rts := newReplicatedPair(t, n, shards)
			applyRandomBatches(primary, n, 10, 25, 7)
			waitReplicaEpoch(t, rep, primary.eng.Epoch())

			// Byte-identical bulk reads at the same epoch.
			var vs []string
			for v := 0; v < n; v++ {
				vs = append(vs, fmt.Sprint(v))
			}
			body := fmt.Sprintf(`{"vertices":[%s]}`, strings.Join(vs, ","))
			pResp := decode[bulkResponse](t, post(t, pts.URL+"/coreness/bulk", body))
			rResp := decode[bulkResponse](t, post(t, rts.URL+"/coreness/bulk", body))
			if pResp.Epoch != rResp.Epoch {
				t.Fatalf("bulk epochs differ: primary %d, replica %d", pResp.Epoch, rResp.Epoch)
			}
			for i := range pResp.Coreness {
				if pResp.Coreness[i] != rResp.Coreness[i] {
					t.Fatalf("coreness of vertex %d differs at epoch %d: %v vs %v",
						i, pResp.Epoch, pResp.Coreness[i], rResp.Coreness[i])
				}
			}

			// Every mutating endpoint answers the stable read_only code.
			for _, req := range []struct{ path, body string }{
				{"/edges/insert", "0 1\n"},
				{"/edges/delete", "0 1\n"},
				{"/edges/batch", `{"insert":[{"u":0,"v":1}]}`},
				{"/snapshot", ""},
			} {
				resp := post(t, rts.URL+req.path, req.body)
				if resp.StatusCode != http.StatusForbidden {
					t.Fatalf("%s on replica: status %d, want 403", req.path, resp.StatusCode)
				}
				if er := decode[errorResponse](t, resp); er.Code != codeReadOnly {
					t.Fatalf("%s on replica: code %q, want %q", req.path, er.Code, codeReadOnly)
				}
			}
			// The primary still accepts writes.
			if resp := post(t, pts.URL+"/edges/insert", "0 1\n"); resp.StatusCode != http.StatusOK {
				t.Fatalf("primary insert status %d", resp.StatusCode)
			}

			// Replication blocks in /stats on both sides.
			ps := decode[statsResponse](t, get(t, pts.URL+"/stats"))
			if ps.Replication == nil || ps.Replication.Role != "primary" || ps.Replication.Feeder == nil ||
				ps.Replication.Feeder.Followers != 1 {
				t.Fatalf("primary replication stats: %+v", ps.Replication)
			}
			rs := decode[statsResponse](t, get(t, rts.URL+"/stats"))
			if rs.Replication == nil || rs.Replication.Role != "replica" || rs.Replication.Follower == nil ||
				!rs.Replication.Follower.Synced {
				t.Fatalf("replica replication stats: %+v", rs.Replication)
			}

			// A synced replica is ready.
			if resp := get(t, rts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
				t.Fatalf("synced replica readyz status %d", resp.StatusCode)
			}
		})
	}
}

func TestEpochFloorWaitsAndSheds(t *testing.T) {
	const n = 100
	primary, rep, _, rts := newReplicatedPair(t, n, 2)
	applyRandomBatches(primary, n, 4, 20, 3)
	waitReplicaEpoch(t, rep, primary.eng.Epoch())

	// Cut the feed (injected fault), advance the primary: the replica lags.
	primary.feeder.Pause()
	time.Sleep(30 * time.Millisecond) // let in-flight records land
	applyRandomBatches(primary, n, 4, 20, 4)
	floor := primary.eng.Epoch()

	// Shed: a floor the lagging replica cannot reach within the wait
	// budget answers 412 with the structured epoch_behind body.
	rep.minEpochWait = 50 * time.Millisecond
	resp := get(t, fmt.Sprintf("%s/coreness?v=1&min_epoch=%d", rts.URL, floor))
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("lagging floor read: status %d, want 412", resp.StatusCode)
	}
	shed := decode[epochBehindResponse](t, resp)
	if shed.Code != codeEpochBehind || shed.MinEpoch != floor || shed.Epoch >= floor {
		t.Fatalf("epoch_behind body: %+v (floor %d)", shed, floor)
	}
	// Same contract on the bulk body's min_epoch field.
	resp = post(t, rts.URL+"/coreness/bulk", fmt.Sprintf(`{"vertices":[1],"min_epoch":%d}`, floor))
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("lagging bulk floor read: status %d, want 412", resp.StatusCode)
	}
	// And on /top.
	resp = get(t, fmt.Sprintf("%s/top?k=3&min_epoch=%d", rts.URL, floor))
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("lagging top floor read: status %d, want 412", resp.StatusCode)
	}

	// Block: with wait budget, a floor read issued while lagging is held
	// until the resumed feed catches the replica up, then served at >= floor.
	rep.minEpochWait = 10 * time.Second
	type result struct {
		status int
		epoch  uint64
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/coreness?v=1&min_epoch=%d", rts.URL, floor))
		if err != nil {
			done <- result{status: -1}
			return
		}
		defer resp.Body.Close()
		var cr corenessResponse
		_ = jsonDecode(resp, &cr)
		done <- result{status: resp.StatusCode, epoch: cr.Epoch}
	}()
	time.Sleep(50 * time.Millisecond) // the read is now parked on the floor
	primary.feeder.Resume()
	res := <-done
	if res.status != http.StatusOK {
		t.Fatalf("floor read after resume: status %d", res.status)
	}
	if res.epoch < floor {
		t.Fatalf("floor read served epoch %d < floor %d", res.epoch, floor)
	}
}

// TestBounceClientNeverReadsBackwards drives a client that alternates
// between primary and replica, always passing the last observed epoch as
// min_epoch: served epochs must never decrease across the bounce.
func TestBounceClientNeverReadsBackwards(t *testing.T) {
	const n = 100
	primary, _, pts, rts := newReplicatedPair(t, n, 2)
	applyRandomBatches(primary, n, 1, 20, 5)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var bounceErr atomic.Value
	wg.Add(1)
	go func() {
		defer wg.Done()
		urls := []string{pts.URL, rts.URL}
		var lastEpoch uint64
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			url := fmt.Sprintf("%s/coreness?v=1&min_epoch=%d", urls[i%2], lastEpoch)
			resp, err := http.Get(url)
			if err != nil {
				bounceErr.Store(fmt.Sprintf("bounce read: %v", err))
				return
			}
			var cr corenessResponse
			err = jsonDecode(resp, &cr)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				bounceErr.Store(fmt.Sprintf("bounce read status %d err %v", resp.StatusCode, err))
				return
			}
			if cr.Epoch < lastEpoch {
				bounceErr.Store(fmt.Sprintf("epoch went backwards across the bounce: %d after %d", cr.Epoch, lastEpoch))
				return
			}
			lastEpoch = cr.Epoch
		}
	}()
	applyRandomBatches(primary, n, 10, 20, 6)
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if msg, ok := bounceErr.Load().(string); ok {
		t.Fatal(msg)
	}
}

func TestReplicaNotReadyUntilSynced(t *testing.T) {
	// A replica pointed at a dead primary with background sync must report
	// itself not ready (syncing) while it has never bootstrapped.
	s, err := New(50, lds.DefaultParams(),
		WithReplicationSource("127.0.0.1:1"),
		WithReplicationOptions(replica.FeederOptions{}, replica.FollowerOptions{
			BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
			InitialSync: -1, // don't block New
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unsynced replica readyz status %d, want 503", resp.StatusCode)
	}
	if hr := decode[healthResponse](t, resp); hr.Status != "syncing" {
		t.Fatalf("unsynced replica status %q, want syncing", hr.Status)
	}
}

func TestReplicationServerOptionValidation(t *testing.T) {
	if _, err := New(10, lds.DefaultParams(),
		WithReplicationListen("127.0.0.1:0"), WithReplicationSource("127.0.0.1:1")); err == nil {
		t.Fatal("listen+source must be rejected")
	}
	if _, err := New(10, lds.DefaultParams(),
		WithWAL(t.TempDir(), wal.Options{}), WithReplicationSource("127.0.0.1:1")); err == nil {
		t.Fatal("WAL on a replica must be rejected")
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	// The engine can cross the floor between the wait deadline and the
	// header computation: the hint must not underflow the (now negative)
	// gap — just say retry immediately.
	if got := retryAfterSeconds(10, 2, 10, 40*time.Millisecond, time.Second); got != "1" {
		t.Fatalf("floor met: Retry-After %q, want \"1\"", got)
	}
	if got := retryAfterSeconds(10, 2, 12, 40*time.Millisecond, time.Second); got != "1" {
		t.Fatalf("floor passed: Retry-After %q, want \"1\"", got)
	}
	// Observed progress extrapolates: 8 epochs in 2s, 8 to go => ~2s.
	if got := retryAfterSeconds(20, 4, 12, 2*time.Second, 5*time.Second); got != "2" {
		t.Fatalf("extrapolated: Retry-After %q, want \"2\"", got)
	}
	// No progress falls back to the wait budget, clamped to [1, 60].
	if got := retryAfterSeconds(20, 4, 4, 2*time.Second, 5*time.Second); got != "5" {
		t.Fatalf("stalled: Retry-After %q, want \"5\"", got)
	}
	if got := retryAfterSeconds(20, 4, 4, 2*time.Second, 5*time.Minute); got != "60" {
		t.Fatalf("stalled long budget: Retry-After %q, want \"60\"", got)
	}
}

func TestMetricsExposition(t *testing.T) {
	const n = 100
	primary, rep, pts, rts := newReplicatedPair(t, n, 2)
	applyRandomBatches(primary, n, 3, 20, 9)
	waitReplicaEpoch(t, rep, primary.eng.Epoch())

	// Generate traffic so the histograms have samples, including an error.
	get(t, pts.URL+"/coreness?v=1")
	post(t, pts.URL+"/coreness/bulk", `{"vertices":[1,2,3]}`)
	get(t, pts.URL+"/top?k=2")
	get(t, pts.URL+"/coreness?v=notanumber")

	body := readBody(t, get(t, pts.URL+"/metrics"))
	for _, want := range []string{
		`kcore_http_requests_total{endpoint="/coreness",class="2xx"}`,
		`kcore_http_requests_total{endpoint="/coreness",class="4xx"}`,
		`kcore_http_request_duration_seconds_bucket{endpoint="/coreness/bulk",le="+Inf"}`,
		`kcore_http_request_duration_seconds_count{endpoint="/top"}`,
		"kcore_epoch ",
		"kcore_replication_followers 1",
		"kcore_replication_records_shipped_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("primary /metrics missing %q in:\n%s", want, body)
		}
	}

	get(t, rts.URL+"/coreness?v=1")
	body = readBody(t, get(t, rts.URL+"/metrics"))
	for _, want := range []string{
		"kcore_replication_connected 1",
		"kcore_replication_lag_epochs 0",
		"kcore_replication_bootstraps_total 1",
		"kcore_replication_records_applied_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("replica /metrics missing %q in:\n%s", want, body)
		}
	}
}
