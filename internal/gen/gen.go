// Package gen provides deterministic synthetic graph generators and update/
// read workload generators.
//
// The paper evaluates on SNAP/DIMACS datasets (dblp, livejournal, orkut,
// youtube, wiki-talk, stackoverflow, twitter, brain, ctr, usa). This module
// is offline, so gen provides scaled-down synthetic stand-ins with matching
// qualitative profiles: heavy-tailed degree distributions for the social
// graphs, dense near-clique-rich RMAT graphs for brain/twitter, and sparse
// bounded-degeneracy lattices for the road networks (whose largest core in
// the paper is k = 3). All generators are deterministic in their seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"kcore/internal/graph"
)

// ErdosRenyi samples m distinct uniform random edges on n vertices (G(n,m)).
func ErdosRenyi(n, m int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[graph.Edge]struct{}, m)
	edges := make([]graph.Edge, 0, m)
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		m = int(maxEdges)
	}
	for len(edges) < m {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Canon()
		if _, ok := seen[e]; ok {
			continue
		}
		seen[e] = struct{}{}
		edges = append(edges, e)
	}
	return edges
}

// ChungLu samples ~m edges on n vertices with a power-law expected degree
// sequence with the given exponent (typically 2.0–3.0; lower = heavier
// tail). This is the stand-in for the social-network datasets.
func ChungLu(n, m int, exponent float64, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	// Expected weights w_i ∝ (i+1)^(-1/(exponent-1)), the standard
	// Chung–Lu construction for a power-law with the given exponent.
	alpha := 1.0 / (exponent - 1.0)
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -alpha)
		total += weights[i]
	}
	// Cumulative distribution for weighted endpoint sampling.
	cum := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	pick := func() uint32 {
		x := rng.Float64()
		i := sort.SearchFloat64s(cum, x)
		if i >= n {
			i = n - 1
		}
		return uint32(i)
	}
	seen := make(map[graph.Edge]struct{}, m)
	edges := make([]graph.Edge, 0, m)
	attempts := 0
	for len(edges) < m && attempts < 50*m {
		attempts++
		u, v := pick(), pick()
		if u == v {
			continue
		}
		e := graph.Edge{U: u, V: v}.Canon()
		if _, ok := seen[e]; ok {
			continue
		}
		seen[e] = struct{}{}
		edges = append(edges, e)
	}
	return edges
}

// RMAT samples m edges on 2^scale vertices with the recursive-matrix model
// (a, b, c, d must sum to ~1). It is the stand-in for the dense, highly
// skewed graphs (brain, twitter).
func RMAT(scale, m int, a, b, c float64, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	seen := make(map[graph.Edge]struct{}, m)
	edges := make([]graph.Edge, 0, m)
	attempts := 0
	for len(edges) < m && attempts < 60*m {
		attempts++
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			x := rng.Float64()
			switch {
			case x < a: // top-left
			case x < a+b: // top-right
				v |= 1 << bit
			case x < a+b+c: // bottom-left
				u |= 1 << bit
			default: // bottom-right
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v || u >= n || v >= n {
			continue
		}
		e := graph.Edge{U: uint32(u), V: uint32(v)}.Canon()
		if _, ok := seen[e]; ok {
			continue
		}
		seen[e] = struct{}{}
		edges = append(edges, e)
	}
	return edges
}

// BarabasiAlbert grows a preferential-attachment graph: each new vertex
// attaches to k existing vertices chosen proportionally to degree.
func BarabasiAlbert(n, k int, seed int64) []graph.Edge {
	if n < k+1 {
		n = k + 1
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n*k)
	// Repeated-endpoints list implements preferential attachment.
	targets := make([]uint32, 0, 2*n*k)
	// Seed clique on k+1 vertices.
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j)})
			targets = append(targets, uint32(i), uint32(j))
		}
	}
	for v := k + 1; v < n; v++ {
		chosen := make(map[uint32]struct{}, k)
		for len(chosen) < k {
			w := targets[rng.Intn(len(targets))]
			if w == uint32(v) {
				continue
			}
			chosen[w] = struct{}{}
		}
		for w := range chosen {
			edges = append(edges, graph.Edge{U: uint32(v), V: w}.Canon())
			targets = append(targets, uint32(v), w)
		}
	}
	return edges
}

// TriangularGrid builds a rows×cols lattice with down, right and diagonal
// edges. It is planar with degeneracy 3 — the stand-in for the road
// networks (ctr, usa), whose largest core in the paper is k = 3.
func TriangularGrid(rows, cols int) []graph.Edge {
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	edges := make([]graph.Edge, 0, 3*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
			if r+1 < rows && c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c+1)})
			}
		}
	}
	return edges
}

// Clique returns the complete graph on n vertices (coreness n-1 for all).
func Clique(n int) []graph.Edge {
	edges := make([]graph.Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j)})
		}
	}
	return edges
}

// Kind labels the structural family of a synthetic dataset.
type Kind int

const (
	KindSocial Kind = iota // heavy-tailed Chung–Lu
	KindDense              // skewed dense RMAT
	KindRoad               // planar lattice, tiny cores
)

// Profile describes a synthetic stand-in for one of the paper's datasets.
type Profile struct {
	Name     string // paper dataset this profiles (dblp, lj, …)
	Kind     Kind
	N        int     // vertices (scaled down from the paper)
	M        int     // target edges
	Exponent float64 // power-law exponent for KindSocial
	Seed     int64
}

// Profiles lists the stand-ins for all ten datasets in Table 1, scaled to
// sizes that the full experiment suite can sweep on a small machine while
// preserving each graph's qualitative profile (degree skew, degeneracy).
var Profiles = []Profile{
	{Name: "tiny", Kind: KindSocial, N: 1500, M: 6000, Exponent: 2.5, Seed: 100},
	{Name: "dblp", Kind: KindSocial, N: 6000, M: 20000, Exponent: 2.6, Seed: 101},
	{Name: "brain", Kind: KindDense, N: 4096, M: 160000, Seed: 102},
	{Name: "wiki", Kind: KindSocial, N: 12000, M: 32000, Exponent: 2.2, Seed: 103},
	{Name: "yt", Kind: KindSocial, N: 12000, M: 32000, Exponent: 2.4, Seed: 104},
	{Name: "so", Kind: KindSocial, N: 16000, M: 90000, Exponent: 2.3, Seed: 105},
	{Name: "lj", Kind: KindSocial, N: 20000, M: 120000, Exponent: 2.4, Seed: 106},
	{Name: "orkut", Kind: KindSocial, N: 12000, M: 150000, Exponent: 2.5, Seed: 107},
	{Name: "ctr", Kind: KindRoad, N: 0, M: 0, Seed: 108}, // 120x120 grid
	{Name: "usa", Kind: KindRoad, N: 0, M: 0, Seed: 109}, // 160x160 grid
	{Name: "twitter", Kind: KindDense, N: 8192, M: 320000, Seed: 110},
}

// ProfileByName returns the profile with the given name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("unknown dataset profile %q", name)
}

// Dataset materializes the stand-in edge list for a profile and returns the
// edges and the vertex count.
func Dataset(p Profile) ([]graph.Edge, int) {
	switch p.Kind {
	case KindSocial:
		return ChungLu(p.N, p.M, p.Exponent, p.Seed), p.N
	case KindDense:
		scale := 0
		for 1<<scale < p.N {
			scale++
		}
		return RMAT(scale, p.M, 0.57, 0.19, 0.19, p.Seed), 1 << scale
	case KindRoad:
		side := 120
		if p.Name == "usa" {
			side = 160
		}
		return TriangularGrid(side, side), side * side
	default:
		panic("unknown kind")
	}
}

// datasetCache memoizes materialized datasets: the experiment harness
// prepares the same dataset many times (one engine per algorithm and
// configuration point), and regenerating it dominates setup time.
var datasetCache sync.Map // name -> cachedDataset

type cachedDataset struct {
	edges []graph.Edge
	n     int
}

// DatasetByName materializes the stand-in for the named paper dataset.
// The returned edge slice is shared and must not be mutated.
func DatasetByName(name string) ([]graph.Edge, int, error) {
	if c, ok := datasetCache.Load(name); ok {
		cd := c.(cachedDataset)
		return cd.edges, cd.n, nil
	}
	p, err := ProfileByName(name)
	if err != nil {
		return nil, 0, err
	}
	edges, n := Dataset(p)
	datasetCache.Store(name, cachedDataset{edges: edges, n: n})
	return edges, n, nil
}
