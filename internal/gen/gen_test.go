package gen

import (
	"testing"

	"kcore/internal/graph"
)

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(100, 300, 1)
	b := ErdosRenyi(100, 300, 1)
	if len(a) != 300 || len(b) != 300 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	c := ErdosRenyi(100, 300, 2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical output")
	}
}

func TestErdosRenyiDistinctEdges(t *testing.T) {
	edges := ErdosRenyi(50, 400, 3)
	seen := map[graph.Edge]struct{}{}
	for _, e := range edges {
		if e.IsSelfLoop() {
			t.Fatalf("self-loop %v", e)
		}
		if e.U > e.V {
			t.Fatalf("non-canonical edge %v", e)
		}
		if _, ok := seen[e]; ok {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = struct{}{}
	}
}

func TestErdosRenyiCapsAtCompleteGraph(t *testing.T) {
	edges := ErdosRenyi(5, 100, 4)
	if len(edges) != 10 {
		t.Fatalf("len = %d, want 10 (complete K5)", len(edges))
	}
}

func TestChungLuHeavyTail(t *testing.T) {
	edges := ChungLu(2000, 8000, 2.3, 5)
	if len(edges) < 7000 {
		t.Fatalf("generated only %d edges", len(edges))
	}
	g := graph.FromEdges(2000, edges)
	maxDeg, sumDeg := 0, 0
	for v := 0; v < 2000; v++ {
		d := g.Degree(uint32(v))
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sumDeg) / 2000
	// Heavy tail: max degree far above the average.
	if float64(maxDeg) < 8*avg {
		t.Fatalf("degree distribution not skewed: max %d avg %.1f", maxDeg, avg)
	}
}

func TestRMATValid(t *testing.T) {
	edges := RMAT(10, 5000, 0.57, 0.19, 0.19, 6)
	if len(edges) < 4000 {
		t.Fatalf("generated only %d edges", len(edges))
	}
	for _, e := range edges {
		if e.U >= 1024 || e.V >= 1024 || e.IsSelfLoop() {
			t.Fatalf("bad edge %v", e)
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	edges := BarabasiAlbert(500, 4, 7)
	g := graph.FromEdges(500, edges)
	for v := 5; v < 500; v++ {
		if g.Degree(uint32(v)) < 4 {
			t.Fatalf("vertex %d degree %d < k", v, g.Degree(uint32(v)))
		}
	}
}

func TestTriangularGrid(t *testing.T) {
	edges := TriangularGrid(4, 5)
	g := graph.FromEdges(20, edges)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interior vertex degree in a triangular grid is 6.
	if d := g.Degree(uint32(1*5 + 2)); d != 6 {
		t.Fatalf("interior degree = %d, want 6", d)
	}
	// Corner (0,0) has right, down, diag = 3.
	if d := g.Degree(0); d != 3 {
		t.Fatalf("corner degree = %d, want 3", d)
	}
}

func TestClique(t *testing.T) {
	edges := Clique(6)
	if len(edges) != 15 {
		t.Fatalf("len = %d", len(edges))
	}
}

func TestAllProfilesMaterialize(t *testing.T) {
	for _, p := range Profiles {
		edges, n, err := DatasetByName(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 || len(edges) == 0 {
			t.Fatalf("%s: n=%d m=%d", p.Name, n, len(edges))
		}
		for _, e := range edges {
			if int(e.U) >= n || int(e.V) >= n {
				t.Fatalf("%s: edge %v out of range n=%d", p.Name, e, n)
			}
		}
	}
	if _, _, err := DatasetByName("nope"); err == nil {
		t.Fatal("want error for unknown profile")
	}
}

func TestShuffleAndBatches(t *testing.T) {
	edges := ErdosRenyi(100, 1000, 8)
	sh := Shuffle(edges, 9)
	if len(sh) != len(edges) {
		t.Fatalf("shuffle changed length")
	}
	counts := map[graph.Edge]int{}
	for _, e := range edges {
		counts[e]++
	}
	for _, e := range sh {
		counts[e]--
	}
	for e, c := range counts {
		if c != 0 {
			t.Fatalf("shuffle altered multiset at %v", e)
		}
	}
	bs := Batches(sh, 300)
	if len(bs) != 4 {
		t.Fatalf("batches = %d, want 4", len(bs))
	}
	if len(bs[3]) != 100 {
		t.Fatalf("last batch = %d, want 100", len(bs[3]))
	}
	if got := Batches(sh, 0); len(got) != len(sh) {
		t.Fatalf("batchSize 0 should clamp to 1")
	}
}

func TestUpdateStream(t *testing.T) {
	edges := ErdosRenyi(200, 2000, 10)
	us := NewUpdateStream(edges, 200, 0.5, 250, 11)
	if len(us.Base) != 1000 {
		t.Fatalf("base = %d", len(us.Base))
	}
	if len(us.Insertions) != 4 {
		t.Fatalf("insertion batches = %d", len(us.Insertions))
	}
	if len(us.Deletions) != 4 {
		t.Fatalf("deletion batches = %d", len(us.Deletions))
	}
	// Deletions are insertions reversed.
	if &us.Deletions[0][0] != &us.Insertions[3][0] {
		t.Fatal("deletions should alias reversed insertion batches")
	}
	total := len(us.Base)
	for _, b := range us.Insertions {
		total += len(b)
	}
	if total != 2000 {
		t.Fatalf("total = %d", total)
	}
}

func TestReadWorkloads(t *testing.T) {
	u := NewUniformReads(100, 12)
	seen := map[uint32]bool{}
	for i := 0; i < 2000; i++ {
		v := u.Next()
		if v >= 100 {
			t.Fatalf("out of range read %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 80 {
		t.Fatalf("uniform reads covered only %d vertices", len(seen))
	}
	z := NewZipfReads(100, 1.5, 13)
	counts := make([]int, 100)
	for i := 0; i < 5000; i++ {
		v := z.Next()
		if v >= 100 {
			t.Fatalf("zipf out of range %d", v)
		}
		counts[v]++
	}
	if counts[0] < counts[50] {
		t.Fatal("zipf not skewed toward low ids")
	}
	// Degenerate s clamps rather than panicking.
	_ = NewZipfReads(100, 0.5, 14)
}

func TestSlidingWindow(t *testing.T) {
	edges := ErdosRenyi(200, 3000, 18)
	const window = 1000
	const batch = 400
	mbs := SlidingWindow(edges, batch, window, 19)
	live := 0
	seen := map[graph.Edge]bool{}
	for i, mb := range mbs {
		for _, e := range mb.Insertions {
			if seen[e] {
				t.Fatalf("batch %d re-inserts %v", i, e)
			}
			seen[e] = true
		}
		live += len(mb.Insertions)
		for _, e := range mb.Deletions {
			if !seen[e] {
				t.Fatalf("batch %d deletes never-inserted %v", i, e)
			}
		}
		live -= len(mb.Deletions)
		if live > window {
			t.Fatalf("batch %d: live %d exceeds window %d", i, live, window)
		}
	}
	if live != window {
		t.Fatalf("final live = %d, want full window %d", live, window)
	}
}

func TestMixedBatches(t *testing.T) {
	edges := ErdosRenyi(100, 1000, 15)
	mbs := MixedBatches(edges, 200, 0.25, 16)
	if len(mbs) != 5 {
		t.Fatalf("batches = %d", len(mbs))
	}
	if len(mbs[0].Deletions) != 0 {
		t.Fatal("first batch should have nothing to delete")
	}
	for i := 1; i < len(mbs); i++ {
		if len(mbs[i].Deletions) == 0 {
			t.Fatalf("batch %d has no deletions", i)
		}
		// Deletions must have been inserted earlier and not deleted since.
		prior := map[graph.Edge]bool{}
		for j := 0; j < i; j++ {
			for _, e := range mbs[j].Insertions {
				prior[e] = true
			}
			for _, e := range mbs[j].Deletions {
				delete(prior, e)
			}
		}
		for _, e := range mbs[i].Deletions {
			if !prior[e] {
				t.Fatalf("batch %d deletes %v which is not live", i, e)
			}
		}
	}
}
