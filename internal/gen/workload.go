package gen

import (
	"math"
	"math/rand"

	"kcore/internal/graph"
)

// Shuffle returns a deterministic pseudo-random permutation of edges.
func Shuffle(edges []graph.Edge, seed int64) []graph.Edge {
	out := append([]graph.Edge(nil), edges...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Batches splits edges into consecutive batches of the given size (the last
// batch may be shorter). The slices alias the input.
func Batches(edges []graph.Edge, batchSize int) [][]graph.Edge {
	if batchSize <= 0 {
		batchSize = 1
	}
	var out [][]graph.Edge
	for lo := 0; lo < len(edges); lo += batchSize {
		hi := lo + batchSize
		if hi > len(edges) {
			hi = len(edges)
		}
		out = append(out, edges[lo:hi])
	}
	return out
}

// UpdateStream is a prepared sequence of update batches for an experiment:
// a base graph loaded up front, then insertion batches, then (optionally)
// deletion batches of the same edges in reverse.
type UpdateStream struct {
	NumVertices int
	Base        []graph.Edge   // loaded before measurement starts
	Insertions  [][]graph.Edge // measured insertion batches
	Deletions   [][]graph.Edge // measured deletion batches
}

// NewUpdateStream prepares an update stream from a dataset edge list:
// baseFrac of the (shuffled) edges form the base graph; the rest are split
// into insertion batches of batchSize; deletion batches delete the same
// edges in reverse batch order. This mirrors the paper's setup of applying
// batches of 10^6 edge updates to a loaded graph.
func NewUpdateStream(edges []graph.Edge, n int, baseFrac float64, batchSize int, seed int64) *UpdateStream {
	sh := Shuffle(edges, seed)
	nb := int(float64(len(sh)) * baseFrac)
	if nb < 0 {
		nb = 0
	}
	if nb > len(sh) {
		nb = len(sh)
	}
	base, rest := sh[:nb], sh[nb:]
	ins := Batches(rest, batchSize)
	// Deletions remove the inserted batches in reverse order.
	del := make([][]graph.Edge, 0, len(ins))
	for i := len(ins) - 1; i >= 0; i-- {
		del = append(del, ins[i])
	}
	return &UpdateStream{NumVertices: n, Base: base, Insertions: ins, Deletions: del}
}

// ReadWorkload generates vertex ids to read. Dist selects uniform or
// Zipfian skew; the paper's read threads choose vertices uniformly at
// random, which is the default.
type ReadWorkload struct {
	n    int
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewUniformReads returns a workload of uniform-random vertex reads.
func NewUniformReads(n int, seed int64) *ReadWorkload {
	return &ReadWorkload{n: n, rng: rand.New(rand.NewSource(seed))}
}

// NewZipfReads returns a workload of Zipf-skewed vertex reads with the
// given skew parameter s > 1.
func NewZipfReads(n int, s float64, seed int64) *ReadWorkload {
	if s <= 1 {
		s = 1.0001
	}
	rng := rand.New(rand.NewSource(seed))
	return &ReadWorkload{n: n, rng: rng, zipf: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Next returns the next vertex to read.
func (w *ReadWorkload) Next() uint32 {
	if w.zipf != nil {
		return uint32(w.zipf.Uint64())
	}
	return uint32(w.rng.Intn(w.n))
}

// SlidingWindow builds the classic streaming workload for batch-dynamic
// structures: edges arrive in order, and once more than windowSize edges
// are live, each new insertion batch is paired with a deletion batch of
// the oldest edges, keeping the live set at the window size. The returned
// batches alternate (insert, delete) once the window is full.
func SlidingWindow(edges []graph.Edge, batchSize, windowSize int, seed int64) []MixedBatch {
	sh := Shuffle(edges, seed)
	var out []MixedBatch
	start := 0 // index of the oldest live edge
	live := 0
	for lo := 0; lo < len(sh); lo += batchSize {
		hi := lo + batchSize
		if hi > len(sh) {
			hi = len(sh)
		}
		b := MixedBatch{Insertions: sh[lo:hi]}
		live += hi - lo
		if over := live - windowSize; over > 0 {
			b.Deletions = sh[start : start+over]
			start += over
			live -= over
		}
		out = append(out, b)
	}
	return out
}

// MixedBatch holds one batch that contains both insertions and deletions,
// pre-separated as the paper's pre-processing step prescribes ("batches
// contain a mix of insertions and deletions, which are separated into
// insertion and deletion sub-batches during pre-processing").
type MixedBatch struct {
	Insertions []graph.Edge
	Deletions  []graph.Edge
}

// MixedBatches builds batches where each batch inserts fresh edges and
// deletes a fraction of previously inserted ones, exercising both phases.
func MixedBatches(edges []graph.Edge, batchSize int, deleteFrac float64, seed int64) []MixedBatch {
	sh := Shuffle(edges, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	var out []MixedBatch
	var inserted []graph.Edge
	for lo := 0; lo < len(sh); lo += batchSize {
		hi := lo + batchSize
		if hi > len(sh) {
			hi = len(sh)
		}
		b := MixedBatch{Insertions: sh[lo:hi]}
		nd := int(math.Round(float64(hi-lo) * deleteFrac))
		for i := 0; i < nd && len(inserted) > 0; i++ {
			j := rng.Intn(len(inserted))
			b.Deletions = append(b.Deletions, inserted[j])
			inserted[j] = inserted[len(inserted)-1]
			inserted = inserted[:len(inserted)-1]
		}
		inserted = append(inserted, b.Insertions...)
		out = append(out, b)
	}
	return out
}
