// Package exact computes exact k-core decompositions (coreness values).
//
// It provides the classic sequential bucket-peeling algorithm of Matula and
// Beck (O(n+m)) used as ground truth for the approximation-error
// experiments (Fig. 6), and a parallel level-synchronous peeling algorithm
// in the style of Julienne/GBBS used as the static parallel baseline.
package exact

import (
	"sync/atomic"

	"kcore/internal/graph"
	"kcore/internal/parallel"
)

// Sequential computes the coreness of every vertex with Matula–Beck bucket
// peeling in O(n + m) time.
func Sequential(g *graph.CSR) []int32 {
	core, _ := SequentialWithOrder(g)
	return core
}

// SequentialWithOrder additionally returns the degeneracy (peeling) order:
// order[i] is the i-th vertex removed. In this order every vertex has at
// most MaxCore(core) neighbours that appear later — the property used by
// the low out-degree orientation and coloring applications.
func SequentialWithOrder(g *graph.CSR) ([]int32, []uint32) {
	n := g.NumVertices()
	core := make([]int32, n)
	if n == 0 {
		return core, nil
	}
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(uint32(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// bin[d] = start index in vert of vertices with degree d.
	bin := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	bin[maxDeg+1] = start
	vert := make([]int32, n) // vertices sorted by current degree
	pos := make([]int32, n)  // position of v in vert
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = int32(v)
		bin[deg[v]]++
	}
	// Restore bin starts.
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0
	order := make([]uint32, n)
	for i := 0; i < n; i++ {
		v := vert[i]
		order[i] = uint32(v)
		core[v] = deg[v]
		for _, nw := range g.Neighbors(uint32(v)) {
			w := int32(nw)
			if deg[w] > deg[v] {
				dw := deg[w]
				pw := pos[w]
				pstart := bin[dw]
				u := vert[pstart]
				if u != w {
					// Swap w with the first vertex of its bucket.
					pos[w], pos[u] = pstart, pw
					vert[pstart], vert[pw] = w, u
				}
				bin[dw]++
				deg[w]--
			}
		}
	}
	return core, order
}

// Parallel computes coreness with level-synchronous parallel peeling: for
// k = 0, 1, 2, … it repeatedly peels every vertex whose residual degree is
// at most k until none remain, assigning those vertices coreness k. This is
// the bucketing strategy of Julienne applied to k-core.
func Parallel(g *graph.CSR) []int32 {
	n := g.NumVertices()
	core := make([]int32, n)
	if n == 0 {
		return core
	}
	deg := make([]int32, n)
	removed := make([]atomic.Bool, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(uint32(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	degA := make([]atomic.Int32, n)
	for v := 0; v < n; v++ {
		degA[v].Store(deg[v])
	}
	remaining := int64(n)
	// Initial frontier per k computed by scanning; subsequent waves within
	// a k come from degree decrements crossing the threshold.
	all := make([]uint32, n)
	for v := range all {
		all[v] = uint32(v)
	}
	for k := int32(0); remaining > 0 && k <= maxDeg; k++ {
		frontier := parallel.Filter(all, func(v uint32) bool {
			return !removed[v].Load() && degA[v].Load() <= k
		})
		for len(frontier) > 0 {
			// Claim frontier vertices (each exactly once).
			claimed := parallel.Filter(frontier, func(v uint32) bool {
				return removed[v].CompareAndSwap(false, true)
			})
			parallel.For(len(claimed), func(i int) {
				core[claimed[i]] = k
			})
			remaining -= int64(len(claimed))
			// Decrement neighbours; collect those that just crossed k.
			nextLists := make([][]uint32, len(claimed))
			parallel.For(len(claimed), func(i int) {
				v := claimed[i]
				var next []uint32
				for _, w := range g.Neighbors(v) {
					if removed[w].Load() {
						continue
					}
					if degA[w].Add(-1) == k {
						// Exactly one decrementer observes the crossing
						// to k (further decrements observe < k and the
						// frontier filter below dedups via the claim CAS).
						next = append(next, w)
					}
				}
				nextLists[i] = next
			})
			frontier = frontier[:0]
			for _, l := range nextLists {
				frontier = append(frontier, l...)
			}
			// Also pick up vertices whose degree dropped below k due to
			// racing decrements (observed value < k at crossing time).
			if len(frontier) == 0 {
				frontier = parallel.Filter(all, func(v uint32) bool {
					return !removed[v].Load() && degA[v].Load() <= k
				})
			}
		}
	}
	return core
}

// MaxCore returns the largest coreness value ("largest value of k" in the
// paper's Table 1), or 0 for an empty graph.
func MaxCore(core []int32) int32 {
	max := int32(0)
	for _, c := range core {
		if c > max {
			max = c
		}
	}
	return max
}

// Degeneracy returns the graph degeneracy, which equals the maximum
// coreness.
func Degeneracy(g *graph.CSR) int32 {
	return MaxCore(Sequential(g))
}

// KCoreSubgraph returns the vertices of the k-core: every vertex with
// coreness >= k.
func KCoreSubgraph(core []int32, k int32) []uint32 {
	var out []uint32
	for v, c := range core {
		if c >= k {
			out = append(out, uint32(v))
		}
	}
	return out
}
