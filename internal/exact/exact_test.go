package exact

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"kcore/internal/gen"
	"kcore/internal/graph"
)

// bruteForce computes coreness by repeated minimum-degree removal in
// O(n^2 m) — a trivially correct oracle for tiny graphs.
func bruteForce(g *graph.CSR) []int32 {
	n := g.NumVertices()
	core := make([]int32, n)
	removed := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(uint32(v))
	}
	for count := 0; count < n; count++ {
		// Find minimum-degree unremoved vertex.
		best, bestDeg := -1, 1<<30
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		k := bestDeg
		if count > 0 {
			// Coreness is non-decreasing over the removal order.
			prevMax := 0
			for v := 0; v < n; v++ {
				if removed[v] && int(core[v]) > prevMax {
					prevMax = int(core[v])
				}
			}
			if k < prevMax {
				k = prevMax
			}
		}
		core[best] = int32(k)
		removed[best] = true
		for _, w := range g.Neighbors(uint32(best)) {
			if !removed[w] {
				deg[w]--
			}
		}
	}
	return core
}

func TestSequentialKnownGraphs(t *testing.T) {
	// Triangle + pendant: triangle vertices have coreness 2, pendant 1.
	csr := graph.CSRFromEdges(4, []graph.Edge{graph.E(0, 1), graph.E(1, 2), graph.E(0, 2), graph.E(2, 3)})
	core := Sequential(csr)
	want := []int32{2, 2, 2, 1}
	if !reflect.DeepEqual(core, want) {
		t.Fatalf("core = %v, want %v", core, want)
	}
	if MaxCore(core) != 2 {
		t.Fatalf("MaxCore = %d", MaxCore(core))
	}
}

func TestSequentialClique(t *testing.T) {
	csr := graph.CSRFromEdges(7, gen.Clique(7))
	core := Sequential(csr)
	for v, c := range core {
		if c != 6 {
			t.Fatalf("clique vertex %d coreness %d, want 6", v, c)
		}
	}
}

func TestSequentialPath(t *testing.T) {
	// Path graph: all coreness 1.
	edges := []graph.Edge{graph.E(0, 1), graph.E(1, 2), graph.E(2, 3), graph.E(3, 4)}
	core := Sequential(graph.CSRFromEdges(5, edges))
	for v, c := range core {
		if c != 1 {
			t.Fatalf("path vertex %d coreness %d, want 1", v, c)
		}
	}
}

func TestSequentialEmptyAndIsolated(t *testing.T) {
	core := Sequential(graph.CSRFromEdges(0, nil))
	if len(core) != 0 {
		t.Fatal("empty graph")
	}
	core = Sequential(graph.CSRFromEdges(3, nil))
	for _, c := range core {
		if c != 0 {
			t.Fatalf("isolated vertex coreness %d", c)
		}
	}
}

func TestSequentialMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(25)
		m := rng.Intn(3 * n)
		edges := gen.ErdosRenyi(n, m, int64(trial))
		csr := graph.CSRFromEdges(n, edges)
		got := Sequential(csr)
		want := bruteForce(csr)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d m=%d):\n got %v\nwant %v", trial, n, m, got, want)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		n := 200 + trial*100
		edges := gen.ErdosRenyi(n, n*4, int64(trial+50))
		csr := graph.CSRFromEdges(n, edges)
		seq := Sequential(csr)
		par := Parallel(csr)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("trial %d: parallel != sequential", trial)
		}
	}
}

func TestParallelMatchesSequentialOnProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"dblp", "ctr"} {
		edges, n, err := gen.DatasetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		csr := graph.CSRFromEdges(n, edges)
		seq := Sequential(csr)
		par := Parallel(csr)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("%s: parallel != sequential", name)
		}
	}
}

func TestParallelProperty(t *testing.T) {
	f := func(raw [][2]uint8, nn uint8) bool {
		n := int(nn)%40 + 5
		edges := make([]graph.Edge, 0, len(raw))
		for _, p := range raw {
			e := graph.Edge{U: uint32(p[0]) % uint32(n), V: uint32(p[1]) % uint32(n)}
			edges = append(edges, e)
		}
		csr := graph.CSRFromEdges(n, edges)
		return reflect.DeepEqual(Sequential(csr), Parallel(csr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCorenessDefinitionProperty(t *testing.T) {
	// Every vertex in the k-core subgraph (coreness >= k) must have induced
	// degree >= k within it — the defining property of the k-core.
	edges := gen.ChungLu(500, 2500, 2.3, 33)
	csr := graph.CSRFromEdges(500, edges)
	core := Sequential(csr)
	maxK := MaxCore(core)
	for k := int32(1); k <= maxK; k++ {
		members := KCoreSubgraph(core, k)
		inCore := make([]bool, 500)
		for _, v := range members {
			inCore[v] = true
		}
		for _, v := range members {
			indDeg := 0
			for _, w := range csr.Neighbors(v) {
				if inCore[w] {
					indDeg++
				}
			}
			if int32(indDeg) < k {
				t.Fatalf("vertex %d in %d-core has induced degree %d", v, k, indDeg)
			}
		}
	}
}

func TestRoadProfileSmallCore(t *testing.T) {
	// The road stand-ins must have tiny maximum coreness like ctr/usa
	// (largest k = 3 in the paper's Table 1).
	edges, n, err := gen.DatasetByName("ctr")
	if err != nil {
		t.Fatal(err)
	}
	core := Sequential(graph.CSRFromEdges(n, edges))
	if mk := MaxCore(core); mk > 4 || mk < 2 {
		t.Fatalf("road profile max core = %d, want small (2–4)", mk)
	}
}

func TestDegeneracy(t *testing.T) {
	csr := graph.CSRFromEdges(7, gen.Clique(7))
	if d := Degeneracy(csr); d != 6 {
		t.Fatalf("Degeneracy = %d", d)
	}
}

func BenchmarkSequentialPeel(b *testing.B) {
	edges := gen.ChungLu(20000, 100000, 2.4, 1)
	csr := graph.CSRFromEdges(20000, edges)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sequential(csr)
	}
}

func BenchmarkParallelPeel(b *testing.B) {
	edges := gen.ChungLu(20000, 100000, 2.4, 1)
	csr := graph.CSRFromEdges(20000, edges)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parallel(csr)
	}
}
