package shard

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"kcore/internal/cplds"
	"kcore/internal/exact"
	"kcore/internal/gen"
	"kcore/internal/graph"
	"kcore/internal/lds"
)

func defaultP() lds.Params { return lds.DefaultParams() }

// provableBound is the end-to-end bound on the ratio between an estimate
// and the exact coreness: the (2+3/λ)(1+δ) approximation factor times the
// extra (1+δ) slack of the level-to-estimate rounding (same bound the PLDS
// tests assert).
func provableBound(p lds.Params) float64 {
	return p.ApproxFactor() * (1 + p.Delta)
}

func ratioError(est float64, k int32) float64 {
	kk := math.Max(float64(k), 1)
	ee := math.Max(est, 1)
	return math.Max(ee/kk, kk/ee)
}

func TestShardOfInRangeAndStable(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		e := New(1000, p, defaultP())
		for v := uint32(0); v < 1000; v++ {
			s := e.ShardOf(v)
			if s < 0 || s >= p {
				t.Fatalf("P=%d: ShardOf(%d) = %d out of range", p, v, s)
			}
			if s != e.ShardOf(v) {
				t.Fatalf("P=%d: ShardOf(%d) unstable", p, v)
			}
		}
	}
	// The hash should actually spread vertices across shards.
	e := New(1000, 4, defaultP())
	counts := make([]int, 4)
	for v := uint32(0); v < 1000; v++ {
		counts[e.ShardOf(v)]++
	}
	for s, c := range counts {
		if c < 100 {
			t.Fatalf("shard %d owns only %d of 1000 vertices", s, c)
		}
	}
}

func TestSingleShardMatchesCPLDS(t *testing.T) {
	const n = 300
	edges := gen.ChungLu(n, 2500, 2.3, 7)
	e := New(n, 1, defaultP())
	c := cplds.New(n, defaultP())
	for _, b := range gen.Batches(edges, 400) {
		e.Insert(b)
		c.InsertBatch(b)
	}
	e.Delete(edges[:800])
	c.DeleteBatch(edges[:800])
	for v := uint32(0); v < n; v++ {
		if got, want := e.Read(v), c.Read(v); got != want {
			t.Fatalf("vertex %d: sharded P=1 estimate %v, single engine %v", v, got, want)
		}
	}
	if got, want := e.NumEdges(), c.Graph().NumEdges(); got != want {
		t.Fatalf("edge count %d, want %d", got, want)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAppliedCountsMatchSingleEngineSemantics(t *testing.T) {
	const n = 200
	e := New(n, 4, defaultP())

	if got := e.Insert([]graph.Edge{{U: 1, V: 2}, {U: 2, V: 1}, {U: 3, V: 3}, {U: 5, V: 9999}}); got != 1 {
		t.Fatalf("insert with dup/self-loop/out-of-range applied %d, want 1", got)
	}
	if got := e.Insert([]graph.Edge{{U: 1, V: 2}, {U: 2, V: 3}}); got != 1 {
		t.Fatalf("re-insert applied %d, want 1", got)
	}
	if got := e.Delete([]graph.Edge{{U: 1, V: 2}, {U: 7, V: 8}}); got != 1 {
		t.Fatalf("delete applied %d, want 1", got)
	}
	if got := e.NumEdges(); got != 1 {
		t.Fatalf("NumEdges %d, want 1", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDedupesInsertDeletePairs(t *testing.T) {
	const n = 100
	e := New(n, 4, defaultP())

	// Same edge inserted and deleted in one submission: the deletion
	// sub-batch wins (matching the single-engine insert-then-delete order),
	// and since the edge was never present, neither side counts.
	ins, del := e.Apply([]graph.Edge{{U: 1, V: 2}}, []graph.Edge{{U: 2, V: 1}})
	if ins != 0 || del != 0 {
		t.Fatalf("insert+delete of absent edge applied (%d,%d), want (0,0)", ins, del)
	}
	if e.LocalGraph(e.ShardOf(1)).HasEdge(1, 2) {
		t.Fatal("edge survived an insert+delete pair")
	}

	// Present edge: the pair nets out to a deletion.
	e.Insert([]graph.Edge{{U: 1, V: 2}})
	ins, del = e.Apply([]graph.Edge{{U: 1, V: 2}}, []graph.Edge{{U: 1, V: 2}})
	if ins != 0 || del != 1 {
		t.Fatalf("insert+delete of present edge applied (%d,%d), want (0,1)", ins, del)
	}
	if got := e.NumEdges(); got != 0 {
		t.Fatalf("NumEdges %d, want 0", got)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMixedStreamMirrorsStayConsistent(t *testing.T) {
	const n = 250
	rng := rand.New(rand.NewSource(11))
	for _, p := range []int{2, 4} {
		e := New(n, p, defaultP())
		for round := 0; round < 12; round++ {
			var ins, del []graph.Edge
			for i := 0; i < 120; i++ {
				ed := graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
				if rng.Intn(3) == 0 {
					del = append(del, ed)
				} else {
					ins = append(ins, ed)
				}
			}
			e.Apply(ins, del)
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("P=%d round %d: %v", p, round, err)
			}
		}
		// The reassembled global graph must be internally consistent too.
		g := graph.FromEdges(n, e.GlobalEdges())
		if err := g.Validate(); err != nil {
			t.Fatalf("P=%d: global graph: %v", p, err)
		}
		if g.NumEdges() != e.NumEdges() {
			t.Fatalf("P=%d: global %d edges, counter %d", p, g.NumEdges(), e.NumEdges())
		}
	}
}

// TestShardedApproximationBounds is the determinism/equivalence harness:
// one fixed update stream is replayed at P = 1, 2, 4 and 8, and at every
// shard count the estimate of each vertex must satisfy the paper's
// provable bound against the exact coreness of its owning shard's
// subgraph (for P = 1 that is the global graph), and must never exceed
// the bound times the global exact coreness (the local coreness of a
// subgraph lower-bounds the global one).
func TestShardedApproximationBounds(t *testing.T) {
	const n = 400
	edges := gen.ChungLu(n, 3200, 2.3, 42)
	bound := provableBound(defaultP()) + 1e-9

	for _, p := range []int{1, 2, 4, 8} {
		e := New(n, p, defaultP())
		for _, b := range gen.Batches(edges, 500) {
			e.Insert(b)
		}
		e.Delete(edges[:1000])
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		globalCore := exact.Parallel(e.Snapshot())
		for s := 0; s < p; s++ {
			localCore := exact.Parallel(e.LocalGraph(s).Snapshot())
			for v := uint32(0); v < n; v++ {
				if e.ShardOf(v) != s || localCore[v] == 0 {
					continue
				}
				est := e.Read(v)
				if r := ratioError(est, localCore[v]); r > bound {
					t.Fatalf("P=%d shard %d vertex %d: estimate %.2f vs local coreness %d (ratio %.2f > %.2f)",
						p, s, v, est, localCore[v], r, bound)
				}
				if est > bound*math.Max(float64(globalCore[v]), 1) {
					t.Fatalf("P=%d vertex %d: estimate %.2f exceeds bound×global coreness %d",
						p, v, est, globalCore[v])
				}
			}
		}
	}
}

// TestConcurrentReadersVsBatchWriters is the race/linearizability stress
// harness: goroutine readers race concurrent batch writers (run it under
// -race). Throughout the run every read must return a well-formed estimate
// — a value the level structure can actually produce, i.e. never a torn
// level — and at quiescent checkpoints the estimates must satisfy the
// paper's error bound against exact coreness of the shard subgraphs.
func TestConcurrentReadersVsBatchWriters(t *testing.T) {
	const n = 200
	rounds, writers, readers := 16, 3, 4
	if testing.Short() {
		rounds = 6
	}
	e := New(n, 4, defaultP())

	// The lattice of estimates the level structure can emit: one value per
	// level. Any read outside this set observed a torn/intermediate state.
	valid := make(map[float64]bool)
	s := e.LocalCPLDS(0).S
	for l := int32(0); l <= s.MaxLevel(); l++ {
		valid[s.EstimateFromLevel(l)] = true
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		rng := rand.New(rand.NewSource(int64(100 + r)))
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := uint32(rng.Intn(n))
				est := e.Read(v)
				if !valid[est] {
					t.Errorf("torn read: vertex %d returned %v, not a level estimate", v, est)
					return
				}
			}
		}()
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		rng := rand.New(rand.NewSource(int64(7 + w)))
		go func() {
			defer writerWG.Done()
			for round := 0; round < rounds; round++ {
				var ins, del []graph.Edge
				for i := 0; i < 100; i++ {
					ed := graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
					if rng.Intn(4) == 0 {
						del = append(del, ed)
					} else {
						ins = append(ins, ed)
					}
				}
				e.Apply(ins, del)
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if t.Failed() {
		return
	}

	// Quiescent checkpoint: structural invariants plus the paper's error
	// bound for every vertex against its shard subgraph.
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	bound := provableBound(defaultP()) + 1e-9
	for si := 0; si < e.NumShards(); si++ {
		localCore := exact.Parallel(e.LocalGraph(si).Snapshot())
		for v := uint32(0); v < n; v++ {
			if e.ShardOf(v) != si || localCore[v] == 0 {
				continue
			}
			if r := ratioError(e.Read(v), localCore[v]); r > bound {
				t.Fatalf("shard %d vertex %d: ratio %.2f > %.2f after stress", si, v, r, bound)
			}
		}
	}
}

// TestConcurrentDisjointInsertsAllLand checks that racing submissions are
// all applied exactly once: writers insert disjoint edge sets concurrently
// and the union must come out, with per-caller counts adding up.
func TestConcurrentDisjointInsertsAllLand(t *testing.T) {
	const n = 600
	const perWriter = 120
	const writers = 5
	e := New(n, 4, defaultP())
	counts := make([]int, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			edges := make([]graph.Edge, 0, perWriter)
			for i := 0; i < perWriter; i++ {
				// Disjoint vertex ranges per writer => disjoint edges.
				base := uint32(w * perWriter)
				edges = append(edges, graph.Edge{U: base + uint32(i%perWriter), V: base + uint32((i+1)%perWriter)})
			}
			counts[w] = e.Insert(edges)
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	if int64(total) != e.NumEdges() {
		t.Fatalf("per-caller counts sum to %d, engine has %d edges", total, e.NumEdges())
	}
	if got := len(e.GlobalEdges()); int64(got) != e.NumEdges() {
		t.Fatalf("global edge list has %d edges, counter %d", got, e.NumEdges())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShardStats(t *testing.T) {
	const n = 600
	edges := gen.ChungLu(n, 3000, 2.3, 41)
	e := New(n, 4, defaultP())
	e.Insert(edges)
	half := edges[:len(edges)/2]
	e.Delete(half)

	stats := e.Stats()
	if len(stats) != 4 {
		t.Fatalf("got %d stats entries, want 4", len(stats))
	}
	var owned int
	var primary, local, inserted, deleted int64
	var batches uint64
	for i, s := range stats {
		if s.Shard != i {
			t.Fatalf("entry %d has shard id %d", i, s.Shard)
		}
		if s.OwnedVertices != e.owned[i] {
			t.Fatalf("shard %d owned %d != %d", i, s.OwnedVertices, e.owned[i])
		}
		if s.LocalEdges < s.PrimaryEdges {
			t.Fatalf("shard %d local %d < primary %d", i, s.LocalEdges, s.PrimaryEdges)
		}
		owned += s.OwnedVertices
		primary += s.PrimaryEdges
		local += s.LocalEdges
		inserted += s.Inserted
		deleted += s.Deleted
		batches += s.Batches
	}
	if owned != n {
		t.Fatalf("owned vertices sum %d != %d", owned, n)
	}
	if primary != e.NumEdges() {
		t.Fatalf("primary edges sum %d != global %d", primary, e.NumEdges())
	}
	if inserted == 0 || deleted == 0 || batches < 2 {
		t.Fatalf("cumulative counters not maintained: ins=%d del=%d batches=%d",
			inserted, deleted, batches)
	}
	// local >= primary overall, with equality only if no cut edges exist.
	if local < primary {
		t.Fatalf("local edges sum %d < primary sum %d", local, primary)
	}
	// CheckInvariants cross-checks the stats counters against a recount.
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShardStatsConcurrentWithUpdates(t *testing.T) {
	// Stats must be safe to read while submissions race (exercised under
	// -race in CI).
	const n = 400
	edges := gen.ChungLu(n, 2000, 2.3, 42)
	e := New(n, 2, defaultP())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range e.Stats() {
				_ = s.LocalEdges
			}
		}
	}()
	for i := 0; i+100 <= len(edges); i += 100 {
		e.Insert(edges[i : i+100])
	}
	close(stop)
	wg.Wait()
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
