package shard

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/mvcc"
)

// ringEdges returns a cycle over n vertices.
func ringEdges(n int) []graph.Edge {
	out := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		out[i] = graph.E(uint32(i), uint32((i+1)%n))
	}
	return out
}

// cliqueEdges returns a complete graph over vertices [0, k).
func cliqueEdges(k int) []graph.Edge {
	var out []graph.Edge
	for i := uint32(0); i < uint32(k); i++ {
		for j := i + 1; j < uint32(k); j++ {
			out = append(out, graph.E(i, j))
		}
	}
	return out
}

// TestRetainedReadsReconstructEveryEpoch walks a sharded engine through a
// sequence of committed states, records the exact pinned-read vector at
// every boundary, and verifies ReadAllAt/ReadManyAt reproduce each recorded
// epoch bit-for-bit long after later batches committed — the vector-log
// mapping from global epochs to per-shard cuts in its simplest observable
// form.
func TestRetainedReadsReconstructEveryEpoch(t *testing.T) {
	const n = 48
	for _, p := range []int{1, 3} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			eng := New(n, p, lds.DefaultParams())
			eng.SetRetainedEpochs(64)
			snaps := map[uint64][]float64{}
			record := func() {
				out := make([]float64, n)
				e := eng.ReadAllPinned(out)
				snaps[e] = out
			}
			record()
			for k := 0; k < 8; k++ {
				if k%2 == 0 {
					eng.Insert(cliqueEdges(6 + 2*k))
					eng.Insert(ringEdges(n))
				} else {
					eng.Delete(ringEdges(n))
				}
				record()
			}
			if len(snaps) < 5 {
				t.Fatalf("only %d distinct epochs recorded", len(snaps))
			}
			vs := []uint32{0, 5, 17, 33, 47}
			for e, want := range snaps {
				got := make([]float64, n)
				if err := eng.ReadAllAt(got, e); err != nil {
					t.Fatalf("ReadAllAt(%d): %v", e, err)
				}
				for v := range want {
					if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
						t.Fatalf("epoch %d vertex %d: ReadAllAt %v, recorded %v", e, v, got[v], want[v])
					}
				}
				many := make([]float64, len(vs))
				if err := eng.ReadManyAt(vs, many, e); err != nil {
					t.Fatalf("ReadManyAt(%d): %v", e, err)
				}
				for i, v := range vs {
					if many[i] != want[v] {
						t.Fatalf("epoch %d vertex %d: ReadManyAt %v, recorded %v", e, v, many[i], want[v])
					}
				}
			}
			if err := eng.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedPinAndEviction covers the engine-level pin lifecycle: a pinned
// global epoch survives arbitrarily many commits, unpinning lets it age
// out, and the typed errors surface for evicted and future epochs.
func TestShardedPinAndEviction(t *testing.T) {
	const n = 40
	eng := New(n, 3, lds.DefaultParams())
	eng.SetRetainedEpochs(2)
	eng.Insert(ringEdges(n))
	eng.Insert(cliqueEdges(10))
	epoch := eng.Epoch()
	want := make([]float64, n)
	if err := eng.ReadAllAt(want, epoch); err != nil {
		t.Fatal(err)
	}
	if err := eng.PinEpoch(epoch); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 12; k++ {
		c := cliqueEdges(8 + k)
		if k%2 == 0 {
			eng.Insert(c)
		} else {
			eng.Delete(c)
		}
	}
	got := make([]float64, n)
	if err := eng.ReadAllAt(got, epoch); err != nil {
		t.Fatalf("pinned epoch unreadable: %v", err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("pinned epoch %d drifted at vertex %d: %v vs %v", epoch, v, got[v], want[v])
		}
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	eng.UnpinEpoch(epoch)
	eng.Insert(ringEdges(n)) // age the released epoch out
	err := eng.ReadAllAt(got, epoch)
	if !errors.Is(err, mvcc.ErrEvicted) {
		t.Fatalf("released epoch read = %v, want ErrEvicted", err)
	}
	var ev *mvcc.EvictedEpochError
	if !errors.As(err, &ev) || ev.Epoch != epoch {
		t.Fatalf("evicted error names epoch %+v, want %d", ev, epoch)
	}
	if err := eng.PinEpoch(eng.Epoch() + 5); !errors.Is(err, mvcc.ErrFuture) {
		t.Fatalf("future pin = %v, want ErrFuture", err)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
