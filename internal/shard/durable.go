package shard

import (
	"fmt"

	"kcore/internal/wal"
)

// This file implements wal.Engine for the sharded engine: batch logging at
// the commit boundary, whole-engine quiescence for snapshots, and
// per-shard capture/restore.

var _ wal.Engine = (*Engine)(nil)

// SetBatchLog installs fn, called synchronously inside each shard's
// one-updater section after every coalesced batch round commits — per
// shard, records are therefore produced in local commit order, which is
// the commit-vector order the multi-version vector log assigns to global
// epochs. The Batch's edge slices alias the round's coalescing buffers
// and are only valid for the duration of the call. Install before the
// engine serves updates (or under Quiesce); nil uninstalls.
func (e *Engine) SetBatchLog(fn func(wal.Batch)) { e.batchLog = fn }

// Quiesce runs f while every shard's apply lock is held (acquired in
// index order, so concurrent Quiesce calls cannot deadlock): no batch is
// in flight and none can start until f returns. Concurrent submissions
// queue as usual and drain after f.
func (e *Engine) Quiesce(f func()) {
	for _, s := range e.shards {
		s.applyMu.Lock()
	}
	defer func() {
		for _, s := range e.shards {
			s.applyMu.Unlock()
		}
	}()
	f()
}

// ApplyLogged re-applies one logged batch round to its shard with exactly
// the accounting of the live path (drainAndApplyLocked): presence and
// primary-ownership are evaluated against the pre-round graph, then the
// insert and delete sub-batches run in order. Single-threaded recovery
// use only.
func (e *Engine) ApplyLogged(b wal.Batch) {
	s := e.shards[b.Shard]
	g := s.c.Graph()
	for _, ed := range b.Ins {
		if e.ShardOf(ed.U) == b.Shard && !g.HasEdge(ed.U, ed.V) {
			e.numEdges.Add(1)
			s.primaryEdges.Add(1)
		}
	}
	for _, ed := range b.Del {
		if e.ShardOf(ed.U) == b.Shard && g.HasEdge(ed.U, ed.V) {
			e.numEdges.Add(-1)
			s.primaryEdges.Add(-1)
		}
	}
	if b.HasIns {
		applied := int64(s.c.InsertBatch(b.Ins))
		s.inserted.Add(applied)
		s.localEdges.Add(applied)
	}
	if b.HasDel {
		applied := int64(s.c.DeleteBatch(b.Del))
		s.deleted.Add(applied)
		s.localEdges.Add(-applied)
	}
	s.batches.Add(1)
}

// ShardDurable captures shard si's durable state: a CSR copy of its local
// subgraph, its levels, its local committed epoch and its cumulative
// counters. Must run inside a Quiesce section; the returned state is
// fully copied and stays valid after the section ends.
func (e *Engine) ShardDurable(si int) wal.ShardState {
	s := e.shards[si]
	st := wal.ShardState{
		Graph:    s.c.Graph().Snapshot(),
		Levels:   make([]int32, e.n),
		Epoch:    s.c.Epoch(),
		Batches:  s.batches.Load(),
		Inserted: s.inserted.Load(),
		Deleted:  s.deleted.Load(),
	}
	s.c.Levels(st.Levels)
	return st
}

// ShardEpoch returns shard si's local committed epoch (one atomic load;
// the cheap slice of ShardDurable the resume ring seeds from).
func (e *Engine) ShardEpoch(si int) uint64 { return e.shards[si].c.Epoch() }

// RestoreShard restores shard si from st: the shard's CPLDS is rebuilt
// from the snapshot, the cumulative counters are re-seeded, and the live
// edge counters (local, primary, global) are recomputed from the restored
// subgraph. Recovery calls it on a fresh engine before it serves traffic;
// replication bootstrap calls it on a live read-serving engine via
// RestoreAll (the CPLDS restore is reader-safe, and the global edge
// counter is adjusted by the delta against the shard's previous count).
func (e *Engine) RestoreShard(si int, st wal.ShardState) error {
	s := e.shards[si]
	if err := s.c.Restore(st.Graph, st.Levels, st.Epoch); err != nil {
		return fmt.Errorf("shard %d: %w", si, err)
	}
	s.batches.Store(st.Batches)
	s.inserted.Store(st.Inserted)
	s.deleted.Store(st.Deleted)
	var local, primary int64
	for _, ed := range s.c.Graph().Edges() {
		local++
		if e.ShardOf(ed.U) == si {
			primary++
		}
	}
	e.numEdges.Add(primary - s.primaryEdges.Swap(primary))
	s.localEdges.Store(local)
	return nil
}

// RestoreAll restores every shard from states inside one quiesce section
// and re-bases the multi-version bookkeeping on the restored epochs: each
// shard's delta store restarts empty (inside its CPLDS restore) and the
// cross-shard vector log, when retention is on, restarts at the restored
// commit vector. Safe on a live engine serving concurrent reads — this is
// the follower-side entry point for replication bootstrap. Updaters are
// excluded for the duration (they queue and drain after).
func (e *Engine) RestoreAll(states []wal.ShardState) error {
	if len(states) != e.p {
		return fmt.Errorf("shard: restore of %d shard states into %d shards", len(states), e.p)
	}
	var err error
	e.Quiesce(func() {
		for si, st := range states {
			if err = e.RestoreShard(si, st); err != nil {
				return
			}
		}
		if e.vlog != nil {
			counts := make([]uint64, e.p)
			for si, s := range e.shards {
				counts[si] = s.c.Epoch()
			}
			e.vlog.Reset(counts)
		}
		// Re-base the change-feed epoch counter (a no-op unless the feed
		// is on without retention) so post-restore events carry epochs
		// consistent with the restored commit vector.
		e.installCommitHooks()
	})
	return err
}
