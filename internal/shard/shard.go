// Package shard provides a sharded CPLDS engine: vertices are hash-
// partitioned across P independent cplds.CPLDS instances, fronted by a
// batch-coalescing scheduler that accepts concurrent update submissions
// from any number of goroutines.
//
// # Partitioning
//
// Vertex v is owned by shard ShardOf(v) (a multiplicative hash of v). An
// edge (u, v) is routed to the shard owning u and, when different, mirrored
// into the shard owning v, so every shard's local subgraph contains all
// edges incident to the vertices it owns. Coreness reads of v route
// directly to v's owning shard and use the CPLDS lock-free linearizable
// read protocol there: reads never block on updates, exactly as in the
// single-engine case.
//
// # Scheduling
//
// Updates are submitted via Apply/Insert/Delete, which may be called
// concurrently. Each submission is split into per-shard sub-batches and
// enqueued; per shard, a combining lock drains everything queued, coalesces
// it into one CPLDS batch (deduping opposing insert/delete pairs of the
// same edge — the latest submission wins), and applies it under that
// shard's one-updater contract. Sub-batches of distinct shards are applied
// in parallel. A caller's submission is thus folded into at most one CPLDS
// batch per shard together with every other submission that queued behind
// the same in-flight batch.
//
// Cross-shard enqueue of one submission is atomic and globally ordered, so
// the two mirror copies of a cut edge always converge to the same presence
// state even when racing submissions touch the same edge.
//
// # Semantics
//
// Each shard maintains the paper's (2+3/λ)(1+δ)-approximation over its
// local subgraph (the edges incident to its owned vertices). For P = 1 the
// engine is semantically identical to a single CPLDS. For P > 1 the
// estimate returned for v approximates v's coreness in its owning shard's
// subgraph. The subgraph's exact coreness never exceeds the global
// coreness, so the estimate still respects the upper side of the bound
// against the global value (est ≤ factor × global coreness), but it may
// undershoot the global coreness by more than the factor; reads remain
// per-vertex linearizable at shard granularity. This is the
// throughput-for-globality trade the sharded deployment makes; callers
// that need the full global guarantee run with P = 1.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"kcore/internal/cplds"
	"kcore/internal/exact"
	"kcore/internal/feed"
	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/mvcc"
	"kcore/internal/parallel"
	"kcore/internal/wal"
)

// opKind distinguishes the two edge operations in a coalesced batch.
type opKind uint8

const (
	opInsert opKind = iota
	opDelete
)

// entry is one (edge, operation) pair routed to a shard. primary marks the
// copy that owns accounting for the edge (the owner shard of the canonical
// lower endpoint), so mirrored cut edges are counted exactly once.
type entry struct {
	e       graph.Edge
	kind    opKind
	primary bool
}

// subOp is the portion of one caller submission routed to one shard.
type subOp struct {
	entries []entry
	op      *pendingOp
	done    atomic.Bool
}

// pendingOp aggregates the per-shard results of one caller submission.
type pendingOp struct {
	inserted atomic.Int64
	deleted  atomic.Int64
}

// shardState is one shard: a CPLDS over the local subgraph plus its
// scheduler queue, combining lock and load counters.
type shardState struct {
	c   *cplds.CPLDS
	idx int // this shard's index (for batch-log records)

	qmu   sync.Mutex
	queue []*subOp

	applyMu sync.Mutex // held while draining + applying (the one updater)

	batches atomic.Uint64 // coalesced batches applied on this shard

	// lastGlobal is the global epoch assigned to this shard's most recent
	// commit, written inside the commit hook and read by the change-feed
	// sink later in the same BatchEnd call — both run on the shard's one
	// updater goroutine, so a plain field suffices.
	lastGlobal uint64

	// Load counters, maintained atomically by the shard's updater so that
	// Stats can be served concurrently with updates.
	inserted     atomic.Int64 // edges applied to the local subgraph, total
	deleted      atomic.Int64
	localEdges   atomic.Int64 // edges currently in the local subgraph (incl. mirrors)
	primaryEdges atomic.Int64 // distinct global edges owned by this shard
}

// Engine is the sharded CPLDS engine.
//
// Concurrency contract: Apply, Insert and Delete may be called from any
// number of goroutines; Read, ReadNonSync and ReadSync from any goroutine
// at any time. Quiescent operations (Snapshot, GlobalEdges, Degree,
// CheckInvariants, LocalGraph) must not run concurrently with updates.
type Engine struct {
	n      int
	p      int
	params lds.Params
	shards []*shardState
	owned  []int // owned vertex count per shard (fixed by the hash)

	// submitMu makes cross-shard enqueue atomic: every shard queue sees
	// submissions appended in the same global order, which is what the
	// latest-submission-wins coalescing relies on for mirror convergence.
	submitMu sync.Mutex

	numEdges atomic.Int64 // global (deduplicated) edge count

	// Multi-version retention (SetRetainedEpochs): each shard's CPLDS keeps
	// a per-epoch delta store, and vlog maps cross-shard epochs to the
	// per-shard commit vectors they correspond to — each shard's commit
	// publication runs under the log's lock (via the CPLDS commit hook), so
	// the mapping is total and agrees with the vectors pinned reads
	// certify. nil (with retained == 0, or with p == 1, where the global
	// epoch is the single shard's local epoch) when no log is needed.
	retained int
	vlog     *mvcc.VectorLog

	// Change feed (SetEventHub). With p > 1 every event must carry the
	// cross-shard epoch of its commit: the vector log's Commit returns it
	// when retention is on; otherwise feedMu+feedEpoch replicate just the
	// counter half of the log (publication serialized under the mutex, so
	// global epochs are totally ordered and stamped before the commit is
	// visible). feedEpoch always tracks commits once installed — counter
	// sync cannot depend on whether subscribers are attached.
	hub       *feed.Hub
	feedMu    sync.Mutex
	feedEpoch uint64

	// batchLog, when non-nil, receives one wal.Batch per committed
	// coalesced round, invoked inside the committing shard's one-updater
	// section (see SetBatchLog). Installed before the engine serves
	// traffic or under Quiesce, so no synchronization beyond applyMu is
	// needed on the read side.
	batchLog func(wal.Batch)
}

// New returns an engine over n vertices partitioned across p shards
// (p < 1 is treated as 1).
func New(n, p int, params lds.Params) *Engine {
	if p < 1 {
		p = 1
	}
	e := &Engine{n: n, p: p, params: params, shards: make([]*shardState, p)}
	for i := range e.shards {
		e.shards[i] = &shardState{c: cplds.New(n, params), idx: i}
	}
	e.owned = make([]int, p)
	for v := 0; v < n; v++ {
		e.owned[e.ShardOf(uint32(v))]++
	}
	return e
}

// NumVertices returns the (fixed) number of vertices.
func (e *Engine) NumVertices() int { return e.n }

// NumShards returns the shard count P.
func (e *Engine) NumShards() int { return e.p }

// Params returns the approximation parameters.
func (e *Engine) Params() lds.Params { return e.params }

// ApproxFactor returns the per-shard theoretical approximation factor.
func (e *Engine) ApproxFactor() float64 { return e.params.ApproxFactor() }

// NumEdges returns the number of distinct edges currently in the global
// graph (mirrored copies counted once). It is safe to call concurrently
// with updates; the value is the count as of the last completed accounting.
func (e *Engine) NumEdges() int64 { return e.numEdges.Load() }

// Batches returns the total number of coalesced batches applied across all
// shards.
func (e *Engine) Batches() uint64 {
	var total uint64
	for _, s := range e.shards {
		total += s.batches.Load()
	}
	return total
}

// Epoch returns the cross-shard epoch: the total number of CPLDS batches
// committed across all shards, advanced as the scheduler's coalesced
// rounds commit on their shards — i.e. exactly at batch boundaries.
//
// A sum labels a cut unambiguously for the epochs reported by the pinned
// read protocols. The per-shard committed counts form one monotone history
// in which commits are totally ordered, and a pinned read certifies a
// count vector that was stable across its whole collection window — a
// vector of that history. Two stable vectors can never be componentwise
// incomparable (each reader's stable window would have to both precede
// and follow the other's, via the shard each disagrees on), so equal sums
// imply equal vectors, i.e. the identical committed state. A bare Epoch()
// call, by contrast, reads the components at staggered instants; it is the
// right tool for stats and for pinning a fresh View, but only epochs
// returned by ReadPinned/ReadManyPinned/ReadAllPinned carry the
// same-epoch-same-state guarantee. Safe to call at any time; one atomic
// load per shard.
func (e *Engine) Epoch() uint64 {
	var sum uint64
	for _, s := range e.shards {
		sum += s.c.Epoch()
	}
	return sum
}

// ShardOf returns the shard owning vertex v. Fibonacci (multiplicative)
// hashing decorrelates ownership from vertex-id locality so that id-ordered
// workloads still spread across shards; the high half of the product is
// used because the low bits of v*K are not mixed (taking v*K mod a
// power-of-two p would degenerate to v mod p).
func (e *Engine) ShardOf(v uint32) int {
	if e.p == 1 {
		return 0
	}
	h := (uint64(v) + 1) * 11400714819323198485
	return int((h >> 32) % uint64(e.p))
}

// --- reads (lock-free, routed to the owning shard) ---

// Read returns the linearizable coreness estimate of v from its owning
// shard. Lock-free; safe concurrently with updates.
func (e *Engine) Read(v uint32) float64 { return e.shards[e.ShardOf(v)].c.Read(v) }

// ReadNonSync returns the non-linearizable instantaneous estimate of v.
func (e *Engine) ReadNonSync(v uint32) float64 { return e.shards[e.ShardOf(v)].c.ReadNonSync(v) }

// ReadSync returns the blocking (SyncReads baseline) estimate of v: it
// waits for the owning shard's in-flight batch, if any.
func (e *Engine) ReadSync(v uint32) float64 { return e.shards[e.ShardOf(v)].c.ReadSync(v) }

// --- epoch-pinned reads (consistent cross-shard cuts) ---

// pinnedAttempts bounds the optimistic retries of a cross-shard pinned
// multi-read before it degrades to the blocking all-gates path; see the
// CPLDS constant of the same name.
const pinnedAttempts = 8

// ReadPinned returns v's linearizable estimate together with the global
// epoch of a committed cut the value belongs to. Lock-free in the common
// case; safe concurrently with updates.
func (e *Engine) ReadPinned(v uint32) (float64, uint64) {
	if e.p == 1 {
		return e.shards[0].c.ReadPinned(v)
	}
	sc := e.shards[e.ShardOf(v)].c
	for attempt := 0; attempt < pinnedAttempts; attempt++ {
		s1 := sc.CommitSeq()
		if s1&1 != 0 {
			continue
		}
		est := sc.Read(v)
		// Read the other shards' committed epochs BEFORE re-validating the
		// owning shard's sequence, so every component load falls inside the
		// window where the owning component is provably stable. The commit
		// history's cuts with this sum then all carry the owning component
		// at s1/2 (the history's cuts inside the window bracket the label,
		// and none of them bumps the owning shard), so the label is
		// consistent with the value: a pinned multi-read reporting the same
		// epoch serves the same value for v.
		epoch := s1 >> 1
		for _, s := range e.shards {
			if s.c != sc {
				epoch += s.c.Epoch()
			}
		}
		if sc.CommitSeq() != s1 {
			continue
		}
		return est, epoch
	}
	// Blocking fallback: hold every shard's batch gate in read mode so no
	// commit can move, and read value and epoch from the frozen cut.
	// (Summing unpinned components after a shard-local pinned read would
	// not do: the owning shard could commit again before the other
	// components are read, mislabeling the value's cut.)
	for _, s := range e.shards {
		s.c.GateRLock()
	}
	est := sc.ReadNonSync(v)
	epoch := e.Epoch()
	for _, s := range e.shards {
		s.c.GateRUnlock()
	}
	return est, epoch
}

// readPinned runs collect against a validated cross-shard cut and returns
// the cut's global epoch. Optimistic protocol: record every shard's commit
// sequence (retrying while any unmark phase is in flight), collect, and
// validate that no sequence changed; a failed validation implies a batch
// committed somewhere — update progress — and the collection restarts.
// After pinnedAttempts failures it falls back to holding every shard's
// batch gate in read mode, which blocks all commits (and only commits:
// writers never hold one gate while waiting for another, so the staggered
// acquisition cannot deadlock) and collects from the frozen cut via
// collectQuiescent.
func (e *Engine) readPinned(collect, collectQuiescent func()) uint64 {
	seqs := make([]uint64, e.p)
	for attempt := 0; attempt < pinnedAttempts; attempt++ {
		var epoch uint64
		stable := true
		for i, s := range e.shards {
			q := s.c.CommitSeq()
			if q&1 != 0 {
				stable = false
				break
			}
			seqs[i] = q
			epoch += q >> 1
		}
		if !stable {
			continue
		}
		collect()
		for i, s := range e.shards {
			if s.c.CommitSeq() != seqs[i] {
				stable = false
				break
			}
		}
		if stable {
			return epoch
		}
	}
	for _, s := range e.shards {
		s.c.GateRLock()
	}
	collectQuiescent()
	epoch := e.Epoch()
	for _, s := range e.shards {
		s.c.GateRUnlock()
	}
	return epoch
}

// ReadManyPinned fills out[i] with the linearizable estimate of vs[i] such
// that every value belongs to the single committed cross-shard cut
// identified by the returned epoch. len(out) must equal len(vs). Safe
// concurrently with updates; lock-free in the common case.
func (e *Engine) ReadManyPinned(vs []uint32, out []float64) uint64 {
	if e.p == 1 {
		return e.shards[0].c.ReadManyPinned(vs, out)
	}
	return e.readPinned(
		func() {
			for i, v := range vs {
				out[i] = e.Read(v)
			}
		},
		func() {
			for i, v := range vs {
				out[i] = e.ReadNonSync(v) // quiescent under the gates
			}
		})
}

// ReadAllPinned fills out[v] with every vertex's linearizable estimate from
// one committed cross-shard cut and returns its epoch. len(out) must be
// NumVertices().
func (e *Engine) ReadAllPinned(out []float64) uint64 {
	if e.p == 1 {
		return e.shards[0].c.ReadAllPinned(out)
	}
	return e.readPinned(
		func() {
			for v := range out {
				out[v] = e.Read(uint32(v))
			}
		},
		func() {
			for v := range out {
				out[v] = e.ReadNonSync(uint32(v))
			}
		})
}

// --- retained (multi-version) reads across shards ---

// SetRetainedEpochs configures multi-version retention: the n most recent
// retired cross-shard epochs stay exactly readable through the *At read
// protocols (pins can extend the window). Each shard's CPLDS retains n
// local epoch deltas — one global commit advances exactly one shard, so n
// local deltas per shard always cover any retained global cut — and, for
// p > 1, a vector log records the per-shard commit vector of every global
// epoch. n <= 0 disables retention. Quiescent use only.
func (e *Engine) SetRetainedEpochs(n int) {
	if n < 0 {
		n = 0
	}
	e.retained = n
	if n == 0 || e.p == 1 {
		e.vlog = nil
		for _, s := range e.shards {
			s.c.SetRetainedEpochs(n)
		}
	} else {
		init := make([]uint64, e.p)
		for si, s := range e.shards {
			s.c.SetRetainedEpochs(n)
			init[si] = s.c.Epoch()
		}
		e.vlog = mvcc.NewVectorLog(init, n)
	}
	e.installCommitHooks()
}

// installCommitHooks (re)installs every shard's commit hook to match the
// current vlog/hub configuration. The hook's job is twofold: serialize
// commit publication with the cross-shard epoch counter, and record the
// global epoch each commit lands on (shardState.lastGlobal) for the
// change-feed sink that runs later in the same BatchEnd. Quiescent use
// only (called from SetRetainedEpochs, SetEventHub and RestoreAll).
func (e *Engine) installCommitHooks() {
	switch {
	case e.vlog != nil:
		// The vector log already serializes publication; its Commit hands
		// back the global epoch.
		for si, s := range e.shards {
			si, s := si, s
			s.c.SetCommitHook(func(publish func()) { s.lastGlobal = e.vlog.Commit(si, publish) })
		}
	case e.hub != nil && e.p > 1:
		// Feed without retention: replicate just the counter half of the
		// vector log, re-based on the current global epoch.
		e.feedEpoch = 0
		for _, s := range e.shards {
			e.feedEpoch += s.c.Epoch()
		}
		for _, s := range e.shards {
			s := s
			s.c.SetCommitHook(func(publish func()) {
				e.feedMu.Lock()
				publish()
				e.feedEpoch++
				s.lastGlobal = e.feedEpoch
				e.feedMu.Unlock()
			})
		}
	default:
		// p == 1 (local epoch is the global epoch) or no consumer.
		for _, s := range e.shards {
			s.c.SetCommitHook(nil)
		}
	}
}

// SetEventHub attaches the change-feed hub: after every shard commit, the
// batch's coreness transitions are published to h stamped with the
// cross-shard epoch of that commit (see installCommitHooks). When no
// subscriber is attached the per-batch cost is one atomic load. nil
// detaches. Quiescent use only.
func (e *Engine) SetEventHub(h *feed.Hub) {
	e.hub = h
	if h == nil {
		for _, s := range e.shards {
			s.c.SetEventSink(nil, nil)
		}
		e.installCommitHooks()
		return
	}
	for si, s := range e.shards {
		si, s := si, s
		sink := func(localEpoch uint64, events []feed.Event) {
			if e.p == 1 {
				h.Publish(localEpoch, events)
				return
			}
			// Mirrored cross-shard edges make this shard's cplds move levels
			// for vertices it does not own; reads route to the owner shard,
			// so only owned vertices' transitions are coreness changes. Keep
			// those, restamped with the cross-shard epoch this commit landed
			// on. Compacting in place is safe: the slice is the cplds
			// extraction arena, valid (and ours) until the sink returns.
			epoch := s.lastGlobal
			kept := events[:0]
			for _, ev := range events {
				if e.ShardOf(ev.Vertex) != si {
					continue
				}
				ev.Epoch = epoch
				kept = append(kept, ev)
			}
			if len(kept) > 0 {
				h.Publish(epoch, kept)
			}
		}
		s.c.SetEventSink(h.Active, sink)
	}
	e.installCommitHooks()
}

// RetainedEpochs returns the configured retention depth (0 = disabled).
func (e *Engine) RetainedEpochs() int { return e.retained }

// OldestReadableEpoch returns the oldest global epoch the *At protocols can
// still serve (the current epoch when retention is disabled).
func (e *Engine) OldestReadableEpoch() uint64 {
	if e.p == 1 {
		return e.shards[0].c.OldestReadableEpoch()
	}
	if e.vlog == nil {
		return e.Epoch()
	}
	return e.vlog.OldestReadable()
}

// CheckEpoch reports whether the global epoch is currently servable,
// failing with the typed mvcc evicted/future errors otherwise.
func (e *Engine) CheckEpoch(epoch uint64) error {
	if e.p == 1 {
		return e.shards[0].c.CheckEpoch(epoch)
	}
	if e.vlog == nil {
		cur := e.Epoch()
		if epoch > cur {
			return &mvcc.FutureEpochError{Epoch: epoch, Committed: cur}
		}
		if epoch < cur {
			return &mvcc.EvictedEpochError{Epoch: epoch, OldestReadable: cur}
		}
		return nil
	}
	return e.vlog.Check(epoch)
}

// globalizeEvicted rewrites a shard-local eviction error in terms of the
// requested global epoch (local epoch numbers would only confuse callers);
// other errors pass through unchanged.
func (e *Engine) globalizeEvicted(err error, epoch uint64) error {
	if err != nil && errors.Is(err, mvcc.ErrEvicted) {
		return &mvcc.EvictedEpochError{Epoch: epoch, OldestReadable: e.OldestReadableEpoch()}
	}
	return err
}

// currentOnlyErr is the retention-disabled outcome of a requested-epoch
// read: the collection certified the cut `got`, and only an exact match
// with the request is servable.
func currentOnlyErr(epoch, got uint64) error {
	switch {
	case got == epoch:
		return nil
	case epoch > got:
		return &mvcc.FutureEpochError{Epoch: epoch, Committed: got}
	default:
		return &mvcc.EvictedEpochError{Epoch: epoch, OldestReadable: got}
	}
}

// ReadManyAt fills out[i] with the estimate vs[i] had at the given
// committed global epoch — even a retired one, as long as it is retained
// (or pinned). The global epoch is resolved to its per-shard commit vector
// and every shard reconstructs its vertices at its own component, so the
// result is one consistent cross-shard cut, deterministic for a given
// epoch. len(out) must equal len(vs). Safe concurrently with updates.
func (e *Engine) ReadManyAt(vs []uint32, out []float64, epoch uint64) error {
	if e.p == 1 {
		return e.shards[0].c.ReadManyAt(vs, out, epoch)
	}
	if e.vlog == nil {
		return currentOnlyErr(epoch, e.ReadManyPinned(vs, out))
	}
	vec := make([]uint64, e.p)
	if err := e.vlog.VectorAt(epoch, vec); err != nil {
		return err
	}
	perVert := make([][]uint32, e.p)
	perIdx := make([][]int, e.p)
	for i, v := range vs {
		si := e.ShardOf(v)
		perVert[si] = append(perVert[si], v)
		perIdx[si] = append(perIdx[si], i)
	}
	for si, svs := range perVert {
		if len(svs) == 0 {
			continue
		}
		sout := make([]float64, len(svs))
		if err := e.shards[si].c.ReadManyAt(svs, sout, vec[si]); err != nil {
			return e.globalizeEvicted(err, epoch)
		}
		for j, i := range perIdx[si] {
			out[i] = sout[j]
		}
	}
	return nil
}

// ReadAllAt fills out[v] with every vertex's estimate at the given
// committed global epoch (see ReadManyAt). len(out) must be NumVertices().
func (e *Engine) ReadAllAt(out []float64, epoch uint64) error {
	if e.p == 1 {
		return e.shards[0].c.ReadAllAt(out, epoch)
	}
	if e.vlog == nil {
		return currentOnlyErr(epoch, e.ReadAllPinned(out))
	}
	vec := make([]uint64, e.p)
	if err := e.vlog.VectorAt(epoch, vec); err != nil {
		return err
	}
	tmp := make([]float64, e.n)
	for si, s := range e.shards {
		if err := s.c.ReadAllAt(tmp, vec[si]); err != nil {
			return e.globalizeEvicted(err, epoch)
		}
		for v := range out {
			if e.ShardOf(uint32(v)) == si {
				out[v] = tmp[v]
			}
		}
	}
	return nil
}

// PinEpoch keeps the global epoch readable — eviction will not cross it in
// the vector log or any shard's delta store — until a matching UnpinEpoch.
// Requires retention (SetRetainedEpochs).
func (e *Engine) PinEpoch(epoch uint64) error {
	if e.p == 1 {
		return e.shards[0].c.PinEpoch(epoch)
	}
	if e.vlog == nil {
		cur := e.Epoch()
		if epoch > cur {
			return &mvcc.FutureEpochError{Epoch: epoch, Committed: cur}
		}
		return fmt.Errorf("shard: cannot pin epoch %d with retention disabled: %w", epoch, mvcc.ErrEvicted)
	}
	vec := make([]uint64, e.p)
	if err := e.vlog.Pin(epoch, vec); err != nil {
		return err
	}
	for si := range e.shards {
		if err := e.shards[si].c.PinEpoch(vec[si]); err != nil {
			// A racing commit evicted this shard's tail between the log pin
			// and the store pin; unwind and report the epoch as evicted.
			for sj := 0; sj < si; sj++ {
				e.shards[sj].c.UnpinEpoch(vec[sj])
			}
			e.vlog.Unpin(epoch, vec)
			return e.globalizeEvicted(err, epoch)
		}
	}
	return nil
}

// UnpinEpoch releases one PinEpoch of the global epoch.
func (e *Engine) UnpinEpoch(epoch uint64) {
	if e.p == 1 {
		e.shards[0].c.UnpinEpoch(epoch)
		return
	}
	if e.vlog == nil {
		return
	}
	vec := make([]uint64, e.p)
	if e.vlog.Unpin(epoch, vec) {
		for si := range e.shards {
			e.shards[si].c.UnpinEpoch(vec[si])
		}
	}
}

// --- update submission ---

// Insert submits a batch of insertions and returns the number of edges
// actually added. Safe for concurrent callers.
func (e *Engine) Insert(edges []graph.Edge) int {
	ins, _ := e.Apply(edges, nil)
	return ins
}

// Delete submits a batch of deletions and returns the number of edges
// actually removed. Safe for concurrent callers.
func (e *Engine) Delete(edges []graph.Edge) int {
	_, del := e.Apply(nil, edges)
	return del
}

// Apply submits a mixed batch. Within one call, a deletion of an edge
// overrides an insertion of the same edge (deletions are the later
// sub-batch, as in the single-engine ApplyBatch). Returns the number of
// edges this call actually inserted and deleted. Safe for concurrent
// callers; concurrent submissions to the same shard are coalesced into one
// CPLDS batch.
func (e *Engine) Apply(insertions, deletions []graph.Edge) (inserted, deleted int) {
	// Normalize and dedupe within the call: canonical form, in-range,
	// no self-loops; delete-after-insert of the same edge leaves a delete.
	ops := make(map[graph.Edge]opKind, len(insertions)+len(deletions))
	n := uint32(e.n)
	addAll := func(edges []graph.Edge, k opKind) {
		for _, ed := range edges {
			if ed.IsSelfLoop() || ed.U >= n || ed.V >= n {
				continue
			}
			ops[ed.Canon()] = k
		}
	}
	addAll(insertions, opInsert)
	addAll(deletions, opDelete)
	if len(ops) == 0 {
		return 0, 0
	}

	// Split into per-shard sub-batches with cut-edge mirroring.
	perShard := make(map[int][]entry, e.p)
	for ed, k := range ops {
		su, sv := e.ShardOf(ed.U), e.ShardOf(ed.V)
		perShard[su] = append(perShard[su], entry{e: ed, kind: k, primary: true})
		if sv != su {
			perShard[sv] = append(perShard[sv], entry{e: ed, kind: k})
		}
	}
	op := &pendingOp{}
	subs := make(map[int]*subOp, len(perShard))

	// Enqueue atomically across shards so every shard queue observes
	// submissions in the same global order (mirror convergence).
	e.submitMu.Lock()
	for si, entries := range perShard {
		sub := &subOp{entries: entries, op: op}
		subs[si] = sub
		s := e.shards[si]
		s.qmu.Lock()
		s.queue = append(s.queue, sub)
		s.qmu.Unlock()
	}
	e.submitMu.Unlock()

	// Flush the touched shards in parallel. Each flush loops until this
	// call's sub-batch has been applied — by us or by whichever caller
	// currently holds the shard's combining lock.
	thunks := make([]func(), 0, len(subs))
	for si, sub := range subs {
		s, sub := e.shards[si], sub
		thunks = append(thunks, func() {
			for !sub.done.Load() {
				s.applyMu.Lock()
				s.drainAndApplyLocked(e)
				s.applyMu.Unlock()
			}
		})
	}
	parallel.Do(thunks...)
	return int(op.inserted.Load()), int(op.deleted.Load())
}

// drainAndApplyLocked drains the shard's queue, coalesces the drained
// sub-batches into one insert batch and one delete batch (latest
// submission wins per edge), applies them to the shard's CPLDS, and
// completes the drained sub-ops. Caller holds s.applyMu.
func (s *shardState) drainAndApplyLocked(e *Engine) {
	s.qmu.Lock()
	subs := s.queue
	s.queue = nil
	s.qmu.Unlock()
	if len(subs) == 0 {
		return
	}

	// Coalesce: the queue is in global submission order, so iterating in
	// order and overwriting implements latest-submission-wins.
	type winner struct {
		ent entry
		sub *subOp
	}
	final := make(map[graph.Edge]winner, len(subs[0].entries))
	for _, sub := range subs {
		for _, ent := range sub.entries {
			final[ent.e] = winner{ent: ent, sub: sub}
		}
	}

	var ins, del []graph.Edge
	g := s.c.Graph() // quiescent: we are this shard's only updater
	for ed, w := range final {
		present := g.HasEdge(ed.U, ed.V)
		if w.ent.kind == opInsert {
			ins = append(ins, ed)
			if w.ent.primary && !present {
				w.sub.op.inserted.Add(1)
				e.numEdges.Add(1)
				s.primaryEdges.Add(1)
			}
		} else {
			del = append(del, ed)
			if w.ent.primary && present {
				w.sub.op.deleted.Add(1)
				e.numEdges.Add(-1)
				s.primaryEdges.Add(-1)
			}
		}
	}
	if len(ins) > 0 {
		applied := int64(s.c.InsertBatch(ins))
		s.inserted.Add(applied)
		s.localEdges.Add(applied)
	}
	if len(del) > 0 {
		applied := int64(s.c.DeleteBatch(del))
		s.deleted.Add(applied)
		s.localEdges.Add(-applied)
	}
	s.batches.Add(1)
	// Log the committed round before acknowledging the submissions, so a
	// caller's return implies its batch is in the log (durable, under the
	// fsync-always policy). The slices alias this round's buffers; the
	// logger serializes them before returning.
	if e.batchLog != nil {
		e.batchLog(wal.Batch{
			Shard:  s.idx,
			Epoch:  s.c.Epoch(),
			Ins:    ins,
			Del:    del,
			HasIns: len(ins) > 0,
			HasDel: len(del) > 0,
		})
	}
	for _, sub := range subs {
		sub.done.Store(true)
	}
}

// Stats is a point-in-time snapshot of one shard's load — the observability
// surface shard rebalancing will be driven by.
type Stats struct {
	Shard         int    `json:"shard"`
	OwnedVertices int    `json:"owned_vertices"` // vertices hashed to this shard
	PrimaryEdges  int64  `json:"primary_edges"`  // distinct global edges it owns
	LocalEdges    int64  `json:"local_edges"`    // edges in its subgraph (incl. mirrored cut edges)
	Batches       uint64 `json:"batches"`        // coalesced CPLDS batches applied
	Inserted      int64  `json:"edges_inserted"` // cumulative edges applied locally
	Deleted       int64  `json:"edges_deleted"`
}

// Stats returns per-shard load statistics. It is safe to call concurrently
// with updates and reads; counters are point-in-time atomic loads.
func (e *Engine) Stats() []Stats {
	out := make([]Stats, e.p)
	for si, s := range e.shards {
		out[si] = Stats{
			Shard:         si,
			OwnedVertices: e.owned[si],
			PrimaryEdges:  s.primaryEdges.Load(),
			LocalEdges:    s.localEdges.Load(),
			Batches:       s.batches.Load(),
			Inserted:      s.inserted.Load(),
			Deleted:       s.deleted.Load(),
		}
	}
	return out
}

// --- quiescent inspection ---

// Degree returns v's degree in the global graph (equal to its degree in
// its owning shard's subgraph). Quiescent use only.
func (e *Engine) Degree(v uint32) int {
	return e.shards[e.ShardOf(v)].c.Graph().Degree(v)
}

// IncidentEdges returns the edges incident to v (from its owning shard,
// which holds all of them). Quiescent use only: it iterates the shard's
// adjacency maps, which concurrent update submissions mutate.
func (e *Engine) IncidentEdges(v uint32) []graph.Edge {
	var out []graph.Edge
	e.shards[e.ShardOf(v)].c.Graph().Neighbors(v, func(w uint32) bool {
		out = append(out, graph.Edge{U: v, V: w})
		return true
	})
	return out
}

// GlobalEdges returns every distinct edge of the global graph in canonical
// order, reassembled from the shards' primary copies. Quiescent use only.
func (e *Engine) GlobalEdges() []graph.Edge {
	var out []graph.Edge
	for si, s := range e.shards {
		for _, ed := range s.c.Graph().Edges() {
			if e.ShardOf(ed.U) == si {
				out = append(out, ed)
			}
		}
	}
	parallel.Sort(out, func(a, b graph.Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	return out
}

// Snapshot builds a CSR snapshot of the global graph. Quiescent use only.
func (e *Engine) Snapshot() *graph.CSR {
	return graph.CSRFromEdges(e.n, e.GlobalEdges())
}

// ExactCoreness computes exact global coreness by static parallel peeling
// of the reassembled global graph. Quiescent use only.
func (e *Engine) ExactCoreness() []int32 { return exact.Parallel(e.Snapshot()) }

// LocalGraph exposes shard s's local subgraph. Quiescent use only;
// intended for tests and diagnostics.
func (e *Engine) LocalGraph(s int) *graph.Dynamic { return e.shards[s].c.Graph() }

// LocalCPLDS exposes shard s's CPLDS. Intended for tests.
func (e *Engine) LocalCPLDS(s int) *cplds.CPLDS { return e.shards[s].c }

// CheckInvariants verifies the level-structure invariants of every shard
// and the cross-shard mirroring invariants: mirrored copies of each cut
// edge agree, each shard holds exactly the edges incident to its owned
// vertices, and the global edge counter matches. Quiescent use only.
func (e *Engine) CheckInvariants() error {
	for si, s := range e.shards {
		if err := s.c.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
	}
	var count int64
	for si, s := range e.shards {
		var localPrimary, localTotal int64
		for _, ed := range s.c.Graph().Edges() {
			su, sv := e.ShardOf(ed.U), e.ShardOf(ed.V)
			if su != si && sv != si {
				return fmt.Errorf("shard %d holds foreign edge (%d,%d)", si, ed.U, ed.V)
			}
			if su != sv {
				other := su
				if si == su {
					other = sv
				}
				if !e.shards[other].c.Graph().HasEdge(ed.U, ed.V) {
					return fmt.Errorf("cut edge (%d,%d) present in shard %d, missing in shard %d",
						ed.U, ed.V, si, other)
				}
			}
			if su == si {
				count++
				localPrimary++
			}
			localTotal++
		}
		if got := s.primaryEdges.Load(); got != localPrimary {
			return fmt.Errorf("shard %d primary-edge stat drift: counted %d, recorded %d",
				si, localPrimary, got)
		}
		if got := s.localEdges.Load(); got != localTotal {
			return fmt.Errorf("shard %d local-edge stat drift: counted %d, recorded %d",
				si, localTotal, got)
		}
	}
	if got := e.numEdges.Load(); got != count {
		return fmt.Errorf("edge counter drift: counted %d, recorded %d", count, got)
	}
	if e.vlog != nil {
		epochs := make([]uint64, e.p)
		for si, s := range e.shards {
			epochs[si] = s.c.Epoch()
		}
		if err := e.vlog.CheckInvariants(epochs); err != nil {
			return err
		}
	}
	return nil
}
