package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func openTestFile(t *testing.T, fs FS) File {
	t.Helper()
	f, err := fs.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestOSPassthrough(t *testing.T) {
	fs := OS()
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read %q, %v", data, err)
	}
	if err := fs.Rename(path, filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "b" {
		t.Fatalf("readdir %v, %v", ents, err)
	}
	if err := fs.Truncate(filepath.Join(dir, "b"), 2); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat(filepath.Join(dir, "b"))
	if err != nil || fi.Size() != 2 {
		t.Fatalf("stat %v, %v", fi, err)
	}
	if err := fs.Remove(filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
}

func TestFailSyncsSchedule(t *testing.T) {
	inj := New(nil)
	f := openTestFile(t, inj)
	inj.FailSyncs(2, 3) // 2 succeed, then 3 fail, then healthy again
	for k := 0; k < 2; k++ {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d failed before schedule: %v", k, err)
		}
	}
	for k := 0; k < 3; k++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("sync %d: %v, want injected failure", k, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after schedule exhausted: %v", err)
	}
	c := inj.Counters()
	if c.Syncs != 6 || c.FailedSyncs != 3 {
		t.Fatalf("counters %+v", c)
	}
}

func TestFailSyncsForeverAndClear(t *testing.T) {
	inj := New(nil)
	f := openTestFile(t, inj)
	inj.FailSyncs(0, -1)
	for k := 0; k < 5; k++ {
		if err := f.Sync(); !errors.Is(err, ErrInjected) {
			t.Fatalf("permanent sync fault did not fire on call %d: %v", k, err)
		}
	}
	inj.Clear()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after Clear: %v", err)
	}
}

func TestShortWrite(t *testing.T) {
	inj := New(nil)
	f := openTestFile(t, inj)
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	inj.ShortWrite(3)
	n, err := f.Write([]byte("bbbbbbbb"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write wrote %d, err %v; want 3, injected", n, err)
	}
	// One-shot: the next write is healthy.
	if _, err := f.Write([]byte("cc")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil || string(data) != "aaaabbbcc" {
		t.Fatalf("on-disk bytes %q, %v", data, err)
	}
}

func TestByteBudgetENOSPC(t *testing.T) {
	inj := New(nil)
	f := openTestFile(t, inj)
	inj.LimitBytes(6)
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	// 2 bytes left: a 4-byte write partially lands, then ENOSPC.
	n, err := f.Write([]byte("bbbb"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("over-budget write: %v, want ENOSPC", err)
	}
	if n != 2 {
		t.Fatalf("partial write %d bytes, want 2", n)
	}
	if _, err := f.Write([]byte("c")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("exhausted budget write: %v, want ENOSPC", err)
	}
	inj.LimitBytes(-1)
	if _, err := f.Write([]byte("dd")); err != nil {
		t.Fatalf("write after lifting budget: %v", err)
	}
}

func TestCorruptNextWrite(t *testing.T) {
	inj := New(nil)
	f := openTestFile(t, inj)
	inj.CorruptNextWrite()
	payload := []byte("abcdefgh")
	orig := append([]byte(nil), payload...)
	if _, err := f.Write(payload); err != nil {
		t.Fatalf("corrupt write must report success: %v", err)
	}
	if string(payload) != string(orig) {
		t.Fatal("corrupt write mutated the caller's buffer")
	}
	data, _ := os.ReadFile(f.Name())
	if string(data) == string(orig) {
		t.Fatal("corrupt write landed unmodified bytes")
	}
	if len(data) != len(orig) {
		t.Fatalf("corrupt write changed length: %d vs %d", len(data), len(orig))
	}
}

func TestFailWritesAndOpensAndRenames(t *testing.T) {
	inj := New(nil)
	f := openTestFile(t, inj)
	inj.FailWrites(0, 1)
	if n, err := f.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write fault: n=%d err=%v", n, err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write after one-shot fault: %v", err)
	}

	dir := t.TempDir()
	inj.FailOpens(0, 1)
	if _, err := inj.OpenFile(filepath.Join(dir, "y"), os.O_WRONLY|os.O_CREATE, 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("open fault: %v", err)
	}
	g, err := inj.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatalf("open after one-shot fault: %v", err)
	}
	g.Close()

	inj.FailRenames(0, 1)
	if err := inj.Rename(g.Name(), filepath.Join(dir, "z")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename fault: %v", err)
	}
	if err := inj.Rename(g.Name(), filepath.Join(dir, "z")); err != nil {
		t.Fatalf("rename after one-shot fault: %v", err)
	}
}
