// Package faultfs is the injectable filesystem seam of the durability
// subsystem. The write-ahead log performs all file I/O through the FS
// interface; production uses the OS passthrough, and tests swap in an
// Injector that fails operations on a programmable schedule — fail the
// Nth fsync, short-write mid-record, report ENOSPC after a byte budget,
// corrupt a write in flight — so every WAL error path is deterministically
// reachable without sleeping, filling disks, or killing processes.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"syscall"
)

// ErrInjected is the base error returned by scheduled faults (except the
// byte-budget fault, which wraps syscall.ENOSPC to mimic a full disk).
// Match with errors.Is.
var ErrInjected = errors.New("faultfs: injected fault")

// File is the open-file surface the WAL needs: append writes, fsync,
// close, and the name for path-based repair (truncate after a torn write).
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem surface the WAL routes every operation through.
// Methods mirror the os package functions of the same name.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	Stat(name string) (fs.FileInfo, error)
}

// OS returns the passthrough filesystem backed by the os package.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }

// plan schedules failures for one operation class: skip After successful
// calls, then fail Count calls (negative Count = fail forever).
type plan struct {
	after int
	count int
}

// take reports whether the current call should fail, advancing the plan.
func (p *plan) take() bool {
	if p.count == 0 {
		return false
	}
	if p.after > 0 {
		p.after--
		return false
	}
	if p.count > 0 {
		p.count--
	}
	return true
}

// Counters is a point-in-time snapshot of the operations an Injector has
// seen and the faults it has fired.
type Counters struct {
	Writes, Syncs, Renames, Opens           uint64
	FailedWrites, FailedSyncs               uint64
	FailedRenames, FailedOpens              uint64
	BytesWritten                            int64
	ShortWrites, CorruptWrites, NoSpaceHits uint64
}

// Injector wraps a base FS with programmable faults. All schedule methods
// are safe for concurrent use with file operations; Clear lifts every
// armed fault (counters are preserved), which models the operator fixing
// the disk so the WAL can re-attach.
type Injector struct {
	base FS

	mu      sync.Mutex
	writes  plan
	syncs   plan
	renames plan
	opens   plan

	byteBudget int64 // bytes still writable before ENOSPC; <0 = unlimited
	budgetSet  bool

	shortNext   int  // next write persists only this many bytes, then fails; <0 = off
	corruptNext bool // next write flips a bit but reports success

	c Counters
}

// New returns an Injector over base (nil base = the real OS filesystem)
// with no faults armed.
func New(base FS) *Injector {
	if base == nil {
		base = OS()
	}
	return &Injector{base: base, shortNext: -1}
}

// FailWrites arms write failures: after `after` more successful writes,
// the next `count` writes fail with ErrInjected before touching the file
// (count < 0 = fail forever).
func (i *Injector) FailWrites(after, count int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.writes = plan{after: after, count: count}
}

// FailSyncs arms fsync failures with the same schedule semantics.
func (i *Injector) FailSyncs(after, count int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.syncs = plan{after: after, count: count}
}

// FailRenames arms rename failures with the same schedule semantics.
func (i *Injector) FailRenames(after, count int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.renames = plan{after: after, count: count}
}

// FailOpens arms OpenFile/CreateTemp failures with the same schedule
// semantics.
func (i *Injector) FailOpens(after, count int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.opens = plan{after: after, count: count}
}

// LimitBytes sets the remaining byte budget: once `n` more bytes have been
// written through the injector, further writes fail with an error matching
// syscall.ENOSPC — the full-disk footprint. n < 0 removes the limit.
func (i *Injector) LimitBytes(n int64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.byteBudget = n
	i.budgetSet = n >= 0
}

// ShortWrite arms a torn write: the next write persists only `keep` bytes
// of its buffer, then fails with ErrInjected — the footprint of a crash or
// I/O error mid-record.
func (i *Injector) ShortWrite(keep int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.shortNext = keep
}

// CorruptNextWrite arms silent corruption: the next write flips one bit of
// its payload but reports full success — the footprint recovery-side CRCs
// exist to catch.
func (i *Injector) CorruptNextWrite() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.corruptNext = true
}

// Clear lifts every armed fault; counters are preserved.
func (i *Injector) Clear() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.writes, i.syncs, i.renames, i.opens = plan{}, plan{}, plan{}, plan{}
	i.budgetSet = false
	i.shortNext = -1
	i.corruptNext = false
}

// Counters returns a snapshot of operation and fault counts.
func (i *Injector) Counters() Counters {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.c
}

// writeDecision is resolved under the lock, applied outside it.
type writeDecision struct {
	fail    bool  // fail before writing anything
	short   int   // >= 0: write only this many bytes, then fail
	corrupt bool  // flip a bit, report success
	noSpace bool  // fail with ENOSPC (possibly after a partial write)
	allowed int64 // bytes the budget permits when noSpace is set
}

func (i *Injector) decideWrite(n int) writeDecision {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.c.Writes++
	var d writeDecision
	if i.writes.take() {
		i.c.FailedWrites++
		d.fail = true
		return d
	}
	if i.shortNext >= 0 {
		d.short = i.shortNext
		if d.short > n {
			d.short = n
		}
		i.shortNext = -1
		i.c.ShortWrites++
		i.c.FailedWrites++
		i.c.BytesWritten += int64(d.short)
		if i.budgetSet {
			i.byteBudget -= int64(d.short)
		}
		return d
	}
	d.short = -1
	if i.budgetSet && i.byteBudget < int64(n) {
		d.noSpace = true
		d.allowed = i.byteBudget
		if d.allowed < 0 {
			d.allowed = 0
		}
		i.byteBudget -= d.allowed
		i.c.BytesWritten += d.allowed
		i.c.NoSpaceHits++
		i.c.FailedWrites++
		return d
	}
	if i.corruptNext {
		d.corrupt = true
		i.corruptNext = false
		i.c.CorruptWrites++
	}
	if i.budgetSet {
		i.byteBudget -= int64(n)
	}
	i.c.BytesWritten += int64(n)
	return d
}

type injFile struct {
	f   File
	inj *Injector
}

func (f *injFile) Name() string { return f.f.Name() }
func (f *injFile) Close() error { return f.f.Close() }

func (f *injFile) Write(p []byte) (int, error) {
	d := f.inj.decideWrite(len(p))
	switch {
	case d.fail:
		return 0, fmt.Errorf("faultfs: write: %w", ErrInjected)
	case d.short >= 0:
		n, err := f.f.Write(p[:d.short])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("faultfs: short write (%d of %d bytes): %w", n, len(p), ErrInjected)
	case d.noSpace:
		n := 0
		if d.allowed > 0 {
			n, _ = f.f.Write(p[:d.allowed])
		}
		return n, fmt.Errorf("faultfs: injected disk full: %w", syscall.ENOSPC)
	case d.corrupt:
		q := make([]byte, len(p))
		copy(q, p)
		if len(q) > 0 {
			q[len(q)/2] ^= 0x40
		}
		return f.f.Write(q)
	default:
		return f.f.Write(p)
	}
}

func (f *injFile) Sync() error {
	f.inj.mu.Lock()
	f.inj.c.Syncs++
	fail := f.inj.syncs.take()
	if fail {
		f.inj.c.FailedSyncs++
	}
	f.inj.mu.Unlock()
	if fail {
		return fmt.Errorf("faultfs: fsync: %w", ErrInjected)
	}
	return f.f.Sync()
}

func (i *Injector) openFault() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.c.Opens++
	if i.opens.take() {
		i.c.FailedOpens++
		return fmt.Errorf("faultfs: open: %w", ErrInjected)
	}
	return nil
}

func (i *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := i.openFault(); err != nil {
		return nil, err
	}
	f, err := i.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, inj: i}, nil
}

func (i *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := i.openFault(); err != nil {
		return nil, err
	}
	f, err := i.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, inj: i}, nil
}

func (i *Injector) Rename(oldpath, newpath string) error {
	i.mu.Lock()
	i.c.Renames++
	fail := i.renames.take()
	if fail {
		i.c.FailedRenames++
	}
	i.mu.Unlock()
	if fail {
		return fmt.Errorf("faultfs: rename %s: %w", newpath, ErrInjected)
	}
	return i.base.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error               { return i.base.Remove(name) }
func (i *Injector) Truncate(name string, size int64) error { return i.base.Truncate(name, size) }
func (i *Injector) MkdirAll(path string, perm fs.FileMode) error {
	return i.base.MkdirAll(path, perm)
}
func (i *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return i.base.ReadDir(name) }
func (i *Injector) ReadFile(name string) ([]byte, error)       { return i.base.ReadFile(name) }
func (i *Injector) Stat(name string) (fs.FileInfo, error)      { return i.base.Stat(name) }

var _ FS = (*Injector)(nil)
