// Package apps implements the graph applications the paper lists as
// natural clients of k-core decomposition (§1, §9): low out-degree
// orientation, densest-subgraph approximation, influential-spreader
// selection (the epidemiology use case motivating approximate coreness),
// greedy coloring via degeneracy ordering, and parallel maximal matching.
package apps

import (
	"sort"
	"sync/atomic"

	"kcore/internal/exact"
	"kcore/internal/graph"
	"kcore/internal/parallel"
)

// Orientation is an acyclic orientation of an undirected graph: Out[v]
// lists the out-neighbours of v.
type Orientation struct {
	Out [][]uint32
}

// MaxOutDegree returns the largest out-degree in the orientation.
func (o *Orientation) MaxOutDegree() int {
	max := 0
	for _, out := range o.Out {
		if len(out) > max {
			max = len(out)
		}
	}
	return max
}

// LowOutDegreeOrientation orients every edge from the endpoint that occurs
// earlier in the degeneracy (peeling) order to the later one. The resulting
// out-degree is at most the graph's degeneracy — the "low out-degree
// orientation" application of §9.
func LowOutDegreeOrientation(g *graph.CSR) *Orientation {
	n := g.NumVertices()
	_, order := exact.SequentialWithOrder(g)
	rank := make([]int32, n)
	for i, v := range order {
		rank[v] = int32(i)
	}
	out := make([][]uint32, n)
	parallel.For(n, func(v int) {
		var mine []uint32
		for _, w := range g.Neighbors(uint32(v)) {
			if rank[v] < rank[w] {
				mine = append(mine, w)
			}
		}
		out[v] = mine
	})
	return &Orientation{Out: out}
}

// DensestSubgraphResult is the output of ApproxDensestSubgraph.
type DensestSubgraphResult struct {
	Vertices []uint32
	Density  float64 // edges / vertices within the subgraph
}

// ApproxDensestSubgraph returns the maximum-coreness core as a
// 2-approximation of the densest subgraph: the k_max-core has density at
// least k_max/2, while no subgraph has density above k_max.
func ApproxDensestSubgraph(g *graph.CSR) DensestSubgraphResult {
	core := exact.Sequential(g)
	kmax := exact.MaxCore(core)
	members := exact.KCoreSubgraph(core, kmax)
	inCore := make([]bool, g.NumVertices())
	for _, v := range members {
		inCore[v] = true
	}
	var edges int64
	for _, v := range members {
		for _, w := range g.Neighbors(v) {
			if inCore[w] && v < w {
				edges++
			}
		}
	}
	density := 0.0
	if len(members) > 0 {
		density = float64(edges) / float64(len(members))
	}
	return DensestSubgraphResult{Vertices: members, Density: density}
}

// TopSpreaders returns the k vertices with the highest coreness (ties
// broken by vertex id), the k-shell heuristic of Kitsak et al. for
// identifying influential spreaders in epidemic models. The coreness input
// can be exact values or scaled approximate estimates.
func TopSpreaders(coreness []float64, k int) []uint32 {
	type vc struct {
		v uint32
		c float64
	}
	all := make([]vc, len(coreness))
	for v, c := range coreness {
		all[v] = vc{uint32(v), c}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].v < all[j].v
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint32, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].v
	}
	return out
}

// GreedyColoring colors vertices in reverse degeneracy order, assigning
// each the smallest color unused by its neighbours. It uses at most
// degeneracy+1 colors. Returns the color per vertex and the color count.
func GreedyColoring(g *graph.CSR) ([]int32, int) {
	n := g.NumVertices()
	_, order := exact.SequentialWithOrder(g)
	color := make([]int32, n)
	for i := range color {
		color[i] = -1
	}
	maxColor := int32(-1)
	// Reverse peeling order: each vertex sees at most `degeneracy` already-
	// colored neighbours when its turn comes.
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		used := map[int32]bool{}
		for _, w := range g.Neighbors(v) {
			if color[w] >= 0 {
				used[color[w]] = true
			}
		}
		c := int32(0)
		for used[c] {
			c++
		}
		color[v] = c
		if c > maxColor {
			maxColor = c
		}
	}
	return color, int(maxColor + 1)
}

// MaximalMatching computes a maximal matching with parallel greedy edge
// claiming: each edge attempts to atomically claim both endpoints; claimed
// edges enter the matching, and the process repeats over remaining edges
// until no edge has two free endpoints.
func MaximalMatching(g *graph.CSR) []graph.Edge {
	n := g.NumVertices()
	matched := make([]atomic.Bool, n)
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(uint32(v)) {
			if uint32(v) < w {
				edges = append(edges, graph.Edge{U: uint32(v), V: w})
			}
		}
	}
	var result []graph.Edge
	remaining := edges
	for len(remaining) > 0 {
		wins := make([]bool, len(remaining))
		parallel.For(len(remaining), func(i int) {
			e := remaining[i]
			if matched[e.U].Load() || matched[e.V].Load() {
				return
			}
			// Claim the lower endpoint, then the higher; release on
			// failure. Deterministic order prevents deadlock; CAS
			// prevents double-matching.
			if !matched[e.U].CompareAndSwap(false, true) {
				return
			}
			if !matched[e.V].CompareAndSwap(false, true) {
				matched[e.U].Store(false)
				return
			}
			wins[i] = true
		})
		var next []graph.Edge
		for i, e := range remaining {
			if wins[i] {
				result = append(result, e)
			} else if !matched[e.U].Load() && !matched[e.V].Load() {
				next = append(next, e)
			}
		}
		remaining = next
	}
	return result
}
