package apps

import (
	"reflect"
	"testing"

	"kcore/internal/exact"
	"kcore/internal/gen"
	"kcore/internal/graph"
)

func socialCSR(t *testing.T) *graph.CSR {
	t.Helper()
	edges := gen.ChungLu(800, 4000, 2.3, 91)
	return graph.CSRFromEdges(800, edges)
}

func TestLowOutDegreeOrientationBound(t *testing.T) {
	g := socialCSR(t)
	degen := exact.Degeneracy(g)
	o := LowOutDegreeOrientation(g)
	if got := o.MaxOutDegree(); int32(got) > degen {
		t.Fatalf("max out-degree %d exceeds degeneracy %d", got, degen)
	}
	// Every edge is oriented exactly once.
	var count int64
	for _, out := range o.Out {
		count += int64(len(out))
	}
	if count != g.NumEdges() {
		t.Fatalf("oriented %d edges, graph has %d", count, g.NumEdges())
	}
}

func TestOrientationAcyclicOnPath(t *testing.T) {
	// Path 0-1-2-3: orientation must not orient any edge both ways.
	g := graph.CSRFromEdges(4, []graph.Edge{graph.E(0, 1), graph.E(1, 2), graph.E(2, 3)})
	o := LowOutDegreeOrientation(g)
	seen := map[graph.Edge]bool{}
	for v, out := range o.Out {
		for _, w := range out {
			e := graph.E(uint32(v), w).Canon()
			if seen[e] {
				t.Fatalf("edge %v oriented twice", e)
			}
			seen[e] = true
		}
	}
	if len(seen) != 3 {
		t.Fatalf("oriented %d edges, want 3", len(seen))
	}
	if o.MaxOutDegree() > 1 {
		t.Fatalf("path orientation out-degree %d, want <= degeneracy 1", o.MaxOutDegree())
	}
}

func TestApproxDensestSubgraph(t *testing.T) {
	// Plant a 20-clique in a sparse background.
	edges := append(gen.Clique(20), gen.ErdosRenyi(500, 800, 92)...)
	// Shift background ids to avoid densifying the clique region further.
	g := graph.CSRFromEdges(500, edges)
	res := ApproxDensestSubgraph(g)
	kmax := exact.Degeneracy(g)
	if res.Density < float64(kmax)/2 {
		t.Fatalf("density %.2f below k_max/2 = %.2f", res.Density, float64(kmax)/2)
	}
	if len(res.Vertices) == 0 {
		t.Fatal("empty densest subgraph")
	}
	// The planted clique must be inside the reported subgraph.
	members := map[uint32]bool{}
	for _, v := range res.Vertices {
		members[v] = true
	}
	cliqueIn := 0
	for v := uint32(0); v < 20; v++ {
		if members[v] {
			cliqueIn++
		}
	}
	if cliqueIn < 20 {
		t.Fatalf("only %d/20 planted clique vertices in densest subgraph", cliqueIn)
	}
}

func TestTopSpreaders(t *testing.T) {
	core := []float64{1, 5, 3, 5, 2}
	got := TopSpreaders(core, 3)
	want := []uint32{1, 3, 2} // ties by id: 1 before 3
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopSpreaders = %v, want %v", got, want)
	}
	if got := TopSpreaders(core, 99); len(got) != 5 {
		t.Fatalf("k > n should clamp: %v", got)
	}
}

func TestGreedyColoringProper(t *testing.T) {
	g := socialCSR(t)
	color, used := GreedyColoring(g)
	degen := exact.Degeneracy(g)
	if int32(used) > degen+1 {
		t.Fatalf("used %d colors, degeneracy+1 = %d", used, degen+1)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if color[v] < 0 {
			t.Fatalf("vertex %d uncolored", v)
		}
		for _, w := range g.Neighbors(uint32(v)) {
			if color[v] == color[w] {
				t.Fatalf("adjacent %d and %d share color %d", v, w, color[v])
			}
		}
	}
}

func TestGreedyColoringClique(t *testing.T) {
	g := graph.CSRFromEdges(6, gen.Clique(6))
	_, used := GreedyColoring(g)
	if used != 6 {
		t.Fatalf("clique coloring used %d colors, want 6", used)
	}
}

func TestMaximalMatchingValidAndMaximal(t *testing.T) {
	g := socialCSR(t)
	m := MaximalMatching(g)
	used := map[uint32]bool{}
	for _, e := range m {
		if used[e.U] || used[e.V] {
			t.Fatalf("vertex reused in matching at %v", e)
		}
		used[e.U], used[e.V] = true, true
	}
	// Maximality: every graph edge has at least one matched endpoint.
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(uint32(v)) {
			if !used[uint32(v)] && !used[w] {
				t.Fatalf("edge (%d,%d) has both endpoints free", v, w)
			}
		}
	}
}

func TestMaximalMatchingPath(t *testing.T) {
	g := graph.CSRFromEdges(4, []graph.Edge{graph.E(0, 1), graph.E(1, 2), graph.E(2, 3)})
	m := MaximalMatching(g)
	if len(m) == 0 || len(m) > 2 {
		t.Fatalf("path matching size %d", len(m))
	}
}

func TestEmptyGraphApps(t *testing.T) {
	g := graph.CSRFromEdges(3, nil)
	if o := LowOutDegreeOrientation(g); o.MaxOutDegree() != 0 {
		t.Fatal("orientation of empty graph")
	}
	if m := MaximalMatching(g); len(m) != 0 {
		t.Fatal("matching in empty graph")
	}
	if _, used := GreedyColoring(g); used != 1 {
		t.Fatalf("empty graph should use 1 color, used %d", used)
	}
	res := ApproxDensestSubgraph(g)
	if res.Density != 0 {
		t.Fatalf("empty density = %v", res.Density)
	}
}
