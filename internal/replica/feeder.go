package replica

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"kcore/internal/wal"
)

// DefaultHeartbeat is the feeder's idle-stream heartbeat period.
const DefaultHeartbeat = 500 * time.Millisecond

// FeederOptions configure the primary-side log-shipping server.
type FeederOptions struct {
	// Heartbeat is how often an idle stream sends its commit vector
	// (default 500ms). Followers treat a stream silent for several
	// heartbeats as dead, so this also bounds partition detection.
	Heartbeat time.Duration
	// Buffer is the per-follower tail buffer in batches (default
	// wal.DefaultTailBuffer). A follower that falls further behind than
	// this is disconnected and re-bootstraps.
	Buffer int
}

func (o FeederOptions) withDefaults() FeederOptions {
	if o.Heartbeat <= 0 {
		o.Heartbeat = DefaultHeartbeat
	}
	if o.Buffer <= 0 {
		o.Buffer = wal.DefaultTailBuffer
	}
	return o
}

// FeederStats is a point-in-time snapshot of the feeder's counters,
// served in the primary's /stats replication block.
type FeederStats struct {
	Followers      int    `json:"followers"` // currently connected
	Connects       uint64 `json:"total_connects"`
	Bootstraps     uint64 `json:"bootstraps"`
	RecordsShipped uint64 `json:"records_shipped"`
	BytesShipped   uint64 `json:"bytes_shipped"`
	Overruns       uint64 `json:"overruns"` // followers dropped for falling behind
	Paused         bool   `json:"paused,omitempty"`
}

// Feeder is the primary-side replication server: each follower connection
// gets a bootstrap (every shard's durable state captured atomically with
// the tail subscription) followed by the live record stream. The Feeder is
// an http.Handler; the integration layer owns the listener.
type Feeder struct {
	src wal.Source
	opt FeederOptions
	mux *http.ServeMux

	// paused is the fault-injection/test hook: while set, connections
	// stop forwarding records (they keep heartbeating with the shipped
	// vector, so the link stays alive) and followers visibly lag.
	paused atomic.Bool

	followers  atomic.Int64
	connects   atomic.Uint64
	bootstraps atomic.Uint64
	records    atomic.Uint64
	bytes      atomic.Uint64
	overruns   atomic.Uint64
}

// NewFeeder returns a feeder shipping src's capture + batch stream.
func NewFeeder(src wal.Source, opt FeederOptions) *Feeder {
	f := &Feeder{src: src, opt: opt.withDefaults()}
	f.mux = http.NewServeMux()
	f.mux.HandleFunc("GET "+StreamPath, f.handleStream)
	f.mux.HandleFunc("GET "+InfoPath, f.handleInfo)
	return f
}

// Handler returns the feeder's HTTP handler (StreamPath + InfoPath).
func (f *Feeder) Handler() http.Handler { return f.mux }

// Pause stops record forwarding on every connection (heartbeats continue,
// so followers stay connected but lag). Test and fault-drill hook.
func (f *Feeder) Pause() { f.paused.Store(true) }

// Resume re-enables record forwarding after a Pause.
func (f *Feeder) Resume() { f.paused.Store(false) }

// Stats returns a point-in-time counter snapshot.
func (f *Feeder) Stats() FeederStats {
	return FeederStats{
		Followers:      int(f.followers.Load()),
		Connects:       f.connects.Load(),
		Bootstraps:     f.bootstraps.Load(),
		RecordsShipped: f.records.Load(),
		BytesShipped:   f.bytes.Load(),
		Overruns:       f.overruns.Load(),
		Paused:         f.paused.Load(),
	}
}

func (f *Feeder) handleInfo(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Vertices int `json:"vertices"`
		Shards   int `json:"shards"`
		FeederStats
	}{f.src.NumVertices(), f.src.NumShards(), f.Stats()})
}

// handleStream serves one follower for the lifetime of its connection:
// bootstrap, then live tail. Any write error or client disconnect ends
// the stream; the follower reconnects and re-bootstraps.
func (f *Feeder) handleStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	states, tail, err := f.src.Bootstrap(f.opt.Buffer)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer tail.Close()
	f.connects.Add(1)
	f.followers.Add(1)
	defer f.followers.Add(-1)

	w.Header().Set("Content-Type", "application/octet-stream")
	n, shards := f.src.NumVertices(), f.src.NumShards()
	cw := &countingWriter{w: w, f: f}
	if err := writeStreamHeader(cw, n, shards); err != nil {
		return
	}

	// Bootstrap: one state frame per shard, then the captured vector.
	vec := make([]uint64, shards)
	var frame []byte
	for si, st := range states {
		frame = frame[:0]
		var sihdr [4]byte
		binary.LittleEndian.PutUint32(sihdr[:], uint32(si))
		payload := wal.MarshalShardState(sihdr[:4:4], n, st)
		frame = appendFrame(frame, frameState, payload)
		if _, err := cw.Write(frame); err != nil {
			return
		}
		vec[si] = st.Epoch
	}
	if err := f.writeVectorFrame(cw, frameEnd, vec); err != nil {
		return
	}
	flusher.Flush()
	f.bootstraps.Add(1)

	// Live tail. Records are flushed eagerly when the tail drains (low
	// latency) and batched while it is backed up (throughput).
	hb := time.NewTicker(f.opt.Heartbeat)
	defer hb.Stop()
	ctx := r.Context()
	var recBuf []byte
	for {
		select {
		case <-ctx.Done():
			return
		case b, open := <-tail.C():
			if !open {
				// Overrun (or source shutdown): the follower is too far
				// behind this buffer — drop the stream, it re-bootstraps.
				if tail.Overrun() {
					f.overruns.Add(1)
				}
				return
			}
			// The pause hook blocks *before* the record hits the socket,
			// so a paused feed ships nothing — the drained record is held
			// here and shipped on resume, never lost.
			if err := f.waitWhilePaused(ctx, cw, flusher, vec); err != nil {
				return
			}
			recBuf = wal.EncodeRecord(recBuf, b)
			frame = appendFrame(frame[:0], frameRecord, recBuf)
			if _, err := cw.Write(frame); err != nil {
				return
			}
			vec[b.Shard] = b.Epoch
			f.records.Add(1)
			if len(tail.C()) == 0 {
				flusher.Flush()
			}
		case <-hb.C:
			if err := f.writeVectorFrame(cw, frameHeartbeat, vec); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// waitWhilePaused parks a stream while the pause hook is set, keeping the
// link alive with heartbeats (carrying the last *shipped* vector, so a
// paused feed is indistinguishable from an idle primary to the follower's
// liveness logic — only its epoch lag shows).
func (f *Feeder) waitWhilePaused(ctx context.Context, cw *countingWriter, flusher http.Flusher, vec []uint64) error {
	for f.paused.Load() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(f.opt.Heartbeat):
			if err := f.writeVectorFrame(cw, frameHeartbeat, vec); err != nil {
				return err
			}
			flusher.Flush()
		}
	}
	return nil
}

func (f *Feeder) writeVectorFrame(cw *countingWriter, typ byte, vec []uint64) error {
	payload := appendVector(make([]byte, 0, 8*len(vec)), vec)
	_, err := cw.Write(appendFrame(nil, typ, payload))
	return err
}

// countingWriter tracks shipped bytes into the feeder's counter.
type countingWriter struct {
	w interface{ Write([]byte) (int, error) }
	f *Feeder
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if c.f != nil {
		c.f.bytes.Add(uint64(n))
	}
	return n, err
}
