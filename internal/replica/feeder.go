package replica

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/wal"
)

// DefaultHeartbeat is the feeder's idle-stream heartbeat period.
const DefaultHeartbeat = 500 * time.Millisecond

// FeederOptions configure the primary-side log-shipping server.
type FeederOptions struct {
	// Heartbeat is how often an idle stream sends its commit vector
	// (default 500ms). Followers treat a stream silent for several
	// heartbeats as dead, so this also bounds partition detection.
	Heartbeat time.Duration
	// Buffer is the per-follower tail buffer in batches (default
	// wal.DefaultTailBuffer). A follower that falls further behind than
	// this is disconnected; it reconnects and resumes (or re-bootstraps
	// once the ring has evicted past its cursor).
	Buffer int
	// RetainBatches sizes the retained-batch ring serving resume: a
	// follower disconnected for fewer committed batches than this
	// reconnects without a snapshot transfer. 0 means
	// wal.DefaultRetainBatches; negative disables retention (every
	// reconnect re-bootstraps, the pre-resume behavior).
	RetainBatches int
}

func (o FeederOptions) withDefaults() FeederOptions {
	if o.Heartbeat <= 0 {
		o.Heartbeat = DefaultHeartbeat
	}
	if o.Buffer <= 0 {
		o.Buffer = wal.DefaultTailBuffer
	}
	if o.RetainBatches == 0 {
		o.RetainBatches = wal.DefaultRetainBatches
	}
	return o
}

// FeederStats is a point-in-time snapshot of the feeder's counters,
// served in the primary's /stats replication block.
type FeederStats struct {
	Followers  int    `json:"followers"` // currently connected
	Connects   uint64 `json:"total_connects"`
	Bootstraps uint64 `json:"bootstraps"`
	// Resumes counts reconnects served from the retained ring (no
	// snapshot transfer); ResumeRejects counts resume requests that fell
	// outside retention and were told to re-bootstrap.
	Resumes        uint64 `json:"resumes"`
	ResumeRejects  uint64 `json:"resume_rejects"`
	RecordsShipped uint64 `json:"records_shipped"`
	BytesShipped   uint64 `json:"bytes_shipped"`
	Overruns       uint64 `json:"overruns"` // followers dropped for falling behind
	Kicks          uint64 `json:"kicks,omitempty"`
	Paused         bool   `json:"paused,omitempty"`
}

// Feeder is the primary-side replication server: each follower connection
// gets either a bootstrap (every shard's durable state captured atomically
// with the tail subscription) or — when the follower presents an applied
// commit vector still covered by the retained ring — a resume (the
// retained records after that vector spliced into the live tail), followed
// by the live record stream. The Feeder is an http.Handler; the
// integration layer owns the listener.
type Feeder struct {
	src wal.Source
	opt FeederOptions
	mux *http.ServeMux

	// streamID is this primary incarnation's random identity, stamped on
	// every stream header and required to match in resume requests. The
	// retained ring's epochs only mean anything relative to the history
	// this process committed: a restarted primary may have recovered short
	// of batches it already shipped (publish precedes the WAL append, and
	// degraded mode commits without the disk) and then re-committed
	// different batches under the same epochs — a cursor from the previous
	// incarnation could pass the epoch-window check while naming a
	// divergent history. The id mismatch forces such followers through a
	// full bootstrap instead.
	streamID uint64

	// paused is the fault-injection/test hook: while set, connections
	// stop forwarding records (they keep heartbeating with the shipped
	// vector, so the link stays alive) and followers visibly lag.
	paused atomic.Bool

	// connMu guards conns, the per-connection kick channels. Kick closes
	// them all, forcing every follower through a reconnect (and therefore
	// a resume) deterministically.
	connMu sync.Mutex
	conns  map[chan struct{}]struct{}

	followers     atomic.Int64
	connects      atomic.Uint64
	bootstraps    atomic.Uint64
	resumes       atomic.Uint64
	resumeRejects atomic.Uint64
	records       atomic.Uint64
	bytes         atomic.Uint64
	overruns      atomic.Uint64
	kicks         atomic.Uint64
}

// NewFeeder returns a feeder shipping src's capture + batch stream, with
// the source's retained ring sized from opt.RetainBatches.
func NewFeeder(src wal.Source, opt FeederOptions) *Feeder {
	f := &Feeder{src: src, opt: opt.withDefaults(), streamID: newStreamID()}
	retain := f.opt.RetainBatches
	if retain < 0 {
		retain = 0
	}
	src.SetRetain(retain)
	f.mux = http.NewServeMux()
	f.mux.HandleFunc("GET "+StreamPath, f.handleStream)
	f.mux.HandleFunc("POST "+StreamPath, f.handleResume)
	f.mux.HandleFunc("GET "+InfoPath, f.handleInfo)
	f.mux.HandleFunc("POST "+KickPath, f.handleKick)
	return f
}

// newStreamID draws the per-boot stream identity: random, nonzero (zero
// is what a follower holds before it has ever read a header).
func newStreamID() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// Handler returns the feeder's HTTP handler (StreamPath + InfoPath +
// KickPath).
func (f *Feeder) Handler() http.Handler { return f.mux }

// Pause stops record forwarding on every connection (heartbeats continue,
// so followers stay connected but lag). Test and fault-drill hook.
func (f *Feeder) Pause() { f.paused.Store(true) }

// Resume re-enables record forwarding after a Pause.
func (f *Feeder) Resume() { f.paused.Store(false) }

// Kick drops every connected follower and returns how many it dropped.
// Followers reconnect and resume from their applied vector, so this is a
// cheap way to force a deterministic reconnect cycle (smoke tests, or
// rebalancing followers across primaries).
func (f *Feeder) Kick() int {
	f.connMu.Lock()
	n := len(f.conns)
	for ch := range f.conns {
		close(ch)
	}
	f.conns = nil
	f.connMu.Unlock()
	if n > 0 {
		f.kicks.Add(uint64(n))
	}
	return n
}

func (f *Feeder) registerConn() chan struct{} {
	ch := make(chan struct{})
	f.connMu.Lock()
	if f.conns == nil {
		f.conns = make(map[chan struct{}]struct{})
	}
	f.conns[ch] = struct{}{}
	f.connMu.Unlock()
	return ch
}

func (f *Feeder) unregisterConn(ch chan struct{}) {
	f.connMu.Lock()
	delete(f.conns, ch)
	f.connMu.Unlock()
}

// Stats returns a point-in-time counter snapshot.
func (f *Feeder) Stats() FeederStats {
	return FeederStats{
		Followers:      int(f.followers.Load()),
		Connects:       f.connects.Load(),
		Bootstraps:     f.bootstraps.Load(),
		Resumes:        f.resumes.Load(),
		ResumeRejects:  f.resumeRejects.Load(),
		RecordsShipped: f.records.Load(),
		BytesShipped:   f.bytes.Load(),
		Overruns:       f.overruns.Load(),
		Kicks:          f.kicks.Load(),
		Paused:         f.paused.Load(),
	}
}

func (f *Feeder) handleInfo(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Vertices int `json:"vertices"`
		Shards   int `json:"shards"`
		FeederStats
	}{f.src.NumVertices(), f.src.NumShards(), f.Stats()})
}

func (f *Feeder) handleKick(w http.ResponseWriter, _ *http.Request) {
	n := f.Kick()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"kicked\":%d}\n", n)
}

// streamConn is one follower connection's write-side state: the counting
// writer, the shipped commit vector the heartbeats announce, and the
// per-connection scratch buffers every frame is built in (the hot paths —
// records and heartbeats — allocate nothing per frame).
type streamConn struct {
	cw      *countingWriter
	flusher http.Flusher
	kick    chan struct{}
	vec     []uint64 // last shipped epoch per shard
	frame   []byte   // record frame scratch
	recBuf  []byte   // record encoding scratch
	vecBuf  []byte   // vector frame scratch (heartbeats, end-of-bootstrap)
}

// writeVectorFrame builds a vector frame ([type][len][vec]) in the
// connection's scratch buffer and ships it — no per-heartbeat allocation.
func (c *streamConn) writeVectorFrame(typ byte, vec []uint64) error {
	c.vecBuf = c.vecBuf[:0]
	c.vecBuf = append(c.vecBuf, typ)
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(8*len(vec)))
	c.vecBuf = append(c.vecBuf, l[:]...)
	c.vecBuf = appendVector(c.vecBuf, vec)
	_, err := c.cw.Write(c.vecBuf)
	return err
}

// writeRecordFrame encodes and ships one committed batch, advancing the
// shipped vector.
func (c *streamConn) writeRecordFrame(f *Feeder, b wal.Batch) error {
	c.recBuf = wal.EncodeRecord(c.recBuf, b)
	c.frame = appendFrame(c.frame[:0], frameRecord, c.recBuf)
	if _, err := c.cw.Write(c.frame); err != nil {
		return err
	}
	c.vec[b.Shard] = b.Epoch
	f.records.Add(1)
	return nil
}

// handleStream serves one follower for the lifetime of its connection:
// bootstrap, then live tail. Any write error or client disconnect ends
// the stream; the follower reconnects and resumes (or re-bootstraps).
func (f *Feeder) handleStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	states, tail, err := f.src.Bootstrap(f.opt.Buffer)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer tail.Close()
	f.connects.Add(1)
	f.followers.Add(1)
	defer f.followers.Add(-1)
	kick := f.registerConn()
	defer f.unregisterConn(kick)

	w.Header().Set("Content-Type", "application/octet-stream")
	n, shards := f.src.NumVertices(), f.src.NumShards()
	c := &streamConn{cw: &countingWriter{w: w, f: f}, flusher: flusher, kick: kick,
		vec: make([]uint64, shards)}
	if err := writeStreamHeader(c.cw, n, shards, f.streamID); err != nil {
		return
	}

	// Bootstrap: one state frame per shard, then the captured vector.
	for si, st := range states {
		var sihdr [4]byte
		binary.LittleEndian.PutUint32(sihdr[:], uint32(si))
		payload := wal.MarshalShardState(sihdr[:4:4], n, st)
		c.frame = appendFrame(c.frame[:0], frameState, payload)
		if _, err := c.cw.Write(c.frame); err != nil {
			return
		}
		c.vec[si] = st.Epoch
	}
	if err := c.writeVectorFrame(frameEnd, c.vec); err != nil {
		return
	}
	flusher.Flush()
	f.bootstraps.Add(1)

	f.serveTail(r.Context(), c, tail)
}

// handleResume serves a reconnecting follower from its applied commit
// vector: when the retained ring still covers it, the response carries
// frameResumeOK, the retained records after the vector, then the live
// tail — no snapshot transfer. A cursor outside retention gets
// frameResumeStale and the follower falls back to a full bootstrap.
func (f *Feeder) handleResume(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	n, shards := f.src.NumVertices(), f.src.NumShards()
	vec := make([]uint64, shards)
	reqID, err := readResumeRequest(r.Body, n, shards, vec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var (
		replay  []wal.Batch
		cur     []uint64
		tail    *wal.TailReader
		covered bool
	)
	// A cursor minted under another primary incarnation's stream id may
	// name a divergent history even when its epochs fall inside the ring's
	// window — never consult the ring for it, answer stale below.
	if reqID == f.streamID {
		replay, cur, tail, covered, err = f.src.Resume(vec, f.opt.Buffer)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	c := &streamConn{cw: &countingWriter{w: w, f: f}, flusher: flusher}
	if err := writeStreamHeader(c.cw, n, shards, f.streamID); err != nil {
		if tail != nil {
			tail.Close()
		}
		return
	}
	if !covered {
		// Foreign stream id or outside retention: tell the follower to
		// bootstrap instead.
		f.resumeRejects.Add(1)
		if c.writeVectorFrame(frameResumeStale, nil) == nil {
			flusher.Flush()
		}
		return
	}
	defer tail.Close()
	f.connects.Add(1)
	f.followers.Add(1)
	defer f.followers.Add(-1)
	c.kick = f.registerConn()
	defer f.unregisterConn(c.kick)

	// The shipped vector starts at the follower's cursor; the replay ends
	// exactly at the captured current vector (every retained batch in
	// between ships below).
	c.vec = vec
	if err := c.writeVectorFrame(frameResumeOK, cur); err != nil {
		return
	}
	for _, b := range replay {
		if err := c.writeRecordFrame(f, b); err != nil {
			return
		}
	}
	flusher.Flush()
	f.resumes.Add(1)

	f.serveTail(r.Context(), c, tail)
}

// serveTail runs the live record stream on one connection until the
// client disconnects, the subscription overruns, or a kick. Records are
// flushed eagerly when the tail drains (low latency) and batched while it
// is backed up (throughput).
func (f *Feeder) serveTail(ctx context.Context, c *streamConn, tail *wal.TailReader) {
	hb := time.NewTicker(f.opt.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.kick:
			return
		case b, open := <-tail.C():
			if !open {
				// Overrun (or source shutdown): the follower is too far
				// behind this buffer — drop the stream; it reconnects and
				// resumes if the ring still covers it.
				if tail.Overrun() {
					f.overruns.Add(1)
				}
				return
			}
			// The pause hook blocks *before* the record hits the socket,
			// so a paused feed ships nothing — the drained record is held
			// here and shipped on resume, never lost.
			if err := f.waitWhilePaused(ctx, c); err != nil {
				return
			}
			if err := c.writeRecordFrame(f, b); err != nil {
				return
			}
			if len(tail.C()) == 0 {
				c.flusher.Flush()
			}
		case <-hb.C:
			if err := c.writeVectorFrame(frameHeartbeat, c.vec); err != nil {
				return
			}
			c.flusher.Flush()
		}
	}
}

// waitWhilePaused parks a stream while the pause hook is set, keeping the
// link alive with heartbeats (carrying the last *shipped* vector, so a
// paused feed is indistinguishable from an idle primary to the follower's
// liveness logic — only its epoch lag shows).
func (f *Feeder) waitWhilePaused(ctx context.Context, c *streamConn) error {
	for f.paused.Load() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-c.kick:
			return context.Canceled
		case <-time.After(f.opt.Heartbeat):
			if err := c.writeVectorFrame(frameHeartbeat, c.vec); err != nil {
				return err
			}
			c.flusher.Flush()
		}
	}
	return nil
}

// countingWriter tracks shipped bytes into the feeder's counter.
type countingWriter struct {
	w interface{ Write([]byte) (int, error) }
	f *Feeder
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if c.f != nil {
		c.f.bytes.Add(uint64(n))
	}
	return n, err
}
