package replica_test

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/replica"
	"kcore/internal/shard"
	"kcore/internal/wal"
)

var testParams = lds.Params{Delta: 0.2, Lambda: 9}

func newEngine(n, p int) *shard.Engine {
	e := shard.New(n, p, testParams)
	e.SetRetainedEpochs(4)
	return e
}

// randomBatches returns deterministic insert/delete rounds over n vertices.
func randomBatches(n, rounds, perRound int, seed int64) [][2][]graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	out := make([][2][]graph.Edge, rounds)
	var live []graph.Edge
	for r := range out {
		ins := make([]graph.Edge, 0, perRound)
		for i := 0; i < perRound; i++ {
			u := uint32(rng.Intn(n))
			v := uint32(rng.Intn(n))
			if u != v {
				ins = append(ins, graph.Edge{U: u, V: v})
			}
		}
		var del []graph.Edge
		if len(live) > 0 && r%3 == 2 {
			for i := 0; i < perRound/4 && len(live) > 0; i++ {
				j := rng.Intn(len(live))
				del = append(del, live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		live = append(live, ins...)
		out[r] = [2][]graph.Edge{ins, del}
	}
	return out
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// expectParity asserts byte-identical coreness estimates and equal epochs
// between two quiescent engines.
func expectParity(t *testing.T, primary, follower *shard.Engine) {
	t.Helper()
	if pe, fe := primary.Epoch(), follower.Epoch(); pe != fe {
		t.Fatalf("epoch mismatch: primary %d, follower %d", pe, fe)
	}
	n := primary.NumVertices()
	pOut, fOut := make([]float64, n), make([]float64, n)
	pep := primary.ReadAllPinned(pOut)
	fep := follower.ReadAllPinned(fOut)
	if pep != fep {
		t.Fatalf("pinned read epochs differ: primary %d, follower %d", pep, fep)
	}
	for v := range pOut {
		if pOut[v] != fOut[v] {
			t.Fatalf("coreness of vertex %d differs at epoch %d: primary %v, follower %v",
				v, pep, pOut[v], fOut[v])
		}
	}
}

// startFeeder wires a TailSource + Feeder onto an httptest server.
func startFeeder(t *testing.T, eng *shard.Engine, opt replica.FeederOptions) (*replica.Feeder, *httptest.Server, *wal.TailSource) {
	t.Helper()
	src := wal.NewTailSource(eng)
	feeder := replica.NewFeeder(src, opt)
	srv := httptest.NewServer(feeder.Handler())
	t.Cleanup(func() { srv.Close(); src.Close() })
	return feeder, srv, src
}

func fastFollowerOpts() replica.FollowerOptions {
	return replica.FollowerOptions{
		BackoffMin:    5 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
		StreamTimeout: 2 * time.Second,
		InitialSync:   5 * time.Second,
	}
}

func TestFollowerParity(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const n = 300
			primary := newEngine(n, shards)
			batches := randomBatches(n, 30, 40, 7)

			// Half the history lands before the follower exists: the
			// bootstrap must carry it.
			for _, b := range batches[:15] {
				primary.Apply(b[0], b[1])
			}
			_, srv, _ := startFeeder(t, primary, replica.FeederOptions{Heartbeat: 20 * time.Millisecond})

			follower := newEngine(n, shards)
			fol, err := replica.StartFollower(follower, srv.URL, fastFollowerOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer fol.Close()
			if got, want := fol.Epoch(), primary.Epoch(); got != want {
				t.Fatalf("post-bootstrap epoch %d, want %d", got, want)
			}

			// The other half streams live, with concurrent follower
			// readers asserting monotone epochs throughout (-race).
			stop := make(chan struct{})
			var wg sync.WaitGroup
			var readerErr atomic.Value
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					out := make([]float64, 8)
					vs := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
					var last uint64
					for {
						select {
						case <-stop:
							return
						default:
						}
						ep := follower.ReadManyPinned(vs, out)
						if ep < last {
							readerErr.Store(fmt.Errorf("follower epoch went backwards: %d after %d", ep, last))
							return
						}
						last = ep
					}
				}()
			}
			for _, b := range batches[15:] {
				primary.Apply(b[0], b[1])
			}
			waitFor(t, 10*time.Second, "follower catch-up", func() bool {
				return fol.Epoch() == primary.Epoch()
			})
			close(stop)
			wg.Wait()
			if err, ok := readerErr.Load().(error); ok && err != nil {
				t.Fatal(err)
			}
			expectParity(t, primary, follower)
			if err := follower.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			st := fol.Stats()
			if !st.Synced || st.Bootstraps != 1 {
				t.Fatalf("unexpected follower stats: %+v", st)
			}
		})
	}
}

// TestFollowerReconnectsAndResumes is the resume acceptance path: a
// follower partitioned for fewer batches than the retained ring reconnects
// without a second snapshot transfer — one bootstrap ever, Resumes
// incremented — and still converges byte-identical.
func TestFollowerReconnectsAndResumes(t *testing.T) {
	const n, shards = 200, 2
	primary := newEngine(n, shards)
	batches := randomBatches(n, 24, 30, 11)
	for _, b := range batches[:8] {
		primary.Apply(b[0], b[1])
	}

	// A plain listener (not httptest) so the same address can be re-bound
	// after the "crash".
	src := wal.NewTailSource(primary)
	defer src.Close()
	feeder := replica.NewFeeder(src, replica.FeederOptions{Heartbeat: 20 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs := &http.Server{Handler: feeder.Handler()}
	go hs.Serve(ln)

	follower := newEngine(n, shards)
	fol, err := replica.StartFollower(follower, addr, fastFollowerOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	// Partition: kill the primary's replication listener mid-stream.
	hs.Close()
	for _, b := range batches[8:16] {
		primary.Apply(b[0], b[1])
	}
	// Heal: a fresh listener on the same address. The follower's backoff
	// loop finds it and resumes from its applied vector — the default
	// retained ring easily covers the 8 batches it missed.
	waitFor(t, 5*time.Second, "listener rebind", func() bool {
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return false
		}
		ln = ln2
		return true
	})
	hs2 := &http.Server{Handler: feeder.Handler()}
	go hs2.Serve(ln)
	defer hs2.Close()

	for _, b := range batches[16:] {
		primary.Apply(b[0], b[1])
	}
	waitFor(t, 10*time.Second, "catch-up after reconnect", func() bool {
		return fol.Epoch() == primary.Epoch()
	})
	expectParity(t, primary, follower)
	if err := follower.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := fol.Stats()
	if st.Bootstraps != 1 {
		t.Fatalf("partition within retention must not re-bootstrap, got stats %+v", st)
	}
	if st.Resumes < 1 {
		t.Fatalf("expected a resume after the partition, got stats %+v", st)
	}
	if st.Reconnects < 1 {
		t.Fatalf("expected reconnect attempts, got stats %+v", st)
	}
	if fs := feeder.Stats(); fs.Bootstraps != 1 || fs.Resumes < 1 {
		t.Fatalf("feeder should have served exactly one bootstrap and a resume, got %+v", fs)
	}
}

func TestFeederPauseCreatesLagResumeCatchesUp(t *testing.T) {
	const n, shards = 150, 2
	primary := newEngine(n, shards)
	batches := randomBatches(n, 12, 25, 3)
	for _, b := range batches[:4] {
		primary.Apply(b[0], b[1])
	}
	feeder, srv, _ := startFeeder(t, primary, replica.FeederOptions{Heartbeat: 10 * time.Millisecond})

	follower := newEngine(n, shards)
	fol, err := replica.StartFollower(follower, srv.URL, fastFollowerOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	feeder.Pause()
	// Records shipped before the pause landed may still be in flight on
	// the follower side; let them settle before freezing the reference.
	time.Sleep(30 * time.Millisecond)
	frozen := fol.Epoch()
	for _, b := range batches[4:] {
		primary.Apply(b[0], b[1])
	}
	// The feed is paused: the follower must not advance, but must stay
	// connected (heartbeats flow).
	time.Sleep(50 * time.Millisecond)
	if got := fol.Epoch(); got != frozen {
		t.Fatalf("follower advanced to %d while the feed was paused (was %d)", got, frozen)
	}
	if st := fol.Stats(); !st.Connected {
		t.Fatalf("follower disconnected during pause: %+v", st)
	}
	if primary.Epoch() == frozen {
		t.Fatal("primary did not advance; the pause test is vacuous")
	}

	feeder.Resume()
	waitFor(t, 10*time.Second, "catch-up after resume", func() bool {
		return fol.Epoch() == primary.Epoch()
	})
	expectParity(t, primary, follower)
}

func TestOverrunRecoversViaResume(t *testing.T) {
	const n, shards = 120, 1
	primary := newEngine(n, shards)
	primary.Insert([]graph.Edge{{U: 0, V: 1}})
	// Tiny tail buffer: while the feed is paused the primary outruns it
	// and the hub drops the subscription. The retained ring is far deeper
	// than the tail buffer, so the follower recovers with a resume — an
	// overrun now costs re-shipping the missed records, not the snapshot.
	feeder, srv, _ := startFeeder(t, primary,
		replica.FeederOptions{Heartbeat: 10 * time.Millisecond, Buffer: 2})

	follower := newEngine(n, shards)
	fol, err := replica.StartFollower(follower, srv.URL, fastFollowerOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	feeder.Pause()
	for _, b := range randomBatches(n, 8, 10, 5) {
		primary.Apply(b[0], b[1])
	}
	feeder.Resume()
	waitFor(t, 10*time.Second, "catch-up after overrun", func() bool {
		return fol.Epoch() == primary.Epoch()
	})
	expectParity(t, primary, follower)
	if feeder.Stats().Overruns == 0 {
		t.Fatal("expected the tiny tail buffer to overrun")
	}
	st := fol.Stats()
	if st.Bootstraps != 1 || st.Resumes < 1 {
		t.Fatalf("expected the overrun to recover via resume, got %+v", st)
	}
}

// TestKickForcesResume drives the deterministic reconnect path: Kick drops
// every connection; the follower comes back with its applied vector and
// the feeder serves the missed records from the ring — no second snapshot.
func TestKickForcesResume(t *testing.T) {
	const n, shards = 150, 2
	primary := newEngine(n, shards)
	batches := randomBatches(n, 12, 25, 17)
	for _, b := range batches[:4] {
		primary.Apply(b[0], b[1])
	}
	feeder, srv, _ := startFeeder(t, primary, replica.FeederOptions{Heartbeat: 10 * time.Millisecond})

	follower := newEngine(n, shards)
	fol, err := replica.StartFollower(follower, srv.URL, fastFollowerOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	bootstraps0 := feeder.Stats().Bootstraps

	if kicked := feeder.Kick(); kicked != 1 {
		t.Fatalf("kicked %d connections, want 1", kicked)
	}
	// Committed while the follower is between connections; the ring
	// retains them and the resume replays them.
	for _, b := range batches[4:] {
		primary.Apply(b[0], b[1])
	}
	waitFor(t, 10*time.Second, "catch-up after kick", func() bool {
		return fol.Epoch() == primary.Epoch()
	})
	expectParity(t, primary, follower)
	st := fol.Stats()
	if st.Resumes < 1 || st.Bootstraps != 1 {
		t.Fatalf("expected the kicked follower to resume, got %+v", st)
	}
	fs := feeder.Stats()
	if fs.Bootstraps != bootstraps0 || fs.Resumes < 1 || fs.Kicks != 1 {
		t.Fatalf("feeder should have resumed without another bootstrap, got %+v", fs)
	}
}

// TestResumeStaleFallsBack pins the fallback: a follower whose cursor the
// ring has evicted past is told frameResumeStale and silently performs a
// full re-bootstrap — no error surfaces, state still converges.
func TestResumeStaleFallsBack(t *testing.T) {
	const n, shards = 120, 1
	primary := newEngine(n, shards)
	primary.Insert([]graph.Edge{{U: 0, V: 1}})
	// A ring of 2 against a 10-batch burst guarantees eviction past any
	// disconnected cursor.
	feeder, srv, _ := startFeeder(t, primary,
		replica.FeederOptions{Heartbeat: 10 * time.Millisecond, RetainBatches: 2})

	opts := fastFollowerOpts()
	// Keep the follower away long enough for the whole burst to commit
	// before its resume attempt.
	opts.BackoffMin = 300 * time.Millisecond
	follower := newEngine(n, shards)
	fol, err := replica.StartFollower(follower, srv.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	feeder.Kick()
	for _, b := range randomBatches(n, 10, 10, 9) {
		primary.Apply(b[0], b[1])
	}
	waitFor(t, 10*time.Second, "catch-up after stale resume", func() bool {
		return fol.Epoch() == primary.Epoch()
	})
	expectParity(t, primary, follower)
	st := fol.Stats()
	if st.Bootstraps != 2 {
		t.Fatalf("stale cursor must fall back to a re-bootstrap, got %+v", st)
	}
	if st.Resumes != 0 {
		t.Fatalf("no resume should have succeeded, got %+v", st)
	}
	if st.Err != "" {
		t.Fatalf("a stale cursor is a fallback, not an error: %+v", st)
	}
	if fs := feeder.Stats(); fs.ResumeRejects < 1 {
		t.Fatalf("feeder should have rejected the stale cursor, got %+v", fs)
	}
}

// TestPrimaryRestartRejectsForeignCursor pins the stream-id identity
// check: a cursor whose epochs fall inside a restarted primary's retention
// window must still not resume — the epochs name the previous
// incarnation's history (the tail publish precedes the WAL append, so a
// recovered primary may have re-committed different batches under the
// same epoch numbers). The follower must be answered stale and
// re-bootstrap onto the survivor history.
func TestPrimaryRestartRejectsForeignCursor(t *testing.T) {
	const n, shards = 120, 1
	batches := randomBatches(n, 12, 15, 13)

	primary := newEngine(n, shards)
	for _, b := range batches[:8] {
		primary.Apply(b[0], b[1])
	}
	src := wal.NewTailSource(primary)
	feederA := replica.NewFeeder(src, replica.FeederOptions{Heartbeat: 10 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs := &http.Server{Handler: feederA.Handler()}
	go hs.Serve(ln)

	follower := newEngine(n, shards)
	fol, err := replica.StartFollower(follower, addr, fastFollowerOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	// "Crash" the primary: the listener dies and its in-memory state (the
	// ring, the stream id) is discarded. The follower keeps its cursor at
	// the 8-batch epoch.
	hs.Close()
	src.Close()

	// The recovered primary replayed a shorter history (the tail never
	// made the disk), sized its ring there, then committed more batches
	// past the follower's cursor: the cursor's epochs now sit inside the
	// new ring's window [6-batch epoch, 12-batch epoch], so only the
	// stream id tells the two histories apart.
	restarted := newEngine(n, shards)
	for _, b := range batches[:6] {
		restarted.Apply(b[0], b[1])
	}
	src2 := wal.NewTailSource(restarted)
	defer src2.Close()
	feederB := replica.NewFeeder(src2, replica.FeederOptions{Heartbeat: 10 * time.Millisecond})
	for _, b := range batches[6:] {
		restarted.Apply(b[0], b[1])
	}
	waitFor(t, 5*time.Second, "listener rebind", func() bool {
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return false
		}
		ln = ln2
		return true
	})
	hs2 := &http.Server{Handler: feederB.Handler()}
	go hs2.Serve(ln)
	defer hs2.Close()

	waitFor(t, 10*time.Second, "re-bootstrap onto the restarted primary", func() bool {
		return fol.Epoch() == restarted.Epoch()
	})
	expectParity(t, restarted, follower)
	st := fol.Stats()
	if st.Resumes != 0 {
		t.Fatalf("a cursor from the previous incarnation must not resume, got %+v", st)
	}
	if st.Bootstraps != 2 {
		t.Fatalf("expected a full re-bootstrap after the primary restart, got %+v", st)
	}
	if fs := feederB.Stats(); fs.ResumeRejects < 1 {
		t.Fatalf("restarted feeder should have rejected the foreign cursor, got %+v", fs)
	}
}

func TestStartFollowerRejectsShapeMismatch(t *testing.T) {
	primary := newEngine(100, 2)
	_, srv, _ := startFeeder(t, primary, replica.FeederOptions{})
	opts := fastFollowerOpts()
	opts.InitialSync = 500 * time.Millisecond
	if _, err := replica.StartFollower(newEngine(100, 4), srv.URL, opts); err == nil {
		t.Fatal("follower with a different shard count must not sync")
	}
	if _, err := replica.StartFollower(newEngine(50, 2), srv.URL, opts); err == nil {
		t.Fatal("follower with a different vertex count must not sync")
	}
}

func TestStartFollowerNoPrimary(t *testing.T) {
	opts := fastFollowerOpts()
	opts.InitialSync = 200 * time.Millisecond
	if _, err := replica.StartFollower(newEngine(10, 1), "127.0.0.1:1", opts); err == nil {
		t.Fatal("expected an initial-sync failure with no primary")
	}
}

// TestCatchupBatchesBufferedRecords pins the catch-up drain: while the
// follower's apply path is held inside an engine quiesce, the primary
// commits a burst; once released, the backlog must land in far fewer
// quiesce rounds than records. A second follower running with
// MaxApplyBatch 1 consumes the same stream strictly one record per round.
func TestCatchupBatchesBufferedRecords(t *testing.T) {
	const n = 200
	const burst = 30
	primary := newEngine(n, 1)
	primary.Insert(randomBatches(n, 1, 400, 1)[0][0])
	feeder, srv, _ := startFeeder(t, primary, replica.FeederOptions{Heartbeat: 250 * time.Millisecond, Buffer: 256})

	opts := fastFollowerOpts()
	// The held quiesce below stops the stream goroutine from reading;
	// don't let the silent-stream watchdog tear the connection down.
	opts.StreamTimeout = 30 * time.Second
	batched := newEngine(n, 1)
	fol, err := replica.StartFollower(batched, srv.URL, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	serialOpts := opts
	serialOpts.MaxApplyBatch = 1
	serial := newEngine(n, 1)
	sfol, err := replica.StartFollower(serial, srv.URL, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer sfol.Close()

	waitFor(t, 5*time.Second, "both followers synced", func() bool {
		return batched.Epoch() == primary.Epoch() && serial.Epoch() == primary.Epoch()
	})
	base := fol.Stats()
	shipped0 := feeder.Stats().RecordsShipped

	// Hold the batched follower's engine gate so its stream goroutine
	// parks at the apply quiesce while the burst piles up on its socket.
	entered := make(chan struct{})
	release := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		batched.Quiesce(func() { close(entered); <-release })
	}()
	<-entered

	for _, r := range randomBatches(n, burst, 40, 2) {
		primary.Insert(r[0])
	}
	// Both connections ship independently; wait until the feeder has
	// written the whole burst to each (the serial follower's catch-up
	// also proves the stream end-to-end), then let TCP land it.
	waitFor(t, 5*time.Second, "burst shipped to both connections", func() bool {
		return feeder.Stats().RecordsShipped >= shipped0+2*burst
	})
	waitFor(t, 5*time.Second, "serial follower caught up", func() bool {
		return serial.Epoch() == primary.Epoch()
	})
	time.Sleep(50 * time.Millisecond)
	close(release)
	qwg.Wait()

	waitFor(t, 5*time.Second, "batched follower caught up", func() bool {
		return batched.Epoch() == primary.Epoch()
	})
	expectParity(t, primary, batched)
	expectParity(t, primary, serial)

	st := fol.Stats()
	applied := st.RecordsApplied - base.RecordsApplied
	rounds := st.ApplyRounds - base.ApplyRounds
	if applied != burst {
		t.Fatalf("batched follower applied %d records, want %d", applied, burst)
	}
	if rounds*2 > applied {
		t.Fatalf("catch-up applied %d records in %d quiesce rounds; batching never engaged", applied, rounds)
	}
	if sst := sfol.Stats(); sst.ApplyRounds != sst.RecordsApplied {
		t.Fatalf("MaxApplyBatch=1 follower: %d records in %d rounds, want one per round", sst.RecordsApplied, sst.ApplyRounds)
	}
}
