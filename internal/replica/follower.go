package replica

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/wal"
)

// FollowerOptions configure the follower runtime.
type FollowerOptions struct {
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// StreamTimeout is the silent-stream watchdog: a connection that
	// delivers no frame (record or heartbeat) for this long is torn down
	// and redialed (default 10s; must comfortably exceed the feeder's
	// heartbeat period).
	StreamTimeout time.Duration
	// BackoffMin/BackoffMax bound the reconnect backoff: the delay starts
	// at BackoffMin and doubles per consecutive failure up to BackoffMax
	// (defaults 100ms and 5s). A connection that reached bootstrap resets
	// the backoff.
	BackoffMin, BackoffMax time.Duration
	// InitialSync is how long StartFollower waits for the first bootstrap
	// to complete before giving up (default 30s; negative = do not wait,
	// the follower syncs in the background).
	InitialSync time.Duration
	// MaxApplyBatch bounds how many consecutive already-received records
	// the follower applies under one engine quiesce, and sizes the queue
	// between the stream reader and the applier (default 64). A
	// catching-up follower has records queued ahead of the engine;
	// paying one quiesce per round instead of one per record closes most
	// of the apply-throughput gap against the primary. 1 restores the
	// one-quiesce-per-record behavior.
	MaxApplyBatch int
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.StreamTimeout <= 0 {
		o.StreamTimeout = 10 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.InitialSync == 0 {
		o.InitialSync = 30 * time.Second
	}
	if o.MaxApplyBatch <= 0 {
		o.MaxApplyBatch = 64
	}
	return o
}

// FollowerStats is a point-in-time snapshot of the follower's replication
// state, served in the follower's /stats replication block and /metrics
// lag gauges.
type FollowerStats struct {
	Primary   string `json:"primary"`
	Connected bool   `json:"connected"`
	Synced    bool   `json:"synced"` // bootstrapped on the current connection

	// Epoch is the follower's applied cross-shard epoch; PrimaryEpoch is
	// the newest epoch the primary has announced on this connection
	// (records + heartbeats). LagEpochs is their difference — epochs
	// shipped but not yet applied, or accruing while disconnected.
	Epoch        uint64 `json:"epoch"`
	PrimaryEpoch uint64 `json:"primary_epoch"`
	LagEpochs    uint64 `json:"lag_epochs"`

	// BytesReceived counts stream payload bytes read; BytesApplied counts
	// the bytes of records already applied. Their difference is the lag
	// in bytes (received but not yet applied).
	BytesReceived  uint64 `json:"bytes_received"`
	BytesApplied   uint64 `json:"bytes_applied"`
	LagBytes       uint64 `json:"lag_bytes"`
	RecordsApplied uint64 `json:"records_applied"`
	// ApplyRounds counts quiesce sections spent applying records; the
	// records-per-round ratio shows how much catch-up batching helps
	// (1.0 = in sync, applying record by record).
	ApplyRounds uint64 `json:"apply_rounds"`
	Bootstraps  uint64 `json:"bootstraps"`
	Reconnects  uint64 `json:"reconnects"`

	LastRecordUnixNano    int64  `json:"last_record_unix_nano,omitempty"`
	LastHeartbeatUnixNano int64  `json:"last_heartbeat_unix_nano,omitempty"`
	Err                   string `json:"error,omitempty"` // last connection error
}

// Follower replicates a primary into a local engine: it dials the
// primary's replication listener, restores the bootstrapped states, then
// applies every shipped record through the engine's normal batch path —
// the engine serves its full read stack concurrently throughout. On any
// stream failure it reconnects with exponential backoff and
// re-bootstraps (see the package comment for why there is no resume).
type Follower struct {
	eng     Engine
	primary string // normalized base URL
	opt     FollowerOptions
	client  *http.Client

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	connected  atomic.Bool
	synced     atomic.Bool
	primaryEp  atomic.Uint64
	bytesRecv  atomic.Uint64
	bytesAppl  atomic.Uint64
	records    atomic.Uint64
	rounds     atomic.Uint64
	bootstraps atomic.Uint64
	reconnects atomic.Uint64
	lastRec    atomic.Int64
	lastHB     atomic.Int64
	lastErr    atomic.Pointer[error]

	firstSync chan struct{} // closed after the first successful bootstrap
	syncOnce  sync.Once
}

// StartFollower connects eng to the primary at addr (host:port or a full
// http:// URL) and keeps it replicating until Close. Unless
// opt.InitialSync is negative it blocks until the first bootstrap has
// been applied, so a successful return means the engine already holds a
// recent primary state.
func StartFollower(eng Engine, addr string, opt FollowerOptions) (*Follower, error) {
	opt = opt.withDefaults()
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	f := &Follower{
		eng:     eng,
		primary: base,
		opt:     opt,
		// The stream is long-lived by design: liveness comes from the
		// per-frame watchdog, not a client timeout.
		client:    &http.Client{Transport: &http.Transport{ResponseHeaderTimeout: opt.DialTimeout}},
		firstSync: make(chan struct{}),
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	f.wg.Add(1)
	go f.run()
	if opt.InitialSync >= 0 {
		select {
		case <-f.firstSync:
		case <-time.After(opt.InitialSync):
			err := fmt.Errorf("replica: no bootstrap from %s within %v", base, opt.InitialSync)
			if last := f.Err(); last != nil {
				err = fmt.Errorf("%w (last error: %v)", err, last)
			}
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// Primary returns the normalized primary base URL.
func (f *Follower) Primary() string { return f.primary }

// Epoch returns the follower engine's applied cross-shard epoch.
func (f *Follower) Epoch() uint64 { return f.eng.Epoch() }

// Synced reports whether the current connection has completed bootstrap.
func (f *Follower) Synced() bool { return f.synced.Load() }

// Err returns the last connection error (nil after a healthy [re]connect).
func (f *Follower) Err() error {
	if p := f.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Stats returns a point-in-time replication snapshot.
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		Primary:               f.primary,
		Connected:             f.connected.Load(),
		Synced:                f.synced.Load(),
		Epoch:                 f.eng.Epoch(),
		PrimaryEpoch:          f.primaryEp.Load(),
		BytesReceived:         f.bytesRecv.Load(),
		BytesApplied:          f.bytesAppl.Load(),
		RecordsApplied:        f.records.Load(),
		ApplyRounds:           f.rounds.Load(),
		Bootstraps:            f.bootstraps.Load(),
		Reconnects:            f.reconnects.Load(),
		LastRecordUnixNano:    f.lastRec.Load(),
		LastHeartbeatUnixNano: f.lastHB.Load(),
	}
	if st.PrimaryEpoch > st.Epoch {
		st.LagEpochs = st.PrimaryEpoch - st.Epoch
	}
	if st.BytesReceived > st.BytesApplied {
		st.LagBytes = st.BytesReceived - st.BytesApplied
	}
	if err := f.Err(); err != nil {
		st.Err = err.Error()
	}
	return st
}

// Close stops replication and waits for the stream goroutine to exit. The
// engine keeps the last applied state and stays fully readable.
func (f *Follower) Close() {
	f.cancel()
	f.wg.Wait()
}

// run is the reconnect loop: one stream() per connection, exponential
// backoff between failures, reset once a connection bootstraps.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := f.opt.BackoffMin
	for {
		if f.ctx.Err() != nil {
			return
		}
		bootstrapped, err := f.stream()
		f.connected.Store(false)
		f.synced.Store(false)
		if f.ctx.Err() != nil {
			return
		}
		if err != nil {
			e := err
			f.lastErr.Store(&e)
		}
		f.reconnects.Add(1)
		if bootstrapped {
			backoff = f.opt.BackoffMin
		}
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > f.opt.BackoffMax {
			backoff = f.opt.BackoffMax
		}
	}
}

// stream runs one connection lifetime: dial, bootstrap, apply the live
// tail until the stream breaks, goes silent, or the follower closes.
// Returns whether the bootstrap completed (for backoff reset).
func (f *Follower) stream() (bootstrapped bool, err error) {
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, f.primary+StreamPath, nil)
	if err != nil {
		return false, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("replica: primary returned %s", resp.Status)
	}

	// Silent-stream watchdog: tear the connection down if no frame lands
	// within StreamTimeout. Reset after every frame.
	watchdog := time.AfterFunc(f.opt.StreamTimeout, func() { resp.Body.Close() })
	defer watchdog.Stop()

	// Buffered reads keep frame parsing off raw socket syscalls. Counting
	// sits on top, so bytesRecv tracks consumed (not merely buffered)
	// stream bytes and the lag-bytes gauge stays exact.
	br := bufio.NewReaderSize(resp.Body, 256<<10)
	body := &countingReader{r: br, n: &f.bytesRecv}
	n, shards := f.eng.NumVertices(), f.eng.NumShards()
	if err := readStreamHeader(body, n, shards); err != nil {
		return false, err
	}
	watchdog.Reset(f.opt.StreamTimeout)
	f.connected.Store(true)

	states := make([]wal.ShardState, shards)
	seen := make([]bool, shards)
	vec := make([]uint64, shards)
	var buf []byte
	// Records are applied by a separate goroutine fed through a bounded
	// queue (started once the bootstrap lands). Decoupling the socket
	// from the engine quiesce is what makes catch-up batching real: the
	// reader keeps draining the stream while an apply runs, so a backlog
	// — wherever it was sitting (kernel buffer, HTTP chunking) — surfaces
	// as queued records the applier folds into one quiesce per round. It
	// also keeps the silent-stream watchdog honest during long applies.
	var applyCh chan queuedRecord
	var applyWG sync.WaitGroup
	defer func() {
		if applyCh != nil {
			close(applyCh)
			applyWG.Wait()
		}
	}()
	for {
		typ, payload, rerr := readFrame(body, buf)
		if rerr != nil {
			if f.ctx.Err() != nil {
				return bootstrapped, nil
			}
			return bootstrapped, rerr
		}
		buf = payload[:0]
		watchdog.Reset(f.opt.StreamTimeout)
		switch typ {
		case frameState:
			si, st, perr := parseStateFrame(payload, n, shards)
			if perr != nil {
				return bootstrapped, perr
			}
			states[si], seen[si] = st, true
		case frameEnd:
			if err := parseVector(payload, vec); err != nil {
				return bootstrapped, err
			}
			for si, ok := range seen {
				if !ok {
					return bootstrapped, fmt.Errorf("replica: bootstrap missing shard %d", si)
				}
				if states[si].Epoch != vec[si] {
					return bootstrapped, fmt.Errorf("replica: bootstrap vector %d != shard %d state epoch %d",
						vec[si], si, states[si].Epoch)
				}
			}
			if err := f.eng.RestoreAll(states); err != nil {
				return bootstrapped, fmt.Errorf("replica: applying bootstrap: %w", err)
			}
			f.observePrimaryVec(vec)
			// Free the bootstrap copies; the tail loop does not need them.
			states, seen = nil, nil
			bootstrapped = true
			f.bootstraps.Add(1)
			f.bytesAppl.Store(f.bytesRecv.Load())
			f.synced.Store(true)
			f.lastErr.Store(nil)
			f.syncOnce.Do(func() { close(f.firstSync) })
			// The applier owns its own copy of the vector from here on;
			// the reader's copy only tracks heartbeat announcements.
			avec := append(make([]uint64, 0, shards), vec...)
			applyCh = make(chan queuedRecord, f.opt.MaxApplyBatch)
			applyWG.Add(1)
			go func() {
				defer applyWG.Done()
				f.applyLoop(applyCh, avec)
			}()
		case frameRecord:
			if !bootstrapped {
				return false, errors.New("replica: record frame before end of bootstrap")
			}
			b, used, ok := wal.DecodeRecord(payload, shards)
			if !ok || used != len(payload) {
				return bootstrapped, errors.New("replica: corrupt record frame")
			}
			// Hand off to the applier (DecodeRecord copied the edges, so
			// the frame buffer is free to reuse). A full queue blocks the
			// reader — the engine is MaxApplyBatch records behind the
			// socket at most, and beyond that the primary's tail buffer
			// overruns exactly as before.
			applyCh <- queuedRecord{b: b, recvd: f.bytesRecv.Load()}
		case frameHeartbeat:
			if err := parseVector(payload, vec); err != nil {
				return bootstrapped, err
			}
			f.observePrimaryVec(vec)
			f.lastHB.Store(time.Now().UnixNano())
		default:
			return bootstrapped, fmt.Errorf("replica: unknown frame type %d", typ)
		}
	}
}

// queuedRecord is one decoded record frame in flight between the stream
// reader and the applier, stamped with the stream bytes consumed up to
// and including its frame (for the applied-bytes lag gauge).
type queuedRecord struct {
	b     wal.Batch
	recvd uint64
}

// applyLoop applies queued records until the channel closes. Each round
// folds the first record plus everything else already queued (up to
// MaxApplyBatch) into a single engine quiesce: the stream goroutine is
// the only producer, so queued depth is exactly how far the socket has
// run ahead of the engine, and a catching-up follower pays one
// reader-exclusion per round instead of one per record. vec is the
// applier's private copy of the commit vector, seeded from the bootstrap.
func (f *Follower) applyLoop(ch <-chan queuedRecord, vec []uint64) {
	batch := make([]queuedRecord, 0, f.opt.MaxApplyBatch)
	for qr := range ch {
		batch = append(batch[:0], qr)
	drain:
		for len(batch) < f.opt.MaxApplyBatch {
			select {
			case nqr, open := <-ch:
				if !open {
					break drain
				}
				batch = append(batch, nqr)
			default:
				break drain
			}
		}
		// Quiescing keeps the engine's snapshot/invariant surfaces (which
		// assume no concurrent apply) safe to use on a live follower.
		f.eng.Quiesce(func() {
			for _, rb := range batch {
				f.eng.ApplyLogged(rb.b)
			}
		})
		for _, rb := range batch {
			vec[rb.b.Shard] = rb.b.Epoch
		}
		f.observePrimaryVec(vec)
		f.records.Add(uint64(len(batch)))
		f.rounds.Add(1)
		f.bytesAppl.Store(batch[len(batch)-1].recvd)
		f.lastRec.Store(time.Now().UnixNano())
	}
}

// observePrimaryVec publishes the newest primary epoch announced on the
// stream (monotone: reconnects bootstrap at an epoch >= anything seen).
func (f *Follower) observePrimaryVec(vec []uint64) {
	var sum uint64
	for _, e := range vec {
		sum += e
	}
	for {
		old := f.primaryEp.Load()
		if sum <= old || f.primaryEp.CompareAndSwap(old, sum) {
			return
		}
	}
}

// countingReader tracks received stream bytes.
type countingReader struct {
	r interface{ Read([]byte) (int, error) }
	n *atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}
