package replica

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/wal"
)

// errResumeStale means the primary rejected our resume cursor (outside
// retention, minted under a previous primary incarnation's stream id, or
// a primary without resume support). The follower clears its cursor and
// immediately falls back to a full bootstrap — no backoff, the primary is
// reachable and healthy.
var errResumeStale = errors.New("replica: resume cursor outside primary retention")

// FollowerOptions configure the follower runtime.
type FollowerOptions struct {
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// StreamTimeout is the silent-stream watchdog: a connection that
	// delivers no frame (record or heartbeat) for this long is torn down
	// and redialed (default 10s; must comfortably exceed the feeder's
	// heartbeat period).
	StreamTimeout time.Duration
	// BackoffMin/BackoffMax bound the reconnect backoff: the delay starts
	// at BackoffMin and doubles per consecutive failure up to BackoffMax
	// (defaults 100ms and 5s). A connection that reached bootstrap resets
	// the backoff.
	BackoffMin, BackoffMax time.Duration
	// InitialSync is how long StartFollower waits for the first bootstrap
	// to complete before giving up (default 30s; negative = do not wait,
	// the follower syncs in the background).
	InitialSync time.Duration
	// MaxApplyBatch bounds how many consecutive already-received records
	// the follower applies under one engine quiesce, and sizes the queue
	// between the stream reader and the applier (default 64). A
	// catching-up follower has records queued ahead of the engine;
	// paying one quiesce per round instead of one per record closes most
	// of the apply-throughput gap against the primary. 1 restores the
	// one-quiesce-per-record behavior.
	MaxApplyBatch int
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.StreamTimeout <= 0 {
		o.StreamTimeout = 10 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.InitialSync == 0 {
		o.InitialSync = 30 * time.Second
	}
	if o.MaxApplyBatch <= 0 {
		o.MaxApplyBatch = 64
	}
	return o
}

// FollowerStats is a point-in-time snapshot of the follower's replication
// state, served in the follower's /stats replication block and /metrics
// lag gauges.
type FollowerStats struct {
	Primary   string `json:"primary"`
	Connected bool   `json:"connected"`
	Synced    bool   `json:"synced"` // bootstrapped on the current connection

	// Epoch is the follower's applied cross-shard epoch; PrimaryEpoch is
	// the newest epoch the primary has announced on this connection
	// (records + heartbeats). LagEpochs is their difference — epochs
	// shipped but not yet applied, or accruing while disconnected.
	Epoch        uint64 `json:"epoch"`
	PrimaryEpoch uint64 `json:"primary_epoch"`
	LagEpochs    uint64 `json:"lag_epochs"`

	// BytesReceived counts stream payload bytes read; BytesApplied counts
	// the bytes of records already applied. Their difference is the lag
	// in bytes (received but not yet applied).
	BytesReceived  uint64 `json:"bytes_received"`
	BytesApplied   uint64 `json:"bytes_applied"`
	LagBytes       uint64 `json:"lag_bytes"`
	RecordsApplied uint64 `json:"records_applied"`
	// ApplyRounds counts quiesce sections spent applying records; the
	// records-per-round ratio shows how much catch-up batching helps
	// (1.0 = in sync, applying record by record).
	ApplyRounds uint64 `json:"apply_rounds"`
	Bootstraps  uint64 `json:"bootstraps"`
	// Resumes counts reconnects served from the primary's retained ring —
	// no snapshot transfer, just the missed records.
	Resumes    uint64 `json:"resumes"`
	Reconnects uint64 `json:"reconnects"`

	LastRecordUnixNano    int64  `json:"last_record_unix_nano,omitempty"`
	LastHeartbeatUnixNano int64  `json:"last_heartbeat_unix_nano,omitempty"`
	Err                   string `json:"error,omitempty"` // last connection error
}

// Follower replicates a primary into a local engine: it dials the
// primary's replication listener, restores the bootstrapped states, then
// applies every shipped record through the engine's normal batch path —
// the engine serves its full read stack concurrently throughout. On a
// stream failure it reconnects with exponential backoff and resumes from
// its applied commit vector when the primary's retained ring still covers
// it, falling back to a full re-bootstrap otherwise (see the package
// comment's Resume section).
type Follower struct {
	eng     Engine
	primary string // normalized base URL
	opt     FollowerOptions
	client  *http.Client

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// applied is the per-shard commit vector the engine has fully applied
	// — the resume cursor. nil until the first bootstrap succeeds (a
	// fresh process has no state worth resuming from); cleared again when
	// the primary reports the cursor stale. The applier goroutine
	// advances it after every quiesce round; the reconnect loop reads it
	// between connections. appliedID is the stream id of the primary
	// incarnation the cursor's epochs belong to (from the stream header it
	// bootstrapped under); a resume presents it so a restarted primary —
	// whose recovered history the epochs may not match — rejects the
	// cursor instead of splicing a divergent tail.
	vecMu     sync.Mutex
	applied   []uint64
	appliedID uint64

	connected  atomic.Bool
	synced     atomic.Bool
	primaryEp  atomic.Uint64
	bytesRecv  atomic.Uint64
	bytesAppl  atomic.Uint64
	records    atomic.Uint64
	rounds     atomic.Uint64
	bootstraps atomic.Uint64
	resumes    atomic.Uint64
	reconnects atomic.Uint64
	lastRec    atomic.Int64
	lastHB     atomic.Int64
	lastErr    atomic.Pointer[error]

	firstSync chan struct{} // closed after the first successful sync
	syncOnce  sync.Once
}

// appliedVec returns a copy of the resume cursor and the stream id it was
// minted under; nil when the follower has never bootstrapped (or was told
// its cursor is stale).
func (f *Follower) appliedVec() ([]uint64, uint64) {
	f.vecMu.Lock()
	defer f.vecMu.Unlock()
	if f.applied == nil {
		return nil, 0
	}
	return append([]uint64(nil), f.applied...), f.appliedID
}

func (f *Follower) setAppliedVec(vec []uint64, id uint64) {
	f.vecMu.Lock()
	f.applied, f.appliedID = vec, id
	f.vecMu.Unlock()
}

// advanceApplied moves the resume cursor past one applied round.
func (f *Follower) advanceApplied(batch []queuedRecord) {
	f.vecMu.Lock()
	for _, rb := range batch {
		f.applied[rb.b.Shard] = rb.b.Epoch
	}
	f.vecMu.Unlock()
}

// StartFollower connects eng to the primary at addr (host:port or a full
// http:// URL) and keeps it replicating until Close. Unless
// opt.InitialSync is negative it blocks until the first bootstrap has
// been applied, so a successful return means the engine already holds a
// recent primary state.
func StartFollower(eng Engine, addr string, opt FollowerOptions) (*Follower, error) {
	opt = opt.withDefaults()
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	f := &Follower{
		eng:     eng,
		primary: base,
		opt:     opt,
		// The stream is long-lived by design: liveness comes from the
		// per-frame watchdog, not a client timeout.
		client:    &http.Client{Transport: &http.Transport{ResponseHeaderTimeout: opt.DialTimeout}},
		firstSync: make(chan struct{}),
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	f.wg.Add(1)
	go f.run()
	if opt.InitialSync >= 0 {
		select {
		case <-f.firstSync:
		case <-time.After(opt.InitialSync):
			err := fmt.Errorf("replica: no bootstrap from %s within %v", base, opt.InitialSync)
			if last := f.Err(); last != nil {
				err = fmt.Errorf("%w (last error: %v)", err, last)
			}
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// Primary returns the normalized primary base URL.
func (f *Follower) Primary() string { return f.primary }

// Epoch returns the follower engine's applied cross-shard epoch.
func (f *Follower) Epoch() uint64 { return f.eng.Epoch() }

// Synced reports whether the current connection has completed bootstrap.
func (f *Follower) Synced() bool { return f.synced.Load() }

// Err returns the last connection error (nil after a healthy [re]connect).
func (f *Follower) Err() error {
	if p := f.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Stats returns a point-in-time replication snapshot.
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		Primary:               f.primary,
		Connected:             f.connected.Load(),
		Synced:                f.synced.Load(),
		Epoch:                 f.eng.Epoch(),
		PrimaryEpoch:          f.primaryEp.Load(),
		BytesReceived:         f.bytesRecv.Load(),
		BytesApplied:          f.bytesAppl.Load(),
		RecordsApplied:        f.records.Load(),
		ApplyRounds:           f.rounds.Load(),
		Bootstraps:            f.bootstraps.Load(),
		Resumes:               f.resumes.Load(),
		Reconnects:            f.reconnects.Load(),
		LastRecordUnixNano:    f.lastRec.Load(),
		LastHeartbeatUnixNano: f.lastHB.Load(),
	}
	if st.PrimaryEpoch > st.Epoch {
		st.LagEpochs = st.PrimaryEpoch - st.Epoch
	}
	if st.BytesReceived > st.BytesApplied {
		st.LagBytes = st.BytesReceived - st.BytesApplied
	}
	if err := f.Err(); err != nil {
		st.Err = err.Error()
	}
	return st
}

// Close stops replication and waits for the stream goroutine to exit. The
// engine keeps the last applied state and stays fully readable.
func (f *Follower) Close() {
	f.cancel()
	f.wg.Wait()
}

// run is the reconnect loop: one stream() per connection, exponential
// backoff between failures, reset once a connection syncs. A connection
// attempts resume whenever a cursor exists; a stale verdict falls straight
// through to a bootstrap attempt with no backoff (the primary is healthy,
// it just evicted past us).
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := f.opt.BackoffMin
	for {
		if f.ctx.Err() != nil {
			return
		}
		synced, err := f.stream(f.appliedVec())
		f.connected.Store(false)
		f.synced.Store(false)
		if f.ctx.Err() != nil {
			return
		}
		if errors.Is(err, errResumeStale) {
			f.setAppliedVec(nil, 0)
			continue
		}
		if err != nil {
			e := err
			f.lastErr.Store(&e)
		}
		f.reconnects.Add(1)
		if synced {
			backoff = f.opt.BackoffMin
		}
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > f.opt.BackoffMax {
			backoff = f.opt.BackoffMax
		}
	}
}

// stream runs one connection lifetime: dial, sync (a full bootstrap, or a
// resume from cursor when one exists), then apply the live tail until the
// stream breaks, goes silent, or the follower closes. Returns whether the
// sync completed (for backoff reset).
func (f *Follower) stream(cursor []uint64, cursorID uint64) (synced bool, err error) {
	n, shards := f.eng.NumVertices(), f.eng.NumShards()
	resuming := cursor != nil
	var req *http.Request
	if resuming {
		body := appendResumeRequest(make([]byte, 0, streamHdrLen+8*shards), n, shards, cursorID, cursor)
		req, err = http.NewRequestWithContext(f.ctx, http.MethodPost, f.primary+StreamPath, bytes.NewReader(body))
	} else {
		req, err = http.NewRequestWithContext(f.ctx, http.MethodGet, f.primary+StreamPath, nil)
	}
	if err != nil {
		return false, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resuming {
			switch resp.StatusCode {
			case http.StatusMethodNotAllowed, http.StatusNotFound, http.StatusBadRequest:
				// The primary understood the POST and rejected it — a
				// pre-resume primary answers 405 (or 404), a shape mismatch
				// 400. The cursor will never be accepted; fall back to a
				// full bootstrap.
				return false, errResumeStale
			}
			// Anything else (a 503 from overload protection, a proxy 5xx)
			// is transient: keep the still-valid cursor and take the normal
			// backoff path rather than converting an overloaded primary's
			// pushback into a snapshot-transfer storm.
		}
		return false, fmt.Errorf("replica: primary returned %s", resp.Status)
	}

	// Silent-stream watchdog: tear the connection down if no frame lands
	// within StreamTimeout. Reset after every frame.
	watchdog := time.AfterFunc(f.opt.StreamTimeout, func() { resp.Body.Close() })
	defer watchdog.Stop()

	// Buffered reads keep frame parsing off raw socket syscalls. Counting
	// sits on top, so bytesRecv tracks consumed (not merely buffered)
	// stream bytes and the lag-bytes gauge stays exact. The buffer size
	// does not bound catch-up batching: round boundaries come from the
	// drain marker below, not from how many frames fit in one buffer.
	br := bufio.NewReaderSize(resp.Body, 256<<10)
	body := &countingReader{r: br, n: &f.bytesRecv}
	streamID, err := readStreamHeader(body, n, shards)
	if err != nil {
		return false, err
	}
	watchdog.Reset(f.opt.StreamTimeout)
	f.connected.Store(true)

	var states []wal.ShardState
	var seen []bool
	if !resuming {
		states = make([]wal.ShardState, shards)
		seen = make([]bool, shards)
	}
	vec := make([]uint64, shards)
	var buf []byte
	// Records are applied by a separate goroutine fed through a bounded
	// queue (started once the sync lands). Decoupling the socket from the
	// engine quiesce is what makes catch-up batching real: the reader
	// keeps draining the stream while an apply runs, so a backlog —
	// wherever it was sitting (kernel buffer, HTTP chunking) — surfaces
	// as queued records the applier folds into one quiesce per round. It
	// also keeps the silent-stream watchdog honest during long applies.
	var applyCh chan queuedRecord
	var applyWG sync.WaitGroup
	defer func() {
		if applyCh != nil {
			close(applyCh)
			applyWG.Wait()
		}
	}()
	startApplier := func(avec []uint64) {
		// Markers interleave with records on the queue, so give them
		// headroom beyond the records a round can hold.
		applyCh = make(chan queuedRecord, 2*f.opt.MaxApplyBatch)
		applyWG.Add(1)
		go func() {
			defer applyWG.Done()
			f.applyLoop(applyCh, avec)
		}()
	}
	pending := 0 // records handed to the applier since the last drain marker
	for {
		// Drain marker: the stream has no more buffered bytes, so the
		// records handed over so far are a complete round — tell the
		// applier to stop waiting and quiesce. Sent before potentially
		// blocking on the socket, which is what keeps the applier's
		// marker wait finite. (A partial frame in the buffer sends no
		// marker: the rest of the frame is already in flight — the
		// feeder flushes whole frames — so the wait is transient and the
		// record joins the round instead of splitting it.)
		if pending > 0 && br.Buffered() == 0 {
			applyCh <- queuedRecord{flush: true}
			pending = 0
		}
		typ, payload, rerr := readFrame(body, buf)
		if rerr != nil {
			if f.ctx.Err() != nil {
				return synced, nil
			}
			return synced, rerr
		}
		buf = payload[:0]
		watchdog.Reset(f.opt.StreamTimeout)
		switch typ {
		case frameState:
			if resuming || synced {
				return synced, errors.New("replica: unexpected state frame")
			}
			si, st, perr := parseStateFrame(payload, n, shards)
			if perr != nil {
				return synced, perr
			}
			states[si], seen[si] = st, true
		case frameEnd:
			if resuming || synced {
				return synced, errors.New("replica: unexpected end-of-bootstrap frame")
			}
			if err := parseVector(payload, vec); err != nil {
				return synced, err
			}
			for si, ok := range seen {
				if !ok {
					return synced, fmt.Errorf("replica: bootstrap missing shard %d", si)
				}
				if states[si].Epoch != vec[si] {
					return synced, fmt.Errorf("replica: bootstrap vector %d != shard %d state epoch %d",
						vec[si], si, states[si].Epoch)
				}
			}
			if err := f.eng.RestoreAll(states); err != nil {
				return synced, fmt.Errorf("replica: applying bootstrap: %w", err)
			}
			f.observePrimaryVec(vec)
			// Free the bootstrap copies; the tail loop does not need them.
			states, seen = nil, nil
			synced = true
			f.bootstraps.Add(1)
			f.setAppliedVec(append([]uint64(nil), vec...), streamID)
			f.bytesAppl.Store(f.bytesRecv.Load())
			f.synced.Store(true)
			f.lastErr.Store(nil)
			f.syncOnce.Do(func() { close(f.firstSync) })
			// The applier owns its own copy of the vector from here on;
			// the reader's copy only tracks heartbeat announcements.
			startApplier(append(make([]uint64, 0, shards), vec...))
		case frameResumeOK:
			if !resuming || synced {
				return synced, errors.New("replica: unexpected resume-ok frame")
			}
			// Payload is the primary's current vector; our engine already
			// holds the cursor state, and the records between the two
			// follow as ordinary record frames.
			if err := parseVector(payload, vec); err != nil {
				return synced, err
			}
			f.observePrimaryVec(vec)
			synced = true
			f.resumes.Add(1)
			f.bytesAppl.Store(f.bytesRecv.Load())
			f.synced.Store(true)
			f.lastErr.Store(nil)
			f.syncOnce.Do(func() { close(f.firstSync) })
			startApplier(append(make([]uint64, 0, shards), cursor...))
		case frameResumeStale:
			if !resuming || synced {
				return synced, errors.New("replica: unexpected resume-stale frame")
			}
			return false, errResumeStale
		case frameRecord:
			if !synced {
				return synced, errors.New("replica: record frame before sync")
			}
			b, used, ok := wal.DecodeRecord(payload, shards)
			if !ok || used != len(payload) {
				return synced, errors.New("replica: corrupt record frame")
			}
			// Hand off to the applier (DecodeRecord copied the edges, so
			// the frame buffer is free to reuse). A full queue blocks the
			// reader — the engine is MaxApplyBatch records behind the
			// socket at most, and beyond that the primary's tail buffer
			// overruns exactly as before.
			applyCh <- queuedRecord{b: b, recvd: f.bytesRecv.Load()}
			pending++
		case frameHeartbeat:
			if err := parseVector(payload, vec); err != nil {
				return synced, err
			}
			f.observePrimaryVec(vec)
			f.lastHB.Store(time.Now().UnixNano())
		default:
			return synced, fmt.Errorf("replica: unknown frame type %d", typ)
		}
	}
}

// queuedRecord is one decoded record frame in flight between the stream
// reader and the applier, stamped with the stream bytes consumed up to
// and including its frame (for the applied-bytes lag gauge) — or, when
// flush is set, a drain marker: the reader found the stream empty, so the
// records queued ahead of the marker form a complete round.
type queuedRecord struct {
	b     wal.Batch
	recvd uint64
	flush bool
}

// applyLoop applies queued records until the channel closes. Each round
// folds every record up to the stream's next drain point (bounded by
// MaxApplyBatch) into a single engine quiesce: the stream goroutine is
// the only producer, and it sends a drain marker whenever it is about to
// block on an empty socket, so a round is exactly the backlog — a
// catching-up follower pays one reader-exclusion per round instead of one
// per record, while an in-sync follower applies record by record with no
// waiting (its marker arrives right behind each record). A marker with
// records already queued behind it is skipped: the backlog has moved past
// that drain point, keep folding. vec is the applier's private copy of
// the commit vector, seeded from the sync point.
func (f *Follower) applyLoop(ch <-chan queuedRecord, vec []uint64) {
	batch := make([]queuedRecord, 0, f.opt.MaxApplyBatch)
	for {
		qr, open := <-ch
		if !open {
			return
		}
		if qr.flush {
			continue // stray marker, nothing pending
		}
		batch = append(batch[:0], qr)
	collect:
		for len(batch) < f.opt.MaxApplyBatch {
			select {
			case nqr, ok := <-ch:
				if !ok {
					break collect
				}
				if nqr.flush {
					if len(ch) == 0 {
						break collect
					}
					continue // records already queued past this drain point
				}
				batch = append(batch, nqr)
			default:
				// Queue empty but no drain marker yet: the reader is
				// still mid-stream, so more of this round is in flight —
				// wait for it rather than paying a quiesce per fragment.
				nqr, ok := <-ch
				if !ok || nqr.flush {
					break collect
				}
				batch = append(batch, nqr)
			}
		}
		// Quiescing keeps the engine's snapshot/invariant surfaces (which
		// assume no concurrent apply) safe to use on a live follower.
		f.eng.Quiesce(func() {
			for _, rb := range batch {
				f.eng.ApplyLogged(rb.b)
			}
		})
		for _, rb := range batch {
			vec[rb.b.Shard] = rb.b.Epoch
		}
		f.advanceApplied(batch)
		f.observePrimaryVec(vec)
		f.records.Add(uint64(len(batch)))
		f.rounds.Add(1)
		f.bytesAppl.Store(batch[len(batch)-1].recvd)
		f.lastRec.Store(time.Now().UnixNano())
	}
}

// observePrimaryVec publishes the newest primary epoch announced on the
// stream (monotone: reconnects bootstrap at an epoch >= anything seen).
func (f *Follower) observePrimaryVec(vec []uint64) {
	var sum uint64
	for _, e := range vec {
		sum += e
	}
	for {
		old := f.primaryEp.Load()
		if sum <= old || f.primaryEp.CompareAndSwap(old, sum) {
			return
		}
	}
}

// countingReader tracks received stream bytes.
type countingReader struct {
	r interface{ Read([]byte) (int, error) }
	n *atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}
