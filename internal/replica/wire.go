// Package replica implements read replicas by deterministic batch-log
// shipping: a primary-side Feeder streams a consistent engine capture
// followed by the live committed-batch stream to any number of followers,
// and a follower-side runtime applies that stream through the engine's
// normal batch path. Replay parity (same batch stream ⇒ byte-identical
// state, the property the trace and recovery tests pin down) is what makes
// this correct: a follower that bootstraps from the captured state and
// applies every later record in per-shard commit order converges to
// exactly the primary's levels, graph and epoch — so its read stack
// (views, pinned reads, top-k) serves answers byte-identical to the
// primary's at the same commit vector.
//
// # Protocol
//
// A follower issues GET /replicate/stream against the primary's
// replication listener and receives one long-lived response body:
//
//	stream header: magic u32, version u32, vertices u32, shards u32,
//	               stream id u64 (a per-boot random identity of the
//	               primary process — see Resume)
//	frames:        [type u8][len u32][payload], little-endian
//
//	frameState     one shard's durable state: shard u32 + the snapshot
//	               shard-state block (wal.MarshalShardState)
//	frameEnd       end of bootstrap: the captured per-shard commit vector
//	               ([shards]u64) — apply the states, then go live
//	frameRecord    one committed batch, framed exactly as the on-disk WAL
//	               record (wal.EncodeRecord); per-shard order = commit order
//	frameHeartbeat the shipped per-shard commit vector ([shards]u64),
//	               sent when the stream is otherwise idle; carries
//	               liveness and lets the follower measure lag
//
// # Resume
//
// A follower that already holds an applied state does not need the
// snapshot again — it needs exactly the batches after its applied commit
// vector. The primary retains a bounded in-memory ring of the newest
// committed batches (FeederOptions.RetainBatches, wal.Source.SetRetain)
// with a per-shard low-water vector that advances as the ring evicts. A
// reconnecting follower POSTs /replicate/stream with a fixed-size body —
// the same identification header (carrying the stream id it learned from
// the connection it is resuming) followed by its applied per-shard commit
// vector ([shards]u64) — and the primary answers on the response stream:
//
//	frameResumeOK    the cursor is covered by retention: payload is the
//	                 primary's current commit vector; the retained records
//	                 after the cursor follow as ordinary frameRecords,
//	                 spliced into the live tail with no gap and no overlap
//	                 (replay capture + tail subscription happen inside one
//	                 engine quiesce, wal.Source.Resume — the same atomicity
//	                 Bootstrap gets)
//	frameResumeStale the request's stream id is not this primary's (the
//	                 primary restarted — see below), some shard's cursor
//	                 predates the low-water mark (the ring evicted past
//	                 it), runs ahead of the primary, or retention is
//	                 disabled; the stream ends and the follower falls back
//	                 to a full GET bootstrap — stale is a fallback, not an
//	                 error
//
// The stream id is what gives a cursor an identity beyond its epoch
// numbers: the tail stream is published before the WAL append, and a
// degraded primary keeps committing without the disk, so a primary that
// crashes and recovers can re-commit *different* batches under epochs a
// follower already applied. A bare epoch vector from before the crash can
// therefore look resumable against the recovered primary's ring while
// naming a divergent history. Each primary process draws a random stream
// id at feeder construction and stamps every stream header with it; a
// resume request carries the id of the stream the cursor came from, and
// an id mismatch is answered frameResumeStale regardless of the epochs —
// the follower re-bootstraps and converges on the survivor history.
//
// The follower only resumes within one process lifetime (the applied
// vector is not persisted): a restarted follower's engine state cannot be
// trusted to match any vector, so the first connection always bootstraps.
// A primary that predates resume answers the POST with 405 and the
// follower likewise falls back.
package replica

import (
	"encoding/binary"
	"fmt"
	"io"

	"kcore/internal/wal"
)

const (
	streamMagic   = uint32(0x6b72706c) // "krpl"
	streamVersion = uint32(2)
	streamHdrLen  = 24

	frameHdrLen = 5 // [type u8][len u32]

	frameState       = byte(1)
	frameEnd         = byte(2)
	frameRecord      = byte(3)
	frameHeartbeat   = byte(4)
	frameResumeOK    = byte(5) // resume accepted: payload = primary's commit vector
	frameResumeStale = byte(6) // cursor outside retention or from another primary boot: empty payload, stream ends

	// maxFrameLen bounds a frame's claimed payload length before the
	// follower allocates for it: a corrupt or hostile length field can
	// only fail the connection, never demand an unbounded allocation.
	// State frames carry a whole shard (graph + levels), so the bound is
	// generous.
	maxFrameLen = 1 << 30
)

// StreamPath is the HTTP path a follower requests on the primary's
// replication listener.
const StreamPath = "/replicate/stream"

// InfoPath serves a small JSON diagnostic block (vertex/shard counts,
// feeder counters) next to the stream endpoint.
const InfoPath = "/replicate/info"

// KickPath drops every connected follower (POST). Followers reconnect and
// resume from their applied vector, so a kick is cheap — it exists so
// operators and the smoke script can force a deterministic
// reconnect/resume cycle without waiting out TCP timeouts.
const KickPath = "/replicate/kick"

// putStreamHeader encodes the identification header into hdr. In a
// response stream id is the primary's per-boot stream id; in a resume
// request it is the id of the stream the follower's cursor came from.
func putStreamHeader(hdr *[streamHdrLen]byte, n, shards int, id uint64) {
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], streamMagic)
	le.PutUint32(hdr[4:], streamVersion)
	le.PutUint32(hdr[8:], uint32(n))
	le.PutUint32(hdr[12:], uint32(shards))
	le.PutUint64(hdr[16:], id)
}

// writeStreamHeader writes the 24-byte stream identification header.
func writeStreamHeader(w io.Writer, n, shards int, id uint64) error {
	var hdr [streamHdrLen]byte
	putStreamHeader(&hdr, n, shards, id)
	_, err := w.Write(hdr[:])
	return err
}

// readStreamHeader reads and validates the stream header against the
// reader's engine shape, returning the stream id. A shape mismatch is a
// configuration error, not a transient fault; the id is not validated
// here — identity checks belong to the resume handshake.
func readStreamHeader(r io.Reader, n, shards int) (uint64, error) {
	var hdr [streamHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("replica: reading stream header: %w", err)
	}
	le := binary.LittleEndian
	if got := le.Uint32(hdr[0:]); got != streamMagic {
		return 0, fmt.Errorf("replica: bad stream magic %#x", got)
	}
	if got := le.Uint32(hdr[4:]); got != streamVersion {
		return 0, fmt.Errorf("replica: unsupported stream version %d", got)
	}
	if got := int(le.Uint32(hdr[8:])); got != n {
		return 0, fmt.Errorf("replica: primary has %d vertices, follower has %d", got, n)
	}
	if got := int(le.Uint32(hdr[12:])); got != shards {
		return 0, fmt.Errorf("replica: primary has %d shards, follower has %d", got, shards)
	}
	return le.Uint64(hdr[16:]), nil
}

// appendResumeRequest builds the POST body a resuming follower sends: the
// 24-byte identification header (carrying the cursor's stream id) followed
// by its applied per-shard commit vector. Fixed size, so the primary can
// read it with one ReadFull.
func appendResumeRequest(dst []byte, n, shards int, id uint64, vec []uint64) []byte {
	var hdr [streamHdrLen]byte
	putStreamHeader(&hdr, n, shards, id)
	dst = append(dst, hdr[:]...)
	return appendVector(dst, vec)
}

// readResumeRequest validates a resume request body against the primary's
// shape and decodes the follower's applied commit vector into vec,
// returning the stream id the cursor was minted under. The caller compares
// that id against its own: a mismatch means the cursor names a different
// primary incarnation's history and must be answered frameResumeStale.
func readResumeRequest(r io.Reader, n, shards int, vec []uint64) (uint64, error) {
	id, err := readStreamHeader(r, n, shards)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 8*shards)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, fmt.Errorf("replica: reading resume vector: %w", err)
	}
	return id, parseVector(buf, vec)
}

// appendFrame appends one framed payload to dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [frameHdrLen]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame reads one frame, reusing buf for the payload when it fits.
func readFrame(r io.Reader, buf []byte) (typ byte, payload []byte, err error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	plen := int(binary.LittleEndian.Uint32(hdr[1:]))
	if plen > maxFrameLen {
		return 0, nil, fmt.Errorf("replica: frame of %d bytes exceeds limit", plen)
	}
	if cap(buf) < plen {
		buf = make([]byte, plen)
	} else {
		buf = buf[:plen]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("replica: reading %d-byte frame payload: %w", plen, err)
	}
	return typ, buf, nil
}

// appendVector appends the per-shard commit vector as [len(vec)]u64.
func appendVector(dst []byte, vec []uint64) []byte {
	le := binary.LittleEndian
	off := len(dst)
	dst = append(dst, make([]byte, 8*len(vec))...)
	for i, e := range vec {
		le.PutUint64(dst[off+8*i:], e)
	}
	return dst
}

// parseVector decodes a commit-vector payload into dst.
func parseVector(payload []byte, dst []uint64) error {
	if len(payload) != 8*len(dst) {
		return fmt.Errorf("replica: vector payload of %d bytes for %d shards", len(payload), len(dst))
	}
	le := binary.LittleEndian
	for i := range dst {
		dst[i] = le.Uint64(payload[8*i:])
	}
	return nil
}

// parseStateFrame decodes a frameState payload: shard index + state block.
func parseStateFrame(payload []byte, n, shards int) (int, wal.ShardState, error) {
	if len(payload) < 4 {
		return 0, wal.ShardState{}, fmt.Errorf("replica: state frame of %d bytes", len(payload))
	}
	si := int(binary.LittleEndian.Uint32(payload))
	if si < 0 || si >= shards {
		return 0, wal.ShardState{}, fmt.Errorf("replica: state frame for shard %d of %d", si, shards)
	}
	st, used, err := wal.UnmarshalShardState(payload[4:], n)
	if err != nil {
		return 0, wal.ShardState{}, fmt.Errorf("replica: shard %d state: %w", si, err)
	}
	if used != len(payload)-4 {
		return 0, wal.ShardState{}, fmt.Errorf("replica: %d trailing bytes in shard %d state frame",
			len(payload)-4-used, si)
	}
	return si, st, nil
}

// Engine is what a follower drives: the durability surface (bootstrap
// restore + logged-batch apply + quiesce) plus whole-engine restore and
// the committed epoch. Both kcore backends implement it.
type Engine interface {
	wal.Engine
	// RestoreAll restores every shard inside one quiesce section, safe on
	// a live engine serving concurrent reads.
	RestoreAll(states []wal.ShardState) error
	// Epoch returns the cross-shard committed epoch (sum of per-shard
	// epochs).
	Epoch() uint64
}
