// Package feed turns the mover sets the PLDS sweeps already compute into
// a subscription change feed. At every batch commit the engine hands the
// hub one slice of per-vertex coreness transitions stamped with the
// commit's (cross-shard) epoch; the hub fans them out to subscribers over
// bounded buffered channels.
//
// Backpressure policy: the commit path never blocks on a subscriber.
// A subscriber whose buffer is full gets a gap marker carrying the epoch
// range it missed instead of the events themselves — it can recover the
// lost state with an epoch-pinned read (ViewAt) at the gap's upper bound.
// This mirrors the replica feeder's overrun-drop policy: slow consumers
// lose data, never stall the engine.
package feed

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Event is one vertex's coreness transition at one committed batch.
// NewCore is exactly the value an epoch-pinned read at Epoch returns for
// Vertex; OldCore is exactly the value at Epoch-1.
type Event struct {
	Epoch   uint64  `json:"epoch"`
	Vertex  uint32  `json:"vertex"`
	OldCore float64 `json:"old_core"`
	NewCore float64 `json:"new_core"`
}

// Filter selects which events a subscription receives. The zero value
// matches everything. Set fields compose with AND:
//
//   - Vertices: only events for these vertices.
//   - CrossK > 0: only transitions that cross the threshold k — the old
//     and new coreness fall on opposite sides of k (old < k <= new, or
//     new < k <= old).
//   - MinDelta > 0: only transitions with |new-old| >= MinDelta.
type Filter struct {
	Vertices []uint32
	CrossK   float64
	MinDelta float64
}

// compiled is the per-subscription matcher: a set for the vertex filter
// plus the scalar thresholds, built once at Subscribe.
type compiled struct {
	vset     map[uint32]struct{}
	crossK   float64
	minDelta float64
	all      bool
}

func (f Filter) compile() compiled {
	c := compiled{crossK: f.CrossK, minDelta: f.MinDelta}
	if len(f.Vertices) > 0 {
		c.vset = make(map[uint32]struct{}, len(f.Vertices))
		for _, v := range f.Vertices {
			c.vset[v] = struct{}{}
		}
	}
	c.all = c.vset == nil && c.crossK <= 0 && c.minDelta <= 0
	return c
}

func (c *compiled) match(e Event) bool {
	if c.vset != nil {
		if _, ok := c.vset[e.Vertex]; !ok {
			return false
		}
	}
	if k := c.crossK; k > 0 {
		below := e.OldCore < k
		nowBelow := e.NewCore < k
		if below == nowBelow {
			return false
		}
	}
	if d := c.minDelta; d > 0 {
		diff := e.NewCore - e.OldCore
		if diff < 0 {
			diff = -diff
		}
		if diff < d {
			return false
		}
	}
	return true
}

// Delivery is one message on a subscription channel: either the matching
// events of one committed epoch, or a gap marker covering the epochs
// [GapFrom, GapTo] the subscriber was too slow to receive. After a gap,
// re-read the vertices you care about with an epoch-pinned read at GapTo
// (or any later epoch) to resynchronize.
type Delivery struct {
	Epoch  uint64
	Events []Event
	Gap    bool
	GapFrom uint64
	GapTo   uint64
}

// Stats is a snapshot of the hub's counters.
type Stats struct {
	Subscribers int    `json:"subscribers"`
	Epochs      uint64 `json:"epochs"`      // commits published to the hub
	Events      uint64 `json:"events"`      // events offered (pre-filter, per commit)
	Deliveries  uint64 `json:"deliveries"`  // deliveries enqueued across subscribers
	Drops       uint64 `json:"drops"`       // deliveries dropped at full buffers
	Gaps        uint64 `json:"gaps"`        // gap markers enqueued
}

var (
	// ErrTooManySubscribers is returned by Subscribe when the hub's cap
	// is reached.
	ErrTooManySubscribers = errors.New("feed: too many subscribers")
	// ErrClosed is returned by Subscribe after the hub is closed.
	ErrClosed = errors.New("feed: hub closed")
)

// DefaultBuffer is the per-subscriber delivery buffer used when
// Subscribe is called with buffer <= 0.
const DefaultBuffer = 64

// Hub fans per-commit event slices out to subscribers. Publish is called
// from the engine's commit path; everything it does is bounded (one event
// copy, one non-blocking send per subscriber), so commit latency does not
// depend on consumer speed.
type Hub struct {
	mu      sync.Mutex
	subs    map[*Subscription]struct{}
	closed  bool
	maxSubs int

	nsubs      atomic.Int64 // mirrors len(subs) for the lock-free fast path
	epochs     atomic.Uint64
	events     atomic.Uint64
	deliveries atomic.Uint64
	drops      atomic.Uint64
	gaps       atomic.Uint64
}

// NewHub returns a hub admitting at most maxSubs concurrent subscribers
// (0 = unlimited).
func NewHub(maxSubs int) *Hub {
	return &Hub{subs: make(map[*Subscription]struct{}), maxSubs: maxSubs}
}

// Active reports whether any subscriber is attached. It is a single
// atomic load — the commit path checks it before touching mover state so
// an idle hub costs nothing.
func (h *Hub) Active() bool { return h.nsubs.Load() > 0 }

// Subscription is one consumer's handle: a receive channel plus Close.
type Subscription struct {
	hub    *Hub
	ch     chan Delivery
	filter compiled

	// Pending gap, accumulated while the buffer is full; flushed ahead
	// of the next delivery that fits. Guarded by hub.mu.
	gapFrom uint64
	gapTo   uint64
	gapped  bool
	closed  bool
}

// C is the delivery channel. It is closed when the subscription or the
// hub is closed; a full buffer converts missed epochs into gap markers
// rather than blocking the sender.
func (s *Subscription) C() <-chan Delivery { return s.ch }

// Close detaches the subscription and closes its channel. Safe to call
// more than once and concurrently with Publish.
func (s *Subscription) Close() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(h.subs, s)
	h.nsubs.Store(int64(len(h.subs)))
	close(s.ch)
}

// Subscribe attaches a consumer with the given filter and per-subscriber
// buffer (<= 0 selects DefaultBuffer).
func (h *Hub) Subscribe(f Filter, buffer int) (*Subscription, error) {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if h.maxSubs > 0 && len(h.subs) >= h.maxSubs {
		return nil, ErrTooManySubscribers
	}
	s := &Subscription{hub: h, ch: make(chan Delivery, buffer), filter: f.compile()}
	h.subs[s] = struct{}{}
	h.nsubs.Store(int64(len(h.subs)))
	return s, nil
}

// Publish fans one commit's events out to every subscriber. The events
// slice is copied once; all-events subscribers share the read-only copy,
// filtering subscribers get their own matching slice. Never blocks: a
// full subscriber buffer turns this epoch into (or extends) that
// subscriber's pending gap.
//
// Publish is called with commit-path ordering: epochs arrive in
// increasing order, after the epoch is readable.
func (h *Hub) Publish(epoch uint64, events []Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || len(h.subs) == 0 {
		return
	}
	h.epochs.Add(1)
	h.events.Add(uint64(len(events)))
	var shared []Event // lazily copied, shared by all-filter subscribers
	for s := range h.subs {
		var evs []Event
		if s.filter.all {
			if shared == nil {
				shared = make([]Event, len(events))
				copy(shared, events)
			}
			evs = shared
		} else {
			for _, e := range events {
				if s.filter.match(e) {
					evs = append(evs, e)
				}
			}
			if evs == nil {
				continue // nothing matched; not a drop, not a gap
			}
		}
		h.sendLocked(s, epoch, evs)
	}
}

// sendLocked delivers one epoch to one subscriber: flush any pending gap
// first, then the events, converting failures into (extended) gaps.
func (h *Hub) sendLocked(s *Subscription, epoch uint64, events []Event) {
	if s.gapped {
		select {
		case s.ch <- Delivery{Gap: true, GapFrom: s.gapFrom, GapTo: s.gapTo}:
			s.gapped = false
			h.gaps.Add(1)
		default:
			// Still stuck: this epoch joins the gap.
			s.gapTo = epoch
			h.drops.Add(1)
			return
		}
	}
	select {
	case s.ch <- Delivery{Epoch: epoch, Events: events}:
		h.deliveries.Add(1)
	default:
		s.gapped = true
		s.gapFrom = epoch
		s.gapTo = epoch
		h.drops.Add(1)
	}
}

// Stats snapshots the hub's counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	n := len(h.subs)
	h.mu.Unlock()
	return Stats{
		Subscribers: n,
		Epochs:      h.epochs.Load(),
		Events:      h.events.Load(),
		Deliveries:  h.deliveries.Load(),
		Drops:       h.drops.Load(),
		Gaps:        h.gaps.Load(),
	}
}

// Close detaches and closes every subscription and rejects future
// subscribes. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		s.closed = true
		close(s.ch)
	}
	h.subs = make(map[*Subscription]struct{})
	h.nsubs.Store(0)
}
