package feed

import (
	"fmt"
	"sync"
	"testing"
)

func ev(epoch uint64, v uint32, old, new float64) Event {
	return Event{Epoch: epoch, Vertex: v, OldCore: old, NewCore: new}
}

func TestFilterMatch(t *testing.T) {
	cases := []struct {
		name string
		f    Filter
		e    Event
		want bool
	}{
		{"all matches anything", Filter{}, ev(1, 7, 0, 2), true},
		{"vertex in set", Filter{Vertices: []uint32{3, 7}}, ev(1, 7, 0, 2), true},
		{"vertex not in set", Filter{Vertices: []uint32{3}}, ev(1, 7, 0, 2), false},
		{"cross up", Filter{CrossK: 2}, ev(1, 7, 1.5, 2.0), true},
		{"cross down", Filter{CrossK: 2}, ev(1, 7, 2.0, 1.5), true},
		{"no cross below", Filter{CrossK: 2}, ev(1, 7, 1.0, 1.5), false},
		{"no cross above", Filter{CrossK: 2}, ev(1, 7, 2.5, 3.0), false},
		{"delta met", Filter{MinDelta: 1}, ev(1, 7, 1, 2), true},
		{"delta met downward", Filter{MinDelta: 1}, ev(1, 7, 2, 1), true},
		{"delta not met", Filter{MinDelta: 1}, ev(1, 7, 1, 1.5), false},
		{"compose vertex+cross", Filter{Vertices: []uint32{7}, CrossK: 2}, ev(1, 7, 1, 3), true},
		{"compose fails on one leg", Filter{Vertices: []uint32{7}, CrossK: 2}, ev(1, 7, 2.5, 3), false},
	}
	for _, tc := range cases {
		c := tc.f.compile()
		if got := c.match(tc.e); got != tc.want {
			t.Errorf("%s: match=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestHubDeliveryAndFiltering(t *testing.T) {
	h := NewHub(0)
	all, err := h.Subscribe(Filter{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	only7, err := h.Subscribe(Filter{Vertices: []uint32{7}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	h.Publish(1, []Event{ev(1, 3, 0, 1), ev(1, 7, 0, 2)})
	h.Publish(2, []Event{ev(2, 3, 1, 2)})

	d := <-all.C()
	if d.Epoch != 1 || len(d.Events) != 2 {
		t.Fatalf("all sub epoch 1: got %+v", d)
	}
	d = <-all.C()
	if d.Epoch != 2 || len(d.Events) != 1 {
		t.Fatalf("all sub epoch 2: got %+v", d)
	}
	d = <-only7.C()
	if d.Epoch != 1 || len(d.Events) != 1 || d.Events[0].Vertex != 7 {
		t.Fatalf("filtered sub: got %+v", d)
	}
	// Epoch 2 had no matching events for only7: nothing should be pending.
	select {
	case d := <-only7.C():
		t.Fatalf("filtered sub got unexpected delivery %+v", d)
	default:
	}
	if st := h.Stats(); st.Subscribers != 2 || st.Epochs != 2 || st.Events != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHubGapMarkerMergesAndRecovers(t *testing.T) {
	h := NewHub(0)
	sub, err := h.Subscribe(Filter{}, 2) // room for two deliveries
	if err != nil {
		t.Fatal(err)
	}
	h.Publish(1, []Event{ev(1, 1, 0, 1)}) // slot 1
	h.Publish(2, []Event{ev(2, 1, 1, 2)}) // slot 2 — buffer full
	h.Publish(3, []Event{ev(3, 1, 2, 3)}) // dropped: starts gap [3,3]
	h.Publish(4, []Event{ev(4, 1, 3, 4)}) // dropped: gap extends to [3,4]

	if d := <-sub.C(); d.Gap || d.Epoch != 1 {
		t.Fatalf("first delivery: %+v", d)
	}
	if d := <-sub.C(); d.Gap || d.Epoch != 2 {
		t.Fatalf("second delivery: %+v", d)
	}
	// Buffer has room again; the next publish must flush the gap first,
	// then deliver its own events.
	h.Publish(5, []Event{ev(5, 1, 4, 5)})
	d := <-sub.C()
	if !d.Gap || d.GapFrom != 3 || d.GapTo != 4 {
		t.Fatalf("gap delivery: %+v", d)
	}
	d = <-sub.C()
	if d.Gap || d.Epoch != 5 {
		t.Fatalf("post-gap delivery: %+v", d)
	}
	st := h.Stats()
	if st.Drops != 2 || st.Gaps != 1 {
		t.Fatalf("stats after gap: %+v", st)
	}
}

func TestHubGapWithSingleSlotBuffer(t *testing.T) {
	// Worst case: buffer 1. Flushing a pending gap consumes the only
	// slot, so the flushing epoch itself becomes the next gap — the
	// subscriber sees an unbroken, never-blocking chain of gap markers
	// until it catches up.
	h := NewHub(0)
	sub, _ := h.Subscribe(Filter{}, 1)
	h.Publish(1, []Event{ev(1, 1, 0, 1)}) // fills the slot
	h.Publish(2, []Event{ev(2, 1, 1, 2)}) // gap [2,2] pending
	h.Publish(3, []Event{ev(3, 1, 2, 3)}) // gap extends to [2,3]
	if d := <-sub.C(); d.Gap || d.Epoch != 1 {
		t.Fatalf("first delivery: %+v", d)
	}
	h.Publish(4, []Event{ev(4, 1, 3, 4)}) // flushes gap{2,3}; 4 re-gaps
	d := <-sub.C()
	if !d.Gap || d.GapFrom != 2 || d.GapTo != 3 {
		t.Fatalf("gap: %+v", d)
	}
	h.Publish(5, []Event{ev(5, 1, 4, 5)}) // flushes gap{4,4}; 5 re-gaps
	d = <-sub.C()
	if !d.Gap || d.GapFrom != 4 || d.GapTo != 4 {
		t.Fatalf("second gap: %+v", d)
	}
}

func TestHubSubscriberCapAndClose(t *testing.T) {
	h := NewHub(2)
	a, err := h.Subscribe(Filter{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Subscribe(Filter{}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Subscribe(Filter{}, 1); err != ErrTooManySubscribers {
		t.Fatalf("over cap: err=%v", err)
	}
	a.Close()
	a.Close() // idempotent
	if _, ok := <-a.C(); ok {
		t.Fatal("closed subscription channel still open")
	}
	c, err := h.Subscribe(Filter{}, 1)
	if err != nil {
		t.Fatalf("slot not released on Close: %v", err)
	}
	h.Close()
	h.Close() // idempotent
	if _, ok := <-c.C(); ok {
		t.Fatal("hub Close did not close subscriber channel")
	}
	if _, err := h.Subscribe(Filter{}, 1); err != ErrClosed {
		t.Fatalf("subscribe after close: err=%v", err)
	}
}

func TestHubActiveFastPath(t *testing.T) {
	h := NewHub(0)
	if h.Active() {
		t.Fatal("idle hub reports active")
	}
	s, _ := h.Subscribe(Filter{}, 1)
	if !h.Active() {
		t.Fatal("hub with a subscriber reports idle")
	}
	s.Close()
	if h.Active() {
		t.Fatal("hub active after last unsubscribe")
	}
}

// TestHubConcurrentStress races subscribe/unsubscribe/close against a
// heavy publish load; run under -race it is the hub's memory-safety
// proof. Every subscriber checks the per-epoch ordering invariant:
// delivered epochs (and gap bounds) are strictly increasing.
func TestHubConcurrentStress(t *testing.T) {
	h := NewHub(0)
	const (
		publishers = 4
		epochs     = 300
		churners   = 8
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Publishers share one epoch counter under a mutex, mirroring the
	// engine: Publish is called in epoch order (the commit path
	// serializes publication), while subscribe/close churn freely.
	var pubMu sync.Mutex
	var epoch uint64
	var published sync.WaitGroup
	for p := 0; p < publishers; p++ {
		published.Add(1)
		go func(p int) {
			defer published.Done()
			events := []Event{ev(0, uint32(p), 0, 1), ev(0, uint32(p+100), 1, 0)}
			for e := 0; e < epochs; e++ {
				pubMu.Lock()
				epoch++
				h.Publish(epoch, events)
				pubMu.Unlock()
			}
		}(p)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var f Filter
				switch i % 3 {
				case 1:
					f.Vertices = []uint32{uint32(c)}
				case 2:
					f.MinDelta = 0.5
				}
				sub, err := h.Subscribe(f, 4)
				if err != nil {
					t.Error(err)
					return
				}
				// Drain a little, then detach mid-stream.
				last := uint64(0)
				for j := 0; j < 10; j++ {
					select {
					case d, ok := <-sub.C():
						if !ok {
							t.Error("channel closed before Close")
							return
						}
						lo := d.Epoch
						if d.Gap {
							lo = d.GapFrom
							if d.GapTo < d.GapFrom {
								t.Errorf("inverted gap %+v", d)
								return
							}
						}
						if lo <= last {
							t.Errorf("epoch went backwards: %d after %d", lo, last)
							return
						}
						if d.Gap {
							last = d.GapTo
						} else {
							last = d.Epoch
						}
					default:
						j = 10
					}
				}
				sub.Close()
			}
		}(c)
	}
	published.Wait()
	close(stop)
	wg.Wait()
	if st := h.Stats(); st.Subscribers != 0 {
		t.Fatalf("subscribers leaked: %+v", st)
	}
}

func TestPublishSharesOneCopy(t *testing.T) {
	// Two all-events subscribers must receive the identical backing
	// slice (one copy per publish), and that copy must not alias the
	// caller's buffer.
	h := NewHub(0)
	a, _ := h.Subscribe(Filter{}, 1)
	b, _ := h.Subscribe(Filter{}, 1)
	src := []Event{ev(1, 1, 0, 1)}
	h.Publish(1, src)
	src[0].Vertex = 99 // caller reuses its arena
	da, db := <-a.C(), <-b.C()
	if da.Events[0].Vertex != 1 || db.Events[0].Vertex != 1 {
		t.Fatalf("delivery aliases the publish arena: %+v / %+v", da, db)
	}
	if fmt.Sprintf("%p", da.Events) != fmt.Sprintf("%p", db.Events) {
		t.Fatal("all-events subscribers did not share one copy")
	}
}
