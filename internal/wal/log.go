package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/faultfs"
	"kcore/internal/graph"
)

const (
	segMagic   = uint32(0x6b77616c) // "kwal"
	segVersion = uint32(1)
	segHdrLen  = 16
	frameLen   = 8 // [len u32][crc32 u32]

	flagIns = byte(1)
	flagDel = byte(2)
)

func segName(seq uint64) string { return fmt.Sprintf("wal-%08d.seg", seq) }

// parseSegName extracts the sequence number from a segment file name.
func parseSegName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "wal-%d.seg", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// segLog is the segmented record log: one append-only file at a time,
// rotated by size (or by snapshots), with every record CRC-framed. All
// file I/O goes through fs, the injectable filesystem seam.
type segLog struct {
	dir       string
	fs        faultfs.FS
	n, shards int
	opt       Options

	mu       sync.Mutex
	f        faultfs.File
	seq      uint64           // sequence of the open segment
	size     int64            // bytes in the open segment
	sizes    map[uint64]int64 // bytes per closed-but-retained segment
	buf      []byte           // reused frame-encode buffer
	appended uint64
	retries  uint64 // append/fsync attempts retried after a transient error
	closed   bool

	lastSync atomic.Int64 // unix nanos of the last fsync (0 = never)
}

// encodeRecord frames one batch into buf (reused across calls):
// [len][crc][shard u32][epoch u64][flags u8][insCount u32][ins…][delCount u32][del…].
func encodeRecord(buf []byte, b Batch) []byte {
	payload := 4 + 8 + 1 + 4 + 8*len(b.Ins) + 4 + 8*len(b.Del)
	need := frameLen + payload
	if cap(buf) < need {
		buf = make([]byte, need, need+need/2)
	} else {
		buf = buf[:need]
	}
	le := binary.LittleEndian
	le.PutUint32(buf[0:], uint32(payload))
	p := buf[frameLen:]
	le.PutUint32(p[0:], uint32(b.Shard))
	le.PutUint64(p[4:], b.Epoch)
	var flags byte
	if b.HasIns {
		flags |= flagIns
	}
	if b.HasDel {
		flags |= flagDel
	}
	p[12] = flags
	off := 13
	le.PutUint32(p[off:], uint32(len(b.Ins)))
	off += 4
	for _, e := range b.Ins {
		le.PutUint32(p[off:], e.U)
		le.PutUint32(p[off+4:], e.V)
		off += 8
	}
	le.PutUint32(p[off:], uint32(len(b.Del)))
	off += 4
	for _, e := range b.Del {
		le.PutUint32(p[off:], e.U)
		le.PutUint32(p[off+4:], e.V)
		off += 8
	}
	le.PutUint32(buf[4:], crc32.ChecksumIEEE(p))
	return buf
}

// decodeRecord parses one framed record payload (the CRC has already been
// verified). Every length is re-checked against the payload size, so a
// corrupt-but-CRC-colliding record cannot demand an unbounded allocation.
func decodeRecord(p []byte, shards int) (Batch, error) {
	le := binary.LittleEndian
	if len(p) < 13+4 {
		return Batch{}, fmt.Errorf("wal: record payload too short (%d bytes)", len(p))
	}
	var b Batch
	b.Shard = int(le.Uint32(p[0:]))
	if b.Shard < 0 || b.Shard >= shards {
		return Batch{}, fmt.Errorf("wal: record for shard %d of %d", b.Shard, shards)
	}
	b.Epoch = le.Uint64(p[4:])
	flags := p[12]
	b.HasIns = flags&flagIns != 0
	b.HasDel = flags&flagDel != 0
	off := 13
	readEdges := func() ([]graph.Edge, error) {
		if off+4 > len(p) {
			return nil, fmt.Errorf("wal: record truncated at edge count")
		}
		count := int(le.Uint32(p[off:]))
		off += 4
		if count < 0 || off+8*count > len(p) {
			return nil, fmt.Errorf("wal: record edge count %d exceeds payload", count)
		}
		edges := make([]graph.Edge, count)
		for i := range edges {
			edges[i] = graph.Edge{U: le.Uint32(p[off:]), V: le.Uint32(p[off+4:])}
			off += 8
		}
		return edges, nil
	}
	var err error
	if b.Ins, err = readEdges(); err != nil {
		return Batch{}, err
	}
	if b.Del, err = readEdges(); err != nil {
		return Batch{}, err
	}
	if off != len(p) {
		return Batch{}, fmt.Errorf("wal: %d trailing bytes in record", len(p)-off)
	}
	return b, nil
}

// listSegments returns the directory's segment sequences in ascending
// order.
func listSegments(fsys faultfs.FS, dir string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, ent := range entries {
		if seq, ok := parseSegName(ent.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// scanAndOpen replays every intact record of the directory's segments (in
// sequence order) through apply, handling a torn tail: the first invalid
// frame truncates its segment at the record boundary and deletes every
// later segment — the conservative prefix of the log is what recovery
// sees. It returns the log opened for appending after the last intact
// record.
func scanAndOpen(dir string, n, shards int, opt Options, apply func(Batch)) (*segLog, uint64, error) {
	fsys := opt.FS
	seqs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	l := &segLog{dir: dir, fs: fsys, n: n, shards: shards, opt: opt, sizes: make(map[uint64]int64)}
	var replayed uint64
	truncated := false
	for i, seq := range seqs {
		path := filepath.Join(dir, segName(seq))
		if truncated {
			// Everything after a torn record is a later, unreachable
			// suffix; drop it.
			fsys.Remove(path)
			continue
		}
		data, err := fsys.ReadFile(path)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		if len(data) < segHdrLen {
			// A crash during segment creation can leave a headerless file,
			// but only as the very last segment.
			if i == len(seqs)-1 {
				fsys.Remove(path)
				truncated = true
				continue
			}
			return nil, 0, fmt.Errorf("wal: segment %s truncated mid-log (%d bytes)", path, len(data))
		}
		le := binary.LittleEndian
		if got := le.Uint32(data[0:]); got != segMagic {
			return nil, 0, fmt.Errorf("wal: %s: bad magic %#x", path, got)
		}
		if got := le.Uint32(data[4:]); got != segVersion {
			return nil, 0, fmt.Errorf("wal: %s: unsupported version %d", path, got)
		}
		if got := int(le.Uint32(data[8:])); got != n {
			return nil, 0, fmt.Errorf("wal: %s is for %d vertices, engine has %d", path, got, n)
		}
		if got := int(le.Uint32(data[12:])); got != shards {
			return nil, 0, fmt.Errorf("wal: %s is for %d shards, engine has %d", path, got, shards)
		}
		off := segHdrLen
		for off < len(data) {
			rec, n2, ok := nextRecord(data[off:], shards)
			if !ok {
				// Torn or corrupt: truncate here, drop later segments.
				if err := fsys.Truncate(path, int64(off)); err != nil {
					return nil, 0, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
				}
				truncated = true
				break
			}
			apply(rec)
			replayed++
			off += n2
		}
		end := int64(len(data))
		if truncated {
			end = 0 // recomputed below from the truncated file
			if fi, err := fsys.Stat(path); err == nil {
				end = fi.Size()
			}
		}
		l.sizes[seq] = end
	}
	// Open the last surviving segment for append, or start a fresh one.
	if len(l.sizes) > 0 {
		var last uint64
		for seq := range l.sizes {
			if seq > last {
				last = seq
			}
		}
		f, err := fsys.OpenFile(filepath.Join(dir, segName(last)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: opening segment for append: %w", err)
		}
		l.f, l.seq, l.size = f, last, l.sizes[last]
		delete(l.sizes, last)
		return l, replayed, nil
	}
	if err := l.newSegment(1); err != nil {
		return nil, 0, err
	}
	return l, replayed, nil
}

// nextRecord decodes the record at the start of data, returning its total
// framed length. ok is false for a torn or corrupt frame.
func nextRecord(data []byte, shards int) (Batch, int, bool) {
	if len(data) < frameLen {
		return Batch{}, 0, false
	}
	le := binary.LittleEndian
	plen := int(le.Uint32(data[0:]))
	if plen < 0 || frameLen+plen > len(data) {
		return Batch{}, 0, false // length runs past the file: torn tail
	}
	payload := data[frameLen : frameLen+plen]
	if crc32.ChecksumIEEE(payload) != le.Uint32(data[4:]) {
		return Batch{}, 0, false
	}
	b, err := decodeRecord(payload, shards)
	if err != nil {
		return Batch{}, 0, false
	}
	return b, frameLen + plen, true
}

// newSegment creates and opens segment seq, writing its header. Caller
// holds mu (or owns the log exclusively). Any stale file at the target
// sequence (debris of an earlier failed re-attach) is removed first.
func (l *segLog) newSegment(seq uint64) error {
	path := filepath.Join(l.dir, segName(seq))
	l.fs.Remove(path)
	// O_APPEND keeps every write at the real EOF, so the truncate-repair
	// in writeRecordLocked lands the retried frame exactly where the
	// partial one was rolled back.
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [segHdrLen]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], segMagic)
	le.PutUint32(hdr[4:], segVersion)
	le.PutUint32(hdr[8:], uint32(l.n))
	le.PutUint32(hdr[12:], uint32(l.shards))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	l.f, l.seq, l.size = f, seq, segHdrLen
	return nil
}

// backoff sleeps before retry attempt k (1-based), doubling from
// Options.RetryBackoff and capped at 100ms. A zero backoff makes retries
// immediate (deterministic tests).
func (l *segLog) backoff(k int) {
	if l.opt.RetryBackoff <= 0 {
		return
	}
	d := l.opt.RetryBackoff << (k - 1)
	if max := 100 * time.Millisecond; d > max {
		d = max
	}
	time.Sleep(d)
}

// writeRecordLocked writes the framed record in l.buf with bounded
// retries. A failed write may have persisted a prefix of the frame —
// bytes recovery would see as a torn record and truncate, taking every
// later record with them — so before each retry the segment is truncated
// back to its pre-record size and the whole frame is rewritten on a clean
// boundary. Caller holds mu.
func (l *segLog) writeRecordLocked() error {
	var err error
	for attempt := 0; attempt <= l.opt.AppendRetries; attempt++ {
		if attempt > 0 {
			l.retries++
			l.backoff(attempt)
			if terr := l.fs.Truncate(l.f.Name(), l.size); terr != nil {
				// The partial frame cannot be rolled back: the segment is
				// poisoned at this offset and retrying would bury later
				// records behind a torn one.
				return fmt.Errorf("wal: rolling back partial append: %w", terr)
			}
		}
		if _, err = l.f.Write(l.buf); err == nil {
			l.size += int64(len(l.buf))
			l.appended++
			return nil
		}
	}
	return fmt.Errorf("wal: appending record: %w", err)
}

// syncLocked fsyncs the open segment with bounded retries. Caller holds mu.
func (l *segLog) syncLocked() error {
	var err error
	for attempt := 0; attempt <= l.opt.AppendRetries; attempt++ {
		if attempt > 0 {
			l.retries++
			l.backoff(attempt)
		}
		if err = l.f.Sync(); err == nil {
			l.lastSync.Store(time.Now().UnixNano())
			return nil
		}
	}
	return fmt.Errorf("wal: fsync: %w", err)
}

// append frames and writes one record, applying the fsync policy and
// rotating the segment once it crosses the size threshold. Transient
// write/fsync errors are retried with backoff; the returned error means
// the retries are exhausted and the record is not durably logged.
func (l *segLog) append(b Batch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: append after close")
	}
	l.buf = encodeRecord(l.buf, b)
	if err := l.writeRecordLocked(); err != nil {
		return err
	}
	switch l.opt.Sync {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return err
		}
	case SyncInterval:
		if time.Now().UnixNano()-l.lastSync.Load() >= int64(l.opt.SyncEvery) {
			if err := l.syncLocked(); err != nil {
				return err
			}
		}
	}
	if l.size >= l.opt.SegmentBytes {
		if _, err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotate closes the current segment and opens the next; it returns the new
// segment's sequence (everything below it is the closed prefix a snapshot
// covers).
func (l *segLog) rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rotateLocked()
}

func (l *segLog) rotateLocked() (uint64, error) {
	if l.closed {
		return 0, fmt.Errorf("wal: rotate after close")
	}
	if err := l.f.Sync(); err != nil {
		return 0, err
	}
	l.lastSync.Store(time.Now().UnixNano())
	if err := l.f.Close(); err != nil {
		return 0, err
	}
	l.sizes[l.seq] = l.size
	if err := l.newSegment(l.seq + 1); err != nil {
		return 0, err
	}
	return l.seq, nil
}

// reset abandons the current segment — its tail may hold a torn or
// non-durable record — and opens a fresh one at the next sequence. The
// abandoned segment joins the closed set so a following purge removes it.
// Unlike rotate it never fsyncs the old file: reset runs on the re-attach
// path, where the old segment is wedged by assumption. Returns the fresh
// segment's sequence.
func (l *segLog) reset() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: reset after close")
	}
	l.f.Close() // best-effort: the segment is already suspect
	l.sizes[l.seq] = l.size
	if err := l.newSegment(l.seq + 1); err != nil {
		// Leave the old (closed) file installed: appends keep failing and
		// the manager stays degraded until a later re-attach succeeds.
		delete(l.sizes, l.seq)
		return 0, err
	}
	return l.seq, nil
}

// purgeBefore deletes every closed segment with sequence < seq (called
// after a snapshot covering them is durable).
func (l *segLog) purgeBefore(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for s := range l.sizes {
		if s < seq {
			l.fs.Remove(filepath.Join(l.dir, segName(s)))
			delete(l.sizes, s)
		}
	}
}

// stats returns the segment count, total log bytes, appended records and
// retried attempts.
func (l *segLog) stats() (segments int, bytes int64, appended, retries uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segments = len(l.sizes) + 1
	bytes = l.size
	for _, sz := range l.sizes {
		bytes += sz
	}
	return segments, bytes, l.appended, l.retries
}

// close fsyncs and closes the open segment.
func (l *segLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
