package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"

	"kcore/internal/faultfs"
	"kcore/internal/graph"
)

const (
	snapMagic   = uint32(0x6b736e70) // "ksnp"
	snapVersion = uint32(1)
	snapHdrLen  = 16
)

func snapName(globalEpoch uint64) string { return fmt.Sprintf("snap-%020d.ksnp", globalEpoch) }

// parseSnapName extracts the global epoch from a snapshot file name.
func parseSnapName(name string) (uint64, bool) {
	var ep uint64
	if _, err := fmt.Sscanf(name, "snap-%d.ksnp", &ep); err != nil {
		return 0, false
	}
	return ep, true
}

// shardStateSize returns the encoded size of one shard-state block.
func shardStateSize(n int, st ShardState) int {
	return 40 + 4*n + 4*len(st.Graph.Targets) + 4*n
}

// putShardState encodes one shard-state block — epoch u64, batches u64,
// inserted i64, deleted i64, targetsLen u64, degrees [n]u32, targets
// [targetsLen]u32, levels [n]i32 — into buf at off, returning the offset
// past the block. buf must have room (shardStateSize).
func putShardState(buf []byte, off, n int, st ShardState) int {
	le := binary.LittleEndian
	le.PutUint64(buf[off:], st.Epoch)
	le.PutUint64(buf[off+8:], st.Batches)
	le.PutUint64(buf[off+16:], uint64(st.Inserted))
	le.PutUint64(buf[off+24:], uint64(st.Deleted))
	le.PutUint64(buf[off+32:], uint64(len(st.Graph.Targets)))
	off += 40
	for v := 0; v < n; v++ {
		le.PutUint32(buf[off:], uint32(st.Graph.Offsets[v+1]-st.Graph.Offsets[v]))
		off += 4
	}
	for _, t := range st.Graph.Targets {
		le.PutUint32(buf[off:], t)
		off += 4
	}
	for _, l := range st.Levels {
		le.PutUint32(buf[off:], uint32(l))
		off += 4
	}
	return off
}

// getShardState decodes one shard-state block from buf[pos:end]. Every
// length is bounds-checked against end before use, so corrupt input can
// only fail the read, never demand an oversized allocation.
func getShardState(buf []byte, pos, end, n int) (ShardState, int, error) {
	le := binary.LittleEndian
	if pos+40 > end {
		return ShardState{}, pos, fmt.Errorf("wal: shard state truncated in header")
	}
	st := ShardState{
		Epoch:    le.Uint64(buf[pos:]),
		Batches:  le.Uint64(buf[pos+8:]),
		Inserted: int64(le.Uint64(buf[pos+16:])),
		Deleted:  int64(le.Uint64(buf[pos+24:])),
	}
	targetsLen := le.Uint64(buf[pos+32:])
	pos += 40
	need := 4*n + 4*int(targetsLen) + 4*n
	if targetsLen > uint64(end) || pos+need > end {
		return ShardState{}, pos, fmt.Errorf("wal: shard state block exceeds input")
	}
	offsets := make([]int64, n+1)
	var total int64
	for v := 0; v < n; v++ {
		offsets[v] = total
		total += int64(le.Uint32(buf[pos:]))
		pos += 4
	}
	offsets[n] = total
	if total != int64(targetsLen) {
		return ShardState{}, pos, fmt.Errorf("wal: shard state degrees sum %d != targets %d", total, targetsLen)
	}
	targets := make([]uint32, targetsLen)
	for i := range targets {
		targets[i] = le.Uint32(buf[pos:])
		pos += 4
	}
	levels := make([]int32, n)
	for v := range levels {
		levels[v] = int32(le.Uint32(buf[pos:]))
		pos += 4
	}
	st.Graph = &graph.CSR{Offsets: offsets, Targets: targets}
	st.Levels = levels
	return st, pos, nil
}

// writeSnapshot serializes the per-shard durable states to a temp file,
// fsyncs it and renames it into place, so a crash mid-write can never
// damage an existing snapshot. Layout: 16-byte identification header, one
// shard-state block per shard (see putShardState), then a trailing CRC32
// over everything before it.
func writeSnapshot(fsys faultfs.FS, dir string, n, shards int, states []ShardState) error {
	le := binary.LittleEndian
	size := snapHdrLen + 4 // header + trailing CRC
	for _, st := range states {
		size += shardStateSize(n, st)
	}
	buf := make([]byte, size)
	le.PutUint32(buf[0:], snapMagic)
	le.PutUint32(buf[4:], snapVersion)
	le.PutUint32(buf[8:], uint32(n))
	le.PutUint32(buf[12:], uint32(shards))
	off := snapHdrLen
	var global uint64
	for _, st := range states {
		global += st.Epoch
		off = putShardState(buf, off, n, st)
	}
	le.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))

	tmp, err := fsys.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: creating snapshot temp file: %w", err)
	}
	defer fsys.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), filepath.Join(dir, snapName(global))); err != nil {
		return fmt.Errorf("wal: publishing snapshot: %w", err)
	}
	return nil
}

// readSnapshot parses and CRC-validates one snapshot file. Every length is
// bounds-checked against the actual file size before use, so a corrupt
// header can only fail the read, never demand an oversized allocation.
func readSnapshot(fsys faultfs.FS, path string, n, shards int) ([]ShardState, error) {
	buf, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if len(buf) < snapHdrLen+4 {
		return nil, fmt.Errorf("wal: snapshot %s too short (%d bytes)", path, len(buf))
	}
	crcOff := len(buf) - 4
	if crc32.ChecksumIEEE(buf[:crcOff]) != le.Uint32(buf[crcOff:]) {
		return nil, fmt.Errorf("wal: snapshot %s fails checksum", path)
	}
	if got := le.Uint32(buf[0:]); got != snapMagic {
		return nil, fmt.Errorf("wal: snapshot %s: bad magic %#x", path, got)
	}
	if got := le.Uint32(buf[4:]); got != snapVersion {
		return nil, &configMismatchError{fmt.Sprintf("wal: snapshot %s: unsupported version %d", path, got)}
	}
	if got := int(le.Uint32(buf[8:])); got != n {
		return nil, &configMismatchError{fmt.Sprintf("wal: snapshot %s is for %d vertices, engine has %d", path, got, n)}
	}
	if got := int(le.Uint32(buf[12:])); got != shards {
		return nil, &configMismatchError{fmt.Sprintf("wal: snapshot %s is for %d shards, engine has %d", path, got, shards)}
	}
	pos := snapHdrLen
	states := make([]ShardState, shards)
	for si := range states {
		st, next, err := getShardState(buf, pos, crcOff, n)
		if err != nil {
			return nil, fmt.Errorf("wal: snapshot %s: shard %d: %w", path, si, err)
		}
		states[si] = st
		pos = next
	}
	if pos != crcOff {
		return nil, fmt.Errorf("wal: snapshot %s: %d trailing bytes", path, crcOff-pos)
	}
	return states, nil
}

// listSnapshots returns the directory's snapshot epochs, newest first.
func listSnapshots(fsys faultfs.FS, dir string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var eps []uint64
	for _, ent := range entries {
		if ep, ok := parseSnapName(ent.Name()); ok {
			eps = append(eps, ep)
		}
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i] > eps[j] })
	return eps, nil
}

// restoreNewestSnapshot restores eng from the newest snapshot that
// validates, filling vec with the restored per-shard epoch vector. A
// snapshot that fails its checksum (crash or bit rot) falls back to the
// next older one; no snapshot at all restores nothing (vec stays zero).
// Returns the global epoch of the restored snapshot (0 = none).
func restoreNewestSnapshot(fsys faultfs.FS, dir string, eng Engine, vec []uint64) (uint64, error) {
	eps, err := listSnapshots(fsys, dir)
	if err != nil {
		return 0, fmt.Errorf("wal: listing snapshots in %s: %w", dir, err)
	}
	for _, ep := range eps {
		path := filepath.Join(dir, snapName(ep))
		states, err := readSnapshot(fsys, path, eng.NumVertices(), eng.NumShards())
		if err != nil {
			// Config mismatches are hard errors; a failed checksum or torn
			// file falls back to the next older snapshot.
			if isConfigMismatch(err) {
				return 0, err
			}
			continue
		}
		for si, st := range states {
			if err := eng.RestoreShard(si, st); err != nil {
				return 0, fmt.Errorf("wal: restoring shard %d from %s: %w", si, path, err)
			}
			vec[si] = st.Epoch
		}
		return ep, nil
	}
	return 0, nil
}

// configMismatchError marks snapshot/engine shape disagreements (vertex
// count, shard count, format version), which must fail recovery loudly
// instead of silently falling back to an older snapshot or starting empty.
type configMismatchError struct{ msg string }

func (e *configMismatchError) Error() string { return e.msg }

func isConfigMismatch(err error) bool {
	var cm *configMismatchError
	return errors.As(err, &cm)
}

// pruneSnapshots removes all snapshots older than the one at keepEpoch.
func pruneSnapshots(fsys faultfs.FS, dir string, keepEpoch uint64) {
	eps, err := listSnapshots(fsys, dir)
	if err != nil {
		return
	}
	for _, ep := range eps {
		if ep < keepEpoch {
			fsys.Remove(filepath.Join(dir, snapName(ep)))
		}
	}
}
