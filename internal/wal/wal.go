// Package wal implements the durability subsystem: a write-ahead log of
// applied update batches plus periodic engine snapshots, with recovery =
// newest valid snapshot + replay of the log tail.
//
// # Model
//
// The engines apply updates in batches, and the same batch stream
// reproduces byte-identical state (the replay-parity property the trace
// tests pin down). Durability therefore reduces to logging the *applied*
// batch stream: after every committed batch the engine hands the WAL one
// Batch record — the shard it ran on, the shard's post-batch local epoch,
// and the coalesced insert/delete sub-batches — and the WAL appends it to a
// segmented, CRC-framed log. In sharded mode each shard's records are
// appended in its local commit order (the append runs inside the shard's
// one-updater section), so the log is a linearization of the per-shard
// commit streams — exactly the commit-vector order the multi-version
// vector log assigns to global epochs.
//
// Recovery loads the newest snapshot whose checksum validates, restores
// every shard from it, then replays the log tail: records at or below the
// snapshot's per-shard epoch vector are skipped, the rest are re-applied
// through the normal engine batch path. A torn or corrupt record — the
// footprint of a crash mid-append — truncates the log at that record's
// start instead of failing recovery; everything before it is recovered.
//
// # Fault tolerance and degraded mode
//
// All file I/O goes through an injectable filesystem (Options.FS, see
// package faultfs), so every error path below is deterministically
// testable. Transient append and fsync errors are retried in place with
// bounded backoff (Options.AppendRetries/RetryBackoff); a partially
// written record is rolled back by truncating the segment to the previous
// record boundary before each retry, so a retry never buries later
// records behind a torn frame.
//
// When the retries are exhausted the manager does not wedge the engine:
// it enters *degraded mode*. Reads and batch applies continue normally,
// but batches are no longer logged (counted in Stats.DroppedBatches), and
// Stats.Degraded/Err report the failure. A background loop (every
// Options.ReattachEvery) — or an explicit Reattach call — attempts to
// restore durability: it quiesces the engine, writes a full snapshot of
// the current in-memory state (which contains every batch dropped while
// degraded), opens a fresh log segment and purges the old ones, then
// clears the flag. All of that happens inside the quiesce, so once a
// re-attach succeeds there is no window in which a batch is neither in
// the snapshot nor in the log: post-re-attach durability is exactly as
// strong as a freshly opened WAL. Batches dropped while degraded are lost
// only if the process dies before a re-attach succeeds.
//
// # Formats
//
// Log segments (wal-<seq>.seg) start with a 16-byte header (magic,
// version, vertex count, shard count) followed by records framed as
// [len u32][crc32 u32][payload]; the CRC covers the payload. Snapshots
// (snap-<epoch>.ksnp) carry the same identification header, one durable
// state block per shard (local CSR, levels, epoch, counters) and a
// trailing whole-file CRC32; they are written to a temp file, fsynced and
// renamed, so a crash mid-snapshot leaves the previous snapshot intact.
// All integers are little-endian, matching the trace format.
package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/faultfs"
	"kcore/internal/graph"
)

// SyncPolicy controls when appended records are flushed to stable storage.
type SyncPolicy int

const (
	// SyncNone never fsyncs on the append path: writes go to the OS page
	// cache and survive process crashes but not machine crashes. Fastest.
	SyncNone SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncEvery, bounding the
	// machine-crash loss window while amortizing the fsync cost.
	SyncInterval
	// SyncAlways fsyncs after every record: a committed batch is durable
	// before the update call returns. Slowest, strongest.
	SyncAlways
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	default:
		return "none"
	}
}

// ParseSyncPolicy parses the textual policy names used by flags.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none", "":
		return SyncNone, nil
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	}
	return SyncNone, fmt.Errorf("wal: unknown fsync policy %q (want none, interval or always)", s)
}

// Options configure a Manager.
type Options struct {
	Sync          SyncPolicy
	SyncEvery     time.Duration // SyncInterval period (default 100ms)
	SegmentBytes  int64         // segment rotation threshold (default 64 MiB)
	SnapshotEvery uint64        // auto-snapshot after this many logged batches (0 = manual only)

	// FS is the filesystem all log and snapshot I/O goes through. nil =
	// the real OS filesystem; tests inject a faultfs.Injector.
	FS faultfs.FS
	// AppendRetries is how many times a failed append write or fsync is
	// retried before the manager degrades (0 = default of 2, negative =
	// no retries).
	AppendRetries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt and capped at 100ms. 0 = retry immediately (deterministic,
	// the right choice for injected faults and tests).
	RetryBackoff time.Duration
	// ReattachEvery is the period of the background re-attach loop that
	// runs while degraded (0 = default of 5s, negative = no background
	// loop; Reattach can still be called explicitly).
	ReattachEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FS == nil {
		o.FS = faultfs.OS()
	}
	switch {
	case o.AppendRetries == 0:
		o.AppendRetries = 2
	case o.AppendRetries < 0:
		o.AppendRetries = 0
	}
	if o.ReattachEvery == 0 {
		o.ReattachEvery = 5 * time.Second
	}
	return o
}

// Batch is one committed engine batch: the unit the log records and
// recovery replays. Epoch is the shard's *local* committed epoch after the
// batch applied. HasIns/HasDel record which sub-batches ran — an empty
// sub-batch still commits an epoch, so presence cannot be inferred from
// the edge counts.
type Batch struct {
	Shard          int
	Epoch          uint64
	Ins, Del       []graph.Edge
	HasIns, HasDel bool
}

// ShardState is one shard's durable state: everything needed to restore
// the shard exactly (graph + levels determine the level structure; the
// counters are observability state that cannot be derived from one shard
// alone).
type ShardState struct {
	Graph             *graph.CSR
	Levels            []int32
	Epoch             uint64
	Batches           uint64
	Inserted, Deleted int64
}

// Engine is the surface the WAL drives. Both backends (the single-CPLDS
// engine and the sharded engine) implement it; wal deliberately imports
// only the graph package, so the engines can import wal for the Batch and
// ShardState types without a cycle.
//
// SetBatchLog, Quiesce, ApplyLogged, ShardDurable and RestoreShard are
// quiescent-coordination methods: SetBatchLog and RestoreShard are called
// before the engine serves traffic (or under Quiesce), ApplyLogged only
// during single-threaded recovery, and ShardDurable only from inside a
// Quiesce section.
type Engine interface {
	NumVertices() int
	NumShards() int
	// SetBatchLog installs fn, invoked synchronously inside the shard's
	// one-updater section after every committed batch; the Batch's edge
	// slices are only valid for the duration of the call. nil uninstalls.
	SetBatchLog(fn func(Batch))
	// Quiesce runs f while every shard's updater is excluded: no batch is
	// in flight and none can start until f returns.
	Quiesce(f func())
	// ApplyLogged re-applies one logged batch through the normal batch
	// path, with the same accounting as the live path.
	ApplyLogged(b Batch)
	// ShardDurable captures shard si's durable state (copies, safe to use
	// after the quiesce section ends).
	ShardDurable(si int) ShardState
	// ShardEpoch returns shard si's committed local epoch — the cheap
	// (no-copy) slice of ShardDurable the resume ring needs to seed its
	// retention vector. Called from inside a Quiesce section.
	ShardEpoch(si int) uint64
	// RestoreShard restores shard si of a fresh engine from st.
	RestoreShard(si int, st ShardState) error
}

// Stats is a point-in-time durability snapshot, served by /stats.
type Stats struct {
	Dir                  string `json:"dir"`
	Sync                 string `json:"sync"`
	Segments             int    `json:"segments"`
	LogBytes             int64  `json:"log_bytes"`
	LoggedBatches        uint64 `json:"logged_batches"`      // appended since open
	RecoveredBatches     uint64 `json:"recovered_batches"`   // replayed from the log tail at open
	Snapshots            uint64 `json:"snapshots"`           // taken since open
	LastSnapshotEpoch    uint64 `json:"last_snapshot_epoch"` // global (summed) epoch; 0 = none yet
	LastSnapshotUnixNano int64  `json:"last_snapshot_unix_nano"`
	LastSyncUnixNano     int64  `json:"last_fsync_unix_nano"`

	// Degraded is true while durability is lost: appends failed past
	// their retry budget and batches are being applied in memory only.
	Degraded              bool   `json:"degraded"`
	DegradedSinceUnixNano int64  `json:"degraded_since_unix_nano,omitempty"`
	DroppedBatches        uint64 `json:"dropped_batches,omitempty"` // applied but not logged (degraded mode)
	Reattaches            uint64 `json:"reattaches,omitempty"`      // successful degraded → durable transitions
	AppendRetries         uint64 `json:"append_retries,omitempty"`  // write/fsync attempts that needed a retry
	Err                   string `json:"error,omitempty"`           // last durability error; cleared by re-attach
}

// Manager ties a log directory to an engine: it recovers the engine from
// the directory at Open, logs every committed batch from then on, and
// writes snapshots (manually via Snapshot, or automatically every
// Options.SnapshotEvery logged batches).
type Manager struct {
	dir string
	eng Engine
	opt Options
	fs  faultfs.FS
	log *segLog

	// hub fans the committed-batch stream out to replication subscribers
	// (see stream.go). Publication happens before the disk append and even
	// while degraded: replication tracks the applied stream, not the
	// durable one.
	hub tailHub

	recovered uint64 // batches replayed at Open

	// Degraded-mode state. degraded is flipped true by an exhausted
	// append (inside a shard's apply section) and flipped false only
	// inside a full-engine quiesce, so onBatch observes a consistent
	// value for the whole of any one batch.
	degraded      atomic.Bool
	degradedSince atomic.Int64
	dropped       atomic.Uint64
	reattaches    atomic.Uint64
	lastErr       atomic.Pointer[error]

	snapMu       sync.Mutex // one snapshot or re-attach at a time
	snapInFlight atomic.Bool
	sinceSnap    atomic.Uint64
	snapshots    atomic.Uint64
	lastSnapEp   atomic.Uint64
	lastSnapTime atomic.Int64

	closed    atomic.Bool
	stopCh    chan struct{}
	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup // auto-snapshot + re-attach goroutines
}

// Open recovers eng from dir (creating it if needed) and attaches the
// write-ahead log: newest valid snapshot first, then the log tail through
// the engine's normal batch path, truncating a torn tail record. It must
// be called on a freshly constructed, not-yet-serving engine, before any
// retention configuration (the multi-version logs initialize from the
// restored epochs).
func Open(dir string, eng Engine, opt Options) (*Manager, error) {
	opt = opt.withDefaults()
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	m := &Manager{dir: dir, eng: eng, opt: opt, fs: opt.FS, stopCh: make(chan struct{})}

	// 1) Restore the newest snapshot whose checksum validates.
	vec := make([]uint64, eng.NumShards())
	snapEpoch, err := restoreNewestSnapshot(m.fs, dir, eng, vec)
	if err != nil {
		return nil, err
	}
	m.lastSnapEp.Store(snapEpoch)

	// 2) Replay the log tail. Records already covered by the snapshot
	// (at or below its per-shard epoch vector) are skipped; the epoch
	// filter also makes replay idempotent across overlapping segments.
	lg, replayed, err := scanAndOpen(dir, eng.NumVertices(), eng.NumShards(), opt, func(b Batch) {
		if b.Epoch > vec[b.Shard] {
			eng.ApplyLogged(b)
			vec[b.Shard] = b.Epoch
		}
	})
	if err != nil {
		return nil, err
	}
	m.log = lg
	m.recovered = replayed
	m.sinceSnap.Store(replayed)

	// 3) Log every batch from here on.
	eng.SetBatchLog(m.onBatch)
	return m, nil
}

// onBatch appends one committed batch; it runs inside the committing
// shard's one-updater section, so per-shard records land in commit order.
// While degraded it drops the record (the batch is still applied in
// memory) instead of hammering a broken disk from the hot path.
func (m *Manager) onBatch(b Batch) {
	m.hub.publish(b)
	if m.degraded.Load() {
		m.dropped.Add(1)
		return
	}
	if err := m.log.append(b); err != nil {
		// Retries are exhausted: this batch is applied but not logged.
		m.dropped.Add(1)
		m.enterDegraded(err)
		return
	}
	if m.opt.SnapshotEvery > 0 && m.sinceSnap.Add(1) >= m.opt.SnapshotEvery {
		// Trigger asynchronously: this hook runs under a shard's apply
		// lock, and Snapshot quiesces all shards — inline it would
		// deadlock against ourselves.
		if m.snapInFlight.CompareAndSwap(false, true) {
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				defer m.snapInFlight.Store(false)
				_ = m.Snapshot()
			}()
		}
	}
}

// enterDegraded records the durability failure and, on the first
// transition, starts the background re-attach loop.
func (m *Manager) enterDegraded(err error) {
	e := err
	m.lastErr.Store(&e)
	if m.degraded.CompareAndSwap(false, true) {
		m.degradedSince.Store(time.Now().UnixNano())
		if m.opt.ReattachEvery > 0 && !m.closed.Load() {
			m.wg.Add(1)
			go m.reattachLoop()
		}
	}
}

// reattachLoop periodically retries Reattach until it succeeds or the
// manager closes.
func (m *Manager) reattachLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.opt.ReattachEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			if m.Reattach() == nil {
				return
			}
		}
	}
}

// Reattach attempts to restore durability after the manager has degraded:
// it quiesces the engine, snapshots the full in-memory state (including
// every batch dropped while degraded), switches logging to a fresh
// segment, purges the abandoned ones and clears the degraded flag — all
// inside the quiesce, so a batch committed after Reattach returns nil is
// durable under the configured policy with no gap. Returns nil immediately
// if the manager is not degraded; a failed attempt leaves it degraded and
// is safe to retry.
func (m *Manager) Reattach() error {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	if m.closed.Load() {
		return fmt.Errorf("wal: reattach after close")
	}
	if !m.degraded.Load() {
		return nil
	}
	return m.reattachLocked()
}

// reattachLocked does the quiesced re-attach. Caller holds snapMu.
//
// Ordering inside the quiesce is load-bearing. The snapshot must be
// durable before logging resumes: batches dropped while degraded exist
// only in memory, so a fresh segment without the snapshot would recover
// to a state missing them. And the old segments must be purged before
// appends resume: recovery drops every segment after a torn record, so a
// fresh segment living behind an old segment with a torn tail would be
// discarded wholesale at the next open.
func (m *Manager) reattachLocked() error {
	p := m.eng.NumShards()
	states := make([]ShardState, p)
	var err error
	m.eng.Quiesce(func() {
		for si := range states {
			states[si] = m.eng.ShardDurable(si)
		}
		if werr := writeSnapshot(m.fs, m.dir, m.eng.NumVertices(), p, states); werr != nil {
			err = fmt.Errorf("wal: re-attach snapshot: %w", werr)
			return
		}
		fresh, rerr := m.log.reset()
		if rerr != nil {
			err = fmt.Errorf("wal: re-attach log: %w", rerr)
			return
		}
		m.log.purgeBefore(fresh)
		m.sinceSnap.Store(0)
		m.degraded.Store(false)
		m.lastErr.Store(nil)
		m.degradedSince.Store(0)
		m.reattaches.Add(1)
	})
	if err != nil {
		e := err
		m.lastErr.Store(&e)
		return err
	}
	var global uint64
	for _, st := range states {
		global += st.Epoch
	}
	m.snapshots.Add(1)
	m.lastSnapEp.Store(global)
	m.lastSnapTime.Store(time.Now().UnixNano())
	pruneSnapshots(m.fs, m.dir, global)
	return nil
}

// Snapshot quiesces the engine, captures every shard's durable state,
// rotates the log, writes the snapshot (temp file + fsync + rename) and
// purges the log segments the snapshot covers. Safe to call concurrently
// with updates and Close; one snapshot runs at a time. While degraded it
// performs a re-attach instead (the normal rotate path would just fail
// against the wedged segment).
func (m *Manager) Snapshot() error {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	if m.closed.Load() {
		return fmt.Errorf("wal: snapshot after close")
	}
	if m.degraded.Load() {
		return m.reattachLocked()
	}
	p := m.eng.NumShards()
	states := make([]ShardState, p)
	var purgeBelow uint64
	var rotateErr error
	m.eng.Quiesce(func() {
		for si := range states {
			states[si] = m.eng.ShardDurable(si)
		}
		m.sinceSnap.Store(0)
		// Rotate inside the quiesce so every record in the old segments is
		// covered by the captured state.
		purgeBelow, rotateErr = m.log.rotate()
	})
	if rotateErr != nil {
		return fmt.Errorf("wal: rotating log for snapshot: %w", rotateErr)
	}
	var global uint64
	for _, st := range states {
		global += st.Epoch
	}
	if err := writeSnapshot(m.fs, m.dir, m.eng.NumVertices(), p, states); err != nil {
		return err
	}
	m.log.purgeBefore(purgeBelow)
	m.snapshots.Add(1)
	m.lastSnapEp.Store(global)
	m.lastSnapTime.Store(time.Now().UnixNano())
	pruneSnapshots(m.fs, m.dir, global)
	return nil
}

// Err returns the last durability error: the failure that degraded the
// manager (or the latest failed re-attach). A successful re-attach clears
// it. Non-nil means batches may be missing from the log.
func (m *Manager) Err() error {
	if p := m.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Degraded reports whether the manager is currently in degraded mode:
// applying batches in memory without logging them.
func (m *Manager) Degraded() bool { return m.degraded.Load() }

// RecoveredBatches returns how many log-tail batches Open replayed.
func (m *Manager) RecoveredBatches() uint64 { return m.recovered }

// Stats returns a point-in-time durability snapshot.
func (m *Manager) Stats() Stats {
	segs, bytes, appended, retries := m.log.stats()
	st := Stats{
		Dir:                   m.dir,
		Sync:                  m.opt.Sync.String(),
		Segments:              segs,
		LogBytes:              bytes,
		LoggedBatches:         appended,
		RecoveredBatches:      m.recovered,
		Snapshots:             m.snapshots.Load(),
		LastSnapshotEpoch:     m.lastSnapEp.Load(),
		LastSnapshotUnixNano:  m.lastSnapTime.Load(),
		LastSyncUnixNano:      m.log.lastSync.Load(),
		Degraded:              m.degraded.Load(),
		DegradedSinceUnixNano: m.degradedSince.Load(),
		DroppedBatches:        m.dropped.Load(),
		Reattaches:            m.reattaches.Load(),
		AppendRetries:         retries,
	}
	if err := m.Err(); err != nil {
		st.Err = err.Error()
	}
	return st
}

// Close detaches the batch hook (under a quiesce, so no append races the
// detach), stops the re-attach loop, waits for any in-flight background
// work, then flushes and closes the log. Idempotent and safe to call
// concurrently with Snapshot and in-flight batch commits: every caller
// gets the same result, and a snapshot that lost the race gets a clean
// "after close" error instead of a torn log. The engine stays usable in
// memory-only mode afterwards.
func (m *Manager) Close() error {
	m.closeOnce.Do(func() {
		close(m.stopCh)
		m.eng.Quiesce(func() { m.eng.SetBatchLog(nil) })
		m.hub.closeAll()
		// The closed flag is set only after the in-flight background work
		// drains: an auto-snapshot already spawned by the last batches must
		// be allowed to land, not aborted with "snapshot after close".
		m.wg.Wait()
		m.closed.Store(true)
		m.snapMu.Lock()
		logErr := m.log.close()
		m.snapMu.Unlock()
		m.closeErr = errors.Join(logErr, m.Err())
	})
	return m.closeErr
}
