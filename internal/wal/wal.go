// Package wal implements the durability subsystem: a write-ahead log of
// applied update batches plus periodic engine snapshots, with recovery =
// newest valid snapshot + replay of the log tail.
//
// # Model
//
// The engines apply updates in batches, and the same batch stream
// reproduces byte-identical state (the replay-parity property the trace
// tests pin down). Durability therefore reduces to logging the *applied*
// batch stream: after every committed batch the engine hands the WAL one
// Batch record — the shard it ran on, the shard's post-batch local epoch,
// and the coalesced insert/delete sub-batches — and the WAL appends it to a
// segmented, CRC-framed log. In sharded mode each shard's records are
// appended in its local commit order (the append runs inside the shard's
// one-updater section), so the log is a linearization of the per-shard
// commit streams — exactly the commit-vector order the multi-version
// vector log assigns to global epochs.
//
// Recovery loads the newest snapshot whose checksum validates, restores
// every shard from it, then replays the log tail: records at or below the
// snapshot's per-shard epoch vector are skipped, the rest are re-applied
// through the normal engine batch path. A torn or corrupt record — the
// footprint of a crash mid-append — truncates the log at that record's
// start instead of failing recovery; everything before it is recovered.
//
// # Formats
//
// Log segments (wal-<seq>.seg) start with a 16-byte header (magic,
// version, vertex count, shard count) followed by records framed as
// [len u32][crc32 u32][payload]; the CRC covers the payload. Snapshots
// (snap-<epoch>.ksnp) carry the same identification header, one durable
// state block per shard (local CSR, levels, epoch, counters) and a
// trailing whole-file CRC32; they are written to a temp file, fsynced and
// renamed, so a crash mid-snapshot leaves the previous snapshot intact.
// All integers are little-endian, matching the trace format.
package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/graph"
)

// SyncPolicy controls when appended records are flushed to stable storage.
type SyncPolicy int

const (
	// SyncNone never fsyncs on the append path: writes go to the OS page
	// cache and survive process crashes but not machine crashes. Fastest.
	SyncNone SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncEvery, bounding the
	// machine-crash loss window while amortizing the fsync cost.
	SyncInterval
	// SyncAlways fsyncs after every record: a committed batch is durable
	// before the update call returns. Slowest, strongest.
	SyncAlways
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	default:
		return "none"
	}
}

// ParseSyncPolicy parses the textual policy names used by flags.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none", "":
		return SyncNone, nil
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	}
	return SyncNone, fmt.Errorf("wal: unknown fsync policy %q (want none, interval or always)", s)
}

// Options configure a Manager.
type Options struct {
	Sync          SyncPolicy
	SyncEvery     time.Duration // SyncInterval period (default 100ms)
	SegmentBytes  int64         // segment rotation threshold (default 64 MiB)
	SnapshotEvery uint64        // auto-snapshot after this many logged batches (0 = manual only)
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// Batch is one committed engine batch: the unit the log records and
// recovery replays. Epoch is the shard's *local* committed epoch after the
// batch applied. HasIns/HasDel record which sub-batches ran — an empty
// sub-batch still commits an epoch, so presence cannot be inferred from
// the edge counts.
type Batch struct {
	Shard          int
	Epoch          uint64
	Ins, Del       []graph.Edge
	HasIns, HasDel bool
}

// ShardState is one shard's durable state: everything needed to restore
// the shard exactly (graph + levels determine the level structure; the
// counters are observability state that cannot be derived from one shard
// alone).
type ShardState struct {
	Graph             *graph.CSR
	Levels            []int32
	Epoch             uint64
	Batches           uint64
	Inserted, Deleted int64
}

// Engine is the surface the WAL drives. Both backends (the single-CPLDS
// engine and the sharded engine) implement it; wal deliberately imports
// only the graph package, so the engines can import wal for the Batch and
// ShardState types without a cycle.
//
// SetBatchLog, Quiesce, ApplyLogged, ShardDurable and RestoreShard are
// quiescent-coordination methods: SetBatchLog and RestoreShard are called
// before the engine serves traffic (or under Quiesce), ApplyLogged only
// during single-threaded recovery, and ShardDurable only from inside a
// Quiesce section.
type Engine interface {
	NumVertices() int
	NumShards() int
	// SetBatchLog installs fn, invoked synchronously inside the shard's
	// one-updater section after every committed batch; the Batch's edge
	// slices are only valid for the duration of the call. nil uninstalls.
	SetBatchLog(fn func(Batch))
	// Quiesce runs f while every shard's updater is excluded: no batch is
	// in flight and none can start until f returns.
	Quiesce(f func())
	// ApplyLogged re-applies one logged batch through the normal batch
	// path, with the same accounting as the live path.
	ApplyLogged(b Batch)
	// ShardDurable captures shard si's durable state (copies, safe to use
	// after the quiesce section ends).
	ShardDurable(si int) ShardState
	// RestoreShard restores shard si of a fresh engine from st.
	RestoreShard(si int, st ShardState) error
}

// Stats is a point-in-time durability snapshot, served by /stats.
type Stats struct {
	Dir                  string `json:"dir"`
	Sync                 string `json:"sync"`
	Segments             int    `json:"segments"`
	LogBytes             int64  `json:"log_bytes"`
	LoggedBatches        uint64 `json:"logged_batches"`    // appended since open
	RecoveredBatches     uint64 `json:"recovered_batches"` // replayed from the log tail at open
	Snapshots            uint64 `json:"snapshots"`         // taken since open
	LastSnapshotEpoch    uint64 `json:"last_snapshot_epoch"` // global (summed) epoch; 0 = none yet
	LastSnapshotUnixNano int64  `json:"last_snapshot_unix_nano"`
	LastSyncUnixNano     int64  `json:"last_fsync_unix_nano"`
	Err                  string `json:"error,omitempty"` // sticky append error, if any
}

// Manager ties a log directory to an engine: it recovers the engine from
// the directory at Open, logs every committed batch from then on, and
// writes snapshots (manually via Snapshot, or automatically every
// Options.SnapshotEvery logged batches).
type Manager struct {
	dir string
	eng Engine
	opt Options
	log *segLog

	recovered uint64 // batches replayed at Open
	appendErr atomic.Pointer[error]

	snapMu       sync.Mutex // one snapshot at a time
	snapInFlight atomic.Bool
	sinceSnap    atomic.Uint64
	snapshots    atomic.Uint64
	lastSnapEp   atomic.Uint64
	lastSnapTime atomic.Int64

	closed atomic.Bool
	wg     sync.WaitGroup // in-flight auto-snapshot goroutines
}

// Open recovers eng from dir (creating it if needed) and attaches the
// write-ahead log: newest valid snapshot first, then the log tail through
// the engine's normal batch path, truncating a torn tail record. It must
// be called on a freshly constructed, not-yet-serving engine, before any
// retention configuration (the multi-version logs initialize from the
// restored epochs).
func Open(dir string, eng Engine, opt Options) (*Manager, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	m := &Manager{dir: dir, eng: eng, opt: opt}

	// 1) Restore the newest snapshot whose checksum validates.
	vec := make([]uint64, eng.NumShards())
	snapEpoch, err := restoreNewestSnapshot(dir, eng, vec)
	if err != nil {
		return nil, err
	}
	m.lastSnapEp.Store(snapEpoch)

	// 2) Replay the log tail. Records already covered by the snapshot
	// (at or below its per-shard epoch vector) are skipped; the epoch
	// filter also makes replay idempotent across overlapping segments.
	lg, replayed, err := scanAndOpen(dir, eng.NumVertices(), eng.NumShards(), opt, func(b Batch) {
		if b.Epoch > vec[b.Shard] {
			eng.ApplyLogged(b)
			vec[b.Shard] = b.Epoch
		}
	})
	if err != nil {
		return nil, err
	}
	m.log = lg
	m.recovered = replayed
	m.sinceSnap.Store(replayed)

	// 3) Log every batch from here on.
	eng.SetBatchLog(m.onBatch)
	return m, nil
}

// onBatch appends one committed batch; it runs inside the committing
// shard's one-updater section, so per-shard records land in commit order.
func (m *Manager) onBatch(b Batch) {
	if err := m.log.append(b); err != nil {
		// Sticky: the first failure (disk full, dir removed) is reported
		// through Err/Stats and Close; later appends still run so the
		// engine keeps serving, but durability is flagged as broken.
		m.appendErr.CompareAndSwap(nil, &err)
	}
	if m.opt.SnapshotEvery > 0 && m.sinceSnap.Add(1) >= m.opt.SnapshotEvery {
		// Trigger asynchronously: this hook runs under a shard's apply
		// lock, and Snapshot quiesces all shards — inline it would
		// deadlock against ourselves.
		if m.snapInFlight.CompareAndSwap(false, true) {
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				defer m.snapInFlight.Store(false)
				_ = m.Snapshot()
			}()
		}
	}
}

// Snapshot quiesces the engine, captures every shard's durable state,
// rotates the log, writes the snapshot (temp file + fsync + rename) and
// purges the log segments the snapshot covers. Safe to call concurrently
// with updates; one snapshot runs at a time.
func (m *Manager) Snapshot() error {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	p := m.eng.NumShards()
	states := make([]ShardState, p)
	var purgeBelow uint64
	var rotateErr error
	m.eng.Quiesce(func() {
		for si := range states {
			states[si] = m.eng.ShardDurable(si)
		}
		m.sinceSnap.Store(0)
		// Rotate inside the quiesce so every record in the old segments is
		// covered by the captured state.
		purgeBelow, rotateErr = m.log.rotate()
	})
	if rotateErr != nil {
		return fmt.Errorf("wal: rotating log for snapshot: %w", rotateErr)
	}
	var global uint64
	for _, st := range states {
		global += st.Epoch
	}
	if err := writeSnapshot(m.dir, m.eng.NumVertices(), p, states); err != nil {
		return err
	}
	m.log.purgeBefore(purgeBelow)
	m.snapshots.Add(1)
	m.lastSnapEp.Store(global)
	m.lastSnapTime.Store(time.Now().UnixNano())
	pruneSnapshots(m.dir, global)
	return nil
}

// Err returns the sticky append error, if any append has failed since
// Open. A non-nil Err means batches may be missing from the log.
func (m *Manager) Err() error {
	if p := m.appendErr.Load(); p != nil {
		return *p
	}
	return nil
}

// RecoveredBatches returns how many log-tail batches Open replayed.
func (m *Manager) RecoveredBatches() uint64 { return m.recovered }

// Stats returns a point-in-time durability snapshot.
func (m *Manager) Stats() Stats {
	segs, bytes, appended := m.log.stats()
	st := Stats{
		Dir:                  m.dir,
		Sync:                 m.opt.Sync.String(),
		Segments:             segs,
		LogBytes:             bytes,
		LoggedBatches:        appended,
		RecoveredBatches:     m.recovered,
		Snapshots:            m.snapshots.Load(),
		LastSnapshotEpoch:    m.lastSnapEp.Load(),
		LastSnapshotUnixNano: m.lastSnapTime.Load(),
		LastSyncUnixNano:     m.log.lastSync.Load(),
	}
	if err := m.Err(); err != nil {
		st.Err = err.Error()
	}
	return st
}

// Close detaches the batch hook (under a quiesce, so no append races the
// detach), waits for any in-flight auto-snapshot, flushes and closes the
// log. The manager must not be used afterwards; the engine stays usable
// in memory-only mode.
func (m *Manager) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	m.eng.Quiesce(func() { m.eng.SetBatchLog(nil) })
	m.wg.Wait()
	return errors.Join(m.log.close(), m.Err())
}
