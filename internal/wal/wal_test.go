package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"kcore/internal/faultfs"
	"kcore/internal/graph"
)

// fakeEngine is a minimal Engine: per-shard state is the list of batches
// applied plus a fixed per-shard graph, enough to exercise the log and
// snapshot machinery without a real decomposition.
type fakeEngine struct {
	n, shards int

	mu       sync.Mutex
	logFn    func(Batch)
	applied  [][]Batch
	epochs   []uint64
	restored []ShardState
}

func newFakeEngine(n, shards int) *fakeEngine {
	return &fakeEngine{
		n: n, shards: shards,
		applied:  make([][]Batch, shards),
		epochs:   make([]uint64, shards),
		restored: make([]ShardState, shards),
	}
}

func (f *fakeEngine) NumVertices() int           { return f.n }
func (f *fakeEngine) NumShards() int             { return f.shards }
func (f *fakeEngine) SetBatchLog(fn func(Batch)) { f.logFn = fn }

func (f *fakeEngine) Quiesce(fn func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn()
}

func (f *fakeEngine) ApplyLogged(b Batch) {
	f.applied[b.Shard] = append(f.applied[b.Shard], cloneBatch(b))
	f.epochs[b.Shard] = b.Epoch
}

func (f *fakeEngine) ShardDurable(si int) ShardState {
	return ShardState{
		Graph:    graph.CSRFromEdges(f.n, []graph.Edge{{U: uint32(si), V: uint32(si + 1)}}),
		Levels:   make([]int32, f.n),
		Epoch:    f.epochs[si],
		Batches:  uint64(len(f.applied[si])),
		Inserted: int64(si),
	}
}

func (f *fakeEngine) ShardEpoch(si int) uint64 { return f.epochs[si] }

func (f *fakeEngine) RestoreShard(si int, st ShardState) error {
	f.restored[si] = st
	f.epochs[si] = st.Epoch
	return nil
}

// commit simulates the live path: apply then log, under the quiesce lock.
func (f *fakeEngine) commit(b Batch) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.applied[b.Shard] = append(f.applied[b.Shard], cloneBatch(b))
	f.epochs[b.Shard] = b.Epoch
	if f.logFn != nil {
		f.logFn(b)
	}
}

func cloneBatch(b Batch) Batch {
	b.Ins = append([]graph.Edge(nil), b.Ins...)
	b.Del = append([]graph.Edge(nil), b.Del...)
	return b
}

func testBatches() []Batch {
	return []Batch{
		{Shard: 0, Epoch: 1, Ins: []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, HasIns: true},
		{Shard: 1, Epoch: 1, Ins: []graph.Edge{{U: 3, V: 4}}, HasIns: true},
		{Shard: 0, Epoch: 2, HasIns: true}, // empty batch still commits an epoch
		{Shard: 0, Epoch: 3, Del: []graph.Edge{{U: 0, V: 1}}, HasDel: true},
		{Shard: 1, Epoch: 2, Ins: []graph.Edge{{U: 4, V: 5}}, Del: []graph.Edge{{U: 3, V: 4}}, HasIns: true, HasDel: true},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for i, b := range testBatches() {
		frame := encodeRecord(nil, b)
		got, n, ok := nextRecord(frame, 2)
		if !ok {
			t.Fatalf("batch %d: nextRecord rejected a fresh frame", i)
		}
		if n != len(frame) {
			t.Fatalf("batch %d: consumed %d of %d bytes", i, n, len(frame))
		}
		if got.Shard != b.Shard || got.Epoch != b.Epoch || got.HasIns != b.HasIns || got.HasDel != b.HasDel {
			t.Fatalf("batch %d: header mismatch: %+v vs %+v", i, got, b)
		}
		if len(got.Ins) != len(b.Ins) || len(got.Del) != len(b.Del) {
			t.Fatalf("batch %d: edge counts differ", i)
		}
		for j := range b.Ins {
			if got.Ins[j] != b.Ins[j] {
				t.Fatalf("batch %d: ins[%d] = %v, want %v", i, j, got.Ins[j], b.Ins[j])
			}
		}
	}
}

func TestDecodeRecordBoundsChecks(t *testing.T) {
	// A payload claiming a huge edge count must fail cleanly instead of
	// allocating count*8 bytes.
	b := Batch{Shard: 0, Epoch: 1, HasIns: true}
	frame := encodeRecord(nil, b)
	payload := frame[frameLen:]
	payload[13] = 0xff // insCount low byte -> 255, but no edge bytes follow
	if _, err := decodeRecord(payload, 1); err == nil {
		t.Fatal("decodeRecord accepted an edge count exceeding the payload")
	}
	if _, err := decodeRecord(payload[:5], 1); err == nil {
		t.Fatal("decodeRecord accepted a too-short payload")
	}
	if _, err := decodeRecord(frame[frameLen:], 0); err == nil {
		t.Fatal("decodeRecord accepted an out-of-range shard")
	}
}

// writeTestLog appends the batches through a real segLog and closes it,
// returning the directory.
func writeTestLog(t *testing.T, batches []Batch) string {
	t.Helper()
	dir := t.TempDir()
	lg, replayed, err := scanAndOpen(dir, 8, 2, Options{}.withDefaults(), func(Batch) {})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("fresh dir replayed %d records", replayed)
	}
	for _, b := range batches {
		if err := lg.append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func scanCount(t *testing.T, dir string) (int, []Batch) {
	t.Helper()
	var got []Batch
	lg, replayed, err := scanAndOpen(dir, 8, 2, Options{}.withDefaults(), func(b Batch) {
		got = append(got, cloneBatch(b))
	})
	if err != nil {
		t.Fatal(err)
	}
	lg.close()
	return int(replayed), got
}

func TestScanReplaysAll(t *testing.T) {
	batches := testBatches()
	dir := writeTestLog(t, batches)
	n, got := scanCount(t, dir)
	if n != len(batches) {
		t.Fatalf("replayed %d of %d records", n, len(batches))
	}
	for i := range batches {
		if !reflect.DeepEqual(normalize(got[i]), normalize(batches[i])) {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], batches[i])
		}
	}
}

// normalize maps nil and empty edge slices together for comparison.
func normalize(b Batch) Batch {
	if len(b.Ins) == 0 {
		b.Ins = nil
	}
	if len(b.Del) == 0 {
		b.Del = nil
	}
	return b
}

func TestScanTruncatesTornTail(t *testing.T) {
	batches := testBatches()
	dir := writeTestLog(t, batches)
	path := filepath.Join(dir, segName(1))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the end: every cut strictly inside the last record
	// must recover exactly the first len-1 records.
	for cut := int64(1); cut < 12; cut++ {
		dir2 := t.TempDir()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, segName(1)), data[:fi.Size()-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		n, _ := scanCount(t, dir2)
		if n != len(batches)-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, n, len(batches)-1)
		}
		// The torn tail must also have been truncated on disk, so the next
		// append continues from the last intact record.
		n2, _ := scanCount(t, dir2)
		if n2 != len(batches)-1 {
			t.Fatalf("cut %d: second scan replayed %d records, want %d", cut, n2, len(batches)-1)
		}
	}
}

func TestScanCorruptCRCDropsSuffix(t *testing.T) {
	batches := testBatches()
	dir := writeTestLog(t, batches)
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the payload of the second record.
	off := segHdrLen
	_, n1, _ := nextRecord(data[off:], 2)
	data[off+n1+frameLen] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n, _ := scanCount(t, dir)
	if n != 1 {
		t.Fatalf("replayed %d records after corrupting record 2, want 1", n)
	}
}

func TestRotationAndSegmentScan(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes small enough that every record rotates.
	opt := Options{SegmentBytes: 1}
	opt.SyncEvery = time.Hour
	lg, _, err := scanAndOpen(dir, 8, 2, opt.withDefaults(), func(Batch) {})
	if err != nil {
		t.Fatal(err)
	}
	batches := testBatches()
	for _, b := range batches {
		if err := lg.append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(faultfs.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < len(batches) {
		t.Fatalf("expected at least %d segments, have %d", len(batches), len(segs))
	}
	n, _ := scanCount(t, dir)
	if n != len(batches) {
		t.Fatalf("replayed %d of %d records across segments", n, len(batches))
	}
	// Tear the tail of the middle segment: later segments must be deleted.
	mid := segs[2]
	path := filepath.Join(dir, segName(mid))
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-1], 0o644)
	n, _ = scanCount(t, dir)
	if n != 2 {
		t.Fatalf("replayed %d records after mid-log tear, want 2", n)
	}
	segs, _ = listSegments(faultfs.OS(), dir)
	for _, s := range segs {
		if s > mid+1 { // mid survives truncated; scanAndOpen opened a fresh head at most
			t.Fatalf("segment %d survived a tear in segment %d", s, mid)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := newFakeEngine(8, 2)
	f.epochs = []uint64{3, 5}
	f.applied[0] = make([]Batch, 3)
	f.applied[1] = make([]Batch, 5)
	states := []ShardState{f.ShardDurable(0), f.ShardDurable(1)}
	if err := writeSnapshot(faultfs.OS(), dir, 8, 2, states); err != nil {
		t.Fatal(err)
	}
	got, err := readSnapshot(faultfs.OS(), filepath.Join(dir, snapName(8)), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for si := range states {
		want := states[si]
		g := got[si]
		if g.Epoch != want.Epoch || g.Batches != want.Batches || g.Inserted != want.Inserted {
			t.Fatalf("shard %d: counters mismatch: %+v vs %+v", si, g, want)
		}
		if !reflect.DeepEqual(g.Graph.Offsets, want.Graph.Offsets) || !bytes.Equal(u32bytes(g.Graph.Targets), u32bytes(want.Graph.Targets)) {
			t.Fatalf("shard %d: graph mismatch", si)
		}
		if !reflect.DeepEqual(g.Levels, want.Levels) {
			t.Fatalf("shard %d: levels mismatch", si)
		}
	}
}

func u32bytes(v []uint32) []byte {
	out := make([]byte, 0, len(v)*4)
	for _, x := range v {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return out
}

func TestSnapshotCorruptFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	f := newFakeEngine(8, 1)
	f.epochs[0] = 2
	if err := writeSnapshot(faultfs.OS(), dir, 8, 1, []ShardState{f.ShardDurable(0)}); err != nil {
		t.Fatal(err)
	}
	f.epochs[0] = 7
	if err := writeSnapshot(faultfs.OS(), dir, 8, 1, []ShardState{f.ShardDurable(0)}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newer snapshot.
	path := filepath.Join(dir, snapName(7))
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)

	vec := make([]uint64, 1)
	ep, err := restoreNewestSnapshot(faultfs.OS(), dir, f, vec)
	if err != nil {
		t.Fatal(err)
	}
	if ep != 2 || vec[0] != 2 {
		t.Fatalf("restored epoch %d (vec %v), want fallback to 2", ep, vec)
	}
}

func TestSnapshotConfigMismatchIsHardError(t *testing.T) {
	dir := t.TempDir()
	f := newFakeEngine(8, 1)
	f.epochs[0] = 2
	if err := writeSnapshot(faultfs.OS(), dir, 8, 1, []ShardState{f.ShardDurable(0)}); err != nil {
		t.Fatal(err)
	}
	vec := make([]uint64, 1)
	if _, err := restoreNewestSnapshot(faultfs.OS(), dir, newFakeEngine(9, 1), vec); err == nil {
		t.Fatal("vertex-count mismatch did not fail recovery")
	} else if !isConfigMismatch(err) {
		t.Fatalf("want config mismatch, got %v", err)
	}
	if _, err := Open(dir, newFakeEngine(8, 2), Options{}); err == nil {
		t.Fatal("shard-count mismatch did not fail Open")
	}
}

func TestManagerLogReplayAndStats(t *testing.T) {
	dir := t.TempDir()
	f := newFakeEngine(8, 2)
	m, err := Open(dir, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	batches := testBatches()
	for _, b := range batches {
		f.commit(b)
	}
	st := m.Stats()
	if st.LoggedBatches != uint64(len(batches)) {
		t.Fatalf("logged %d, want %d", st.LoggedBatches, len(batches))
	}
	if st.Sync != "none" || st.Dir != dir || st.Segments != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	f2 := newFakeEngine(8, 2)
	m2, err := Open(dir, f2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.RecoveredBatches(); got != uint64(len(batches)) {
		t.Fatalf("recovered %d, want %d", got, len(batches))
	}
	var total int
	for si := range f2.applied {
		total += len(f2.applied[si])
	}
	if total != len(batches) {
		t.Fatalf("engine applied %d batches on recovery, want %d", total, len(batches))
	}
	if f2.epochs[0] != 3 || f2.epochs[1] != 2 {
		t.Fatalf("recovered epochs %v, want [3 2]", f2.epochs)
	}
}

func TestManagerSnapshotSkipsCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	f := newFakeEngine(8, 2)
	m, err := Open(dir, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range testBatches() {
		f.commit(b)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	f.commit(Batch{Shard: 0, Epoch: 4, Ins: []graph.Edge{{U: 6, V: 7}}, HasIns: true})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	f2 := newFakeEngine(8, 2)
	m2, err := Open(dir, f2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	// Snapshot covered the first five batches; only the post-snapshot one
	// replays through the engine.
	if got := m2.RecoveredBatches(); got != 1 {
		t.Fatalf("replayed %d batches, want 1 (rest covered by snapshot)", got)
	}
	if f2.restored[0].Epoch != 3 || f2.restored[1].Epoch != 2 {
		t.Fatalf("restored epochs (%d,%d), want (3,2)",
			f2.restored[0].Epoch, f2.restored[1].Epoch)
	}
	if f2.epochs[0] != 4 {
		t.Fatalf("shard 0 epoch %d after tail replay, want 4", f2.epochs[0])
	}
}

func TestManagerAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	f := newFakeEngine(8, 1)
	m, err := Open(dir, f, Options{SnapshotEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		f.commit(Batch{Shard: 0, Epoch: uint64(i), HasIns: true})
	}
	// The snapshot runs asynchronously; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Snapshots == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-snapshot did not run")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, err := listSnapshots(faultfs.OS(), dir)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshot on disk (err %v)", err)
	}
}

func TestManagerAppendErrorDegrades(t *testing.T) {
	dir := t.TempDir()
	f := newFakeEngine(8, 1)
	// Negative ReattachEvery: no background loop, so the degraded state is
	// stable for the assertions below.
	m, err := Open(dir, f, Options{ReattachEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Force the append to fail by closing the log out from under the hook.
	m.log.close()
	f.commit(Batch{Shard: 0, Epoch: 1, HasIns: true})
	if m.Err() == nil {
		t.Fatal("append onto a closed log did not record a durability error")
	}
	if !m.Degraded() {
		t.Fatal("exhausted append did not flip the manager to degraded")
	}
	st := m.Stats()
	if st.Err == "" || !strings.Contains(st.Err, "close") {
		t.Fatalf("stats error %q does not surface the failure", st.Err)
	}
	if !st.Degraded || st.DroppedBatches != 1 || st.DegradedSinceUnixNano == 0 {
		t.Fatalf("degraded stats not populated: %+v", st)
	}
	// Later batches are applied but dropped from the log, not re-attempted.
	f.commit(Batch{Shard: 0, Epoch: 2, HasIns: true})
	if got := m.Stats().DroppedBatches; got != 2 {
		t.Fatalf("dropped %d batches, want 2", got)
	}
	if err := m.Close(); err == nil {
		t.Fatal("Close did not report the outstanding durability error")
	}
}

func TestManagerCloseIdempotentAndConcurrent(t *testing.T) {
	dir := t.TempDir()
	f := newFakeEngine(8, 2)
	m, err := Open(dir, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range testBatches() {
		f.commit(b)
	}
	// Concurrent Close calls, a racing Snapshot, and racing commits: none
	// may panic, and every Close returns the same (nil) result.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = m.Close()
		}(i)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = m.Snapshot() // either runs cleanly or reports "after close"
	}()
	go func() {
		defer wg.Done()
		f.commit(Batch{Shard: 1, Epoch: 3, HasIns: true})
	}()
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Fatalf("Close call %d returned %v, call 0 returned %v", i, err, errs[0])
		}
	}
	if errs[0] != nil {
		t.Fatalf("Close failed: %v", errs[0])
	}
	if err := m.Snapshot(); err == nil || !strings.Contains(err.Error(), "close") {
		t.Fatalf("Snapshot after Close: %v, want after-close error", err)
	}
	// The log tail must still be intact: reopen and check nothing is torn.
	f2 := newFakeEngine(8, 2)
	m2, err := Open(dir, f2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.RecoveredBatches(); got < uint64(len(testBatches())) {
		t.Fatalf("recovered %d batches after concurrent close, want >= %d", got, len(testBatches()))
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
}
