package wal

// Fault-injection tests: every WAL error path driven deterministically
// through faultfs — no sleeps, no disk filling, no process kills. The
// pattern throughout: commit a known batch stream through a manager with
// injected faults, then reopen the directory with a fresh engine and
// assert the recovered prefix is exactly what the durability contract
// promises for that fault × fsync policy.

import (
	"errors"
	"strings"
	"syscall"
	"testing"
	"time"

	"kcore/internal/faultfs"
	"kcore/internal/graph"
)

// commitSeq commits count single-shard batches with distinct edges; batch
// i carries epoch i+1 and edge {i, i+1}.
func commitSeq(f *fakeEngine, count int) {
	for i := 0; i < count; i++ {
		f.commit(Batch{
			Shard:  0,
			Epoch:  uint64(i + 1),
			Ins:    []graph.Edge{{U: uint32(i), V: uint32(i + 1)}},
			HasIns: true,
		})
	}
}

// reopenEpoch reopens dir with a fresh engine (no faults) and returns the
// recovered shard-0 epoch — the length of the recovered batch prefix,
// given commitSeq's epoch numbering.
func reopenEpoch(t *testing.T, dir string, n, shards int) uint64 {
	t.Helper()
	f := newFakeEngine(n, shards)
	m, err := Open(dir, f, Options{ReattachEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return f.epochs[0]
}

// noRetry disables retries, the background loop and backoff so each fault
// fires exactly once and the test controls every transition.
func noRetry(inj *faultfs.Injector) Options {
	return Options{FS: inj, AppendRetries: -1, ReattachEvery: -1}
}

func TestFaultFsyncFailureSyncAlways(t *testing.T) {
	// Under SyncAlways the Kth failed fsync degrades the manager at batch
	// K; the failing record's bytes are written (just not synced), so a
	// clean-process reopen recovers K+1 batches and everything after is
	// dropped.
	const healthy, total = 3, 8
	dir := t.TempDir()
	inj := faultfs.New(nil)
	f := newFakeEngine(16, 1)
	opt := noRetry(inj)
	opt.Sync = SyncAlways
	m, err := Open(dir, f, opt)
	if err != nil {
		t.Fatal(err)
	}
	inj.FailSyncs(healthy, -1) // permanent failure from the 4th fsync on
	commitSeq(f, total)

	if !m.Degraded() {
		t.Fatal("permanent fsync failure did not degrade the manager")
	}
	st := m.Stats()
	// The batch whose fsync failed is dropped too: it is written but not
	// durable under the always policy's contract.
	if st.DroppedBatches != total-healthy {
		t.Fatalf("dropped %d batches, want %d", st.DroppedBatches, total-healthy)
	}
	if !errors.Is(m.Err(), faultfs.ErrInjected) {
		t.Fatalf("Err() = %v, want the injected fault", m.Err())
	}
	// The engine kept applying everything in memory.
	if f.epochs[0] != total {
		t.Fatalf("in-memory epoch %d, want %d", f.epochs[0], total)
	}
	m.Close()
	if got := reopenEpoch(t, dir, 16, 1); got != healthy+1 {
		t.Fatalf("recovered epoch %d, want %d (written-but-unsynced record survives a clean reopen)", got, healthy+1)
	}
}

func TestFaultFsyncFailureSyncInterval(t *testing.T) {
	// SyncEvery of 1ns makes the interval policy sync on every append, so
	// the schedule is as deterministic as SyncAlways.
	const healthy, total = 2, 6
	dir := t.TempDir()
	inj := faultfs.New(nil)
	f := newFakeEngine(16, 1)
	opt := noRetry(inj)
	opt.Sync = SyncInterval
	opt.SyncEvery = time.Nanosecond
	m, err := Open(dir, f, opt)
	if err != nil {
		t.Fatal(err)
	}
	inj.FailSyncs(healthy, -1)
	commitSeq(f, total)
	if !m.Degraded() {
		t.Fatal("interval-policy fsync failure did not degrade the manager")
	}
	m.Close()
	if got := reopenEpoch(t, dir, 16, 1); got != healthy+1 {
		t.Fatalf("recovered epoch %d, want %d", got, healthy+1)
	}
}

func TestFaultFsyncFailureSyncNone(t *testing.T) {
	// Under SyncNone the append path never fsyncs: a broken fsync cannot
	// degrade the manager, every record is written, and only Close (which
	// does sync) reports the fault. That is the documented trade: none
	// means "page cache durability".
	const total = 6
	dir := t.TempDir()
	inj := faultfs.New(nil)
	f := newFakeEngine(16, 1)
	m, err := Open(dir, f, noRetry(inj))
	if err != nil {
		t.Fatal(err)
	}
	inj.FailSyncs(0, -1)
	commitSeq(f, total)
	if m.Degraded() {
		t.Fatal("SyncNone manager degraded on a fsync-only fault")
	}
	if st := m.Stats(); st.LoggedBatches != total {
		t.Fatalf("logged %d batches, want %d", st.LoggedBatches, total)
	}
	if err := m.Close(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Close() = %v, want the injected fsync fault", err)
	}
	if got := reopenEpoch(t, dir, 16, 1); got != total {
		t.Fatalf("recovered epoch %d, want %d", got, total)
	}
}

func TestFaultENOSPCDegradeAndReattach(t *testing.T) {
	// A byte budget models the disk filling mid-segment: appends degrade
	// with ENOSPC after the budget, the engine keeps applying, and once
	// the fault lifts an explicit Reattach restores durability with the
	// dropped batches folded into the re-attach snapshot.
	const total, more = 10, 4
	dir := t.TempDir()
	inj := faultfs.New(nil)
	f := newFakeEngine(16, 1)
	opt := Options{FS: inj, ReattachEvery: -1} // default retries: exercises truncate-repair
	m, err := Open(dir, f, opt)
	if err != nil {
		t.Fatal(err)
	}
	inj.LimitBytes(200) // header is 16 bytes, each record ~29: a few fit
	commitSeq(f, total)
	if !m.Degraded() {
		t.Fatal("ENOSPC did not degrade the manager")
	}
	if !errors.Is(m.Err(), syscall.ENOSPC) {
		t.Fatalf("Err() = %v, want ENOSPC", m.Err())
	}
	st := m.Stats()
	if st.AppendRetries == 0 {
		t.Fatal("exhausting the byte budget never exercised a retry")
	}
	if st.DroppedBatches == 0 || st.DroppedBatches >= total {
		t.Fatalf("dropped %d of %d batches, want a proper mid-stream cut", st.DroppedBatches, total)
	}

	// Operator fixes the disk: the next Reattach succeeds and the full
	// in-memory state (including every dropped batch) becomes durable.
	inj.LimitBytes(-1)
	if err := m.Reattach(); err != nil {
		t.Fatalf("Reattach after lifting ENOSPC: %v", err)
	}
	if m.Degraded() || m.Err() != nil {
		t.Fatalf("still degraded after re-attach: degraded=%v err=%v", m.Degraded(), m.Err())
	}
	if got := m.Stats().Reattaches; got != 1 {
		t.Fatalf("reattaches = %d, want 1", got)
	}
	// Re-attach is idempotent when healthy.
	if err := m.Reattach(); err != nil {
		t.Fatalf("no-op Reattach: %v", err)
	}
	commitSeq2 := func(from, count int) {
		for i := from; i < from+count; i++ {
			f.commit(Batch{Shard: 0, Epoch: uint64(i + 1), Ins: []graph.Edge{{U: uint32(i), V: uint32(i + 1)}}, HasIns: true})
		}
	}
	commitSeq2(total, more)
	if err := m.Close(); err != nil {
		t.Fatalf("Close after successful re-attach: %v", err)
	}
	// Nothing was lost: snapshot carries the degraded-era batches, the
	// fresh segment carries the post-re-attach ones.
	if got := reopenEpoch(t, dir, 16, 1); got != total+more {
		t.Fatalf("recovered epoch %d, want %d", got, total+more)
	}
}

func TestFaultShortWriteRepairedByRetry(t *testing.T) {
	// A transient torn write: the first attempt persists a partial frame,
	// the retry truncates back to the record boundary and rewrites it, so
	// the log stays clean and nothing degrades.
	const total = 5
	dir := t.TempDir()
	inj := faultfs.New(nil)
	f := newFakeEngine(16, 1)
	m, err := Open(dir, f, Options{FS: inj, ReattachEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	commitSeq(f, 2)
	inj.ShortWrite(5) // next record tears 5 bytes into its frame
	f.commit(Batch{Shard: 0, Epoch: 3, Ins: []graph.Edge{{U: 2, V: 3}}, HasIns: true})
	if m.Degraded() {
		t.Fatal("transient short write degraded the manager despite retries")
	}
	st := m.Stats()
	if st.AppendRetries == 0 {
		t.Fatal("short write did not register a retry")
	}
	for i := 3; i < total; i++ {
		f.commit(Batch{Shard: 0, Epoch: uint64(i + 1), Ins: []graph.Edge{{U: uint32(i), V: uint32(i + 1)}}, HasIns: true})
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reopenEpoch(t, dir, 16, 1); got != total {
		t.Fatalf("recovered epoch %d, want %d (repaired record must replay)", got, total)
	}
}

func TestFaultShortWriteTornFrameRecoversPrefix(t *testing.T) {
	// A torn write with no retry budget leaves a partial frame on disk:
	// recovery must truncate at the record boundary and replay exactly
	// the intact prefix.
	const healthy = 3
	dir := t.TempDir()
	inj := faultfs.New(nil)
	f := newFakeEngine(16, 1)
	m, err := Open(dir, f, noRetry(inj))
	if err != nil {
		t.Fatal(err)
	}
	commitSeq(f, healthy)
	inj.ShortWrite(7) // tear inside the length/CRC frame of the next record
	f.commit(Batch{Shard: 0, Epoch: healthy + 1, Ins: []graph.Edge{{U: 9, V: 10}}, HasIns: true})
	if !m.Degraded() {
		t.Fatal("unrepaired short write did not degrade the manager")
	}
	m.Close()
	if got := reopenEpoch(t, dir, 16, 1); got != healthy {
		t.Fatalf("recovered epoch %d, want %d (torn frame truncated)", got, healthy)
	}
	// The truncation is persistent: a second reopen sees the same prefix.
	if got := reopenEpoch(t, dir, 16, 1); got != healthy {
		t.Fatalf("second reopen recovered epoch %d, want %d", got, healthy)
	}
}

func TestFaultPermanentWriteFailure(t *testing.T) {
	// Writes that fail outright (EIO-style) exhaust the retries and
	// degrade; the clean prefix replays on reopen.
	const healthy, total = 4, 9
	dir := t.TempDir()
	inj := faultfs.New(nil)
	f := newFakeEngine(16, 1)
	m, err := Open(dir, f, Options{FS: inj, ReattachEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The segment header was written before the fault was armed, so the
	// schedule counts records only.
	inj.FailWrites(healthy, -1)
	commitSeq(f, total)
	if !m.Degraded() {
		t.Fatal("permanent write failure did not degrade the manager")
	}
	if f.epochs[0] != total {
		t.Fatalf("in-memory epoch %d, want %d (applies must continue)", f.epochs[0], total)
	}
	m.Close()
	if got := reopenEpoch(t, dir, 16, 1); got != healthy {
		t.Fatalf("recovered epoch %d, want %d", got, healthy)
	}
}

func TestFaultCorruptWriteCaughtByCRC(t *testing.T) {
	// Silent bit rot in a record write is invisible at append time; the
	// CRC catches it at recovery and drops the record and everything
	// after it.
	const healthy, total = 2, 5
	dir := t.TempDir()
	inj := faultfs.New(nil)
	f := newFakeEngine(16, 1)
	m, err := Open(dir, f, noRetry(inj))
	if err != nil {
		t.Fatal(err)
	}
	commitSeq(f, healthy)
	inj.CorruptNextWrite()
	for i := healthy; i < total; i++ {
		f.commit(Batch{Shard: 0, Epoch: uint64(i + 1), Ins: []graph.Edge{{U: uint32(i), V: uint32(i + 1)}}, HasIns: true})
	}
	if m.Degraded() {
		t.Fatal("silent corruption must not be detectable at append time")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reopenEpoch(t, dir, 16, 1); got != healthy {
		t.Fatalf("recovered epoch %d, want %d (corrupt record and suffix dropped)", got, healthy)
	}
}

func TestFaultSnapshotRenameFallsBack(t *testing.T) {
	// A snapshot whose final rename fails is never published: the older
	// snapshot plus the *unpurged* log tail must still recover everything.
	const first, second = 4, 8
	dir := t.TempDir()
	inj := faultfs.New(nil)
	f := newFakeEngine(16, 1)
	m, err := Open(dir, f, Options{FS: inj, ReattachEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	commitSeq(f, first)
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := first; i < second; i++ {
		f.commit(Batch{Shard: 0, Epoch: uint64(i + 1), Ins: []graph.Edge{{U: uint32(i), V: uint32(i + 1)}}, HasIns: true})
	}
	inj.FailRenames(0, 1)
	if err := m.Snapshot(); err == nil || !strings.Contains(err.Error(), "publishing snapshot") {
		t.Fatalf("Snapshot with failing rename: %v, want publish error", err)
	}
	// The failed snapshot must not have purged the segments it would have
	// covered, or the records between the two snapshots are gone.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reopenEpoch(t, dir, 16, 1); got != second {
		t.Fatalf("recovered epoch %d, want %d (older snapshot + full tail)", got, second)
	}
	// Only the first snapshot was published.
	snaps, err := listSnapshots(faultfs.OS(), dir)
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots on disk %v (err %v), want exactly the first", snaps, err)
	}
}

func TestFaultReattachFailureStaysDegradedThenRecovers(t *testing.T) {
	// A re-attach whose own snapshot write fails must change nothing:
	// still degraded, error reported, safe to retry until it works.
	const total = 6
	dir := t.TempDir()
	inj := faultfs.New(nil)
	f := newFakeEngine(16, 1)
	opt := noRetry(inj)
	opt.Sync = SyncAlways
	m, err := Open(dir, f, opt)
	if err != nil {
		t.Fatal(err)
	}
	inj.FailSyncs(0, -1) // degrade on the first batch
	commitSeq(f, total)
	if !m.Degraded() {
		t.Fatal("manager did not degrade")
	}
	// Fault still present: the re-attach snapshot's fsync fails too.
	if err := m.Reattach(); err == nil {
		t.Fatal("Reattach succeeded while the fsync fault is still armed")
	}
	if !m.Degraded() {
		t.Fatal("failed Reattach cleared the degraded flag")
	}
	if m.Err() == nil {
		t.Fatal("failed Reattach left no error")
	}
	inj.Clear()
	if err := m.Reattach(); err != nil {
		t.Fatalf("Reattach after clearing the fault: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}
	if got := reopenEpoch(t, dir, 16, 1); got != total {
		t.Fatalf("recovered epoch %d, want %d", got, total)
	}
}

func TestFaultBackgroundReattachLoop(t *testing.T) {
	// The background loop re-attaches on its own once the fault lifts. The
	// loop period is the only timing in play, and the test just polls a
	// bounded deadline — pass/fail does not depend on the exact schedule.
	const total = 4
	dir := t.TempDir()
	inj := faultfs.New(nil)
	f := newFakeEngine(16, 1)
	opt := Options{FS: inj, AppendRetries: -1, ReattachEvery: time.Millisecond, Sync: SyncAlways}
	m, err := Open(dir, f, opt)
	if err != nil {
		t.Fatal(err)
	}
	inj.FailSyncs(0, -1)
	commitSeq(f, total)
	if !m.Degraded() {
		t.Fatal("manager did not degrade")
	}
	inj.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for m.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("background loop never re-attached after the fault lifted")
		}
		time.Sleep(time.Millisecond)
	}
	if got := m.Stats().Reattaches; got < 1 {
		t.Fatalf("reattaches = %d, want >= 1", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reopenEpoch(t, dir, 16, 1); got != total {
		t.Fatalf("recovered epoch %d, want %d", got, total)
	}
}

func TestFaultOpenFailureSurfacesAtOpen(t *testing.T) {
	// A directory that cannot even create its first segment fails Open
	// loudly instead of producing a half-attached manager.
	dir := t.TempDir()
	inj := faultfs.New(nil)
	inj.FailOpens(0, -1)
	if _, err := Open(dir, newFakeEngine(8, 1), Options{FS: inj}); err == nil {
		t.Fatal("Open with failing segment creation did not error")
	}
	// Nothing half-created: a healthy reopen starts clean.
	inj.Clear()
	m, err := Open(dir, newFakeEngine(8, 1), Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := listSegments(faultfs.OS(), dir); err != nil {
		t.Fatal(err)
	}
}
