package wal

// Tail streaming: the primary-side surface of log-shipping replication.
//
// The WAL already observes the full applied-batch stream (onBatch runs
// inside each shard's one-updater section), and the replay-parity property
// means that stream *is* the state: a follower that starts from a
// consistent engine capture and applies every later batch in per-shard
// commit order is byte-identical to the primary. The tail hub below hands
// both halves to a subscriber atomically: Bootstrap captures every shard's
// durable state and registers the tail reader inside one quiesce section,
// so no batch can commit between the capture and the subscription — the
// reader's channel carries exactly the batches after the captured vector.
//
// Subscribers that cannot keep up are disconnected, not waited for: the
// publish path runs on the update hot path and must never block on a slow
// network peer. An overrun reader's channel is closed and Overrun reports
// it; the replication layer responds by re-bootstrapping.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kcore/internal/graph"
)

// DefaultTailBuffer is the per-subscriber channel depth used when
// Bootstrap is called with buffer <= 0.
const DefaultTailBuffer = 4096

// DefaultRetainBatches is the retained-batch ring depth used when
// SetRetain is called with the feeder's zero-value option: how many of
// the newest committed batches the primary keeps in memory so that a
// reconnecting follower can Resume from its applied commit vector instead
// of re-bootstrapping the full snapshot.
const DefaultRetainBatches = 1024

// TailReader is one subscription to the live committed-batch stream.
// Batches arrive on C in per-shard commit order (the same linearization
// the log records); the edge slices are deep copies owned by the reader.
type TailReader struct {
	hub     *tailHub
	ch      chan Batch
	overrun atomic.Bool
	closed  bool // guarded by hub.mu
}

// C returns the batch channel. It is closed when the reader falls too far
// behind (check Overrun) or the hub shuts down.
func (r *TailReader) C() <-chan Batch { return r.ch }

// Overrun reports whether the subscription was dropped because the reader
// could not keep up with the commit rate.
func (r *TailReader) Overrun() bool { return r.overrun.Load() }

// Close unsubscribes. Idempotent; safe concurrent with publishes.
func (r *TailReader) Close() {
	r.hub.mu.Lock()
	defer r.hub.mu.Unlock()
	r.closeLocked()
}

func (r *TailReader) closeLocked() {
	if r.closed {
		return
	}
	r.closed = true
	delete(r.hub.subs, r)
	close(r.ch)
}

// tailHub fans the committed-batch stream out to subscribers and,
// when retention is enabled, keeps the newest retain batches in a ring so
// a reconnecting follower can resume from its applied commit vector. The
// zero value is ready to use (retention off).
type tailHub struct {
	mu   sync.Mutex
	subs map[*TailReader]struct{}

	// Retained ring: the newest `retain` published batches, in publish
	// order (which is per-shard commit order). low is the per-shard
	// low-water vector — every epoch <= low[si] has been evicted from the
	// ring (or predates retention being enabled); cur is the per-shard
	// newest published epoch. A cursor vec is resumable exactly when
	// low[si] <= vec[si] <= cur[si] for every shard: the ring then holds
	// every batch after vec and nothing before it is needed.
	retain int
	ring   []Batch // circular, ring[(start+i)%len] for i < count
	start  int
	count  int
	low    []uint64
	cur    []uint64
}

// setRetain (re)configures the retained ring. cur must be the per-shard
// committed epochs at the call point, read where no batch can commit (the
// callers hold an engine quiesce): everything up to cur counts as already
// evicted, so only batches published after this call are resumable.
// n <= 0 disables retention.
func (h *tailHub) setRetain(n int, cur []uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.start, h.count = 0, 0
	if n <= 0 {
		h.retain, h.ring, h.low, h.cur = 0, nil, nil, nil
		return
	}
	h.retain = n
	h.ring = make([]Batch, n)
	h.low = append([]uint64(nil), cur...)
	h.cur = append([]uint64(nil), cur...)
}

// retainLocked pushes one already-deep-copied batch into the ring,
// evicting the oldest entry (advancing its shard's low-water mark) when
// full. Caller holds h.mu.
func (h *tailHub) retainLocked(cp Batch) {
	if h.count == h.retain {
		old := h.ring[h.start]
		h.low[old.Shard] = old.Epoch
		h.ring[h.start] = Batch{}
		h.start = (h.start + 1) % h.retain
		h.count--
	}
	h.ring[(h.start+h.count)%h.retain] = cp
	h.count++
	h.cur[cp.Shard] = cp.Epoch
}

// replayAfter returns the retained batches after the commit vector vec, in
// publish (per-shard commit) order, plus a copy of the current vector. ok
// is false when vec is not covered by retention — some shard's cursor
// predates the low-water mark (evicted), runs ahead of the primary, or
// retention is off — in which case the caller falls back to bootstrap.
// The returned batches alias ring entries; their contents are immutable
// (publish deep-copied them once) so sharing is safe even as the ring
// later evicts them.
func (h *tailHub) replayAfter(vec []uint64) (replay []Batch, cur []uint64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.retain == 0 || len(vec) != len(h.cur) {
		return nil, nil, false
	}
	for si := range vec {
		if vec[si] < h.low[si] || vec[si] > h.cur[si] {
			return nil, nil, false
		}
	}
	for i := 0; i < h.count; i++ {
		b := h.ring[(h.start+i)%h.retain]
		if b.Epoch > vec[b.Shard] {
			replay = append(replay, b)
		}
	}
	return replay, append([]uint64(nil), h.cur...), true
}

// subscribe registers a new reader. Callers that need the stream to start
// at a known state must call it where no batch can commit (see Bootstrap).
func (h *tailHub) subscribe(buffer int) *TailReader {
	if buffer <= 0 {
		buffer = DefaultTailBuffer
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.subs == nil {
		h.subs = make(map[*TailReader]struct{})
	}
	r := &TailReader{hub: h, ch: make(chan Batch, buffer)}
	h.subs[r] = struct{}{}
	return r
}

// publish delivers one committed batch to every subscriber and the
// retained ring. It runs inside the committing shard's one-updater
// section, so per-shard batches are published in commit order; shards
// publish concurrently, which the hub lock serializes. The batch's edge
// slices alias the caller's buffers and are deep-copied once, shared
// read-only by the ring and all subscribers. A subscriber whose channel is
// full is dropped (overrun) rather than blocked on.
func (h *tailHub) publish(b Batch) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) == 0 && h.retain == 0 {
		return
	}
	cp := b
	if len(b.Ins) > 0 {
		cp.Ins = append([]graph.Edge(nil), b.Ins...)
	}
	if len(b.Del) > 0 {
		cp.Del = append([]graph.Edge(nil), b.Del...)
	}
	if h.retain > 0 {
		h.retainLocked(cp)
	}
	for r := range h.subs {
		select {
		case r.ch <- cp:
		default:
			r.overrun.Store(true)
			r.closeLocked()
		}
	}
}

// closeAll drops every subscriber (hub shutdown).
func (h *tailHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for r := range h.subs {
		r.closeLocked()
	}
}

// Source is the primary-side replication surface: anything that can hand
// out a consistent engine capture plus the batch stream from exactly that
// point. The Manager implements it (WAL-backed primaries); TailSource
// implements it for primaries running without durability.
type Source interface {
	NumVertices() int
	NumShards() int
	// Bootstrap captures every shard's durable state and subscribes to the
	// batch stream atomically: the returned reader's channel carries
	// exactly the batches committed after the captured per-shard epochs.
	// buffer <= 0 uses DefaultTailBuffer.
	Bootstrap(buffer int) ([]ShardState, *TailReader, error)
	// SetRetain sizes the retained-batch ring behind Resume: the source
	// keeps the newest n committed batches in memory. Only batches
	// committed after the call are resumable. n <= 0 disables retention
	// (every Resume reports stale).
	SetRetain(n int)
	// Resume serves a reconnecting follower from its applied per-shard
	// commit vector: when every shard's cursor is still covered by the
	// retained ring it returns the retained batches after vec (in
	// per-shard commit order), the primary's current vector, and a tail
	// subscription capturing exactly the stream after those batches —
	// replay then tail carries every batch after vec exactly once. ok is
	// false when the cursor predates retention (or runs ahead of the
	// primary); the caller falls back to Bootstrap.
	Resume(vec []uint64, buffer int) (replay []Batch, cur []uint64, tr *TailReader, ok bool, err error)
}

// NumVertices returns the attached engine's vertex count.
func (m *Manager) NumVertices() int { return m.eng.NumVertices() }

// NumShards returns the attached engine's shard count.
func (m *Manager) NumShards() int { return m.eng.NumShards() }

// Bootstrap implements Source: it quiesces the engine, captures every
// shard's durable state and registers a tail subscription inside the same
// quiesce section. Works while degraded (replication does not depend on
// the disk) but not after Close.
func (m *Manager) Bootstrap(buffer int) ([]ShardState, *TailReader, error) {
	if m.closed.Load() {
		return nil, nil, fmt.Errorf("wal: bootstrap after close")
	}
	states := make([]ShardState, m.eng.NumShards())
	var tr *TailReader
	m.eng.Quiesce(func() {
		for si := range states {
			states[si] = m.eng.ShardDurable(si)
		}
		tr = m.hub.subscribe(buffer)
	})
	return states, tr, nil
}

// SetRetain implements Source: it sizes the retained-batch ring, seeding
// the low-water vector from the engine's committed epochs inside a quiesce
// so retention coverage starts exactly at the current commit point.
func (m *Manager) SetRetain(n int) {
	m.eng.Quiesce(func() { m.hub.setRetain(n, shardEpochs(m.eng)) })
}

// Resume implements Source: under one engine quiesce it checks the cursor
// against the retained ring and, when covered, collects the replay and
// registers the tail subscription — the same atomicity Bootstrap gets, so
// replay + tail carries every batch after vec exactly once.
func (m *Manager) Resume(vec []uint64, buffer int) ([]Batch, []uint64, *TailReader, bool, error) {
	if m.closed.Load() {
		return nil, nil, nil, false, fmt.Errorf("wal: resume after close")
	}
	if len(vec) != m.eng.NumShards() {
		return nil, nil, nil, false, fmt.Errorf("wal: resume vector has %d shards, engine has %d",
			len(vec), m.eng.NumShards())
	}
	var (
		replay []Batch
		cur    []uint64
		tr     *TailReader
		ok     bool
	)
	m.eng.Quiesce(func() {
		if replay, cur, ok = m.hub.replayAfter(vec); ok {
			tr = m.hub.subscribe(buffer)
		}
	})
	return replay, cur, tr, ok, nil
}

// shardEpochs reads every shard's committed epoch. Callers hold an engine
// quiesce, so the vector is a consistent commit point.
func shardEpochs(eng Engine) []uint64 {
	vec := make([]uint64, eng.NumShards())
	for si := range vec {
		vec[si] = eng.ShardEpoch(si)
	}
	return vec
}

// TailSource adapts a bare engine (no WAL attached) to Source by
// installing its own batch hook. An engine has a single batch-log slot, so
// a TailSource must not be combined with an open Manager on the same
// engine — the Manager is already a Source in that case.
type TailSource struct {
	eng    Engine
	hub    tailHub
	closed atomic.Bool
}

// NewTailSource installs the tail hook on eng (under a quiesce, so it is
// safe on a live engine) and returns the source.
func NewTailSource(eng Engine) *TailSource {
	t := &TailSource{eng: eng}
	eng.Quiesce(func() { eng.SetBatchLog(t.hub.publish) })
	return t
}

// NumVertices returns the engine's vertex count.
func (t *TailSource) NumVertices() int { return t.eng.NumVertices() }

// NumShards returns the engine's shard count.
func (t *TailSource) NumShards() int { return t.eng.NumShards() }

// Bootstrap implements Source (see Manager.Bootstrap).
func (t *TailSource) Bootstrap(buffer int) ([]ShardState, *TailReader, error) {
	if t.closed.Load() {
		return nil, nil, fmt.Errorf("wal: bootstrap after close")
	}
	states := make([]ShardState, t.eng.NumShards())
	var tr *TailReader
	t.eng.Quiesce(func() {
		for si := range states {
			states[si] = t.eng.ShardDurable(si)
		}
		tr = t.hub.subscribe(buffer)
	})
	return states, tr, nil
}

// SetRetain implements Source (see Manager.SetRetain).
func (t *TailSource) SetRetain(n int) {
	t.eng.Quiesce(func() { t.hub.setRetain(n, shardEpochs(t.eng)) })
}

// Resume implements Source (see Manager.Resume).
func (t *TailSource) Resume(vec []uint64, buffer int) ([]Batch, []uint64, *TailReader, bool, error) {
	if t.closed.Load() {
		return nil, nil, nil, false, fmt.Errorf("wal: resume after close")
	}
	if len(vec) != t.eng.NumShards() {
		return nil, nil, nil, false, fmt.Errorf("wal: resume vector has %d shards, engine has %d",
			len(vec), t.eng.NumShards())
	}
	var (
		replay []Batch
		cur    []uint64
		tr     *TailReader
		ok     bool
	)
	t.eng.Quiesce(func() {
		if replay, cur, ok = t.hub.replayAfter(vec); ok {
			tr = t.hub.subscribe(buffer)
		}
	})
	return replay, cur, tr, ok, nil
}

// Close uninstalls the batch hook and drops every subscriber.
func (t *TailSource) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	t.eng.Quiesce(func() { t.eng.SetBatchLog(nil) })
	t.hub.closeAll()
}

// EncodeRecord frames one batch exactly as the on-disk log does —
// [len u32][crc32 u32][payload] — reusing buf's backing array when it is
// large enough. The same framing is the replication wire format, so a
// shipped record round-trips through DecodeRecord byte-identically.
func EncodeRecord(buf []byte, b Batch) []byte { return encodeRecord(buf, b) }

// DecodeRecord decodes the framed record at the start of data, returning
// the batch and the total framed length consumed. ok is false for a torn,
// truncated or corrupt frame.
func DecodeRecord(data []byte, shards int) (Batch, int, bool) { return nextRecord(data, shards) }

// MarshalShardState appends the snapshot encoding of one shard's durable
// state (the per-shard block of the snapshot format) to dst. n is the
// engine's vertex count.
func MarshalShardState(dst []byte, n int, st ShardState) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, shardStateSize(n, st))...)
	putShardState(dst, off, n, st)
	return dst
}

// UnmarshalShardState decodes one shard-state block from the start of
// data, returning the state and the bytes consumed.
func UnmarshalShardState(data []byte, n int) (ShardState, int, error) {
	return getShardState(data, 0, len(data), n)
}
