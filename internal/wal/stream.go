package wal

// Tail streaming: the primary-side surface of log-shipping replication.
//
// The WAL already observes the full applied-batch stream (onBatch runs
// inside each shard's one-updater section), and the replay-parity property
// means that stream *is* the state: a follower that starts from a
// consistent engine capture and applies every later batch in per-shard
// commit order is byte-identical to the primary. The tail hub below hands
// both halves to a subscriber atomically: Bootstrap captures every shard's
// durable state and registers the tail reader inside one quiesce section,
// so no batch can commit between the capture and the subscription — the
// reader's channel carries exactly the batches after the captured vector.
//
// Subscribers that cannot keep up are disconnected, not waited for: the
// publish path runs on the update hot path and must never block on a slow
// network peer. An overrun reader's channel is closed and Overrun reports
// it; the replication layer responds by re-bootstrapping.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kcore/internal/graph"
)

// DefaultTailBuffer is the per-subscriber channel depth used when
// Bootstrap is called with buffer <= 0.
const DefaultTailBuffer = 4096

// TailReader is one subscription to the live committed-batch stream.
// Batches arrive on C in per-shard commit order (the same linearization
// the log records); the edge slices are deep copies owned by the reader.
type TailReader struct {
	hub     *tailHub
	ch      chan Batch
	overrun atomic.Bool
	closed  bool // guarded by hub.mu
}

// C returns the batch channel. It is closed when the reader falls too far
// behind (check Overrun) or the hub shuts down.
func (r *TailReader) C() <-chan Batch { return r.ch }

// Overrun reports whether the subscription was dropped because the reader
// could not keep up with the commit rate.
func (r *TailReader) Overrun() bool { return r.overrun.Load() }

// Close unsubscribes. Idempotent; safe concurrent with publishes.
func (r *TailReader) Close() {
	r.hub.mu.Lock()
	defer r.hub.mu.Unlock()
	r.closeLocked()
}

func (r *TailReader) closeLocked() {
	if r.closed {
		return
	}
	r.closed = true
	delete(r.hub.subs, r)
	close(r.ch)
}

// tailHub fans the committed-batch stream out to subscribers. The zero
// value is ready to use.
type tailHub struct {
	mu   sync.Mutex
	subs map[*TailReader]struct{}
}

// subscribe registers a new reader. Callers that need the stream to start
// at a known state must call it where no batch can commit (see Bootstrap).
func (h *tailHub) subscribe(buffer int) *TailReader {
	if buffer <= 0 {
		buffer = DefaultTailBuffer
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.subs == nil {
		h.subs = make(map[*TailReader]struct{})
	}
	r := &TailReader{hub: h, ch: make(chan Batch, buffer)}
	h.subs[r] = struct{}{}
	return r
}

// publish delivers one committed batch to every subscriber. It runs inside
// the committing shard's one-updater section, so per-shard batches are
// published in commit order; shards publish concurrently, which the hub
// lock serializes. The batch's edge slices alias the caller's buffers and
// are deep-copied once, shared read-only by all subscribers. A subscriber
// whose channel is full is dropped (overrun) rather than blocked on.
func (h *tailHub) publish(b Batch) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) == 0 {
		return
	}
	cp := b
	if len(b.Ins) > 0 {
		cp.Ins = append([]graph.Edge(nil), b.Ins...)
	}
	if len(b.Del) > 0 {
		cp.Del = append([]graph.Edge(nil), b.Del...)
	}
	for r := range h.subs {
		select {
		case r.ch <- cp:
		default:
			r.overrun.Store(true)
			r.closeLocked()
		}
	}
}

// closeAll drops every subscriber (hub shutdown).
func (h *tailHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for r := range h.subs {
		r.closeLocked()
	}
}

// Source is the primary-side replication surface: anything that can hand
// out a consistent engine capture plus the batch stream from exactly that
// point. The Manager implements it (WAL-backed primaries); TailSource
// implements it for primaries running without durability.
type Source interface {
	NumVertices() int
	NumShards() int
	// Bootstrap captures every shard's durable state and subscribes to the
	// batch stream atomically: the returned reader's channel carries
	// exactly the batches committed after the captured per-shard epochs.
	// buffer <= 0 uses DefaultTailBuffer.
	Bootstrap(buffer int) ([]ShardState, *TailReader, error)
}

// NumVertices returns the attached engine's vertex count.
func (m *Manager) NumVertices() int { return m.eng.NumVertices() }

// NumShards returns the attached engine's shard count.
func (m *Manager) NumShards() int { return m.eng.NumShards() }

// Bootstrap implements Source: it quiesces the engine, captures every
// shard's durable state and registers a tail subscription inside the same
// quiesce section. Works while degraded (replication does not depend on
// the disk) but not after Close.
func (m *Manager) Bootstrap(buffer int) ([]ShardState, *TailReader, error) {
	if m.closed.Load() {
		return nil, nil, fmt.Errorf("wal: bootstrap after close")
	}
	states := make([]ShardState, m.eng.NumShards())
	var tr *TailReader
	m.eng.Quiesce(func() {
		for si := range states {
			states[si] = m.eng.ShardDurable(si)
		}
		tr = m.hub.subscribe(buffer)
	})
	return states, tr, nil
}

// TailSource adapts a bare engine (no WAL attached) to Source by
// installing its own batch hook. An engine has a single batch-log slot, so
// a TailSource must not be combined with an open Manager on the same
// engine — the Manager is already a Source in that case.
type TailSource struct {
	eng    Engine
	hub    tailHub
	closed atomic.Bool
}

// NewTailSource installs the tail hook on eng (under a quiesce, so it is
// safe on a live engine) and returns the source.
func NewTailSource(eng Engine) *TailSource {
	t := &TailSource{eng: eng}
	eng.Quiesce(func() { eng.SetBatchLog(t.hub.publish) })
	return t
}

// NumVertices returns the engine's vertex count.
func (t *TailSource) NumVertices() int { return t.eng.NumVertices() }

// NumShards returns the engine's shard count.
func (t *TailSource) NumShards() int { return t.eng.NumShards() }

// Bootstrap implements Source (see Manager.Bootstrap).
func (t *TailSource) Bootstrap(buffer int) ([]ShardState, *TailReader, error) {
	if t.closed.Load() {
		return nil, nil, fmt.Errorf("wal: bootstrap after close")
	}
	states := make([]ShardState, t.eng.NumShards())
	var tr *TailReader
	t.eng.Quiesce(func() {
		for si := range states {
			states[si] = t.eng.ShardDurable(si)
		}
		tr = t.hub.subscribe(buffer)
	})
	return states, tr, nil
}

// Close uninstalls the batch hook and drops every subscriber.
func (t *TailSource) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	t.eng.Quiesce(func() { t.eng.SetBatchLog(nil) })
	t.hub.closeAll()
}

// EncodeRecord frames one batch exactly as the on-disk log does —
// [len u32][crc32 u32][payload] — reusing buf's backing array when it is
// large enough. The same framing is the replication wire format, so a
// shipped record round-trips through DecodeRecord byte-identically.
func EncodeRecord(buf []byte, b Batch) []byte { return encodeRecord(buf, b) }

// DecodeRecord decodes the framed record at the start of data, returning
// the batch and the total framed length consumed. ok is false for a torn,
// truncated or corrupt frame.
func DecodeRecord(data []byte, shards int) (Batch, int, bool) { return nextRecord(data, shards) }

// MarshalShardState appends the snapshot encoding of one shard's durable
// state (the per-shard block of the snapshot format) to dst. n is the
// engine's vertex count.
func MarshalShardState(dst []byte, n int, st ShardState) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, shardStateSize(n, st))...)
	putShardState(dst, off, n, st)
	return dst
}

// UnmarshalShardState decodes one shard-state block from the start of
// data, returning the state and the bytes consumed.
func UnmarshalShardState(data []byte, n int) (ShardState, int, error) {
	return getShardState(data, 0, len(data), n)
}
