package wal

import (
	"reflect"
	"testing"

	"kcore/internal/graph"
)

func TestTailSourceBootstrapStreamsOnlyLaterBatches(t *testing.T) {
	eng := newFakeEngine(8, 2)
	src := NewTailSource(eng)
	defer src.Close()

	pre := testBatches()[:2]
	for _, b := range pre {
		eng.commit(b)
	}
	states, tr, err := src.Bootstrap(16)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if len(states) != 2 {
		t.Fatalf("bootstrap returned %d states, want 2", len(states))
	}
	if states[0].Epoch != 1 || states[1].Epoch != 1 {
		t.Fatalf("bootstrap epochs = %d,%d, want 1,1", states[0].Epoch, states[1].Epoch)
	}

	post := testBatches()[2:]
	for _, b := range post {
		eng.commit(b)
	}
	for i, want := range post {
		got := <-tr.C()
		if got.Shard != want.Shard || got.Epoch != want.Epoch {
			t.Fatalf("tail batch %d = shard %d epoch %d, want shard %d epoch %d",
				i, got.Shard, got.Epoch, want.Shard, want.Epoch)
		}
		if !reflect.DeepEqual(append([]graph.Edge{}, got.Ins...), append([]graph.Edge{}, want.Ins...)) {
			t.Fatalf("tail batch %d ins = %v, want %v", i, got.Ins, want.Ins)
		}
	}
	select {
	case b := <-tr.C():
		t.Fatalf("unexpected extra tail batch %+v", b)
	default:
	}
}

func TestTailPublishDeepCopies(t *testing.T) {
	eng := newFakeEngine(8, 1)
	src := NewTailSource(eng)
	defer src.Close()
	_, tr, err := src.Bootstrap(4)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	ins := []graph.Edge{{U: 1, V: 2}}
	eng.commit(Batch{Shard: 0, Epoch: 1, Ins: ins, HasIns: true})
	ins[0] = graph.Edge{U: 7, V: 7} // the hot path reuses its buffers
	got := <-tr.C()
	if got.Ins[0] != (graph.Edge{U: 1, V: 2}) {
		t.Fatalf("tail batch aliases the commit buffer: %v", got.Ins[0])
	}
}

func TestTailOverrunDisconnects(t *testing.T) {
	eng := newFakeEngine(8, 1)
	src := NewTailSource(eng)
	defer src.Close()
	_, tr, err := src.Bootstrap(2)
	if err != nil {
		t.Fatal(err)
	}
	for ep := uint64(1); ep <= 3; ep++ {
		eng.commit(Batch{Shard: 0, Epoch: ep, HasIns: true})
	}
	// Buffer of 2: the third publish overruns and closes the channel.
	n := 0
	for range tr.C() {
		n++
	}
	if n != 2 {
		t.Fatalf("read %d batches before overrun close, want 2", n)
	}
	if !tr.Overrun() {
		t.Fatal("Overrun() = false after a dropped subscription")
	}
	// Later commits must not panic on the closed subscription.
	eng.commit(Batch{Shard: 0, Epoch: 4, HasIns: true})
}

func TestResumeReplaysExactlyAfterCursor(t *testing.T) {
	eng := newFakeEngine(8, 2)
	src := NewTailSource(eng)
	defer src.Close()
	src.SetRetain(16)

	all := testBatches()
	for _, b := range all {
		eng.commit(b)
	}
	// Cursor after the first two batches (shard epochs 1,1): the replay
	// must be exactly the later three, in publish order.
	replay, cur, tr, ok, err := src.Resume([]uint64{1, 1}, 4)
	if err != nil || !ok {
		t.Fatalf("Resume(1,1) = ok=%v err=%v, want covered", ok, err)
	}
	defer tr.Close()
	if want := []uint64{3, 2}; !reflect.DeepEqual(cur, want) {
		t.Fatalf("current vector %v, want %v", cur, want)
	}
	if len(replay) != 3 {
		t.Fatalf("replay of %d batches, want 3", len(replay))
	}
	for i, want := range all[2:] {
		if replay[i].Shard != want.Shard || replay[i].Epoch != want.Epoch {
			t.Fatalf("replay[%d] = shard %d epoch %d, want shard %d epoch %d",
				i, replay[i].Shard, replay[i].Epoch, want.Shard, want.Epoch)
		}
	}
	// The tail starts exactly after the capture: a batch committed now is
	// delivered, nothing is doubled.
	eng.commit(Batch{Shard: 1, Epoch: 3, HasIns: true})
	got := <-tr.C()
	if got.Shard != 1 || got.Epoch != 3 {
		t.Fatalf("tail batch = shard %d epoch %d, want shard 1 epoch 3", got.Shard, got.Epoch)
	}
	select {
	case b := <-tr.C():
		t.Fatalf("unexpected extra tail batch %+v", b)
	default:
	}

	// A caught-up cursor replays nothing.
	replay, _, tr2, ok, err := src.Resume([]uint64{3, 3}, 4)
	if err != nil || !ok || len(replay) != 0 {
		t.Fatalf("caught-up Resume = replay %d ok=%v err=%v, want empty+covered", len(replay), ok, err)
	}
	tr2.Close()

	// A cursor ahead of the primary (replaced primary) is not resumable.
	if _, _, _, ok, _ := src.Resume([]uint64{9, 9}, 4); ok {
		t.Fatal("Resume accepted a cursor ahead of the primary")
	}
	// Shape mismatch is an error, not a stale.
	if _, _, _, _, err := src.Resume([]uint64{1}, 4); err == nil {
		t.Fatal("Resume accepted a wrong-length vector")
	}
}

func TestResumeStaleAfterEviction(t *testing.T) {
	eng := newFakeEngine(8, 1)
	src := NewTailSource(eng)
	defer src.Close()
	src.SetRetain(2)

	for ep := uint64(1); ep <= 5; ep++ {
		eng.commit(Batch{Shard: 0, Epoch: ep, HasIns: true})
	}
	// Ring of 2 holds epochs {4,5}; low-water is 3.
	if replay, _, tr, ok, err := src.Resume([]uint64{3}, 4); err != nil || !ok || len(replay) != 2 {
		t.Fatalf("Resume(3) = replay %d ok=%v err=%v, want 2 batches covered", len(replay), ok, err)
	} else {
		tr.Close()
	}
	// Epoch 2 was evicted: the gap is unservable.
	if _, _, _, ok, err := src.Resume([]uint64{2}, 4); ok || err != nil {
		t.Fatalf("Resume(2) = ok=%v err=%v, want stale", ok, err)
	}
	// Batches committed before SetRetain are never resumable: reconfigure
	// and check the old coverage is gone.
	src.SetRetain(8)
	if _, _, _, ok, _ := src.Resume([]uint64{3}, 4); ok {
		t.Fatal("Resume covered batches from before SetRetain")
	}
	eng.commit(Batch{Shard: 0, Epoch: 6, HasIns: true})
	if replay, _, tr, ok, err := src.Resume([]uint64{5}, 4); err != nil || !ok || len(replay) != 1 {
		t.Fatalf("post-reconfigure Resume(5) = replay %d ok=%v err=%v, want 1 batch", len(replay), ok, err)
	} else {
		tr.Close()
	}
}

func TestResumeDisabledRetention(t *testing.T) {
	eng := newFakeEngine(8, 1)
	src := NewTailSource(eng)
	defer src.Close()
	// No SetRetain: every cursor is stale.
	eng.commit(Batch{Shard: 0, Epoch: 1, HasIns: true})
	if _, _, _, ok, err := src.Resume([]uint64{1}, 4); ok || err != nil {
		t.Fatalf("Resume with retention off = ok=%v err=%v, want stale", ok, err)
	}
}

func TestManagerBootstrapTeesWhileLogging(t *testing.T) {
	dir := t.TempDir()
	eng := newFakeEngine(8, 2)
	m, err := Open(dir, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng.commit(testBatches()[0])
	states, tr, err := m.Bootstrap(16)
	if err != nil {
		t.Fatal(err)
	}
	if states[0].Epoch != 1 {
		t.Fatalf("bootstrap shard 0 epoch = %d, want 1", states[0].Epoch)
	}
	eng.commit(testBatches()[3]) // shard 0, epoch 3 in the fixture set
	got := <-tr.C()
	if got.Shard != 0 || got.Epoch != 3 {
		t.Fatalf("tail batch = shard %d epoch %d, want shard 0 epoch 3", got.Shard, got.Epoch)
	}
	if st := m.Stats(); st.LoggedBatches != 2 {
		t.Fatalf("logged %d batches, want 2 (tee must not replace the log)", st.LoggedBatches)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-tr.C(); ok {
		t.Fatal("tail channel still open after manager close")
	}
	if _, _, err := m.Bootstrap(1); err == nil {
		t.Fatal("Bootstrap succeeded after Close")
	}
}

func TestShardStateMarshalRoundTrip(t *testing.T) {
	eng := newFakeEngine(8, 2)
	eng.epochs[1] = 42
	st := eng.ShardDurable(1)
	st.Levels[3] = 7
	buf := MarshalShardState(nil, 8, st)
	got, used, err := UnmarshalShardState(buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Fatalf("consumed %d of %d bytes", used, len(buf))
	}
	if got.Epoch != st.Epoch || got.Batches != st.Batches || got.Inserted != st.Inserted {
		t.Fatalf("counters differ: %+v vs %+v", got, st)
	}
	if !reflect.DeepEqual(got.Levels, st.Levels) {
		t.Fatal("levels differ after round trip")
	}
	if !reflect.DeepEqual(got.Graph.Targets, st.Graph.Targets) ||
		!reflect.DeepEqual(got.Graph.Offsets, st.Graph.Offsets) {
		t.Fatal("graph differs after round trip")
	}
	if _, _, err := UnmarshalShardState(buf[:len(buf)-2], 8); err == nil {
		t.Fatal("UnmarshalShardState accepted a truncated block")
	}
}
