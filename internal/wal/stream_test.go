package wal

import (
	"reflect"
	"testing"

	"kcore/internal/graph"
)

func TestTailSourceBootstrapStreamsOnlyLaterBatches(t *testing.T) {
	eng := newFakeEngine(8, 2)
	src := NewTailSource(eng)
	defer src.Close()

	pre := testBatches()[:2]
	for _, b := range pre {
		eng.commit(b)
	}
	states, tr, err := src.Bootstrap(16)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if len(states) != 2 {
		t.Fatalf("bootstrap returned %d states, want 2", len(states))
	}
	if states[0].Epoch != 1 || states[1].Epoch != 1 {
		t.Fatalf("bootstrap epochs = %d,%d, want 1,1", states[0].Epoch, states[1].Epoch)
	}

	post := testBatches()[2:]
	for _, b := range post {
		eng.commit(b)
	}
	for i, want := range post {
		got := <-tr.C()
		if got.Shard != want.Shard || got.Epoch != want.Epoch {
			t.Fatalf("tail batch %d = shard %d epoch %d, want shard %d epoch %d",
				i, got.Shard, got.Epoch, want.Shard, want.Epoch)
		}
		if !reflect.DeepEqual(append([]graph.Edge{}, got.Ins...), append([]graph.Edge{}, want.Ins...)) {
			t.Fatalf("tail batch %d ins = %v, want %v", i, got.Ins, want.Ins)
		}
	}
	select {
	case b := <-tr.C():
		t.Fatalf("unexpected extra tail batch %+v", b)
	default:
	}
}

func TestTailPublishDeepCopies(t *testing.T) {
	eng := newFakeEngine(8, 1)
	src := NewTailSource(eng)
	defer src.Close()
	_, tr, err := src.Bootstrap(4)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	ins := []graph.Edge{{U: 1, V: 2}}
	eng.commit(Batch{Shard: 0, Epoch: 1, Ins: ins, HasIns: true})
	ins[0] = graph.Edge{U: 7, V: 7} // the hot path reuses its buffers
	got := <-tr.C()
	if got.Ins[0] != (graph.Edge{U: 1, V: 2}) {
		t.Fatalf("tail batch aliases the commit buffer: %v", got.Ins[0])
	}
}

func TestTailOverrunDisconnects(t *testing.T) {
	eng := newFakeEngine(8, 1)
	src := NewTailSource(eng)
	defer src.Close()
	_, tr, err := src.Bootstrap(2)
	if err != nil {
		t.Fatal(err)
	}
	for ep := uint64(1); ep <= 3; ep++ {
		eng.commit(Batch{Shard: 0, Epoch: ep, HasIns: true})
	}
	// Buffer of 2: the third publish overruns and closes the channel.
	n := 0
	for range tr.C() {
		n++
	}
	if n != 2 {
		t.Fatalf("read %d batches before overrun close, want 2", n)
	}
	if !tr.Overrun() {
		t.Fatal("Overrun() = false after a dropped subscription")
	}
	// Later commits must not panic on the closed subscription.
	eng.commit(Batch{Shard: 0, Epoch: 4, HasIns: true})
}

func TestManagerBootstrapTeesWhileLogging(t *testing.T) {
	dir := t.TempDir()
	eng := newFakeEngine(8, 2)
	m, err := Open(dir, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng.commit(testBatches()[0])
	states, tr, err := m.Bootstrap(16)
	if err != nil {
		t.Fatal(err)
	}
	if states[0].Epoch != 1 {
		t.Fatalf("bootstrap shard 0 epoch = %d, want 1", states[0].Epoch)
	}
	eng.commit(testBatches()[3]) // shard 0, epoch 3 in the fixture set
	got := <-tr.C()
	if got.Shard != 0 || got.Epoch != 3 {
		t.Fatalf("tail batch = shard %d epoch %d, want shard 0 epoch 3", got.Shard, got.Epoch)
	}
	if st := m.Stats(); st.LoggedBatches != 2 {
		t.Fatalf("logged %d batches, want 2 (tee must not replace the log)", st.LoggedBatches)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-tr.C(); ok {
		t.Fatal("tail channel still open after manager close")
	}
	if _, _, err := m.Bootstrap(1); err == nil {
		t.Fatal("Bootstrap succeeded after Close")
	}
}

func TestShardStateMarshalRoundTrip(t *testing.T) {
	eng := newFakeEngine(8, 2)
	eng.epochs[1] = 42
	st := eng.ShardDurable(1)
	st.Levels[3] = 7
	buf := MarshalShardState(nil, 8, st)
	got, used, err := UnmarshalShardState(buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Fatalf("consumed %d of %d bytes", used, len(buf))
	}
	if got.Epoch != st.Epoch || got.Batches != st.Batches || got.Inserted != st.Inserted {
		t.Fatalf("counters differ: %+v vs %+v", got, st)
	}
	if !reflect.DeepEqual(got.Levels, st.Levels) {
		t.Fatal("levels differ after round trip")
	}
	if !reflect.DeepEqual(got.Graph.Targets, st.Graph.Targets) ||
		!reflect.DeepEqual(got.Graph.Offsets, st.Graph.Offsets) {
		t.Fatal("graph differs after round trip")
	}
	if _, _, err := UnmarshalShardState(buf[:len(buf)-2], 8); err == nil {
		t.Fatal("UnmarshalShardState accepted a truncated block")
	}
}
