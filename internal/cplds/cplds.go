// Package cplds implements the Concurrent Parallel Level Data Structure
// (CPLDS) — the contribution of Liu, Shun and Zablotchi (PPoPP 2024):
// a hybrid concurrent–parallel dynamic k-core data structure in which
// asynchronous, lock-free coreness reads proceed concurrently with parallel
// batches of edge updates while remaining linearizable.
//
// # Design (paper §4–5)
//
// Each vertex has an operation-descriptor slot. When a vertex first moves
// during a batch it becomes marked: a descriptor recording its pre-batch
// (old) level is installed, and the vertex is merged into the dependency
// DAGs of (a) its triggers — marked neighbours that may have caused the
// move — and (b) its marked batch neighbours — endpoints of batch edges
// incident to it (Lemma 6.3: no updated edge may cross DAGs). DAGs are
// merged with a lock-free union-find over descriptor parent pointers, with
// deterministic link-by-minimum-root and path compression.
//
// A read of v double-collects the global batch number and v's live level
// around an inspection of v's DAG (check_DAG): if the DAG root is still
// marked, the read returns the coreness estimate from v's old level;
// otherwise it returns the estimate from v's (stable) live level. Reads are
// lock-free: every retry implies that an update made progress.
//
// At the end of each batch all descriptors are removed — roots first, then
// non-roots — preserving the invariant that a DAG's root is unmarked before
// any of its non-roots, which is what allows check_DAG to stop early at any
// unmarked descriptor.
package cplds

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"kcore/internal/feed"
	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/mvcc"
	"kcore/internal/parallel"
	"kcore/internal/plds"
)

// Root is the parent value of a DAG root descriptor (I_AM_ROOT in the
// paper's pseudocode).
const Root int32 = -1

// Descriptor is an operation descriptor for a vertex that is changing
// levels in the current batch.
//
// Descriptors are pooled: every vertex owns one Descriptor for its whole
// lifetime and the same object is re-installed each time the vertex moves
// in a batch (a degenerate free list with guaranteed-free reuse, since a
// vertex is marked at most once per batch). Reuse is what the stamp in the
// parent word exists for: a reader that loaded the descriptor just before
// it was unmarked may still attempt a path-compression write after the
// object has been recycled into a later batch's DAG. The write is a CAS
// whose expected value carries the stamp of the batch the reader started
// from, so it fails harmlessly against a recycled descriptor. Result-side
// safety needs no stamp because ReadLevel loads the old level inside its
// batch-number double collect: a recycle can only rewrite `old` after the
// recycling batch bumped the batch number, which forces that read to
// retry.
type Descriptor struct {
	// word packs (stamp << 32) | uint32(parent): stamp is the low 32 bits
	// of the batch number the descriptor was installed in, parent is the
	// vertex id of this node's parent in the dependency DAG, or Root
	// (encoded as 0xFFFFFFFF). It changes under CAS (union, reader-side
	// path compression) and atomic store (install, updater-side path
	// compression).
	word atomic.Uint64
	// old is the vertex's level before the current batch of updates,
	// atomic because a stale reader may load it while the updater of a
	// later batch re-installs the descriptor.
	old atomic.Int32
}

// packWord builds a parent word from a batch stamp and a parent id.
func packWord(stamp uint32, parent int32) uint64 {
	return uint64(stamp)<<32 | uint64(uint32(parent))
}

// parentOf extracts the parent id (or Root) from a parent word.
func parentOf(w uint64) int32 { return int32(uint32(w)) }

// OldLevel returns the vertex's level before the batch that installed this
// descriptor.
func (d *Descriptor) OldLevel() int32 { return d.old.Load() }

// Status is the result of inspecting a vertex's dependency DAG.
type Status int

const (
	// Unmarked means the vertex (or its DAG root) is not being updated.
	Unmarked Status = iota
	// Marked means the vertex's DAG root still has an active descriptor.
	Marked
)

// CPLDS wraps the PLDS batch engine with the descriptor/DAG machinery and
// the concurrent read protocol.
//
// Concurrency contract: InsertBatch/DeleteBatch from one updater goroutine
// at a time (internally parallel); Read, ReadNonSync and ReadSync from any
// number of goroutines at any time.
type CPLDS struct {
	P *plds.PLDS
	S *lds.Structure

	desc     []atomic.Pointer[Descriptor]
	pool     []Descriptor // per-vertex descriptor pool (see Descriptor)
	batchNum atomic.Uint64

	// commitSeq is the commit sequence lock for epoch-pinned multi-vertex
	// reads. It is 2*epoch while the structure is outside an unmark phase
	// (epoch = committed batches) and odd while BatchEnd is unmarking
	// descriptors. The single-vertex read protocol never needs it; it exists
	// because the *visibility* of a batch's new levels to readers is not a
	// single instant — it spreads across the unmark passes — so a reader
	// collecting many vertices can only certify "all my values are from one
	// batch boundary" if no unmark phase started, ran, or ended during its
	// collection. An even, unchanged commitSeq across the collection
	// certifies exactly that (see ReadManyPinned).
	commitSeq atomic.Uint64

	// Batch-scoped state (owned by the updater between BatchStart/BatchEnd).
	kind  plds.Kind
	stamp uint32 // low 32 bits of the current batch number

	// batchDir is the flat batch-edge index: both directed copies of every
	// applied batch edge, sorted by (U, V). Endpoint lookups binary-search
	// it; the buffer is truncated and reused across batches instead of
	// rebuilding a map.
	batchDir []graph.Edge

	// marked is the lock-free marked-vertex arena: VertexMoving claims a
	// slot with an atomic cursor bump (a vertex is marked at most once per
	// batch, so n slots always suffice). This replaces a global
	// mutex-guarded append that serialized concurrent markers.
	marked    []uint32
	markedLen atomic.Int64

	// gate implements the SyncReads baseline: the updater write-locks it
	// for the duration of each batch, so ReadSync blocks until the batch
	// completes (exactly the paper's synchronous baseline).
	gate sync.RWMutex

	// store, when non-nil, is the multi-version store: BatchEnd appends
	// each batch's (vertex, pre-batch level) undo records — read straight
	// out of the marked arena and the descriptor pool, so the capture adds
	// no per-move work to the batch itself — and the *At read protocols
	// overlay the retained deltas to serve retired epochs exactly.
	store *mvcc.Store

	// onCommit, when non-nil, wraps the final commit publication of each
	// batch: it receives a closure that flips commitSeq even and must call
	// it exactly once. The sharded engine uses it to serialize commit
	// publication with its cross-shard vector log, so global epochs map to
	// well-defined per-shard commit vectors.
	onCommit func(publish func())

	// beforeUnmark, when non-nil, runs at the start of BatchEnd while all
	// descriptors are still in place. Test hook for inspecting the final
	// dependency DAGs of a batch.
	beforeUnmark func(kind plds.Kind, marked []uint32)

	// eventSink, when non-nil, receives this batch's coreness transitions
	// right after commit publication, while the gate still excludes the
	// next batch. eventActive gates the extraction: when it reports false
	// (no subscribers) BatchEnd skips the mover walk entirely, so an idle
	// feed costs one function call per batch. eventBuf is the reused
	// extraction arena — the slice passed to eventSink is only valid for
	// the duration of the call.
	eventSink   func(localEpoch uint64, events []feed.Event)
	eventActive func() bool
	eventBuf    []feed.Event

	// noPathCompression disables path compression in DAG traversals (reads
	// and unions). Ablation knob: compression is the paper's §5.2
	// optimization; disabling it lengthens root paths but must not affect
	// correctness.
	noPathCompression bool

	// readRetries counts how many times the read protocol had to restart
	// (batch number changed or live level moved). Diagnostic for the
	// lock-freedom argument and the ablation benchmarks.
	readRetries atomic.Uint64
}

// SetPathCompression toggles the path-compression optimization (enabled by
// default). Quiescent use only; intended for ablation benchmarks.
func (c *CPLDS) SetPathCompression(enabled bool) { c.noPathCompression = !enabled }

// ReadRetries returns the cumulative number of read-protocol restarts.
func (c *CPLDS) ReadRetries() uint64 { return c.readRetries.Load() }

// New returns an empty CPLDS over n vertices with the given parameters.
func New(n int, p lds.Params) *CPLDS {
	c := &CPLDS{
		desc:   make([]atomic.Pointer[Descriptor], n),
		pool:   make([]Descriptor, n),
		marked: make([]uint32, n),
	}
	c.P = plds.New(n, p, c)
	c.S = c.P.S
	return c
}

// NumVertices returns the number of vertices.
func (c *CPLDS) NumVertices() int { return len(c.desc) }

// Graph exposes the underlying dynamic graph (must not be accessed
// concurrently with a running batch).
func (c *CPLDS) Graph() *graph.Dynamic { return c.P.Graph() }

// BatchNumber returns the current batch number.
func (c *CPLDS) BatchNumber() uint64 { return c.batchNum.Load() }

// InsertBatch inserts a batch of edges; concurrent reads remain
// linearizable throughout. Returns the number of edges applied.
func (c *CPLDS) InsertBatch(edges []graph.Edge) int { return c.P.InsertBatch(edges) }

// DeleteBatch deletes a batch of edges; concurrent reads remain
// linearizable throughout. Returns the number of edges removed.
func (c *CPLDS) DeleteBatch(edges []graph.Edge) int { return c.P.DeleteBatch(edges) }

// --- plds.Tracker implementation (update-side protocol) ---

// BatchStart begins a batch: takes the sync gate, bumps the batch number
// and rebuilds the flat batch-edge index (in the reused buffer) for
// marked-batch-neighbour lookups.
func (c *CPLDS) BatchStart(kind plds.Kind, applied []graph.Edge) {
	c.gate.Lock()
	c.stamp = uint32(c.batchNum.Add(1))
	c.kind = kind
	dir := c.batchDir[:0]
	for _, e := range applied {
		dir = append(dir, e, graph.Edge{U: e.V, V: e.U})
	}
	slices.SortFunc(dir, func(a, b graph.Edge) int {
		if a.U != b.U {
			return cmp.Compare(a.U, b.U)
		}
		return cmp.Compare(a.V, b.V)
	})
	c.batchDir = dir
	c.markedLen.Store(0)
}

// forEachBatchNeighbor calls f for every endpoint w such that (v, w) is an
// applied edge of the current batch, via binary search on the flat index.
func (c *CPLDS) forEachBatchNeighbor(v uint32, f func(w uint32)) {
	i, _ := slices.BinarySearchFunc(c.batchDir, v, func(e graph.Edge, v uint32) int {
		return cmp.Compare(e.U, v)
	})
	for ; i < len(c.batchDir) && c.batchDir[i].U == v; i++ {
		f(c.batchDir[i].V)
	}
}

// VertexMoving marks v: it installs a descriptor carrying v's pre-batch
// level and merges v into the DAGs of its triggers and marked batch
// neighbours. Called concurrently by the batch engine, once per vertex per
// batch, before v's first level change.
func (c *CPLDS) VertexMoving(v uint32, oldLevel int32, kind plds.Kind) {
	d := &c.pool[v]
	d.old.Store(oldLevel)
	d.word.Store(packWord(c.stamp, Root))
	c.desc[v].Store(d)
	c.marked[c.markedLen.Add(1)-1] = v

	// Triggers: marked graph neighbours that may have caused v's move.
	// Insertions: marked neighbours at v's level or above (a vertex that
	// moved up past v can push v's up-degree over the bound). Deletions:
	// marked neighbours that dropped below level ℓ(v)−1 (they left v's
	// Invariant 2 neighbourhood).
	c.P.Graph().Neighbors(v, func(w uint32) bool {
		if c.desc[w].Load() == nil {
			return true
		}
		lw := c.P.Level(w)
		if kind == plds.Insert {
			if lw >= oldLevel {
				c.union(v, w)
			}
		} else {
			if lw < oldLevel-1 {
				c.union(v, w)
			}
		}
		return true
	})
	// Marked batch neighbours: endpoints of updated edges incident to v
	// must share v's DAG regardless of level (Lemma 6.3).
	c.forEachBatchNeighbor(v, func(w uint32) {
		if c.desc[w].Load() != nil {
			c.union(v, w)
		}
	})
}

// BatchEnd unmarks every descriptor — roots first, then the rest — and
// releases the sync gate.
func (c *CPLDS) BatchEnd(kind plds.Kind) {
	marked := c.marked[:c.markedLen.Load()]
	if c.beforeUnmark != nil {
		c.beforeUnmark(kind, marked)
	}
	// Enter the unmark phase: commitSeq goes odd, telling epoch-pinned
	// multi-reads that batch-boundary visibility is in flux. Mid-batch (up
	// to here) every read returns the pre-batch value, so pinned readers
	// need no signal; it is only while descriptors disappear that a
	// multi-read could mix pre- and post-batch values.
	c.commitSeq.Add(1)
	// Pass 1: unmark all DAG roots.
	parallel.For(len(marked), func(i int) {
		v := marked[i]
		if d := c.desc[v].Load(); d != nil && parentOf(d.word.Load()) == Root {
			c.desc[v].Store(nil)
		}
	})
	// Pass 2: unmark all remaining marked vertices.
	parallel.For(len(marked), func(i int) {
		c.desc[marked[i]].Store(nil)
	})
	// Retention: snapshot this batch's undo records into the multi-version
	// store *before* publishing the commit, so any reader that observes the
	// new epoch finds its delta present. The pre-batch levels still sit in
	// the descriptor pool (unmarking clears the descriptor pointers, not
	// the pooled `old` fields; a vertex's pool slot is only rewritten when
	// the *next* batch marks it, which this batch's gate still excludes).
	if c.store != nil {
		c.store.Append((c.commitSeq.Load()+1)>>1, marked,
			func(v uint32) int32 { return c.pool[v].old.Load() })
	}
	// Leave the unmark phase: commitSeq becomes 2*(epoch+1) — the batch is
	// committed and uniformly visible.
	if c.onCommit != nil {
		c.onCommit(func() { c.commitSeq.Add(1) })
	} else {
		c.commitSeq.Add(1)
	}
	// Change feed: extract this batch's coreness transitions from the same
	// arenas the retention capture reads — pre-batch levels still in the
	// descriptor pool, post-batch levels live. Runs after publication (so
	// the events' epoch is already readable) but before the gate drops (so
	// the pool slots cannot yet be rewritten by the next batch). Skipped
	// with a single predicate call when nobody subscribes.
	if c.eventSink != nil && c.eventActive() {
		epoch := c.commitSeq.Load() >> 1
		buf := c.eventBuf[:0]
		for _, v := range marked {
			oldLevel := c.pool[v].old.Load()
			newLevel := c.P.Level(v)
			if oldLevel == newLevel {
				continue
			}
			buf = append(buf, feed.Event{
				Epoch:   epoch,
				Vertex:  v,
				OldCore: c.S.EstimateFromLevel(oldLevel),
				NewCore: c.S.EstimateFromLevel(newLevel),
			})
		}
		c.eventBuf = buf
		if len(buf) > 0 {
			c.eventSink(epoch, buf)
		}
	}
	c.gate.Unlock()
}

// --- dependency-DAG union-find over descriptors ---

// findRoot returns the root vertex of v's DAG, compressing the path. The
// caller must know v is currently marked. Returns (root, true), or
// (0, false) if an unmarked descriptor was encountered (possible only for
// concurrent readers racing batch end; the updater never sees it).
func (c *CPLDS) findRoot(v uint32) (uint32, bool) {
	x := v
	d := c.desc[x].Load()
	if d == nil {
		return 0, false
	}
	// Walk to the root.
	for {
		p := parentOf(d.word.Load())
		if p == Root {
			break
		}
		nd := c.desc[uint32(p)].Load()
		if nd == nil {
			return 0, false
		}
		x = uint32(p)
		d = nd
	}
	if c.noPathCompression {
		return x, true
	}
	// Compress: point every node on v's path directly at x. A non-root
	// descriptor's parent is only ever rewritten to another ancestor, so
	// racing stores are benign. Only the updater runs findRoot, and every
	// non-nil descriptor belongs to the current batch, so stores carry the
	// current stamp.
	for w := v; w != x; {
		dw := c.desc[w].Load()
		if dw == nil {
			break
		}
		p := parentOf(dw.word.Load())
		if p == Root {
			break
		}
		if uint32(p) != x {
			dw.word.Store(packWord(c.stamp, int32(x)))
		}
		w = uint32(p)
	}
	return x, true
}

// union merges the DAGs of u and w with deterministic
// link-larger-root-under-smaller CAS linking. Only called by the updater
// during a batch, when both u and w are marked.
func (c *CPLDS) union(u, w uint32) {
	for {
		ru, ok := c.findRoot(u)
		if !ok {
			return
		}
		rw, ok := c.findRoot(w)
		if !ok {
			return
		}
		if ru == rw {
			return
		}
		lo, hi := ru, rw
		if lo > hi {
			lo, hi = hi, lo
		}
		d := c.desc[hi].Load()
		if d == nil {
			return
		}
		if d.word.CompareAndSwap(packWord(c.stamp, Root), packWord(c.stamp, int32(lo))) {
			return
		}
		// hi stopped being a root (a concurrent union won); retry.
	}
}

// checkDAG implements Algorithm 3: it reports whether the DAG containing
// the given descriptor is still marked. Traversal stops early at any
// unmarked descriptor — by the unmark-roots-first invariant, an unmarked
// non-root implies an unmarked root.
func (c *CPLDS) checkDAG(d *Descriptor) Status {
	if d == nil {
		return Unmarked
	}
	first := d
	firstWord := d.word.Load()
	firstParent := parentOf(firstWord)
	if firstParent == Root {
		return Marked
	}
	last := firstParent
	for {
		nd := c.desc[uint32(last)].Load()
		if nd == nil {
			// Unmark-roots-first invariant: an unmarked node on the path
			// implies the root is unmarked too.
			return Unmarked
		}
		p := parentOf(nd.word.Load())
		if p == Root {
			// Reader-side path compression: shortcut the entry node to the
			// root. Within one batch a non-root parent is only ever
			// rewritten to another ancestor, so the write is benign; the
			// CAS against the originally observed word makes it a no-op if
			// the descriptor was recycled into a later batch (the stamp
			// half of the word has changed) or already re-compressed.
			if last != firstParent && !c.noPathCompression {
				first.word.CompareAndSwap(firstWord, packWord(uint32(firstWord>>32), last))
			}
			return Marked
		}
		last = p
	}
}

// --- read protocols ---

// Read returns the linearizable coreness estimate of v (Algorithm 4). It
// is lock-free and may run concurrently with update batches.
func (c *CPLDS) Read(v uint32) float64 {
	return c.S.EstimateFromLevel(c.ReadLevel(v))
}

// ReadLevel returns the linearizable level of v underlying the coreness
// estimate — the pre-batch level if v's dependency DAG is still marked, and
// the live level otherwise.
func (c *CPLDS) ReadLevel(v uint32) int32 {
	for {
		b1 := c.batchNum.Load()
		l1 := c.P.Level(v)
		d := c.desc[v].Load()
		status := c.checkDAG(d)
		// Load the old level before validating the batch number: a pooled
		// descriptor recycled by a later batch can only change `old` after
		// that batch bumped the batch number, so a load inside a passing
		// double collect is guaranteed to be this batch's value.
		var oldLevel int32
		if status == Marked {
			oldLevel = d.OldLevel()
		}
		l2 := c.P.Level(v)
		b2 := c.batchNum.Load()
		if b1 != b2 {
			c.readRetries.Add(1)
			continue // a new batch started: state may mix batches
		}
		if status == Marked {
			return oldLevel
		}
		if l1 == l2 {
			return l1
		}
		// The live level changed under us: an update made progress; retry.
		c.readRetries.Add(1)
	}
}

// ReadNonSync is the paper's non-linearizable NonSync baseline: it returns
// the estimate computed from the instantaneous live level, which may be an
// intermediate level mid-batch (unbounded error in theory, §6.3).
func (c *CPLDS) ReadNonSync(v uint32) float64 {
	return c.S.EstimateFromLevel(c.P.Level(v))
}

// ReadSync is the paper's SyncReads baseline: the read blocks until the
// in-flight batch (if any) completes, then reads the settled level.
func (c *CPLDS) ReadSync(v uint32) float64 {
	c.gate.RLock()
	est := c.S.EstimateFromLevel(c.P.Level(v))
	c.gate.RUnlock()
	return est
}

// --- epoch-pinned reads (consistent multi-vertex cuts) ---

// pinnedAttempts bounds the optimistic retries of a pinned multi-read
// before it degrades to the blocking gate path. Each failed attempt implies
// a batch committed during the collection, so in the common regime (batches
// are orders of magnitude longer than reads) the first attempt succeeds;
// the bound only matters for pathological scan-length/batch-length ratios,
// where unbounded optimism could livelock.
const pinnedAttempts = 8

// Epoch returns the number of committed update batches. Values returned by
// the linearizable read protocol always correspond to the state at one of
// these epochs' boundaries.
func (c *CPLDS) Epoch() uint64 { return c.commitSeq.Load() >> 1 }

// CommitSeq exposes the raw commit sequence (2*epoch, or odd during a
// commit's unmark phase). Intended for multi-engine coordinators (the
// sharded engine validates a vector of these around its cross-shard pinned
// reads).
func (c *CPLDS) CommitSeq() uint64 { return c.commitSeq.Load() }

// GateRLock acquires the batch gate in read mode: while held, no batch can
// start or commit, so live levels are a frozen committed cut. It is the
// blocking fallback used by pinned multi-reads (and the building block for
// cross-shard coordinators); pair with GateRUnlock.
func (c *CPLDS) GateRLock() { c.gate.RLock() }

// GateRUnlock releases the batch gate taken by GateRLock.
func (c *CPLDS) GateRUnlock() { c.gate.RUnlock() }

// ReadPinned returns v's linearizable coreness estimate together with the
// epoch whose boundary state the value belongs to.
func (c *CPLDS) ReadPinned(v uint32) (float64, uint64) {
	for attempt := 0; attempt < pinnedAttempts; attempt++ {
		s1 := c.commitSeq.Load()
		if s1&1 != 0 {
			continue // an unmark phase is in flight; visibility is mixed
		}
		est := c.Read(v)
		if c.commitSeq.Load() == s1 {
			return est, s1 >> 1
		}
	}
	c.gate.RLock()
	est := c.S.EstimateFromLevel(c.P.Level(v))
	epoch := c.commitSeq.Load() >> 1
	c.gate.RUnlock()
	return est, epoch
}

// ReadManyPinned fills out[i] with the coreness estimate of vs[i] such that
// every value belongs to one batch boundary — the returned epoch — rather
// than a torn mix of boundaries. len(out) must equal len(vs).
//
// The protocol is optimistic and read-only: collect all values with the
// linearizable single-vertex protocol, and validate that the commit
// sequence was even and unchanged across the whole collection. Mid-batch
// every single-vertex read returns the pre-batch (last committed) value, so
// an unchanged even commitSeq proves all values are the state at epoch
// commitSeq/2. A failed validation means a batch committed meanwhile —
// update progress, as in the paper's lock-freedom argument — and the
// collection restarts; after pinnedAttempts failures it falls back to a
// bounded blocking read under the batch gate (SyncReads-style latency).
func (c *CPLDS) ReadManyPinned(vs []uint32, out []float64) uint64 {
	for attempt := 0; attempt < pinnedAttempts; attempt++ {
		s1 := c.commitSeq.Load()
		if s1&1 != 0 {
			continue
		}
		for i, v := range vs {
			out[i] = c.S.EstimateFromLevel(c.ReadLevel(v))
		}
		if c.commitSeq.Load() == s1 {
			return s1 >> 1
		}
	}
	c.gate.RLock()
	for i, v := range vs {
		out[i] = c.S.EstimateFromLevel(c.P.Level(v))
	}
	epoch := c.commitSeq.Load() >> 1
	c.gate.RUnlock()
	return epoch
}

// ReadAllPinned fills out[v] with the coreness estimate of every vertex v,
// all from the single batch boundary it returns. len(out) must be
// NumVertices().
func (c *CPLDS) ReadAllPinned(out []float64) uint64 {
	for attempt := 0; attempt < pinnedAttempts; attempt++ {
		s1 := c.commitSeq.Load()
		if s1&1 != 0 {
			continue
		}
		for v := range out {
			out[v] = c.S.EstimateFromLevel(c.ReadLevel(uint32(v)))
		}
		if c.commitSeq.Load() == s1 {
			return s1 >> 1
		}
	}
	c.gate.RLock()
	for v := range out {
		out[v] = c.S.EstimateFromLevel(c.P.Level(uint32(v)))
	}
	epoch := c.commitSeq.Load() >> 1
	c.gate.RUnlock()
	return epoch
}

// --- retained (multi-version) reads ---

// SetRetainedEpochs configures the multi-version store: the n most recent
// retired epochs stay exactly readable through the *At read protocols
// (pins can extend that window). n <= 0 disables retention — ReadManyAt
// and friends then only serve the current epoch. Quiescent use only.
func (c *CPLDS) SetRetainedEpochs(n int) {
	if n <= 0 {
		c.store = nil
		return
	}
	c.store = mvcc.NewStore(n)
}

// RetainedEpochs returns the configured retention depth (0 = disabled).
func (c *CPLDS) RetainedEpochs() int {
	if c.store == nil {
		return 0
	}
	return c.store.Retain()
}

// SetCommitHook installs a hook wrapping the commit publication of every
// batch (see the onCommit field). Quiescent use only.
func (c *CPLDS) SetCommitHook(h func(publish func())) { c.onCommit = h }

// SetEventSink installs the change-feed extraction hook (see the
// eventSink field): after every commit publication, if active() reports
// subscribers, sink receives the batch's coreness transitions stamped
// with this instance's local epoch. The slice is reused across batches —
// sink must not retain it. Pass (nil, nil) to disable. Quiescent use
// only.
func (c *CPLDS) SetEventSink(active func() bool, sink func(localEpoch uint64, events []feed.Event)) {
	if sink == nil || active == nil {
		c.eventSink, c.eventActive = nil, nil
		return
	}
	c.eventSink, c.eventActive = sink, active
}

// OldestReadableEpoch returns the oldest epoch the *At protocols can still
// serve (the current epoch when retention is disabled).
func (c *CPLDS) OldestReadableEpoch() uint64 {
	cur := c.Epoch()
	if c.store == nil {
		return cur
	}
	return c.store.OldestReadable(cur)
}

// CheckEpoch reports whether epoch is currently servable, failing with the
// typed mvcc evicted/future errors otherwise.
func (c *CPLDS) CheckEpoch(epoch uint64) error {
	cur := c.Epoch()
	if epoch > cur {
		return &mvcc.FutureEpochError{Epoch: epoch, Committed: cur}
	}
	if epoch == cur {
		return nil
	}
	if c.store == nil {
		return &mvcc.EvictedEpochError{Epoch: epoch, OldestReadable: cur}
	}
	return c.store.Check(epoch, cur)
}

// PinEpoch keeps epoch readable — eviction will not cross it — until a
// matching UnpinEpoch. Requires retention to be enabled.
func (c *CPLDS) PinEpoch(epoch uint64) error {
	cur := c.Epoch()
	if c.store == nil {
		if epoch > cur {
			return &mvcc.FutureEpochError{Epoch: epoch, Committed: cur}
		}
		return fmt.Errorf("cplds: cannot pin epoch %d with retention disabled: %w", epoch, mvcc.ErrEvicted)
	}
	return c.store.Pin(epoch, cur)
}

// UnpinEpoch releases one PinEpoch of epoch.
func (c *CPLDS) UnpinEpoch(epoch uint64) {
	if c.store != nil {
		c.store.Unpin(epoch)
	}
}

// collectLevelsAt runs collect — which must gather linearizable levels —
// against a validated committed cut and returns that cut's epoch, or a
// future-epoch error if the requested epoch has not committed. After
// pinnedAttempts failed validations it falls back to collectQuiescent
// under the batch gate (same degradation as the pinned multi-reads).
func (c *CPLDS) collectLevelsAt(epoch uint64, collect, collectQuiescent func()) (uint64, error) {
	for attempt := 0; attempt < pinnedAttempts; attempt++ {
		s1 := c.commitSeq.Load()
		if s1&1 != 0 {
			continue
		}
		if epoch > s1>>1 {
			return 0, &mvcc.FutureEpochError{Epoch: epoch, Committed: s1 >> 1}
		}
		collect()
		if c.commitSeq.Load() == s1 {
			return s1 >> 1, nil
		}
	}
	c.gate.RLock()
	defer c.gate.RUnlock()
	cur := c.commitSeq.Load() >> 1
	if epoch > cur {
		return 0, &mvcc.FutureEpochError{Epoch: epoch, Committed: cur}
	}
	collectQuiescent()
	return cur, nil
}

// rewind converts collected live levels (a validated cut at epoch cur)
// into estimates at the requested retired epoch by overlaying the
// retained deltas. vs == nil means levels is indexed by vertex id.
func (c *CPLDS) rewind(epoch, cur uint64, vs []uint32, levels []int32, out []float64) error {
	if epoch < cur {
		if c.store == nil {
			return &mvcc.EvictedEpochError{Epoch: epoch, OldestReadable: cur}
		}
		var err error
		if vs == nil {
			err = c.store.OverlayAll(epoch, cur, levels)
		} else {
			err = c.store.OverlayMany(epoch, cur, vs, levels)
		}
		if err != nil {
			return err
		}
	}
	for i, l := range levels {
		out[i] = c.S.EstimateFromLevel(l)
	}
	return nil
}

// ReadManyAt fills out[i] with the coreness estimate vs[i] had at the
// given committed epoch — even a retired one, as long as it is within the
// retention window (or pinned). len(out) must equal len(vs). Safe to call
// concurrently with update batches; the result is deterministic for a
// given epoch, so repeated reads at a pinned epoch are byte-identical.
func (c *CPLDS) ReadManyAt(vs []uint32, out []float64, epoch uint64) error {
	levels := make([]int32, len(vs))
	cur, err := c.collectLevelsAt(epoch,
		func() {
			for i, v := range vs {
				levels[i] = c.ReadLevel(v)
			}
		},
		func() {
			for i, v := range vs {
				levels[i] = c.P.Level(v)
			}
		})
	if err != nil {
		return err
	}
	return c.rewind(epoch, cur, vs, levels, out)
}

// ReadAllAt fills out[v] with every vertex's coreness estimate at the
// given committed epoch (see ReadManyAt). len(out) must be NumVertices().
func (c *CPLDS) ReadAllAt(out []float64, epoch uint64) error {
	levels := make([]int32, len(out))
	cur, err := c.collectLevelsAt(epoch,
		func() {
			for v := range levels {
				levels[v] = c.ReadLevel(uint32(v))
			}
		},
		func() {
			for v := range levels {
				levels[v] = c.P.Level(uint32(v))
			}
		})
	if err != nil {
		return err
	}
	return c.rewind(epoch, cur, nil, levels, out)
}

// Levels fills out[v] with every vertex's current level. Quiescent use
// only (durability snapshots run it under the engine's quiesce section);
// use ReadLevel for concurrent reads.
func (c *CPLDS) Levels(out []int32) {
	for v := range out {
		out[v] = c.P.Level(uint32(v))
	}
}

// Restore resets the CPLDS to a previously captured quiescent state: the
// graph (from a CSR snapshot), every vertex's level, and the committed
// epoch. The PLDS rebuilds its derived state (up counters) from the
// restored graph and levels; the batch counter and commit sequence are
// re-seeded to the restored epoch so the epoch arithmetic of the pinned
// read protocols continues seamlessly; and the multi-version store, if
// retention is enabled, restarts empty (pre-restore retired epochs are
// not recoverable — only their final state is).
//
// The caller must exclude updaters (no batch in flight — recovery runs
// single-threaded, replication bootstrap runs under the engine's
// quiesce), but concurrent *readers* are safe: the restore runs under the
// batch gate with the commit sequence held odd, exactly the visibility
// protocol of a batch's unmark phase, so a pinned multi-vertex read that
// overlaps the restore fails its sequence validation and retries (or
// falls back to the gate and blocks), and a single-vertex read retries on
// the batch-number change. Restored epochs must be >= the current epoch
// (replication only moves forward), keeping the retry arithmetic
// monotone.
func (c *CPLDS) Restore(csr *graph.CSR, levels []int32, epoch uint64) error {
	n := c.NumVertices()
	if csr.NumVertices() != n {
		return fmt.Errorf("cplds: restore of %d-vertex snapshot into %d-vertex structure",
			csr.NumVertices(), n)
	}
	if len(levels) != n {
		return fmt.Errorf("cplds: restore with %d levels for %d vertices", len(levels), n)
	}
	for v, l := range levels {
		if l < 0 || l > c.S.MaxLevel() {
			return fmt.Errorf("cplds: restored level %d of vertex %d outside [0, %d]",
				l, v, c.S.MaxLevel())
		}
	}
	c.gate.Lock()
	defer c.gate.Unlock()
	c.commitSeq.Add(1) // odd: multi-vertex readers retry until the new state is whole
	c.P.Restore(graph.FromCSR(csr), levels, epoch)
	c.batchNum.Store(epoch)
	if c.store != nil {
		c.store.Reset()
	}
	c.commitSeq.Store(2 * epoch)
	return nil
}

// IsMarked reports whether v currently has an active descriptor. Intended
// for tests and diagnostics.
func (c *CPLDS) IsMarked(v uint32) bool { return c.desc[v].Load() != nil }

// DescriptorOf returns v's current descriptor (nil when unmarked). The
// returned descriptor must be treated as read-only. Intended for tests.
func (c *CPLDS) DescriptorOf(v uint32) *Descriptor { return c.desc[v].Load() }

// Parent returns the parent vertex of d's DAG node and whether d is a root.
// Intended for tests.
func (d *Descriptor) Parent() (int32, bool) {
	p := parentOf(d.word.Load())
	return p, p == Root
}

// CheckInvariants verifies the LDS invariants of the underlying PLDS, plus
// the epoch bookkeeping: at quiescence the commit sequence must be even
// (no unmark phase in flight) and in lockstep with the PLDS's committed-
// batch epoch — the two counters are published by the same batch commit
// and drifting apart would silently break epoch-pinned reads. Must not run
// concurrently with a batch.
func (c *CPLDS) CheckInvariants() error {
	seq := c.commitSeq.Load()
	if seq&1 != 0 {
		return fmt.Errorf("cplds: commit sequence %d odd at quiescence (unmark phase never closed)", seq)
	}
	if got, want := seq>>1, c.P.Epoch(); got != want {
		return fmt.Errorf("cplds: commit epoch %d out of lockstep with PLDS epoch %d", got, want)
	}
	if c.store != nil {
		if err := c.store.CheckInvariants(seq >> 1); err != nil {
			return err
		}
	}
	return c.P.CheckInvariants()
}

// Estimate returns the live (non-linearizable) estimate; exposed for
// harness symmetry with PLDS.
func (c *CPLDS) Estimate(v uint32) float64 { return c.P.Estimate(v) }
