// Package cplds implements the Concurrent Parallel Level Data Structure
// (CPLDS) — the contribution of Liu, Shun and Zablotchi (PPoPP 2024):
// a hybrid concurrent–parallel dynamic k-core data structure in which
// asynchronous, lock-free coreness reads proceed concurrently with parallel
// batches of edge updates while remaining linearizable.
//
// # Design (paper §4–5)
//
// Each vertex has an operation-descriptor slot. When a vertex first moves
// during a batch it becomes marked: a descriptor recording its pre-batch
// (old) level is installed, and the vertex is merged into the dependency
// DAGs of (a) its triggers — marked neighbours that may have caused the
// move — and (b) its marked batch neighbours — endpoints of batch edges
// incident to it (Lemma 6.3: no updated edge may cross DAGs). DAGs are
// merged with a lock-free union-find over descriptor parent pointers, with
// deterministic link-by-minimum-root and path compression.
//
// A read of v double-collects the global batch number and v's live level
// around an inspection of v's DAG (check_DAG): if the DAG root is still
// marked, the read returns the coreness estimate from v's old level;
// otherwise it returns the estimate from v's (stable) live level. Reads are
// lock-free: every retry implies that an update made progress.
//
// At the end of each batch all descriptors are removed — roots first, then
// non-roots — preserving the invariant that a DAG's root is unmarked before
// any of its non-roots, which is what allows check_DAG to stop early at any
// unmarked descriptor.
package cplds

import (
	"sync"
	"sync/atomic"

	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/parallel"
	"kcore/internal/plds"
)

// Root is the parent value of a DAG root descriptor (I_AM_ROOT in the
// paper's pseudocode).
const Root int32 = -1

// Descriptor is an operation descriptor for a vertex that is changing
// levels in the current batch.
type Descriptor struct {
	// parent is the vertex id of this node's parent in the dependency DAG,
	// or Root. It changes under CAS (union) and atomic store (path
	// compression).
	parent atomic.Int32
	// OldLevel is the vertex's level before the current batch of updates.
	OldLevel int32
}

// Status is the result of inspecting a vertex's dependency DAG.
type Status int

const (
	// Unmarked means the vertex (or its DAG root) is not being updated.
	Unmarked Status = iota
	// Marked means the vertex's DAG root still has an active descriptor.
	Marked
)

// CPLDS wraps the PLDS batch engine with the descriptor/DAG machinery and
// the concurrent read protocol.
//
// Concurrency contract: InsertBatch/DeleteBatch from one updater goroutine
// at a time (internally parallel); Read, ReadNonSync and ReadSync from any
// number of goroutines at any time.
type CPLDS struct {
	P *plds.PLDS
	S *lds.Structure

	desc     []atomic.Pointer[Descriptor]
	batchNum atomic.Uint64

	// Batch-scoped state (owned by the updater between BatchStart/BatchEnd).
	kind     plds.Kind
	batchAdj map[uint32][]uint32 // endpoints of batch edges, per vertex

	markedMu sync.Mutex
	marked   []uint32 // vertices marked in the current batch

	// gate implements the SyncReads baseline: the updater write-locks it
	// for the duration of each batch, so ReadSync blocks until the batch
	// completes (exactly the paper's synchronous baseline).
	gate sync.RWMutex

	// beforeUnmark, when non-nil, runs at the start of BatchEnd while all
	// descriptors are still in place. Test hook for inspecting the final
	// dependency DAGs of a batch.
	beforeUnmark func(kind plds.Kind, marked []uint32)

	// noPathCompression disables path compression in DAG traversals (reads
	// and unions). Ablation knob: compression is the paper's §5.2
	// optimization; disabling it lengthens root paths but must not affect
	// correctness.
	noPathCompression bool

	// readRetries counts how many times the read protocol had to restart
	// (batch number changed or live level moved). Diagnostic for the
	// lock-freedom argument and the ablation benchmarks.
	readRetries atomic.Uint64
}

// SetPathCompression toggles the path-compression optimization (enabled by
// default). Quiescent use only; intended for ablation benchmarks.
func (c *CPLDS) SetPathCompression(enabled bool) { c.noPathCompression = !enabled }

// ReadRetries returns the cumulative number of read-protocol restarts.
func (c *CPLDS) ReadRetries() uint64 { return c.readRetries.Load() }

// New returns an empty CPLDS over n vertices with the given parameters.
func New(n int, p lds.Params) *CPLDS {
	c := &CPLDS{desc: make([]atomic.Pointer[Descriptor], n)}
	c.P = plds.New(n, p, c)
	c.S = c.P.S
	return c
}

// NumVertices returns the number of vertices.
func (c *CPLDS) NumVertices() int { return len(c.desc) }

// Graph exposes the underlying dynamic graph (must not be accessed
// concurrently with a running batch).
func (c *CPLDS) Graph() *graph.Dynamic { return c.P.Graph() }

// BatchNumber returns the current batch number.
func (c *CPLDS) BatchNumber() uint64 { return c.batchNum.Load() }

// InsertBatch inserts a batch of edges; concurrent reads remain
// linearizable throughout. Returns the number of edges applied.
func (c *CPLDS) InsertBatch(edges []graph.Edge) int { return c.P.InsertBatch(edges) }

// DeleteBatch deletes a batch of edges; concurrent reads remain
// linearizable throughout. Returns the number of edges removed.
func (c *CPLDS) DeleteBatch(edges []graph.Edge) int { return c.P.DeleteBatch(edges) }

// --- plds.Tracker implementation (update-side protocol) ---

// BatchStart begins a batch: takes the sync gate, bumps the batch number
// and indexes the batch edges by endpoint for marked-batch-neighbour
// lookups.
func (c *CPLDS) BatchStart(kind plds.Kind, applied []graph.Edge) {
	c.gate.Lock()
	c.batchNum.Add(1)
	c.kind = kind
	if len(applied) > 0 {
		adj := make(map[uint32][]uint32, 2*len(applied))
		for _, e := range applied {
			adj[e.U] = append(adj[e.U], e.V)
			adj[e.V] = append(adj[e.V], e.U)
		}
		c.batchAdj = adj
	} else {
		c.batchAdj = nil
	}
	c.marked = c.marked[:0]
}

// VertexMoving marks v: it installs a descriptor carrying v's pre-batch
// level and merges v into the DAGs of its triggers and marked batch
// neighbours. Called concurrently by the batch engine, once per vertex per
// batch, before v's first level change.
func (c *CPLDS) VertexMoving(v uint32, oldLevel int32, kind plds.Kind) {
	d := &Descriptor{OldLevel: oldLevel}
	d.parent.Store(Root)
	c.desc[v].Store(d)
	c.markedMu.Lock()
	c.marked = append(c.marked, v)
	c.markedMu.Unlock()

	// Triggers: marked graph neighbours that may have caused v's move.
	// Insertions: marked neighbours at v's level or above (a vertex that
	// moved up past v can push v's up-degree over the bound). Deletions:
	// marked neighbours that dropped below level ℓ(v)−1 (they left v's
	// Invariant 2 neighbourhood).
	c.P.Graph().Neighbors(v, func(w uint32) bool {
		if c.desc[w].Load() == nil {
			return true
		}
		lw := c.P.Level(w)
		if kind == plds.Insert {
			if lw >= oldLevel {
				c.union(v, w)
			}
		} else {
			if lw < oldLevel-1 {
				c.union(v, w)
			}
		}
		return true
	})
	// Marked batch neighbours: endpoints of updated edges incident to v
	// must share v's DAG regardless of level (Lemma 6.3).
	for _, w := range c.batchAdj[v] {
		if c.desc[w].Load() != nil {
			c.union(v, w)
		}
	}
}

// BatchEnd unmarks every descriptor — roots first, then the rest — and
// releases the sync gate.
func (c *CPLDS) BatchEnd(kind plds.Kind) {
	if c.beforeUnmark != nil {
		c.beforeUnmark(kind, c.marked)
	}
	// Pass 1: unmark all DAG roots.
	parallel.For(len(c.marked), func(i int) {
		v := c.marked[i]
		if d := c.desc[v].Load(); d != nil && d.parent.Load() == Root {
			c.desc[v].Store(nil)
		}
	})
	// Pass 2: unmark all remaining marked vertices.
	parallel.For(len(c.marked), func(i int) {
		c.desc[c.marked[i]].Store(nil)
	})
	c.batchAdj = nil
	c.gate.Unlock()
}

// --- dependency-DAG union-find over descriptors ---

// findRoot returns the root vertex of v's DAG, compressing the path. The
// caller must know v is currently marked. Returns (root, true), or
// (0, false) if an unmarked descriptor was encountered (possible only for
// concurrent readers racing batch end; the updater never sees it).
func (c *CPLDS) findRoot(v uint32) (uint32, bool) {
	x := v
	d := c.desc[x].Load()
	if d == nil {
		return 0, false
	}
	// Walk to the root.
	for {
		p := d.parent.Load()
		if p == Root {
			break
		}
		nd := c.desc[uint32(p)].Load()
		if nd == nil {
			return 0, false
		}
		x = uint32(p)
		d = nd
	}
	if c.noPathCompression {
		return x, true
	}
	// Compress: point every node on v's path directly at x. A non-root
	// descriptor's parent is only ever rewritten to another ancestor, so
	// racing stores are benign.
	for w := v; w != x; {
		dw := c.desc[w].Load()
		if dw == nil {
			break
		}
		p := dw.parent.Load()
		if p == Root {
			break
		}
		if uint32(p) != x {
			dw.parent.Store(int32(x))
		}
		w = uint32(p)
	}
	return x, true
}

// union merges the DAGs of u and w with deterministic
// link-larger-root-under-smaller CAS linking. Only called by the updater
// during a batch, when both u and w are marked.
func (c *CPLDS) union(u, w uint32) {
	for {
		ru, ok := c.findRoot(u)
		if !ok {
			return
		}
		rw, ok := c.findRoot(w)
		if !ok {
			return
		}
		if ru == rw {
			return
		}
		lo, hi := ru, rw
		if lo > hi {
			lo, hi = hi, lo
		}
		d := c.desc[hi].Load()
		if d == nil {
			return
		}
		if d.parent.CompareAndSwap(Root, int32(lo)) {
			return
		}
		// hi stopped being a root (a concurrent union won); retry.
	}
}

// checkDAG implements Algorithm 3: it reports whether the DAG containing
// the given descriptor is still marked. Traversal stops early at any
// unmarked descriptor — by the unmark-roots-first invariant, an unmarked
// non-root implies an unmarked root.
func (c *CPLDS) checkDAG(d *Descriptor) Status {
	if d == nil {
		return Unmarked
	}
	first := d
	firstParent := d.parent.Load()
	if firstParent == Root {
		return Marked
	}
	last := firstParent
	for {
		nd := c.desc[uint32(last)].Load()
		if nd == nil {
			// Unmark-roots-first invariant: an unmarked node on the path
			// implies the root is unmarked too.
			return Unmarked
		}
		p := nd.parent.Load()
		if p == Root {
			// Reader-side path compression: shortcut the entry node to the
			// root. A non-root parent pointer is only ever rewritten to
			// another ancestor, so the racing store is benign.
			if last != firstParent && !c.noPathCompression {
				first.parent.Store(last)
			}
			return Marked
		}
		last = p
	}
}

// --- read protocols ---

// Read returns the linearizable coreness estimate of v (Algorithm 4). It
// is lock-free and may run concurrently with update batches.
func (c *CPLDS) Read(v uint32) float64 {
	return c.S.EstimateFromLevel(c.ReadLevel(v))
}

// ReadLevel returns the linearizable level of v underlying the coreness
// estimate — the pre-batch level if v's dependency DAG is still marked, and
// the live level otherwise.
func (c *CPLDS) ReadLevel(v uint32) int32 {
	for {
		b1 := c.batchNum.Load()
		l1 := c.P.Level(v)
		d := c.desc[v].Load()
		status := c.checkDAG(d)
		l2 := c.P.Level(v)
		b2 := c.batchNum.Load()
		if b1 != b2 {
			c.readRetries.Add(1)
			continue // a new batch started: state may mix batches
		}
		if status == Marked {
			return d.OldLevel
		}
		if l1 == l2 {
			return l1
		}
		// The live level changed under us: an update made progress; retry.
		c.readRetries.Add(1)
	}
}

// ReadNonSync is the paper's non-linearizable NonSync baseline: it returns
// the estimate computed from the instantaneous live level, which may be an
// intermediate level mid-batch (unbounded error in theory, §6.3).
func (c *CPLDS) ReadNonSync(v uint32) float64 {
	return c.S.EstimateFromLevel(c.P.Level(v))
}

// ReadSync is the paper's SyncReads baseline: the read blocks until the
// in-flight batch (if any) completes, then reads the settled level.
func (c *CPLDS) ReadSync(v uint32) float64 {
	c.gate.RLock()
	est := c.S.EstimateFromLevel(c.P.Level(v))
	c.gate.RUnlock()
	return est
}

// IsMarked reports whether v currently has an active descriptor. Intended
// for tests and diagnostics.
func (c *CPLDS) IsMarked(v uint32) bool { return c.desc[v].Load() != nil }

// DescriptorOf returns v's current descriptor (nil when unmarked). The
// returned descriptor must be treated as read-only. Intended for tests.
func (c *CPLDS) DescriptorOf(v uint32) *Descriptor { return c.desc[v].Load() }

// Parent returns the parent vertex of d's DAG node and whether d is a root.
// Intended for tests.
func (d *Descriptor) Parent() (int32, bool) {
	p := d.parent.Load()
	return p, p == Root
}

// CheckInvariants verifies the LDS invariants of the underlying PLDS. Must
// not run concurrently with a batch.
func (c *CPLDS) CheckInvariants() error { return c.P.CheckInvariants() }

// Estimate returns the live (non-linearizable) estimate; exposed for
// harness symmetry with PLDS.
func (c *CPLDS) Estimate(v uint32) float64 { return c.P.Estimate(v) }
