package cplds

import (
	"sync"
	"testing"

	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/parallel"
	"kcore/internal/plds"
)

// TestConcurrentMarkingLargeCascade forces a round with far more movers
// than the parallel runtime's sequential grain, so VertexMoving runs from
// many goroutines at once: the lock-free marked arena (atomic cursor into a
// preallocated buffer), the pooled descriptors and the flat batch-edge
// index are all exercised by genuinely concurrent markers, with
// linearizable readers racing the batch. Run under -race in CI.
func TestConcurrentMarkingLargeCascade(t *testing.T) {
	oldWorkers := parallel.Workers()
	parallel.SetWorkers(4)
	defer parallel.SetWorkers(oldWorkers)

	// A single batch inserting many disjoint dense clusters moves every
	// cluster vertex in the first round (>512 movers => parallel marking).
	const clusters = 160
	const k = 8 // vertices per cluster; k-clique => all move off level 0
	const n = clusters * k
	c := New(n, lds.DefaultParams())
	var batch []graph.Edge
	for cl := 0; cl < clusters; cl++ {
		base := uint32(cl * k)
		for i := uint32(0); i < k; i++ {
			for j := i + 1; j < k; j++ {
				batch = append(batch, graph.E(base+i, base+j))
			}
		}
	}

	var markedSeen int
	c.beforeUnmark = func(kind plds.Kind, marked []uint32) {
		markedSeen = len(marked)
		// Every marked vertex must occupy exactly one arena slot.
		seen := make(map[uint32]bool, len(marked))
		for _, v := range marked {
			if seen[v] {
				t.Errorf("vertex %d marked twice", v)
			}
			seen[v] = true
			if c.DescriptorOf(v) == nil {
				t.Errorf("marked vertex %d has nil descriptor", v)
			}
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Read(uint32((i*7 + r) % n))
			}
		}(r)
	}
	// Several batches so descriptors are recycled through the pool while
	// readers race: insert, delete, re-insert.
	c.InsertBatch(batch)
	if markedSeen < 512 {
		t.Fatalf("only %d vertices marked; need >512 for parallel marking", markedSeen)
	}
	c.DeleteBatch(batch[:len(batch)/2])
	c.InsertBatch(batch)
	close(stop)
	wg.Wait()

	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < n; v++ {
		if c.IsMarked(v) {
			t.Fatalf("vertex %d still marked", v)
		}
	}
}
