package cplds

import (
	"sync"
	"testing"

	"kcore/internal/gen"
	"kcore/internal/lds"
	"kcore/internal/plds"
)

func TestPathCompressionAblationCorrectness(t *testing.T) {
	// With compression disabled the DAG walks are longer but every
	// linearizability property must still hold: run the intermediate-level
	// check with compression off.
	const n = 64
	const k = 40
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		c, batch := buildCascade(n, k)
		c.SetPathCompression(false)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		type obs struct {
			v     uint32
			level int32
		}
		var mu sync.Mutex
		var observations []obs
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				var local []obs
				for {
					select {
					case <-stop:
						mu.Lock()
						observations = append(observations, local...)
						mu.Unlock()
						return
					default:
					}
					v := uint32((r * 5) % k)
					local = append(local, obs{v, c.ReadLevel(v)})
				}
			}(r)
		}
		c.InsertBatch(batch)
		close(stop)
		wg.Wait()
		for _, o := range observations {
			post := c.P.Level(o.v)
			if o.level != 0 && o.level != post {
				t.Fatalf("trial %d: intermediate level %d observed with compression off (post %d)",
					trial, o.level, post)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeletionDescriptorsRecordPreBatchLevels(t *testing.T) {
	const n = 200
	c := newC(n)
	edges := gen.ChungLu(n, 2000, 2.3, 95)
	c.InsertBatch(edges)
	pre := make([]int32, n)
	for v := uint32(0); v < n; v++ {
		pre[v] = c.P.Level(v)
	}
	verified := 0
	c.beforeUnmark = func(kind plds.Kind, marked []uint32) {
		for _, v := range marked {
			d := c.DescriptorOf(v)
			if d == nil {
				t.Errorf("marked %d missing descriptor", v)
				continue
			}
			if d.OldLevel() != pre[v] {
				t.Errorf("deletion: vertex %d OldLevel %d != pre %d", v, d.OldLevel(), pre[v])
			}
			if c.P.Level(v) >= pre[v] {
				t.Errorf("deletion mover %d did not move down (pre %d, now %d)", v, pre[v], c.P.Level(v))
			}
			verified++
		}
	}
	c.DeleteBatch(edges[:1500])
	if verified == 0 {
		t.Fatal("no deletion movers to verify")
	}
}

func TestReadRetriesCounter(t *testing.T) {
	c := newC(50)
	c.InsertBatch(gen.ErdosRenyi(50, 200, 96))
	if c.ReadRetries() != 0 {
		t.Fatalf("retries before any contention = %d", c.ReadRetries())
	}
	// Quiescent reads never retry.
	for v := uint32(0); v < 50; v++ {
		c.Read(v)
	}
	if c.ReadRetries() != 0 {
		t.Fatalf("quiescent reads retried %d times", c.ReadRetries())
	}
}

func TestUnionManyConcurrentMarkers(t *testing.T) {
	// Stress the descriptor union-find directly: mark a large set and
	// union random pairs from many goroutines; afterwards all vertices
	// must share the single minimum root.
	const n = 2000
	c := newC(n)
	for v := uint32(0); v < n; v++ {
		d := &c.pool[v]
		d.word.Store(packWord(c.stamp, Root))
		c.desc[v].Store(d)
	}
	var wg sync.WaitGroup
	const gor = 8
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n-1; i += gor {
				c.union(uint32(i), uint32(i+1))
			}
		}(g)
	}
	wg.Wait()
	for v := uint32(0); v < n; v++ {
		r, ok := c.findRoot(v)
		if !ok || r != 0 {
			t.Fatalf("root of %d = %d (ok=%v), want 0", v, r, ok)
		}
	}
}

func TestParamsVariants(t *testing.T) {
	// The protocol must hold for non-default approximation parameters too.
	for _, p := range []lds.Params{
		{Delta: 0.4, Lambda: 3},
		{Delta: 0.1, Lambda: 20},
		{Delta: 1.0, Lambda: 1},
	} {
		c := New(120, p)
		edges := gen.ErdosRenyi(120, 900, 97)
		c.InsertBatch(edges)
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("params %+v: %v", p, err)
		}
		c.DeleteBatch(edges[:450])
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("params %+v after delete: %v", p, err)
		}
	}
}

// BenchmarkReadPathCompressionAblation compares linearizable read cost with
// and without the paper's path-compression optimization while a batch with
// deep dependency DAGs is in flight.
func BenchmarkReadPathCompressionAblation(b *testing.B) {
	for _, compress := range []bool{true, false} {
		name := "compress=on"
		if !compress {
			name = "compress=off"
		}
		b.Run(name, func(b *testing.B) {
			const n = 4096
			c := newC(n)
			c.SetPathCompression(compress)
			edges := gen.ChungLu(n, 20000, 2.3, 1)
			c.InsertBatch(edges[:10000])
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if i%2 == 0 {
						c.InsertBatch(edges[10000:])
					} else {
						c.DeleteBatch(edges[10000:])
					}
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Read(uint32(i % n))
			}
			b.StopTimer()
			close(stop)
			<-done
		})
	}
}
