package cplds

import (
	"testing"

	"kcore/internal/graph"
	"kcore/internal/lds"
)

// FuzzBatchSequences drives the CPLDS with arbitrary interleavings of
// insertion and deletion batches and requires clean invariants and fully
// unmarked descriptors after every batch.
func FuzzBatchSequences(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 2, 3, 1, 0, 1})
	f.Add([]byte{2, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 24
		c := New(n, lds.DefaultParams())
		var batch []graph.Edge
		flushInsert := true
		for i := 0; i+1 < len(data); i += 2 {
			u, v := uint32(data[i])%n, uint32(data[i+1])%n
			batch = append(batch, graph.E(u, v))
			if len(batch) == 6 {
				if flushInsert {
					c.InsertBatch(batch)
				} else {
					c.DeleteBatch(batch)
				}
				flushInsert = !flushInsert
				batch = batch[:0]
				if err := c.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				for v := uint32(0); v < n; v++ {
					if c.IsMarked(v) {
						t.Fatalf("vertex %d marked after batch end", v)
					}
				}
			}
		}
	})
}
