package cplds

import (
	"sync"
	"sync/atomic"
	"testing"

	"kcore/internal/gen"
	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/plds"
)

func newC(n int) *CPLDS { return New(n, lds.DefaultParams()) }

func TestQuiescentReadsMatchLiveEstimates(t *testing.T) {
	const n = 300
	c := newC(n)
	edges := gen.ChungLu(n, 2000, 2.3, 81)
	c.InsertBatch(edges)
	for v := uint32(0); v < n; v++ {
		if c.IsMarked(v) {
			t.Fatalf("vertex %d still marked after batch", v)
		}
		if got, want := c.Read(v), c.ReadNonSync(v); got != want {
			t.Fatalf("quiescent read mismatch at %d: %v vs %v", v, got, want)
		}
		if got, want := c.ReadSync(v), c.ReadNonSync(v); got != want {
			t.Fatalf("quiescent sync read mismatch at %d", v)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchNumberAdvances(t *testing.T) {
	c := newC(10)
	if c.BatchNumber() != 0 {
		t.Fatalf("initial batch number = %d", c.BatchNumber())
	}
	c.InsertBatch([]graph.Edge{graph.E(0, 1)})
	if c.BatchNumber() != 1 {
		t.Fatalf("batch number = %d, want 1", c.BatchNumber())
	}
	c.DeleteBatch([]graph.Edge{graph.E(0, 1)})
	if c.BatchNumber() != 2 {
		t.Fatalf("batch number = %d, want 2", c.BatchNumber())
	}
	// Empty batches still advance the counter (BatchStart always runs).
	c.InsertBatch(nil)
	if c.BatchNumber() != 3 {
		t.Fatalf("batch number = %d, want 3", c.BatchNumber())
	}
}

func TestDescriptorLifecycleAndOldLevels(t *testing.T) {
	const n = 200
	c := newC(n)
	base := gen.ChungLu(n, 1200, 2.3, 82)
	c.InsertBatch(base)
	pre := make([]int32, n)
	for v := uint32(0); v < n; v++ {
		pre[v] = c.P.Level(v)
	}
	var sawMarked int
	c.beforeUnmark = func(kind plds.Kind, marked []uint32) {
		sawMarked = len(marked)
		for _, v := range marked {
			d := c.DescriptorOf(v)
			if d == nil {
				t.Errorf("marked vertex %d has nil descriptor", v)
				continue
			}
			if d.OldLevel() != pre[v] {
				t.Errorf("vertex %d: OldLevel %d != pre-batch level %d", v, d.OldLevel(), pre[v])
			}
			if c.P.Level(v) == pre[v] {
				t.Errorf("marked vertex %d did not actually change level", v)
			}
		}
	}
	more := gen.ChungLu(n, 1200, 2.3, 83)
	c.InsertBatch(more)
	if sawMarked == 0 {
		t.Fatal("no vertices were marked by a dense insertion batch")
	}
	for v := uint32(0); v < n; v++ {
		if c.IsMarked(v) {
			t.Fatalf("vertex %d still marked after batch end", v)
		}
	}
}

func TestDAGRootsAreMinimumAndLemma63(t *testing.T) {
	const n = 300
	c := newC(n)
	c.InsertBatch(gen.ChungLu(n, 1500, 2.3, 84))
	checked := false
	c.beforeUnmark = func(kind plds.Kind, marked []uint32) {
		movedSet := map[uint32]bool{}
		for _, v := range marked {
			movedSet[v] = true
		}
		root := map[uint32]uint32{}
		for _, v := range marked {
			r, ok := c.findRoot(v)
			if !ok {
				t.Errorf("findRoot failed for marked vertex %d", v)
				continue
			}
			root[v] = r
			d := c.DescriptorOf(r)
			if d == nil {
				t.Errorf("root %d of %d is unmarked", r, v)
				continue
			}
			if p, isRoot := d.Parent(); !isRoot {
				t.Errorf("root %d of %d has parent %d", r, v, p)
			}
			if r > v {
				t.Errorf("root %d greater than member %d (deterministic min-link violated)", r, v)
			}
			checked = true
		}
		// Lemma 6.3: no batch edge with both endpoints moved crosses DAGs.
		for _, de := range c.batchDir {
			u, w := de.U, de.V
			if movedSet[u] && movedSet[w] && root[u] != root[w] {
				t.Errorf("batch edge (%d,%d) crosses DAGs: roots %d vs %d",
					u, w, root[u], root[w])
			}
		}
	}
	c.InsertBatch(gen.ChungLu(n, 1500, 2.3, 85))
	if !checked {
		t.Fatal("no DAGs formed")
	}
}

func TestLemma63UnderDeletions(t *testing.T) {
	const n = 300
	c := newC(n)
	edges := gen.ChungLu(n, 2500, 2.3, 86)
	c.InsertBatch(edges)
	var anyMarked atomic.Bool
	c.beforeUnmark = func(kind plds.Kind, marked []uint32) {
		if kind != plds.Delete {
			return
		}
		if len(marked) > 0 {
			anyMarked.Store(true)
		}
		movedSet := map[uint32]bool{}
		for _, v := range marked {
			movedSet[v] = true
		}
		root := map[uint32]uint32{}
		for _, v := range marked {
			if r, ok := c.findRoot(v); ok {
				root[v] = r
			}
		}
		for _, de := range c.batchDir {
			u, w := de.U, de.V
			if movedSet[u] && movedSet[w] && root[u] != root[w] {
				t.Errorf("deleted edge (%d,%d) crosses DAGs", u, w)
			}
		}
	}
	c.DeleteBatch(edges[:len(edges)/2])
	if !anyMarked.Load() {
		t.Fatal("deletion batch marked no vertices")
	}
}

// buildCascade returns a CPLDS and a batch whose insertion forces vertex 0
// (and a cluster around it) to climb several levels: a clique among
// vertices 0..k-1 is inserted in one batch on an empty region.
func buildCascade(n, k int) (*CPLDS, []graph.Edge) {
	c := newC(n)
	var batch []graph.Edge
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			batch = append(batch, graph.E(uint32(i), uint32(j)))
		}
	}
	return c, batch
}

func TestNoIntermediateLevelsVisible(t *testing.T) {
	// The core safety property (§6.3): a concurrent linearizable read never
	// observes an intermediate level, only the pre-batch or post-batch one.
	const n = 64
	const k = 48
	trials := 20
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		c, batch := buildCascade(n, k)
		pre := make([]int32, n)
		for v := range pre {
			pre[v] = c.P.Level(uint32(v)) // all zero
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		type obs struct {
			v     uint32
			level int32
		}
		var mu sync.Mutex
		var observations []obs
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				var local []obs
				for {
					select {
					case <-stop:
						mu.Lock()
						observations = append(observations, local...)
						mu.Unlock()
						return
					default:
					}
					v := uint32((r * 7) % k)
					local = append(local, obs{v, c.ReadLevel(v)})
				}
			}(r)
		}
		c.InsertBatch(batch)
		close(stop)
		wg.Wait()
		post := make([]int32, n)
		for v := range post {
			post[v] = c.P.Level(uint32(v))
		}
		if post[0] == pre[0] {
			t.Fatalf("trial %d: cascade did not move vertex 0", trial)
		}
		for _, o := range observations {
			if o.level != pre[o.v] && o.level != post[o.v] {
				t.Fatalf("trial %d: read of %d returned intermediate level %d (pre %d, post %d)",
					trial, o.v, o.level, pre[o.v], post[o.v])
			}
		}
	}
}

func TestNonSyncDoesObserveIntermediates(t *testing.T) {
	// Sanity check that the previous test has teeth: the NonSync baseline,
	// reading live levels, does observe intermediate levels on the same
	// workload (this is exactly why it is non-linearizable).
	const n = 64
	const k = 48
	trials := 50
	if testing.Short() {
		trials = 10
	}
	sawIntermediate := false
	for trial := 0; trial < trials && !sawIntermediate; trial++ {
		c, batch := buildCascade(n, k)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		var levels []int32
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				levels = append(levels, c.P.Level(0))
			}
		}()
		c.InsertBatch(batch)
		close(stop)
		wg.Wait()
		post := c.P.Level(0)
		for _, l := range levels {
			if l != 0 && l != post {
				sawIntermediate = true
				break
			}
		}
	}
	if !sawIntermediate {
		t.Skip("scheduler never exposed an intermediate level to the NonSync reader; property not falsified")
	}
}

func TestNoNewOldInversion(t *testing.T) {
	// Linearizability across causally dependent vertices: once any reader
	// has seen a post-batch level of any vertex in a dependency DAG, no
	// later read may return a pre-batch level of a vertex in the same DAG.
	// With a single clique batch, all movers belong to one DAG (every batch
	// edge connects movers — Lemma 6.3), so the check applies globally.
	// Within one goroutine, a read is invoked strictly after the previous
	// read responded, so program order is real-time order and the check is
	// sound: once a goroutine has seen a post-batch level of any vertex in
	// the (single, clique-wide) DAG, none of its later reads may return a
	// pre-batch level of another member. Cross-goroutine order cannot be
	// timestamped without instrumenting the reads themselves, so each
	// goroutine is checked independently.
	const n = 64
	const k = 40
	trials := 20
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		c, batch := buildCascade(n, k)
		type obs struct {
			v     uint32
			level int32
		}
		perReader := make([][]obs, 3)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				var local []obs
				for i := 0; ; i++ {
					select {
					case <-stop:
						perReader[r] = local
						return
					default:
					}
					v := uint32((i + r*11) % k)
					local = append(local, obs{v, c.ReadLevel(v)})
				}
			}(r)
		}
		c.InsertBatch(batch)
		close(stop)
		wg.Wait()
		post := make([]int32, n)
		for v := range post {
			post[v] = c.P.Level(uint32(v))
		}
		for r, seq := range perReader {
			sawNew := false
			for i, o := range seq {
				if post[o.v] == 0 {
					continue // vertex did not move; value carries no signal
				}
				switch o.level {
				case post[o.v]:
					sawNew = true
				case 0:
					if sawNew {
						t.Fatalf("trial %d reader %d: new-old inversion at obs %d: vertex %d returned pre-batch level after a post-batch level was observed",
							trial, r, i, o.v)
					}
				}
			}
		}
	}
}

func TestConcurrentReadersManyBatches(t *testing.T) {
	// End-to-end stress under the race detector: continuous linearizable,
	// sync and non-sync readers against a stream of insert and delete
	// batches; afterwards the structure must be unmarked, invariant-clean,
	// and reads must agree with live levels.
	const n = 500
	c := newC(n)
	edges := gen.ChungLu(n, 4000, 2.3, 87)
	us := gen.NewUpdateStream(edges, n, 0.25, 400, 88)
	c.InsertBatch(us.Base)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var reads atomic.Int64
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := gen.NewUniformReads(n, int64(r))
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := w.Next()
				switch r % 3 {
				case 0:
					c.Read(v)
				case 1:
					c.ReadNonSync(v)
				case 2:
					c.ReadSync(v)
				}
				reads.Add(1)
			}
		}(r)
	}
	for _, b := range us.Insertions {
		c.InsertBatch(b)
	}
	for _, b := range us.Deletions {
		c.DeleteBatch(b)
	}
	close(stop)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("no reads completed")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < n; v++ {
		if c.IsMarked(v) {
			t.Fatalf("vertex %d marked after all batches", v)
		}
	}
}

func TestUnionDeterministicRoot(t *testing.T) {
	c := newC(10)
	// Manually mark three vertices (via their pooled descriptors) and
	// union them pairwise.
	for _, v := range []uint32{3, 5, 7} {
		d := &c.pool[v]
		d.word.Store(packWord(c.stamp, Root))
		c.desc[v].Store(d)
	}
	c.union(5, 7)
	c.union(7, 3)
	for _, v := range []uint32{3, 5, 7} {
		r, ok := c.findRoot(v)
		if !ok || r != 3 {
			t.Fatalf("root of %d = %d (ok=%v), want 3", v, r, ok)
		}
	}
	// check_DAG sees all three as marked.
	for _, v := range []uint32{3, 5, 7} {
		if c.checkDAG(c.desc[v].Load()) != Marked {
			t.Fatalf("vertex %d not marked via DAG", v)
		}
	}
	// Unmark the root: all become unmarked via the early-exit rule.
	c.desc[3].Store(nil)
	if c.checkDAG(c.desc[5].Load()) != Unmarked {
		t.Fatal("unmarked root not detected from non-root")
	}
}

func TestCheckDAGPathCompression(t *testing.T) {
	c := newC(10)
	// Chain 0 <- 1 <- 2 (2's parent is 1, 1's parent is 0).
	for _, v := range []uint32{0, 1, 2} {
		d := &c.pool[v]
		d.word.Store(packWord(c.stamp, Root))
		c.desc[v].Store(d)
	}
	c.desc[1].Load().word.Store(packWord(c.stamp, 0))
	c.desc[2].Load().word.Store(packWord(c.stamp, 1))
	if c.checkDAG(c.desc[2].Load()) != Marked {
		t.Fatal("chain should be marked")
	}
	// After checkDAG, vertex 2 should point directly at the root 0.
	if p, _ := c.desc[2].Load().Parent(); p != 0 {
		t.Fatalf("path not compressed: parent of 2 = %d, want 0", p)
	}
}

func TestReadLockFreeUnderIdleSystem(t *testing.T) {
	// With no concurrent batch, a read must complete on the first attempt
	// (trivially, but this pins the fast path).
	c := newC(50)
	c.InsertBatch(gen.ErdosRenyi(50, 200, 89))
	for v := uint32(0); v < 50; v++ {
		got := c.Read(v)
		if got != c.S.EstimateFromLevel(c.P.Level(v)) {
			t.Fatalf("idle read of %d = %v", v, got)
		}
	}
}

func TestSyncReadsBlockDuringBatch(t *testing.T) {
	// ReadSync must not return while a batch is in flight. We verify by
	// observing that a sync read issued mid-batch returns the post-batch
	// estimate, never the pre-batch one, for a vertex that moves.
	const n = 64
	const k = 40
	for trial := 0; trial < 10; trial++ {
		c, batch := buildCascade(n, k)
		started := make(chan struct{})
		var syncLevelEst float64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-started
			syncLevelEst = c.ReadSync(0)
		}()
		c.beforeUnmark = func(plds.Kind, []uint32) {
			// The batch is provably in flight here; release the reader.
			select {
			case <-started:
			default:
				close(started)
			}
		}
		c.InsertBatch(batch)
		wg.Wait()
		want := c.S.EstimateFromLevel(c.P.Level(0))
		if syncLevelEst != want {
			t.Fatalf("trial %d: sync read returned %v, want post-batch %v", trial, syncLevelEst, want)
		}
	}
}

func TestApproximationBoundHeldByReads(t *testing.T) {
	// Estimates returned by quiescent linearizable reads satisfy the same
	// provable bound as the PLDS.
	const n = 400
	c := newC(n)
	edges := gen.ChungLu(n, 3000, 2.3, 90)
	for _, b := range gen.Batches(edges, 500) {
		c.InsertBatch(b)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLinearizableRead(b *testing.B) {
	const n = 10000
	c := newC(n)
	c.InsertBatch(gen.ChungLu(n, 50000, 2.4, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(uint32(i % n))
	}
}

func BenchmarkReadDuringBatch(b *testing.B) {
	const n = 10000
	c := newC(n)
	edges := gen.ChungLu(n, 60000, 2.4, 2)
	c.InsertBatch(edges[:30000])
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				c.DeleteBatch(edges[30000:])
			} else {
				c.InsertBatch(edges[30000:])
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(uint32(i % n))
	}
	b.StopTimer()
	close(stop)
	<-done
}
