// Package stats provides the measurement plumbing for the experiment
// harness: latency recorders with percentile queries (average, P99,
// P99.99 as reported in the paper's Figs. 3–4), throughput accounting, and
// the ratio-error metric of Fig. 6.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// LatencyRecorder accumulates individual operation latencies. It is NOT
// safe for concurrent use: give each reader goroutine its own recorder and
// Merge them afterwards (this also keeps the measurement path allocation-
// and contention-free, which matters when measuring sub-microsecond reads).
type LatencyRecorder struct {
	samples []time.Duration
}

// NewLatencyRecorder returns a recorder with the given initial capacity.
func NewLatencyRecorder(capacity int) *LatencyRecorder {
	return &LatencyRecorder{samples: make([]time.Duration, 0, capacity)}
}

// Record adds one latency sample.
func (r *LatencyRecorder) Record(d time.Duration) { r.samples = append(r.samples, d) }

// Count returns the number of samples recorded.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Merge appends all samples from other into r.
func (r *LatencyRecorder) Merge(other *LatencyRecorder) {
	r.samples = append(r.samples, other.samples...)
}

// Summary holds the latency statistics the paper reports.
type Summary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	P9999 time.Duration // 99.99th percentile
	Max   time.Duration
}

// Summarize computes the summary statistics; it sorts the samples in place.
func (r *LatencyRecorder) Summarize() Summary {
	n := len(r.samples)
	if n == 0 {
		return Summary{}
	}
	sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
	var total time.Duration
	for _, s := range r.samples {
		total += s
	}
	return Summary{
		Count: n,
		Mean:  total / time.Duration(n),
		P50:   r.samples[percentileIndex(n, 50)],
		P99:   r.samples[percentileIndex(n, 99)],
		P9999: r.samples[percentileIndex(n, 99.99)],
		Max:   r.samples[n-1],
	}
}

// percentileIndex returns the index of the p-th percentile (nearest-rank).
func percentileIndex(n int, p float64) int {
	i := int(math.Ceil(p/100*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P99, s.P9999, s.Max)
}

// RatioError is the paper's Fig. 6 error metric: max(est/k, k/est) with
// both sides clamped below at 1 so that zero-coreness vertices contribute a
// well-defined error of max(est, 1).
func RatioError(est float64, k int32) float64 {
	kk := math.Max(float64(k), 1)
	ee := math.Max(est, 1)
	return math.Max(ee/kk, kk/ee)
}

// MinRatioError returns the smaller of the errors against two ground
// truths. The paper takes the minimum of the errors against the coreness at
// the beginning and at the end of the batch, since a linearizable read may
// legitimately reflect either boundary.
func MinRatioError(est float64, kPre, kPost int32) float64 {
	return math.Min(RatioError(est, kPre), RatioError(est, kPost))
}

// ErrorAccumulator tracks the average and maximum of an error series.
type ErrorAccumulator struct {
	sum   float64
	max   float64
	count int
}

// Add records one error value.
func (e *ErrorAccumulator) Add(err float64) {
	e.sum += err
	if err > e.max {
		e.max = err
	}
	e.count++
}

// MergeFrom folds another accumulator into this one.
func (e *ErrorAccumulator) MergeFrom(o *ErrorAccumulator) {
	e.sum += o.sum
	if o.max > e.max {
		e.max = o.max
	}
	e.count += o.count
}

// Count returns the number of recorded values.
func (e *ErrorAccumulator) Count() int { return e.count }

// Mean returns the average error (1 if nothing was recorded, the metric's
// floor).
func (e *ErrorAccumulator) Mean() float64 {
	if e.count == 0 {
		return 1
	}
	return e.sum / float64(e.count)
}

// Max returns the maximum error (1 if nothing was recorded).
func (e *ErrorAccumulator) Max() float64 {
	if e.count == 0 {
		return 1
	}
	return e.max
}

// Throughput converts an operation count over an elapsed duration into
// operations per second.
func Throughput(ops int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}
