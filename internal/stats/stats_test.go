package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasic(t *testing.T) {
	r := NewLatencyRecorder(0)
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	s := r.Summarize()
	if s.Count != 100 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Mean != 50500*time.Nanosecond {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.P50 != 50*time.Microsecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P99 != 99*time.Microsecond {
		t.Fatalf("P99 = %v", s.P99)
	}
	if s.P9999 != 100*time.Microsecond {
		t.Fatalf("P99.99 = %v", s.P9999)
	}
	if s.Max != 100*time.Microsecond {
		t.Fatalf("Max = %v", s.Max)
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

func TestSummaryEmpty(t *testing.T) {
	r := NewLatencyRecorder(4)
	s := r.Summarize()
	if s.Count != 0 || s.Mean != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarySingle(t *testing.T) {
	r := NewLatencyRecorder(1)
	r.Record(7 * time.Millisecond)
	s := r.Summarize()
	if s.Mean != 7*time.Millisecond || s.P99 != 7*time.Millisecond || s.P9999 != 7*time.Millisecond {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestMerge(t *testing.T) {
	a := NewLatencyRecorder(0)
	b := NewLatencyRecorder(0)
	a.Record(time.Microsecond)
	b.Record(3 * time.Microsecond)
	a.Merge(b)
	if a.Count() != 2 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if s := a.Summarize(); s.Mean != 2*time.Microsecond {
		t.Fatalf("merged mean = %v", s.Mean)
	}
}

func TestPercentileIndexProperty(t *testing.T) {
	f := func(n uint16, p uint8) bool {
		nn := int(n)%10000 + 1
		pp := float64(p % 101)
		i := percentileIndex(nn, pp)
		return i >= 0 && i < nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatioError(t *testing.T) {
	if got := RatioError(10, 5); got != 2 {
		t.Fatalf("RatioError(10,5) = %v", got)
	}
	if got := RatioError(5, 10); got != 2 {
		t.Fatalf("RatioError(5,10) = %v", got)
	}
	if got := RatioError(7, 7); got != 1 {
		t.Fatalf("exact estimate error = %v", got)
	}
	// Zero coreness clamps to 1.
	if got := RatioError(3, 0); got != 3 {
		t.Fatalf("RatioError(3,0) = %v", got)
	}
	if got := RatioError(0.5, 0); got != 1 {
		t.Fatalf("RatioError(0.5,0) = %v (both sides clamp to 1)", got)
	}
}

func TestRatioErrorAlwaysAtLeastOne(t *testing.T) {
	f := func(est float64, k int32) bool {
		if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
			return true
		}
		return RatioError(est, k) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinRatioError(t *testing.T) {
	// est=8, pre=8 (error 1), post=2 (error 4): min is 1.
	if got := MinRatioError(8, 8, 2); got != 1 {
		t.Fatalf("MinRatioError = %v", got)
	}
	if got := MinRatioError(8, 2, 4); got != 2 {
		t.Fatalf("MinRatioError = %v", got)
	}
}

func TestErrorAccumulator(t *testing.T) {
	var e ErrorAccumulator
	if e.Mean() != 1 || e.Max() != 1 {
		t.Fatal("empty accumulator should floor at 1")
	}
	e.Add(1)
	e.Add(3)
	if e.Mean() != 2 || e.Max() != 3 || e.Count() != 2 {
		t.Fatalf("acc = mean %v max %v count %d", e.Mean(), e.Max(), e.Count())
	}
	var f ErrorAccumulator
	f.Add(5)
	e.MergeFrom(&f)
	if e.Max() != 5 || e.Count() != 3 {
		t.Fatalf("after merge: max %v count %d", e.Max(), e.Count())
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(500, 250*time.Millisecond); got != 2000 {
		t.Fatalf("Throughput = %v", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("zero-duration throughput = %v", got)
	}
}
