package trace

import (
	"fmt"
	"time"

	"kcore/internal/cplds"
	"kcore/internal/lds"
	"kcore/internal/shard"
	"kcore/internal/stats"
)

// ReplayResult reports the outcome of replaying a trace.
type ReplayResult struct {
	Ops          int
	EdgesApplied int64
	UpdateTime   time.Duration
	ReadLat      stats.Summary
	FinalEdges   int64
}

// replayTarget is the operation surface replay drives: the single CPLDS
// and the sharded engine both adapt to it.
type replayTarget struct {
	insert func(op Op) int
	delete func(op Op) int
	read   func(v uint32) float64
	edges  func() int64
	check  func() error
}

// replay runs the trace against one target, timing update batches and
// individual reads. Reads within a probe run on the replaying goroutine
// (sequential replay reproduces the recorded operation order exactly).
func replay(t *Trace, tgt replayTarget) (ReplayResult, error) {
	var res ReplayResult
	rec := stats.NewLatencyRecorder(1 << 12)
	for i, op := range t.Ops {
		switch op.Kind {
		case OpInsert:
			t0 := time.Now()
			res.EdgesApplied += int64(tgt.insert(op))
			res.UpdateTime += time.Since(t0)
		case OpDelete:
			t0 := time.Now()
			res.EdgesApplied += int64(tgt.delete(op))
			res.UpdateTime += time.Since(t0)
		case OpRead:
			for _, v := range op.Vertices {
				if int(v) >= t.NumVertices {
					return res, fmt.Errorf("trace: read of out-of-range vertex %d at op %d", v, i)
				}
				t0 := time.Now()
				tgt.read(v)
				rec.Record(time.Since(t0))
			}
		default:
			return res, fmt.Errorf("trace: unknown op kind %d at op %d", op.Kind, i)
		}
		res.Ops++
	}
	res.ReadLat = rec.Summarize()
	res.FinalEdges = tgt.edges()
	if err := tgt.check(); err != nil {
		return res, fmt.Errorf("trace: invariants violated after replay: %w", err)
	}
	return res, nil
}

// Replay runs a trace against a fresh single CPLDS.
func Replay(t *Trace, params lds.Params) (ReplayResult, error) {
	c := cplds.New(t.NumVertices, params)
	return replay(t, replayTarget{
		insert: func(op Op) int { return c.InsertBatch(op.Edges) },
		delete: func(op Op) int { return c.DeleteBatch(op.Edges) },
		read:   c.Read,
		edges:  func() int64 { return c.Graph().NumEdges() },
		check:  c.CheckInvariants,
	})
}

// ReplayShards runs a trace against a fresh sharded engine with the given
// shard count: updates go through the batch-coalescing scheduler (one
// sequential submitter, so the replay is deterministic), reads through the
// owning shard's lock-free protocol. shards < 2 replays against a 1-shard
// engine.
func ReplayShards(t *Trace, params lds.Params, shards int) (ReplayResult, error) {
	e := shard.New(t.NumVertices, shards, params)
	return replay(t, replayTarget{
		insert: func(op Op) int { return e.Insert(op.Edges) },
		delete: func(op Op) int { return e.Delete(op.Edges) },
		read:   e.Read,
		edges:  e.NumEdges,
		check:  e.CheckInvariants,
	})
}
