package trace

import (
	"fmt"
	"time"

	"kcore/internal/cplds"
	"kcore/internal/lds"
	"kcore/internal/stats"
)

// ReplayResult reports the outcome of replaying a trace.
type ReplayResult struct {
	Ops          int
	EdgesApplied int64
	UpdateTime   time.Duration
	ReadLat      stats.Summary
	FinalEdges   int64
}

// Replay runs a trace against a fresh CPLDS, timing update batches and
// individual reads. Reads within a probe run on the replaying goroutine
// (sequential replay reproduces the recorded operation order exactly).
func Replay(t *Trace, params lds.Params) (ReplayResult, error) {
	c := cplds.New(t.NumVertices, params)
	var res ReplayResult
	rec := stats.NewLatencyRecorder(1 << 12)
	for i, op := range t.Ops {
		switch op.Kind {
		case OpInsert:
			t0 := time.Now()
			res.EdgesApplied += int64(c.InsertBatch(op.Edges))
			res.UpdateTime += time.Since(t0)
		case OpDelete:
			t0 := time.Now()
			res.EdgesApplied += int64(c.DeleteBatch(op.Edges))
			res.UpdateTime += time.Since(t0)
		case OpRead:
			for _, v := range op.Vertices {
				if int(v) >= t.NumVertices {
					return res, fmt.Errorf("trace: read of out-of-range vertex %d at op %d", v, i)
				}
				t0 := time.Now()
				c.Read(v)
				rec.Record(time.Since(t0))
			}
		default:
			return res, fmt.Errorf("trace: unknown op kind %d at op %d", op.Kind, i)
		}
		res.Ops++
	}
	res.ReadLat = rec.Summarize()
	res.FinalEdges = c.Graph().NumEdges()
	if err := c.CheckInvariants(); err != nil {
		return res, fmt.Errorf("trace: invariants violated after replay: %w", err)
	}
	return res, nil
}
