// Package trace provides recording, serialization and replay of update/read
// workloads against the k-core structures.
//
// A trace is a sequence of operations — insertion batches, deletion batches
// and read probes — with a fixed vertex universe. Traces serialize to a
// compact binary format (little-endian, versioned) so that workloads can be
// captured once and replayed reproducibly across implementations and
// machines, the same role the paper's experiment scripts play for GBBS.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"kcore/internal/gen"
	"kcore/internal/graph"
)

// OpKind identifies a trace operation.
type OpKind uint8

const (
	// OpInsert applies a batch of edge insertions.
	OpInsert OpKind = 1
	// OpDelete applies a batch of edge deletions.
	OpDelete OpKind = 2
	// OpRead probes the coreness of a set of vertices.
	OpRead OpKind = 3
)

// Op is one trace operation: a batch of edges for updates, or a list of
// vertices for reads.
type Op struct {
	Kind     OpKind
	Edges    []graph.Edge // OpInsert / OpDelete
	Vertices []uint32     // OpRead
}

// Trace is a replayable workload over a fixed vertex universe.
type Trace struct {
	NumVertices int
	Ops         []Op
}

const (
	magic   = uint32(0x6b636f72) // "kcor"
	version = uint32(1)
)

// Write serializes the trace in the binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, v := range []uint32{magic, version, uint32(t.NumVertices), uint32(len(t.Ops))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, op := range t.Ops {
		if err := binary.Write(bw, binary.LittleEndian, uint8(op.Kind)); err != nil {
			return err
		}
		switch op.Kind {
		case OpInsert, OpDelete:
			if err := binary.Write(bw, binary.LittleEndian, uint32(len(op.Edges))); err != nil {
				return err
			}
			for _, e := range op.Edges {
				if err := binary.Write(bw, binary.LittleEndian, [2]uint32{e.U, e.V}); err != nil {
					return err
				}
			}
		case OpRead:
			if err := binary.Write(bw, binary.LittleEndian, uint32(len(op.Vertices))); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, op.Vertices); err != nil {
				return err
			}
		default:
			return fmt.Errorf("trace: unknown op kind %d", op.Kind)
		}
	}
	return bw.Flush()
}

// maxPrealloc caps how many elements any single allocation trusts from an
// on-disk count. Counts are validated by actually reading the data: larger
// collections grow as their bytes arrive, so a corrupt or hostile header
// claiming 4 billion edges fails with a short-read error instead of
// attempting a multi-gigabyte allocation. (The WAL reader shares this
// decode discipline.)
const maxPrealloc = 1 << 16

// ReadFrom deserializes a trace written by Write.
func ReadFrom(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("trace: short header: %w", err)
		}
	}
	if hdr[0] != magic {
		return nil, fmt.Errorf("trace: bad magic %#x", hdr[0])
	}
	if hdr[1] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", hdr[1])
	}
	t := &Trace{NumVertices: int(hdr[2]), Ops: make([]Op, 0, min(hdr[3], maxPrealloc))}
	for i := uint32(0); i < hdr[3]; i++ {
		var kind uint8
		if err := binary.Read(br, binary.LittleEndian, &kind); err != nil {
			return nil, fmt.Errorf("trace: op %d: %w", i, err)
		}
		var count uint32
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("trace: op %d count: %w", i, err)
		}
		op := Op{Kind: OpKind(kind)}
		switch op.Kind {
		case OpInsert, OpDelete:
			op.Edges = make([]graph.Edge, 0, min(count, maxPrealloc))
			for j := uint32(0); j < count; j++ {
				var uv [2]uint32
				if err := binary.Read(br, binary.LittleEndian, &uv); err != nil {
					return nil, fmt.Errorf("trace: op %d edge %d: %w", i, j, err)
				}
				op.Edges = append(op.Edges, graph.Edge{U: uv[0], V: uv[1]})
			}
		case OpRead:
			op.Vertices = make([]uint32, 0, min(count, maxPrealloc))
			for read := uint32(0); read < count; {
				chunk := make([]uint32, min(count-read, maxPrealloc))
				if err := binary.Read(br, binary.LittleEndian, chunk); err != nil {
					return nil, fmt.Errorf("trace: op %d vertices: %w", i, err)
				}
				op.Vertices = append(op.Vertices, chunk...)
				read += uint32(len(chunk))
			}
		default:
			return nil, fmt.Errorf("trace: op %d: unknown kind %d", i, kind)
		}
		t.Ops = append(t.Ops, op)
	}
	return t, nil
}

// Synthesize builds a trace from a dataset profile: the edges are split
// into insertion batches, each followed by a read probe of readsPerBatch
// uniform vertices; deleteFrac of each batch's edges are deleted again two
// batches later, mimicking a churning production workload.
func Synthesize(profile string, batchSize, readsPerBatch int, deleteFrac float64, seed int64) (*Trace, error) {
	edges, n, err := gen.DatasetByName(profile)
	if err != nil {
		return nil, err
	}
	sh := gen.Shuffle(edges, seed)
	reads := gen.NewUniformReads(n, seed+1)
	t := &Trace{NumVertices: n}
	var pendingDelete [][]graph.Edge
	for lo := 0; lo < len(sh); lo += batchSize {
		hi := lo + batchSize
		if hi > len(sh) {
			hi = len(sh)
		}
		batch := sh[lo:hi]
		t.Ops = append(t.Ops, Op{Kind: OpInsert, Edges: batch})
		if readsPerBatch > 0 {
			probe := make([]uint32, readsPerBatch)
			for i := range probe {
				probe[i] = reads.Next()
			}
			t.Ops = append(t.Ops, Op{Kind: OpRead, Vertices: probe})
		}
		if deleteFrac > 0 {
			nd := int(float64(len(batch)) * deleteFrac)
			pendingDelete = append(pendingDelete, batch[:nd])
			if len(pendingDelete) > 2 {
				t.Ops = append(t.Ops, Op{Kind: OpDelete, Edges: pendingDelete[0]})
				pendingDelete = pendingDelete[1:]
			}
		}
	}
	for _, d := range pendingDelete {
		t.Ops = append(t.Ops, Op{Kind: OpDelete, Edges: d})
	}
	return t, nil
}

// Stats summarizes a trace.
type Stats struct {
	Inserts, Deletes, ReadProbes int
	InsertEdges, DeleteEdges     int64
	Reads                        int64
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Stats {
	var s Stats
	for _, op := range t.Ops {
		switch op.Kind {
		case OpInsert:
			s.Inserts++
			s.InsertEdges += int64(len(op.Edges))
		case OpDelete:
			s.Deletes++
			s.DeleteEdges += int64(len(op.Edges))
		case OpRead:
			s.ReadProbes++
			s.Reads += int64(len(op.Vertices))
		}
	}
	return s
}
