package trace

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/shard"
)

func sampleTrace() *Trace {
	return &Trace{
		NumVertices: 10,
		Ops: []Op{
			{Kind: OpInsert, Edges: []graph.Edge{graph.E(0, 1), graph.E(1, 2)}},
			{Kind: OpRead, Vertices: []uint32{0, 5, 9}},
			{Kind: OpDelete, Edges: []graph.Edge{graph.E(0, 1)}},
			{Kind: OpRead, Vertices: []uint32{1}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", orig, back)
	}
}

func TestReadFromErrors(t *testing.T) {
	// Truncated header.
	if _, err := ReadFrom(strings.NewReader("xx")); err == nil {
		t.Fatal("want error for truncated header")
	}
	// Bad magic.
	var buf bytes.Buffer
	buf.Write(make([]byte, 16))
	if _, err := ReadFrom(&buf); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want magic error, got %v", err)
	}
	// Truncated body.
	var ok bytes.Buffer
	if err := sampleTrace().Write(&ok); err != nil {
		t.Fatal(err)
	}
	trunc := ok.Bytes()[:ok.Len()-3]
	if _, err := ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("want error for truncated body")
	}
}

func TestReadFromHugeCountFailsCleanly(t *testing.T) {
	// A corrupt or hostile header claiming 4 billion edges with no body
	// must fail on the short read, not attempt a 32 GiB allocation.
	writeHeader := func(buf *bytes.Buffer, kind OpKind) {
		binary.Write(buf, binary.LittleEndian, []uint32{magic, version, 10, 1})
		buf.WriteByte(byte(kind))
		binary.Write(buf, binary.LittleEndian, uint32(0xffffffff))
	}
	for _, kind := range []OpKind{OpInsert, OpDelete, OpRead} {
		var buf bytes.Buffer
		writeHeader(&buf, kind)
		if _, err := ReadFrom(&buf); err == nil {
			t.Fatalf("kind %d: want error for huge count with empty body", kind)
		}
	}
	// Same discipline for the op count itself.
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, []uint32{magic, version, 10, 0xffffffff})
	if _, err := ReadFrom(&buf); err == nil {
		t.Fatal("want error for huge op count with empty body")
	}
}

func TestWriteUnknownOpKind(t *testing.T) {
	bad := &Trace{NumVertices: 1, Ops: []Op{{Kind: 99}}}
	if err := bad.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("want error for unknown kind")
	}
}

func TestSynthesize(t *testing.T) {
	tr, err := Synthesize("tiny", 500, 20, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if s.Inserts == 0 || s.ReadProbes == 0 || s.Deletes == 0 {
		t.Fatalf("missing op kinds: %+v", s)
	}
	// All inserted edges appear; deleted edges were previously inserted.
	if s.DeleteEdges == 0 || s.DeleteEdges > s.InsertEdges {
		t.Fatalf("delete/insert edge counts: %+v", s)
	}
	if s.Reads != int64(s.ReadProbes)*20 {
		t.Fatalf("reads = %d, want %d", s.Reads, s.ReadProbes*20)
	}
	if _, err := Synthesize("bogus", 500, 20, 0, 5); err == nil {
		t.Fatal("want error for bogus profile")
	}
}

func TestReplay(t *testing.T) {
	tr, err := Synthesize("tiny", 1000, 50, 0.2, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(tr, lds.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != len(tr.Ops) {
		t.Fatalf("replayed %d/%d ops", res.Ops, len(tr.Ops))
	}
	if res.ReadLat.Count == 0 {
		t.Fatal("no reads replayed")
	}
	if res.EdgesApplied == 0 || res.FinalEdges == 0 {
		t.Fatalf("edge accounting: %+v", res)
	}
	if res.UpdateTime <= 0 {
		t.Fatal("no update time recorded")
	}
}

func TestReplayRejectsOutOfRangeRead(t *testing.T) {
	tr := &Trace{NumVertices: 3, Ops: []Op{{Kind: OpRead, Vertices: []uint32{7}}}}
	if _, err := Replay(tr, lds.DefaultParams()); err == nil {
		t.Fatal("want error for out-of-range read")
	}
}

func TestReplayDeterministicFinalState(t *testing.T) {
	tr, err := Synthesize("tiny", 800, 10, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Replay(tr, lds.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(tr, lds.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalEdges != b.FinalEdges || a.EdgesApplied != b.EdgesApplied {
		t.Fatalf("replay nondeterministic: %+v vs %+v", a, b)
	}
}

// TestReplayShards replays a churning trace through the sharded engine and
// asserts the replayed coreness state matches a fresh sharded build of the
// same trace at the same epoch — replay is a sequential submitter, so both
// runs commit the identical batch sequence. It also cross-checks the
// single-engine replay: a 1-shard engine must agree with the plain CPLDS
// replay edge-for-edge.
func TestReplayShards(t *testing.T) {
	tr, err := Synthesize("tiny", 800, 25, 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Replay(tr, lds.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		res, err := ReplayShards(tr, lds.DefaultParams(), shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Ops != len(tr.Ops) {
			t.Fatalf("shards=%d: replayed %d/%d ops", shards, res.Ops, len(tr.Ops))
		}
		if res.FinalEdges != single.FinalEdges {
			t.Fatalf("shards=%d: final edges %d, single-engine replay %d",
				shards, res.FinalEdges, single.FinalEdges)
		}
		if res.ReadLat.Count != single.ReadLat.Count {
			t.Fatalf("shards=%d: %d reads, want %d", shards, res.ReadLat.Count, single.ReadLat.Count)
		}

		// Fresh build: apply the trace's updates again (no timing, no reads)
		// and compare the full pinned coreness vector at the same epoch.
		replayed := shard.New(tr.NumVertices, shards, lds.DefaultParams())
		fresh := shard.New(tr.NumVertices, shards, lds.DefaultParams())
		for _, op := range tr.Ops {
			switch op.Kind {
			case OpInsert:
				replayed.Insert(op.Edges)
				fresh.Insert(op.Edges)
			case OpDelete:
				replayed.Delete(op.Edges)
				fresh.Delete(op.Edges)
			}
		}
		if re, fe := replayed.Epoch(), fresh.Epoch(); re != fe {
			t.Fatalf("shards=%d: replayed epoch %d != fresh-build epoch %d", shards, re, fe)
		}
		a := make([]float64, tr.NumVertices)
		b := make([]float64, tr.NumVertices)
		ea := replayed.ReadAllPinned(a)
		eb := fresh.ReadAllPinned(b)
		if ea != eb {
			t.Fatalf("shards=%d: pinned epochs differ: %d vs %d", shards, ea, eb)
		}
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("shards=%d: replayed coreness of %d = %v, fresh build %v", shards, v, a[v], b[v])
			}
		}
	}
}
