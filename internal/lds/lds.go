package lds

import (
	"fmt"

	"kcore/internal/graph"
)

// LDS is the sequential level data structure. It maintains a level for
// every vertex under single edge insertions and deletions such that both
// invariants hold after every operation, yielding a
// (2+3/λ)(1+δ)-approximate coreness estimate per vertex.
//
// It is the reference implementation: the parallel PLDS and concurrent
// CPLDS are validated against its invariant checker and approximation
// bounds. It is not safe for concurrent use.
type LDS struct {
	S     *Structure
	g     *graph.Dynamic
	level []int32
	up    []int32 // up[v] = |{w ∈ N(v) : level[w] >= level[v]}|
}

// New returns an empty LDS over n vertices with the given parameters.
func New(n int, p Params) *LDS {
	s := NewStructure(n, p)
	return &LDS{
		S:     s,
		g:     graph.NewDynamic(n),
		level: make([]int32, n),
		up:    make([]int32, n),
	}
}

// NumVertices returns the number of vertices.
func (l *LDS) NumVertices() int { return len(l.level) }

// Graph exposes the underlying dynamic graph (read-only use).
func (l *LDS) Graph() *graph.Dynamic { return l.g }

// Level returns the current level of v.
func (l *LDS) Level(v uint32) int32 { return l.level[v] }

// Estimate returns the coreness estimate of v.
func (l *LDS) Estimate(v uint32) float64 {
	return l.S.EstimateFromLevel(l.level[v])
}

// countAtLeast returns |{w ∈ N(v) : level[w] >= x}|.
func (l *LDS) countAtLeast(v uint32, x int32) int32 {
	var c int32
	l.g.Neighbors(v, func(w uint32) bool {
		if l.level[w] >= x {
			c++
		}
		return true
	})
	return c
}

// countAt returns |{w ∈ N(v) : level[w] == x}|.
func (l *LDS) countAt(v uint32, x int32) int32 {
	var c int32
	l.g.Neighbors(v, func(w uint32) bool {
		if l.level[w] == x {
			c++
		}
		return true
	})
	return c
}

// violatesInv1 reports whether v breaks the degree upper bound at its
// current level.
func (l *LDS) violatesInv1(v uint32) bool {
	lv := l.level[v]
	if lv >= l.S.MaxLevel() {
		return false
	}
	return float64(l.up[v]) > l.S.UpperBound(lv)
}

// violatesInv2 reports whether v breaks the degree lower bound at its
// current level.
func (l *LDS) violatesInv2(v uint32) bool {
	lv := l.level[v]
	if lv == 0 {
		return false
	}
	cnt := l.up[v] + l.countAt(v, lv-1)
	return float64(cnt) < l.S.LowerBound(lv)
}

// moveUp raises v one level, maintaining the up counters of v and its
// neighbours, and returns the neighbours whose up counter grew (the only
// vertices whose Invariant 1 status can have changed).
func (l *LDS) moveUp(v uint32) []uint32 {
	old := l.level[v]
	nw := old + 1
	var touched []uint32
	l.g.Neighbors(v, func(w uint32) bool {
		if l.level[w] == nw {
			l.up[w]++
			touched = append(touched, w)
		}
		return true
	})
	l.up[v] -= l.countAt(v, old)
	l.level[v] = nw
	return touched
}

// moveDown lowers v one level, maintaining up counters, and returns the
// neighbours whose Invariant 2 counts may have dropped.
func (l *LDS) moveDown(v uint32) []uint32 {
	old := l.level[v]
	nw := old - 1
	var touched []uint32
	l.g.Neighbors(v, func(w uint32) bool {
		switch l.level[w] {
		case old:
			// v leaves w's up set (w at old: v drops below).
			l.up[w]--
			touched = append(touched, w)
		case old + 1:
			// v leaves w's Z_{ℓ(w)-1} set: Invariant 2 risk for w.
			touched = append(touched, w)
		}
		return true
	})
	l.up[v] += l.countAt(v, nw)
	l.level[v] = nw
	return touched
}

// fixup restores both invariants starting from the given dirty vertices.
func (l *LDS) fixup(dirty []uint32) {
	work := append([]uint32(nil), dirty...)
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for {
			if l.violatesInv1(v) {
				work = append(work, l.moveUp(v)...)
			} else if l.violatesInv2(v) {
				work = append(work, l.moveDown(v)...)
			} else {
				break
			}
		}
	}
}

// InsertEdge inserts the undirected edge (u, v) and restores the
// invariants. Duplicate edges and self-loops are no-ops returning false.
func (l *LDS) InsertEdge(u, v uint32) bool {
	if u == v || l.g.HasEdge(u, v) {
		return false
	}
	fresh := l.g.InsertEdges([]graph.Edge{{U: u, V: v}})
	if len(fresh) == 0 {
		return false
	}
	if l.level[v] >= l.level[u] {
		l.up[u]++
	}
	if l.level[u] >= l.level[v] {
		l.up[v]++
	}
	l.fixup([]uint32{u, v})
	return true
}

// DeleteEdge removes the undirected edge (u, v) and restores the
// invariants. Missing edges are no-ops returning false.
func (l *LDS) DeleteEdge(u, v uint32) bool {
	if u == v || !l.g.HasEdge(u, v) {
		return false
	}
	l.g.DeleteEdges([]graph.Edge{{U: u, V: v}})
	if l.level[v] >= l.level[u] {
		l.up[u]--
	}
	if l.level[u] >= l.level[v] {
		l.up[v]--
	}
	l.fixup([]uint32{u, v})
	return true
}

// CheckInvariants verifies both LDS invariants and the up-counter cache for
// every vertex, returning a descriptive error on the first violation. It is
// the main test oracle for all level-structure implementations.
func (l *LDS) CheckInvariants() error {
	return CheckInvariants(l.S, l.g, func(v uint32) int32 { return l.level[v] }, func(v uint32) int32 { return l.up[v] })
}

// CheckInvariants verifies the two LDS invariants for an arbitrary level
// assignment over graph g, plus (when upFn is non-nil) that the cached up
// counters match a fresh count. Shared by the LDS, PLDS and CPLDS tests.
func CheckInvariants(s *Structure, g *graph.Dynamic, levelFn func(uint32) int32, upFn func(uint32) int32) error {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		vv := uint32(v)
		lv := levelFn(vv)
		if lv < 0 || lv > s.MaxLevel() {
			return fmt.Errorf("vertex %d at invalid level %d", v, lv)
		}
		var upCnt, lowCnt int32
		g.Neighbors(vv, func(w uint32) bool {
			lw := levelFn(w)
			if lw >= lv {
				upCnt++
			}
			if lw >= lv-1 {
				lowCnt++
			}
			return true
		})
		if upFn != nil && upFn(vv) != upCnt {
			return fmt.Errorf("vertex %d: cached up=%d, actual %d", v, upFn(vv), upCnt)
		}
		if lv < s.MaxLevel() && float64(upCnt) > s.UpperBound(lv) {
			return fmt.Errorf("vertex %d at level %d violates Invariant 1: up=%d > %.2f",
				v, lv, upCnt, s.UpperBound(lv))
		}
		if lv > 0 && float64(lowCnt) < s.LowerBound(lv) {
			return fmt.Errorf("vertex %d at level %d violates Invariant 2: cnt=%d < %.2f",
				v, lv, lowCnt, s.LowerBound(lv))
		}
	}
	return nil
}
