package lds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kcore/internal/exact"
	"kcore/internal/gen"
	"kcore/internal/graph"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{Delta: 0, Lambda: 9}).Validate(); err == nil {
		t.Fatal("want error for Delta=0")
	}
	if err := (Params{Delta: 0.2, Lambda: 0}).Validate(); err == nil {
		t.Fatal("want error for Lambda=0")
	}
}

func TestApproxFactor(t *testing.T) {
	got := DefaultParams().ApproxFactor()
	if math.Abs(got-2.8) > 1e-9 {
		t.Fatalf("ApproxFactor = %v, want 2.8", got)
	}
}

func TestStructureGeometry(t *testing.T) {
	s := NewStructure(1000, DefaultParams())
	// log_{1.2} 1000 ≈ 37.9 → lpg = 4*38 = 152, groups = 39.
	if s.LevelsPerGroup != 152 {
		t.Fatalf("LevelsPerGroup = %d, want 152", s.LevelsPerGroup)
	}
	if s.NumGroups != 39 {
		t.Fatalf("NumGroups = %d, want 39", s.NumGroups)
	}
	if s.K != 152*39 {
		t.Fatalf("K = %d", s.K)
	}
	if s.GroupOfLevel(0) != 0 || s.GroupOfLevel(151) != 0 || s.GroupOfLevel(152) != 1 {
		t.Fatal("GroupOfLevel boundaries wrong")
	}
}

func TestStructureBounds(t *testing.T) {
	s := NewStructure(1000, DefaultParams())
	// Group 0: upper = 2+3/9 = 2.333…, lower = 1.
	if math.Abs(s.UpperBound(0)-(2+1.0/3)) > 1e-9 {
		t.Fatalf("UpperBound(level 0) = %v", s.UpperBound(0))
	}
	if s.LowerBound(0) != 0 {
		t.Fatalf("LowerBound(level 0) = %v, want 0", s.LowerBound(0))
	}
	if math.Abs(s.LowerBound(1)-1.0) > 1e-9 {
		t.Fatalf("LowerBound(level 1) = %v, want 1 (group of level 0)", s.LowerBound(1))
	}
	// Level lpg+1 has ℓ−1 = lpg in group 1: lower bound 1.2.
	if math.Abs(s.LowerBound(int32(s.LevelsPerGroup+1))-1.2) > 1e-9 {
		t.Fatalf("LowerBound(lpg+1) = %v, want 1.2", s.LowerBound(int32(s.LevelsPerGroup+1)))
	}
}

func TestEstimateFromLevel(t *testing.T) {
	s := NewStructure(1000, DefaultParams())
	if got := s.EstimateFromLevel(0); got != 1 {
		t.Fatalf("estimate at level 0 = %v", got)
	}
	// Below one full group the estimate stays (1+δ)^0 = 1.
	if got := s.EstimateFromLevel(int32(s.LevelsPerGroup - 2)); got != 1 {
		t.Fatalf("estimate below group boundary = %v", got)
	}
	// At ℓ = 2*lpg−1: ⌊2*lpg/lpg⌋−1 = 1 → (1+δ)^1.
	if got := s.EstimateFromLevel(int32(2*s.LevelsPerGroup - 1)); math.Abs(got-1.2) > 1e-9 {
		t.Fatalf("estimate at second boundary = %v, want 1.2", got)
	}
	// Monotone non-decreasing in level.
	prev := 0.0
	for l := int32(0); l < int32(s.K); l++ {
		e := s.EstimateFromLevel(l)
		if e < prev {
			t.Fatalf("estimate not monotone at level %d", l)
		}
		prev = e
	}
}

func TestSmallNStructure(t *testing.T) {
	s := NewStructure(1, DefaultParams()) // clamps to n=2
	if s.K <= 0 || s.LevelsPerGroup < 4 {
		t.Fatalf("degenerate structure: K=%d lpg=%d", s.K, s.LevelsPerGroup)
	}
}

func TestInsertDeleteSingleEdge(t *testing.T) {
	l := New(4, DefaultParams())
	if !l.InsertEdge(0, 1) {
		t.Fatal("insert failed")
	}
	if l.InsertEdge(0, 1) || l.InsertEdge(1, 0) {
		t.Fatal("duplicate insert should be a no-op")
	}
	if l.InsertEdge(2, 2) {
		t.Fatal("self-loop insert should be a no-op")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !l.DeleteEdge(1, 0) {
		t.Fatal("delete failed")
	}
	if l.DeleteEdge(0, 1) {
		t.Fatal("double delete should be a no-op")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsAfterRandomInsertions(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n = 120
	l := New(n, DefaultParams())
	for i := 0; i < 800; i++ {
		l.InsertEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		if i%100 == 99 {
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
}

func TestInvariantsAfterMixedUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const n = 80
	l := New(n, DefaultParams())
	var live []graph.Edge
	for i := 0; i < 1500; i++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if l.InsertEdge(u, v) {
				live = append(live, graph.E(u, v).Canon())
			}
		} else {
			j := rng.Intn(len(live))
			e := live[j]
			if !l.DeleteEdge(e.U, e.V) {
				t.Fatalf("step %d: live edge %v missing", i, e)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if i%150 == 149 {
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("after %d ops: %v", i+1, err)
			}
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// ratioError returns max(est/k, k/est) with zero-coreness clamped to 1,
// matching the error metric of the paper's Fig. 6.
func ratioError(est float64, k int32) float64 {
	kk := math.Max(float64(k), 1)
	ee := math.Max(est, 1)
	return math.Max(ee/kk, kk/ee)
}

// provableBound is the worst-case ratio the LDS analysis guarantees:
// underestimates by at most (2+3/λ)(1+δ) and overestimates by at most
// (2+3/λ)(1+δ)² (one extra group of slack on the upper side).
func provableBound(p Params) float64 {
	return (2 + 3/p.Lambda) * (1 + p.Delta) * (1 + p.Delta)
}

func TestApproximationVsExact(t *testing.T) {
	const n = 400
	edges := gen.ChungLu(n, 2400, 2.3, 41)
	l := New(n, DefaultParams())
	for _, e := range edges {
		l.InsertEdge(e.U, e.V)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	core := exact.Sequential(l.Graph().Snapshot())
	bound := provableBound(DefaultParams()) + 1e-9
	for v := 0; v < n; v++ {
		if core[v] == 0 {
			continue
		}
		if r := ratioError(l.Estimate(uint32(v)), core[v]); r > bound {
			t.Fatalf("vertex %d: estimate %.2f vs coreness %d, ratio %.2f > %.2f",
				v, l.Estimate(uint32(v)), core[v], r, bound)
		}
	}
}

func TestApproximationAfterDeletions(t *testing.T) {
	const n = 250
	edges := gen.ErdosRenyi(n, 2000, 43)
	l := New(n, DefaultParams())
	for _, e := range edges {
		l.InsertEdge(e.U, e.V)
	}
	// Delete half.
	for _, e := range edges[:1000] {
		l.DeleteEdge(e.U, e.V)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	core := exact.Sequential(l.Graph().Snapshot())
	bound := provableBound(DefaultParams()) + 1e-9
	for v := 0; v < n; v++ {
		if core[v] == 0 {
			continue
		}
		if r := ratioError(l.Estimate(uint32(v)), core[v]); r > bound {
			t.Fatalf("vertex %d: ratio %.2f > %.2f", v, r, bound)
		}
	}
}

func TestCliqueEstimate(t *testing.T) {
	const n = 40
	l := New(n, DefaultParams())
	for _, e := range gen.Clique(n) {
		l.InsertEdge(e.U, e.V)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	bound := provableBound(DefaultParams()) + 1e-9
	for v := 0; v < n; v++ {
		if r := ratioError(l.Estimate(uint32(v)), n-1); r > bound {
			t.Fatalf("clique vertex %d: estimate %.1f vs %d", v, l.Estimate(uint32(v)), n-1)
		}
	}
}

func TestLDSProperty(t *testing.T) {
	f := func(raw [][2]uint8, dels []uint8) bool {
		const n = 48
		l := New(n, DefaultParams())
		var inserted []graph.Edge
		for _, p := range raw {
			u, v := uint32(p[0])%n, uint32(p[1])%n
			if l.InsertEdge(u, v) {
				inserted = append(inserted, graph.E(u, v))
			}
		}
		for _, d := range dels {
			if len(inserted) == 0 {
				break
			}
			e := inserted[int(d)%len(inserted)]
			l.DeleteEdge(e.U, e.V)
		}
		return l.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraphEstimates(t *testing.T) {
	l := New(10, DefaultParams())
	for v := uint32(0); v < 10; v++ {
		if l.Level(v) != 0 {
			t.Fatalf("fresh vertex at level %d", l.Level(v))
		}
		if l.Estimate(v) != 1 {
			t.Fatalf("fresh estimate = %v", l.Estimate(v))
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSequentialLDSInsert(b *testing.B) {
	const n = 5000
	edges := gen.ChungLu(n, 20000, 2.4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := New(n, DefaultParams())
		for _, e := range edges {
			l.InsertEdge(e.U, e.V)
		}
	}
}
