package lds

import (
	"strings"
	"testing"

	"kcore/internal/gen"
	"kcore/internal/graph"
)

// These tests verify the invariant checker itself: a checker that cannot
// detect violations would silently vacuum the whole test suite.

func buildHealthy(t *testing.T) *LDS {
	t.Helper()
	l := New(100, DefaultParams())
	for _, e := range gen.ErdosRenyi(100, 600, 51) {
		l.InsertEdge(e.U, e.V)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("healthy structure rejected: %v", err)
	}
	return l
}

func TestCheckerDetectsCorruptedUpCounter(t *testing.T) {
	l := buildHealthy(t)
	l.up[7] += 5
	err := l.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "cached up") {
		t.Fatalf("corrupted up counter not detected: %v", err)
	}
}

func TestCheckerDetectsInvariant1Violation(t *testing.T) {
	l := buildHealthy(t)
	// Force a high-degree vertex to level 0 with a recomputed (consistent)
	// up counter: its up-degree then exceeds the group-0 bound.
	var victim uint32
	best := 0
	for v := uint32(0); v < 100; v++ {
		if d := l.Graph().Degree(v); d > best {
			best, victim = d, v
		}
	}
	if best <= 3 {
		t.Skip("no vertex dense enough")
	}
	l.level[victim] = 0
	l.up[victim] = l.countAtLeast(victim, 0)
	err := CheckInvariants(l.S, l.g,
		func(v uint32) int32 { return l.level[v] }, nil)
	if err == nil || !strings.Contains(err.Error(), "Invariant 1") {
		t.Fatalf("Invariant 1 violation not detected: %v", err)
	}
}

func TestCheckerDetectsInvariant2Violation(t *testing.T) {
	// Build with a guaranteed-isolated vertex, then lift it to a high
	// level: it cannot have the required support below it.
	l := New(101, DefaultParams())
	for _, e := range gen.ErdosRenyi(100, 600, 51) {
		l.InsertEdge(e.U, e.V)
	}
	const victim = 100 // isolated: Invariant 1 holds trivially (up = 0)
	l.level[victim] = int32(2 * l.S.LevelsPerGroup)
	err := CheckInvariants(l.S, l.g,
		func(v uint32) int32 { return l.level[v] }, nil)
	if err == nil || !strings.Contains(err.Error(), "Invariant 2") {
		t.Fatalf("Invariant 2 violation not detected: %v", err)
	}
}

func TestCheckerDetectsInvalidLevel(t *testing.T) {
	l := buildHealthy(t)
	l.level[3] = -2
	if err := l.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "invalid level") {
		t.Fatalf("invalid level not detected: %v", err)
	}
	l.level[3] = l.S.MaxLevel() + 1
	if err := l.CheckInvariants(); err == nil {
		t.Fatal("above-max level not detected")
	}
}

func TestGraphValidateDetectsAsymmetry(t *testing.T) {
	g := graph.NewDynamic(4)
	g.InsertEdges([]graph.Edge{graph.E(0, 1)})
	if err := g.Validate(); err != nil {
		t.Fatalf("healthy graph rejected: %v", err)
	}
}
