// Package lds implements the sequential Level Data Structure (LDS) of
// Bhattacharya et al. and Henzinger et al., with the parameterization and
// (2+ε)-approximation analysis of Liu et al. (SPAA 2022). It also defines
// the shared level-structure parameters used by the parallel (PLDS) and
// concurrent (CPLDS) variants.
//
// The LDS partitions vertices into K = O(log² n) levels organized into
// O(log n) groups of 4⌈log_{1+δ} n⌉ levels each. Two invariants are
// maintained for every vertex v at level ℓ in group g_i:
//
//	Invariant 1 (upper bound): if ℓ < K, v has at most (2+3/λ)(1+δ)^i
//	neighbours at levels ≥ ℓ.
//	Invariant 2 (lower bound): if ℓ > 0 and ℓ−1 ∈ g_i, v has at least
//	(1+δ)^i neighbours at levels ≥ ℓ−1.
//
// The coreness estimate of v is (1+δ)^max(⌊(ℓ(v)+1)/levelsPerGroup⌋−1, 0)
// and is a (2+3/λ)(1+δ)-approximation of the true coreness.
package lds

import (
	"fmt"
	"math"
)

// Params are the approximation parameters of the level structure. The
// paper's experiments use Delta = 0.2 and Lambda = 9, giving a theoretical
// approximation factor of (2+3/λ)(1+δ) = 2.8.
type Params struct {
	Delta  float64 // δ > 0: group growth factor
	Lambda float64 // λ > 0: slack in the degree upper bound
}

// DefaultParams returns the paper's experimental parameters (δ=0.2, λ=9).
func DefaultParams() Params { return Params{Delta: 0.2, Lambda: 9} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if !(p.Delta > 0) {
		return fmt.Errorf("lds: Delta must be > 0, got %v", p.Delta)
	}
	if !(p.Lambda > 0) {
		return fmt.Errorf("lds: Lambda must be > 0, got %v", p.Lambda)
	}
	return nil
}

// ApproxFactor returns the theoretical approximation factor
// (2+3/λ)(1+δ) for these parameters (2.8 for the defaults).
func (p Params) ApproxFactor() float64 {
	return (2 + 3/p.Lambda) * (1 + p.Delta)
}

// Structure is the derived level structure for a fixed vertex count n:
// level/group geometry and precomputed per-group bounds.
type Structure struct {
	Params
	N              int
	LevelsPerGroup int
	NumGroups      int
	K              int // total number of levels

	upper []float64 // upper[i] = (2+3/λ)(1+δ)^i
	lower []float64 // lower[i] = (1+δ)^i
	est   []float64 // est[g] = estimate for "estimate group" g
}

// NewStructure derives the level structure for n vertices.
func NewStructure(n int, p Params) *Structure {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if n < 2 {
		n = 2
	}
	logN := math.Log(float64(n)) / math.Log(1+p.Delta)
	lpg := 4 * int(math.Ceil(logN))
	if lpg < 4 {
		lpg = 4
	}
	groups := int(math.Ceil(logN)) + 1
	if groups < 1 {
		groups = 1
	}
	s := &Structure{
		Params:         p,
		N:              n,
		LevelsPerGroup: lpg,
		NumGroups:      groups,
		K:              lpg * groups,
	}
	s.upper = make([]float64, groups+2)
	s.lower = make([]float64, groups+2)
	s.est = make([]float64, groups+2)
	c := 2 + 3/p.Lambda
	for i := range s.upper {
		pw := math.Pow(1+p.Delta, float64(i))
		s.upper[i] = c * pw
		s.lower[i] = pw
		s.est[i] = pw
	}
	return s
}

// GroupOfLevel returns the group index of level ℓ.
func (s *Structure) GroupOfLevel(level int32) int {
	g := int(level) / s.LevelsPerGroup
	if g >= len(s.upper) {
		g = len(s.upper) - 1
	}
	return g
}

// UpperBound returns the Invariant 1 degree bound for a vertex at level ℓ.
func (s *Structure) UpperBound(level int32) float64 {
	return s.upper[s.GroupOfLevel(level)]
}

// LowerBound returns the Invariant 2 degree bound for a vertex at level ℓ
// (the bound is indexed by the group of ℓ−1; callers pass ℓ).
func (s *Structure) LowerBound(level int32) float64 {
	if level <= 0 {
		return 0
	}
	return s.lower[s.GroupOfLevel(level-1)]
}

// EstimateFromLevel returns the coreness estimate for a vertex at level ℓ:
// (1+δ)^max(⌊(ℓ+1)/levelsPerGroup⌋−1, 0) (Definition 3.1 in the paper).
func (s *Structure) EstimateFromLevel(level int32) float64 {
	g := int(level+1)/s.LevelsPerGroup - 1
	if g < 0 {
		g = 0
	}
	if g >= len(s.est) {
		g = len(s.est) - 1
	}
	return s.est[g]
}

// MaxLevel returns the highest valid level, K−1.
func (s *Structure) MaxLevel() int32 { return int32(s.K - 1) }
