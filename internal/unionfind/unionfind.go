// Package unionfind provides sequential and concurrent disjoint-set (union-
// find) structures.
//
// The concurrent variant follows the lock-free CAS-based design of Jayanti
// and Tarjan ("Concurrent disjoint set union", Distributed Computing 2021)
// as implemented in ConnectIt, with deterministic link-by-minimum-index and
// path halving. The CPLDS dependency-DAG merging in internal/cplds uses the
// same linking discipline over operation descriptors; this package provides
// the stand-alone structure used by tests, static connectivity, and the
// example applications.
package unionfind

import "sync/atomic"

// Sequential is a classic union-find with union by size and full path
// compression. It is not safe for concurrent use.
type Sequential struct {
	parent []int32
	size   []int32
}

// NewSequential returns a Sequential union-find over n singleton elements.
func NewSequential(n int) *Sequential {
	s := &Sequential{parent: make([]int32, n), size: make([]int32, n)}
	for i := range s.parent {
		s.parent[i] = int32(i)
		s.size[i] = 1
	}
	return s
}

// Len reports the number of elements.
func (s *Sequential) Len() int { return len(s.parent) }

// Find returns the representative of x's set.
func (s *Sequential) Find(x int) int {
	root := x
	for s.parent[root] != int32(root) {
		root = int(s.parent[root])
	}
	for s.parent[x] != int32(root) {
		s.parent[x], x = int32(root), int(s.parent[x])
	}
	return root
}

// Union merges the sets of x and y and reports whether they were distinct.
func (s *Sequential) Union(x, y int) bool {
	rx, ry := s.Find(x), s.Find(y)
	if rx == ry {
		return false
	}
	if s.size[rx] < s.size[ry] {
		rx, ry = ry, rx
	}
	s.parent[ry] = int32(rx)
	s.size[rx] += s.size[ry]
	return true
}

// Same reports whether x and y are in the same set.
func (s *Sequential) Same(x, y int) bool { return s.Find(x) == s.Find(y) }

// Components returns the number of disjoint sets.
func (s *Sequential) Components() int {
	n := 0
	for i := range s.parent {
		if s.Find(i) == i {
			n++
		}
	}
	return n
}

// Concurrent is a lock-free union-find safe for concurrent Union, Find and
// Same calls from any number of goroutines. Roots are deterministic: the
// representative of a set is always its minimum element index, so results
// are reproducible regardless of interleaving.
type Concurrent struct {
	parent []atomic.Int32
}

// NewConcurrent returns a Concurrent union-find over n singleton elements.
func NewConcurrent(n int) *Concurrent {
	c := &Concurrent{parent: make([]atomic.Int32, n)}
	for i := range c.parent {
		c.parent[i].Store(int32(i))
	}
	return c
}

// Len reports the number of elements.
func (c *Concurrent) Len() int { return len(c.parent) }

// Find returns the current representative of x's set, applying path halving
// along the way. Because links always point to smaller indices, racing
// halving writes are benign: a parent pointer is only ever replaced with a
// (smaller) ancestor.
func (c *Concurrent) Find(x int) int {
	u := int32(x)
	for {
		p := c.parent[u].Load()
		if p == u {
			return int(u)
		}
		gp := c.parent[p].Load()
		if gp != p {
			// Path halving: try to skip a level; failure is fine.
			c.parent[u].CompareAndSwap(p, gp)
		}
		u = p
	}
}

// Union merges the sets containing x and y. It links the larger root under
// the smaller one, so the minimum index always remains the representative.
// It reports whether the two sets were distinct at the linearization point.
func (c *Concurrent) Union(x, y int) bool {
	for {
		rx := int32(c.Find(x))
		ry := int32(c.Find(y))
		if rx == ry {
			return false
		}
		if rx > ry {
			rx, ry = ry, rx
		}
		// Link the larger root under the smaller. CAS fails if someone
		// linked ry elsewhere first; retry from fresh roots.
		if c.parent[ry].CompareAndSwap(ry, rx) {
			return true
		}
	}
}

// Same reports whether x and y are in the same set. Under concurrent
// unions the answer is linearizable: it re-checks the root of x after
// finding the root of y, retrying if x's root moved in between.
func (c *Concurrent) Same(x, y int) bool {
	for {
		rx := c.Find(x)
		ry := c.Find(y)
		if rx == ry {
			return true
		}
		// rx is a root iff parent[rx] == rx still holds; if so, x and y
		// were in different sets at the moment we checked.
		if c.parent[rx].Load() == int32(rx) {
			return false
		}
	}
}

// Components returns the number of disjoint sets. It is only meaningful in
// quiescence (no concurrent unions).
func (c *Concurrent) Components() int {
	n := 0
	for i := range c.parent {
		if c.Find(i) == i {
			n++
		}
	}
	return n
}
