package unionfind

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSequentialBasic(t *testing.T) {
	s := NewSequential(5)
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Same(0, 1) {
		t.Fatal("fresh elements should be disjoint")
	}
	if !s.Union(0, 1) {
		t.Fatal("first union should merge")
	}
	if s.Union(1, 0) {
		t.Fatal("second union should be a no-op")
	}
	if !s.Same(0, 1) {
		t.Fatal("0 and 1 should be joined")
	}
	if s.Components() != 4 {
		t.Fatalf("Components = %d, want 4", s.Components())
	}
}

func TestSequentialTransitivity(t *testing.T) {
	s := NewSequential(10)
	s.Union(0, 1)
	s.Union(1, 2)
	s.Union(5, 6)
	if !s.Same(0, 2) {
		t.Fatal("transitivity violated")
	}
	if s.Same(0, 5) {
		t.Fatal("disjoint sets reported same")
	}
	s.Union(2, 5)
	if !s.Same(0, 6) {
		t.Fatal("merge of chains failed")
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 500
	for trial := 0; trial < 20; trial++ {
		pairs := make([][2]int, 300)
		for i := range pairs {
			pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
		}
		seq := NewSequential(n)
		con := NewConcurrent(n)
		for _, p := range pairs {
			seq.Union(p[0], p[1])
			con.Union(p[0], p[1])
		}
		for i := 0; i < n; i++ {
			for _, j := range []int{0, n / 2, n - 1} {
				if seq.Same(i, j) != con.Same(i, j) {
					t.Fatalf("trial %d: Same(%d,%d) differs", trial, i, j)
				}
			}
		}
		if seq.Components() != con.Components() {
			t.Fatalf("trial %d: components %d vs %d", trial, seq.Components(), con.Components())
		}
	}
}

func TestConcurrentMinRootInvariant(t *testing.T) {
	c := NewConcurrent(100)
	c.Union(50, 10)
	c.Union(10, 99)
	c.Union(99, 3)
	if got := c.Find(50); got != 3 {
		t.Fatalf("root = %d, want minimum element 3", got)
	}
}

func TestConcurrentParallelUnions(t *testing.T) {
	const n = 2000
	const goroutines = 16
	c := NewConcurrent(n)
	// Build a chain: every goroutine links a strided subset; final result
	// must be a single component rooted at 0.
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n-1; i += goroutines {
				c.Union(i, i+1)
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if c.Find(i) != 0 {
			t.Fatalf("Find(%d) = %d, want 0", i, c.Find(i))
		}
	}
	if c.Components() != 1 {
		t.Fatalf("Components = %d, want 1", c.Components())
	}
}

func TestConcurrentParallelRandomVsSequential(t *testing.T) {
	const n = 1000
	rng := rand.New(rand.NewSource(7))
	pairs := make([][2]int, 2000)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	con := NewConcurrent(n)
	var wg sync.WaitGroup
	const goroutines = 8
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(pairs); i += goroutines {
				con.Union(pairs[i][0], pairs[i][1])
			}
		}(g)
	}
	wg.Wait()
	seq := NewSequential(n)
	for _, p := range pairs {
		seq.Union(p[0], p[1])
	}
	// Same partition regardless of interleaving.
	for i := 0; i < n; i++ {
		if seq.Same(i, seq.Find(i)) != con.Same(i, con.Find(i)) {
			t.Fatalf("partition mismatch at %d", i)
		}
		if con.Find(i) != seqMinOfComponent(seq, i) {
			t.Fatalf("root of %d = %d, want component minimum %d", i, con.Find(i), seqMinOfComponent(seq, i))
		}
	}
}

// seqMinOfComponent returns the minimum element in i's component.
func seqMinOfComponent(s *Sequential, i int) int {
	r := s.Find(i)
	min := i
	for j := 0; j < s.Len(); j++ {
		if s.Find(j) == r && j < min {
			min = j
		}
	}
	return min
}

func TestConcurrentFindIsIdempotent(t *testing.T) {
	c := NewConcurrent(50)
	c.Union(10, 20)
	c.Union(20, 30)
	r1 := c.Find(30)
	r2 := c.Find(30)
	if r1 != r2 {
		t.Fatalf("Find not stable: %d then %d", r1, r2)
	}
}

func TestUnionFindProperty(t *testing.T) {
	// Property: union is commutative and idempotent with respect to the
	// resulting partition.
	f := func(edges [][2]uint8) bool {
		const n = 256
		a := NewSequential(n)
		b := NewConcurrent(n)
		for _, e := range edges {
			a.Union(int(e[0]), int(e[1]))
		}
		for i := len(edges) - 1; i >= 0; i-- { // reverse order
			b.Union(int(edges[i][1]), int(edges[i][0])) // swapped args
		}
		for i := 0; i < n; i++ {
			if a.Same(i, 0) != b.Same(i, 0) {
				return false
			}
		}
		return a.Components() == b.Components()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSameDuringUnions(t *testing.T) {
	// Smoke test under race detector: concurrent Same and Union calls.
	const n = 512
	c := NewConcurrent(n)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Same(rng.Intn(n), rng.Intn(n))
			}
		}(g)
	}
	for i := 0; i < n-1; i++ {
		c.Union(i, i+1)
	}
	close(stop)
	wg.Wait()
	if c.Components() != 1 {
		t.Fatalf("Components = %d", c.Components())
	}
}

func BenchmarkConcurrentUnionFind(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]int32, n)
	for i := range pairs {
		pairs[i] = [2]int32{rng.Int31n(n), rng.Int31n(n)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewConcurrent(n)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for j := g; j < len(pairs); j += 4 {
					c.Union(int(pairs[j][0]), int(pairs[j][1]))
				}
			}(g)
		}
		wg.Wait()
	}
}
