package bench

import (
	"bytes"
	"strings"
	"testing"

	"kcore/internal/lds"
	"kcore/internal/plds"
)

// smallCfg keeps harness tests fast: a small dataset, few batches.
func smallCfg() Config {
	return Config{
		Dataset:    "tiny",
		Kind:       plds.Insert,
		BatchSize:  1000,
		Readers:    2,
		Writers:    2,
		BaseFrac:   0.5,
		MaxBatches: 2,
		Trials:     1,
		Seed:       7,
		Params:     lds.DefaultParams(),
	}
}

func TestAlgoString(t *testing.T) {
	if CPLDS.String() != "CPLDS" || SyncReads.String() != "SyncReads" || NonSync.String() != "NonSync" {
		t.Fatal("Algo.String broken")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Dataset: "dblp"}.withDefaults()
	if c.BatchSize == 0 || c.Readers == 0 || c.Writers == 0 || c.Trials == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.Params != lds.DefaultParams() {
		t.Fatal("default params not applied")
	}
}

func TestRunLatencyAllAlgos(t *testing.T) {
	for _, a := range Algos {
		r, err := RunLatency(smallCfg(), a)
		if err != nil {
			t.Fatal(err)
		}
		if r.Reads.Count == 0 {
			t.Fatalf("%v: no reads recorded", a)
		}
		if r.Batches != 2 {
			t.Fatalf("%v: batches = %d", a, r.Batches)
		}
		if r.EdgesDone == 0 {
			t.Fatalf("%v: no edges applied", a)
		}
		if r.UpdateMean <= 0 || r.UpdateMax < r.UpdateMean {
			t.Fatalf("%v: bad update times %v/%v", a, r.UpdateMean, r.UpdateMax)
		}
	}
}

func TestRunLatencyDeletions(t *testing.T) {
	cfg := smallCfg()
	cfg.Kind = plds.Delete
	r, err := RunLatency(cfg, CPLDS)
	if err != nil {
		t.Fatal(err)
	}
	if r.EdgesDone == 0 {
		t.Fatal("deletion run removed no edges")
	}
}

func TestRunLatencyUnknownDataset(t *testing.T) {
	cfg := smallCfg()
	cfg.Dataset = "nope"
	if _, err := RunLatency(cfg, CPLDS); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestRunErrorsBoundsRespected(t *testing.T) {
	cfg := smallCfg()
	for _, kind := range []plds.Kind{plds.Insert, plds.Delete} {
		cfg.Kind = kind
		r, err := RunErrors(cfg, CPLDS)
		if err != nil {
			t.Fatal(err)
		}
		if r.Reads == 0 {
			t.Fatalf("%v: no reads", kind)
		}
		if r.Avg < 1 || r.Max < r.Avg {
			t.Fatalf("%v: inconsistent errors avg=%v max=%v", kind, r.Avg, r.Max)
		}
		// The linearizable implementation must respect the provable bound
		// (with one group of slack on the upper side, as in the analysis).
		bound := cfg.Params.ApproxFactor() * (1 + cfg.Params.Delta)
		if r.Max > bound+1e-9 {
			t.Fatalf("%v: CPLDS max error %.3f exceeds provable bound %.3f", kind, r.Max, bound)
		}
	}
}

func TestRunThroughput(t *testing.T) {
	r, err := RunThroughput(smallCfg(), NonSync)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadOps == 0 || r.WriteEdges == 0 {
		t.Fatalf("throughput run idle: %+v", r)
	}
	if r.ReadsPerS <= 0 || r.WritesPerS <= 0 {
		t.Fatalf("non-positive throughput: %+v", r)
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1([]string{"dblp", "ctr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "dblp" || rows[0].Vertices == 0 || rows[0].Edges == 0 || rows[0].MaxK == 0 {
		t.Fatalf("bad dblp row: %+v", rows[0])
	}
	if rows[1].MaxK > 4 {
		t.Fatalf("road graph max k = %d, want <= 4", rows[1].MaxK)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "dblp") || !strings.Contains(buf.String(), "Largest k") {
		t.Fatalf("table output malformed:\n%s", buf.String())
	}
	if _, err := Table1([]string{"bogus"}); err == nil {
		t.Fatal("want error for bogus dataset")
	}
}

func TestFigureDriversProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallCfg()
	var buf bytes.Buffer
	if err := Figure3(&buf, []string{"tiny"}, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Figure4(&buf, []string{"tiny"}, []int{500, 1500}, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Figure5(&buf, []string{"tiny"}, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 3", "Figure 4", "Figure 5", "CPLDS", "SyncReads", "NonSync"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6And7Drivers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallCfg()
	var buf bytes.Buffer
	if err := Figure6(&buf, []string{"tiny"}, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Figure7(&buf, []string{"tiny"}, []int{1, 2}, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 6", "theoretical max 2.80", "Figure 7", "reads/s", "edges/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHeadlineLatencyOrdering(t *testing.T) {
	// The paper's headline result in shape: CPLDS read latency must be far
	// below SyncReads (orders of magnitude) and within a small factor of
	// NonSync. We assert the ordering with generous slack. The workload
	// must keep each batch well above the Go scheduler's ~10ms async
	// preemption interval, or (on a single-core machine) no read is ever
	// scheduled mid-batch and SyncReads never blocks; the dense "brain"
	// profile with large batches keeps the update window long enough.
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallCfg()
	cfg.Dataset = "brain"
	cfg.BatchSize = 20000
	cfg.MaxBatches = 3
	results, err := RunLatencyAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var byAlgo [3]LatencyResult
	for _, r := range results {
		byAlgo[r.Algo] = r
	}
	cp := byAlgo[CPLDS].Reads.Mean
	sy := byAlgo[SyncReads].Reads.Mean
	if sy < cp*2 {
		t.Fatalf("SyncReads mean latency %v not clearly above CPLDS %v", sy, cp)
	}
}
