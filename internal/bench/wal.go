package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/shard"
	"kcore/internal/stats"
	"kcore/internal/wal"
)

// WALResult is one row of the durability-overhead experiment: batch-insert
// throughput of the sharded engine with the write-ahead log in a given
// fsync mode, against the in-memory baseline.
type WALResult struct {
	Dataset   string
	Shards    int
	Mode      string // "memory", "none", "interval", "always"
	Writers   int
	Edges     int64
	Elapsed   time.Duration
	EdgesPerS float64
	LogBytes  int64 // bytes appended to the log during the measured phase
}

// BytesPerEdge is the measured log volume per applied edge.
func (r WALResult) BytesPerEdge() float64 {
	if r.Edges == 0 {
		return 0
	}
	return float64(r.LogBytes) / float64(r.Edges)
}

// walModes are the measured configurations, baseline first.
var walModes = []string{"memory", "none", "interval", "always"}

// RunWAL measures batch-insert throughput in one durability mode. The
// engine is pre-loaded with the base graph, then — for the logged modes —
// a WAL is attached to an empty temporary directory, so the log volume
// reflects exactly the measured batches. cfg.Writers concurrent client
// goroutines race insertion batches through the coalescing scheduler, the
// load shape of the HTTP server.
func RunWAL(cfg Config, shards int, mode string) (WALResult, error) {
	cfg = cfg.withDefaults()
	res := WALResult{Dataset: cfg.Dataset, Shards: shards, Mode: mode, Writers: cfg.Writers}
	for trial := 0; trial < cfg.Trials; trial++ {
		p, err := prepare(cfg)
		if err != nil {
			return res, err
		}
		batches := p.stream.Insertions
		if cfg.MaxBatches > 0 && len(batches) > cfg.MaxBatches {
			batches = batches[:cfg.MaxBatches]
		}
		eng := shard.New(p.n, shards, cfg.Params)
		eng.Insert(p.stream.Base)

		var m *wal.Manager
		if mode != "memory" {
			policy, err := wal.ParseSyncPolicy(mode)
			if err != nil {
				return res, err
			}
			dir, err := os.MkdirTemp("", "kcore-walbench-")
			if err != nil {
				return res, err
			}
			defer os.RemoveAll(dir)
			if m, err = wal.Open(dir, eng, wal.Options{Sync: policy}); err != nil {
				return res, err
			}
		}

		var next, edges atomic.Int64
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < cfg.Writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(batches) {
						return
					}
					edges.Add(int64(eng.Insert(batches[i])))
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(t0)

		if m != nil {
			st := m.Stats()
			res.LogBytes += st.LogBytes
			if err := m.Close(); err != nil {
				return res, err
			}
		}
		res.Edges += edges.Load()
		res.Elapsed += elapsed
		res.EdgesPerS += stats.Throughput(edges.Load(), elapsed)
	}
	res.EdgesPerS /= float64(cfg.Trials)
	return res, nil
}

// FigureWAL runs and prints the durability-overhead experiment: insert
// throughput per fsync mode relative to the in-memory baseline, plus the
// log volume per edge. The acceptance bar for the durability subsystem is
// the "none" row staying within 15% of "memory".
func FigureWAL(w io.Writer, datasets []string, shardCounts []int, cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Figure 11: WAL overhead — insert throughput per fsync mode (writers=%d)\n", cfg.Writers)
	fmt.Fprintf(w, "%-10s %8s %-10s %14s %10s %12s %12s\n",
		"graph", "shards", "mode", "edges/s", "vs memory", "log MiB", "bytes/edge")
	for _, ds := range datasets {
		c := cfg
		c.Dataset = ds
		for _, shards := range shardCounts {
			var base float64
			for _, mode := range walModes {
				r, err := RunWAL(c, shards, mode)
				if err != nil {
					return err
				}
				if mode == "memory" {
					base = r.EdgesPerS
				}
				rel := 0.0
				if base > 0 {
					rel = r.EdgesPerS / base
				}
				fmt.Fprintf(w, "%-10s %8d %-10s %14.0f %9.2fx %12.2f %12.1f\n",
					ds, shards, r.Mode, r.EdgesPerS, rel,
					float64(r.LogBytes)/(1<<20), r.BytesPerEdge())
			}
		}
	}
	fmt.Fprintln(w)
	return nil
}
