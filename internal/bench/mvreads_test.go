package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunMVReads(t *testing.T) {
	cfg := smallCfg()
	// Baseline (retention disabled) and one retained depth.
	base, err := RunMVReads(cfg, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.Edges == 0 || base.WritesPerS <= 0 {
		t.Fatalf("baseline run idle: %+v", base)
	}
	r, err := RunMVReads(cfg, 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Edges != base.Edges {
		t.Fatalf("retention changed applied edges: %d vs %d", r.Edges, base.Edges)
	}
	if r.Depth != 1 || r.Retained != 4 {
		t.Fatalf("config echo mismatch: %+v", r)
	}
	if r.Views+r.Misses == 0 {
		t.Fatalf("no retained-read attempts recorded: %+v", r)
	}
}

func TestRunMVReadsUnknownDataset(t *testing.T) {
	cfg := smallCfg()
	cfg.Dataset = "bogus"
	if _, err := RunMVReads(cfg, 1, 1, 4); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

// TestFigureMVReadsDriverOutput runs the full retention-depth sweep, which
// is slow (a baseline plus one run per depth per shard count); keep it out
// of -short CI runs.
func TestFigureMVReadsDriverOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("retention-depth sweep is slow; run without -short")
	}
	var buf bytes.Buffer
	if err := FigureMVReads(&buf, []string{"tiny"}, []int{1, 2}, []int{1, 2}, smallCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Multi-version reads", "tiny", "depth", "vs-base", "live"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
}
