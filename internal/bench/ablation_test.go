package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunPathCompressionAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	results, err := RunPathCompressionAblation(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2 (on/off)", len(results))
	}
	if !results[0].Compression || results[1].Compression {
		t.Fatalf("order should be on,off: %+v", results)
	}
	for _, r := range results {
		if r.Reads.Count == 0 {
			t.Fatalf("compression=%v recorded no reads", r.Compression)
		}
		if r.UpdateMean <= 0 {
			t.Fatalf("compression=%v no update time", r.Compression)
		}
	}
}

func TestAblationDriverOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := Ablation(&buf, []string{"tiny"}, smallCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Ablation", "on", "off", "retries"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
