package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/gen"
	"kcore/internal/shard"
	"kcore/internal/stats"
)

// viewBulkSize is the number of vertices per epoch-pinned bulk read in the
// viewreads experiment — the shape of a typical multi-vertex API request
// (a /coreness/bulk call or a View.CorenessMany over one client's watch
// list).
const viewBulkSize = 64

// ViewReadsResult is one row of the view-reads experiment: throughput of
// epoch-pinned multi-vertex reads (view creation + CorenessMany) against an
// engine under concurrent batch updates.
type ViewReadsResult struct {
	Dataset    string
	Shards     int
	Readers    int
	Writers    int
	Views      int64         // pinned bulk reads completed
	ViewVerts  int64         // vertices served through pinned reads
	Edges      int64         // edges applied by the write phase
	Elapsed    time.Duration // write-phase duration (measurement window)
	Epochs     uint64        // epochs committed during the window
	ViewsPerS  float64
	VertsPerS  float64
	WritesPerS float64
}

// RunViewReads measures the epoch-pinned read path at one shard count:
// cfg.Writers concurrent clients submit insertion batches through the
// scheduler while cfg.Readers goroutines repeatedly pin a view and bulk-
// read viewBulkSize random vertices from one consistent cut. Throughput is
// views (pinned bulk reads) and vertices per second over the write window —
// the epoch-validation analogue of the lock-free single-read series.
func RunViewReads(cfg Config, shards int) (ViewReadsResult, error) {
	cfg = cfg.withDefaults()
	res := ViewReadsResult{
		Dataset: cfg.Dataset, Shards: shards,
		Readers: cfg.Readers, Writers: cfg.Writers,
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		p, err := prepare(cfg)
		if err != nil {
			return res, err
		}
		batches := p.stream.Insertions
		if cfg.MaxBatches > 0 && len(batches) > cfg.MaxBatches {
			batches = batches[:cfg.MaxBatches]
		}
		eng := shard.New(p.n, shards, cfg.Params)
		eng.Insert(p.stream.Base)
		epoch0 := eng.Epoch()

		var views, viewVerts atomic.Int64
		stop := make(chan struct{})
		var readerWG sync.WaitGroup
		for r := 0; r < cfg.Readers; r++ {
			readerWG.Add(1)
			w := gen.NewUniformReads(p.n, cfg.Seed+int64(trial*100+r))
			go func() {
				defer readerWG.Done()
				vs := make([]uint32, viewBulkSize)
				out := make([]float64, viewBulkSize)
				for {
					select {
					case <-stop:
						return
					default:
					}
					for i := range vs {
						vs[i] = w.Next()
					}
					eng.ReadManyPinned(vs, out)
					views.Add(1)
					viewVerts.Add(viewBulkSize)
				}
			}()
		}

		var next, edges atomic.Int64
		var writerWG sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < cfg.Writers; w++ {
			writerWG.Add(1)
			go func() {
				defer writerWG.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(batches) {
						return
					}
					edges.Add(int64(eng.Insert(batches[i])))
				}
			}()
		}
		writerWG.Wait()
		elapsed := time.Since(t0)
		close(stop)
		readerWG.Wait()

		res.Views += views.Load()
		res.ViewVerts += viewVerts.Load()
		res.Edges += edges.Load()
		res.Elapsed += elapsed
		res.Epochs += eng.Epoch() - epoch0
		res.ViewsPerS += stats.Throughput(views.Load(), elapsed)
		res.VertsPerS += stats.Throughput(viewVerts.Load(), elapsed)
		res.WritesPerS += stats.Throughput(edges.Load(), elapsed)
	}
	res.ViewsPerS /= float64(cfg.Trials)
	res.VertsPerS /= float64(cfg.Trials)
	res.WritesPerS /= float64(cfg.Trials)
	return res, nil
}

// FigureViewReads runs and prints the view-reads experiment: epoch-pinned
// bulk-read throughput versus shard count under concurrent batch updates.
// A regression on the pinned path (validation retries, fallback to the
// blocking gates) shows up directly in the views/s and verts/s columns.
func FigureViewReads(w io.Writer, datasets []string, shardCounts []int, cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "View reads: epoch-pinned bulk reads (%d vertices each) vs shard count (writers=%d, readers=%d)\n",
		viewBulkSize, cfg.Writers, cfg.Readers)
	fmt.Fprintf(w, "%-10s %8s %12s %14s %14s %10s\n", "graph", "shards", "views/s", "verts/s", "edges/s", "epochs")
	for _, ds := range datasets {
		c := cfg
		c.Dataset = ds
		for _, p := range shardCounts {
			r, err := RunViewReads(c, p)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %8d %12.0f %14.0f %14.0f %10d\n",
				ds, r.Shards, r.ViewsPerS, r.VertsPerS, r.WritesPerS, r.Epochs)
		}
	}
	fmt.Fprintln(w)
	return nil
}
