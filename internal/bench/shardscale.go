package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/gen"
	"kcore/internal/shard"
	"kcore/internal/stats"
)

// ShardScalingResult is one row of the shard-scaling experiment: batch-
// update throughput (and background read throughput) of the sharded engine
// at a given shard count, with cfg.Writers concurrent client goroutines
// submitting insertion batches through the coalescing scheduler.
type ShardScalingResult struct {
	Dataset     string
	Shards      int
	Writers     int
	Readers     int
	Edges       int64
	Elapsed     time.Duration
	WriteAllocs uint64 // heap allocations during the write phase
	WritesPerS  float64
	ReadsPerS   float64
}

// AllocsPerEdge is the write-phase allocation count per applied edge.
func (r ShardScalingResult) AllocsPerEdge() float64 {
	if r.Edges == 0 {
		return 0
	}
	return float64(r.WriteAllocs) / float64(r.Edges)
}

// RunShardScaling measures batch-update throughput of the sharded engine
// at one shard count. Unlike RunThroughput — where a single updater owns
// the engine — the measured load here is cfg.Writers concurrent client
// goroutines racing to submit batches; the engine's scheduler coalesces
// their submissions into per-shard sub-batches and applies sub-batches of
// distinct shards in parallel. cfg.Readers goroutines issue lock-free
// linearizable reads throughout.
func RunShardScaling(cfg Config, shards int) (ShardScalingResult, error) {
	cfg = cfg.withDefaults()
	res := ShardScalingResult{
		Dataset: cfg.Dataset, Shards: shards,
		Writers: cfg.Writers, Readers: cfg.Readers,
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		p, err := prepare(cfg)
		if err != nil {
			return res, err
		}
		batches := p.stream.Insertions
		if cfg.MaxBatches > 0 && len(batches) > cfg.MaxBatches {
			batches = batches[:cfg.MaxBatches]
		}
		eng := shard.New(p.n, shards, cfg.Params)
		eng.Insert(p.stream.Base)

		var reads atomic.Int64
		stop := make(chan struct{})
		var readerWG sync.WaitGroup
		for r := 0; r < cfg.Readers; r++ {
			readerWG.Add(1)
			w := gen.NewUniformReads(p.n, cfg.Seed+int64(trial*100+r))
			go func() {
				defer readerWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					eng.Read(w.Next())
					reads.Add(1)
				}
			}()
		}

		// Concurrent submitters: writers claim batches from a shared index
		// and race their submissions into the scheduler.
		var next atomic.Int64
		var edges atomic.Int64
		var writerWG sync.WaitGroup
		m0 := mallocs()
		t0 := time.Now()
		for w := 0; w < cfg.Writers; w++ {
			writerWG.Add(1)
			go func() {
				defer writerWG.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(batches) {
						return
					}
					edges.Add(int64(eng.Insert(batches[i])))
				}
			}()
		}
		writerWG.Wait()
		elapsed := time.Since(t0)
		res.WriteAllocs += mallocs() - m0
		close(stop)
		readerWG.Wait()

		res.Edges += edges.Load()
		res.Elapsed += elapsed
		res.WritesPerS += stats.Throughput(edges.Load(), elapsed)
		res.ReadsPerS += stats.Throughput(reads.Load(), elapsed)
	}
	res.WritesPerS /= float64(cfg.Trials)
	res.ReadsPerS /= float64(cfg.Trials)
	return res, nil
}

// RunShardScalingAll runs RunShardScaling for every shard count.
func RunShardScalingAll(cfg Config, shardCounts []int) ([]ShardScalingResult, error) {
	out := make([]ShardScalingResult, 0, len(shardCounts))
	for _, p := range shardCounts {
		r, err := RunShardScaling(cfg, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FigureShards runs and prints the shard-scaling experiment: batch-update
// throughput of the sharded engine versus shard count, with the speedup
// over the 1-shard configuration. This is the figure row added on top of
// the paper's evaluation (the paper's Fig. 7 sweeps threads on one
// engine; this sweeps engine shards under concurrent client submissions).
func FigureShards(w io.Writer, datasets []string, shardCounts []int, cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Figure 8: shard scaling — batch-update throughput vs shard count (writers=%d, readers=%d)\n",
		cfg.Writers, cfg.Readers)
	fmt.Fprintf(w, "%-10s %8s %14s %10s %14s %12s\n", "graph", "shards", "edges/s", "speedup", "reads/s", "allocs/edge")
	for _, ds := range datasets {
		c := cfg
		c.Dataset = ds
		results, err := RunShardScalingAll(c, shardCounts)
		if err != nil {
			return err
		}
		var base float64
		for _, r := range results {
			if r.Shards == 1 {
				base = r.WritesPerS
			}
		}
		for _, r := range results {
			speedup := 0.0
			if base > 0 {
				speedup = r.WritesPerS / base
			}
			fmt.Fprintf(w, "%-10s %8d %14.0f %9.2fx %14.0f %12.3f\n",
				ds, r.Shards, r.WritesPerS, speedup, r.ReadsPerS, r.AllocsPerEdge())
		}
	}
	fmt.Fprintln(w)
	return nil
}
