// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Table 1, Figs. 3–7) on the synthetic
// dataset stand-ins, printing the same rows/series the paper reports.
//
// Three "implementations" are compared, mirroring §7:
//
//   - CPLDS: the paper's data structure; reads use the linearizable
//     lock-free protocol and may run at any time.
//   - SyncReads: the synchronous baseline; reads generated during a batch
//     block until the batch completes (original PLDS, no descriptors).
//   - NonSync: the unsynchronized baseline; reads return the instantaneous
//     live level (original PLDS, non-linearizable).
package bench

import (
	"sync"

	"kcore/internal/cplds"
	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/plds"
)

// Algo identifies one of the three evaluated implementations.
type Algo int

const (
	// CPLDS is the paper's concurrent parallel level data structure.
	CPLDS Algo = iota
	// SyncReads is the synchronous baseline (reads wait for the batch).
	SyncReads
	// NonSync is the unsynchronized, non-linearizable baseline.
	NonSync
)

// Algos lists all evaluated implementations in presentation order.
var Algos = []Algo{CPLDS, SyncReads, NonSync}

func (a Algo) String() string {
	switch a {
	case CPLDS:
		return "CPLDS"
	case SyncReads:
		return "SyncReads"
	default:
		return "NonSync"
	}
}

// engine abstracts the three implementations behind one update/read API.
type engine interface {
	InsertBatch(edges []graph.Edge) int
	DeleteBatch(edges []graph.Edge) int
	// Read returns a coreness estimate for v under the engine's protocol.
	Read(v uint32) float64
	// Snapshot returns the current graph (quiescent use only).
	Snapshot() *graph.Dynamic
}

// cpldsEngine: full CPLDS with linearizable reads.
type cpldsEngine struct{ c *cplds.CPLDS }

func (e *cpldsEngine) InsertBatch(edges []graph.Edge) int { return e.c.InsertBatch(edges) }
func (e *cpldsEngine) DeleteBatch(edges []graph.Edge) int { return e.c.DeleteBatch(edges) }
func (e *cpldsEngine) Read(v uint32) float64              { return e.c.Read(v) }
func (e *cpldsEngine) Snapshot() *graph.Dynamic           { return e.c.Graph() }

// nonsyncEngine: plain PLDS (no descriptor overhead), unsynchronized reads.
type nonsyncEngine struct{ p *plds.PLDS }

func (e *nonsyncEngine) InsertBatch(edges []graph.Edge) int { return e.p.InsertBatch(edges) }
func (e *nonsyncEngine) DeleteBatch(edges []graph.Edge) int { return e.p.DeleteBatch(edges) }
func (e *nonsyncEngine) Read(v uint32) float64              { return e.p.Estimate(v) }
func (e *nonsyncEngine) Snapshot() *graph.Dynamic           { return e.p.Graph() }

// syncEngine: plain PLDS plus a batch-scoped write gate; reads issued
// mid-batch block until the batch completes (the paper's SyncReads).
type syncEngine struct {
	p    *plds.PLDS
	gate sync.RWMutex
}

func (e *syncEngine) InsertBatch(edges []graph.Edge) int {
	e.gate.Lock()
	defer e.gate.Unlock()
	return e.p.InsertBatch(edges)
}

func (e *syncEngine) DeleteBatch(edges []graph.Edge) int {
	e.gate.Lock()
	defer e.gate.Unlock()
	return e.p.DeleteBatch(edges)
}

func (e *syncEngine) Read(v uint32) float64 {
	e.gate.RLock()
	est := e.p.Estimate(v)
	e.gate.RUnlock()
	return est
}

func (e *syncEngine) Snapshot() *graph.Dynamic { return e.p.Graph() }

// newEngine constructs the engine for an algorithm over n vertices.
func newEngine(a Algo, n int, params lds.Params) engine {
	switch a {
	case CPLDS:
		return &cpldsEngine{c: cplds.New(n, params)}
	case SyncReads:
		return &syncEngine{p: plds.New(n, params, nil)}
	default:
		return &nonsyncEngine{p: plds.New(n, params, nil)}
	}
}
