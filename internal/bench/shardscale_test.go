package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunShardScaling(t *testing.T) {
	cfg := smallCfg()
	results, err := RunShardScalingAll(cfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		if r.Edges == 0 || r.WritesPerS <= 0 {
			t.Fatalf("shard-scaling run idle: %+v", r)
		}
		if r.Writers != cfg.Writers || r.Readers != cfg.Readers {
			t.Fatalf("config echo mismatch: %+v", r)
		}
	}
	// The same stream must apply the same number of edges at every shard
	// count (sharding changes throughput, never the applied updates).
	if results[0].Edges != results[1].Edges {
		t.Fatalf("applied edges differ across shard counts: %d vs %d",
			results[0].Edges, results[1].Edges)
	}
}

func TestRunShardScalingUnknownDataset(t *testing.T) {
	cfg := smallCfg()
	cfg.Dataset = "bogus"
	if _, err := RunShardScaling(cfg, 1); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestFigureShardsDriverOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("figure driver is slow; run without -short")
	}
	var buf bytes.Buffer
	if err := FigureShards(&buf, []string{"tiny"}, []int{1, 2}, smallCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"shard scaling", "tiny", "speedup", "edges/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
}
