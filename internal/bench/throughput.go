package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/gen"
	"kcore/internal/parallel"
	"kcore/internal/plds"
	"kcore/internal/stats"
)

// ThroughputResult is one point of Fig. 7: reader and writer throughput
// (operations per second) at a given reader/writer thread count, plus the
// allocation count of the write phase (the -benchmem analogue for the
// batch hot path; it includes the readers' allocations, which are ~0).
type ThroughputResult struct {
	Dataset     string
	Kind        plds.Kind
	Algo        Algo
	Readers     int
	Writers     int
	ReadOps     int64
	WriteEdges  int64
	WriteAllocs uint64 // heap allocations during the write phase
	ReadsPerS   float64
	WritesPerS  float64
}

// AllocsPerEdge is the write-phase allocation count per applied edge.
func (r ThroughputResult) AllocsPerEdge() float64 {
	if r.WriteEdges == 0 {
		return 0
	}
	return float64(r.WriteAllocs) / float64(r.WriteEdges)
}

// mallocs returns the process-lifetime heap allocation count.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// RunThroughput measures reader and writer throughput for one algorithm at
// the configured reader/writer counts. The writer applies all measured
// batches back-to-back; readers read as fast as they can for the duration.
// Reader throughput = reads / total write time (the paper's definition);
// writer throughput = edges applied / total write time.
func RunThroughput(cfg Config, algo Algo) (ThroughputResult, error) {
	cfg = cfg.withDefaults()
	res := ThroughputResult{
		Dataset: cfg.Dataset, Kind: cfg.Kind, Algo: algo,
		Readers: cfg.Readers, Writers: cfg.Writers,
	}
	oldWorkers := parallel.Workers()
	parallel.SetWorkers(cfg.Writers)
	defer parallel.SetWorkers(oldWorkers)

	for trial := 0; trial < cfg.Trials; trial++ {
		p, err := prepare(cfg)
		if err != nil {
			return res, err
		}
		batches := measuredBatches(p, cfg)
		e := newEngine(algo, p.n, cfg.Params)
		loadForKind(e, p, cfg, batches)

		var reads atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < cfg.Readers; r++ {
			wg.Add(1)
			w := gen.NewUniformReads(p.n, cfg.Seed+int64(trial*100+r))
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					e.Read(w.Next())
					reads.Add(1)
				}
			}()
		}
		m0 := mallocs()
		t0 := time.Now()
		var edges int64
		for _, b := range batches {
			if cfg.Kind == plds.Insert {
				edges += int64(e.InsertBatch(b))
			} else {
				edges += int64(e.DeleteBatch(b))
			}
		}
		writeTime := time.Since(t0)
		res.WriteAllocs += mallocs() - m0
		close(stop)
		wg.Wait()
		res.ReadOps += reads.Load()
		res.WriteEdges += edges
		res.ReadsPerS += stats.Throughput(reads.Load(), writeTime)
		res.WritesPerS += stats.Throughput(edges, writeTime)
	}
	res.ReadsPerS /= float64(cfg.Trials)
	res.WritesPerS /= float64(cfg.Trials)
	return res, nil
}
