package bench

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/replica"
	"kcore/internal/shard"
	"kcore/internal/stats"
	"kcore/internal/wal"
)

// ReplicaResult is one row of the replication experiment: how fast a
// follower absorbs the primary's batch stream, and how the follower's
// read path behaves while it does.
type ReplicaResult struct {
	Dataset string
	Shards  int
	Readers int
	Edges   int64 // edges applied on the primary during measurement

	PrimaryElapsed time.Duration // primary-side apply time
	CatchupElapsed time.Duration // primary t0 -> follower at primary's epoch
	PrimaryPerS    float64       // primary apply throughput (edges/s)
	FollowerPerS   float64       // follower end-to-end throughput (edges/s)
	BytesShipped   uint64        // stream bytes to the follower
	FollowerReads  int64         // pinned multi-reads served by the follower meanwhile
	ReadsPerS      float64

	MaxApplyBatch  int     // follower catch-up batching cap (0 = default)
	RecordsApplied uint64  // batch records the follower applied
	ApplyRounds    uint64  // quiesce rounds those records were applied in
	RecsPerRound   float64 // records per quiesce round (batching factor)

	// Backlog drill: shipping is paused while the primary keeps writing,
	// then resumed, so the whole backlog arrives at the follower in one
	// burst. Records per round while draining it is the true catch-up
	// batching factor — the in-sync stream above is production-paced and
	// correctly stays near 1.
	StallRecords      uint64
	StallRounds       uint64
	StallRecsPerRound float64
}

// RunReplica measures one replication configuration: a primary and one
// follower connected over a real TCP stream, cfg.Writers client goroutines
// racing insertion batches into the primary, cfg.Readers goroutines
// hammering the follower's epoch-pinned read path throughout. The row
// reports the primary's apply throughput, the follower's end-to-end
// throughput (apply start to full catch-up: shipping + re-applying), the
// shipped byte volume, the follower's concurrent read rate, and the
// catch-up batching factor (records applied per quiesce round under
// applyBatch; 0 uses the follower default, 1 disables batching).
func RunReplica(cfg Config, shards, applyBatch int) (ReplicaResult, error) {
	cfg = cfg.withDefaults()
	res := ReplicaResult{Dataset: cfg.Dataset, Shards: shards, Readers: cfg.Readers, MaxApplyBatch: applyBatch}
	for trial := 0; trial < cfg.Trials; trial++ {
		p, err := prepare(cfg)
		if err != nil {
			return res, err
		}
		batches := p.stream.Insertions
		if cfg.MaxBatches > 0 && len(batches) > cfg.MaxBatches {
			batches = batches[:cfg.MaxBatches]
		}
		primary := shard.New(p.n, shards, cfg.Params)
		primary.Insert(p.stream.Base)

		src := wal.NewTailSource(primary)
		feeder := replica.NewFeeder(src, replica.FeederOptions{Heartbeat: 50 * time.Millisecond})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return res, err
		}
		hs := &http.Server{Handler: feeder.Handler()}
		go hs.Serve(ln)

		folEng := shard.New(p.n, shards, cfg.Params)
		fol, err := replica.StartFollower(folEng, ln.Addr().String(), replica.FollowerOptions{
			BackoffMin: 10 * time.Millisecond, InitialSync: 30 * time.Second,
			MaxApplyBatch: applyBatch,
		})
		if err != nil {
			hs.Close()
			src.Close()
			return res, err
		}

		// Follower-side readers: the replica's whole point is serving reads,
		// so measure its pinned read path concurrent with the live stream.
		stop := make(chan struct{})
		var reads atomic.Int64
		var rwg sync.WaitGroup
		for rd := 0; rd < cfg.Readers; rd++ {
			rwg.Add(1)
			go func(seed int) {
				defer rwg.Done()
				vs := make([]uint32, 16)
				out := make([]float64, len(vs))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					for j := range vs {
						vs[j] = uint32((seed + i*len(vs) + j) % p.n)
					}
					folEng.ReadManyPinned(vs, out)
					reads.Add(1)
				}
			}(rd * 1000)
		}

		var next, edges atomic.Int64
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < cfg.Writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(batches) {
						return
					}
					edges.Add(int64(primary.Insert(batches[i])))
				}
			}()
		}
		wg.Wait()
		primaryElapsed := time.Since(t0)

		target := primary.Epoch()
		for folEng.Epoch() != target {
			time.Sleep(200 * time.Microsecond)
		}
		catchup := time.Since(t0)
		close(stop)
		rwg.Wait()

		// Parity sanity: a benchmark over a diverged follower is meaningless.
		nOut := make([]float64, p.n)
		fOut := make([]float64, p.n)
		pe := primary.ReadAllPinned(nOut)
		fe := folEng.ReadAllPinned(fOut)
		if pe != fe {
			fol.Close()
			hs.Close()
			src.Close()
			return res, fmt.Errorf("bench: follower at epoch %d, primary at %d after catch-up", fe, pe)
		}
		for v := range nOut {
			if nOut[v] != fOut[v] {
				fol.Close()
				hs.Close()
				src.Close()
				return res, fmt.Errorf("bench: follower diverged at vertex %d", v)
			}
		}

		// Backlog drill: pause shipping, build a burst on the primary (by
		// deleting the batches just measured — those edges are certainly
		// present), resume and wait for the follower to drain it. The
		// burst lands in the follower's read buffer at once, so this
		// measures how many records each quiesce round folds during real
		// catch-up.
		pre := fol.Stats()
		feeder.Pause()
		for _, b := range batches {
			primary.Delete(b)
		}
		feeder.Resume()
		target = primary.Epoch()
		for folEng.Epoch() != target {
			time.Sleep(200 * time.Microsecond)
		}
		post := fol.Stats()
		res.StallRecords += post.RecordsApplied - pre.RecordsApplied
		res.StallRounds += post.ApplyRounds - pre.ApplyRounds

		res.Edges += edges.Load()
		res.PrimaryElapsed += primaryElapsed
		res.CatchupElapsed += catchup
		res.PrimaryPerS += stats.Throughput(edges.Load(), primaryElapsed)
		res.FollowerPerS += stats.Throughput(edges.Load(), catchup)
		res.BytesShipped += feeder.Stats().BytesShipped
		res.FollowerReads += reads.Load()
		res.ReadsPerS += stats.Throughput(reads.Load(), catchup)
		fst := fol.Stats()
		res.RecordsApplied += fst.RecordsApplied
		res.ApplyRounds += fst.ApplyRounds

		fol.Close()
		hs.Close()
		src.Close()
	}
	res.PrimaryPerS /= float64(cfg.Trials)
	res.FollowerPerS /= float64(cfg.Trials)
	res.ReadsPerS /= float64(cfg.Trials)
	if res.ApplyRounds > 0 {
		res.RecsPerRound = float64(res.RecordsApplied) / float64(res.ApplyRounds)
	}
	if res.StallRounds > 0 {
		res.StallRecsPerRound = float64(res.StallRecords) / float64(res.StallRounds)
	}
	return res, nil
}

// FigureReplica runs and prints the replication experiment: follower
// end-to-end apply throughput against the primary's apply rate (their
// ratio is the steady-state headroom before a follower lags), shipped
// bytes per edge, the follower's concurrent pinned-read rate, and the
// catch-up batching effect — each configuration runs with per-record
// apply (batch 1) and with the default apply batching, reporting the
// records-per-quiesce-round factor achieved both in sync (production-
// paced, stays near 1) and while draining a paused-feed backlog burst
// (stall r/rnd — the number catch-up batching actually lifts).
func FigureReplica(w io.Writer, datasets []string, shardCounts []int, cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Replication: follower apply throughput and read scaling (writers=%d, readers=%d)\n",
		cfg.Writers, cfg.Readers)
	fmt.Fprintf(w, "%-10s %8s %8s %14s %14s %10s %12s %14s %10s %11s\n",
		"graph", "shards", "apply", "primary e/s", "follower e/s", "ratio", "bytes/edge", "fol reads/s", "recs/rnd", "stall r/rnd")
	for _, ds := range datasets {
		c := cfg
		c.Dataset = ds
		for _, shards := range shardCounts {
			for _, applyBatch := range []int{1, 0} {
				r, err := RunReplica(c, shards, applyBatch)
				if err != nil {
					return err
				}
				ratio, bpe := 0.0, 0.0
				if r.PrimaryPerS > 0 {
					ratio = r.FollowerPerS / r.PrimaryPerS
				}
				if r.Edges > 0 {
					bpe = float64(r.BytesShipped) / float64(r.Edges)
				}
				label := fmt.Sprintf("%d", applyBatch)
				if applyBatch == 0 {
					label = "default"
				}
				fmt.Fprintf(w, "%-10s %8d %8s %14.0f %14.0f %9.2fx %12.1f %14.0f %10.2f %11.2f\n",
					ds, shards, label, r.PrimaryPerS, r.FollowerPerS, ratio, bpe, r.ReadsPerS, r.RecsPerRound, r.StallRecsPerRound)
			}
		}
	}
	fmt.Fprintln(w)
	return nil
}
