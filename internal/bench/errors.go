package bench

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"kcore/internal/exact"
	"kcore/internal/gen"
	"kcore/internal/plds"
	"kcore/internal/stats"
)

// ErrorResult is one (dataset, kind, algo) row of Fig. 6: the average and
// maximum ratio error of coreness estimates returned by reads executed
// concurrently with update batches, measured against exact coreness.
//
// Following the paper, each read's error is the minimum of its errors
// against the exact coreness at the beginning and at the end of the batch
// it overlapped (a linearizable read may legitimately reflect either
// boundary; for NonSync the same minimum is granted).
type ErrorResult struct {
	Dataset string
	Kind    plds.Kind
	Algo    Algo
	Avg     float64
	Max     float64
	Reads   int
}

// RunErrors measures read accuracy for one algorithm (Fig. 6).
func RunErrors(cfg Config, algo Algo) (ErrorResult, error) {
	cfg = cfg.withDefaults()
	res := ErrorResult{Dataset: cfg.Dataset, Kind: cfg.Kind, Algo: algo}
	var acc stats.ErrorAccumulator
	for trial := 0; trial < cfg.Trials; trial++ {
		p, err := prepare(cfg)
		if err != nil {
			return res, err
		}
		batches := measuredBatches(p, cfg)
		e := newEngine(algo, p.n, cfg.Params)
		loadForKind(e, p, cfg, batches)

		pre := exact.Sequential(e.Snapshot().Snapshot())
		for _, b := range batches {
			// Readers run for exactly the duration of this batch and
			// record (vertex, estimate) observations.
			type obs struct {
				v   uint32
				est float64
			}
			observations := make([][]obs, cfg.Readers)
			stop := make(chan struct{})
			ready := make([]atomic.Bool, cfg.Readers)
			var wg sync.WaitGroup
			for r := 0; r < cfg.Readers; r++ {
				wg.Add(1)
				w := gen.NewUniformReads(p.n, cfg.Seed+int64(trial*1000+r))
				go func(r int) {
					defer wg.Done()
					// Reservoir sample of the reads: long batches generate
					// billions of observations, far more than needed for
					// stable avg/max error estimates, and recording them
					// all would exhaust memory.
					const reservoir = 1 << 17
					rng := rand.New(rand.NewSource(cfg.Seed + int64(r)))
					local := make([]obs, 0, reservoir)
					seen := int64(0)
					for {
						select {
						case <-stop:
							observations[r] = local
							return
						default:
						}
						v := w.Next()
						o := obs{v, e.Read(v)}
						seen++
						if len(local) < reservoir {
							local = append(local, o)
						} else if j := rng.Int63n(seen); j < reservoir {
							local[j] = o
						}
						ready[r].Store(true)
					}
				}(r)
			}
			waitReady(ready)
			if cfg.Kind == plds.Insert {
				e.InsertBatch(b)
			} else {
				e.DeleteBatch(b)
			}
			close(stop)
			wg.Wait()
			post := exact.Sequential(e.Snapshot().Snapshot())
			for _, local := range observations {
				for _, o := range local {
					acc.Add(stats.MinRatioError(o.est, pre[o.v], post[o.v]))
				}
			}
			pre = post
		}
	}
	res.Avg = acc.Mean()
	res.Max = acc.Max()
	res.Reads = acc.Count()
	return res, nil
}

// RunErrorsAll runs RunErrors for every algorithm.
func RunErrorsAll(cfg Config) ([]ErrorResult, error) {
	out := make([]ErrorResult, 0, len(Algos))
	for _, a := range Algos {
		r, err := RunErrors(cfg, a)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
