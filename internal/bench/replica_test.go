package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunReplica(t *testing.T) {
	for _, shards := range []int{1, 2} {
		r, err := RunReplica(smallCfg(), shards, 0)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if r.Edges == 0 {
			t.Fatalf("shards=%d: no edges applied", shards)
		}
		if r.PrimaryPerS <= 0 || r.FollowerPerS <= 0 {
			t.Fatalf("shards=%d: non-positive throughput: %+v", shards, r)
		}
		if r.CatchupElapsed < r.PrimaryElapsed {
			t.Fatalf("shards=%d: catch-up %v before primary finished at %v",
				shards, r.CatchupElapsed, r.PrimaryElapsed)
		}
		if r.BytesShipped == 0 {
			t.Fatalf("shards=%d: nothing shipped", shards)
		}
		if r.ApplyRounds == 0 || r.RecordsApplied == 0 || r.RecsPerRound < 1 {
			t.Fatalf("shards=%d: apply batching unreported: %+v", shards, r)
		}
		if r.ApplyRounds > r.RecordsApplied {
			t.Fatalf("shards=%d: more rounds than records: %+v", shards, r)
		}
	}
}

func TestFigureReplicaDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := FigureReplica(&buf, []string{"tiny"}, []int{1, 2}, smallCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Replication", "follower e/s", "bytes/edge", "tiny"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
