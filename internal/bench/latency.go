package bench

import (
	"runtime"
	"sync/atomic"
	"time"

	"kcore/internal/gen"
	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/plds"
	"kcore/internal/stats"
)

// waitReady spins (yielding) until every reader goroutine has completed at
// least one read. On a single-core machine the update loop can otherwise
// finish all batches before a reader is ever scheduled.
func waitReady(ready []atomic.Bool) {
	for i := range ready {
		for !ready[i].Load() {
			runtime.Gosched()
		}
	}
}

// Config parameterizes one experiment run.
type Config struct {
	Dataset    string // profile name from internal/gen
	Kind       plds.Kind
	BatchSize  int
	Readers    int     // concurrent reader goroutines
	Writers    int     // parallelism of the update engine
	BaseFrac   float64 // fraction of edges pre-loaded before measurement
	MaxBatches int     // cap on measured batches (0 = all)
	Trials     int     // repetitions (the paper uses 11; default 1 here)
	Seed       int64
	Params     lds.Params
}

// withDefaults fills zero fields with the harness defaults.
func (c Config) withDefaults() Config {
	if c.BatchSize == 0 {
		c.BatchSize = 10000
	}
	if c.Readers == 0 {
		c.Readers = 4
	}
	if c.Writers == 0 {
		c.Writers = 4
	}
	if c.BaseFrac == 0 {
		c.BaseFrac = 0.5
	}
	if c.MaxBatches == 0 {
		c.MaxBatches = 6
	}
	if c.Trials == 0 {
		c.Trials = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Params == (lds.Params{}) {
		c.Params = lds.DefaultParams()
	}
	return c
}

// LatencyResult is one (dataset, kind, algo) row of Figs. 3–4, together
// with the update-time series of Fig. 5.
type LatencyResult struct {
	Dataset string
	Kind    plds.Kind
	Algo    Algo
	Reads   stats.Summary
	// Update-time statistics across measured batches (Fig. 5).
	UpdateMean time.Duration
	UpdateMax  time.Duration
	Batches    int
	EdgesDone  int
}

// prepared bundles a materialized dataset with its update stream.
type prepared struct {
	n      int
	stream *gen.UpdateStream
}

// prepare materializes the dataset and splits it into base + batches.
func prepare(cfg Config) (prepared, error) {
	edges, n, err := gen.DatasetByName(cfg.Dataset)
	if err != nil {
		return prepared{}, err
	}
	us := gen.NewUpdateStream(edges, n, cfg.BaseFrac, cfg.BatchSize, cfg.Seed)
	return prepared{n: n, stream: us}, nil
}

// measuredBatches returns the batches to measure for the configured kind.
func measuredBatches(p prepared, cfg Config) [][]graph.Edge {
	var bs [][]graph.Edge
	if cfg.Kind == plds.Insert {
		bs = p.stream.Insertions
	} else {
		bs = p.stream.Deletions
	}
	if cfg.MaxBatches > 0 && len(bs) > cfg.MaxBatches {
		bs = bs[:cfg.MaxBatches]
	}
	return bs
}

// loadForKind loads the engine to the pre-measurement state: the base
// graph for insertion runs; base plus all measured batches for deletion
// runs (so the deletions actually remove present edges).
func loadForKind(e engine, p prepared, cfg Config, batches [][]graph.Edge) {
	e.InsertBatch(p.stream.Base)
	if cfg.Kind == plds.Delete {
		for _, b := range batches {
			e.InsertBatch(b)
		}
	}
}

// RunLatency measures per-read latency while update batches run, for one
// algorithm. Reader goroutines continuously read uniform-random vertices
// for the duration of the measured batches, timing every read.
func RunLatency(cfg Config, algo Algo) (LatencyResult, error) {
	cfg = cfg.withDefaults()
	res := LatencyResult{Dataset: cfg.Dataset, Kind: cfg.Kind, Algo: algo}
	agg := stats.NewLatencyRecorder(1 << 16)
	for trial := 0; trial < cfg.Trials; trial++ {
		p, err := prepare(cfg)
		if err != nil {
			return res, err
		}
		batches := measuredBatches(p, cfg)
		e := newEngine(algo, p.n, cfg.Params)
		loadForKind(e, p, cfg, batches)

		recorders := make([]*stats.LatencyRecorder, cfg.Readers)
		stop := make(chan struct{})
		done := make(chan struct{}, cfg.Readers)
		ready := make([]atomic.Bool, cfg.Readers)
		for r := 0; r < cfg.Readers; r++ {
			rec := stats.NewLatencyRecorder(1 << 14)
			recorders[r] = rec
			w := gen.NewUniformReads(p.n, cfg.Seed+int64(trial*100+r))
			go func(r int) {
				defer func() { done <- struct{}{} }()
				for {
					select {
					case <-stop:
						return
					default:
					}
					v := w.Next()
					t0 := time.Now()
					e.Read(v)
					rec.Record(time.Since(t0))
					ready[r].Store(true)
				}
			}(r)
		}
		waitReady(ready)
		var updTotal time.Duration
		for _, b := range batches {
			t0 := time.Now()
			if cfg.Kind == plds.Insert {
				res.EdgesDone += e.InsertBatch(b)
			} else {
				res.EdgesDone += e.DeleteBatch(b)
			}
			d := time.Since(t0)
			updTotal += d
			if d > res.UpdateMax {
				res.UpdateMax = d
			}
			res.Batches++
		}
		close(stop)
		for r := 0; r < cfg.Readers; r++ {
			<-done
		}
		for _, rec := range recorders {
			agg.Merge(rec)
		}
		if res.Batches > 0 {
			res.UpdateMean = updTotal / time.Duration(res.Batches)
		}
	}
	res.Reads = agg.Summarize()
	return res, nil
}

// RunLatencyAll runs RunLatency for every algorithm.
func RunLatencyAll(cfg Config) ([]LatencyResult, error) {
	out := make([]LatencyResult, 0, len(Algos))
	for _, a := range Algos {
		r, err := RunLatency(cfg, a)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
