package bench

import (
	"fmt"
	"io"

	"kcore/internal/exact"
	"kcore/internal/gen"
	"kcore/internal/graph"
	"kcore/internal/plds"
)

// Table1Row is one row of the paper's Table 1: dataset sizes and the
// largest value of k in the k-core decomposition.
type Table1Row struct {
	Name     string
	Vertices int
	Edges    int64
	MaxK     int32
}

// Table1 computes the dataset statistics table over the synthetic
// stand-ins. datasets == nil means all profiles.
func Table1(datasets []string) ([]Table1Row, error) {
	if datasets == nil {
		for _, p := range gen.Profiles {
			datasets = append(datasets, p.Name)
		}
	}
	rows := make([]Table1Row, 0, len(datasets))
	for _, name := range datasets {
		edges, n, err := gen.DatasetByName(name)
		if err != nil {
			return nil, err
		}
		csr := graph.CSRFromEdges(n, edges)
		rows = append(rows, Table1Row{
			Name:     name,
			Vertices: csr.NumVertices(),
			Edges:    csr.NumEdges(),
			MaxK:     exact.MaxCore(exact.Sequential(csr)),
		})
	}
	return rows, nil
}

// PrintTable1 writes Table 1 in the paper's layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: Graph sizes and largest values of k (synthetic stand-ins)\n")
	fmt.Fprintf(w, "%-10s %12s %14s %10s\n", "Graph", "Num.Vertices", "Num.Edges", "Largest k")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12d %14d %10d\n", r.Name, r.Vertices, r.Edges, r.MaxK)
	}
}

// Figure3 runs the read-latency comparison (Fig. 3) for the given datasets
// and both update kinds, printing avg / P99 / P99.99 per implementation.
func Figure3(w io.Writer, datasets []string, cfg Config) error {
	for _, kind := range []plds.Kind{plds.Insert, plds.Delete} {
		fmt.Fprintf(w, "Figure 3 (%s batches): read latency (avg / p99 / p99.99)\n", kind)
		fmt.Fprintf(w, "%-10s %-10s %14s %14s %14s\n", "graph", "algo", "avg", "p99", "p99.99")
		for _, ds := range datasets {
			c := cfg
			c.Dataset = ds
			c.Kind = kind
			results, err := RunLatencyAll(c)
			if err != nil {
				return err
			}
			for _, r := range results {
				fmt.Fprintf(w, "%-10s %-10s %14v %14v %14v\n",
					ds, r.Algo, r.Reads.Mean, r.Reads.P99, r.Reads.P9999)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure4 runs the batch-size sweep (Fig. 4): read latency across batch
// sizes for the given datasets (the paper uses yt and dblp, insertions).
func Figure4(w io.Writer, datasets []string, batchSizes []int, cfg Config) error {
	fmt.Fprintf(w, "Figure 4: read latency vs insertion batch size (avg / p99 / p99.99)\n")
	fmt.Fprintf(w, "%-10s %-10s %10s %14s %14s %14s\n", "graph", "algo", "batch", "avg", "p99", "p99.99")
	for _, ds := range datasets {
		for _, bs := range batchSizes {
			c := cfg
			c.Dataset = ds
			c.Kind = plds.Insert
			c.BatchSize = bs
			results, err := RunLatencyAll(c)
			if err != nil {
				return err
			}
			for _, r := range results {
				fmt.Fprintf(w, "%-10s %-10s %10d %14v %14v %14v\n",
					ds, r.Algo, bs, r.Reads.Mean, r.Reads.P99, r.Reads.P9999)
			}
		}
	}
	fmt.Fprintln(w)
	return nil
}

// Figure5 runs the update-time comparison (Fig. 5): average and maximum
// batch update times per implementation.
func Figure5(w io.Writer, datasets []string, cfg Config) error {
	for _, kind := range []plds.Kind{plds.Insert, plds.Delete} {
		fmt.Fprintf(w, "Figure 5 (%s batches): batch update time (avg / max)\n", kind)
		fmt.Fprintf(w, "%-10s %-10s %14s %14s\n", "graph", "algo", "avg", "max")
		for _, ds := range datasets {
			c := cfg
			c.Dataset = ds
			c.Kind = kind
			results, err := RunLatencyAll(c)
			if err != nil {
				return err
			}
			for _, r := range results {
				fmt.Fprintf(w, "%-10s %-10s %14v %14v\n", ds, r.Algo, r.UpdateMean, r.UpdateMax)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure6 runs the accuracy comparison (Fig. 6): average and maximum read
// error versus exact coreness, per implementation. The theoretical maximum
// (2.8 for the default parameters) is printed for reference.
func Figure6(w io.Writer, datasets []string, cfg Config) error {
	cfg = cfg.withDefaults()
	for _, kind := range []plds.Kind{plds.Insert, plds.Delete} {
		fmt.Fprintf(w, "Figure 6 (%s batches): read error vs exact coreness (avg / max); theoretical max %.2f\n",
			kind, cfg.Params.ApproxFactor())
		fmt.Fprintf(w, "%-10s %-10s %10s %10s %10s\n", "graph", "algo", "avg", "max", "reads")
		for _, ds := range datasets {
			c := cfg
			c.Dataset = ds
			c.Kind = kind
			results, err := RunErrorsAll(c)
			if err != nil {
				return err
			}
			for _, r := range results {
				fmt.Fprintf(w, "%-10s %-10s %10.3f %10.3f %10d\n", ds, r.Algo, r.Avg, r.Max, r.Reads)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure7 runs the scalability comparison (Fig. 7): reader throughput
// while sweeping reader counts (writers fixed), then writer throughput
// while sweeping writer counts (readers fixed).
func Figure7(w io.Writer, datasets []string, threadCounts []int, cfg Config) error {
	cfg = cfg.withDefaults()
	for _, kind := range []plds.Kind{plds.Insert, plds.Delete} {
		fmt.Fprintf(w, "Figure 7 (%s batches): reader scalability (writers=%d)\n", kind, cfg.Writers)
		fmt.Fprintf(w, "%-10s %-10s %8s %14s\n", "graph", "algo", "readers", "reads/s")
		for _, ds := range datasets {
			for _, rc := range threadCounts {
				for _, a := range Algos {
					c := cfg
					c.Dataset = ds
					c.Kind = kind
					c.Readers = rc
					r, err := RunThroughput(c, a)
					if err != nil {
						return err
					}
					fmt.Fprintf(w, "%-10s %-10s %8d %14.0f\n", ds, a, rc, r.ReadsPerS)
				}
			}
		}
		fmt.Fprintf(w, "Figure 7 (%s batches): writer scalability (readers=%d)\n", kind, cfg.Readers)
		fmt.Fprintf(w, "%-10s %-10s %8s %14s %12s\n", "graph", "algo", "writers", "edges/s", "allocs/edge")
		for _, ds := range datasets {
			for _, wc := range threadCounts {
				for _, a := range Algos {
					c := cfg
					c.Dataset = ds
					c.Kind = kind
					c.Writers = wc
					r, err := RunThroughput(c, a)
					if err != nil {
						return err
					}
					fmt.Fprintf(w, "%-10s %-10s %8d %14.0f %12.3f\n", ds, a, wc, r.WritesPerS, r.AllocsPerEdge())
				}
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
