package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/gen"
	"kcore/internal/shard"
	"kcore/internal/stats"
)

// MVReadsResult is one row of the multi-version reads experiment:
// throughput of retained-epoch bulk reads — each read pins a cut `Depth`
// epochs behind the commit frontier and reconstructs viewBulkSize vertices
// there — against an engine under concurrent batch updates. Depth 0 with
// Retained 0 is the retention-disabled baseline (pinned reads of the
// current epoch, exactly the viewreads experiment's read shape), so the
// edges/s column doubles as the proof that enabling retention leaves the
// update path unchanged.
type MVReadsResult struct {
	Dataset    string
	Shards     int
	Depth      int // epochs behind the frontier each read targets
	Retained   int // configured retention depth (0 = disabled baseline)
	Readers    int
	Writers    int
	Views      int64 // retained bulk reads completed
	ViewVerts  int64 // vertices served through retained reads
	Misses     int64 // reads skipped because the target epoch was evicted/uncommitted
	Edges      int64 // edges applied by the write phase
	Elapsed    time.Duration
	Epochs     uint64
	ViewsPerS  float64
	VertsPerS  float64
	WritesPerS float64
}

// RunMVReads measures the retained-read path at one (shard count, depth)
// point: cfg.Writers concurrent clients submit insertion batches through
// the scheduler while cfg.Readers goroutines repeatedly pin the epoch
// `depth` behind the current frontier, bulk-read viewBulkSize random
// vertices exactly at that retired cut, and release the pin. With
// retained == 0 the readers fall back to frontier-pinned reads
// (ReadManyPinned), which is the pre-retention baseline.
func RunMVReads(cfg Config, shards, depth, retained int) (MVReadsResult, error) {
	cfg = cfg.withDefaults()
	res := MVReadsResult{
		Dataset: cfg.Dataset, Shards: shards, Depth: depth, Retained: retained,
		Readers: cfg.Readers, Writers: cfg.Writers,
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		p, err := prepare(cfg)
		if err != nil {
			return res, err
		}
		batches := p.stream.Insertions
		if cfg.MaxBatches > 0 && len(batches) > cfg.MaxBatches {
			batches = batches[:cfg.MaxBatches]
		}
		eng := shard.New(p.n, shards, cfg.Params)
		eng.SetRetainedEpochs(retained)
		eng.Insert(p.stream.Base)
		// Prime the epoch history so a target `depth` behind the frontier
		// exists from the first read on: each (no-op) re-insert commits one
		// batch on one shard, bumping the global epoch.
		for i := 0; i < depth && len(p.stream.Base) > 0; i++ {
			eng.Insert(p.stream.Base[:1])
		}
		epoch0 := eng.Epoch()

		var views, viewVerts, misses atomic.Int64
		stop := make(chan struct{})
		var readerWG sync.WaitGroup
		for r := 0; r < cfg.Readers; r++ {
			readerWG.Add(1)
			w := gen.NewUniformReads(p.n, cfg.Seed+int64(trial*100+r))
			go func() {
				defer readerWG.Done()
				vs := make([]uint32, viewBulkSize)
				out := make([]float64, viewBulkSize)
				for {
					select {
					case <-stop:
						return
					default:
					}
					for i := range vs {
						vs[i] = w.Next()
					}
					if retained == 0 {
						eng.ReadManyPinned(vs, out)
						views.Add(1)
						viewVerts.Add(viewBulkSize)
						continue
					}
					e := eng.Epoch()
					if e < uint64(depth) {
						misses.Add(1)
						continue
					}
					target := e - uint64(depth)
					if err := eng.PinEpoch(target); err != nil {
						misses.Add(1)
						continue
					}
					err := eng.ReadManyAt(vs, out, target)
					eng.UnpinEpoch(target)
					if err != nil {
						misses.Add(1)
						continue
					}
					views.Add(1)
					viewVerts.Add(viewBulkSize)
				}
			}()
		}

		var next, edges atomic.Int64
		var writerWG sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < cfg.Writers; w++ {
			writerWG.Add(1)
			go func() {
				defer writerWG.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(batches) {
						return
					}
					edges.Add(int64(eng.Insert(batches[i])))
				}
			}()
		}
		writerWG.Wait()
		elapsed := time.Since(t0)
		close(stop)
		readerWG.Wait()

		res.Views += views.Load()
		res.ViewVerts += viewVerts.Load()
		res.Misses += misses.Load()
		res.Edges += edges.Load()
		res.Elapsed += elapsed
		res.Epochs += eng.Epoch() - epoch0
		res.ViewsPerS += stats.Throughput(views.Load(), elapsed)
		res.VertsPerS += stats.Throughput(viewVerts.Load(), elapsed)
		res.WritesPerS += stats.Throughput(edges.Load(), elapsed)
	}
	res.ViewsPerS /= float64(cfg.Trials)
	res.VertsPerS /= float64(cfg.Trials)
	res.WritesPerS /= float64(cfg.Trials)
	return res, nil
}

// FigureMVReads runs and prints the multi-version reads experiment:
// retained-read throughput versus retention depth, per shard count. The
// first row of each shard block is the retention-disabled baseline; its
// edges/s column against the retained rows' is the update-path-overhead
// evidence (retention captures undo records the batch already computes, so
// the rows should agree within noise).
func FigureMVReads(w io.Writer, datasets []string, shardCounts, depths []int, cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Multi-version reads: retained bulk reads (%d vertices each) vs retention depth (writers=%d, readers=%d)\n",
		viewBulkSize, cfg.Writers, cfg.Readers)
	fmt.Fprintf(w, "%-10s %7s %6s %7s %12s %14s %14s %9s %10s\n",
		"graph", "shards", "depth", "retain", "views/s", "verts/s", "edges/s", "vs-base", "misses")
	for _, ds := range datasets {
		c := cfg
		c.Dataset = ds
		for _, p := range shardCounts {
			base, err := RunMVReads(c, p, 0, 0)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %7d %6s %7d %12.0f %14.0f %14.0f %9s %10d\n",
				ds, p, "live", 0, base.ViewsPerS, base.VertsPerS, base.WritesPerS, "1.00x", base.Misses)
			for _, d := range depths {
				r, err := RunMVReads(c, p, d, d+4)
				if err != nil {
					return err
				}
				rel := 0.0
				if base.WritesPerS > 0 {
					rel = r.WritesPerS / base.WritesPerS
				}
				fmt.Fprintf(w, "%-10s %7d %6d %7d %12.0f %14.0f %14.0f %8.2fx %10d\n",
					ds, p, d, d+4, r.ViewsPerS, r.VertsPerS, r.WritesPerS, rel, r.Misses)
			}
		}
	}
	fmt.Fprintln(w)
	return nil
}
