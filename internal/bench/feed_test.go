package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFeed(t *testing.T) {
	for _, shards := range []int{1, 2} {
		// Drained fan-out: commits go through and events flow.
		r, err := RunFeed(smallCfg(), shards, 2, false)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if r.Edges == 0 || r.EdgesPerS <= 0 {
			t.Fatalf("shards=%d: no throughput: %+v", shards, r)
		}
		if r.Events == 0 || r.Deliveries == 0 {
			t.Fatalf("shards=%d: feed saw nothing: %+v", shards, r)
		}

		// Stalled 1-slot subscriber: commits still go through; overruns
		// show up as drops, not as a collapsed edge rate.
		r, err = RunFeed(smallCfg(), shards, 0, true)
		if err != nil {
			t.Fatalf("shards=%d stalled: %v", shards, err)
		}
		if r.Edges == 0 || r.EdgesPerS <= 0 {
			t.Fatalf("shards=%d stalled: commits stalled: %+v", shards, r)
		}
		if r.Drops == 0 || r.DropRate <= 0 {
			t.Fatalf("shards=%d stalled: no drops recorded: %+v", shards, r)
		}
	}

	// Zero subscribers: hub attached, nothing extracted or delivered.
	r, err := RunFeed(smallCfg(), 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Events != 0 || r.Deliveries != 0 {
		t.Fatalf("idle hub extracted events: %+v", r)
	}
}

func TestFigureFeedDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := FigureFeed(&buf, []string{"tiny"}, []int{1, 2}, smallCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Change feed", "edges/s", "events/s", "drop rate", "tiny"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
