package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/cplds"
	"kcore/internal/gen"
	"kcore/internal/plds"
	"kcore/internal/stats"
)

// AblationResult compares CPLDS read performance with a design knob
// toggled. The paper's §5.2 singles out path compression as the
// optimization that keeps root paths short; this quantifies it.
type AblationResult struct {
	Dataset     string
	Compression bool
	Reads       stats.Summary
	Retries     uint64
	UpdateMean  time.Duration
}

// RunPathCompressionAblation measures linearizable read latency and
// update time with path compression enabled vs disabled.
func RunPathCompressionAblation(cfg Config) ([]AblationResult, error) {
	cfg = cfg.withDefaults()
	var out []AblationResult
	for _, compression := range []bool{true, false} {
		p, err := prepare(cfg)
		if err != nil {
			return nil, err
		}
		batches := measuredBatches(p, cfg)
		c := cplds.New(p.n, cfg.Params)
		c.SetPathCompression(compression)
		c.InsertBatch(p.stream.Base)
		if cfg.Kind == plds.Delete {
			for _, b := range batches {
				c.InsertBatch(b)
			}
		}
		rec := stats.NewLatencyRecorder(1 << 14)
		var mu sync.Mutex
		stop := make(chan struct{})
		ready := make([]atomic.Bool, cfg.Readers)
		var wg sync.WaitGroup
		for r := 0; r < cfg.Readers; r++ {
			wg.Add(1)
			w := gen.NewUniformReads(p.n, cfg.Seed+int64(r))
			go func(r int) {
				defer wg.Done()
				local := stats.NewLatencyRecorder(1 << 12)
				for {
					select {
					case <-stop:
						mu.Lock()
						rec.Merge(local)
						mu.Unlock()
						return
					default:
					}
					v := w.Next()
					t0 := time.Now()
					c.Read(v)
					local.Record(time.Since(t0))
					ready[r].Store(true)
				}
			}(r)
		}
		waitReady(ready)
		var updTotal time.Duration
		for _, b := range batches {
			t0 := time.Now()
			if cfg.Kind == plds.Insert {
				c.InsertBatch(b)
			} else {
				c.DeleteBatch(b)
			}
			updTotal += time.Since(t0)
		}
		close(stop)
		wg.Wait()
		res := AblationResult{
			Dataset:     cfg.Dataset,
			Compression: compression,
			Reads:       rec.Summarize(),
			Retries:     c.ReadRetries(),
		}
		if len(batches) > 0 {
			res.UpdateMean = updTotal / time.Duration(len(batches))
		}
		out = append(out, res)
	}
	return out, nil
}

// Ablation prints the path-compression ablation rows.
func Ablation(w io.Writer, datasets []string, cfg Config) error {
	fmt.Fprintf(w, "Ablation: path compression in dependency-DAG traversals (insert batches)\n")
	fmt.Fprintf(w, "%-10s %-14s %14s %14s %10s %14s\n",
		"graph", "compression", "read avg", "read p99.99", "retries", "update avg")
	for _, ds := range datasets {
		c := cfg
		c.Dataset = ds
		results, err := RunPathCompressionAblation(c)
		if err != nil {
			return err
		}
		for _, r := range results {
			mode := "on"
			if !r.Compression {
				mode = "off"
			}
			fmt.Fprintf(w, "%-10s %-14s %14v %14v %10d %14v\n",
				ds, mode, r.Reads.Mean, r.Reads.P9999, r.Retries, r.UpdateMean)
		}
	}
	fmt.Fprintln(w)
	return nil
}
