package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"kcore/internal/feed"
	"kcore/internal/shard"
	"kcore/internal/stats"
)

// FeedResult is one row of the change-feed experiment: the commit path's
// throughput with a given subscriber fan-out attached, plus the feed-side
// volume that fan-out produced.
type FeedResult struct {
	Dataset     string
	Shards      int
	Subscribers int  // fast (drained) all-events subscribers
	Stalled     bool // plus one 1-slot subscriber that is never drained
	Edges       int64
	Elapsed     time.Duration
	EdgesPerS   float64 // commit throughput with this fan-out

	Events     uint64  // coreness transitions extracted at commit
	EventsPerS float64 // extraction rate
	Deliveries uint64  // per-subscriber deliveries enqueued
	Drops      uint64  // deliveries dropped at full buffers
	Gaps       uint64  // gap markers delivered
	DropRate   float64 // drops / (deliveries + drops)
}

// RunFeed measures the update path with `subscribers` drained all-events
// subscriptions attached (0 measures the pure fast-path: hub attached,
// nobody listening). With stalled, one extra 1-slot subscription is opened
// and never read, so every commit past its first overruns it — the row's
// drop counters then quantify the backpressure policy (drop + gap, never
// block commit).
func RunFeed(cfg Config, shards, subscribers int, stalled bool) (FeedResult, error) {
	cfg = cfg.withDefaults()
	res := FeedResult{Dataset: cfg.Dataset, Shards: shards, Subscribers: subscribers, Stalled: stalled}
	for trial := 0; trial < cfg.Trials; trial++ {
		p, err := prepare(cfg)
		if err != nil {
			return res, err
		}
		batches := p.stream.Insertions
		if cfg.MaxBatches > 0 && len(batches) > cfg.MaxBatches {
			batches = batches[:cfg.MaxBatches]
		}
		eng := shard.New(p.n, shards, cfg.Params)
		eng.Insert(p.stream.Base)

		hub := feed.NewHub(0)
		eng.SetEventHub(hub)

		// Fast subscribers: each drained by its own goroutine.
		var dwg sync.WaitGroup
		for i := 0; i < subscribers; i++ {
			sub, err := hub.Subscribe(feed.Filter{}, feed.DefaultBuffer)
			if err != nil {
				return res, err
			}
			dwg.Add(1)
			go func(sub *feed.Subscription) {
				defer dwg.Done()
				for range sub.C() {
				}
			}(sub)
		}
		if stalled {
			if _, err := hub.Subscribe(feed.Filter{}, 1); err != nil {
				return res, err
			}
		}

		var next, edges atomic.Int64
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < cfg.Writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(batches) {
						return
					}
					edges.Add(int64(eng.Insert(batches[i])))
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(t0)

		st := hub.Stats()
		hub.Close() // ends the drain goroutines
		dwg.Wait()
		eng.SetEventHub(nil)

		res.Edges += edges.Load()
		res.Elapsed += elapsed
		res.EdgesPerS += stats.Throughput(edges.Load(), elapsed)
		res.Events += st.Events
		res.EventsPerS += stats.Throughput(int64(st.Events), elapsed)
		res.Deliveries += st.Deliveries
		res.Drops += st.Drops
		res.Gaps += st.Gaps
	}
	res.EdgesPerS /= float64(cfg.Trials)
	res.EventsPerS /= float64(cfg.Trials)
	if total := res.Deliveries + res.Drops; total > 0 {
		res.DropRate = float64(res.Drops) / float64(total)
	}
	return res, nil
}

// FigureFeed runs and prints the change-feed experiment: commit throughput
// at increasing subscriber fan-out (the 0-subscriber row is the baseline
// the zero-cost claim is judged against), the event extraction rate, and a
// final row with a stalled 1-slot subscriber demonstrating the drop+gap
// policy (commit throughput must not collapse).
func FigureFeed(w io.Writer, datasets []string, shardCounts []int, cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Change feed: commit throughput under subscriber fan-out (writers=%d)\n", cfg.Writers)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %12s %12s %12s %10s %8s\n",
		"graph", "shards", "subs", "stalled", "edges/s", "events/s", "deliveries", "drop rate", "gaps")
	for _, ds := range datasets {
		c := cfg
		c.Dataset = ds
		for _, shards := range shardCounts {
			for _, fan := range []struct {
				subs    int
				stalled bool
			}{{0, false}, {1, false}, {64, false}, {1024, false}, {1, true}} {
				r, err := RunFeed(c, shards, fan.subs, fan.stalled)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-10s %8d %8d %8v %12.0f %12.0f %12d %9.1f%% %8d\n",
					ds, shards, r.Subscribers, r.Stalled, r.EdgesPerS, r.EventsPerS,
					r.Deliveries, 100*r.DropRate, r.Gaps)
			}
		}
	}
	fmt.Fprintln(w)
	return nil
}
