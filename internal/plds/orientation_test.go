package plds

import (
	"testing"

	"kcore/internal/gen"
	"kcore/internal/graph"
)

func TestOrientedNeighborsCoverEveryEdgeOnce(t *testing.T) {
	const n = 400
	p := New(n, defaultP(), nil)
	edges := gen.ChungLu(n, 3000, 2.3, 72)
	p.InsertBatch(edges)
	seen := map[graph.Edge]int{}
	for v := uint32(0); v < n; v++ {
		p.OrientedNeighbors(v, func(w uint32) bool {
			seen[graph.E(v, w).Canon()]++
			return true
		})
	}
	for e, c := range seen {
		if c != 1 {
			t.Fatalf("edge %v oriented %d times", e, c)
		}
	}
	if int64(len(seen)) != p.Graph().NumEdges() {
		t.Fatalf("oriented %d edges, graph has %d", len(seen), p.Graph().NumEdges())
	}
}

func TestOrientationOutDegreeBoundedByInvariant(t *testing.T) {
	const n = 500
	p := New(n, defaultP(), nil)
	edges := gen.ChungLu(n, 5000, 2.3, 73)
	p.InsertBatch(edges)
	for v := uint32(0); v < n; v++ {
		out := 0
		p.OrientedNeighbors(v, func(uint32) bool { out++; return true })
		if int32(out) > p.UpDegree(v) {
			t.Fatalf("vertex %d: out-degree %d exceeds up-degree %d", v, out, p.UpDegree(v))
		}
		// Invariant 1 bounds the up-degree one level up: the bound of v's
		// own level applies when v is below the top.
		if lv := p.Level(v); lv < p.S.MaxLevel() {
			if float64(p.UpDegree(v)) > p.S.UpperBound(lv) {
				t.Fatalf("vertex %d: up-degree %d above Invariant 1 bound %.1f",
					v, p.UpDegree(v), p.S.UpperBound(lv))
			}
		}
	}
}

func TestOrientationUpdatesWithDeletions(t *testing.T) {
	const n = 200
	p := New(n, defaultP(), nil)
	edges := gen.ErdosRenyi(n, 1600, 74)
	p.InsertBatch(edges)
	p.DeleteBatch(edges[:800])
	count := 0
	for v := uint32(0); v < n; v++ {
		p.OrientedNeighbors(v, func(uint32) bool { count++; return true })
	}
	if int64(count) != p.Graph().NumEdges() {
		t.Fatalf("oriented %d edges after deletions, graph has %d", count, p.Graph().NumEdges())
	}
}
