package plds

import (
	"testing"

	"kcore/internal/gen"
)

// BenchmarkBatchSteadyState measures the steady-state batch hot path: a
// fixed block of edges is alternately deleted and re-inserted, so levels,
// adjacency capacity and the engine's scratch arenas all reach a fixed
// point. allocs/op here is the per-batch-pair steady-state allocation count
// the zero-allocation work targets.
func BenchmarkBatchSteadyState(b *testing.B) {
	const n = 20000
	edges := gen.ChungLu(n, 60000, 2.4, 7)
	p := New(n, defaultP(), nil)
	p.InsertBatch(edges)
	block := edges[:10000]
	// Warm one cycle so slice capacities settle before measurement.
	p.DeleteBatch(block)
	p.InsertBatch(block)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DeleteBatch(block)
		p.InsertBatch(block)
	}
	b.StopTimer()
	edgesPerOp := float64(2 * len(block))
	b.ReportMetric(edgesPerOp*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}
