// Package plds implements the Parallel Level Data Structure (PLDS) of Liu,
// Shi, Yu, Dhulipala and Shun (SPAA 2022): a parallel batch-dynamic version
// of the LDS that processes batches of edge insertions or deletions with
// level-synchronous parallel vertex moves.
//
// During an insertion batch, levels are visited in increasing order and all
// vertices at the current level that violate Invariant 1 move up one level
// in parallel; each level is left for good once processed. During a
// deletion batch, every vertex that violates Invariant 2 computes its
// desire level — the highest level below its current one where Invariant 2
// holds — and levels are again visited in increasing order, moving every
// vertex whose desire level equals the current level down in parallel.
//
// The implementation exposes a Tracker interface with hooks at batch start,
// first vertex move, and batch end. The CPLDS (internal/cplds) uses these
// hooks to maintain operation descriptors and dependency DAGs for its
// concurrent reads; the plain PLDS passes a nil tracker.
package plds

import (
	"cmp"
	"slices"
	"sync"
	"sync/atomic"

	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/parallel"
)

// Kind distinguishes insertion batches from deletion batches.
type Kind int

const (
	// Insert marks a batch of edge insertions.
	Insert Kind = iota
	// Delete marks a batch of edge deletions.
	Delete
)

func (k Kind) String() string {
	if k == Insert {
		return "insert"
	}
	return "delete"
}

// Tracker receives callbacks from the batch update engine. Implementations
// must tolerate VertexMoving being invoked concurrently from multiple
// goroutines (each vertex exactly once per batch). A nil Tracker is valid.
type Tracker interface {
	// BatchStart is called once per batch before any level changes, with
	// the deduplicated canonical edges that will actually be applied.
	BatchStart(kind Kind, applied []graph.Edge)
	// VertexMoving is called the first time v moves during the current
	// batch, before its level changes; oldLevel is v's pre-batch level.
	VertexMoving(v uint32, oldLevel int32, kind Kind)
	// BatchEnd is called once per batch after all level changes.
	BatchEnd(kind Kind)
}

// decision is the re-validation outcome for one desire-bucket candidate in
// a deletion sweep: whether the vertex moves this round, and otherwise the
// bucket to requeue it into, offset by one so that zero means "drop".
type decision struct {
	move bool
	dl   int32
}

// levelBufPool holds neighbour-level gather buffers for desireLevel, which
// runs concurrently from the parallel re-validation loop; pooling keeps the
// deletion hot path allocation-free without threading worker identities.
var levelBufPool = sync.Pool{New: func() any { b := make([]int32, 0, 1024); return &b }}

// growScratch returns buf resized to n, reallocating only when capacity is
// insufficient; contents are unspecified.
func growScratch[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n, n+n/2)
	}
	return buf[:n]
}

// extraScratch returns n per-mover neighbour buffers truncated to zero
// length; the outer slice and the inner backing arrays are reused across
// rounds and batches (workers write back grown buffers by index).
func (p *PLDS) extraScratch(n int) [][]uint32 {
	for len(p.extraBufs) < n {
		p.extraBufs = append(p.extraBufs, nil)
	}
	extra := p.extraBufs[:n]
	for i := range extra {
		extra[i] = extra[i][:0]
	}
	return extra
}

// PLDS is the parallel batch-dynamic level data structure.
//
// Concurrency contract: InsertBatch and DeleteBatch must be called from a
// single updater goroutine (they parallelize internally). Level and
// Estimate use atomic loads and may be called at any time; however, without
// the CPLDS read protocol, values read concurrently with a batch are not
// linearizable (this is exactly the paper's NonSync baseline).
type PLDS struct {
	S       *lds.Structure
	g       *graph.Dynamic
	level   []atomic.Int32
	up      []atomic.Int32
	tracker Tracker

	batchID   int64          // current batch number (engine-internal)
	epoch     atomic.Uint64  // committed (fully applied) batches, published at batch end
	round     int64          // global level-iteration counter
	moveStamp []int64        // batch in which v last moved (first-move hook)
	claim     []atomic.Int64 // round-claim stamps for mover dedup
	queued    []atomic.Int64 // batch-stamp marking v as present in a desire bucket

	dirty   [][]uint32 // per-level dirty lists (insertion phase), reused
	buckets [][]uint32 // per-level desire buckets (deletion phase), reused

	// Per-round scratch arenas, reused across rounds and batches by the
	// single updater so the steady-state batch hot path allocates nothing.
	moversBuf    []uint32
	targetsBuf   []int32
	oldLevelsBuf []int32
	decBuf       []decision
	extraBufs    [][]uint32
	seedBuf      []uint32

	// jump is the maximum number of levels a violating vertex may rise in
	// one step during the insertion phase (default 1). This mirrors the
	// "-opt" flag of the paper's implementation (§7), which trades per-move
	// overhead for fewer rounds; unlike the original, the jump target is
	// clamped to the highest level where Invariant 2 still holds, so the
	// invariants (and the approximation bound) are preserved.
	jump int32
}

// SetLevelJump sets the maximum levels per upward move (>= 1) for the
// insertion phase — the analogue of the paper's "-opt N" speed
// optimization. Must not be called during a batch.
func (p *PLDS) SetLevelJump(j int) {
	if j < 1 {
		j = 1
	}
	p.jump = int32(j)
}

// New returns an empty PLDS over n vertices.
func New(n int, p lds.Params, tracker Tracker) *PLDS {
	s := lds.NewStructure(n, p)
	return &PLDS{
		S:         s,
		g:         graph.NewDynamic(n),
		level:     make([]atomic.Int32, n),
		up:        make([]atomic.Int32, n),
		tracker:   tracker,
		moveStamp: make([]int64, n),
		claim:     make([]atomic.Int64, n),
		queued:    make([]atomic.Int64, n),
		dirty:     make([][]uint32, s.K+1),
		buckets:   make([][]uint32, s.K+1),
		jump:      1,
	}
}

// NumVertices returns the number of vertices.
func (p *PLDS) NumVertices() int { return len(p.level) }

// Graph exposes the underlying dynamic graph. It must not be mutated by
// callers and must not be read concurrently with a running batch.
func (p *PLDS) Graph() *graph.Dynamic { return p.g }

// Level returns the current (live) level of v via an atomic load.
func (p *PLDS) Level(v uint32) int32 { return p.level[v].Load() }

// Estimate returns the coreness estimate computed from v's live level.
func (p *PLDS) Estimate(v uint32) float64 {
	return p.S.EstimateFromLevel(p.level[v].Load())
}

// countAtLeast returns |{w ∈ N(v) : level(w) >= x}|.
func (p *PLDS) countAtLeast(v uint32, x int32) int32 {
	var c int32
	p.g.Neighbors(v, func(w uint32) bool {
		if p.level[w].Load() >= x {
			c++
		}
		return true
	})
	return c
}

// violatesInv1 reports whether v breaks the degree upper bound.
func (p *PLDS) violatesInv1(v uint32) bool {
	lv := p.level[v].Load()
	if lv >= p.S.MaxLevel() {
		return false
	}
	return float64(p.up[v].Load()) > p.S.UpperBound(lv)
}

// violatesInv2 reports whether v breaks the degree lower bound.
func (p *PLDS) violatesInv2(v uint32) bool {
	lv := p.level[v].Load()
	if lv == 0 {
		return false
	}
	cnt := p.countAtLeast(v, lv-1)
	return float64(cnt) < p.S.LowerBound(lv)
}

// desireLevel returns the highest level d < level(v) at which v satisfies
// Invariant 2 (d = 0 always does). Only meaningful when v violates
// Invariant 2 at its current level.
func (p *PLDS) desireLevel(v uint32) int32 {
	lv := p.level[v].Load()
	if lv <= 1 {
		return 0
	}
	// Gather neighbour levels clamped to lv (levels >= lv are equivalent
	// for every threshold we test) into a pooled buffer, sort descending.
	bufp := levelBufPool.Get().(*[]int32)
	ls := (*bufp)[:0]
	p.g.Neighbors(v, func(w uint32) bool {
		l := p.level[w].Load()
		if l > lv {
			l = lv
		}
		ls = append(ls, l)
		return true
	})
	slices.SortFunc(ls, func(a, b int32) int { return cmp.Compare(b, a) })
	idx, cnt, out := 0, int32(0), int32(0)
	for d := lv - 1; d >= 1; d-- {
		thr := d - 1
		for idx < len(ls) && ls[idx] >= thr {
			cnt++
			idx++
		}
		if float64(cnt) >= p.S.LowerBound(d) {
			out = d
			break
		}
	}
	*bufp = ls
	levelBufPool.Put(bufp)
	return out
}

// jumpTarget returns the level a violating vertex at level l should rise
// to: l+1 when jumping is off, otherwise the highest level in
// (l, l+jump] at which Invariant 2 still holds (level l+1 always
// qualifies for an Invariant 1 violator, so the result is always > l).
func (p *PLDS) jumpTarget(v uint32, l int32) int32 {
	if p.jump <= 1 {
		return l + 1
	}
	max := l + p.jump
	if max > p.S.MaxLevel() {
		max = p.S.MaxLevel()
	}
	target := l + 1
	for t := l + 2; t <= max; t++ {
		// Invariant 2 at t: count(level >= t-1) >= lower bound of t.
		if float64(p.countAtLeast(v, t-1)) >= p.S.LowerBound(t) {
			target = t
		} else {
			break // validity is monotone: higher levels also fail
		}
	}
	return target
}

// batchStart runs common batch prologue and returns whether work remains.
func (p *PLDS) batchStart(kind Kind, applied []graph.Edge) {
	p.batchID++
	if p.tracker != nil {
		p.tracker.BatchStart(kind, applied)
	}
}

func (p *PLDS) batchEnd(kind Kind) {
	if p.tracker != nil {
		p.tracker.BatchEnd(kind)
	}
	p.epoch.Add(1)
}

// Epoch returns the number of committed update batches: the epoch counter
// is published once per batch, after every level change of the batch has
// been applied (and after the tracker's BatchEnd hook has run). It is the
// plain-PLDS analogue of the CPLDS commit epoch — the CPLDS publishes its
// own commit sequence from its BatchEnd hook for consistent-cut validation
// and cross-checks the two counters' lockstep in CheckInvariants.
func (p *PLDS) Epoch() uint64 { return p.epoch.Load() }

// Restore resets a freshly constructed PLDS to a previously captured
// quiescent state: the graph, every vertex's level, and the committed
// epoch. The up counters are recomputed from the restored graph and
// levels (up is derived state: up[v] = |{w ∈ N(v): level(w) >= level(v)}|),
// and all batch-scoped scratch (stamps, dirty lists, arenas) stays at its
// fresh zero state, which the first post-restore batch initializes as
// usual. Quiescent use only; levels must satisfy the LDS invariants (they
// do whenever they were captured from a quiescent structure with the same
// parameters).
func (p *PLDS) Restore(g *graph.Dynamic, levels []int32, epoch uint64) {
	p.g = g
	for v, l := range levels {
		p.level[v].Store(l)
	}
	parallel.For(len(levels), func(v int) {
		p.up[v].Store(p.countAtLeast(uint32(v), levels[v]))
	})
	p.epoch.Store(epoch)
}

// noteGrain is the mover count below which noteFirstMoves runs inline: the
// sequential loop avoids allocating a dispatch closure for the (typical)
// small rounds, while large cascades still fan out.
const noteGrain = 512

// noteFirstMoves invokes the tracker's VertexMoving hook for every mover
// that has not yet moved in this batch. movers must be duplicate-free.
func (p *PLDS) noteFirstMoves(movers []uint32, kind Kind) {
	if p.tracker == nil {
		return
	}
	if len(movers) < noteGrain {
		for _, v := range movers {
			if p.moveStamp[v] != p.batchID {
				p.moveStamp[v] = p.batchID
				p.tracker.VertexMoving(v, p.level[v].Load(), kind)
			}
		}
		return
	}
	parallel.For(len(movers), func(i int) {
		v := movers[i]
		if p.moveStamp[v] != p.batchID {
			p.moveStamp[v] = p.batchID
			p.tracker.VertexMoving(v, p.level[v].Load(), kind)
		}
	})
}

// InsertBatch inserts a batch of edges and restores the invariants. It
// returns the number of edges actually applied (after dedup/filtering).
func (p *PLDS) InsertBatch(edges []graph.Edge) int {
	fresh := p.g.InsertEdges(edges)
	p.batchStart(Insert, fresh)
	defer p.batchEnd(Insert)
	if len(fresh) == 0 {
		return 0
	}
	// Adjust up counters for the new edges.
	parallel.For(len(fresh), func(i int) {
		e := fresh[i]
		lu, lv := p.level[e.U].Load(), p.level[e.V].Load()
		if lv >= lu {
			p.up[e.U].Add(1)
		}
		if lu >= lv {
			p.up[e.V].Add(1)
		}
	})
	// Seed dirty lists with the endpoints at their current levels.
	maxDirty := int32(0)
	for _, e := range fresh {
		for _, v := range [2]uint32{e.U, e.V} {
			lv := p.level[v].Load()
			p.dirty[lv] = append(p.dirty[lv], v)
			if lv > maxDirty {
				maxDirty = lv
			}
		}
	}
	// Level-synchronous upward sweep. Candidate lists are truncated, not
	// nilled, so their backing arrays are reused across rounds and batches
	// (appends during a round only ever target levels above l, so the
	// drained list's backing is never overwritten while cand is live).
	//
	// The phase bodies are hoisted out of the round loop and capture the
	// cur* locals by reference: one closure allocation per batch instead of
	// four per round, which matters because sweeps run many small rounds.
	var (
		curL       int32
		curRound   int64
		curMovers  []uint32
		curTargets []int32
		curExtra   [][]uint32
	)
	// Phase A: compute each mover's target (one level up, or a jump of up
	// to p.jump levels when the optimization is on) before any level
	// changes, so targets are deterministic; then raise all movers.
	phaseA := func(i int) { curTargets[i] = p.jumpTarget(curMovers[i], curL) }
	phaseRaise := func(i int) { p.level[curMovers[i]].Store(curTargets[i]) }
	// Phase B: recompute movers' up counters against settled levels.
	phaseB := func(i int) {
		v := curMovers[i]
		p.up[v].Store(p.countAtLeast(v, curTargets[i]))
	}
	// Phase C: a non-mover neighbour w gains an up-neighbour if v rose
	// past it: l < level(w) <= target(v). Mark such neighbours dirty at
	// their own level; movers are recognized by their round claim and
	// were fully recomputed in Phase B.
	phaseC := func(i int) {
		v := curMovers[i]
		t := curTargets[i]
		l, round := curL, curRound
		local := curExtra[i]
		p.g.Neighbors(v, func(w uint32) bool {
			lw := p.level[w].Load()
			if lw > l && lw <= t && p.claim[w].Load() != round {
				p.up[w].Add(1)
				local = append(local, w)
			}
			return true
		})
		curExtra[i] = local
	}
	for l := int32(0); l <= maxDirty && l < p.S.MaxLevel(); l++ {
		cand := p.dirty[l]
		if len(cand) == 0 {
			continue
		}
		p.dirty[l] = cand[:0]
		p.round++
		round := p.round
		// Movers: at level l, violating Invariant 1, claimed exactly once.
		// The claim swap is a side effect, so this filter stays sequential;
		// the predicate is O(1) loads and the scan reuses the arena.
		movers := p.moversBuf[:0]
		for _, v := range cand {
			if p.level[v].Load() == l && p.violatesInv1(v) &&
				p.claim[v].Swap(round) != round {
				movers = append(movers, v)
			}
		}
		p.moversBuf = movers
		if len(movers) == 0 {
			continue
		}
		p.noteFirstMoves(movers, Insert)
		p.targetsBuf = growScratch(p.targetsBuf, len(movers))
		curL, curRound, curMovers, curTargets = l, round, movers, p.targetsBuf
		curExtra = p.extraScratch(len(movers))
		parallel.For(len(movers), phaseA)
		parallel.For(len(movers), phaseRaise)
		parallel.For(len(movers), phaseB)
		parallel.For(len(movers), phaseC)
		for i, v := range movers {
			t := curTargets[i]
			p.dirty[t] = append(p.dirty[t], v)
			if t > maxDirty {
				maxDirty = t
			}
		}
		for _, loc := range curExtra {
			for _, w := range loc {
				lw := p.level[w].Load()
				p.dirty[lw] = append(p.dirty[lw], w)
				if lw > maxDirty {
					maxDirty = lw
				}
			}
		}
	}
	// Vertices can be parked at MaxLevel, which the sweep never visits
	// (Invariant 1 cannot be violated there); drop them so stale entries
	// don't accumulate across batches.
	p.dirty[p.S.MaxLevel()] = p.dirty[p.S.MaxLevel()][:0]
	return len(fresh)
}

// DeleteBatch deletes a batch of edges and restores the invariants. It
// returns the number of edges actually removed.
func (p *PLDS) DeleteBatch(edges []graph.Edge) int {
	removed := p.g.DeleteEdges(edges)
	p.batchStart(Delete, removed)
	defer p.batchEnd(Delete)
	if len(removed) == 0 {
		return 0
	}
	// Adjust up counters for the removed edges.
	parallel.For(len(removed), func(i int) {
		e := removed[i]
		lu, lv := p.level[e.U].Load(), p.level[e.V].Load()
		if lv >= lu {
			p.up[e.U].Add(-1)
		}
		if lu >= lv {
			p.up[e.V].Add(-1)
		}
	})
	// Seed the desire buckets with violating endpoints.
	maxBucket := int32(-1)
	seed := p.seedBuf[:0]
	for _, e := range removed {
		seed = append(seed, e.U, e.V)
	}
	p.seedBuf = seed
	for _, v := range seed {
		if p.queued[v].Load() == p.batchID {
			continue
		}
		if !p.violatesInv2(v) {
			continue
		}
		p.queued[v].Store(p.batchID)
		dl := p.desireLevel(v)
		p.buckets[dl] = append(p.buckets[dl], v)
		if dl > maxBucket {
			maxBucket = dl
		}
	}
	// Upward sweep over desire levels. As in the insertion sweep, drained
	// bucket lists are truncated rather than nilled so their backing
	// arrays are reused; cand is only read before the phases run, so
	// re-appending into the drained bucket (possible via Phase C) is safe.
	// As in the insertion sweep, the parallel bodies are hoisted out of the
	// round loop and capture the cur* locals: one closure allocation per
	// batch instead of four per round.
	var (
		curTarget int32
		curCand   []uint32
		curDec    []decision
		curMovers []uint32
		curOld    []int32
		curExtra  [][]uint32
	)
	// Re-validate candidates: their desire level may have risen since
	// they were bucketed (it cannot drop to a processed level — a
	// property the PLDS paper proves; requeueing handles both
	// directions defensively).
	validate := func(i int) {
		v := curCand[i]
		if !p.violatesInv2(v) {
			p.queued[v].Store(0)
			curDec[i] = decision{}
			return
		}
		dl := p.desireLevel(v)
		if dl == curTarget {
			curDec[i] = decision{move: true, dl: dl}
		} else {
			curDec[i] = decision{move: false, dl: dl + 1} // +1 flags requeue
		}
	}
	// Phase A: record old levels, then drop all movers to the target.
	readOld := func(i int) { curOld[i] = p.level[curMovers[i]].Load() }
	phaseDrop := func(i int) { p.level[curMovers[i]].Store(curTarget) }
	// Phase B: recompute movers' up counters; movers satisfy their
	// desire level by construction, so they leave the queue.
	phaseB := func(i int) {
		v := curMovers[i]
		p.up[v].Store(p.countAtLeast(v, curTarget))
		p.queued[v].Store(0)
	}
	// Phase C: adjust neighbours above the target level. A neighbour w
	// loses an up-neighbour if target < level(w) <= old(v), and loses an
	// Invariant 2 neighbour if target+1 < level(w) <= old(v)+1.
	phaseC := func(i int) {
		v := curMovers[i]
		old := curOld[i]
		target := curTarget
		local := curExtra[i]
		p.g.Neighbors(v, func(w uint32) bool {
			lw := p.level[w].Load()
			if lw <= target {
				return true // movers and settled-below neighbours
			}
			if lw <= old {
				p.up[w].Add(-1)
			}
			if lw > target+1 && lw <= old+1 {
				local = append(local, w)
			}
			return true
		})
		curExtra[i] = local
	}
	for l := int32(0); l <= maxBucket; l++ {
		target := l
		cand := p.buckets[target]
		if len(cand) == 0 {
			continue
		}
		p.buckets[target] = cand[:0]
		p.decBuf = growScratch(p.decBuf, len(cand))
		curTarget, curCand, curDec = target, cand, p.decBuf
		dec := p.decBuf
		parallel.For(len(cand), validate)
		movers := p.moversBuf[:0]
		for i, d := range dec {
			switch {
			case d.move:
				movers = append(movers, cand[i])
			case d.dl > 0:
				dl := d.dl - 1
				p.buckets[dl] = append(p.buckets[dl], cand[i])
				if dl > maxBucket {
					maxBucket = dl
				}
				if dl < target && dl-1 < l {
					// Defensive: theory says this cannot happen; revisit.
					l = dl - 1
				}
			}
		}
		p.moversBuf = movers
		if len(movers) == 0 {
			continue
		}
		p.noteFirstMoves(movers, Delete)
		p.oldLevelsBuf = growScratch(p.oldLevelsBuf, len(movers))
		curMovers, curOld = movers, p.oldLevelsBuf
		curExtra = p.extraScratch(len(movers))
		parallel.For(len(movers), readOld)
		parallel.For(len(movers), phaseDrop)
		parallel.For(len(movers), phaseB)
		parallel.For(len(movers), phaseC)
		// Enqueue affected neighbours that now violate Invariant 2.
		for _, loc := range curExtra {
			for _, w := range loc {
				if p.queued[w].Load() == p.batchID {
					continue
				}
				if !p.violatesInv2(w) {
					continue
				}
				p.queued[w].Store(p.batchID)
				dl := p.desireLevel(w)
				p.buckets[dl] = append(p.buckets[dl], w)
				if dl > maxBucket {
					maxBucket = dl
				}
				if dl <= target && dl-1 < l {
					// Defensive, like the requeue branch — and dl == target
					// must rewind too: the bucket being processed has
					// already been drained, so an entry landing in it now
					// would otherwise be stranded for the rest of the batch.
					l = dl - 1
				}
			}
		}
	}
	return len(removed)
}

// UpDegree returns |{w ∈ N(v) : level(w) >= level(v)}| — v's residual
// degree toward its own and higher levels. Invariant 1 bounds it by
// (2+3/λ)(1+δ)^(group(v)+1), i.e. O(approximate coreness of v).
func (p *PLDS) UpDegree(v uint32) int32 { return p.up[v].Load() }

// OrientedNeighbors visits v's out-neighbours in the dynamic low
// out-degree orientation induced by the level structure: each edge points
// from the endpoint at the lower (level, id) pair to the higher one. The
// out-degree of every vertex is at most UpDegree(v), which Invariant 1
// keeps within a constant factor of the vertex's coreness estimate — the
// "low out-degree orientation" application of the paper's §9, maintained
// dynamically with no extra work. Quiescent use only.
func (p *PLDS) OrientedNeighbors(v uint32, f func(w uint32) bool) {
	lv := p.level[v].Load()
	p.g.Neighbors(v, func(w uint32) bool {
		lw := p.level[w].Load()
		if lw > lv || (lw == lv && w > v) {
			return f(w)
		}
		return true
	})
}

// CheckInvariants verifies both LDS invariants and the cached up counters
// for every vertex. Must not run concurrently with a batch.
func (p *PLDS) CheckInvariants() error {
	return lds.CheckInvariants(p.S, p.g,
		func(v uint32) int32 { return p.level[v].Load() },
		func(v uint32) int32 { return p.up[v].Load() })
}
