package plds

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"kcore/internal/exact"
	"kcore/internal/gen"
	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/parallel"
)

func defaultP() lds.Params { return lds.DefaultParams() }

func TestKindString(t *testing.T) {
	if Insert.String() != "insert" || Delete.String() != "delete" {
		t.Fatal("Kind.String broken")
	}
}

func TestInsertBatchBasic(t *testing.T) {
	p := New(5, defaultP(), nil)
	applied := p.InsertBatch([]graph.Edge{graph.E(0, 1), graph.E(1, 0), graph.E(2, 2), graph.E(1, 2)})
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.Graph().NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", p.Graph().NumEdges())
	}
}

func TestDeleteBatchBasic(t *testing.T) {
	p := New(5, defaultP(), nil)
	p.InsertBatch([]graph.Edge{graph.E(0, 1), graph.E(1, 2), graph.E(2, 3)})
	removed := p.DeleteBatch([]graph.Edge{graph.E(1, 2), graph.E(3, 4)})
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyBatches(t *testing.T) {
	p := New(3, defaultP(), nil)
	if p.InsertBatch(nil) != 0 || p.DeleteBatch(nil) != 0 {
		t.Fatal("empty batches should apply nothing")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// epochTracker records the epoch observed inside each BatchEnd hook, to pin
// down the publication point: the epoch must advance after the hook (i.e.
// after all level changes), exactly once per batch.
type epochTracker struct {
	p      *PLDS
	atEnds []uint64
}

func (tr *epochTracker) BatchStart(Kind, []graph.Edge)    {}
func (tr *epochTracker) VertexMoving(uint32, int32, Kind) {}
func (tr *epochTracker) BatchEnd(Kind)                    { tr.atEnds = append(tr.atEnds, tr.p.Epoch()) }

func TestEpochPublishedAtCommit(t *testing.T) {
	tr := &epochTracker{}
	p := New(10, defaultP(), tr)
	tr.p = p
	if p.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", p.Epoch())
	}
	p.InsertBatch([]graph.Edge{graph.E(0, 1), graph.E(1, 2)})
	p.InsertBatch(nil) // empty batches are batches too: a boundary commits
	p.DeleteBatch([]graph.Edge{graph.E(0, 1)})
	if got := p.Epoch(); got != 3 {
		t.Fatalf("epoch after 3 batches = %d, want 3", got)
	}
	// Inside each BatchEnd hook the epoch of that batch was not yet
	// published (commit = publication happens after the hook).
	want := []uint64{0, 1, 2}
	if len(tr.atEnds) != len(want) {
		t.Fatalf("BatchEnd ran %d times, want %d", len(tr.atEnds), len(want))
	}
	for i, e := range tr.atEnds {
		if e != want[i] {
			t.Fatalf("epoch inside BatchEnd #%d = %d, want %d (published before commit)", i, e, want[i])
		}
	}
}

func TestInvariantsAfterInsertionBatches(t *testing.T) {
	const n = 500
	edges := gen.ChungLu(n, 4000, 2.3, 61)
	p := New(n, defaultP(), nil)
	for _, b := range gen.Batches(edges, 500) {
		p.InsertBatch(b)
		if err := p.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInvariantsAfterDeletionBatches(t *testing.T) {
	const n = 500
	edges := gen.ChungLu(n, 4000, 2.3, 62)
	p := New(n, defaultP(), nil)
	p.InsertBatch(edges)
	for _, b := range gen.Batches(edges, 500) {
		p.DeleteBatch(b)
		if err := p.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Graph().NumEdges() != 0 {
		t.Fatalf("graph not empty: %d edges", p.Graph().NumEdges())
	}
	for v := uint32(0); v < n; v++ {
		if p.Level(v) != 0 {
			t.Fatalf("vertex %d at level %d in empty graph", v, p.Level(v))
		}
	}
}

func TestDenseCliqueBatch(t *testing.T) {
	const n = 60
	p := New(n, defaultP(), nil)
	p.InsertBatch(gen.Clique(n))
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All clique vertices should be at the same level and estimate ~n-1.
	l0 := p.Level(0)
	for v := uint32(1); v < n; v++ {
		if p.Level(v) != l0 {
			t.Fatalf("clique levels differ: %d vs %d", p.Level(v), l0)
		}
	}
	bound := defaultP().ApproxFactor() * (1 + defaultP().Delta)
	est := p.Estimate(0)
	if est < float64(n-1)/bound || est > float64(n-1)*bound {
		t.Fatalf("clique estimate %.1f not within bound of %d", est, n-1)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 400
	edges := gen.ChungLu(n, 3000, 2.4, 63)
	batches := gen.Batches(edges, 300)
	run := func(workers int) []int32 {
		old := parallel.Workers()
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		p := New(n, defaultP(), nil)
		for i, b := range batches {
			if i%2 == 0 {
				p.InsertBatch(b)
			} else {
				p.InsertBatch(b)
			}
		}
		// Delete a few batches too.
		p.DeleteBatch(batches[0])
		p.DeleteBatch(batches[2])
		out := make([]int32, n)
		for v := uint32(0); v < n; v++ {
			out[v] = p.Level(v)
		}
		return out
	}
	a := run(1)
	b := run(8)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("levels differ at %d: %d vs %d", v, a[v], b[v])
		}
	}
}

// ratioError matches the paper's Fig. 6 error metric.
func ratioError(est float64, k int32) float64 {
	kk := math.Max(float64(k), 1)
	ee := math.Max(est, 1)
	return math.Max(ee/kk, kk/ee)
}

func provableBound(p lds.Params) float64 {
	return (2 + 3/p.Lambda) * (1 + p.Delta) * (1 + p.Delta)
}

func TestApproximationVsExactAfterBatches(t *testing.T) {
	const n = 600
	edges := gen.ChungLu(n, 5000, 2.3, 64)
	p := New(n, defaultP(), nil)
	for _, b := range gen.Batches(edges, 1000) {
		p.InsertBatch(b)
	}
	core := exact.Sequential(p.Graph().Snapshot())
	bound := provableBound(defaultP()) + 1e-9
	for v := 0; v < n; v++ {
		if core[v] == 0 {
			continue
		}
		if r := ratioError(p.Estimate(uint32(v)), core[v]); r > bound {
			t.Fatalf("vertex %d: estimate %.2f vs coreness %d (ratio %.2f)",
				v, p.Estimate(uint32(v)), core[v], r)
		}
	}
}

func TestApproximationAfterDeletionBatches(t *testing.T) {
	const n = 400
	edges := gen.ErdosRenyi(n, 4000, 65)
	p := New(n, defaultP(), nil)
	p.InsertBatch(edges)
	p.DeleteBatch(edges[:2000])
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	core := exact.Sequential(p.Graph().Snapshot())
	bound := provableBound(defaultP()) + 1e-9
	for v := 0; v < n; v++ {
		if core[v] == 0 {
			continue
		}
		if r := ratioError(p.Estimate(uint32(v)), core[v]); r > bound {
			t.Fatalf("vertex %d: ratio %.2f > %.2f", v, r, bound)
		}
	}
}

func TestMixedBatchSequence(t *testing.T) {
	const n = 300
	edges := gen.ChungLu(n, 2500, 2.4, 66)
	mbs := gen.MixedBatches(edges, 400, 0.3, 67)
	p := New(n, defaultP(), nil)
	for _, mb := range mbs {
		p.InsertBatch(mb.Insertions)
		p.DeleteBatch(mb.Deletions)
		if err := p.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAgreesWithSequentialLDSOnGraph(t *testing.T) {
	// The PLDS and sequential LDS may settle vertices at different levels,
	// but both must satisfy the invariants on the same final graph and
	// yield estimates within the provable factor of each other.
	const n = 200
	edges := gen.ErdosRenyi(n, 1500, 68)
	p := New(n, defaultP(), nil)
	p.InsertBatch(edges)
	l := lds.New(n, defaultP())
	for _, e := range edges {
		l.InsertEdge(e.U, e.V)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("plds: %v", err)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("lds: %v", err)
	}
	factor := provableBound(defaultP()) * provableBound(defaultP())
	for v := uint32(0); v < n; v++ {
		pe, le := p.Estimate(v), l.Estimate(v)
		if r := math.Max(pe/le, le/pe); r > factor {
			t.Fatalf("vertex %d: plds est %.2f vs lds est %.2f", v, pe, le)
		}
	}
}

func TestPLDSProperty(t *testing.T) {
	f := func(raw [][2]uint8, split uint8) bool {
		const n = 64
		edges := make([]graph.Edge, 0, len(raw))
		for _, pr := range raw {
			edges = append(edges, graph.E(uint32(pr[0])%n, uint32(pr[1])%n))
		}
		bs := int(split)%20 + 1
		p := New(n, defaultP(), nil)
		for _, b := range gen.Batches(edges, bs) {
			p.InsertBatch(b)
		}
		if p.CheckInvariants() != nil {
			return false
		}
		for _, b := range gen.Batches(edges, bs*2+1) {
			p.DeleteBatch(b)
		}
		return p.CheckInvariants() == nil && p.Graph().NumEdges() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// countingTracker records tracker callbacks for verification.
type countingTracker struct {
	starts, ends  atomic.Int64
	moves         atomic.Int64
	lastKind      Kind
	movedPerBatch map[uint32]int
}

func (c *countingTracker) BatchStart(kind Kind, applied []graph.Edge) {
	c.starts.Add(1)
	c.lastKind = kind
	c.movedPerBatch = map[uint32]int{}
}

func (c *countingTracker) VertexMoving(v uint32, oldLevel int32, kind Kind) {
	c.moves.Add(1)
}

func (c *countingTracker) BatchEnd(kind Kind) { c.ends.Add(1) }

func TestTrackerCallbacks(t *testing.T) {
	const n = 200
	tr := &countingTracker{}
	p := New(n, defaultP(), tr)
	edges := gen.ErdosRenyi(n, 1500, 69)
	p.InsertBatch(edges)
	if tr.starts.Load() != 1 || tr.ends.Load() != 1 {
		t.Fatalf("starts/ends = %d/%d", tr.starts.Load(), tr.ends.Load())
	}
	if tr.moves.Load() == 0 {
		t.Fatal("no VertexMoving callbacks for a dense insertion batch")
	}
	moves := tr.moves.Load()
	p.DeleteBatch(edges)
	if tr.starts.Load() != 2 || tr.ends.Load() != 2 {
		t.Fatalf("starts/ends after delete = %d/%d", tr.starts.Load(), tr.ends.Load())
	}
	if tr.moves.Load() == moves {
		t.Fatal("no VertexMoving callbacks for the deletion batch")
	}
}

// firstMoveTracker verifies each vertex triggers at most one callback per
// batch and that oldLevel matches the pre-batch level.
type firstMoveTracker struct {
	t         *testing.T
	preLevels []int32
	seen      []atomic.Bool
	p         *PLDS
}

func (f *firstMoveTracker) BatchStart(kind Kind, applied []graph.Edge) {
	for v := range f.preLevels {
		f.preLevels[v] = f.p.Level(uint32(v))
		f.seen[v].Store(false)
	}
}

func (f *firstMoveTracker) VertexMoving(v uint32, oldLevel int32, kind Kind) {
	if f.seen[v].Swap(true) {
		f.t.Errorf("vertex %d moved twice via tracker in one batch", v)
	}
	if oldLevel != f.preLevels[v] {
		f.t.Errorf("vertex %d: oldLevel %d != pre-batch level %d", v, oldLevel, f.preLevels[v])
	}
}

func (f *firstMoveTracker) BatchEnd(kind Kind) {}

func TestTrackerFirstMoveSemantics(t *testing.T) {
	const n = 300
	f := &firstMoveTracker{t: t, preLevels: make([]int32, n), seen: make([]atomic.Bool, n)}
	p := New(n, defaultP(), f)
	f.p = p
	edges := gen.ChungLu(n, 2500, 2.3, 70)
	for _, b := range gen.Batches(edges, 500) {
		p.InsertBatch(b)
	}
	for _, b := range gen.Batches(edges, 700) {
		p.DeleteBatch(b)
	}
}

func TestRepeatedInsertDeleteCycles(t *testing.T) {
	const n = 150
	edges := gen.ErdosRenyi(n, 900, 71)
	p := New(n, defaultP(), nil)
	for cycle := 0; cycle < 5; cycle++ {
		p.InsertBatch(edges)
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d insert: %v", cycle, err)
		}
		p.DeleteBatch(edges)
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d delete: %v", cycle, err)
		}
	}
}

func BenchmarkInsertBatch100k(b *testing.B) {
	const n = 50000
	edges := gen.ChungLu(n, 100000, 2.4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := New(n, defaultP(), nil)
		p.InsertBatch(edges)
	}
}

func BenchmarkDeleteBatch(b *testing.B) {
	const n = 20000
	edges := gen.ChungLu(n, 60000, 2.4, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := New(n, defaultP(), nil)
		p.InsertBatch(edges)
		b.StartTimer()
		p.DeleteBatch(edges[:30000])
	}
}
