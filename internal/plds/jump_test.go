package plds

import (
	"testing"

	"kcore/internal/exact"
	"kcore/internal/gen"
	"kcore/internal/stats"
)

func TestLevelJumpPreservesInvariants(t *testing.T) {
	const n = 400
	edges := gen.ChungLu(n, 3500, 2.3, 75)
	for _, j := range []int{1, 4, 20} {
		p := New(n, defaultP(), nil)
		p.SetLevelJump(j)
		for _, b := range gen.Batches(edges, 700) {
			p.InsertBatch(b)
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("jump=%d: %v", j, err)
			}
		}
		p.DeleteBatch(edges[:1500])
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("jump=%d after delete: %v", j, err)
		}
	}
}

func TestLevelJumpPreservesApproximation(t *testing.T) {
	const n = 300
	edges := gen.ChungLu(n, 3000, 2.3, 76)
	p := New(n, defaultP(), nil)
	p.SetLevelJump(20)
	p.InsertBatch(edges)
	core := exact.Sequential(p.Graph().Snapshot())
	bound := provableBound(defaultP()) + 1e-9
	for v := 0; v < n; v++ {
		if core[v] == 0 {
			continue
		}
		if r := stats.RatioError(p.Estimate(uint32(v)), core[v]); r > bound {
			t.Fatalf("jump: vertex %d ratio %.2f > %.2f", v, r, bound)
		}
	}
}

func TestLevelJumpReachesSameLevelsOnClique(t *testing.T) {
	// On a clique everything rises together; the jump must land vertices
	// on levels satisfying both invariants just like single-stepping.
	const n = 50
	a := New(n, defaultP(), nil)
	a.InsertBatch(gen.Clique(n))
	b := New(n, defaultP(), nil)
	b.SetLevelJump(10)
	b.InsertBatch(gen.Clique(n))
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Estimates must agree within one group either way.
	for v := uint32(0); v < n; v++ {
		ea, eb := a.Estimate(v), b.Estimate(v)
		if r := ea / eb; r > 1.5 || r < 0.67 {
			t.Fatalf("vertex %d: estimates %v vs %v diverge", v, ea, eb)
		}
	}
}

func TestSetLevelJumpClamps(t *testing.T) {
	p := New(10, defaultP(), nil)
	p.SetLevelJump(-5)
	if p.jump != 1 {
		t.Fatalf("jump = %d after clamping", p.jump)
	}
}

func BenchmarkInsertBatchJumpAblation(b *testing.B) {
	const n = 20000
	edges := gen.ChungLu(n, 80000, 2.4, 3)
	for _, j := range []int{1, 8, 32} {
		b.Run(map[int]string{1: "jump=1", 8: "jump=8", 32: "jump=32"}[j], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := New(n, defaultP(), nil)
				p.SetLevelJump(j)
				p.InsertBatch(edges)
			}
		})
	}
}
