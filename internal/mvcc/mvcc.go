// Package mvcc is the bounded multi-version store behind retained epoch
// reads: it keeps, for each recently committed batch, the batch's undo
// records — every (vertex, pre-batch level) pair — so that a read pinned at
// a retired epoch E can reconstruct the exact level any vertex had at E by
// overlaying the retained deltas newest-to-oldest on the live state.
//
// # Model
//
// Each engine instance (one CPLDS, or one shard of the sharded engine) owns
// a Store. The updater appends one delta per committed batch — the batch's
// movers with their pre-batch levels, exactly the data the CPLDS descriptor
// pool already holds at batch end — and the Store retains the most recent
// `retain` deltas, evicting oldest-first. A vertex's level at epoch E is
// then its live level at the current epoch C, overridden by the *earliest*
// delta in (E, C] that contains the vertex (that delta recorded the
// vertex's level before its first post-E move, which is its level at E).
//
// The sharded engine additionally owns a VectorLog: cross-shard epochs are
// sums of per-shard committed counts, so serving a retired global epoch
// requires the per-shard commit vector it corresponds to. The log makes the
// global epoch ↔ vector mapping well defined by serializing every shard's
// commit *publication* under the log lock: log order is publication order,
// so the stable vector a pinned read certifies for sum E is exactly the
// logged vector at E.
//
// # Retention and pins
//
// Both structures are bounded rings: capacity `retain` plus whatever
// outstanding pins require. Pinning epoch E guarantees E stays readable —
// eviction never crosses the oldest pin — at the cost of memory growing
// with the pin's age, the usual long-transaction trade of MVCC systems.
// Reads of epochs that fell off the ring fail with an *EvictedEpochError
// (matched by errors.Is against ErrEvicted); reads of epochs that have not
// committed yet fail with a *FutureEpochError (ErrFuture).
package mvcc

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sync"
)

// DefaultRetain is the default retention depth: how many retired epochs
// stay readable behind the newest committed one. Small on purpose — each
// retained epoch costs one delta (the batch's movers) per engine instance.
const DefaultRetain = 8

// ErrEvicted is the sentinel matched (via errors.Is) by every eviction
// error: the requested epoch was retired beyond the retention window, or
// retention is disabled.
var ErrEvicted = errors.New("epoch evicted from the multi-version store")

// ErrFuture is the sentinel matched (via errors.Is) by every future-epoch
// error: the requested epoch has not committed yet.
var ErrFuture = errors.New("epoch not committed yet")

// EvictedEpochError reports a read or pin of an epoch that is no longer
// retained. OldestReadable is the oldest epoch that was still servable when
// the error was produced.
type EvictedEpochError struct {
	Epoch          uint64
	OldestReadable uint64
}

func (e *EvictedEpochError) Error() string {
	return fmt.Sprintf("epoch %d evicted (oldest readable epoch is %d)", e.Epoch, e.OldestReadable)
}

// Unwrap matches ErrEvicted.
func (e *EvictedEpochError) Unwrap() error { return ErrEvicted }

// FutureEpochError reports a read or pin of an epoch beyond the newest
// committed one.
type FutureEpochError struct {
	Epoch     uint64
	Committed uint64
}

func (e *FutureEpochError) Error() string {
	return fmt.Sprintf("epoch %d not committed yet (newest committed epoch is %d)", e.Epoch, e.Committed)
}

// Unwrap matches ErrFuture.
func (e *FutureEpochError) Unwrap() error { return ErrFuture }

// Record is one undo record: vertex V had level Old before the batch this
// record's delta belongs to (i.e. at the delta's epoch minus one).
type Record struct {
	V   uint32
	Old int32
}

// delta is the undo set of one committed batch: the batch's movers with
// their pre-batch levels, sorted by vertex for binary search. epoch is the
// epoch the batch created; the records are the state at epoch-1.
type delta struct {
	epoch uint64
	recs  []Record
}

// lookup returns the record for v, if present.
func (d *delta) lookup(v uint32) (int32, bool) {
	i, ok := slices.BinarySearchFunc(d.recs, v, func(r Record, v uint32) int {
		return cmp.Compare(r.V, v)
	})
	if !ok {
		return 0, false
	}
	return d.recs[i].Old, true
}

// Store is the per-engine-instance ring of epoch deltas.
//
// Concurrency: Append is called by the instance's single updater at batch
// end; Overlay*, Pin, Unpin, Check and OldestReadable may be called from
// any goroutine at any time.
type Store struct {
	mu     sync.RWMutex
	retain int
	deltas []delta // contiguous epochs, oldest first
	pins   map[uint64]int
	free   [][]Record // recycled record buffers (steady state allocates nothing)
}

// NewStore returns a store retaining the most recent `retain` deltas
// (retain >= 1); pinned epochs extend retention past that bound.
func NewStore(retain int) *Store {
	if retain < 1 {
		retain = 1
	}
	return &Store{retain: retain, pins: make(map[uint64]int)}
}

// Retain returns the configured retention depth.
func (s *Store) Retain() int { return s.retain }

// minPinnedLocked returns the oldest pinned epoch, or ^0 when none.
func (s *Store) minPinnedLocked() uint64 {
	min := ^uint64(0)
	for e := range s.pins {
		if e < min {
			min = e
		}
	}
	return min
}

// oldestReadableLocked returns the oldest epoch the retained deltas can
// reconstruct, given the current committed epoch cur: one epoch before the
// oldest delta (its records are the state at delta.epoch-1), or cur itself
// when nothing is retained.
func (s *Store) oldestReadableLocked(cur uint64) uint64 {
	if len(s.deltas) == 0 {
		return cur
	}
	return s.deltas[0].epoch - 1
}

// OldestReadable returns the oldest epoch currently servable, given the
// engine's current committed epoch.
func (s *Store) OldestReadable(cur uint64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.oldestReadableLocked(cur)
}

// Append records the delta of the batch committing epoch `epoch`: for every
// vertex in movers (the batch's marked set, duplicate-free), oldOf must
// return its pre-batch level. The caller must invoke Append before
// publishing the commit to readers, so any reader that observes `epoch`
// finds its delta present. Epochs must be appended consecutively.
func (s *Store) Append(epoch uint64, movers []uint32, oldOf func(uint32) int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.deltas); n > 0 && s.deltas[n-1].epoch+1 != epoch {
		panic(fmt.Sprintf("mvcc: non-consecutive delta append: have %d, appending %d",
			s.deltas[n-1].epoch, epoch))
	}
	var recs []Record
	if n := len(s.free); n > 0 {
		recs = s.free[n-1][:0]
		s.free = s.free[:n-1]
	}
	for _, v := range movers {
		recs = append(recs, Record{V: v, Old: oldOf(v)})
	}
	slices.SortFunc(recs, func(a, b Record) int { return cmp.Compare(a.V, b.V) })
	s.deltas = append(s.deltas, delta{epoch: epoch, recs: recs})
	s.evictLocked()
}

// Reset drops every retained delta and pin, recycling the record buffers:
// the ring restarts empty, exactly as if the store were freshly built.
// Used when the owning instance is restored to an externally supplied
// state (replication bootstrap) — pre-restore epochs are no longer
// reconstructable, and the next Append may start at any epoch. Safe
// concurrent with readers, which simply observe an empty ring; reads and
// unpins of previously pinned epochs fail softly afterwards.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.deltas {
		s.free = append(s.free, d.recs)
	}
	s.deltas = s.deltas[:0]
	clear(s.pins)
}

// evictLocked drops oldest deltas beyond the retention bound, never
// crossing the oldest pin (reading pinned epoch E needs every delta with
// epoch > E; deltas at epochs <= E are evictable).
func (s *Store) evictLocked() {
	minPin := s.minPinnedLocked()
	drop := 0
	for len(s.deltas)-drop > s.retain && s.deltas[drop].epoch <= minPin {
		s.free = append(s.free, s.deltas[drop].recs)
		drop++
	}
	if drop > 0 {
		s.deltas = append(s.deltas[:0], s.deltas[drop:]...)
	}
}

// Check reports whether epoch is servable given the current committed
// epoch, with the typed evicted/future errors.
func (s *Store) Check(epoch, cur uint64) error {
	if epoch > cur {
		return &FutureEpochError{Epoch: epoch, Committed: cur}
	}
	if epoch == cur {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.coverLocked(epoch, cur)
}

// coverLocked verifies every delta in (target, cur] is retained.
func (s *Store) coverLocked(target, cur uint64) error {
	if target == cur {
		return nil
	}
	if len(s.deltas) == 0 || s.deltas[0].epoch > target+1 {
		return &EvictedEpochError{Epoch: target, OldestReadable: s.oldestReadableLocked(cur)}
	}
	if newest := s.deltas[len(s.deltas)-1].epoch; newest < cur {
		// The caller observed an epoch whose delta was never appended:
		// retention was enabled mid-history or the append/publish order was
		// violated. Surface it as an eviction of the target.
		return &EvictedEpochError{Epoch: target, OldestReadable: cur}
	}
	return nil
}

// deltaLocked returns the delta committing epoch e; coverage must have been
// verified.
func (s *Store) deltaLocked(e uint64) *delta {
	return &s.deltas[e-s.deltas[0].epoch]
}

// OverlayMany rewinds levels[i] — the live level of vs[i] at the current
// committed epoch cur — to the level vs[i] had at the retired epoch target,
// by overlaying the deltas of epochs (target, cur] newest-to-oldest (the
// earliest delta containing a vertex wins: it recorded the vertex's level
// before its first post-target move).
func (s *Store) OverlayMany(target, cur uint64, vs []uint32, levels []int32) error {
	if target == cur {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.coverLocked(target, cur); err != nil {
		return err
	}
	for e := cur; e > target; e-- {
		d := s.deltaLocked(e)
		if len(d.recs) == 0 {
			continue
		}
		for i, v := range vs {
			if old, ok := d.lookup(v); ok {
				levels[i] = old
			}
		}
	}
	return nil
}

// OverlayAll rewinds levels[v] — every vertex's live level at the current
// committed epoch cur — to the state at the retired epoch target.
func (s *Store) OverlayAll(target, cur uint64, levels []int32) error {
	if target == cur {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.coverLocked(target, cur); err != nil {
		return err
	}
	for e := cur; e > target; e-- {
		for _, r := range s.deltaLocked(e).recs {
			levels[r.V] = r.Old
		}
	}
	return nil
}

// Pin keeps epoch readable — evictions will not cross it — until a
// matching Unpin. Fails with the typed errors if epoch is not currently
// servable. Pins nest (each Pin needs its own Unpin).
func (s *Store) Pin(epoch, cur uint64) error {
	if epoch > cur {
		return &FutureEpochError{Epoch: epoch, Committed: cur}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.coverLocked(epoch, cur); err != nil {
		return err
	}
	s.pins[epoch]++
	return nil
}

// Unpin releases one Pin of epoch; deltas the pin was holding beyond the
// retention bound are reclaimed immediately.
func (s *Store) Unpin(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.pins[epoch]; n > 1 {
		s.pins[epoch] = n - 1
	} else {
		delete(s.pins, epoch)
	}
	s.evictLocked()
}

// Pins returns the number of distinct pinned epochs (diagnostics).
func (s *Store) Pins() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pins)
}

// CheckInvariants verifies the ring's structural invariants against the
// engine's current committed epoch: contiguous epochs ending at cur (once
// any delta has been appended), sorted records, and retention bounded by
// retain plus the oldest pin. Quiescent use only.
func (s *Store) CheckInvariants(cur uint64) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, d := range s.deltas {
		if i > 0 && s.deltas[i-1].epoch+1 != d.epoch {
			return fmt.Errorf("mvcc: delta epochs not contiguous at %d", i)
		}
		if !slices.IsSortedFunc(d.recs, func(a, b Record) int { return cmp.Compare(a.V, b.V) }) {
			return fmt.Errorf("mvcc: delta %d records unsorted", d.epoch)
		}
	}
	if n := len(s.deltas); n > 0 {
		if newest := s.deltas[n-1].epoch; newest != cur {
			return fmt.Errorf("mvcc: newest delta epoch %d out of lockstep with committed epoch %d", newest, cur)
		}
		minPin := s.minPinnedLocked()
		if n > s.retain && s.deltas[0].epoch > minPin+1 {
			return fmt.Errorf("mvcc: retaining %d deltas (cap %d) with oldest pin %d", n, s.retain, minPin)
		}
	}
	return nil
}
