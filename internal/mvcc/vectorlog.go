package mvcc

import (
	"fmt"
	"sync"
)

// VectorLog maps cross-shard (global) epochs to the per-shard commit
// vectors they correspond to. The global epoch is the sum of per-shard
// committed counts; that sum only labels a cut unambiguously for *stable*
// vectors — vectors observed unchanged across a window — and the log makes
// the mapping total by serializing every shard's commit publication under
// one lock: the vector after the k-th publication is the logged vector at
// global epoch base+k, and any stable vector a pinned read certifies for
// sum E is exactly the logged vector at E (commits are published in log
// order, so between two publications the live vector *is* the last logged
// entry).
//
// Like Store, the log is a bounded ring with pins: the most recent
// `retain`+1 vectors stay resolvable (the +1 is the current epoch, which is
// always readable), and pinned epochs extend retention oldest-first.
type VectorLog struct {
	mu     sync.Mutex
	retain int
	cur    []uint64   // live per-shard committed counts
	sum    uint64     // global epoch = sum(cur)
	base   uint64     // global epoch of vecs[0]
	vecs   [][]uint64 // vecs[i] is the commit vector at global epoch base+i
	pins   map[uint64]int
	free   [][]uint64
}

// NewVectorLog returns a log over the given initial per-shard committed
// counts (all zero for a fresh engine), retaining the vectors of the most
// recent `retain` retired epochs (retain >= 1).
func NewVectorLog(initial []uint64, retain int) *VectorLog {
	if retain < 1 {
		retain = 1
	}
	cur := make([]uint64, len(initial))
	copy(cur, initial)
	var sum uint64
	for _, c := range cur {
		sum += c
	}
	first := make([]uint64, len(cur))
	copy(first, cur)
	return &VectorLog{
		retain: retain,
		cur:    cur,
		sum:    sum,
		base:   sum,
		vecs:   [][]uint64{first},
		pins:   make(map[uint64]int),
	}
}

// Commit records one shard's batch commit atomically with its publication:
// publish must flip the shard's commit sequence to even (making the commit
// visible to readers) and is invoked under the log lock, so log order is
// exactly publication order. Called from each shard's updater at batch
// end. Returns the new global epoch (the post-commit sum), which the
// change feed uses to stamp this commit's events.
func (l *VectorLog) Commit(shard int, publish func()) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	publish()
	l.cur[shard]++
	l.sum++
	var vec []uint64
	if n := len(l.free); n > 0 {
		vec = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		vec = make([]uint64, len(l.cur))
	}
	copy(vec, l.cur)
	l.vecs = append(l.vecs, vec)
	l.evictLocked()
	return l.sum
}

// Reset reinitializes the log over new per-shard committed counts,
// dropping every retained vector and pin: the history restarts at the new
// sum, exactly as if the log were freshly built with NewVectorLog(counts).
// Used when the engine is restored to an externally supplied state
// (replication bootstrap). Safe concurrent with readers and commit
// publication from the caller's side only if the engine is quiesced — the
// per-shard counts must not move under the swap.
func (l *VectorLog) Reset(counts []uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.free = append(l.free, l.vecs...)
	copy(l.cur, counts)
	var sum uint64
	for _, c := range l.cur {
		sum += c
	}
	l.sum = sum
	l.base = sum
	var first []uint64
	if n := len(l.free); n > 0 {
		first = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		first = make([]uint64, len(l.cur))
	}
	copy(first, l.cur)
	l.vecs = append(l.vecs[:0], first)
	clear(l.pins)
}

// evictLocked drops oldest vectors beyond the retention bound, never
// crossing the oldest pin (the pinned epoch's own vector is needed).
func (l *VectorLog) evictLocked() {
	minPin := ^uint64(0)
	for e := range l.pins {
		if e < minPin {
			minPin = e
		}
	}
	drop := 0
	for len(l.vecs)-drop > l.retain+1 && l.base+uint64(drop) < minPin {
		l.free = append(l.free, l.vecs[drop])
		drop++
	}
	if drop > 0 {
		l.vecs = append(l.vecs[:0], l.vecs[drop:]...)
		l.base += uint64(drop)
	}
}

// Epoch returns the current global epoch (total commits across shards).
func (l *VectorLog) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sum
}

// OldestReadable returns the oldest global epoch whose vector is still
// resolvable.
func (l *VectorLog) OldestReadable() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// checkLocked validates that epoch is resolvable.
func (l *VectorLog) checkLocked(epoch uint64) error {
	if epoch > l.sum {
		return &FutureEpochError{Epoch: epoch, Committed: l.sum}
	}
	if epoch < l.base {
		return &EvictedEpochError{Epoch: epoch, OldestReadable: l.base}
	}
	return nil
}

// Check reports whether epoch's vector is resolvable, with the typed
// evicted/future errors.
func (l *VectorLog) Check(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkLocked(epoch)
}

// VectorAt copies the per-shard commit vector of the global epoch into dst
// (len(dst) must be the shard count).
func (l *VectorLog) VectorAt(epoch uint64, dst []uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkLocked(epoch); err != nil {
		return err
	}
	copy(dst, l.vecs[epoch-l.base])
	return nil
}

// Pin keeps epoch's vector resolvable until a matching Unpin and copies it
// into dst. Pins nest.
func (l *VectorLog) Pin(epoch uint64, dst []uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkLocked(epoch); err != nil {
		return err
	}
	copy(dst, l.vecs[epoch-l.base])
	l.pins[epoch]++
	return nil
}

// Unpin releases one Pin of epoch, copying its vector into dst (pinned
// vectors are always still resolvable). Returns false if epoch was not
// pinned.
func (l *VectorLog) Unpin(epoch uint64, dst []uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, ok := l.pins[epoch]
	if !ok {
		return false
	}
	copy(dst, l.vecs[epoch-l.base])
	if n > 1 {
		l.pins[epoch] = n - 1
	} else {
		delete(l.pins, epoch)
	}
	l.evictLocked()
	return true
}

// CheckInvariants verifies the ring against the per-shard committed counts
// reported by the engine. Quiescent use only.
func (l *VectorLog) CheckInvariants(shardEpochs []uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum uint64
	for si, c := range shardEpochs {
		if l.cur[si] != c {
			return fmt.Errorf("mvcc: vector log shard %d count %d out of lockstep with shard epoch %d",
				si, l.cur[si], c)
		}
		sum += c
	}
	if sum != l.sum {
		return fmt.Errorf("mvcc: vector log sum %d != shard epoch sum %d", l.sum, sum)
	}
	if got := l.base + uint64(len(l.vecs)) - 1; got != l.sum {
		return fmt.Errorf("mvcc: newest logged epoch %d out of lockstep with global epoch %d", got, l.sum)
	}
	last := l.vecs[len(l.vecs)-1]
	for si := range l.cur {
		if last[si] != l.cur[si] {
			return fmt.Errorf("mvcc: newest logged vector %v != live vector %v", last, l.cur)
		}
	}
	return nil
}
