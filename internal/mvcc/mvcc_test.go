package mvcc

import (
	"errors"
	"testing"
)

// fakeHistory drives a Store the way an engine updater would: level[v]
// evolves over epochs, each commit appends the movers' pre-batch levels.
type fakeHistory struct {
	store  *Store
	cur    uint64
	levels []int32            // live levels
	past   map[uint64][]int32 // full snapshot per epoch (test oracle)
}

func newFakeHistory(n, retain int) *fakeHistory {
	h := &fakeHistory{store: NewStore(retain), levels: make([]int32, n), past: map[uint64][]int32{}}
	h.snapshot()
	return h
}

func (h *fakeHistory) snapshot() {
	s := make([]int32, len(h.levels))
	copy(s, h.levels)
	h.past[h.cur] = s
}

// commit applies moves (vertex -> new level) as one batch.
func (h *fakeHistory) commit(moves map[uint32]int32) {
	movers := make([]uint32, 0, len(moves))
	old := make(map[uint32]int32, len(moves))
	for v, nl := range moves {
		movers = append(movers, v)
		old[v] = h.levels[v]
		h.levels[v] = nl
	}
	h.cur++
	h.store.Append(h.cur, movers, func(v uint32) int32 { return old[v] })
	h.snapshot()
}

func (h *fakeHistory) levelsAt(t *testing.T, epoch uint64) []int32 {
	t.Helper()
	got := make([]int32, len(h.levels))
	copy(got, h.levels)
	if err := h.store.OverlayAll(epoch, h.cur, got); err != nil {
		t.Fatalf("OverlayAll(%d): %v", epoch, err)
	}
	return got
}

func TestStoreOverlayReconstructsEveryRetainedEpoch(t *testing.T) {
	h := newFakeHistory(8, 16)
	h.commit(map[uint32]int32{0: 1, 1: 2})
	h.commit(map[uint32]int32{0: 3})
	h.commit(map[uint32]int32{2: 5, 1: 1})
	h.commit(map[uint32]int32{0: 0, 2: 0, 3: 4})
	for e := uint64(0); e <= h.cur; e++ {
		got := h.levelsAt(t, e)
		want := h.past[e]
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("epoch %d vertex %d: got %d, want %d (full %v vs %v)", e, v, got[v], want[v], got, want)
			}
		}
	}
	if err := h.store.CheckInvariants(h.cur); err != nil {
		t.Fatal(err)
	}
}

func TestStoreOverlayMany(t *testing.T) {
	h := newFakeHistory(6, 8)
	h.commit(map[uint32]int32{0: 4, 5: 2})
	h.commit(map[uint32]int32{0: 1, 3: 3})
	vs := []uint32{0, 3, 5, 4}
	levels := make([]int32, len(vs))
	for i, v := range vs {
		levels[i] = h.levels[v]
	}
	if err := h.store.OverlayMany(1, h.cur, vs, levels); err != nil {
		t.Fatal(err)
	}
	want := h.past[1]
	for i, v := range vs {
		if levels[i] != want[v] {
			t.Fatalf("vertex %d at epoch 1: got %d, want %d", v, levels[i], want[v])
		}
	}
}

func TestStoreEvictionAndTypedErrors(t *testing.T) {
	h := newFakeHistory(4, 2)
	for i := 0; i < 6; i++ {
		h.commit(map[uint32]int32{0: int32(i + 1)})
	}
	// Retain 2 deltas (epochs 5,6): readable epochs are 4..6.
	if got := h.store.OldestReadable(h.cur); got != 4 {
		t.Fatalf("OldestReadable = %d, want 4", got)
	}
	for e := uint64(4); e <= 6; e++ {
		if err := h.store.Check(e, h.cur); err != nil {
			t.Fatalf("Check(%d): %v", e, err)
		}
	}
	err := h.store.Check(3, h.cur)
	if !errors.Is(err, ErrEvicted) {
		t.Fatalf("Check(3) = %v, want ErrEvicted", err)
	}
	var ev *EvictedEpochError
	if !errors.As(err, &ev) || ev.Epoch != 3 || ev.OldestReadable != 4 {
		t.Fatalf("evicted error detail: %+v", ev)
	}
	err = h.store.Check(7, h.cur)
	if !errors.Is(err, ErrFuture) {
		t.Fatalf("Check(7) = %v, want ErrFuture", err)
	}
	levels := make([]int32, 4)
	if err := h.store.OverlayAll(2, h.cur, levels); !errors.Is(err, ErrEvicted) {
		t.Fatalf("OverlayAll at evicted epoch = %v, want ErrEvicted", err)
	}
}

func TestStorePinBlocksEviction(t *testing.T) {
	h := newFakeHistory(4, 2)
	h.commit(map[uint32]int32{0: 1})
	h.commit(map[uint32]int32{0: 2})
	if err := h.store.Pin(1, h.cur); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.commit(map[uint32]int32{0: int32(10 + i)})
	}
	// Epoch 1 must still reconstruct exactly while pinned.
	got := h.levelsAt(t, 1)
	if got[0] != h.past[1][0] {
		t.Fatalf("pinned epoch 1: got %d, want %d", got[0], h.past[1][0])
	}
	if err := h.store.CheckInvariants(h.cur); err != nil {
		t.Fatal(err)
	}
	h.store.Unpin(1)
	if h.store.Pins() != 0 {
		t.Fatal("pin count not released")
	}
	// Release reclaims the tail the pin was holding.
	if err := h.store.Check(1, h.cur); !errors.Is(err, ErrEvicted) {
		t.Fatalf("Check(1) after release = %v, want ErrEvicted", err)
	}
	if err := h.store.CheckInvariants(h.cur); err != nil {
		t.Fatal(err)
	}
}

func TestStorePinErrors(t *testing.T) {
	h := newFakeHistory(4, 1)
	h.commit(map[uint32]int32{0: 1})
	h.commit(map[uint32]int32{0: 2})
	h.commit(map[uint32]int32{0: 3})
	if err := h.store.Pin(0, h.cur); !errors.Is(err, ErrEvicted) {
		t.Fatalf("Pin(evicted) = %v", err)
	}
	if err := h.store.Pin(9, h.cur); !errors.Is(err, ErrFuture) {
		t.Fatalf("Pin(future) = %v", err)
	}
	// Nested pins: both must be released before eviction resumes.
	if err := h.store.Pin(2, h.cur); err != nil {
		t.Fatal(err)
	}
	if err := h.store.Pin(2, h.cur); err != nil {
		t.Fatal(err)
	}
	h.store.Unpin(2)
	if h.store.Pins() != 1 {
		t.Fatal("nested pin dropped early")
	}
	h.store.Unpin(2)
	if h.store.Pins() != 0 {
		t.Fatal("nested pin never drained")
	}
}

func TestVectorLogMapsEpochsToVectors(t *testing.T) {
	l := NewVectorLog([]uint64{0, 0, 0}, 8)
	// Simulate commits on shards 1,0,1,2 with publication tracking.
	published := 0
	order := []int{1, 0, 1, 2}
	for _, s := range order {
		l.Commit(s, func() { published++ })
	}
	if published != len(order) {
		t.Fatalf("publish invoked %d times, want %d", published, len(order))
	}
	if l.Epoch() != 4 {
		t.Fatalf("Epoch = %d, want 4", l.Epoch())
	}
	want := map[uint64][]uint64{
		0: {0, 0, 0},
		1: {0, 1, 0},
		2: {1, 1, 0},
		3: {1, 2, 0},
		4: {1, 2, 1},
	}
	dst := make([]uint64, 3)
	for e, w := range want {
		if err := l.VectorAt(e, dst); err != nil {
			t.Fatalf("VectorAt(%d): %v", e, err)
		}
		for i := range w {
			if dst[i] != w[i] {
				t.Fatalf("VectorAt(%d) = %v, want %v", e, dst, w)
			}
		}
	}
	if err := l.CheckInvariants([]uint64{1, 2, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorLogEvictionAndPins(t *testing.T) {
	l := NewVectorLog([]uint64{0, 0}, 2)
	for i := 0; i < 6; i++ {
		l.Commit(i%2, func() {})
	}
	// Retain 2 retired epochs + current: 4..6 readable.
	if got := l.OldestReadable(); got != 4 {
		t.Fatalf("OldestReadable = %d, want 4", got)
	}
	dst := make([]uint64, 2)
	if err := l.VectorAt(3, dst); !errors.Is(err, ErrEvicted) {
		t.Fatalf("VectorAt(evicted) = %v", err)
	}
	if err := l.VectorAt(9, dst); !errors.Is(err, ErrFuture) {
		t.Fatalf("VectorAt(future) = %v", err)
	}
	if err := l.Pin(4, dst); err != nil {
		t.Fatal(err)
	}
	pinned := append([]uint64(nil), dst...)
	for i := 0; i < 8; i++ {
		l.Commit(i%2, func() {})
	}
	if err := l.VectorAt(4, dst); err != nil {
		t.Fatalf("pinned vector evicted: %v", err)
	}
	for i := range pinned {
		if dst[i] != pinned[i] {
			t.Fatalf("pinned vector changed: %v vs %v", dst, pinned)
		}
	}
	if !l.Unpin(4, dst) {
		t.Fatal("Unpin of pinned epoch failed")
	}
	if l.Unpin(4, dst) {
		t.Fatal("Unpin of unpinned epoch succeeded")
	}
	l.Commit(0, func() {})
	if err := l.VectorAt(4, dst); !errors.Is(err, ErrEvicted) {
		t.Fatalf("VectorAt(4) after release = %v, want ErrEvicted", err)
	}
}

func TestNonConsecutiveAppendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on non-consecutive append")
		}
	}()
	s := NewStore(4)
	s.Append(1, nil, nil)
	s.Append(3, nil, nil)
}
