package graph

import (
	"math/rand"
	"testing"
)

// mapRef is a plain map-of-sets reference graph with the same batch
// semantics as Dynamic (canonicalize, drop self-loops and out-of-range,
// dedup). The hybrid adjacency engine is validated against it under random
// interleaved insert/delete batches.
type mapRef struct {
	n   uint32
	adj []map[uint32]struct{}
}

func newMapRef(n int) *mapRef {
	return &mapRef{n: uint32(n), adj: make([]map[uint32]struct{}, n)}
}

func (r *mapRef) has(u, v uint32) bool {
	_, ok := r.adj[u][v]
	return ok
}

func (r *mapRef) apply(batch []Edge, insert bool) int {
	changed := 0
	for _, e := range batch {
		if e.IsSelfLoop() || e.U >= r.n || e.V >= r.n {
			continue
		}
		e = e.Canon()
		if insert == r.has(e.U, e.V) {
			continue
		}
		for _, d := range [2]Edge{e, {e.V, e.U}} {
			if insert {
				if r.adj[d.U] == nil {
					r.adj[d.U] = make(map[uint32]struct{})
				}
				r.adj[d.U][d.V] = struct{}{}
			} else {
				delete(r.adj[d.U], d.V)
			}
		}
		changed++
	}
	return changed
}

func (r *mapRef) numEdges() int64 {
	var c int64
	for _, m := range r.adj {
		c += int64(len(m))
	}
	return c / 2
}

// checkAgainstRef compares the full observable state of g with the
// reference: edge count, degrees, sorted neighbour lists and membership.
func checkAgainstRef(t *testing.T, g *Dynamic, r *mapRef) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumEdges() != r.numEdges() {
		t.Fatalf("NumEdges %d != reference %d", g.NumEdges(), r.numEdges())
	}
	for v := uint32(0); v < r.n; v++ {
		if g.Degree(v) != len(r.adj[v]) {
			t.Fatalf("Degree(%d) = %d, reference %d", v, g.Degree(v), len(r.adj[v]))
		}
		for _, w := range g.NeighborSlice(v) {
			if !r.has(v, w) {
				t.Fatalf("phantom neighbour %d of %d", w, v)
			}
			if !g.HasEdge(v, w) || !g.HasEdge(w, v) {
				t.Fatalf("HasEdge(%d,%d) inconsistent with Neighbors", v, w)
			}
		}
	}
}

// randomBatch draws m edges over n vertices, deliberately including
// self-loops, duplicates and out-of-range endpoints.
func randomBatch(rng *rand.Rand, n, m int) []Edge {
	out := make([]Edge, m)
	for i := range out {
		u := uint32(rng.Intn(n + 2)) // +2: sometimes out of range
		v := uint32(rng.Intn(n + 2))
		out[i] = Edge{U: u, V: v}
	}
	return out
}

// TestHybridMatchesMapReference drives the hybrid adjacency and the map
// reference with the same random interleaved insert/delete batches and
// demands identical observable state after every batch. One seed uses a
// hub-heavy distribution so the promotion/demotion path is crossed in both
// directions.
func TestHybridMatchesMapReference(t *testing.T) {
	type cfg struct {
		name    string
		n       int
		batches int
		size    int
		hubby   bool
	}
	cfgs := []cfg{
		{"small-dense", 24, 60, 40, false},
		{"medium", 300, 40, 250, false},
		{"hub-promotion", 3000, 12, 2600, true},
	}
	if testing.Short() {
		cfgs = cfgs[:2]
	}
	for _, c := range cfgs {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			g := NewDynamic(c.n)
			r := newMapRef(c.n)
			for b := 0; b < c.batches; b++ {
				batch := randomBatch(rng, c.n, c.size)
				if c.hubby {
					// Funnel most edges through vertex 0 so its degree
					// repeatedly crosses the promotion threshold.
					for i := range batch {
						if i%2 == 0 {
							batch[i].U = 0
						}
					}
				}
				insert := rng.Intn(3) != 0 // bias toward growth
				var got, want int
				if insert {
					got = len(g.InsertEdges(batch))
					want = r.apply(batch, true)
				} else {
					got = len(g.DeleteEdges(batch))
					want = r.apply(batch, false)
				}
				if got != want {
					t.Fatalf("batch %d (insert=%v): applied %d, reference %d", b, insert, got, want)
				}
				checkAgainstRef(t, g, r)
			}
		})
	}
}

// TestPromotionThresholdCrossing pins the hash-index lifecycle: a vertex
// promoted past promoteDegree keeps a consistent index, and deleting back
// below demoteDegree drops it.
func TestPromotionThresholdCrossing(t *testing.T) {
	n := promoteDegree * 2
	g := NewDynamic(n + 1)
	batch := make([]Edge, 0, n)
	for v := 1; v <= n; v++ {
		batch = append(batch, Edge{U: 0, V: uint32(v)})
	}
	g.InsertEdges(batch)
	if g.adj[0].idx == nil {
		t.Fatalf("degree %d vertex not promoted", g.Degree(0))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Delete down to below the demotion floor.
	g.DeleteEdges(batch[:n-demoteDegree+1])
	if g.adj[0].idx != nil {
		t.Fatalf("degree %d vertex not demoted", g.Degree(0))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != demoteDegree-1 {
		t.Fatalf("Degree(0) = %d, want %d", g.Degree(0), demoteDegree-1)
	}
}

// FuzzHybridVsMapReference is the fuzz entry for the same equivalence
// property: bytes are decoded into interleaved insert/delete batches.
func FuzzHybridVsMapReference(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 2, 3, 1, 1, 2})
	f.Add([]byte{0, 0, 0, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 48
		g := NewDynamic(n)
		r := newMapRef(n)
		// Each 3-byte chunk: opcode, u, v. Chunks with the same opcode
		// parity are grouped into one batch; parity flips close batches.
		var batch []Edge
		flush := func(insert bool) {
			if len(batch) == 0 {
				return
			}
			var got, want int
			if insert {
				got = len(g.InsertEdges(batch))
				want = r.apply(batch, true)
			} else {
				got = len(g.DeleteEdges(batch))
				want = r.apply(batch, false)
			}
			if got != want {
				t.Fatalf("applied %d, reference %d", got, want)
			}
			checkAgainstRef(t, g, r)
			batch = batch[:0]
		}
		insert := true
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i]%2 == 0
			if op != insert {
				flush(insert)
				insert = op
			}
			batch = append(batch, Edge{U: uint32(data[i+1]) % (n + 1), V: uint32(data[i+2]) % (n + 1)})
		}
		flush(insert)
	})
}
