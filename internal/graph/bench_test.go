package graph

import (
	"math/rand"
	"testing"
)

// benchGraph builds a graph with n vertices and ~m random edges, returning
// the graph and the (canonical, deduplicated) edges actually inserted.
func benchGraph(n, m int, seed int64) (*Dynamic, []Edge) {
	rng := rand.New(rand.NewSource(seed))
	batch := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if u != v {
			batch = append(batch, Edge{U: u, V: v})
		}
	}
	g := NewDynamic(n)
	fresh := g.InsertEdges(batch)
	return g, fresh
}

// BenchmarkNeighborsWalk measures a full adjacency walk over every vertex —
// the inner loop of countAtLeast, desireLevel, invariant checks and the
// CPLDS trigger scan.
func BenchmarkNeighborsWalk(b *testing.B) {
	const n, m = 20000, 200000
	g, _ := benchGraph(n, m, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		for v := uint32(0); v < n; v++ {
			g.Neighbors(v, func(w uint32) bool {
				sum += uint64(w)
				return true
			})
		}
	}
	benchSink = sum
}

// BenchmarkHasEdge measures membership probes against present and absent
// edges.
func BenchmarkHasEdge(b *testing.B) {
	const n, m = 20000, 200000
	g, fresh := benchGraph(n, m, 2)
	b.ReportAllocs()
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		e := fresh[i%len(fresh)]
		if g.HasEdge(e.U, e.V) {
			hits++
		}
		if g.HasEdge(e.U^1, e.V^3) {
			hits++
		}
	}
	benchSink = uint64(hits)
}

// BenchmarkHasEdgeHighDegree probes membership on a single pathological
// high-degree hub (the case the hash-index promotion exists for).
func BenchmarkHasEdgeHighDegree(b *testing.B) {
	const n = 200000
	g := NewDynamic(n)
	batch := make([]Edge, 0, n-1)
	for v := uint32(1); v < n; v++ {
		batch = append(batch, Edge{U: 0, V: v})
	}
	g.InsertEdges(batch)
	b.ReportAllocs()
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		if g.HasEdge(0, uint32(1+i%(n-1))) {
			hits++
		}
	}
	benchSink = uint64(hits)
}

// BenchmarkInsertDeleteBatch measures steady-state batch mutation: the same
// block of edges is alternately deleted and re-inserted, so the graph (and
// any internal capacity) reaches a fixed point and the measured allocations
// are the per-batch steady state.
func BenchmarkInsertDeleteBatch(b *testing.B) {
	const n, m, batchSize = 20000, 200000, 10000
	g, fresh := benchGraph(n, m, 3)
	block := fresh[:batchSize]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.DeleteEdges(block)
		g.InsertEdges(block)
	}
}

// BenchmarkSnapshot measures CSR snapshot construction.
func BenchmarkSnapshot(b *testing.B) {
	const n, m = 20000, 200000
	g, _ := benchGraph(n, m, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCSR = g.Snapshot()
	}
}

var (
	benchSink uint64
	benchCSR  *CSR
)
