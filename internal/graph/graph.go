// Package graph provides the dynamic undirected graph substrate used by the
// level data structures, plus static CSR snapshots and edge-list I/O.
//
// The dynamic representation is a hybrid adjacency engine: each vertex
// stores its neighbours in a sorted flat []uint32 block, so Neighbors is a
// cache-friendly linear scan and batch mutation is an amortized O(deg+b)
// sorted merge. Membership tests are O(log deg) binary searches; vertices
// whose degree crosses promoteDegree additionally maintain a hash side
// index that makes HasEdge O(1) — the index is never the iteration path.
// Batch insertions and deletions are deduplicated, canonicalized and applied
// with one goroutine per group of endpoints, so each adjacency block is
// mutated by exactly one worker. This mirrors how the paper's GBBS-based
// implementation applies each update batch in parallel before the
// level-maintenance phase.
package graph

import (
	"cmp"
	"fmt"
	"slices"

	"kcore/internal/parallel"
)

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V uint32
}

// E is a convenience constructor for Edge.
func E(u, v uint32) Edge { return Edge{U: u, V: v} }

// Canon returns the edge with endpoints ordered so that U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// IsSelfLoop reports whether the edge connects a vertex to itself.
func (e Edge) IsSelfLoop() bool { return e.U == e.V }

// cmpEdge orders edges by (U, V).
func cmpEdge(a, b Edge) int {
	if a.U != b.U {
		return cmp.Compare(a.U, b.U)
	}
	return cmp.Compare(a.V, b.V)
}

// promoteDegree is the degree above which a vertex maintains a hash side
// index for O(1) HasEdge; demoteDegree is the hysteresis floor below which
// the index is dropped again. Between the two, a promoted vertex keeps its
// index. Only pathological high-degree vertices ever cross the threshold;
// iteration always walks the flat sorted block regardless.
const (
	promoteDegree = 1024
	demoteDegree  = promoteDegree / 4
)

// adjacency is one vertex's neighbourhood: a sorted flat block, plus an
// optional hash index once the vertex is promoted.
type adjacency struct {
	nbrs []uint32            // sorted ascending
	idx  map[uint32]struct{} // non-nil iff promoted; mirrors nbrs exactly
}

// has reports membership using the hash index when promoted, binary search
// otherwise.
func (a *adjacency) has(v uint32) bool {
	if a.idx != nil {
		_, ok := a.idx[v]
		return ok
	}
	_, found := slices.BinarySearch(a.nbrs, v)
	return found
}

// mergeInsert merges the sorted, deduplicated, guaranteed-absent values
// vals into the sorted block in place (backward merge after a single
// amortized grow), maintaining the hash index and the promotion state.
func (a *adjacency) mergeInsert(vals []Edge) {
	n0, m := len(a.nbrs), len(vals)
	nbrs := slices.Grow(a.nbrs, m)[:n0+m]
	i, k := n0-1, n0+m-1
	for j := m - 1; j >= 0; k-- {
		if i >= 0 && nbrs[i] > vals[j].V {
			nbrs[k] = nbrs[i]
			i--
		} else {
			nbrs[k] = vals[j].V
			j--
		}
	}
	a.nbrs = nbrs
	if a.idx == nil && len(nbrs) > promoteDegree {
		a.idx = make(map[uint32]struct{}, len(nbrs))
		for _, w := range nbrs {
			a.idx[w] = struct{}{}
		}
	} else if a.idx != nil {
		for _, e := range vals {
			a.idx[e.V] = struct{}{}
		}
	}
}

// mergeDelete removes the sorted, guaranteed-present values vals from the
// sorted block with one compacting sweep, maintaining the hash index and
// demoting when the degree falls below the hysteresis floor.
func (a *adjacency) mergeDelete(vals []Edge) {
	nbrs := a.nbrs
	w, j := 0, 0
	for i := 0; i < len(nbrs); i++ {
		for j < len(vals) && vals[j].V < nbrs[i] {
			j++
		}
		if j < len(vals) && vals[j].V == nbrs[i] {
			j++
			continue
		}
		nbrs[w] = nbrs[i]
		w++
	}
	a.nbrs = nbrs[:w]
	if a.idx != nil {
		if w < demoteDegree {
			a.idx = nil
		} else {
			for _, e := range vals {
				delete(a.idx, e.V)
			}
		}
	}
}

// Dynamic is an undirected dynamic graph over a fixed vertex set
// [0, NumVertices). It tolerates duplicate and missing edges in batches
// (they are filtered) and rejects self-loops.
//
// Concurrency: batch mutators (InsertEdges, DeleteEdges) must not run
// concurrently with each other or with readers of adjacency. This matches
// the paper's model, where a single parallel batch owns the graph during
// its execution and coreness readers never touch adjacency.
type Dynamic struct {
	adj      []adjacency
	numEdges int64

	// Scratch buffers reused across batches by the single updater, so
	// steady-state batch application allocates (almost) nothing.
	normBuf   []Edge
	dirBuf    []Edge
	startsBuf []int
}

// NewDynamic returns an empty dynamic graph on n vertices.
func NewDynamic(n int) *Dynamic {
	return &Dynamic{adj: make([]adjacency, n)}
}

// FromEdges builds a dynamic graph on n vertices containing the given
// edges (deduplicated, self-loops dropped).
func FromEdges(n int, edges []Edge) *Dynamic {
	g := NewDynamic(n)
	g.InsertEdges(edges)
	return g
}

// NumVertices returns the number of vertices.
func (g *Dynamic) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of (undirected) edges currently present.
func (g *Dynamic) NumEdges() int64 { return g.numEdges }

// Degree returns the degree of v.
func (g *Dynamic) Degree(v uint32) int { return len(g.adj[v].nbrs) }

// HasEdge reports whether the edge (u, v) is present.
func (g *Dynamic) HasEdge(u, v uint32) bool { return g.adj[u].has(v) }

// Neighbors calls f for each neighbour of v until f returns false.
// Neighbours are visited in ascending order.
func (g *Dynamic) Neighbors(v uint32, f func(w uint32) bool) {
	for _, w := range g.adj[v].nbrs {
		if !f(w) {
			return
		}
	}
}

// NeighborSlice returns v's neighbours as a freshly allocated slice in
// ascending order. Intended for tests and deterministic iteration.
func (g *Dynamic) NeighborSlice(v uint32) []uint32 {
	return slices.Clone(g.adj[v].nbrs)
}

// normalizeBatch canonicalizes, sorts, and deduplicates a batch, dropping
// self-loops and out-of-range endpoints. The returned slice aliases the
// graph's scratch buffer and is valid until the next batch operation.
func (g *Dynamic) normalizeBatch(batch []Edge) []Edge {
	n := uint32(len(g.adj))
	out := g.normBuf[:0]
	for _, e := range batch {
		if e.IsSelfLoop() || e.U >= n || e.V >= n {
			continue
		}
		out = append(out, e.Canon())
	}
	slices.SortFunc(out, cmpEdge)
	// In-place dedup.
	w := 0
	for i, e := range out {
		if i == 0 || e != out[i-1] {
			out[w] = e
			w++
		}
	}
	g.normBuf = out
	return out[:w]
}

// InsertEdges inserts the batch into the graph and returns the canonical
// edges that were actually new (not already present, not duplicated within
// the batch, not self-loops). The returned slice is fresh and sorted by
// (U, V).
func (g *Dynamic) InsertEdges(batch []Edge) []Edge {
	norm := g.normalizeBatch(batch)
	fresh := parallel.Filter(norm, func(e Edge) bool { return !g.HasEdge(e.U, e.V) })
	g.apply(fresh, true)
	g.numEdges += int64(len(fresh))
	return fresh
}

// DeleteEdges removes the batch from the graph and returns the canonical
// edges that were actually present and removed, sorted by (U, V). The
// returned slice is fresh.
func (g *Dynamic) DeleteEdges(batch []Edge) []Edge {
	norm := g.normalizeBatch(batch)
	present := parallel.Filter(norm, func(e Edge) bool { return g.HasEdge(e.U, e.V) })
	g.apply(present, false)
	g.numEdges -= int64(len(present))
	return present
}

// apply mutates adjacency for the given canonical deduplicated edges. Each
// vertex's adjacency block is touched by exactly one worker: the directed
// copies of the batch are grouped by source vertex and groups are merged
// into the flat blocks in parallel.
func (g *Dynamic) apply(edges []Edge, insert bool) {
	if len(edges) == 0 {
		return
	}
	// Directed copies, sorted by source.
	dir := g.dirBuf[:0]
	for _, e := range edges {
		dir = append(dir, e, Edge{e.V, e.U})
	}
	g.dirBuf = dir
	slices.SortFunc(dir, cmpEdge)
	// Group boundaries: positions where the source changes.
	starts := g.groupStarts(dir)
	parallel.For(len(starts), func(gi int) {
		lo := starts[gi]
		hi := len(dir)
		if gi+1 < len(starts) {
			hi = starts[gi+1]
		}
		a := &g.adj[dir[lo].U]
		if insert {
			a.mergeInsert(dir[lo:hi])
		} else {
			a.mergeDelete(dir[lo:hi])
		}
	})
}

// groupStarts returns the index of the first directed edge of each distinct
// source vertex in the sorted directed edge list. The result aliases the
// graph's scratch buffer.
func (g *Dynamic) groupStarts(dir []Edge) []int {
	starts := g.startsBuf[:0]
	for i := range dir {
		if i == 0 || dir[i].U != dir[i-1].U {
			starts = append(starts, i)
		}
	}
	g.startsBuf = starts
	return starts
}

// Edges returns all edges in canonical form, sorted by (U, V). Since every
// adjacency block is sorted, the output needs no extra sorting pass.
func (g *Dynamic) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	for u := range g.adj {
		for _, v := range g.adj[u].nbrs {
			if uint32(u) < v {
				out = append(out, Edge{uint32(u), v})
			}
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Dynamic) Clone() *Dynamic {
	c := &Dynamic{adj: make([]adjacency, len(g.adj)), numEdges: g.numEdges}
	parallel.For(len(g.adj), func(i int) {
		a := &g.adj[i]
		if len(a.nbrs) == 0 {
			return
		}
		ca := adjacency{nbrs: slices.Clone(a.nbrs)}
		if a.idx != nil {
			ca.idx = make(map[uint32]struct{}, len(ca.nbrs))
			for _, w := range ca.nbrs {
				ca.idx[w] = struct{}{}
			}
		}
		c.adj[i] = ca
	})
	return c
}

// CSR is a static compressed-sparse-row snapshot of an undirected graph.
// Offsets has length NumVertices+1; the neighbours of v are
// Targets[Offsets[v]:Offsets[v+1]], sorted ascending.
type CSR struct {
	Offsets []int64
	Targets []uint32
}

// NumVertices returns the number of vertices in the snapshot.
func (c *CSR) NumVertices() int { return len(c.Offsets) - 1 }

// NumEdges returns the number of undirected edges in the snapshot.
func (c *CSR) NumEdges() int64 { return int64(len(c.Targets)) / 2 }

// Degree returns the degree of v.
func (c *CSR) Degree(v uint32) int {
	return int(c.Offsets[v+1] - c.Offsets[v])
}

// Neighbors returns the sorted neighbour slice of v (a view, do not mutate).
func (c *CSR) Neighbors(v uint32) []uint32 {
	return c.Targets[c.Offsets[v]:c.Offsets[v+1]]
}

// Snapshot builds a CSR snapshot of the current graph state. Adjacency
// blocks are already sorted, so this is a straight parallel copy.
func (g *Dynamic) Snapshot() *CSR {
	n := len(g.adj)
	offs := make([]int64, n+1)
	var total int64
	for i := 0; i < n; i++ {
		offs[i] = total
		total += int64(len(g.adj[i].nbrs))
	}
	offs[n] = total
	targets := make([]uint32, total)
	parallel.For(n, func(i int) {
		copy(targets[offs[i]:offs[i+1]], g.adj[i].nbrs)
	})
	return &CSR{Offsets: offs, Targets: targets}
}

// CSRFromEdges builds a CSR directly from an edge list on n vertices.
// Duplicates and self-loops are removed.
func CSRFromEdges(n int, edges []Edge) *CSR {
	return FromEdges(n, edges).Snapshot()
}

// FromCSR rebuilds a dynamic graph from a CSR snapshot — the inverse of
// Snapshot, used by durability recovery. Adjacency rows are copied in
// parallel (CSR rows are already sorted) and high-degree vertices are
// re-promoted. The snapshot must be well-formed (symmetric, sorted, no
// self-loops); Validate can verify the result.
func FromCSR(c *CSR) *Dynamic {
	n := c.NumVertices()
	g := NewDynamic(n)
	parallel.For(n, func(i int) {
		row := c.Neighbors(uint32(i))
		if len(row) == 0 {
			return
		}
		a := &g.adj[i]
		a.nbrs = slices.Clone(row)
		if len(a.nbrs) > promoteDegree {
			a.idx = make(map[uint32]struct{}, len(a.nbrs))
			for _, w := range a.nbrs {
				a.idx[w] = struct{}{}
			}
		}
	})
	g.numEdges = c.NumEdges()
	return g
}

// Validate checks internal consistency: sortedness and uniqueness of every
// adjacency block, symmetry, the edge count, and the promotion side index.
// It is used by tests and returns a descriptive error on failure.
func (g *Dynamic) Validate() error {
	var count int64
	for u := range g.adj {
		a := &g.adj[u]
		for i, v := range a.nbrs {
			if v == uint32(u) {
				return fmt.Errorf("self-loop at %d", u)
			}
			if i > 0 && a.nbrs[i-1] >= v {
				return fmt.Errorf("adjacency of %d unsorted or duplicated at %d", u, v)
			}
			if !g.HasEdge(v, uint32(u)) {
				return fmt.Errorf("asymmetric edge (%d,%d)", u, v)
			}
			count++
		}
		if a.idx != nil {
			if len(a.idx) != len(a.nbrs) {
				return fmt.Errorf("vertex %d: index size %d != degree %d", u, len(a.idx), len(a.nbrs))
			}
			for _, v := range a.nbrs {
				if _, ok := a.idx[v]; !ok {
					return fmt.Errorf("vertex %d: neighbour %d missing from index", u, v)
				}
			}
		}
	}
	if count%2 != 0 {
		return fmt.Errorf("odd directed edge count %d", count)
	}
	if count/2 != g.numEdges {
		return fmt.Errorf("edge count drift: counted %d, recorded %d", count/2, g.numEdges)
	}
	return nil
}
