// Package graph provides the dynamic undirected graph substrate used by the
// level data structures, plus static CSR snapshots and edge-list I/O.
//
// The dynamic representation is a per-vertex hash set of neighbours. Batch
// insertions and deletions are deduplicated, canonicalized and applied with
// one goroutine per group of endpoints, so each adjacency set is mutated by
// exactly one worker. This mirrors how the paper's GBBS-based implementation
// applies each update batch in parallel before the level-maintenance phase.
package graph

import (
	"fmt"
	"sort"

	"kcore/internal/parallel"
)

// Edge is an undirected edge between vertices U and V.
type Edge struct {
	U, V uint32
}

// E is a convenience constructor for Edge.
func E(u, v uint32) Edge { return Edge{U: u, V: v} }

// Canon returns the edge with endpoints ordered so that U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// IsSelfLoop reports whether the edge connects a vertex to itself.
func (e Edge) IsSelfLoop() bool { return e.U == e.V }

// Dynamic is an undirected dynamic graph over a fixed vertex set
// [0, NumVertices). It tolerates duplicate and missing edges in batches
// (they are filtered) and rejects self-loops.
//
// Concurrency: batch mutators (InsertEdges, DeleteEdges) must not run
// concurrently with each other or with readers of adjacency. This matches
// the paper's model, where a single parallel batch owns the graph during
// its execution and coreness readers never touch adjacency.
type Dynamic struct {
	adj      []map[uint32]struct{}
	numEdges int64
}

// NewDynamic returns an empty dynamic graph on n vertices.
func NewDynamic(n int) *Dynamic {
	return &Dynamic{adj: make([]map[uint32]struct{}, n)}
}

// FromEdges builds a dynamic graph on n vertices containing the given
// edges (deduplicated, self-loops dropped).
func FromEdges(n int, edges []Edge) *Dynamic {
	g := NewDynamic(n)
	g.InsertEdges(edges)
	return g
}

// NumVertices returns the number of vertices.
func (g *Dynamic) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of (undirected) edges currently present.
func (g *Dynamic) NumEdges() int64 { return g.numEdges }

// Degree returns the degree of v.
func (g *Dynamic) Degree(v uint32) int { return len(g.adj[v]) }

// HasEdge reports whether the edge (u, v) is present.
func (g *Dynamic) HasEdge(u, v uint32) bool {
	if g.adj[u] == nil {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Neighbors calls f for each neighbour of v until f returns false.
// Iteration order is unspecified.
func (g *Dynamic) Neighbors(v uint32, f func(w uint32) bool) {
	for w := range g.adj[v] {
		if !f(w) {
			return
		}
	}
}

// NeighborSlice returns v's neighbours as a freshly allocated slice in
// ascending order. Intended for tests and deterministic iteration.
func (g *Dynamic) NeighborSlice(v uint32) []uint32 {
	out := make([]uint32, 0, len(g.adj[v]))
	for w := range g.adj[v] {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// normalizeBatch canonicalizes, sorts, and deduplicates a batch, dropping
// self-loops and out-of-range endpoints. The returned slice is fresh.
func (g *Dynamic) normalizeBatch(batch []Edge) []Edge {
	n := uint32(len(g.adj))
	out := make([]Edge, 0, len(batch))
	for _, e := range batch {
		if e.IsSelfLoop() || e.U >= n || e.V >= n {
			continue
		}
		out = append(out, e.Canon())
	}
	parallel.Sort(out, func(a, b Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	// In-place dedup.
	w := 0
	for i, e := range out {
		if i == 0 || e != out[i-1] {
			out[w] = e
			w++
		}
	}
	return out[:w]
}

// InsertEdges inserts the batch into the graph and returns the canonical
// edges that were actually new (not already present, not duplicated within
// the batch, not self-loops). The returned slice is sorted by (U, V).
func (g *Dynamic) InsertEdges(batch []Edge) []Edge {
	norm := g.normalizeBatch(batch)
	fresh := parallel.Filter(norm, func(e Edge) bool { return !g.HasEdge(e.U, e.V) })
	g.apply(fresh, true)
	g.numEdges += int64(len(fresh))
	return fresh
}

// DeleteEdges removes the batch from the graph and returns the canonical
// edges that were actually present and removed, sorted by (U, V).
func (g *Dynamic) DeleteEdges(batch []Edge) []Edge {
	norm := g.normalizeBatch(batch)
	present := parallel.Filter(norm, func(e Edge) bool { return g.HasEdge(e.U, e.V) })
	g.apply(present, false)
	g.numEdges -= int64(len(present))
	return present
}

// apply mutates adjacency for the given canonical deduplicated edges. Each
// vertex's adjacency set is touched by exactly one worker: the directed
// copies of the batch are grouped by source vertex and groups are processed
// in parallel.
func (g *Dynamic) apply(edges []Edge, insert bool) {
	if len(edges) == 0 {
		return
	}
	// Directed copies, sorted by source.
	dir := make([]Edge, 0, 2*len(edges))
	for _, e := range edges {
		dir = append(dir, e, Edge{e.V, e.U})
	}
	parallel.Sort(dir, func(a, b Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	// Group boundaries: positions where the source changes.
	starts := groupStarts(dir)
	parallel.For(len(starts), func(gi int) {
		lo := starts[gi]
		hi := len(dir)
		if gi+1 < len(starts) {
			hi = starts[gi+1]
		}
		src := dir[lo].U
		set := g.adj[src]
		if insert {
			if set == nil {
				set = make(map[uint32]struct{}, hi-lo)
				g.adj[src] = set
			}
			for _, d := range dir[lo:hi] {
				set[d.V] = struct{}{}
			}
		} else if set != nil {
			for _, d := range dir[lo:hi] {
				delete(set, d.V)
			}
		}
	})
}

// groupStarts returns the index of the first directed edge of each distinct
// source vertex in the sorted directed edge list.
func groupStarts(dir []Edge) []int {
	starts := make([]int, 0, 64)
	for i := range dir {
		if i == 0 || dir[i].U != dir[i-1].U {
			starts = append(starts, i)
		}
	}
	return starts
}

// Edges returns all edges in canonical form, sorted by (U, V).
func (g *Dynamic) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	for u := range g.adj {
		for v := range g.adj[u] {
			if uint32(u) < v {
				out = append(out, Edge{uint32(u), v})
			}
		}
	}
	parallel.Sort(out, func(a, b Edge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Dynamic) Clone() *Dynamic {
	c := &Dynamic{adj: make([]map[uint32]struct{}, len(g.adj)), numEdges: g.numEdges}
	parallel.For(len(g.adj), func(i int) {
		if g.adj[i] == nil {
			return
		}
		m := make(map[uint32]struct{}, len(g.adj[i]))
		for w := range g.adj[i] {
			m[w] = struct{}{}
		}
		c.adj[i] = m
	})
	return c
}

// CSR is a static compressed-sparse-row snapshot of an undirected graph.
// Offsets has length NumVertices+1; the neighbours of v are
// Targets[Offsets[v]:Offsets[v+1]], sorted ascending.
type CSR struct {
	Offsets []int64
	Targets []uint32
}

// NumVertices returns the number of vertices in the snapshot.
func (c *CSR) NumVertices() int { return len(c.Offsets) - 1 }

// NumEdges returns the number of undirected edges in the snapshot.
func (c *CSR) NumEdges() int64 { return int64(len(c.Targets)) / 2 }

// Degree returns the degree of v.
func (c *CSR) Degree(v uint32) int {
	return int(c.Offsets[v+1] - c.Offsets[v])
}

// Neighbors returns the sorted neighbour slice of v (a view, do not mutate).
func (c *CSR) Neighbors(v uint32) []uint32 {
	return c.Targets[c.Offsets[v]:c.Offsets[v+1]]
}

// Snapshot builds a CSR snapshot of the current graph state.
func (g *Dynamic) Snapshot() *CSR {
	n := len(g.adj)
	offs := make([]int64, n+1)
	degs := make([]int, n)
	parallel.For(n, func(i int) { degs[i] = len(g.adj[i]) })
	var total int64
	for i := 0; i < n; i++ {
		offs[i] = total
		total += int64(degs[i])
	}
	offs[n] = total
	targets := make([]uint32, total)
	parallel.For(n, func(i int) {
		pos := offs[i]
		for w := range g.adj[i] {
			targets[pos] = w
			pos++
		}
		seg := targets[offs[i]:offs[i+1]]
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
	})
	return &CSR{Offsets: offs, Targets: targets}
}

// CSRFromEdges builds a CSR directly from an edge list on n vertices.
// Duplicates and self-loops are removed.
func CSRFromEdges(n int, edges []Edge) *CSR {
	return FromEdges(n, edges).Snapshot()
}

// Validate checks internal consistency (symmetry of adjacency and the edge
// count); it is used by tests and returns a descriptive error on failure.
func (g *Dynamic) Validate() error {
	var count int64
	for u := range g.adj {
		for v := range g.adj[u] {
			if v == uint32(u) {
				return fmt.Errorf("self-loop at %d", u)
			}
			if !g.HasEdge(v, uint32(u)) {
				return fmt.Errorf("asymmetric edge (%d,%d)", u, v)
			}
			count++
		}
	}
	if count%2 != 0 {
		return fmt.Errorf("odd directed edge count %d", count)
	}
	if count/2 != g.numEdges {
		return fmt.Errorf("edge count drift: counted %d, recorded %d", count/2, g.numEdges)
	}
	return nil
}
