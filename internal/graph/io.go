package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line).
// Lines starting with '#' or '%' are comments. It returns the edges and the
// implied vertex count (max id + 1).
func ReadEdgeList(r io.Reader) ([]Edge, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := int64(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("line %d: expected two vertex ids, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: bad vertex id %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: bad vertex id %q: %v", lineNo, fields[1], err)
		}
		edges = append(edges, Edge{uint32(u), uint32(v)})
		if int64(u) > maxID {
			maxID = int64(u)
		}
		if int64(v) > maxID {
			maxID = int64(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return edges, int(maxID + 1), nil
}

// WriteEdgeList writes edges one per line as "u v".
func WriteEdgeList(w io.Writer, edges []Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}
