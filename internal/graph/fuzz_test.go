package graph

import (
	"bytes"
	"testing"
)

// FuzzBatchOps feeds arbitrary byte strings interpreted as edit scripts to
// the dynamic graph and checks structural consistency after every batch.
func FuzzBatchOps(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 2, 0, 2, 3})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 5, 9, 1, 9, 5, 0, 5, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 32
		g := NewDynamic(n)
		// Each 3-byte chunk: opcode (even=insert, odd=delete), u, v.
		var ins, del []Edge
		for i := 0; i+2 < len(data); i += 3 {
			e := Edge{U: uint32(data[i+1]) % n, V: uint32(data[i+2]) % n}
			if data[i]%2 == 0 {
				ins = append(ins, e)
			} else {
				del = append(del, e)
			}
		}
		g.InsertEdges(ins)
		if err := g.Validate(); err != nil {
			t.Fatalf("after insert: %v", err)
		}
		g.DeleteEdges(del)
		if err := g.Validate(); err != nil {
			t.Fatalf("after delete: %v", err)
		}
		// CSR snapshot must agree with the dynamic graph.
		csr := g.Snapshot()
		if csr.NumEdges() != g.NumEdges() {
			t.Fatalf("snapshot edges %d != %d", csr.NumEdges(), g.NumEdges())
		}
	})
}

// FuzzEdgeListParser feeds arbitrary text to the edge-list reader: it must
// never panic, and successful parses must round-trip.
func FuzzEdgeListParser(f *testing.F) {
	f.Add("0 1\n2 3\n")
	f.Add("# comment\n\n5 5\n")
	f.Add("a b\n")
	f.Fuzz(func(t *testing.T, input string) {
		edges, n, err := ReadEdgeList(bytes.NewReader([]byte(input)))
		if err != nil {
			return
		}
		for _, e := range edges {
			if int(e.U) >= n || int(e.V) >= n {
				t.Fatalf("edge %v out of reported range %d", e, n)
			}
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, edges); err != nil {
			t.Fatal(err)
		}
		back, _, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if len(back) != len(edges) {
			t.Fatalf("round trip length %d != %d", len(back), len(edges))
		}
	})
}
