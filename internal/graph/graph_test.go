package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEdgeCanon(t *testing.T) {
	if got := (Edge{5, 2}).Canon(); got != (Edge{2, 5}) {
		t.Fatalf("Canon = %v", got)
	}
	if got := (Edge{2, 5}).Canon(); got != (Edge{2, 5}) {
		t.Fatalf("Canon of canonical = %v", got)
	}
	if !(Edge{3, 3}).IsSelfLoop() {
		t.Fatal("self-loop not detected")
	}
}

func TestInsertBasic(t *testing.T) {
	g := NewDynamic(4)
	fresh := g.InsertEdges([]Edge{{0, 1}, {1, 0}, {2, 3}, {3, 3}})
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v, want 2 edges", fresh)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) missing or asymmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	if g.Degree(3) != 1 {
		t.Fatalf("Degree(3) = %d", g.Degree(3))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertExistingIsFiltered(t *testing.T) {
	g := NewDynamic(3)
	g.InsertEdges([]Edge{{0, 1}})
	fresh := g.InsertEdges([]Edge{{1, 0}, {1, 2}})
	if len(fresh) != 1 || fresh[0] != (Edge{1, 2}) {
		t.Fatalf("fresh = %v", fresh)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

func TestDeleteBasic(t *testing.T) {
	g := NewDynamic(4)
	g.InsertEdges([]Edge{{0, 1}, {1, 2}, {2, 3}})
	removed := g.DeleteEdges([]Edge{{2, 1}, {0, 3}, {1, 2}})
	if len(removed) != 1 || removed[0] != (Edge{1, 2}) {
		t.Fatalf("removed = %v", removed)
	}
	if g.HasEdge(1, 2) {
		t.Fatal("edge not deleted")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfRangeFiltered(t *testing.T) {
	g := NewDynamic(3)
	fresh := g.InsertEdges([]Edge{{0, 7}, {9, 1}, {0, 2}})
	if len(fresh) != 1 || fresh[0] != (Edge{0, 2}) {
		t.Fatalf("fresh = %v", fresh)
	}
}

func TestNeighborsIteration(t *testing.T) {
	g := NewDynamic(5)
	g.InsertEdges([]Edge{{0, 1}, {0, 2}, {0, 3}})
	seen := map[uint32]bool{}
	g.Neighbors(0, func(w uint32) bool {
		seen[w] = true
		return true
	})
	if len(seen) != 3 || !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("seen = %v", seen)
	}
	// Early termination.
	count := 0
	g.Neighbors(0, func(w uint32) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
	if got := g.NeighborSlice(0); !reflect.DeepEqual(got, []uint32{1, 2, 3}) {
		t.Fatalf("NeighborSlice = %v", got)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := NewDynamic(5)
	g.InsertEdges([]Edge{{4, 0}, {2, 1}, {0, 1}})
	got := g.Edges()
	want := []Edge{{0, 1}, {0, 4}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestClone(t *testing.T) {
	g := NewDynamic(4)
	g.InsertEdges([]Edge{{0, 1}, {2, 3}})
	c := g.Clone()
	c.DeleteEdges([]Edge{{0, 1}})
	if !g.HasEdge(0, 1) {
		t.Fatal("clone mutation leaked into original")
	}
	if c.HasEdge(0, 1) {
		t.Fatal("clone delete did not apply")
	}
	if g.NumEdges() != 2 || c.NumEdges() != 1 {
		t.Fatalf("edge counts: g=%d c=%d", g.NumEdges(), c.NumEdges())
	}
}

func TestSnapshotCSR(t *testing.T) {
	g := NewDynamic(4)
	g.InsertEdges([]Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	csr := g.Snapshot()
	if csr.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d", csr.NumVertices())
	}
	if csr.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d", csr.NumEdges())
	}
	if !reflect.DeepEqual(csr.Neighbors(2), []uint32{0, 1, 3}) {
		t.Fatalf("Neighbors(2) = %v", csr.Neighbors(2))
	}
	if csr.Degree(0) != 2 || csr.Degree(3) != 1 {
		t.Fatalf("degrees wrong: %d %d", csr.Degree(0), csr.Degree(3))
	}
}

func TestCSRFromEdges(t *testing.T) {
	csr := CSRFromEdges(3, []Edge{{0, 1}, {1, 0}, {1, 1}, {1, 2}})
	if csr.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", csr.NumEdges())
	}
	if !reflect.DeepEqual(csr.Neighbors(1), []uint32{0, 2}) {
		t.Fatalf("Neighbors(1) = %v", csr.Neighbors(1))
	}
}

// model is a reference implementation using a simple map of canonical edges.
type model map[Edge]struct{}

func (m model) insert(e Edge) bool {
	if e.IsSelfLoop() {
		return false
	}
	c := e.Canon()
	if _, ok := m[c]; ok {
		return false
	}
	m[c] = struct{}{}
	return true
}

func (m model) remove(e Edge) bool {
	c := e.Canon()
	if _, ok := m[c]; !ok {
		return false
	}
	delete(m, c)
	return true
}

func TestBatchOpsMatchModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 60
	g := NewDynamic(n)
	m := model{}
	for step := 0; step < 200; step++ {
		batch := make([]Edge, rng.Intn(30))
		for i := range batch {
			batch[i] = Edge{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
		}
		if rng.Intn(2) == 0 {
			fresh := g.InsertEdges(batch)
			want := 0
			for _, e := range dedupCanon(batch) {
				if m.insert(e) {
					want++
				}
			}
			if len(fresh) != want {
				t.Fatalf("step %d: insert count %d want %d", step, len(fresh), want)
			}
		} else {
			removed := g.DeleteEdges(batch)
			want := 0
			for _, e := range dedupCanon(batch) {
				if m.remove(e) {
					want++
				}
			}
			if len(removed) != want {
				t.Fatalf("step %d: delete count %d want %d", step, len(removed), want)
			}
		}
		if int64(len(m)) != g.NumEdges() {
			t.Fatalf("step %d: edge count %d vs model %d", step, g.NumEdges(), len(m))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for e := range m {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v in model but not graph", e)
		}
	}
}

func dedupCanon(batch []Edge) []Edge {
	seen := map[Edge]struct{}{}
	var out []Edge
	for _, e := range batch {
		if e.IsSelfLoop() {
			continue
		}
		c := e.Canon()
		if _, ok := seen[c]; ok {
			continue
		}
		seen[c] = struct{}{}
		out = append(out, c)
	}
	return out
}

func TestInsertDeleteRoundTripProperty(t *testing.T) {
	f := func(raw [][2]uint8) bool {
		const n = 64
		edges := make([]Edge, len(raw))
		for i, p := range raw {
			edges[i] = Edge{uint32(p[0]) % n, uint32(p[1]) % n}
		}
		g := NewDynamic(n)
		fresh := g.InsertEdges(edges)
		removed := g.DeleteEdges(edges)
		return len(fresh) == len(removed) && g.NumEdges() == 0 && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteEdgeList(t *testing.T) {
	in := "# comment\n0 1\n\n% also comment\n2 3\n1 2\n"
	edges, n, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("n = %d", n)
	}
	want := []Edge{{0, 1}, {2, 3}, {1, 2}}
	if !reflect.DeepEqual(edges, want) {
		t.Fatalf("edges = %v", edges)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, edges); err != nil {
		t.Fatal(err)
	}
	back, n2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 4 || !reflect.DeepEqual(back, edges) {
		t.Fatalf("round trip mismatch: %v", back)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Fatal("want error for single-field line")
	}
	if _, _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("want error for non-numeric id")
	}
	if _, _, err := ReadEdgeList(strings.NewReader("1 -2\n")); err == nil {
		t.Fatal("want error for negative id")
	}
}

func TestLargeBatchParallelApply(t *testing.T) {
	// Exercise the parallel apply path (batch > grain size).
	const n = 2000
	rng := rand.New(rand.NewSource(13))
	batch := make([]Edge, 30000)
	for i := range batch {
		batch[i] = Edge{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}
	g := NewDynamic(n)
	fresh := g.InsertEdges(batch)
	if int64(len(fresh)) != g.NumEdges() {
		t.Fatalf("count mismatch: %d vs %d", len(fresh), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	removed := g.DeleteEdges(batch)
	if len(removed) != len(fresh) || g.NumEdges() != 0 {
		t.Fatalf("delete mismatch: removed=%d fresh=%d left=%d", len(removed), len(fresh), g.NumEdges())
	}
}

func BenchmarkInsertBatch(b *testing.B) {
	const n = 100000
	rng := rand.New(rand.NewSource(17))
	batch := make([]Edge, 100000)
	for i := range batch {
		batch[i] = Edge{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewDynamic(n)
		g.InsertEdges(batch)
	}
}
