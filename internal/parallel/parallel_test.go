package parallel

import (
	"math/rand"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSetWorkers(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(7)
	if Workers() != 7 {
		t.Fatalf("Workers() = %d, want 7", Workers())
	}
	SetWorkers(0) // resets to GOMAXPROCS
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 10, minGrain - 1, minGrain, minGrain + 1, 10000} {
		seen := make([]int32, n)
		ForWith(4, n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForWithOneWorkerIsSequential(t *testing.T) {
	order := make([]int, 0, 100)
	ForWith(1, 100, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order violated at %d: got %d", i, v)
		}
	}
}

func TestBlockedForPartition(t *testing.T) {
	for _, n := range []int{0, 1, minGrain * 3, 12345} {
		var total atomic.Int64
		seen := make([]int32, n)
		BlockedForWith(3, n, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("bad block [%d,%d) for n=%d", lo, hi, n)
			}
			total.Add(int64(hi - lo))
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		if total.Load() != int64(n) {
			t.Fatalf("n=%d: covered %d iterations", n, total.Load())
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, c)
			}
		}
	}
}

func TestDo(t *testing.T) {
	var a, b, c atomic.Bool
	Do(
		func() { a.Store(true) },
		func() { b.Store(true) },
		func() { c.Store(true) },
	)
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("not all thunks ran")
	}
	Do() // no-op
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Fatal("single thunk did not run")
	}
}

func TestReduceSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 100, minGrain * 5} {
		xs := make([]int, n)
		want := 0
		for i := range xs {
			xs[i] = rng.Intn(1000)
			want += xs[i]
		}
		for _, w := range []int{1, 2, 8} {
			got := ReduceWith(w, xs, 0, func(a, b int) int { return a + b })
			if got != want {
				t.Fatalf("n=%d w=%d: Reduce = %d, want %d", n, w, got, want)
			}
		}
	}
}

func TestReduceNonCommutative(t *testing.T) {
	// String concatenation is associative but not commutative; Reduce must
	// preserve order.
	xs := make([]string, 3000)
	want := ""
	for i := range xs {
		xs[i] = string(rune('a' + i%26))
		want += xs[i]
	}
	got := ReduceWith(4, xs, "", func(a, b string) string { return a + b })
	if got != want {
		t.Fatalf("order not preserved by Reduce")
	}
}

func TestMapReduce(t *testing.T) {
	xs := make([]int, 5000)
	want := 0
	for i := range xs {
		xs[i] = i
		want += i * i
	}
	got := MapReduce(xs, 0, func(x int) int { return x * x }, func(a, b int) int { return a + b })
	if got != want {
		t.Fatalf("MapReduce = %d, want %d", got, want)
	}
}

func scanRef(xs []int) ([]int, int) {
	out := make([]int, len(xs))
	sum := 0
	for i, x := range xs {
		out[i] = sum
		sum += x
	}
	return out, sum
}

func TestScanMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 10, minGrain, minGrain*7 + 13} {
		orig := make([]int, n)
		for i := range orig {
			orig[i] = rng.Intn(100)
		}
		wantArr, wantTotal := scanRef(orig)
		for _, w := range []int{1, 3, 8} {
			xs := append([]int(nil), orig...)
			total := ScanWith(w, xs)
			if total != wantTotal {
				t.Fatalf("n=%d w=%d: total %d want %d", n, w, total, wantTotal)
			}
			if n > 0 && !reflect.DeepEqual(xs, wantArr) {
				t.Fatalf("n=%d w=%d: scan mismatch", n, w)
			}
		}
	}
}

func TestScanProperty(t *testing.T) {
	f := func(xs []int) bool {
		if len(xs) == 0 {
			return true
		}
		// Bound values to avoid overflow noise.
		for i := range xs {
			xs[i] &= 0xffff
		}
		want, wantTotal := scanRef(xs)
		got := append([]int(nil), xs...)
		total := ScanWith(4, got)
		return total == wantTotal && reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFilter(t *testing.T) {
	for _, n := range []int{0, 1, 100, minGrain * 4} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i
		}
		got := Filter(xs, func(x int) bool { return x%3 == 0 })
		want := make([]int, 0)
		for _, x := range xs {
			if x%3 == 0 {
				want = append(want, x)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: filter mismatch: got %d elems want %d", n, len(got), len(want))
		}
	}
}

func TestFilterAllAndNone(t *testing.T) {
	xs := make([]int, minGrain*2)
	for i := range xs {
		xs[i] = i
	}
	if got := Filter(xs, func(int) bool { return true }); len(got) != len(xs) {
		t.Fatalf("filter all: got %d", len(got))
	}
	if got := Filter(xs, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("filter none: got %d", len(got))
	}
}

func TestMap(t *testing.T) {
	xs := []int{1, 2, 3, 4}
	got := Map(xs, func(x int) int { return x * 10 })
	if !reflect.DeepEqual(got, []int{10, 20, 30, 40}) {
		t.Fatalf("Map = %v", got)
	}
}

func TestCount(t *testing.T) {
	xs := make([]int, 10000)
	for i := range xs {
		xs[i] = i
	}
	if got := Count(xs, func(x int) bool { return x%2 == 0 }); got != 5000 {
		t.Fatalf("Count = %d, want 5000", got)
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 100, sortSeqCutoff + 1, sortSeqCutoff*4 + 17} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(1000))
		}
		want := append([]int64(nil), xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, w := range []int{1, 4} {
			got := append([]int64(nil), xs...)
			SortWith(w, got, func(a, b int64) bool { return a < b })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d w=%d: sort mismatch", n, w)
			}
		}
	}
}

func TestSortStability(t *testing.T) {
	type kv struct{ k, pos int }
	n := sortSeqCutoff * 3
	xs := make([]kv, n)
	rng := rand.New(rand.NewSource(4))
	for i := range xs {
		xs[i] = kv{k: rng.Intn(10), pos: i}
	}
	SortWith(4, xs, func(a, b kv) bool { return a.k < b.k })
	for i := 1; i < n; i++ {
		if xs[i-1].k == xs[i].k && xs[i-1].pos > xs[i].pos {
			t.Fatalf("stability violated at %d", i)
		}
		if xs[i-1].k > xs[i].k {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(xs []int32) bool {
		got := append([]int32(nil), xs...)
		Sort(got, func(a, b int32) bool { return a < b })
		want := append([]int32(nil), xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	keys := make([]int, 20000)
	rng := rand.New(rand.NewSource(5))
	want := make([]int64, 13)
	for i := range keys {
		keys[i] = rng.Intn(15) - 1 // includes out-of-range -1, 13, 14
		if keys[i] >= 0 && keys[i] < 13 {
			want[keys[i]]++
		}
	}
	got := Histogram(keys, 13)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("histogram mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestMaxIndex(t *testing.T) {
	if got := MaxIndex([]int{}, func(a, b int) bool { return a < b }); got != -1 {
		t.Fatalf("empty MaxIndex = %d", got)
	}
	xs := []int{3, 9, 2, 9, 1}
	if got := MaxIndex(xs, func(a, b int) bool { return a < b }); got != 1 {
		t.Fatalf("MaxIndex = %d, want 1 (first max)", got)
	}
}

func BenchmarkParallelFor(b *testing.B) {
	xs := make([]int64, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BlockedFor(len(xs), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				xs[j]++
			}
		})
	}
}

func BenchmarkParallelSort(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	orig := make([]int64, 1<<18)
	for i := range orig {
		orig[i] = rng.Int63()
	}
	xs := make([]int64, len(orig))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(xs, orig)
		SortInts(xs)
	}
}
