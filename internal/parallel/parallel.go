// Package parallel provides fork-join parallel primitives over goroutines.
//
// It is a small, dependency-free stand-in for the ParlayLib primitives the
// paper's C++ implementation uses: parallel for, reduce, scan, filter, pack,
// sort and histogram. All primitives are deterministic: given the same input
// they produce the same output regardless of the number of workers.
//
// Workers defaults to runtime.GOMAXPROCS(0) and can be overridden per call
// site via SetWorkers for reproducible experiments with a fixed parallelism
// degree.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the global default parallelism degree.
var defaultWorkers atomic.Int32

func init() {
	defaultWorkers.Store(int32(runtime.GOMAXPROCS(0)))
}

// SetWorkers sets the global default number of workers used by the
// primitives in this package. Values < 1 reset to GOMAXPROCS.
func SetWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	defaultWorkers.Store(int32(n))
}

// Workers reports the current global default number of workers.
func Workers() int { return int(defaultWorkers.Load()) }

// minGrain is the smallest chunk of iterations handed to one goroutine.
// Below this, scheduling overhead dominates and we run sequentially.
const minGrain = 512

// For runs body(i) for every i in [0, n) using the default worker count.
// Iterations may run concurrently; body must be safe for concurrent calls
// on distinct indices.
func For(n int, body func(i int)) {
	ForWith(Workers(), n, body)
}

// ForWith is For with an explicit worker count.
func ForWith(workers, n int, body func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n < minGrain {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	BlockedForWith(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// BlockedFor partitions [0, n) into contiguous blocks and runs body(lo, hi)
// on each block, using the default worker count. It is the preferred
// primitive when per-iteration work is tiny, since it amortizes dispatch.
func BlockedFor(n int, body func(lo, hi int)) {
	BlockedForWith(Workers(), n, body)
}

// BlockedForWith is BlockedFor with an explicit worker count. Blocks are
// claimed dynamically with an atomic counter so that uneven per-block work
// is balanced across workers.
func BlockedForWith(workers, n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n < minGrain {
		body(0, n)
		return
	}
	// Aim for ~8 blocks per worker for load balancing, but never smaller
	// than minGrain iterations each.
	nblocks := workers * 8
	block := (n + nblocks - 1) / nblocks
	if block < minGrain {
		block = minGrain
		nblocks = (n + block - 1) / block
	}
	if nblocks < workers {
		workers = nblocks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nblocks {
					return
				}
				lo := b * block
				hi := lo + block
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Do runs the given thunks, possibly in parallel, and waits for all of them.
func Do(thunks ...func()) {
	switch len(thunks) {
	case 0:
		return
	case 1:
		thunks[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(thunks) - 1)
	for _, t := range thunks[1:] {
		t := t
		go func() {
			defer wg.Done()
			t()
		}()
	}
	thunks[0]()
	wg.Wait()
}

// Reduce combines xs with the associative function combine, starting from
// identity. combine must be associative; it need not be commutative.
func Reduce[T any](xs []T, identity T, combine func(a, b T) T) T {
	return ReduceWith(Workers(), xs, identity, combine)
}

// ReduceWith is Reduce with an explicit worker count.
func ReduceWith[T any](workers int, xs []T, identity T, combine func(a, b T) T) T {
	n := len(xs)
	if workers <= 1 || n < minGrain {
		acc := identity
		for _, x := range xs {
			acc = combine(acc, x)
		}
		return acc
	}
	nchunks := workers * 4
	chunk := (n + nchunks - 1) / nchunks
	if chunk < minGrain {
		chunk = minGrain
		nchunks = (n + chunk - 1) / chunk
	}
	partial := make([]T, nchunks)
	BlockedForWith(workers, nchunks, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			a, b := c*chunk, (c+1)*chunk
			if b > n {
				b = n
			}
			acc := identity
			for _, x := range xs[a:b] {
				acc = combine(acc, x)
			}
			partial[c] = acc
		}
	})
	acc := identity
	for _, p := range partial {
		acc = combine(acc, p)
	}
	return acc
}

// MapReduce maps each element through f and reduces the results with
// combine, starting from identity.
func MapReduce[T, R any](xs []T, identity R, f func(T) R, combine func(a, b R) R) R {
	n := len(xs)
	w := Workers()
	if w <= 1 || n < minGrain {
		acc := identity
		for _, x := range xs {
			acc = combine(acc, f(x))
		}
		return acc
	}
	nchunks := w * 4
	chunk := (n + nchunks - 1) / nchunks
	if chunk < minGrain {
		chunk = minGrain
		nchunks = (n + chunk - 1) / chunk
	}
	partial := make([]R, nchunks)
	BlockedForWith(w, nchunks, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			a, b := c*chunk, (c+1)*chunk
			if b > n {
				b = n
			}
			acc := identity
			for _, x := range xs[a:b] {
				acc = combine(acc, f(x))
			}
			partial[c] = acc
		}
	})
	acc := identity
	for _, p := range partial {
		acc = combine(acc, p)
	}
	return acc
}

// Scan computes the exclusive prefix sums of xs in place and returns the
// total. After the call, xs[i] holds the sum of the original xs[0:i].
func Scan(xs []int) int {
	return ScanWith(Workers(), xs)
}

// ScanWith is Scan with an explicit worker count.
func ScanWith(workers int, xs []int) int {
	n := len(xs)
	if workers <= 1 || n < minGrain {
		sum := 0
		for i, x := range xs {
			xs[i] = sum
			sum += x
		}
		return sum
	}
	nchunks := workers * 4
	chunk := (n + nchunks - 1) / nchunks
	if chunk < minGrain {
		chunk = minGrain
		nchunks = (n + chunk - 1) / chunk
	}
	sums := make([]int, nchunks)
	BlockedForWith(workers, nchunks, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			a, b := c*chunk, (c+1)*chunk
			if b > n {
				b = n
			}
			s := 0
			for _, x := range xs[a:b] {
				s += x
			}
			sums[c] = s
		}
	})
	total := 0
	for c, s := range sums {
		sums[c] = total
		total += s
	}
	BlockedForWith(workers, nchunks, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			a, b := c*chunk, (c+1)*chunk
			if b > n {
				b = n
			}
			s := sums[c]
			for i := a; i < b; i++ {
				x := xs[i]
				xs[i] = s
				s += x
			}
		}
	})
	return total
}

// Filter returns the elements of xs for which keep is true, preserving
// order. The output is freshly allocated.
func Filter[T any](xs []T, keep func(T) bool) []T {
	n := len(xs)
	w := Workers()
	if w <= 1 || n < minGrain {
		out := make([]T, 0, n/2)
		for _, x := range xs {
			if keep(x) {
				out = append(out, x)
			}
		}
		return out
	}
	flags := make([]int, n)
	ForWith(w, n, func(i int) {
		if keep(xs[i]) {
			flags[i] = 1
		}
	})
	total := ScanWith(w, flags)
	out := make([]T, total)
	BlockedForWith(w, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var next int
			if i+1 < n {
				next = flags[i+1]
			} else {
				next = total
			}
			if next != flags[i] {
				out[flags[i]] = xs[i]
			}
		}
	})
	return out
}

// Map applies f to every element of xs in parallel and returns the results.
func Map[T, R any](xs []T, f func(T) R) []R {
	out := make([]R, len(xs))
	For(len(xs), func(i int) { out[i] = f(xs[i]) })
	return out
}

// Count returns the number of elements for which pred is true.
func Count[T any](xs []T, pred func(T) bool) int {
	return MapReduce(xs, 0, func(x T) int {
		if pred(x) {
			return 1
		}
		return 0
	}, func(a, b int) int { return a + b })
}
