package parallel

import (
	"math/rand"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
)

// withWorkers runs f with the global worker default forced to n, so the
// parallel code paths execute even on a single-core machine (where the
// default would be 1 and every primitive would take its sequential
// fallback).
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	old := Workers()
	SetWorkers(n)
	defer SetWorkers(old)
	f()
}

func TestForParallelPath(t *testing.T) {
	withWorkers(t, 4, func() {
		n := minGrain * 8
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("index %d visited %d times", i, c)
			}
		}
	})
}

func TestReduceParallelPath(t *testing.T) {
	withWorkers(t, 4, func() {
		xs := make([]int, minGrain*10)
		want := 0
		for i := range xs {
			xs[i] = i % 97
			want += xs[i]
		}
		if got := Reduce(xs, 0, func(a, b int) int { return a + b }); got != want {
			t.Fatalf("Reduce = %d, want %d", got, want)
		}
	})
}

func TestMapReduceParallelPath(t *testing.T) {
	withWorkers(t, 4, func() {
		xs := make([]int, minGrain*6)
		want := 0
		for i := range xs {
			xs[i] = i
			if i%2 == 0 {
				want++
			}
		}
		got := MapReduce(xs, 0, func(x int) int {
			if x%2 == 0 {
				return 1
			}
			return 0
		}, func(a, b int) int { return a + b })
		if got != want {
			t.Fatalf("MapReduce = %d, want %d", got, want)
		}
	})
}

func TestScanParallelPath(t *testing.T) {
	withWorkers(t, 4, func() {
		rng := rand.New(rand.NewSource(9))
		xs := make([]int, minGrain*9+37)
		for i := range xs {
			xs[i] = rng.Intn(50)
		}
		want, wantTotal := scanRef(xs)
		got := append([]int(nil), xs...)
		total := Scan(got)
		if total != wantTotal || !reflect.DeepEqual(got, want) {
			t.Fatal("parallel scan mismatch")
		}
	})
}

func TestFilterParallelPath(t *testing.T) {
	withWorkers(t, 4, func() {
		xs := make([]int, minGrain*7)
		for i := range xs {
			xs[i] = i
		}
		got := Filter(xs, func(x int) bool { return x%5 == 0 })
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatal("filter did not preserve order")
			}
		}
		if len(got) != (len(xs)+4)/5 {
			t.Fatalf("filter kept %d", len(got))
		}
	})
}

func TestMapAndCountParallelPath(t *testing.T) {
	withWorkers(t, 4, func() {
		xs := make([]int, minGrain*5)
		for i := range xs {
			xs[i] = i
		}
		ys := Map(xs, func(x int) int { return x * 2 })
		for i := range ys {
			if ys[i] != 2*i {
				t.Fatalf("Map[%d] = %d", i, ys[i])
			}
		}
		if got := Count(xs, func(x int) bool { return x < 100 }); got != 100 {
			t.Fatalf("Count = %d", got)
		}
	})
}

func TestSortParallelPath(t *testing.T) {
	withWorkers(t, 4, func() {
		rng := rand.New(rand.NewSource(10))
		xs := make([]int64, sortSeqCutoff*6+11)
		for i := range xs {
			xs[i] = rng.Int63n(1000)
		}
		want := append([]int64(nil), xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		SortInts(xs)
		if !reflect.DeepEqual(xs, want) {
			t.Fatal("parallel sort mismatch")
		}
	})
}

func TestHistogramParallelPath(t *testing.T) {
	withWorkers(t, 4, func() {
		keys := make([]int, minGrain*6)
		want := make([]int64, 7)
		for i := range keys {
			keys[i] = i % 9 // includes out-of-range 7, 8
			if keys[i] < 7 {
				want[keys[i]]++
			}
		}
		if got := Histogram(keys, 7); !reflect.DeepEqual(got, want) {
			t.Fatalf("histogram mismatch: %v vs %v", got, want)
		}
	})
}

func TestBlockedForSmallerThanWorkers(t *testing.T) {
	// More workers than blocks: the worker clamp path.
	withWorkers(t, 64, func() {
		var total atomic.Int64
		BlockedFor(minGrain+1, func(lo, hi int) { total.Add(int64(hi - lo)) })
		if total.Load() != int64(minGrain+1) {
			t.Fatalf("covered %d", total.Load())
		}
	})
}
