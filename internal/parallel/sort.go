package parallel

import (
	"sort"
	"sync"
)

// sortSeqCutoff is the size below which parallel sorting falls back to the
// standard library's sequential sort.
const sortSeqCutoff = 4096

// Sort sorts xs in place by less using a parallel stable merge sort.
func Sort[T any](xs []T, less func(a, b T) bool) {
	SortWith(Workers(), xs, less)
}

// SortWith is Sort with an explicit worker count.
func SortWith[T any](workers int, xs []T, less func(a, b T) bool) {
	if len(xs) < 2 {
		return
	}
	if workers <= 1 || len(xs) <= sortSeqCutoff {
		sort.SliceStable(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	buf := make([]T, len(xs))
	mergeSort(xs, buf, less, depthFor(workers))
}

// depthFor returns the fork depth that yields at least `workers` leaves.
func depthFor(workers int) int {
	d := 0
	for 1<<d < workers {
		d++
	}
	return d + 1 // oversplit 2x for balance
}

// mergeSort sorts xs using buf as scratch, forking until depth reaches 0.
func mergeSort[T any](xs, buf []T, less func(a, b T) bool, depth int) {
	if len(xs) <= sortSeqCutoff || depth == 0 {
		sort.SliceStable(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	mid := len(xs) / 2
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mergeSort(xs[:mid], buf[:mid], less, depth-1)
	}()
	mergeSort(xs[mid:], buf[mid:], less, depth-1)
	wg.Wait()
	merge(xs[:mid], xs[mid:], buf, less)
	copy(xs, buf)
}

// merge stably merges sorted a and b into out (len(out) == len(a)+len(b)).
func merge[T any](a, b, out []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}

// SortInts sorts a slice of int64 keys in parallel, ascending.
func SortInts(xs []int64) {
	Sort(xs, func(a, b int64) bool { return a < b })
}

// Histogram counts occurrences of each key in [0, buckets) across keys.
// Keys outside the range are ignored.
func Histogram(keys []int, buckets int) []int64 {
	w := Workers()
	if w <= 1 || len(keys) < minGrain {
		out := make([]int64, buckets)
		for _, k := range keys {
			if k >= 0 && k < buckets {
				out[k]++
			}
		}
		return out
	}
	nchunks := w
	chunk := (len(keys) + nchunks - 1) / nchunks
	partial := make([][]int64, nchunks)
	BlockedForWith(w, nchunks, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			a, b := c*chunk, (c+1)*chunk
			if b > len(keys) {
				b = len(keys)
			}
			h := make([]int64, buckets)
			for _, k := range keys[a:b] {
				if k >= 0 && k < buckets {
					h[k]++
				}
			}
			partial[c] = h
		}
	})
	out := make([]int64, buckets)
	ForWith(w, buckets, func(b int) {
		var s int64
		for _, h := range partial {
			s += h[b]
		}
		out[b] = s
	})
	return out
}

// MaxIndex returns the index of the maximum element (first occurrence) of
// xs under less, or -1 for an empty slice.
func MaxIndex[T any](xs []T, less func(a, b T) bool) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if less(xs[best], xs[i]) {
			best = i
		}
	}
	return best
}
