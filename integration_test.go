package kcore

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"kcore/internal/lds"
	"kcore/internal/trace"
)

// TestIntegrationTraceReplayMatchesDirect replays a synthesized workload
// through the trace machinery and through direct public-API calls and
// checks that both end in the same graph state with valid invariants.
func TestIntegrationTraceReplayMatchesDirect(t *testing.T) {
	tr, err := trace.Synthesize("tiny", 1200, 30, 0.25, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize + deserialize to also exercise the binary format.
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trace.Replay(tr2, lds.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	// Direct replay through the public API.
	d, err := New(tr.NumVertices)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range tr.Ops {
		es := make([]Edge, len(op.Edges))
		for i, e := range op.Edges {
			es[i] = Edge{U: e.U, V: e.V}
		}
		switch op.Kind {
		case trace.OpInsert:
			d.InsertEdges(es)
		case trace.OpDelete:
			d.DeleteEdges(es)
		case trace.OpRead:
			for _, v := range op.Vertices {
				d.Coreness(v)
			}
		}
	}
	if d.NumEdges() != res.FinalEdges {
		t.Fatalf("final edges: direct %d vs replay %d", d.NumEdges(), res.FinalEdges)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationEstimatesTrackExactUnderChurn drives the full stack —
// batched inserts and deletes with concurrent readers — and verifies at
// several quiescent checkpoints that every estimate is within the provable
// factor of the true coreness.
func TestIntegrationEstimatesTrackExactUnderChurn(t *testing.T) {
	const n = 600
	d, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	edges := clique(30)               // dense center
	edges = append(edges, ring(n)...) // sparse shell
	// Churn phases: insert all, delete center, re-insert center.
	phases := [][2]string{{"insert", "all"}, {"delete", "clique"}, {"insert", "clique"}}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d.Coreness(uint32(i % n))
			}
		}()
	}
	cliqueEdges := edges[:len(clique(30))]
	bound := d.ApproxFactor()*(1+0.2) + 1e-9
	for _, ph := range phases {
		switch {
		case ph[0] == "insert" && ph[1] == "all":
			d.InsertEdges(edges)
		case ph[0] == "delete":
			d.DeleteEdges(cliqueEdges)
		default:
			d.InsertEdges(cliqueEdges)
		}
		exact := d.ExactCoreness()
		for v := 0; v < n; v++ {
			if exact[v] == 0 {
				continue
			}
			est := d.Coreness(uint32(v))
			r := math.Max(est/float64(exact[v]), float64(exact[v])/math.Max(est, 1))
			if r > bound {
				t.Fatalf("phase %v: vertex %d estimate %.2f vs exact %d (ratio %.2f)",
					ph, v, est, exact[v], r)
			}
		}
		if err := d.Check(); err != nil {
			t.Fatalf("phase %v: %v", ph, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestIntegrationRemoveVertex checks vertex removal end to end.
func TestIntegrationRemoveVertex(t *testing.T) {
	d, _ := New(40)
	d.InsertEdges(clique(10))
	before := d.NumEdges()
	removed := d.RemoveVertex(3)
	if removed != 9 {
		t.Fatalf("removed %d edges, want 9", removed)
	}
	if d.NumEdges() != before-9 {
		t.Fatalf("edges after removal: %d", d.NumEdges())
	}
	if d.Degree(3) != 0 {
		t.Fatalf("vertex 3 degree %d after removal", d.Degree(3))
	}
	exact := d.ExactCoreness()
	if exact[3] != 0 {
		t.Fatalf("removed vertex coreness %d", exact[3])
	}
	// Remaining clique on 9 vertices: coreness 8.
	if exact[0] != 8 {
		t.Fatalf("remaining clique coreness %d, want 8", exact[0])
	}
	if d.RemoveVertex(999) != 0 {
		t.Fatal("out-of-range removal should be a no-op")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationAppsPipeline runs the application layer against a
// dynamically built graph and cross-validates the structural guarantees.
func TestIntegrationAppsPipeline(t *testing.T) {
	d, _ := New(400)
	d.InsertEdges(clique(25))
	d.InsertEdges(ring(400))

	exact := d.ExactCoreness()
	degen := int32(0)
	for _, c := range exact {
		if c > degen {
			degen = c
		}
	}
	if o := d.Orient(); int32(o.MaxOutDegree()) > degen {
		t.Fatalf("orientation out-degree %d > degeneracy %d", o.MaxOutDegree(), degen)
	}
	if _, colors := d.Color(); int32(colors) > degen+1 {
		t.Fatalf("coloring used %d colors, degeneracy+1 = %d", colors, degen+1)
	}
	ds := d.DensestSubgraph()
	if ds.Density < float64(degen)/2 {
		t.Fatalf("densest density %.2f < degeneracy/2", ds.Density)
	}
	m := d.MaximalMatching()
	if len(m) == 0 {
		t.Fatal("empty matching on a dense graph")
	}
}
