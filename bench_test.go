// bench_test.go contains one testing.B benchmark per table and figure of
// the paper's evaluation section. Each benchmark drives the same harness as
// cmd/kcore-bench on reduced configurations so that `go test -bench=.`
// regenerates every row/series shape in minutes; the full-scale sweep is
// `kcore-bench -exp all`.
package kcore

import (
	"io"
	"os"
	"testing"

	"kcore/internal/bench"
	"kcore/internal/lds"
	"kcore/internal/plds"
)

// benchCfg is the reduced configuration used by the testing.B entry points.
func benchCfg() bench.Config {
	return bench.Config{
		Dataset:    "tiny",
		Kind:       plds.Insert,
		BatchSize:  1500,
		Readers:    2,
		Writers:    2,
		BaseFrac:   0.5,
		MaxBatches: 2,
		Trials:     1,
		Seed:       1,
		Params:     lds.DefaultParams(),
	}
}

// out returns the sink for benchmark harness output: verbose runs print to
// stdout so the rows are visible, quiet runs discard.
func out(b *testing.B) io.Writer {
	if testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

// BenchmarkTable1 regenerates Table 1 (dataset sizes and largest k).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1([]string{"tiny", "dblp", "ctr"})
		if err != nil {
			b.Fatal(err)
		}
		bench.PrintTable1(out(b), rows)
	}
}

// BenchmarkFigure3ReadLatency regenerates Fig. 3: read latency (avg, P99,
// P99.99) for CPLDS vs SyncReads vs NonSync under insertion and deletion
// batches.
func BenchmarkFigure3ReadLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Figure3(out(b), []string{"tiny"}, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4BatchSizeSweep regenerates Fig. 4: read latency across
// insertion batch sizes on the yt and dblp profiles.
func BenchmarkFigure4BatchSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.MaxBatches = 1
		if err := bench.Figure4(out(b), []string{"tiny"}, []int{100, 500, 1500}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5UpdateTime regenerates Fig. 5: average and maximum batch
// update time per implementation.
func BenchmarkFigure5UpdateTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Figure5(out(b), []string{"tiny"}, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6ReadError regenerates Fig. 6: average and maximum read
// error versus exact coreness (theoretical max 2.8).
func BenchmarkFigure6ReadError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Dataset = "tiny"
		cfg.BatchSize = 1500
		if err := bench.Figure6(out(b), []string{"tiny"}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Scalability regenerates Fig. 7: reader and writer
// throughput across thread counts.
func BenchmarkFigure7Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.MaxBatches = 1
		if err := bench.Figure7(out(b), []string{"tiny"}, []int{1, 2}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorenessRead measures the latency of a single linearizable read
// on a loaded structure (the unit underlying Fig. 3's CPLDS series).
func BenchmarkCorenessRead(b *testing.B) {
	d, err := New(10000)
	if err != nil {
		b.Fatal(err)
	}
	edges := clique(120)
	d.InsertEdges(edges)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Coreness(uint32(i % 10000))
	}
}

// BenchmarkInsertEdgesBatch measures parallel batch insertion throughput
// through the public API.
func BenchmarkInsertEdgesBatch(b *testing.B) {
	edges := clique(200) // 19900 edges
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := New(200)
		d.InsertEdges(edges)
	}
}
