// Package kcore is a dynamic parallel k-core decomposition library with
// batched updates and asynchronous, linearizable reads.
//
// It is a Go implementation of the CPLDS (concurrent parallel level data
// structure) of Liu, Shun and Zablotchi, "Parallel k-Core Decomposition
// with Batched Updates and Asynchronous Reads" (PPoPP 2024): edge updates
// are applied in parallel batches, while coreness queries proceed
// concurrently — lock-free and linearizable — with latencies independent of
// batch duration, maintaining a (2+3/λ)(1+δ)-approximation of every
// vertex's coreness (2.8 with the default parameters).
//
// # Quick start
//
//	d, _ := kcore.New(1_000_000)
//	d.InsertEdges(edges)             // parallel batch update
//	go serveQueries(d)               // readers call d.Coreness(v) anytime
//	k := d.Coreness(42)              // lock-free, linearizable estimate
//
// Updates must be issued from one goroutine at a time; reads may be issued
// from any number of goroutines at any time, including concurrently with a
// running batch.
package kcore

import (
	"fmt"
	"sync/atomic"

	"kcore/internal/cplds"
	"kcore/internal/exact"
	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/parallel"
	"kcore/internal/shard"
)

// Edge is an undirected edge between two vertex ids in [0, NumVertices).
type Edge struct {
	U, V uint32
}

// Params are the approximation parameters of the underlying level
// structure. The approximation factor is (2+3/Lambda)(1+Delta).
type Params struct {
	Delta  float64 // group growth factor (default 0.2)
	Lambda float64 // degree-bound slack (default 9)
}

// DefaultParams returns the parameters used in the paper's evaluation
// (δ=0.2, λ=9; approximation factor 2.8).
func DefaultParams() Params {
	p := lds.DefaultParams()
	return Params{Delta: p.Delta, Lambda: p.Lambda}
}

type options struct {
	params  lds.Params
	workers int
	shards  int
}

// Option configures a Decomposition.
type Option func(*options)

// WithParams overrides the approximation parameters.
func WithParams(p Params) Option {
	return func(o *options) { o.params = lds.Params{Delta: p.Delta, Lambda: p.Lambda} }
}

// WithWorkers sets the number of goroutines used by batch updates
// (default: GOMAXPROCS). It adjusts the process-wide default used by the
// parallel runtime.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithShards partitions the vertices across p independent CPLDS shards
// fronted by a batch-coalescing scheduler (default 1: a single engine).
//
// With p > 1, InsertEdges, DeleteEdges and ApplyBatch become safe for
// concurrent callers — submissions queued behind an in-flight batch are
// coalesced into per-shard sub-batches and applied to the shards in
// parallel. Coreness reads stay lock-free and route directly to the
// vertex's owning shard. The estimate returned for v is then the
// (2+ε)-approximate coreness of v in its owning shard's subgraph (all
// edges incident to the shard's vertices). Because that subgraph's exact
// coreness never exceeds the global one, the estimate still respects the
// upper side of the approximation bound against v's global coreness, but
// it may undershoot the global value by more than the factor; run with
// p = 1 when the full global guarantee is required.
func WithShards(p int) Option {
	return func(o *options) { o.shards = p }
}

// Decomposition maintains an approximate k-core decomposition of a dynamic
// undirected graph.
//
// Concurrency: without sharding (the default), InsertEdges and DeleteEdges
// must be called by a single updater goroutine at a time (each call is
// internally parallel). With WithShards(p > 1), the edge-batch update
// methods (InsertEdges, DeleteEdges, ApplyBatch — not RemoveVertex) are
// safe for concurrent callers and are coalesced by the sharded engine.
// Coreness,
// CorenessNonLinearizable and CorenessBlocking may be called from any
// goroutine at any time in either mode.
type Decomposition struct {
	c  *cplds.CPLDS // single-engine mode (nil when sharded)
	sh *shard.Engine

	// Cumulative applied-edge counters for single-engine mode, so
	// ShardStats reports the same metrics in both modes (the sharded
	// engine tracks its own per-shard counters).
	ins, del atomic.Int64
}

// New creates an empty decomposition over n vertices.
func New(n int, opts ...Option) (*Decomposition, error) {
	o := options{params: lds.DefaultParams(), shards: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.params.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("kcore: negative vertex count %d", n)
	}
	if o.workers > 0 {
		parallel.SetWorkers(o.workers)
	}
	if o.shards > 1 {
		return &Decomposition{sh: shard.New(n, o.shards, o.params)}, nil
	}
	return &Decomposition{c: cplds.New(n, o.params)}, nil
}

// Shards returns the number of shards (1 unless WithShards was used).
func (d *Decomposition) Shards() int {
	if d.sh != nil {
		return d.sh.NumShards()
	}
	return 1
}

// ShardLoad is a point-in-time load snapshot of one shard: the
// observability surface for spotting hot shards and (eventually) driving
// vertex migration between them.
type ShardLoad struct {
	Shard         int    // shard index
	OwnedVertices int    // vertices hashed to this shard
	PrimaryEdges  int64  // distinct global edges it owns
	LocalEdges    int64  // edges in its local subgraph (incl. mirrored cut edges)
	Batches       uint64 // coalesced update batches applied
	Inserted      int64  // cumulative edges applied locally
	Deleted       int64
}

// ShardStats returns per-shard load statistics. With sharding it is safe to
// call concurrently with updates and reads; without sharding the single
// entry reflects the whole engine and must not race an update batch (the
// edge count is not synchronized in that mode).
func (d *Decomposition) ShardStats() []ShardLoad {
	if d.sh == nil {
		return []ShardLoad{{
			Shard:         0,
			OwnedVertices: d.c.NumVertices(),
			PrimaryEdges:  d.c.Graph().NumEdges(),
			LocalEdges:    d.c.Graph().NumEdges(),
			Batches:       d.c.BatchNumber(),
			Inserted:      d.ins.Load(),
			Deleted:       d.del.Load(),
		}}
	}
	stats := d.sh.Stats()
	out := make([]ShardLoad, len(stats))
	for i, s := range stats {
		out[i] = ShardLoad{
			Shard:         s.Shard,
			OwnedVertices: s.OwnedVertices,
			PrimaryEdges:  s.PrimaryEdges,
			LocalEdges:    s.LocalEdges,
			Batches:       s.Batches,
			Inserted:      s.Inserted,
			Deleted:       s.Deleted,
		}
	}
	return out
}

// NumVertices returns the (fixed) number of vertices.
func (d *Decomposition) NumVertices() int {
	if d.sh != nil {
		return d.sh.NumVertices()
	}
	return d.c.NumVertices()
}

// NumEdges returns the number of edges currently in the graph. Without
// sharding it must not be called concurrently with an update batch; with
// sharding it is safe at any time.
func (d *Decomposition) NumEdges() int64 {
	if d.sh != nil {
		return d.sh.NumEdges()
	}
	return d.c.Graph().NumEdges()
}

// ApproxFactor returns the theoretical approximation factor of coreness
// estimates (per shard, when sharded).
func (d *Decomposition) ApproxFactor() float64 {
	if d.sh != nil {
		return d.sh.ApproxFactor()
	}
	return d.c.S.ApproxFactor()
}

// BatchNumber returns the number of update batches processed so far
// (summed across shards, when sharded).
func (d *Decomposition) BatchNumber() uint64 {
	if d.sh != nil {
		return d.sh.Batches()
	}
	return d.c.BatchNumber()
}

// toInternal converts public edges to the internal representation.
func toInternal(edges []Edge) []graph.Edge {
	out := make([]graph.Edge, len(edges))
	for i, e := range edges {
		out[i] = graph.Edge{U: e.U, V: e.V}
	}
	return out
}

// InsertEdges applies a batch of edge insertions in parallel and returns
// the number of edges actually added (self-loops, duplicates within the
// batch, already-present edges and out-of-range endpoints are ignored).
// Concurrent Coreness reads remain linearizable throughout the batch.
func (d *Decomposition) InsertEdges(edges []Edge) int {
	if d.sh != nil {
		return d.sh.Insert(toInternal(edges))
	}
	applied := d.c.InsertBatch(toInternal(edges))
	d.ins.Add(int64(applied))
	return applied
}

// DeleteEdges applies a batch of edge deletions in parallel and returns the
// number of edges actually removed. Concurrent Coreness reads remain
// linearizable throughout the batch.
func (d *Decomposition) DeleteEdges(edges []Edge) int {
	if d.sh != nil {
		return d.sh.Delete(toInternal(edges))
	}
	applied := d.c.DeleteBatch(toInternal(edges))
	d.del.Add(int64(applied))
	return applied
}

// ApplyBatch applies a mixed batch of insertions and deletions. Following
// the paper's model, the mix is processed as an insertion sub-batch
// followed by a deletion sub-batch ("batches contain a mix of insertions
// and deletions, which are separated into insertion and deletion
// sub-batches during pre-processing", §2). It returns the number of edges
// inserted and deleted. Concurrent reads remain linearizable; each
// sub-batch is its own atomicity unit (per shard, when sharded).
func (d *Decomposition) ApplyBatch(insertions, deletions []Edge) (inserted, deleted int) {
	if d.sh != nil {
		return d.sh.Apply(toInternal(insertions), toInternal(deletions))
	}
	if len(insertions) > 0 {
		inserted = d.InsertEdges(insertions)
	}
	if len(deletions) > 0 {
		deleted = d.DeleteEdges(deletions)
	}
	return inserted, deleted
}

// RemoveVertex deletes all edges incident to v as one batch, effectively
// removing v from the graph (vertex ids are never recycled). This is the
// vertex-deletion operation the paper notes batch-dynamic structures
// support via edge updates (footnote 1). It returns the number of edges
// removed. It must not run concurrently with any other update call — even
// in sharded mode, where the edge-batch operations accept concurrent
// callers — because the incident-edge snapshot and the deletion batch are
// two steps; concurrent reads stay linearizable throughout.
func (d *Decomposition) RemoveVertex(v uint32) int {
	if int(v) >= d.NumVertices() {
		return 0
	}
	if d.sh != nil {
		return d.sh.Delete(d.sh.IncidentEdges(v))
	}
	var incident []graph.Edge
	d.c.Graph().Neighbors(v, func(w uint32) bool {
		incident = append(incident, graph.Edge{U: v, V: w})
		return true
	})
	removed := d.c.DeleteBatch(incident)
	d.del.Add(int64(removed))
	return removed
}

// Coreness returns a linearizable (2+ε)-approximate coreness estimate for
// v. It is lock-free and safe to call concurrently with update batches:
// the returned value always corresponds to the state at a batch boundary,
// never to an intermediate state mid-batch.
func (d *Decomposition) Coreness(v uint32) float64 {
	if d.sh != nil {
		return d.sh.Read(v)
	}
	return d.c.Read(v)
}

// CorenessNonLinearizable returns the estimate computed from v's
// instantaneous level. It is faster than Coreness but, when called during
// a batch, may reflect an intermediate state whose error is unbounded
// (the paper's NonSync baseline). Use only when linearizability does not
// matter.
func (d *Decomposition) CorenessNonLinearizable(v uint32) float64 {
	if d.sh != nil {
		return d.sh.ReadNonSync(v)
	}
	return d.c.ReadNonSync(v)
}

// CorenessBlocking waits for any in-flight batch to complete before
// reading (the paper's SyncReads baseline). Its latency is bounded below
// by the remaining batch time.
func (d *Decomposition) CorenessBlocking(v uint32) float64 {
	if d.sh != nil {
		return d.sh.ReadSync(v)
	}
	return d.c.ReadSync(v)
}

// Degree returns v's current degree. It must not be called concurrently
// with an update batch.
func (d *Decomposition) Degree(v uint32) int {
	if d.sh != nil {
		return d.sh.Degree(v)
	}
	return d.c.Graph().Degree(uint32(v))
}

// ExactCoreness computes the exact coreness of every vertex by static
// parallel peeling of the current graph. It is a quiescent operation: it
// must not be called concurrently with an update batch. Use it to measure
// the approximation quality of estimates, or when exact values are needed
// occasionally.
func (d *Decomposition) ExactCoreness() []int32 {
	if d.sh != nil {
		return d.sh.ExactCoreness()
	}
	return exact.Parallel(d.c.Graph().Snapshot())
}

// Check verifies the internal level-structure invariants (of every shard,
// when sharded, plus the cross-shard mirroring invariants). It is a
// quiescent operation intended for tests and debugging; it returns nil on
// a healthy structure.
func (d *Decomposition) Check() error {
	if d.sh != nil {
		return d.sh.CheckInvariants()
	}
	return d.c.CheckInvariants()
}

// Static computes the exact k-core decomposition (coreness of every
// vertex) of a static edge list on n vertices using parallel bucket
// peeling. It is the convenience entry point when no dynamic updates are
// needed.
func Static(n int, edges []Edge) []int32 {
	return exact.Parallel(graph.CSRFromEdges(n, toInternal(edges)))
}
