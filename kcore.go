// Package kcore is a dynamic parallel k-core decomposition library with
// batched updates and asynchronous, linearizable reads.
//
// It is a Go implementation of the CPLDS (concurrent parallel level data
// structure) of Liu, Shun and Zablotchi, "Parallel k-Core Decomposition
// with Batched Updates and Asynchronous Reads" (PPoPP 2024): edge updates
// are applied in parallel batches, while coreness queries proceed
// concurrently — lock-free and linearizable — with latencies independent of
// batch duration, maintaining a (2+3/λ)(1+δ)-approximation of every
// vertex's coreness (2.8 with the default parameters).
//
// # Quick start
//
//	d, _ := kcore.New(1_000_000)
//	d.InsertEdges(edges)              // parallel batch update
//	k := d.Coreness(42)               // lock-free, linearizable estimate
//
//	v := d.View()                     // epoch-pinned read handle (cheap)
//	ks := v.CorenessMany(ids)         // many vertices, one consistent cut
//	top := v.TopK(10)                 // ranking over the same kind of cut
//	fmt.Println(v.Epoch())            // the batch boundary that was served
//
//	v.Pin()                           // hold the boundary across commits
//	defer v.Release()                 //   (multi-version retained read)
//	old, _ := d.ViewAt(v.Epoch() - 2) // or fix a view at a retired epoch
//
// Single-vertex reads (Coreness) are linearizable on their own. Anything
// that combines several vertices — rankings, bulk lookups, histograms —
// should go through a View: each View read is served from one committed
// batch boundary (an epoch) instead of a torn mix of batches, and reports
// which epoch it saw. See View for the protocol.
//
// Epochs stay readable after later batches commit: the engine retains the
// WithRetainedEpochs most recent epochs' deltas (8 by default), a pinned
// View's epoch is held for as long as the pin, and reads of epochs that
// aged out fail with errors matching ErrEpochEvicted.
//
// Updates must be issued from one goroutine at a time (any number of
// concurrent updaters with WithShards); reads may be issued from any number
// of goroutines at any time, including concurrently with a running batch.
package kcore

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"kcore/internal/exact"
	"kcore/internal/faultfs"
	"kcore/internal/feed"
	"kcore/internal/graph"
	"kcore/internal/lds"
	"kcore/internal/mvcc"
	"kcore/internal/parallel"
	"kcore/internal/replica"
	"kcore/internal/shard"
	"kcore/internal/wal"
)

// DefaultRetainedEpochs is the default multi-version retention depth: how
// many retired epochs stay exactly readable (ViewAt, pinned Views) behind
// the newest committed one. Override with WithRetainedEpochs.
const DefaultRetainedEpochs = mvcc.DefaultRetain

// ErrEpochEvicted is matched (via errors.Is) by every error reporting a
// read or pin of an epoch that was retired beyond the retention window —
// including all retained reads when retention is disabled
// (WithRetainedEpochs(0)). The concrete error also carries the oldest
// still-readable epoch.
var ErrEpochEvicted = mvcc.ErrEvicted

// ErrFutureEpoch is matched (via errors.Is) by every error reporting a
// read or pin of an epoch that has not committed yet.
var ErrFutureEpoch = mvcc.ErrFuture

// Edge is an undirected edge between two vertex ids in [0, NumVertices).
type Edge struct {
	U, V uint32
}

// Params are the approximation parameters of the underlying level
// structure. The approximation factor is (2+3/Lambda)(1+Delta).
type Params struct {
	Delta  float64 // group growth factor (default 0.2)
	Lambda float64 // degree-bound slack (default 9)
}

// DefaultParams returns the parameters used in the paper's evaluation
// (δ=0.2, λ=9; approximation factor 2.8).
func DefaultParams() Params {
	p := lds.DefaultParams()
	return Params{Delta: p.Delta, Lambda: p.Lambda}
}

type options struct {
	params      lds.Params
	workers     int
	shards      int
	retained    int
	walDir      string
	walOpts     WALOptions
	replListen  string
	replSource  string
	replOpts    ReplicationOptions
	feedMaxSubs int
	feedBuffer  int
}

// Option configures a Decomposition.
type Option func(*options)

// WithParams overrides the approximation parameters.
func WithParams(p Params) Option {
	return func(o *options) { o.params = lds.Params{Delta: p.Delta, Lambda: p.Lambda} }
}

// WithWorkers sets the number of goroutines used by batch updates
// (default: GOMAXPROCS). It adjusts the process-wide default used by the
// parallel runtime. n = 0 keeps the default; negative n is rejected by New.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithShards partitions the vertices across p independent CPLDS shards
// fronted by a batch-coalescing scheduler. WithShards(1) is exactly the
// default single-engine configuration (as is WithShards(0)); negative p is
// rejected by New.
//
// With p > 1, InsertEdges, DeleteEdges and ApplyBatch become safe for
// concurrent callers — submissions queued behind an in-flight batch are
// coalesced into per-shard sub-batches and applied to the shards in
// parallel. Coreness reads stay lock-free and route directly to the
// vertex's owning shard. The estimate returned for v is then the
// (2+ε)-approximate coreness of v in its owning shard's subgraph (all
// edges incident to the shard's vertices). Because that subgraph's exact
// coreness never exceeds the global one, the estimate still respects the
// upper side of the approximation bound against v's global coreness, but
// it may undershoot the global value by more than the factor; run with
// p = 1 when the full global guarantee is required.
func WithShards(p int) Option {
	return func(o *options) { o.shards = p }
}

// WithRetainedEpochs sets the multi-version retention depth: the n most
// recent retired epochs stay exactly readable — Decomposition.ViewAt and
// pinned Views keep serving them byte-identically — even after later
// batches commit. Pinning an epoch (View.Pin) extends its retention past
// the window for as long as the pin is held.
//
// Each retained epoch costs one delta per engine instance: the (vertex,
// pre-batch level) undo records of that epoch's batch, captured at commit
// from state the update already maintains (the batch's marked set and
// descriptor pool), so the update hot path is unchanged. n = 0 disables
// retention entirely — only the current epoch is servable and View.Pin
// fails — which is the pre-multi-version behavior; negative n is rejected
// by New. The default is DefaultRetainedEpochs.
func WithRetainedEpochs(n int) Option {
	return func(o *options) { o.retained = n }
}

// SyncPolicy selects when write-ahead-log appends are fsynced; see the
// WithWAL option.
type SyncPolicy int

const (
	// SyncNone leaves flushing to the OS: appended batches survive a
	// process crash but a machine crash can lose the page-cache tail.
	// This is the default and the fastest policy.
	SyncNone SyncPolicy = iota
	// SyncInterval fsyncs at most once per WALOptions.SyncEvery,
	// bounding machine-crash loss to that window.
	SyncInterval
	// SyncAlways fsyncs every batch before the update call returns:
	// full durability, at the cost of one fsync per batch.
	SyncAlways
)

// WALOptions tune the write-ahead log enabled by WithWAL. The zero value
// is valid: no fsync on the append path, 64 MiB segments, manual
// snapshots only.
type WALOptions struct {
	// Sync is the fsync policy for log appends (default SyncNone).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the log file once it crosses this size
	// (default 64 MiB).
	SegmentBytes int64
	// SnapshotEvery takes an automatic snapshot (asynchronously, off the
	// update path) after this many logged batches; 0 means snapshots are
	// taken only via Decomposition.Snapshot.
	SnapshotEvery uint64
	// AppendRetries bounds the in-place retries of a failed log append or
	// fsync before the log degrades (default 2; negative disables
	// retries). Each retry rolls the segment back to the record boundary
	// and rewrites the whole frame.
	AppendRetries int
	// RetryBackoff is the initial pause between append retries, doubling
	// per attempt and capped at 100ms (default 0: retry immediately).
	RetryBackoff time.Duration
	// ReattachEvery is the period of the background re-attach loop while
	// the log is degraded: each tick attempts a fresh snapshot + empty log
	// to restore durability (default 5s; negative disables the loop —
	// re-attach then happens only via Decomposition.Reattach or Snapshot).
	ReattachEvery time.Duration
	// FS overrides the filesystem all WAL I/O goes through. Intended for
	// fault-injection tests (see internal/faultfs); nil means the real OS.
	FS faultfs.FS
}

// WithWAL makes the decomposition durable: every applied update batch is
// appended to a write-ahead log in dir, periodic snapshots bound the log's
// replay tail, and New recovers the pre-crash state from dir (newest valid
// snapshot + log tail, truncating a torn tail record) before returning.
// The directory is bound to the engine shape — vertex count and shard
// count must match across restarts.
//
// Call Decomposition.Close on shutdown to flush and release the log, and
// Decomposition.Snapshot to checkpoint manually. See WALOptions for the
// durability/throughput trade-offs.
func WithWAL(dir string, o WALOptions) Option {
	return func(opts *options) {
		opts.walDir = dir
		opts.walOpts = o
	}
}

// ReplicationOptions tune the replication transport enabled by
// WithReplicationListen (primary side) and WithReplicationSource (follower
// side). The zero value is valid and uses the defaults noted per field.
type ReplicationOptions struct {
	// Heartbeat is how often an idle primary stream sends its commit
	// vector (default 500ms). It bounds partition detection: followers
	// tear down a stream silent for StreamTimeout.
	Heartbeat time.Duration
	// TailBuffer is the per-follower live-tail buffer in batches (default
	// 4096). A follower that falls further behind is disconnected; it
	// reconnects and resumes from its applied vector (or re-bootstraps
	// once the retained ring has evicted past it).
	TailBuffer int
	// RetainBatches sizes the primary's retained-batch ring serving
	// resume: a follower disconnected for fewer committed batches than
	// this reconnects without a snapshot transfer, receiving only the
	// records it missed. 0 means the default (1024); negative disables
	// retention, restoring re-bootstrap-on-every-reconnect.
	RetainBatches int
	// DialTimeout bounds each follower connection attempt (default 5s).
	DialTimeout time.Duration
	// StreamTimeout is the follower's silent-stream watchdog (default 10s;
	// must comfortably exceed the primary's Heartbeat).
	StreamTimeout time.Duration
	// BackoffMin/BackoffMax bound the follower's reconnect backoff
	// (defaults 100ms and 5s; doubling per consecutive failure).
	BackoffMin, BackoffMax time.Duration
	// InitialSync is how long New waits for the follower's first bootstrap
	// before failing (default 30s; negative = return immediately and sync
	// in the background).
	InitialSync time.Duration
}

// WithReplicationListen makes the decomposition a replication primary: it
// serves the batch-log shipping stream on addr (host:port; ":0" picks a
// free port, see ReplicationAddr). Each connecting follower receives a
// consistent bootstrap of every shard followed by the live committed-batch
// stream, and converges to byte-identical coreness state. Composes with
// WithWAL (the log's record stream is teed) and works without it. Call
// Decomposition.Close to stop serving.
func WithReplicationListen(addr string) Option {
	return func(o *options) { o.replListen = addr }
}

// WithReplicationSource makes the decomposition a read-only follower of
// the replication primary at addr (host:port or http:// URL, as served by
// WithReplicationListen). New blocks until the first bootstrap has been
// applied (see ReplicationOptions.InitialSync), so a successful return
// means the engine already holds a recent primary state; the follower
// then keeps applying the primary's batch stream — reconnecting with
// backoff after partitions, resuming from its applied commit vector when
// the primary still retains the missed batches (RetainBatches) and
// re-bootstrapping otherwise — until Close.
//
// The follower runs the full read stack (Coreness, Views, pinned and
// retained reads); its epochs advance exactly as the primary's did, so an
// epoch observed on the primary can be awaited here (Epoch catches up).
// The mutating methods (InsertEdges, DeleteEdges, ApplyBatch,
// RemoveVertex) become no-ops returning 0 — local writes would fork the
// replica — and ReadOnly reports true. Combining with WithWAL is rejected
// by New: durability belongs to the primary; a follower restart simply
// re-bootstraps. The vertex count and shard count must match the
// primary's.
func WithReplicationSource(addr string) Option {
	return func(o *options) { o.replSource = addr }
}

// WithReplicationOptions overrides the replication transport tuning for
// either role (see ReplicationOptions).
func WithReplicationOptions(ro ReplicationOptions) Option {
	return func(o *options) { o.replOpts = ro }
}

// WithMaxSubscribers caps the number of concurrent change-feed
// subscriptions (Subscribe fails with ErrTooManySubscribers beyond it).
// 0, the default, means unlimited; negative n is rejected by New.
func WithMaxSubscribers(n int) Option {
	return func(o *options) { o.feedMaxSubs = n }
}

// WithEventBuffer sets the default per-subscription delivery buffer, in
// per-epoch deliveries (default feed.DefaultBuffer = 64). A subscriber
// that falls more than the buffer behind starts receiving gap markers
// instead of events (see Subscribe). 0 keeps the default; negative n is
// rejected by New.
func WithEventBuffer(n int) Option {
	return func(o *options) { o.feedBuffer = n }
}

// Decomposition maintains an approximate k-core decomposition of a dynamic
// undirected graph. All methods dispatch through one internal engine
// interface with two implementations: the single-CPLDS backend (default)
// and the sharded backend (WithShards); there is no per-method branching on
// the mode.
//
// Concurrency: without sharding (the default), InsertEdges and DeleteEdges
// must be called by a single updater goroutine at a time (each call is
// internally parallel). With WithShards(p > 1), the edge-batch update
// methods (InsertEdges, DeleteEdges, ApplyBatch — not RemoveVertex) are
// safe for concurrent callers and are coalesced by the sharded engine.
// Coreness, CorenessNonLinearizable, CorenessBlocking, View and all View
// reads may be called from any goroutine at any time in either mode.
type Decomposition struct {
	eng engine
	wal *wal.Manager // nil without WithWAL

	// Change feed: always constructed (an idle hub costs one atomic load
	// per commit), so Subscribe works in every configuration — including
	// on a follower, whose feed is driven by the replicated batch stream.
	hub        *feed.Hub
	feedBuffer int

	// Replication (nil fields when the role is off). A primary serves the
	// feeder on its own listener; a follower runs one stream goroutine.
	feeder    *replica.Feeder
	feederSrv *http.Server
	feederLn  net.Listener
	tailSrc   *wal.TailSource // batch tee when feeding without a WAL
	follower  *replica.Follower

	closeOnce sync.Once
	closeErr  error
}

// New creates an empty decomposition over n vertices. It returns an error
// for a negative vertex count, invalid approximation parameters, or
// negative WithShards/WithWorkers values.
func New(n int, opts ...Option) (*Decomposition, error) {
	o := options{params: lds.DefaultParams(), shards: 1, retained: DefaultRetainedEpochs}
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.params.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("kcore: negative vertex count %d", n)
	}
	if o.shards < 0 {
		return nil, fmt.Errorf("kcore: negative shard count %d", o.shards)
	}
	if o.workers < 0 {
		return nil, fmt.Errorf("kcore: negative worker count %d", o.workers)
	}
	if o.retained < 0 {
		return nil, fmt.Errorf("kcore: negative retained-epoch count %d", o.retained)
	}
	if o.feedMaxSubs < 0 {
		return nil, fmt.Errorf("kcore: negative subscriber cap %d", o.feedMaxSubs)
	}
	if o.feedBuffer < 0 {
		return nil, fmt.Errorf("kcore: negative event buffer %d", o.feedBuffer)
	}
	if o.replListen != "" && o.replSource != "" {
		return nil, fmt.Errorf("kcore: WithReplicationListen and WithReplicationSource are mutually exclusive")
	}
	if o.replSource != "" && o.walDir != "" {
		return nil, fmt.Errorf("kcore: WithWAL on a replication follower is unsupported (durability belongs to the primary; a follower restart re-bootstraps)")
	}
	if o.workers > 0 {
		parallel.SetWorkers(o.workers)
	}
	var eng engine
	if o.shards > 1 {
		eng = shard.New(n, o.shards, o.params)
	} else {
		eng = newSingleEngine(n, o.params)
	}
	d := &Decomposition{eng: eng}
	if o.walDir != "" {
		// Recovery must precede retention setup: the multi-version logs
		// initialize from the recovered per-shard epochs.
		m, err := wal.Open(o.walDir, eng.(wal.Engine), wal.Options{
			Sync:          wal.SyncPolicy(o.walOpts.Sync),
			SyncEvery:     o.walOpts.SyncEvery,
			SegmentBytes:  o.walOpts.SegmentBytes,
			SnapshotEvery: o.walOpts.SnapshotEvery,
			AppendRetries: o.walOpts.AppendRetries,
			RetryBackoff:  o.walOpts.RetryBackoff,
			ReattachEvery: o.walOpts.ReattachEvery,
			FS:            o.walOpts.FS,
		})
		if err != nil {
			return nil, fmt.Errorf("kcore: opening WAL: %w", err)
		}
		d.wal = m
	}
	eng.SetRetainedEpochs(o.retained)
	// Attach the change feed before the engine serves traffic. On a
	// follower the feed fires as replicated batches apply, so subscribers
	// see the primary's coreness churn.
	d.hub = feed.NewHub(o.feedMaxSubs)
	d.feedBuffer = o.feedBuffer
	eng.SetEventHub(d.hub)
	if o.replListen != "" {
		// Feed followers from the WAL manager's record stream when there is
		// one (the same stream the disk sees), else tee the engine's batch
		// log directly.
		var src wal.Source
		if d.wal != nil {
			src = d.wal
		} else {
			d.tailSrc = wal.NewTailSource(eng.(wal.Engine))
			src = d.tailSrc
		}
		d.feeder = replica.NewFeeder(src, replica.FeederOptions{
			Heartbeat:     o.replOpts.Heartbeat,
			Buffer:        o.replOpts.TailBuffer,
			RetainBatches: o.replOpts.RetainBatches,
		})
		ln, err := net.Listen("tcp", o.replListen)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("kcore: replication listener: %w", err)
		}
		d.feederLn = ln
		d.feederSrv = &http.Server{Handler: d.feeder.Handler()}
		go d.feederSrv.Serve(ln)
	}
	if o.replSource != "" {
		fol, err := replica.StartFollower(eng.(replica.Engine), o.replSource, replica.FollowerOptions{
			DialTimeout:   o.replOpts.DialTimeout,
			StreamTimeout: o.replOpts.StreamTimeout,
			BackoffMin:    o.replOpts.BackoffMin,
			BackoffMax:    o.replOpts.BackoffMax,
			InitialSync:   o.replOpts.InitialSync,
		})
		if err != nil {
			return nil, fmt.Errorf("kcore: %w", err)
		}
		d.follower = fol
	}
	return d, nil
}

// Snapshot writes a durability snapshot: it briefly quiesces updates to
// capture the committed state, persists it (temp file + fsync + rename)
// and truncates the write-ahead log's replay tail. It requires WithWAL.
// Safe to call concurrently with updates and reads.
func (d *Decomposition) Snapshot() error {
	if d.wal == nil {
		return fmt.Errorf("kcore: Snapshot requires WithWAL")
	}
	return d.wal.Snapshot()
}

// Reattach attempts to restore durability while the write-ahead log is
// degraded (see DurabilityStats.Degraded): it snapshots the current state
// and starts a fresh, empty log, so batches applied only in memory during
// the outage become durable again. A no-op when the log is healthy; it
// requires WithWAL. Safe to call concurrently with updates and reads, and
// called automatically by the background re-attach loop
// (WALOptions.ReattachEvery).
func (d *Decomposition) Reattach() error {
	if d.wal == nil {
		return fmt.Errorf("kcore: Reattach requires WithWAL")
	}
	return d.wal.Reattach()
}

// Close shuts down the decomposition's services: it stops replicating
// (disconnecting followers when primary, detaching from the primary when
// follower) and flushes and closes the write-ahead log. The decomposition
// remains readable afterwards — a closed follower keeps serving its last
// applied state — but further updates are no longer logged or shipped.
// Close is idempotent — every call returns the first call's result — and
// safe to call concurrently with Snapshot and in-flight update batches.
func (d *Decomposition) Close() error {
	d.closeOnce.Do(func() {
		if d.follower != nil {
			d.follower.Close()
		}
		if d.feederSrv != nil {
			d.feederSrv.Close() // also closes feederLn
		}
		if d.tailSrc != nil {
			d.tailSrc.Close()
		}
		if d.wal != nil {
			d.closeErr = d.wal.Close()
		}
		if d.hub != nil {
			d.hub.Close()
		}
	})
	return d.closeErr
}

// ReadOnly reports whether this decomposition is a replication follower
// (WithReplicationSource): its state advances only by applying the
// primary's batch stream, and the local mutating methods are no-ops.
func (d *Decomposition) ReadOnly() bool { return d.follower != nil }

// ReplicationAddr returns the bound address of the replication listener
// (WithReplicationListen; useful with ":0"), or "" when not a primary.
func (d *Decomposition) ReplicationAddr() string {
	if d.feederLn == nil {
		return ""
	}
	return d.feederLn.Addr().String()
}

// ReplicationStats is a point-in-time snapshot of the replication role.
// Exactly one side's fields are populated, per Role.
type ReplicationStats struct {
	Role string // "primary" or "follower"

	// Primary (feeder) side.
	ListenAddr       string // bound replication listener address
	Followers        int    // currently connected followers
	Connects         uint64 // follower connections accepted since start
	FeederBootstraps uint64 // bootstraps served
	FeederResumes    uint64 // reconnects served from the retained ring (no snapshot)
	ResumeRejects    uint64 // resume cursors outside retention, told to re-bootstrap
	RecordsShipped   uint64
	BytesShipped     uint64
	Overruns         uint64 // followers dropped for falling behind the tail buffer
	Paused           bool   // fault-drill pause hook engaged

	// Follower side.
	Primary               string // normalized primary base URL
	Connected             bool   // stream currently established
	Synced                bool   // bootstrapped on the current connection
	PrimaryEpoch          uint64 // newest epoch the primary announced
	LagEpochs             uint64 // PrimaryEpoch - local Epoch (0 when caught up)
	BytesReceived         uint64
	BytesApplied          uint64
	LagBytes              uint64 // received but not yet applied
	RecordsApplied        uint64
	Bootstraps            uint64 // bootstraps applied (>1 means re-bootstraps)
	Resumes               uint64 // reconnects resumed from the applied vector (no snapshot)
	Reconnects            uint64
	LastRecordUnixNano    int64
	LastHeartbeatUnixNano int64
	Err                   string // last connection error ("" when healthy)
}

// ReplicationStats reports the replication state; ok is false when neither
// WithReplicationListen nor WithReplicationSource is configured. Safe to
// call at any time.
func (d *Decomposition) ReplicationStats() (stats ReplicationStats, ok bool) {
	switch {
	case d.feeder != nil:
		s := d.feeder.Stats()
		return ReplicationStats{
			Role:             "primary",
			ListenAddr:       d.ReplicationAddr(),
			Followers:        s.Followers,
			Connects:         s.Connects,
			FeederBootstraps: s.Bootstraps,
			FeederResumes:    s.Resumes,
			ResumeRejects:    s.ResumeRejects,
			RecordsShipped:   s.RecordsShipped,
			BytesShipped:     s.BytesShipped,
			Overruns:         s.Overruns,
			Paused:           s.Paused,
		}, true
	case d.follower != nil:
		s := d.follower.Stats()
		return ReplicationStats{
			Role:                  "follower",
			Primary:               s.Primary,
			Connected:             s.Connected,
			Synced:                s.Synced,
			PrimaryEpoch:          s.PrimaryEpoch,
			LagEpochs:             s.LagEpochs,
			BytesReceived:         s.BytesReceived,
			BytesApplied:          s.BytesApplied,
			LagBytes:              s.LagBytes,
			RecordsApplied:        s.RecordsApplied,
			Bootstraps:            s.Bootstraps,
			Resumes:               s.Resumes,
			Reconnects:            s.Reconnects,
			LastRecordUnixNano:    s.LastRecordUnixNano,
			LastHeartbeatUnixNano: s.LastHeartbeatUnixNano,
			Err:                   s.Err,
		}, true
	}
	return ReplicationStats{}, false
}

// DurabilityStats is a point-in-time snapshot of the write-ahead log:
// sizes, logged/recovered batch counts and the last snapshot/fsync marks.
type DurabilityStats struct {
	Dir                  string // log directory
	Sync                 string // fsync policy ("none", "interval", "always")
	Segments             int    // live log segment files
	LogBytes             int64  // total bytes across live segments
	LoggedBatches        uint64 // batches appended since open
	RecoveredBatches     uint64 // batches replayed from the log tail at open
	Snapshots            uint64 // snapshots taken since open
	LastSnapshotEpoch    uint64 // global epoch of the newest snapshot (0 = none)
	LastSnapshotUnixNano int64  // wall clock of the newest snapshot (0 = none)
	LastSyncUnixNano     int64  // wall clock of the last fsync (0 = never)
	AppendRetries        uint64 // failed appends repaired in place by retry
	Err                  string // last durability error ("" = healthy; cleared by re-attach)

	// Degraded reports that the log gave up on persisting batches after an
	// I/O failure: updates and reads keep working, but batches apply only
	// in memory until a re-attach (background loop, Reattach or Snapshot)
	// succeeds.
	Degraded              bool
	DegradedSinceUnixNano int64  // wall clock of the degradation (0 = healthy)
	DroppedBatches        uint64 // batches applied but not logged while degraded
	Reattaches            uint64 // successful re-attach cycles
}

// DurabilityStats reports the write-ahead log's state; ok is false
// without WithWAL. Safe to call at any time.
func (d *Decomposition) DurabilityStats() (stats DurabilityStats, ok bool) {
	if d.wal == nil {
		return DurabilityStats{}, false
	}
	s := d.wal.Stats()
	return DurabilityStats{
		Dir:                  s.Dir,
		Sync:                 s.Sync,
		Segments:             s.Segments,
		LogBytes:             s.LogBytes,
		LoggedBatches:        s.LoggedBatches,
		RecoveredBatches:     s.RecoveredBatches,
		Snapshots:            s.Snapshots,
		LastSnapshotEpoch:    s.LastSnapshotEpoch,
		LastSnapshotUnixNano: s.LastSnapshotUnixNano,
		LastSyncUnixNano:     s.LastSyncUnixNano,
		AppendRetries:        s.AppendRetries,
		Err:                  s.Err,

		Degraded:              s.Degraded,
		DegradedSinceUnixNano: s.DegradedSinceUnixNano,
		DroppedBatches:        s.DroppedBatches,
		Reattaches:            s.Reattaches,
	}, true
}

// --- change feed ---

// CoreEvent is one vertex's coreness transition at one committed batch,
// as delivered by Subscribe. NewCore is exactly the value an epoch-pinned
// read at Epoch (ViewAt(Epoch)) returns for Vertex; OldCore is exactly
// the value at Epoch-1.
type CoreEvent = feed.Event

// EventFilter selects which events a subscription receives; the zero
// value matches all events. See feed.Filter for the matching rules
// (vertex set ∧ threshold crossing ∧ min delta).
type EventFilter = feed.Filter

// EventDelivery is one message on a subscription channel: either one
// committed epoch's matching events, or a gap marker for the epoch range
// [GapFrom, GapTo] the subscriber was too slow to receive. Recover from a
// gap with an epoch-pinned re-read (ViewAt) at GapTo or later.
type EventDelivery = feed.Delivery

// Subscription is a change-feed consumer handle: receive deliveries from
// C(), detach with Close.
type Subscription = feed.Subscription

// FeedStats is a snapshot of the change-feed hub's counters.
type FeedStats = feed.Stats

// ErrTooManySubscribers is returned by Subscribe when the
// WithMaxSubscribers cap is reached.
var ErrTooManySubscribers = feed.ErrTooManySubscribers

// Subscribe attaches a change-feed consumer: every committed update batch
// delivers the coreness transitions matching filter as one EventDelivery
// on the returned channel, stamped with the batch's epoch — events for
// epoch e are sent only after e is readable, so a ViewAt(e) issued on
// receipt always succeeds (subject to retention).
//
// The commit path never blocks on a subscriber: a subscription whose
// buffer (WithEventBuffer) is full receives a gap marker carrying the
// missed epoch range instead of the events; re-read the vertices of
// interest via ViewAt to resynchronize. Close the subscription when done
// — an abandoned one degrades into a stream of gaps but still consumes a
// subscriber slot.
//
// Works in every configuration, including on a replication follower
// (events fire as the primary's batches apply locally). Safe for
// concurrent callers.
func (d *Decomposition) Subscribe(filter EventFilter) (*Subscription, error) {
	return d.hub.Subscribe(filter, d.feedBuffer)
}

// FeedStats reports the change-feed hub's counters. Safe to call at any
// time.
func (d *Decomposition) FeedStats() FeedStats { return d.hub.Stats() }

// Shards returns the number of shards (1 unless WithShards was used).
func (d *Decomposition) Shards() int { return d.eng.NumShards() }

// ShardLoad is a point-in-time load snapshot of one shard: the
// observability surface for spotting hot shards and (eventually) driving
// vertex migration between them.
type ShardLoad struct {
	Shard         int    // shard index
	OwnedVertices int    // vertices hashed to this shard
	PrimaryEdges  int64  // distinct global edges it owns
	LocalEdges    int64  // edges in its local subgraph (incl. mirrored cut edges)
	Batches       uint64 // coalesced update batches applied
	Inserted      int64  // cumulative edges applied locally
	Deleted       int64
}

// ShardStats returns per-shard load statistics. With sharding it is safe to
// call concurrently with updates and reads; without sharding the single
// entry reflects the whole engine and must not race an update batch (the
// edge count is not synchronized in that mode).
func (d *Decomposition) ShardStats() []ShardLoad {
	stats := d.eng.Stats()
	out := make([]ShardLoad, len(stats))
	for i, s := range stats {
		out[i] = ShardLoad{
			Shard:         s.Shard,
			OwnedVertices: s.OwnedVertices,
			PrimaryEdges:  s.PrimaryEdges,
			LocalEdges:    s.LocalEdges,
			Batches:       s.Batches,
			Inserted:      s.Inserted,
			Deleted:       s.Deleted,
		}
	}
	return out
}

// NumVertices returns the (fixed) number of vertices.
func (d *Decomposition) NumVertices() int { return d.eng.NumVertices() }

// NumEdges returns the number of edges currently in the graph. Without
// sharding it must not be called concurrently with an update batch; with
// sharding it is safe at any time.
func (d *Decomposition) NumEdges() int64 { return d.eng.NumEdges() }

// ApproxFactor returns the theoretical approximation factor of coreness
// estimates (per shard, when sharded).
func (d *Decomposition) ApproxFactor() float64 { return d.eng.ApproxFactor() }

// BatchNumber returns the number of update batches processed so far
// (summed across shards, when sharded).
func (d *Decomposition) BatchNumber() uint64 { return d.eng.Batches() }

// Epoch returns the current committed epoch: the number of update batches
// whose effects are fully visible to readers (summed across shards, when
// sharded). The epoch advances exactly at batch boundaries; every View read
// reports the epoch of the cut it was served from. Safe to call at any
// time.
func (d *Decomposition) Epoch() uint64 { return d.eng.Epoch() }

// RetainedEpochs returns the configured multi-version retention depth
// (see WithRetainedEpochs; 0 = retention disabled).
func (d *Decomposition) RetainedEpochs() int { return d.eng.RetainedEpochs() }

// OldestReadableEpoch returns the oldest epoch still servable through
// ViewAt and fixed Views. With retention disabled it equals Epoch. The
// value is advisory under concurrent updates (eviction may advance it);
// pin an epoch to hold it.
func (d *Decomposition) OldestReadableEpoch() uint64 { return d.eng.OldestReadableEpoch() }

// toInternal converts public edges to the internal representation.
func toInternal(edges []Edge) []graph.Edge {
	out := make([]graph.Edge, len(edges))
	for i, e := range edges {
		out[i] = graph.Edge{U: e.U, V: e.V}
	}
	return out
}

// InsertEdges applies a batch of edge insertions in parallel and returns
// the number of edges actually added (self-loops, duplicates within the
// batch, already-present edges and out-of-range endpoints are ignored).
// Concurrent Coreness reads remain linearizable throughout the batch.
// On a replication follower (see ReadOnly) it is a no-op returning 0.
func (d *Decomposition) InsertEdges(edges []Edge) int {
	if d.ReadOnly() {
		return 0
	}
	return d.eng.Insert(toInternal(edges))
}

// DeleteEdges applies a batch of edge deletions in parallel and returns the
// number of edges actually removed. Concurrent Coreness reads remain
// linearizable throughout the batch. On a replication follower (see
// ReadOnly) it is a no-op returning 0.
func (d *Decomposition) DeleteEdges(edges []Edge) int {
	if d.ReadOnly() {
		return 0
	}
	return d.eng.Delete(toInternal(edges))
}

// ApplyBatch applies a mixed batch of insertions and deletions. Following
// the paper's model, the mix is processed as an insertion sub-batch
// followed by a deletion sub-batch ("batches contain a mix of insertions
// and deletions, which are separated into insertion and deletion
// sub-batches during pre-processing", §2). It returns the number of edges
// inserted and deleted. Concurrent reads remain linearizable; each
// sub-batch is its own atomicity unit (per shard, when sharded) and
// commits its own epoch.
func (d *Decomposition) ApplyBatch(insertions, deletions []Edge) (inserted, deleted int) {
	if d.ReadOnly() {
		return 0, 0
	}
	return d.eng.Apply(toInternal(insertions), toInternal(deletions))
}

// RemoveVertex deletes all edges incident to v as one batch, effectively
// removing v from the graph (vertex ids are never recycled). This is the
// vertex-deletion operation the paper notes batch-dynamic structures
// support via edge updates (footnote 1). It returns the number of edges
// removed. It must not run concurrently with any other update call — even
// in sharded mode, where the edge-batch operations accept concurrent
// callers — because the incident-edge snapshot and the deletion batch are
// two steps; concurrent reads stay linearizable throughout.
func (d *Decomposition) RemoveVertex(v uint32) int {
	if d.ReadOnly() || int(v) >= d.eng.NumVertices() {
		return 0
	}
	return d.eng.Delete(d.eng.IncidentEdges(v))
}

// Coreness returns a linearizable (2+ε)-approximate coreness estimate for
// v. It is lock-free and safe to call concurrently with update batches:
// the returned value always corresponds to the state at a batch boundary,
// never to an intermediate state mid-batch. To learn *which* boundary — or
// to read several vertices from the same one — use a View.
func (d *Decomposition) Coreness(v uint32) float64 { return d.eng.Read(v) }

// CorenessNonLinearizable returns the estimate computed from v's
// instantaneous level. It is faster than Coreness but, when called during
// a batch, may reflect an intermediate state whose error is unbounded
// (the paper's NonSync baseline). Use only when linearizability does not
// matter.
func (d *Decomposition) CorenessNonLinearizable(v uint32) float64 {
	return d.eng.ReadNonSync(v)
}

// CorenessBlocking waits for any in-flight batch to complete before
// reading (the paper's SyncReads baseline). Its latency is bounded below
// by the remaining batch time.
func (d *Decomposition) CorenessBlocking(v uint32) float64 {
	return d.eng.ReadSync(v)
}

// Degree returns v's current degree. It must not be called concurrently
// with an update batch.
func (d *Decomposition) Degree(v uint32) int { return d.eng.Degree(v) }

// ExactCoreness computes the exact coreness of every vertex by static
// parallel peeling of the current graph (reassembled globally, when
// sharded). It is a quiescent operation: it must not be called concurrently
// with an update batch. Use it to measure the approximation quality of
// estimates, or when exact values are needed occasionally.
func (d *Decomposition) ExactCoreness() []int32 { return d.eng.ExactCoreness() }

// Check verifies the internal level-structure invariants (of every shard,
// when sharded, plus the cross-shard mirroring invariants). It is a
// quiescent operation intended for tests and debugging; it returns nil on
// a healthy structure.
func (d *Decomposition) Check() error { return d.eng.CheckInvariants() }

// Static computes the exact k-core decomposition (coreness of every
// vertex) of a static edge list on n vertices using parallel bucket
// peeling. It is the convenience entry point when no dynamic updates are
// needed.
func Static(n int, edges []Edge) []int32 {
	return exact.Parallel(graph.CSRFromEdges(n, toInternal(edges)))
}
